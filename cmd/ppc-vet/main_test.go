package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"ppcsim/internal/analysis"
)

// TestFixtureSelfCheck is the -fixtures path: every analyzer must pass
// its testdata suite under plain `go test ./...`, keeping the fixture
// contract inside tier-1 verification.
func TestFixtureSelfCheck(t *testing.T) {
	var buf bytes.Buffer
	if err := runFixtures(&buf); err != nil {
		t.Fatalf("fixture self-check failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, a := range []string{"detrand", "maporder", "floateq", "obsguard"} {
		if !strings.Contains(out, "ok   "+a) {
			t.Errorf("analyzer %s missing from self-check output:\n%s", a, out)
		}
	}
}

// TestDogfoodTreeIsClean runs the configured multichecker over the whole
// module, asserting the acceptance criterion that `ppc-vet ./...` exits
// clean on the final tree.
func TestDogfoodTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis in -short mode")
	}
	diags, err := vet("../..", []string{"./..."}, configuredAnalyzers(detrandExemptDefault, obsguardSkipDefault))
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func TestJSONOutputShape(t *testing.T) {
	diags := []analysis.Diagnostic{{
		Analyzer: "detrand",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "wall-clock time.Now in simulator code",
	}}
	var buf bytes.Buffer
	writeJSON(&buf, diags)
	var decoded []jsonDiag
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 1 || decoded[0].Analyzer != "detrand" || decoded[0].Line != 3 || decoded[0].Col != 7 {
		t.Errorf("bad JSON round-trip: %+v", decoded)
	}
	// An empty diagnostic list must still be a JSON array, not null.
	buf.Reset()
	writeJSON(&buf, nil)
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty diagnostics rendered %q, want []", buf.String())
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(" a , ,b,"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitList = %v", got)
	}
	if got := splitList(""); got != nil {
		t.Errorf("splitList(\"\") = %v, want nil", got)
	}
}
