package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
	"time"

	"ppcsim/internal/analysis"
)

// TestFixtureSelfCheck is the -fixtures path: every analyzer must pass
// its testdata suite under plain `go test ./...`, keeping the fixture
// contract inside tier-1 verification.
func TestFixtureSelfCheck(t *testing.T) {
	var buf bytes.Buffer
	if err := runFixtures(&buf); err != nil {
		t.Fatalf("fixture self-check failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, a := range []string{
		"detrand", "maporder", "floateq", "obsguard",
		"lockguard", "goroleak", "ctxflow", "errenvelope", "hotalloc",
	} {
		if !strings.Contains(out, "ok   "+a) {
			t.Errorf("analyzer %s missing from self-check output:\n%s", a, out)
		}
	}
}

// TestDogfoodTreeIsClean runs the configured multichecker over the whole
// module, asserting the acceptance criterion that `ppc-vet ./...` exits
// clean on the final tree — no diagnostics, and no stale suppressions.
func TestDogfoodTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module analysis in -short mode")
	}
	res, err := analysis.Vet("../..", []string{"./..."},
		configuredAnalyzers(detrandExemptDefault, obsguardSkipDefault, ctxflowAllowDefault), 0)
	if err != nil {
		t.Fatalf("vet: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d)
	}
	for _, s := range res.Suppressions {
		if !s.Used {
			t.Errorf("%s:%d: stale suppression %q no longer suppresses anything; delete it",
				s.Pos.Filename, s.Pos.Line, s.Reason)
		}
	}
	if res.Packages == 0 {
		t.Error("vet analyzed zero packages")
	}
	for _, a := range []string{"lockguard", "goroleak", "ctxflow", "errenvelope", "hotalloc"} {
		if _, ok := res.Timings[a]; !ok {
			t.Errorf("no wall time recorded for analyzer %s", a)
		}
	}
}

func TestJSONOutputShape(t *testing.T) {
	res := analysis.VetResult{
		Diagnostics: []analysis.Diagnostic{{
			Analyzer: "detrand",
			Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
			Message:  "wall-clock time.Now in simulator code",
		}},
		Suppressions: []analysis.Suppression{{
			Pos:    token.Position{Filename: "y.go", Line: 12},
			Reason: "latency metric, not simulation time",
			Used:   true,
		}},
		Timings:  map[string]time.Duration{"detrand": 1500 * time.Microsecond},
		Packages: 2,
	}
	var buf bytes.Buffer
	writeJSON(&buf, res)
	var decoded jsonReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.Diagnostics) != 1 || decoded.Diagnostics[0].Analyzer != "detrand" ||
		decoded.Diagnostics[0].Line != 3 || decoded.Diagnostics[0].Col != 7 {
		t.Errorf("bad diagnostics round-trip: %+v", decoded.Diagnostics)
	}
	if decoded.Packages != 2 {
		t.Errorf("packages = %d, want 2", decoded.Packages)
	}
	if ms := decoded.AnalyzerWallMS["detrand"]; ms != 1.5 {
		t.Errorf("analyzer_wall_ms[detrand] = %v, want 1.5", ms)
	}
	if len(decoded.Suppressions) != 1 || !decoded.Suppressions[0].Used ||
		decoded.Suppressions[0].Reason != "latency metric, not simulation time" {
		t.Errorf("bad suppressions round-trip: %+v", decoded.Suppressions)
	}

	// An empty report must still render arrays, not nulls: CI consumers
	// index into .diagnostics without null checks.
	buf.Reset()
	writeJSON(&buf, analysis.VetResult{})
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("invalid empty JSON: %v", err)
	}
	for _, key := range []string{"diagnostics", "suppressions"} {
		if s := strings.TrimSpace(string(raw[key])); s != "[]" {
			t.Errorf("empty report %s rendered %s, want []", key, s)
		}
	}
}

// TestSuppressionsAudit checks the -suppressions text rendering and its
// stale count, which drives the exit status CI keys on.
func TestSuppressionsAudit(t *testing.T) {
	var buf bytes.Buffer
	stale := writeSuppressions(&buf, []analysis.Suppression{
		{Pos: token.Position{Filename: "a.go", Line: 3}, Reason: "live one", Used: true},
		{Pos: token.Position{Filename: "b.go", Line: 9}, Reason: "dead one", Used: false},
	})
	if stale != 1 {
		t.Fatalf("stale = %d, want 1", stale)
	}
	out := buf.String()
	for _, want := range []string{"used  a.go:3: live one", "STALE b.go:9: dead one", "2 suppressions, 1 stale"} {
		if !strings.Contains(out, want) {
			t.Errorf("audit output missing %q:\n%s", want, out)
		}
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(" a , ,b,"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitList = %v", got)
	}
	if got := splitList(""); got != nil {
		t.Errorf("splitList(\"\") = %v, want nil", got)
	}
}
