// Command ppc-vet runs the repository's domain analyzers — detrand,
// maporder, floateq, obsguard — over Go packages and reports every
// violation of the simulator's determinism, float-time, and
// observability invariants.
//
// Usage:
//
//	ppc-vet [flags] [packages]
//
// With no packages, ./... is analyzed. Exit status is 0 when the tree is
// clean, 1 when diagnostics were reported, and 2 on analysis failure.
//
//	-json              emit diagnostics as a JSON array instead of text
//	-fixtures          run the analyzer fixture self-check and exit
//	-detrand.exempt    comma-separated import-path prefixes detrand skips
//	-obsguard.skip     comma-separated import paths obsguard skips
//
// A finding is suppressed by a trailing or immediately-preceding
// //ppcvet:ignore <reason> comment; the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ppcsim/internal/analysis"
	"ppcsim/internal/analysis/detrand"
	"ppcsim/internal/analysis/floateq"
	"ppcsim/internal/analysis/maporder"
	"ppcsim/internal/analysis/obsguard"
)

// obsguardSkipDefault excludes the package that owns the Observer
// contract: its Multi fan-out iterates members Tee has already
// nil-filtered, so per-call guards there would be dead code.
const obsguardSkipDefault = "ppcsim/internal/obs"

// detrandExemptDefault excludes the HTTP serving layer: it measures real
// request latency and deadlines, so wall-clock reads there are the
// point, not a determinism leak. The simulator itself (everything the
// serving layer calls into) remains covered.
const detrandExemptDefault = "ppcsim/internal/serve,ppcsim/cmd/ppc-serve"

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	fixtures := flag.Bool("fixtures", false, "run the analyzer fixture self-check and exit")
	detrandExempt := flag.String("detrand.exempt", detrandExemptDefault, "comma-separated import-path prefixes detrand skips")
	obsguardSkip := flag.String("obsguard.skip", obsguardSkipDefault, "comma-separated import paths obsguard skips")
	flag.Usage = usage
	flag.Parse()

	if *fixtures {
		if err := runFixtures(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	analyzers := configuredAnalyzers(*detrandExempt, *obsguardSkip)
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := vet(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppc-vet:", err)
		os.Exit(2)
	}
	if *jsonOut {
		writeJSON(os.Stdout, diags)
	} else {
		writeText(os.Stdout, diags)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ppc-vet [flags] [packages]\n\nanalyzers:\n")
	for _, a := range configuredAnalyzers(detrandExemptDefault, obsguardSkipDefault) {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nflags:\n")
	flag.PrintDefaults()
}

func configuredAnalyzers(detrandExempt, obsguardSkip string) []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.New(splitList(detrandExempt)),
		maporder.Analyzer,
		floateq.Analyzer,
		obsguard.New(splitList(obsguardSkip)),
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// vet loads the patterns and runs every analyzer over each package.
func vet(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.RunPackage(pkg, analyzers)...)
	}
	return diags, nil
}

func writeText(w io.Writer, diags []analysis.Diagnostic) {
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

// jsonDiag is the machine-readable diagnostic shape for -json output.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func writeJSON(w io.Writer, diags []analysis.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// runFixtures checks every analyzer against its testdata packages — the
// same suite the analyzers' unit tests run, callable from CI or the
// command line without go test.
func runFixtures(w io.Writer) error {
	failed := false
	for _, a := range []*analysis.Analyzer{detrand.Analyzer, maporder.Analyzer, floateq.Analyzer, obsguard.Analyzer} {
		dir, err := analyzerDir(a.Name)
		if err != nil {
			return err
		}
		fixtureDirs, err := analysis.FixtureDirs(dir)
		if err != nil {
			return err
		}
		for _, fd := range fixtureDirs {
			if err := analysis.RunFixture(a, fd); err != nil {
				failed = true
				fmt.Fprintf(w, "FAIL %s %s\n%v\n", a.Name, filepath.Base(fd), err)
				continue
			}
			fmt.Fprintf(w, "ok   %s %s\n", a.Name, filepath.Base(fd))
		}
	}
	if failed {
		return fmt.Errorf("fixture self-check failed")
	}
	return nil
}

// analyzerDir locates an analyzer package's source directory through the
// go command, so -fixtures works from any directory inside the module.
func analyzerDir(name string) (string, error) {
	out, err := analysis.GoListDir("ppcsim/internal/analysis/" + name)
	if err != nil {
		return "", fmt.Errorf("locating analyzer %s: %v", name, err)
	}
	return out, nil
}
