// Command ppc-vet runs the repository's domain analyzers — detrand,
// maporder, floateq, obsguard, lockguard, goroleak, ctxflow,
// errenvelope, hotalloc — over Go packages and reports every violation
// of the simulator's determinism, float-time, observability,
// concurrency-safety, and boundary-discipline invariants.
//
// Usage:
//
//	ppc-vet [flags] [packages]
//
// With no packages, ./... is analyzed. Exit status is 0 when the tree is
// clean, 1 when diagnostics were reported (or, with -suppressions, when
// a stale suppression exists), and 2 on analysis failure.
//
//	-json              emit the full report (diagnostics, per-analyzer
//	                   wall time, suppression audit) as one JSON object
//	-fixtures          run the analyzer fixture self-check and exit
//	-suppressions      list every //ppcvet:ignore directive with its
//	                   file:line and reason; exit 1 if any is stale
//	-parallel          package analysis workers (capped at GOMAXPROCS)
//	-detrand.exempt    comma-separated import-path prefixes detrand skips
//	-obsguard.skip     comma-separated import paths obsguard skips
//	-ctxflow.allow     comma-separated pkgpath.TypeName struct types
//	                   allowed to carry a context.Context field
//
// A finding is suppressed by a trailing or immediately-preceding
// //ppcvet:ignore <reason> comment; the reason is mandatory, and a
// suppression that no longer suppresses anything is flagged stale by
// -suppressions so dead ignores cannot accumulate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"ppcsim/internal/analysis"
	"ppcsim/internal/analysis/ctxflow"
	"ppcsim/internal/analysis/detrand"
	"ppcsim/internal/analysis/errenvelope"
	"ppcsim/internal/analysis/floateq"
	"ppcsim/internal/analysis/goroleak"
	"ppcsim/internal/analysis/hotalloc"
	"ppcsim/internal/analysis/lockguard"
	"ppcsim/internal/analysis/maporder"
	"ppcsim/internal/analysis/obsguard"
)

// obsguardSkipDefault excludes the package that owns the Observer
// contract: its Multi fan-out iterates members Tee has already
// nil-filtered, so per-call guards there would be dead code.
const obsguardSkipDefault = "ppcsim/internal/obs"

// detrandExemptDefault excludes the HTTP serving layer and its load
// harness: both measure real request latency and deadlines, so
// wall-clock reads there are the point, not a determinism leak (the
// harness's request stream is still seeded; only its schedule walks the
// wall clock). The simulator itself (everything the serving layer calls
// into) remains covered.
const detrandExemptDefault = "ppcsim/internal/serve,ppcsim/cmd/ppc-serve,ppcsim/internal/load,ppcsim/cmd/ppc-load"

// ctxflowAllowDefault names the two struct types with a documented
// reason to carry a context: the engine Config threads cooperative
// cancellation into a synchronous simulation loop that predates
// context plumbing, and the coordinator's jobRun scopes one sweep job's
// retries and streams to the request that created it.
const ctxflowAllowDefault = "ppcsim/internal/engine.Config,ppcsim/internal/serve/coord.jobRun"

func main() {
	jsonOut := flag.Bool("json", false, "emit the full report as one JSON object")
	fixtures := flag.Bool("fixtures", false, "run the analyzer fixture self-check and exit")
	suppressions := flag.Bool("suppressions", false, "audit //ppcvet:ignore directives; exit 1 on stale ones")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "package analysis workers (capped at GOMAXPROCS)")
	detrandExempt := flag.String("detrand.exempt", detrandExemptDefault, "comma-separated import-path prefixes detrand skips")
	obsguardSkip := flag.String("obsguard.skip", obsguardSkipDefault, "comma-separated import paths obsguard skips")
	ctxflowAllow := flag.String("ctxflow.allow", ctxflowAllowDefault, "comma-separated pkgpath.TypeName structs allowed to store a context")
	flag.Usage = usage
	flag.Parse()

	if *fixtures {
		if err := runFixtures(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	analyzers := configuredAnalyzers(*detrandExempt, *obsguardSkip, *ctxflowAllow)
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.Vet(".", patterns, analyzers, *parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ppc-vet:", err)
		os.Exit(2)
	}
	if *suppressions {
		if stale := writeSuppressions(os.Stdout, res.Suppressions); stale > 0 {
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		writeJSON(os.Stdout, res)
	} else {
		writeText(os.Stdout, res.Diagnostics)
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ppc-vet [flags] [packages]\n\nanalyzers:\n")
	for _, a := range configuredAnalyzers(detrandExemptDefault, obsguardSkipDefault, ctxflowAllowDefault) {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nflags:\n")
	flag.PrintDefaults()
}

func configuredAnalyzers(detrandExempt, obsguardSkip, ctxflowAllow string) []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.New(splitList(detrandExempt)),
		maporder.Analyzer,
		floateq.Analyzer,
		obsguard.New(splitList(obsguardSkip)),
		lockguard.Analyzer,
		goroleak.Analyzer,
		ctxflow.New(splitList(ctxflowAllow)),
		errenvelope.Analyzer,
		hotalloc.Analyzer,
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// relPath shortens filename to a cwd-relative path when that stays
// inside the tree.
func relPath(cwd, name string) string {
	if cwd != "" {
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return name
}

func writeText(w io.Writer, diags []analysis.Diagnostic) {
	cwd, _ := os.Getwd()
	for _, d := range diags {
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", relPath(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

// writeSuppressions renders the ignore-directive audit and returns the
// number of stale entries — directives that suppressed nothing on this
// run and should be deleted (or the regression they hid re-fixed).
func writeSuppressions(w io.Writer, sups []analysis.Suppression) int {
	cwd, _ := os.Getwd()
	stale := 0
	for _, s := range sups {
		state := "used "
		if !s.Used {
			state = "STALE"
			stale++
		}
		fmt.Fprintf(w, "%s %s:%d: %s\n", state, relPath(cwd, s.Pos.Filename), s.Pos.Line, s.Reason)
	}
	fmt.Fprintf(w, "%d suppressions, %d stale\n", len(sups), stale)
	return stale
}

// jsonDiag is the machine-readable diagnostic shape for -json output.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// jsonSuppression is one audited //ppcvet:ignore directive.
type jsonSuppression struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Reason string `json:"reason"`
	Used   bool   `json:"used"`
}

// jsonReport is the -json document: the diagnostics, how long each
// analyzer took across all packages, and the suppression audit, so CI
// can archive one artifact per run.
type jsonReport struct {
	Diagnostics    []jsonDiag         `json:"diagnostics"`
	AnalyzerWallMS map[string]float64 `json:"analyzer_wall_ms"`
	Packages       int                `json:"packages"`
	Suppressions   []jsonSuppression  `json:"suppressions"`
}

func writeJSON(w io.Writer, res analysis.VetResult) {
	report := jsonReport{
		Diagnostics:    make([]jsonDiag, 0, len(res.Diagnostics)),
		AnalyzerWallMS: make(map[string]float64, len(res.Timings)),
		Packages:       res.Packages,
		Suppressions:   make([]jsonSuppression, 0, len(res.Suppressions)),
	}
	for _, d := range res.Diagnostics {
		report.Diagnostics = append(report.Diagnostics, jsonDiag{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	for name, dur := range res.Timings {
		report.AnalyzerWallMS[name] = float64(dur.Microseconds()) / 1000
	}
	for _, s := range res.Suppressions {
		report.Suppressions = append(report.Suppressions, jsonSuppression{
			File:   s.Pos.Filename,
			Line:   s.Pos.Line,
			Reason: s.Reason,
			Used:   s.Used,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(report)
}

// fixtureInstance adapts an analyzer for its fixture packages, whose
// import paths are fixture/<dir> rather than real module paths: ctxflow
// allowlists the clean fixture's carrier, and errenvelope's scope and
// helper set are rebased onto the fixture tree.
func fixtureInstance(a *analysis.Analyzer, fixtureDir string) *analysis.Analyzer {
	switch a.Name {
	case "ctxflow":
		if filepath.Base(fixtureDir) == "clean" {
			return ctxflow.New([]string{"fixture/clean.carrier"})
		}
	case "errenvelope":
		return errenvelope.New(errenvelope.Config{
			Scope:     []string{"fixture/"},
			Transport: []string{"writeJSON"},
			Blessed:   []string{"WriteError"},
			Envelope:  "ErrorEnvelope",
		})
	}
	return a
}

// runFixtures checks every analyzer against its testdata packages — the
// same suite the analyzers' unit tests run, callable from CI or the
// command line without go test.
func runFixtures(w io.Writer) error {
	failed := false
	for _, a := range []*analysis.Analyzer{
		detrand.Analyzer, maporder.Analyzer, floateq.Analyzer, obsguard.Analyzer,
		lockguard.Analyzer, goroleak.Analyzer, ctxflow.Analyzer, errenvelope.Analyzer, hotalloc.Analyzer,
	} {
		dir, err := analyzerDir(a.Name)
		if err != nil {
			return err
		}
		fixtureDirs, err := analysis.FixtureDirs(dir)
		if err != nil {
			return err
		}
		for _, fd := range fixtureDirs {
			if err := analysis.RunFixture(fixtureInstance(a, fd), fd); err != nil {
				failed = true
				fmt.Fprintf(w, "FAIL %s %s\n%v\n", a.Name, filepath.Base(fd), err)
				continue
			}
			fmt.Fprintf(w, "ok   %s %s\n", a.Name, filepath.Base(fd))
		}
	}
	if failed {
		return fmt.Errorf("fixture self-check failed")
	}
	return nil
}

// analyzerDir locates an analyzer package's source directory through the
// go command, so -fixtures works from any directory inside the module.
func analyzerDir(name string) (string, error) {
	out, err := analysis.GoListDir("ppcsim/internal/analysis/" + name)
	if err != nil {
		return "", fmt.Errorf("locating analyzer %s: %v", name, err)
	}
	return out, nil
}
