// Command ppc-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	ppc-experiments -list
//	ppc-experiments -run fig2,table4
//	ppc-experiments -run all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ppcsim"
	"ppcsim/internal/experiments"
)

func main() {
	var (
		runIDs   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quick    = flag.Bool("quick", false, "truncate traces and shrink grids for a fast pass")
		svgDir   = flag.String("svg", "", "also write figures as SVG files into this directory")
		algNames = flag.String("algs", "", "restrict appendix baselines to these comma-separated algorithms")
	)
	flag.Parse()

	var algs []ppcsim.Algorithm
	for _, name := range strings.Split(*algNames, ",") {
		if strings.TrimSpace(name) == "" {
			continue
		}
		a, err := ppcsim.ParseAlgorithm(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		algs = append(algs, a)
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	o := &experiments.Options{Out: os.Stdout, Quick: *quick, SVGDir: *svgDir, Algs: algs}
	if *runIDs == "all" {
		if err := experiments.RunAll(o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, id := range strings.Split(*runIDs, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		fmt.Printf("### %s — %s\n\n", e.ID, e.Title)
		if err := e.Run(o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
