// Command ppc-traces prints the bundled traces' summary data (the paper's
// Table 3) and can dump a trace to a file in the text trace format.
//
// Usage:
//
//	ppc-traces
//	ppc-traces -dump synth -o synth.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"ppcsim"
	"ppcsim/internal/report"
)

func main() {
	var (
		dump = flag.String("dump", "", "dump the named trace instead of printing the summary")
		out  = flag.String("o", "", "output file for -dump (default stdout)")
	)
	flag.Parse()

	if *dump != "" {
		tr, err := ppcsim.NewTrace(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := tr.Write(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	t := &report.Table{
		Title:   "Trace summary data (paper Table 3)",
		Columns: []string{"trace", "reads", "distinct blocks", "compute time (sec)", "files", "cache (blocks)"},
	}
	for _, name := range ppcsim.TraceNames {
		tr, err := ppcsim.NewTrace(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st := tr.Stats()
		t.AddRow(name, fmt.Sprintf("%d", st.Reads), fmt.Sprintf("%d", st.DistinctBlocks),
			report.F(st.ComputeSec), fmt.Sprintf("%d", len(tr.Files)), fmt.Sprintf("%d", tr.CacheBlocks))
	}
	t.Render(os.Stdout)
}
