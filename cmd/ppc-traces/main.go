// Command ppc-traces prints the bundled traces' summary data (the paper's
// Table 3), dumps traces to the text format, and manages columnar binary
// trace files (see docs/trace-format.md).
//
// Usage:
//
//	ppc-traces                                    # Table 3 summary
//	ppc-traces -dump synth -o synth.trace         # bundled trace as text
//	ppc-traces convert -o synth.col synth.trace   # text -> columnar
//	ppc-traces convert -o synth.trace synth.col   # columnar -> text
//	ppc-traces convert -trace synth -o synth.col  # bundled -> columnar
//	ppc-traces inspect synth.col                  # header + frame index
//	ppc-traces gen -refs 1e7 -blocks 65536 -pattern zipf -o big.col
//
// gen streams the synthetic trace straight into the columnar encoder, so
// generating a 10^9-reference file needs constant memory.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"ppcsim"
	"ppcsim/internal/report"
	"ppcsim/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges injected for the tests.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "convert":
			return convert(args[1:], stdout, stderr)
		case "inspect":
			return inspect(args[1:], stdout, stderr)
		case "gen":
			return gen(args[1:], stdout, stderr)
		}
	}
	return summary(args, stdout, stderr)
}

// summary is the original flag surface: the Table 3 report, plus -dump.
func summary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppc-traces", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dump = fs.String("dump", "", "dump the named trace instead of printing the summary")
		out  = fs.String("o", "", "output file for -dump (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *dump != "" {
		tr, err := ppcsim.NewTrace(*dump)
		if err != nil {
			fmt.Fprintln(stderr, "ppc-traces:", err)
			return 1
		}
		w := stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(stderr, "ppc-traces:", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		if err := tr.Write(w); err != nil {
			fmt.Fprintln(stderr, "ppc-traces:", err)
			return 1
		}
		return 0
	}

	t := &report.Table{
		Title:   "Trace summary data (paper Table 3)",
		Columns: []string{"trace", "reads", "distinct blocks", "compute time (sec)", "files", "cache (blocks)"},
	}
	for _, name := range ppcsim.TraceNames {
		tr, err := ppcsim.NewTrace(name)
		if err != nil {
			fmt.Fprintln(stderr, "ppc-traces:", err)
			return 1
		}
		st := tr.Stats()
		t.AddRow(name, fmt.Sprintf("%d", st.Reads), fmt.Sprintf("%d", st.DistinctBlocks),
			report.F(st.ComputeSec), fmt.Sprintf("%d", len(tr.Files)), fmt.Sprintf("%d", tr.CacheBlocks))
	}
	t.Render(stdout)
	return 0
}

// convert transcodes between the text and columnar formats, sniffing the
// input's format from its magic.
func convert(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppc-traces convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("o", "", "output file (required)")
		bundled = fs.String("trace", "", "convert a bundled trace instead of an input file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "ppc-traces convert: -o is required")
		return 2
	}
	if (*bundled == "") == (fs.NArg() != 1) {
		fmt.Fprintln(stderr, "ppc-traces convert: exactly one input file (or -trace name) is required")
		return 2
	}

	var tr *ppcsim.Trace
	toColumnar := true
	if *bundled != "" {
		var err error
		if tr, err = ppcsim.NewTrace(*bundled); err != nil {
			fmt.Fprintln(stderr, "ppc-traces convert:", err)
			return 1
		}
	} else {
		in := fs.Arg(0)
		data, err := os.ReadFile(in)
		if err != nil {
			fmt.Fprintln(stderr, "ppc-traces convert:", err)
			return 1
		}
		if trace.IsColumnar(data) {
			toColumnar = false
			if tr, err = trace.ReadColumnar(bytes.NewReader(data)); err != nil {
				fmt.Fprintln(stderr, "ppc-traces convert:", err)
				return 1
			}
		} else if tr, err = trace.Read(bytes.NewReader(data)); err != nil {
			fmt.Fprintln(stderr, "ppc-traces convert:", err)
			return 1
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(stderr, "ppc-traces convert:", err)
		return 1
	}
	if toColumnar {
		var n int64
		if n, err = trace.WriteColumnar(f, tr.Source()); err == nil {
			fmt.Fprintf(stdout, "%s: %d references, %d bytes (%.2f bytes/ref)\n",
				*out, len(tr.Refs), n, float64(n)/float64(len(tr.Refs)))
		}
	} else {
		err = tr.Write(f)
	}
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(stderr, "ppc-traces convert:", err)
		return 1
	}
	return 0
}

// inspect prints a columnar file's header metadata and frame index using
// only the two point reads an mmap consumer would issue.
func inspect(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppc-traces inspect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "ppc-traces inspect: exactly one columnar file is required")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "ppc-traces inspect:", err)
		return 1
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		fmt.Fprintln(stderr, "ppc-traces inspect:", err)
		return 1
	}
	info, err := trace.InspectColumnar(f, st.Size())
	if err != nil {
		fmt.Fprintln(stderr, "ppc-traces inspect:", err)
		return 1
	}
	m := info.Meta
	fmt.Fprintf(stdout, "name:         %s\n", m.Name)
	fmt.Fprintf(stdout, "references:   %d\n", m.Refs)
	fmt.Fprintf(stdout, "blocks:       %d\n", m.NumBlocks())
	fmt.Fprintf(stdout, "files:        %d\n", len(m.Files))
	fmt.Fprintf(stdout, "place-byfile: %t\n", m.PlaceByFile)
	fmt.Fprintf(stdout, "cache-blocks: %d\n", m.CacheBlocks)
	fmt.Fprintf(stdout, "frames:       %d\n", info.Frames)
	fmt.Fprintf(stdout, "bytes:        %d (%.2f bytes/ref)\n", info.DataBytes, float64(info.DataBytes)/float64(m.Refs))
	return 0
}

// gen writes a synthetic streaming trace to a columnar file without ever
// materializing it.
func gen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppc-traces gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("o", "", "output columnar file (required)")
		refs    = fs.String("refs", "1e6", "reference count (scientific notation accepted)")
		blocks  = fs.Int("blocks", 65536, "block-ID space size")
		files   = fs.Int("files", 1, "number of files the block space is split into")
		pattern = fs.String("pattern", "loop", "access pattern: loop or zipf")
		meanMs  = fs.Float64("mean-ms", 0, "mean inter-reference compute time in ms (0 = 0.1)")
		seed    = fs.Int64("seed", 0, "generation seed")
		cache   = fs.Int("cache", 0, "default cache size in blocks (0 = 1280)")
		name    = fs.String("name", "", "trace name (default large-<pattern>-<refs>)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "ppc-traces gen: -o is required")
		return 2
	}
	nRefs, err := strconv.ParseFloat(*refs, 64)
	if err != nil || nRefs < 1 || nRefs != float64(int64(nRefs)) { //ppcvet:ignore exact integrality check on a parsed count, not simulation time
		fmt.Fprintf(stderr, "ppc-traces gen: bad -refs %q\n", *refs)
		return 2
	}
	spec := ppcsim.LargeTraceSpec{
		Name:          *name,
		Refs:          int64(nRefs),
		Blocks:        *blocks,
		Files:         *files,
		Pattern:       *pattern,
		MeanComputeMs: *meanMs,
		Seed:          *seed,
		CacheBlocks:   *cache,
	}
	src, err := spec.Source()
	if err != nil {
		fmt.Fprintln(stderr, "ppc-traces gen:", err)
		return 2
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(stderr, "ppc-traces gen:", err)
		return 1
	}
	n, err := ppcsim.WriteColumnarTrace(f, src)
	if err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(stderr, "ppc-traces gen:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %d references, %d bytes (%.2f bytes/ref)\n",
		*out, spec.Refs, n, float64(n)/float64(spec.Refs))
	return 0
}
