package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestConvertRoundTrip: bundled -> columnar -> text must reproduce the
// exact text dump of the bundled trace, and inspect must read the
// columnar header without decoding frames.
func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	col := filepath.Join(dir, "ld.col")
	txt := filepath.Join(dir, "ld.trace")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"convert", "-trace", "ld", "-o", col}, &stdout, &stderr); code != 0 {
		t.Fatalf("convert bundled exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "bytes/ref") {
		t.Errorf("convert output missing bytes/ref: %s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"convert", "-o", txt, col}, &stdout, &stderr); code != 0 {
		t.Fatalf("convert columnar->text exit %d\nstderr: %s", code, stderr.String())
	}

	var want bytes.Buffer
	if code := run([]string{"-dump", "ld"}, &want, &stderr); code != 0 {
		t.Fatalf("dump exit %d\nstderr: %s", code, stderr.String())
	}
	got, err := os.ReadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("columnar round-trip does not reproduce the text dump")
	}

	stdout.Reset()
	if code := run([]string{"inspect", col}, &stdout, &stderr); code != 0 {
		t.Fatalf("inspect exit %d\nstderr: %s", code, stderr.String())
	}
	for _, field := range []string{"name:", "references:", "frames:", "bytes/ref"} {
		if !strings.Contains(stdout.String(), field) {
			t.Errorf("inspect output missing %q:\n%s", field, stdout.String())
		}
	}
}

// TestGenWritesStreamable: gen must produce a columnar file whose header
// matches the spec, usable by inspect.
func TestGenWritesStreamable(t *testing.T) {
	dir := t.TempDir()
	col := filepath.Join(dir, "big.col")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"gen", "-refs", "5e4", "-blocks", "512", "-pattern", "zipf", "-seed", "3", "-o", col}, &stdout, &stderr); code != 0 {
		t.Fatalf("gen exit %d\nstderr: %s", code, stderr.String())
	}
	stdout.Reset()
	if code := run([]string{"inspect", col}, &stdout, &stderr); code != 0 {
		t.Fatalf("inspect exit %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "references:   50000") || !strings.Contains(out, "large-zipf-50000") {
		t.Errorf("inspect disagrees with the gen spec:\n%s", out)
	}
}

// TestSubcommandErrors pins the usage-error exits.
func TestSubcommandErrors(t *testing.T) {
	for _, c := range []struct {
		name string
		args []string
	}{
		{"convert without output", []string{"convert", "in.trace"}},
		{"convert without input", []string{"convert", "-o", "out.col"}},
		{"convert trace plus file", []string{"convert", "-trace", "ld", "-o", "x", "in.trace"}},
		{"inspect without file", []string{"inspect"}},
		{"gen without output", []string{"gen"}},
		{"gen bad refs", []string{"gen", "-refs", "none", "-o", "x.col"}},
		{"gen bad pattern", []string{"gen", "-refs", "10", "-pattern", "bogus", "-o", "x.col"}},
	} {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr.String())
			}
		})
	}
}

// TestSummaryAndDump covers the legacy flag surface: the Table 3
// summary must list every bundled trace, and -dump must write the text
// form both to stdout and to a file.
func TestSummaryAndDump(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("summary exit %d\nstderr: %s", code, stderr.String())
	}
	for _, name := range []string{"ld", "synth"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("summary missing trace %q:\n%s", name, stdout.String())
		}
	}

	stdout.Reset()
	if code := run([]string{"-dump", "ld"}, &stdout, &stderr); code != 0 {
		t.Fatalf("dump exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "ppctrace ") {
		t.Errorf("dump output is not a text trace:\n%.80s", stdout.String())
	}

	path := filepath.Join(t.TempDir(), "ld.trace")
	var fileOut bytes.Buffer
	if code := run([]string{"-dump", "ld", "-o", path}, &fileOut, &stderr); code != 0 {
		t.Fatalf("dump -o exit %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != stdout.String() {
		t.Error("-o file differs from the stdout dump")
	}

	if code := run([]string{"-dump", "nosuch"}, &stdout, &stderr); code != 1 {
		t.Errorf("dump of unknown trace exited %d, want 1", code)
	}
}

// TestRuntimeErrors pins the exit-1 failures: unreadable inputs, inputs
// of the wrong format, and unknown bundled traces.
func TestRuntimeErrors(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "t.trace")
	if err := os.WriteFile(text, []byte("ppctrace x true 4\nfile 4\nr 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "bad.col")
	if err := os.WriteFile(garbage, []byte("ppccolv1 but truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		args []string
	}{
		{"convert missing input", []string{"convert", "-o", filepath.Join(dir, "x.col"), filepath.Join(dir, "nosuch.trace")}},
		{"convert unknown bundled", []string{"convert", "-trace", "nosuch", "-o", filepath.Join(dir, "x.col")}},
		{"convert corrupt columnar", []string{"convert", "-o", filepath.Join(dir, "x.trace"), garbage}},
		{"convert unwritable output", []string{"convert", "-o", filepath.Join(dir, "nodir", "x.col"), text}},
		{"inspect missing file", []string{"inspect", filepath.Join(dir, "nosuch.col")}},
		{"inspect text file", []string{"inspect", text}},
		{"gen unwritable output", []string{"gen", "-refs", "10", "-o", filepath.Join(dir, "nodir", "x.col")}},
	} {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.args, &stdout, &stderr); code != 1 {
				t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr.String())
			}
		})
	}
}
