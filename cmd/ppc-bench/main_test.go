package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadBaseline covers the BENCH file lookup keys: hot-path points
// key as policy/disks/ and streaming points as policy/disks/stream.
func TestLoadBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	doc := `{
  "results": [
    {"policy": "demand", "disks": 4, "refs_per_sec": 1000},
    {"policy": "demand", "disks": 4, "refs_per_sec": 500, "mode": "stream"}
  ]
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if m["demand/4/"] != 1000 || m["demand/4/stream"] != 500 {
		t.Fatalf("baseline map = %v", m)
	}

	if _, err := loadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil {
		t.Error("malformed baseline accepted")
	}
}

// TestNextBenchFile picks the first unused BENCH_<n>.json.
func TestNextBenchFile(t *testing.T) {
	dir := t.TempDir()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	if got := nextBenchFile(); got != "BENCH_1.json" {
		t.Fatalf("empty dir: %q", got)
	}
	if err := os.WriteFile("BENCH_1.json", []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := nextBenchFile(); got != "BENCH_2.json" {
		t.Fatalf("after BENCH_1: %q", got)
	}
}

// TestRunWritesGrid drives the full grid once (-benchtime 1x on the
// smallest bundled trace) and checks the written BENCH document's
// shape, then replays it as its own baseline to cover the speedup path.
func TestRunWritesGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole benchmark grid")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_t.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-trace", "ld", "-benchtime", "1x", "-large-refs", "3000", "-o", out}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), out) {
		t.Errorf("stdout %q does not name the output file", stdout.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	hot, stream := 0, 0
	for _, r := range doc.Results {
		if r.Mode == "stream" {
			stream++
			if r.BytesPerRef <= 0 {
				t.Errorf("stream point %s/%d has bytes/ref %g", r.Policy, r.Disks, r.BytesPerRef)
			}
		} else {
			hot++
		}
		if r.RefsPerSec <= 0 {
			t.Errorf("point %s/%d/%s has refs/sec %g", r.Policy, r.Disks, r.Mode, r.RefsPerSec)
		}
	}
	if want := len(gridAlgs) * len(gridDisks); hot != want {
		t.Errorf("hot-path points = %d, want %d", hot, want)
	}
	if want := len(gridAlgs) * len(streamDisks); stream != want {
		t.Errorf("stream points = %d, want %d", stream, want)
	}
	if doc.LargeRefs != 3000 || doc.LargeTrace == "" {
		t.Errorf("streaming workload metadata = %q/%d", doc.LargeTrace, doc.LargeRefs)
	}

	// Second run against the first as baseline: every point must gain a
	// speedup figure.
	out2 := filepath.Join(dir, "BENCH_t2.json")
	stdout.Reset()
	stderr.Reset()
	args = []string{"-trace", "ld", "-benchtime", "1x", "-large-refs", "3000", "-baseline", out, "-o", out2}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("baseline run: %v\nstderr: %s", err, stderr.String())
	}
	raw, err = os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	var doc2 benchFile
	if err := json.Unmarshal(raw, &doc2); err != nil {
		t.Fatal(err)
	}
	if doc2.Baseline != out {
		t.Errorf("baseline recorded as %q", doc2.Baseline)
	}
	for _, r := range doc2.Results {
		if r.Speedup <= 0 {
			t.Errorf("point %s/%d/%s missing speedup", r.Policy, r.Disks, r.Mode)
		}
	}
}

// TestRunErrors pins the error paths: unknown trace, bad flags, and a
// missing baseline file.
func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-trace", "nosuch", "-large-refs", "0"}, &stdout, &stderr); err == nil {
		t.Error("unknown trace accepted")
	}
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run([]string{"-trace", "ld", "-baseline", "/nonexistent.json"}, &stdout, &stderr); err == nil {
		t.Error("missing baseline accepted")
	}
}
