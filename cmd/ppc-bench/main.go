// Command ppc-bench runs the simulator's hot-path benchmark grid — the
// same (policy, disk count) grid as BenchmarkHotPath in bench_test.go —
// on the full synthetic trace and writes the results as BENCH_<n>.json
// (ns/op, allocs/op, refs/sec per grid point). A second, streaming grid
// runs the same policies over a synthetic zipf trace consumed through
// Options.Source, adding refs/sec and allocated bytes/ref for the
// bounded-memory path (mode "stream" in the JSON; -large-refs sizes it).
//
// Usage:
//
//	go run ./cmd/ppc-bench                      # writes BENCH_<n>.json
//	go run ./cmd/ppc-bench -benchtime 10x -best 3
//	go run ./cmd/ppc-bench -baseline BENCH_1.json -o BENCH_2.json
//
// With -baseline, each result also reports the baseline's refs/sec and
// the speedup against it, so a checked-in BENCH file doubles as a
// regression record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"ppcsim"
)

// benchPoint is one grid point's measurement.
type benchPoint struct {
	Policy      string  `json:"policy"`
	Disks       int     `json:"disks"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	RefsPerSec  float64 `json:"refs_per_sec"`
	// BytesPerRef is allocated bytes per reference — the streaming grid's
	// bounded-memory figure of merit (populated for mode "stream").
	BytesPerRef float64 `json:"bytes_per_ref,omitempty"`
	// Mode distinguishes the materialized hot-path grid ("") from the
	// streaming large-trace grid ("stream").
	Mode string `json:"mode,omitempty"`

	// Populated only when -baseline is given.
	BaselineRefsPerSec float64 `json:"baseline_refs_per_sec,omitempty"`
	Speedup            float64 `json:"speedup,omitempty"`
}

// benchFile is the BENCH_<n>.json document.
type benchFile struct {
	Trace      string `json:"trace"`
	Refs       int    `json:"refs"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Baseline   string `json:"baseline,omitempty"`
	// LargeTrace/LargeRefs/LargeWindow describe the streaming grid's
	// synthetic workload (the mode "stream" results).
	LargeTrace  string       `json:"large_trace,omitempty"`
	LargeRefs   int64        `json:"large_refs,omitempty"`
	LargeWindow int          `json:"large_window,omitempty"`
	Results     []benchPoint `json:"results"`
}

// grid mirrors bench_test.go's hot-path grid; the streaming grid keeps
// the same policies over a smaller disk set.
var (
	gridAlgs    = []ppcsim.Algorithm{ppcsim.Demand, ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall}
	gridDisks   = []int{1, 2, 4, 8, 16}
	streamDisks = []int{1, 4, 16}
)

func main() {
	testing.Init()
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ppc-bench:", err)
		os.Exit(1)
	}
}

// run is main with the process edges injected for the tests.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ppc-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		traceName = fs.String("trace", "synth", "trace to benchmark")
		benchtime = fs.String("benchtime", "", "per-point benchmark time (e.g. 2s or 10x; default 1s)")
		baseline  = fs.String("baseline", "", "prior BENCH_<n>.json to compute speedups against")
		out       = fs.String("o", "", "output file (default: next unused BENCH_<n>.json)")
		best      = fs.Int("best", 1, "measure each grid point N times and keep the fastest (noise rejection)")
		largeRefs = fs.Int64("large-refs", 200_000, "streaming large-trace grid length (0 disables the grid)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			return err
		}
	}

	tr, err := ppcsim.NewTrace(*traceName)
	if err != nil {
		return err
	}
	refs := len(tr.Refs)

	var base map[string]float64 // "policy/disks/mode" -> refs/sec
	doc := benchFile{
		Trace:      *traceName,
		Refs:       refs,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if *baseline != "" {
		base, err = loadBaseline(*baseline)
		if err != nil {
			return err
		}
		doc.Baseline = *baseline
	}

	for _, alg := range gridAlgs {
		for _, d := range gridDisks {
			alg, d := alg, d
			var pt benchPoint
			// System noise only ever slows a run down, so the fastest of
			// -best repeats is the least-perturbed measurement.
			for rep := 0; rep < *best || rep == 0; rep++ {
				var failed error
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: d}); err != nil {
							failed = err
							b.FailNow()
						}
					}
				})
				if failed != nil {
					return failed
				}
				rps := float64(refs) * float64(res.N) / res.T.Seconds()
				if rep == 0 || rps > pt.RefsPerSec {
					pt = benchPoint{
						Policy:      string(alg),
						Disks:       d,
						Iterations:  res.N,
						NsPerOp:     res.NsPerOp(),
						AllocsPerOp: res.AllocsPerOp(),
						BytesPerOp:  res.AllocedBytesPerOp(),
						RefsPerSec:  rps,
					}
				}
			}
			if b, ok := base[fmt.Sprintf("%s/%d/", alg, d)]; ok && b > 0 {
				pt.BaselineRefsPerSec = b
				pt.Speedup = pt.RefsPerSec / b
			}
			doc.Results = append(doc.Results, pt)
			fmt.Fprintf(stderr, "%-14s %2dd  %12d ns/op  %7d allocs/op  %11.0f refs/s", alg, d, pt.NsPerOp, pt.AllocsPerOp, pt.RefsPerSec)
			if pt.Speedup > 0 {
				fmt.Fprintf(stderr, "  %5.2fx", pt.Speedup)
			}
			fmt.Fprintln(stderr)
		}
	}

	// The streaming large-trace grid: the same policies over a synthetic
	// zipf workload consumed through Options.Source, reporting refs/sec
	// and allocated bytes/ref (the bounded-memory figure: it must stay
	// flat as -large-refs grows).
	if *largeRefs > 0 {
		const window = 1000
		spec := ppcsim.LargeTraceSpec{Refs: *largeRefs, Blocks: 1 << 16, Pattern: "zipf", Seed: 1}
		src, err := spec.Source()
		if err != nil {
			return err
		}
		doc.LargeTrace = src.Meta().Name
		doc.LargeRefs = *largeRefs
		doc.LargeWindow = window
		for _, alg := range gridAlgs {
			for _, d := range streamDisks {
				alg, d := alg, d
				var pt benchPoint
				for rep := 0; rep < *best || rep == 0; rep++ {
					var failed error
					res := testing.Benchmark(func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							opts := ppcsim.Options{
								Source:    src,
								Algorithm: alg,
								Disks:     d,
								Hints:     &ppcsim.HintSpec{Fraction: 1, Accuracy: 1, Window: window},
							}
							if _, err := ppcsim.Run(opts); err != nil {
								failed = err
								b.FailNow()
							}
						}
					})
					if failed != nil {
						return failed
					}
					rps := float64(*largeRefs) * float64(res.N) / res.T.Seconds()
					if rep == 0 || rps > pt.RefsPerSec {
						pt = benchPoint{
							Policy:      string(alg),
							Disks:       d,
							Iterations:  res.N,
							NsPerOp:     res.NsPerOp(),
							AllocsPerOp: res.AllocsPerOp(),
							BytesPerOp:  res.AllocedBytesPerOp(),
							RefsPerSec:  rps,
							BytesPerRef: float64(res.AllocedBytesPerOp()) / float64(*largeRefs),
							Mode:        "stream",
						}
					}
				}
				if b, ok := base[fmt.Sprintf("%s/%d/stream", alg, d)]; ok && b > 0 {
					pt.BaselineRefsPerSec = b
					pt.Speedup = pt.RefsPerSec / b
				}
				doc.Results = append(doc.Results, pt)
				fmt.Fprintf(stderr, "%-14s %2dd  stream %12d ns/op  %8.2f bytes/ref  %11.0f refs/s\n",
					alg, d, pt.NsPerOp, pt.BytesPerRef, pt.RefsPerSec)
			}
		}
	}

	path := *out
	if path == "" {
		path = nextBenchFile()
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(stdout, path)
	return nil
}

// loadBaseline reads a prior BENCH file into a grid-point lookup.
func loadBaseline(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]float64, len(doc.Results))
	for _, r := range doc.Results {
		m[fmt.Sprintf("%s/%d/%s", r.Policy, r.Disks, r.Mode)] = r.RefsPerSec
	}
	return m, nil
}

// nextBenchFile returns the first unused BENCH_<n>.json name.
func nextBenchFile() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
