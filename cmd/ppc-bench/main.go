// Command ppc-bench runs the simulator's hot-path benchmark grid — the
// same (policy, disk count) grid as BenchmarkHotPath in bench_test.go —
// on the full synthetic trace and writes the results as BENCH_<n>.json
// (ns/op, allocs/op, refs/sec per grid point).
//
// Usage:
//
//	go run ./cmd/ppc-bench                      # writes BENCH_<n>.json
//	go run ./cmd/ppc-bench -benchtime 10x -best 3
//	go run ./cmd/ppc-bench -baseline BENCH_1.json -o BENCH_2.json
//
// With -baseline, each result also reports the baseline's refs/sec and
// the speedup against it, so a checked-in BENCH file doubles as a
// regression record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"ppcsim"
)

// benchPoint is one grid point's measurement.
type benchPoint struct {
	Policy      string  `json:"policy"`
	Disks       int     `json:"disks"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	RefsPerSec  float64 `json:"refs_per_sec"`

	// Populated only when -baseline is given.
	BaselineRefsPerSec float64 `json:"baseline_refs_per_sec,omitempty"`
	Speedup            float64 `json:"speedup,omitempty"`
}

// benchFile is the BENCH_<n>.json document.
type benchFile struct {
	Trace      string       `json:"trace"`
	Refs       int          `json:"refs"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Baseline   string       `json:"baseline,omitempty"`
	Results    []benchPoint `json:"results"`
}

// grid mirrors bench_test.go's hot-path grid.
var (
	gridAlgs  = []ppcsim.Algorithm{ppcsim.Demand, ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall}
	gridDisks = []int{1, 2, 4, 8, 16}
)

func main() {
	var (
		traceName = flag.String("trace", "synth", "trace to benchmark")
		benchtime = flag.String("benchtime", "", "per-point benchmark time (e.g. 2s or 10x; default 1s)")
		baseline  = flag.String("baseline", "", "prior BENCH_<n>.json to compute speedups against")
		out       = flag.String("o", "", "output file (default: next unused BENCH_<n>.json)")
		best      = flag.Int("best", 1, "measure each grid point N times and keep the fastest (noise rejection)")
	)
	testing.Init()
	flag.Parse()
	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fatal(err)
		}
	}

	tr, err := ppcsim.NewTrace(*traceName)
	if err != nil {
		fatal(err)
	}
	refs := len(tr.Refs)

	var base map[string]float64 // "policy/disks" -> refs/sec
	doc := benchFile{
		Trace:      *traceName,
		Refs:       refs,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if *baseline != "" {
		base, err = loadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		doc.Baseline = *baseline
	}

	for _, alg := range gridAlgs {
		for _, d := range gridDisks {
			alg, d := alg, d
			var pt benchPoint
			// System noise only ever slows a run down, so the fastest of
			// -best repeats is the least-perturbed measurement.
			for rep := 0; rep < *best || rep == 0; rep++ {
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: d}); err != nil {
							b.Fatal(err)
						}
					}
				})
				rps := float64(refs) * float64(res.N) / res.T.Seconds()
				if rep == 0 || rps > pt.RefsPerSec {
					pt = benchPoint{
						Policy:      string(alg),
						Disks:       d,
						Iterations:  res.N,
						NsPerOp:     res.NsPerOp(),
						AllocsPerOp: res.AllocsPerOp(),
						BytesPerOp:  res.AllocedBytesPerOp(),
						RefsPerSec:  rps,
					}
				}
			}
			if b, ok := base[fmt.Sprintf("%s/%d", alg, d)]; ok && b > 0 {
				pt.BaselineRefsPerSec = b
				pt.Speedup = pt.RefsPerSec / b
			}
			doc.Results = append(doc.Results, pt)
			fmt.Fprintf(os.Stderr, "%-14s %2dd  %12d ns/op  %7d allocs/op  %11.0f refs/s", alg, d, pt.NsPerOp, pt.AllocsPerOp, pt.RefsPerSec)
			if pt.Speedup > 0 {
				fmt.Fprintf(os.Stderr, "  %5.2fx", pt.Speedup)
			}
			fmt.Fprintln(os.Stderr)
		}
	}

	path := *out
	if path == "" {
		path = nextBenchFile()
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println(path)
}

// loadBaseline reads a prior BENCH file into a grid-point lookup.
func loadBaseline(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]float64, len(doc.Results))
	for _, r := range doc.Results {
		m[fmt.Sprintf("%s/%d", r.Policy, r.Disks)] = r.RefsPerSec
	}
	return m, nil
}

// nextBenchFile returns the first unused BENCH_<n>.json name.
func nextBenchFile() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ppc-bench:", err)
	os.Exit(1)
}
