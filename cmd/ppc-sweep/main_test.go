package main

import (
	"bytes"
	"strings"
	"testing"

	"ppcsim"
)

// TestParallelSweepDeterministic: the CSV must be byte-identical no
// matter how many workers run the sweep.
func TestParallelSweepDeterministic(t *testing.T) {
	sp := sweepSpec{
		traces:   []string{"synth", "xds"},
		algs:     []ppcsim.Algorithm{ppcsim.Demand, ppcsim.Forestall, ppcsim.Aggressive},
		disks:    []int{1, 3},
		scheds:   []ppcsim.Discipline{ppcsim.CSCAN, ppcsim.FCFS},
		caches:   []int{0},
		batches:  []int{0, 16},
		horizons: []int{0},
		hintFrac: 1,
		hintAcc:  1,
	}
	var serial bytes.Buffer
	if err := runSweep(sp, 1, &serial); err != nil {
		t.Fatal(err)
	}
	wantRows := len(sp.traces)*len(sp.algs)*len(sp.disks)*len(sp.scheds)*len(sp.caches)*len(sp.batches)*len(sp.horizons) + 1
	if got := strings.Count(serial.String(), "\n"); got != wantRows {
		t.Fatalf("serial sweep wrote %d rows, want %d", got, wantRows)
	}
	for _, parallel := range []int{2, 8} {
		var par bytes.Buffer
		if err := runSweep(sp, parallel, &par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial.Bytes(), par.Bytes()) {
			t.Errorf("-parallel %d output differs from -parallel 1", parallel)
		}
	}
}

// TestSweepReportsConfigErrors: a bad grid point surfaces the offending
// configuration instead of a bare error.
func TestSweepReportsConfigErrors(t *testing.T) {
	sp := sweepSpec{
		traces:   []string{"synth"},
		algs:     []ppcsim.Algorithm{ppcsim.Demand},
		disks:    []int{-1},
		scheds:   []ppcsim.Discipline{ppcsim.CSCAN},
		caches:   []int{0},
		batches:  []int{0},
		horizons: []int{0},
		hintFrac: 1,
		hintAcc:  1,
	}
	var buf bytes.Buffer
	err := runSweep(sp, 4, &buf)
	if err == nil {
		t.Fatal("negative disk count should fail the sweep")
	}
	if !strings.Contains(err.Error(), "synth/demand/d=-1") {
		t.Errorf("error %q does not name the failing configuration", err)
	}
}
