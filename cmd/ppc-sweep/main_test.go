package main

import (
	"bytes"
	"strings"
	"testing"

	"ppcsim"
)

// TestParallelSweepDeterministic: the CSV must be byte-identical no
// matter how many workers run the sweep.
func TestParallelSweepDeterministic(t *testing.T) {
	sp := sweepSpec{
		traces:   []string{"synth", "xds"},
		algs:     []ppcsim.Algorithm{ppcsim.Demand, ppcsim.Forestall, ppcsim.Aggressive},
		disks:    []int{1, 3},
		scheds:   []ppcsim.Discipline{ppcsim.CSCAN, ppcsim.FCFS},
		caches:   []int{0},
		batches:  []int{0, 16},
		horizons: []int{0},
		hintFrac: 1,
		hintAcc:  1,
	}
	var serial bytes.Buffer
	if err := runSweep(sp, 1, &serial); err != nil {
		t.Fatal(err)
	}
	wantRows := len(sp.traces)*len(sp.algs)*len(sp.disks)*len(sp.scheds)*len(sp.caches)*len(sp.batches)*len(sp.horizons) + 1
	if got := strings.Count(serial.String(), "\n"); got != wantRows {
		t.Fatalf("serial sweep wrote %d rows, want %d", got, wantRows)
	}
	for _, parallel := range []int{2, 8} {
		var par bytes.Buffer
		if err := runSweep(sp, parallel, &par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial.Bytes(), par.Bytes()) {
			t.Errorf("-parallel %d output differs from -parallel 1", parallel)
		}
	}
}

func TestSweepSplitHelpers(t *testing.T) {
	if got := splitList("a, ,b,"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitList: %v", got)
	}
	ints, err := splitInts("4,8")
	if err != nil || len(ints) != 2 || ints[1] != 8 {
		t.Errorf("splitInts: %v %v", ints, err)
	}
	if _, err := splitInts("4,?"); err == nil {
		t.Error("splitInts accepted a non-integer")
	}
}

// TestSweepStreamsLargeSpec: a -large grid expands under the spec's
// resolved name, streams every cell (no materialized trace), and
// renders the same CSV serial or parallel.
func TestSweepStreamsLargeSpec(t *testing.T) {
	large := ppcsim.LargeTraceSpec{Refs: 2000, Blocks: 256, Pattern: "zipf", Seed: 7}
	sp := sweepSpec{
		large:    &large,
		algs:     []ppcsim.Algorithm{ppcsim.Demand, ppcsim.Aggressive},
		disks:    []int{1},
		scheds:   []ppcsim.Discipline{ppcsim.CSCAN},
		caches:   []int{0},
		batches:  []int{0},
		horizons: []int{0},
		hintFrac: 1,
		hintAcc:  1,
		window:   64,
	}
	jobs, err := sp.jobs()
	if err != nil {
		t.Fatal(err)
	}
	name := large.ResolvedName()
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if j.traceName != name || j.trace != nil || j.large == nil {
			t.Errorf("large job: %+v, want name %q and a spec, no materialized trace", j, name)
		}
	}

	var buf bytes.Buffer
	if err := runSweep(sp, 2, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], name+",demand,1,CSCAN,") ||
		!strings.HasPrefix(lines[2], name+",aggressive,1,CSCAN,") {
		t.Errorf("rows:\n%s\n%s", lines[1], lines[2])
	}

	var again bytes.Buffer
	if err := runSweep(sp, 0, &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Error("parallel and serial streamed sweeps rendered different CSV")
	}

	// An unknown bundled trace fails expansion rather than sweeping.
	sp.large = nil
	sp.traces = []string{"no-such-trace"}
	if err := runSweep(sp, 1, &bytes.Buffer{}); err == nil {
		t.Error("unknown trace swept without error")
	}
}

// TestSweepReportsConfigErrors: a bad grid point surfaces the offending
// configuration instead of a bare error.
func TestSweepReportsConfigErrors(t *testing.T) {
	sp := sweepSpec{
		traces:   []string{"synth"},
		algs:     []ppcsim.Algorithm{ppcsim.Demand},
		disks:    []int{-1},
		scheds:   []ppcsim.Discipline{ppcsim.CSCAN},
		caches:   []int{0},
		batches:  []int{0},
		horizons: []int{0},
		hintFrac: 1,
		hintAcc:  1,
	}
	var buf bytes.Buffer
	err := runSweep(sp, 4, &buf)
	if err == nil {
		t.Fatal("negative disk count should fail the sweep")
	}
	if !strings.Contains(err.Error(), "synth/demand/d=-1") {
		t.Errorf("error %q does not name the failing configuration", err)
	}
}
