// Command ppc-sweep runs a cross-product of configurations and emits one
// CSV row per run, for plotting or regression tracking. Runs execute on a
// worker pool (-parallel, default one worker per CPU); rows are written
// in configuration order regardless of worker count, so the output is
// byte-identical for any -parallel value.
//
// Usage:
//
//	ppc-sweep -traces synth,ld -algs fixed-horizon,aggressive -disks 1,2,4
//	ppc-sweep -traces all -algs forestall -disks 1,4 -scheds cscan,fcfs -o out.csv
//	ppc-sweep -traces all -algs all -parallel 8
//	ppc-sweep -large 1e7:65536:zipf:1 -window 4096 -algs forestall -disks 2
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"ppcsim"
)

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// job is one grid point of the sweep. Exactly one of trace and large is
// set: a materialized bundled trace, or a generator spec each worker
// streams through its own Source (sources are stateful, so they cannot
// be shared the way a read-only *Trace can).
type job struct {
	traceName string
	trace     *ppcsim.Trace
	large     *ppcsim.LargeTraceSpec
	alg       ppcsim.Algorithm
	disks     int
	sched     ppcsim.Discipline
	cache     int
	batch     int
	horizon   int
}

// sweepSpec is the parsed cross-product.
type sweepSpec struct {
	traces   []string
	large    *ppcsim.LargeTraceSpec
	algs     []ppcsim.Algorithm
	disks    []int
	scheds   []ppcsim.Discipline
	caches   []int
	batches  []int
	horizons []int
	hintFrac float64
	hintAcc  float64
	window   int
}

// jobs expands the spec into the ordered job list (trace-major, matching
// the CSV row order).
func (sp sweepSpec) jobs() ([]job, error) {
	type traceCase struct {
		name  string
		trace *ppcsim.Trace
		large *ppcsim.LargeTraceSpec
	}
	var cases []traceCase
	if sp.large != nil {
		cases = []traceCase{{name: sp.large.ResolvedName(), large: sp.large}}
	} else {
		for _, tn := range sp.traces {
			tr, err := ppcsim.NewTrace(tn)
			if err != nil {
				return nil, err
			}
			cases = append(cases, traceCase{name: tn, trace: tr})
		}
	}
	var out []job
	for _, tc := range cases {
		for _, alg := range sp.algs {
			for _, d := range sp.disks {
				for _, sched := range sp.scheds {
					for _, k := range sp.caches {
						for _, b := range sp.batches {
							for _, h := range sp.horizons {
								out = append(out, job{
									traceName: tc.name, trace: tc.trace, large: tc.large,
									alg: alg, disks: d,
									sched: sched, cache: k, batch: b, horizon: h,
								})
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// runSweep executes every job on `parallel` workers and writes the CSV in
// job order. A run that shares a *Trace with other workers is safe: the
// simulator treats the trace as read-only.
func runSweep(sp sweepSpec, parallel int, w io.Writer) error {
	jobs, err := sp.jobs()
	if err != nil {
		return err
	}
	var hints *ppcsim.HintSpec
	if sp.hintFrac != 1 || sp.hintAcc != 1 || sp.window > 0 { //ppcvet:ignore flag-default sentinels, parsed rather than computed
		hints = &ppcsim.HintSpec{Fraction: sp.hintFrac, Accuracy: sp.hintAcc, Window: sp.window}
	}
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(jobs) && len(jobs) > 0 {
		parallel = len(jobs)
	}

	results := make([]ppcsim.Result, len(jobs))
	errs := make([]error, len(jobs))
	next := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				j := jobs[idx]
				opts := ppcsim.Options{
					Trace:       j.trace,
					Algorithm:   j.alg,
					Disks:       j.disks,
					Scheduler:   j.sched,
					CacheBlocks: j.cache,
					BatchSize:   j.batch,
					Horizon:     j.horizon,
					Hints:       hints,
				}
				if j.large != nil {
					src, err := j.large.Source()
					if err != nil {
						errs[idx] = err
						continue
					}
					opts.Source = src
				}
				results[idx], errs[idx] = ppcsim.Run(opts)
			}
		}()
	}
	for idx := range jobs {
		next <- idx
	}
	close(next)
	wg.Wait()

	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"trace", "algorithm", "disks", "scheduler", "cache_blocks", "batch", "horizon",
		"hint_fraction", "hint_accuracy", "window",
		"elapsed_sec", "compute_sec", "driver_sec", "stall_sec",
		"fetches", "avg_fetch_ms", "avg_response_ms", "avg_utilization",
	}); err != nil {
		return err
	}
	for idx, j := range jobs {
		if errs[idx] != nil {
			cw.Flush()
			return fmt.Errorf("%s/%s/d=%d: %w", j.traceName, j.alg, j.disks, errs[idx])
		}
		r := results[idx]
		rec := []string{
			j.traceName, string(j.alg), strconv.Itoa(j.disks), j.sched.String(),
			strconv.Itoa(j.cache), strconv.Itoa(j.batch), strconv.Itoa(j.horizon),
			fmt.Sprintf("%g", sp.hintFrac), fmt.Sprintf("%g", sp.hintAcc),
			strconv.Itoa(sp.window),
			fmt.Sprintf("%.4f", r.ElapsedSec),
			fmt.Sprintf("%.4f", r.ComputeSec),
			fmt.Sprintf("%.4f", r.DriverTimeSec),
			fmt.Sprintf("%.4f", r.StallTimeSec),
			strconv.FormatInt(r.Fetches, 10),
			fmt.Sprintf("%.3f", r.AvgFetchMs),
			fmt.Sprintf("%.3f", r.AvgResponseMs),
			fmt.Sprintf("%.3f", r.AvgUtilization),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func main() {
	var (
		traces   = flag.String("traces", "synth", "comma-separated trace names, or 'all'")
		large    = flag.String("large", "", "stream a synthetic trace instead of -traces: refs[:blocks[:pattern[:seed]]] (requires -window)")
		algs     = flag.String("algs", "fixed-horizon,aggressive,forestall", "comma-separated algorithms, or 'all'")
		disks    = flag.String("disks", "1,2,4", "comma-separated array sizes")
		scheds   = flag.String("scheds", "cscan", "comma-separated schedulers: cscan,fcfs")
		caches   = flag.String("caches", "0", "comma-separated cache sizes (0 = trace default)")
		batches  = flag.String("batches", "0", "comma-separated batch sizes (0 = paper default)")
		horizons = flag.String("horizons", "0", "comma-separated horizons (0 = 62)")
		hintFrac = flag.Float64("hint-fraction", 1, "fraction of references disclosed")
		hintAcc  = flag.Float64("hint-accuracy", 1, "accuracy of disclosed hints")
		window   = flag.Int("window", 0, "lookahead window in references (0 = unlimited)")
		parallel = flag.Int("parallel", runtime.NumCPU(), "number of concurrent simulations")
		out      = flag.String("o", "", "output CSV file (default stdout)")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *window < 0 {
		die(&ppcsim.ConfigError{Field: "Window",
			Reason: fmt.Sprintf("must be non-negative, got %d (0 = unlimited)", *window)})
	}
	sp := sweepSpec{hintFrac: *hintFrac, hintAcc: *hintAcc, window: *window}
	if *large != "" {
		tracesSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "traces" {
				tracesSet = true
			}
		})
		if tracesSet {
			die(&ppcsim.ConfigError{Field: "Trace",
				Reason: "-large and -traces are mutually exclusive"})
		}
		if *window <= 0 {
			die(&ppcsim.ConfigError{Field: "Window",
				Reason: "-large streams the trace and requires a bounded -window"})
		}
		spec, err := ppcsim.ParseLargeTraceSpec(*large)
		if err != nil {
			die(err)
		}
		sp.large = &spec
	}
	sp.traces = splitList(*traces)
	if len(sp.traces) == 1 && sp.traces[0] == "all" {
		sp.traces = ppcsim.TraceNames
	}
	algNames := splitList(*algs)
	if len(algNames) == 1 && algNames[0] == "all" {
		sp.algs = ppcsim.Algorithms
	} else {
		for _, name := range algNames {
			a, err := ppcsim.ParseAlgorithm(name)
			if err != nil {
				die(err)
			}
			sp.algs = append(sp.algs, a)
		}
	}
	var err error
	if sp.disks, err = splitInts(*disks); err != nil {
		die(err)
	}
	if sp.caches, err = splitInts(*caches); err != nil {
		die(err)
	}
	if sp.batches, err = splitInts(*batches); err != nil {
		die(err)
	}
	if sp.horizons, err = splitInts(*horizons); err != nil {
		die(err)
	}
	for _, s := range splitList(*scheds) {
		d, err := ppcsim.ParseDiscipline(s)
		if err != nil {
			die(err)
		}
		sp.scheds = append(sp.scheds, d)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}
	if err := runSweep(sp, *parallel, w); err != nil {
		die(err)
	}
}
