// Command ppc-sweep runs a cross-product of configurations and emits one
// CSV row per run, for plotting or regression tracking.
//
// Usage:
//
//	ppc-sweep -traces synth,ld -algs fixed-horizon,aggressive -disks 1,2,4
//	ppc-sweep -traces all -algs forestall -disks 1,4 -scheds cscan,fcfs -o out.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ppcsim"
)

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		traces   = flag.String("traces", "synth", "comma-separated trace names, or 'all'")
		algs     = flag.String("algs", "fixed-horizon,aggressive,forestall", "comma-separated algorithms")
		disks    = flag.String("disks", "1,2,4", "comma-separated array sizes")
		scheds   = flag.String("scheds", "cscan", "comma-separated schedulers: cscan,fcfs")
		caches   = flag.String("caches", "0", "comma-separated cache sizes (0 = trace default)")
		batches  = flag.String("batches", "0", "comma-separated batch sizes (0 = paper default)")
		horizons = flag.String("horizons", "0", "comma-separated horizons (0 = 62)")
		hintFrac = flag.Float64("hint-fraction", 1, "fraction of references disclosed")
		hintAcc  = flag.Float64("hint-accuracy", 1, "accuracy of disclosed hints")
		out      = flag.String("o", "", "output CSV file (default stdout)")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	traceNames := splitList(*traces)
	if len(traceNames) == 1 && traceNames[0] == "all" {
		traceNames = ppcsim.TraceNames
	}
	diskList, err := splitInts(*disks)
	if err != nil {
		die(err)
	}
	cacheList, err := splitInts(*caches)
	if err != nil {
		die(err)
	}
	batchList, err := splitInts(*batches)
	if err != nil {
		die(err)
	}
	horizonList, err := splitInts(*horizons)
	if err != nil {
		die(err)
	}
	var schedList []ppcsim.Discipline
	for _, s := range splitList(*scheds) {
		switch s {
		case "cscan":
			schedList = append(schedList, ppcsim.CSCAN)
		case "fcfs":
			schedList = append(schedList, ppcsim.FCFS)
		default:
			die(fmt.Errorf("unknown scheduler %q", s))
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"trace", "algorithm", "disks", "scheduler", "cache_blocks", "batch", "horizon",
		"hint_fraction", "hint_accuracy",
		"elapsed_sec", "compute_sec", "driver_sec", "stall_sec",
		"fetches", "avg_fetch_ms", "avg_response_ms", "avg_utilization",
	}); err != nil {
		die(err)
	}

	var hints *ppcsim.HintSpec
	if *hintFrac != 1 || *hintAcc != 1 {
		hints = &ppcsim.HintSpec{Fraction: *hintFrac, Accuracy: *hintAcc}
	}

	for _, tn := range traceNames {
		tr, err := ppcsim.NewTrace(tn)
		if err != nil {
			die(err)
		}
		for _, alg := range splitList(*algs) {
			for _, d := range diskList {
				for _, sched := range schedList {
					for _, k := range cacheList {
						for _, b := range batchList {
							for _, h := range horizonList {
								r, err := ppcsim.Run(ppcsim.Options{
									Trace:       tr,
									Algorithm:   ppcsim.Algorithm(alg),
									Disks:       d,
									Scheduler:   sched,
									CacheBlocks: k,
									BatchSize:   b,
									Horizon:     h,
									Hints:       hints,
								})
								if err != nil {
									die(fmt.Errorf("%s/%s/d=%d: %w", tn, alg, d, err))
								}
								rec := []string{
									tn, alg, strconv.Itoa(d), sched.String(),
									strconv.Itoa(k), strconv.Itoa(b), strconv.Itoa(h),
									fmt.Sprintf("%g", *hintFrac), fmt.Sprintf("%g", *hintAcc),
									fmt.Sprintf("%.4f", r.ElapsedSec),
									fmt.Sprintf("%.4f", r.ComputeSec),
									fmt.Sprintf("%.4f", r.DriverTimeSec),
									fmt.Sprintf("%.4f", r.StallTimeSec),
									strconv.FormatInt(r.Fetches, 10),
									fmt.Sprintf("%.3f", r.AvgFetchMs),
									fmt.Sprintf("%.3f", r.AvgResponseMs),
									fmt.Sprintf("%.3f", r.AvgUtilization),
								}
								if err := cw.Write(rec); err != nil {
									die(err)
								}
							}
						}
					}
				}
			}
		}
	}
}
