package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppcsim/internal/load"
)

// TestRunRampEmbedded exercises the default path end to end: flag-built
// ramp spec, embedded server, table on stderr, report path on stdout,
// and a report that round-trips through the strict parser.
func TestRunRampEmbedded(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "LOAD_0.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-mode", "ramp",
		"-start-rps", "40", "-step-rps", "40", "-max-rps", "80", "-step-seconds", "0.2",
		"-cold-refs", "16", "-workers", "2", "-queue", "8",
		"-o", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != out {
		t.Fatalf("stdout = %q, want the report path %q", got, out)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := load.ParseReport(raw)
	if err != nil {
		t.Fatalf("emitted report does not round-trip: %v", err)
	}
	if rep.Target != "embedded" || rep.Spec.Mode != "ramp" || len(rep.Phases) == 0 {
		t.Fatalf("report = target %q mode %q phases %d", rep.Target, rep.Spec.Mode, len(rep.Phases))
	}
	if rep.Saturation == nil {
		t.Fatal("ramp report carries no saturation section")
	}
	for _, want := range []string{"ramp@40rps", "consistency:", "embedded server"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr table missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestRunSpecFile runs from a -spec document (the checked-in-baseline
// path) and honors -mode-independent spec fields like skip_prime.
func TestRunSpecFile(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	doc := `{"seed":3,"mode":"sweep","cold_refs":16,"skip_prime":true,"sweep":{"rps":[40],"seconds_per_point":0.2}}`
	if err := os.WriteFile(specPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "report.json")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-spec", specPath, "-workers", "2", "-o", out}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := load.ParseReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Spec.SkipPrime || rep.Spec.Seed != 3 {
		t.Fatalf("spec not embedded verbatim: %+v", rep.Spec)
	}
	// skip_prime means the warm-up line must not appear.
	if strings.Contains(stderr.String(), "primed") {
		t.Fatalf("skip_prime ran the warm-up pass:\n%s", stderr.String())
	}
}

// TestRunCheck pins the -check round-trip gate: a valid report prints a
// one-line summary; a corrupted one fails naming the file.
func TestRunCheck(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "LOAD_0.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-mode", "sweep", "-rps-grid", "40", "-seconds-per-point", "0.2",
		"-cold-refs", "16", "-workers", "2", "-o", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}

	stdout.Reset()
	if err := run([]string{"-check", out}, &stdout, &stderr); err != nil {
		t.Fatalf("-check on a fresh report: %v", err)
	}
	if got := stdout.String(); !strings.Contains(got, "valid v1 report") || !strings.Contains(got, "target embedded") {
		t.Fatalf("-check output = %q", got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"bogus":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-check", bad}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("-check on a corrupt report: err = %v", err)
	}
}

// TestRunErrors covers the flag/spec failure paths.
func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	for name, args := range map[string][]string{
		"unknown flag":  {"-frobnicate"},
		"bad mode":      {"-mode", "stampede"},
		"bad rps grid":  {"-mode", "sweep", "-rps-grid", "10,x"},
		"missing spec":  {"-spec", filepath.Join(t.TempDir(), "absent.json")},
		"ramp max<min":  {"-mode", "ramp", "-start-rps", "100", "-max-rps", "10"},
		"negative step": {"-mode", "ramp", "-step-rps", "-5"},
	} {
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}

// TestRunBadSpecFile: an invalid spec document names its field.
func TestRunBadSpecFile(t *testing.T) {
	specPath := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"mode":"ramp","turbo":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	err := run([]string{"-spec", specPath}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "LoadSpec") {
		t.Fatalf("err = %v", err)
	}
}

// TestParseFloats pins the grid parser.
func TestParseFloats(t *testing.T) {
	got, err := parseFloats(" 1, 2.5 ,30 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2.5 || got[2] != 30 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := parseFloats("1,,2"); err == nil {
		t.Fatal("empty element accepted")
	}
}
