// Command ppc-load is the serving stack's load generator and capacity
// meter: it drives a v1 server (ppc-serve, or a ppc-coord front end)
// with a deterministic, seeded open-loop request mix and writes a
// versioned LOAD_<n>.json capacity report — per-class latency
// percentiles, achieved-vs-offered RPS, error/429/timeout counts, the
// 429-backpressure saturation point (ramp mode), and an SLO verdict.
// It is the serving analogue of ppc-bench: check a report in next to
// BENCH_<n>.json and every future serving change is gated on measured
// capacity. See docs/load.md for the spec and report vocabulary.
//
// Usage:
//
//	ppc-load -mode ramp                          # embedded server, default ramp
//	ppc-load -target http://localhost:8080       # against a running ppc-serve
//	ppc-load -spec load.json -o LOAD_1.json      # full spec control
//	ppc-load -mode burst -low-rps 50 -high-rps 2000
//
// With no -target, ppc-load runs an embedded in-process server (the
// full HTTP handler path minus the TCP stack) sized by -workers/-queue,
// so a laptop measurement and a CI gate use the same code path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"ppcsim/internal/load"
	"ppcsim/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ppc-load:", err)
		os.Exit(1)
	}
}

// run is main with the process edges injected for the tests.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ppc-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		specPath = fs.String("spec", "", "LoadSpec JSON file (overrides the mode/rps flags)")
		check    = fs.String("check", "", "parse an existing LOAD report strictly and exit (round-trip gate)")
		target   = fs.String("target", "", "v1 server base URL (empty = embedded in-process server)")
		out      = fs.String("o", "", "output file (default: next unused LOAD_<n>.json)")
		seed     = fs.Int64("seed", 1, "request-mix and jitter seed")
		mode     = fs.String("mode", "ramp", "ramp, sweep, or burst (ignored with -spec)")

		startRPS    = fs.Float64("start-rps", 100, "ramp: first step's offered RPS")
		stepRPS     = fs.Float64("step-rps", 100, "ramp: offered RPS increase per step")
		maxRPS      = fs.Float64("max-rps", 3000, "ramp: give up above this offered RPS")
		stepSeconds = fs.Float64("step-seconds", 1, "ramp: seconds per step")
		onset       = fs.Float64("onset", 0, "ramp: 429 fraction declaring saturation (0 = default 0.01)")

		rpsGrid     = fs.String("rps-grid", "100,500,1000", "sweep: comma-separated RPS points")
		perPoint    = fs.Float64("seconds-per-point", 2, "sweep: seconds per grid point")
		lowRPS      = fs.Float64("low-rps", 100, "burst: baseline/recovery RPS")
		highRPS     = fs.Float64("high-rps", 2000, "burst: overload RPS")
		period      = fs.Float64("period", 4, "burst: seconds per low+high cycle")
		cycles      = fs.Int("cycles", 3, "burst: square-wave cycles")
		coldRefs    = fs.Int("cold-refs", 0, "references per synthesized cold trace body (0 = 192)")
		maxInFlight = fs.Int("max-in-flight", 0, "open-loop in-flight cap before arrivals are shed (0 = 4096)")

		workers    = fs.Int("workers", 0, "embedded server: concurrent simulations (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "embedded server: queue bound before 429s (0 = 4x workers)")
		entries    = fs.Int("cache-entries", 0, "embedded server: result-cache entries (0 = 1024)")
		maxBody    = fs.Int64("max-body", 0, "embedded server: request body byte limit (0 = 8 MiB)")
		simTimeout = fs.Duration("sim-timeout", 0, "embedded server: per-request simulation deadline (0 = 60s)")
		clientTO   = fs.Duration("client-timeout", 30*time.Second, "HTTP target: per-request client deadline (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *check != "" {
		raw, err := os.ReadFile(*check)
		if err != nil {
			return err
		}
		rep, err := load.ParseReport(raw)
		if err != nil {
			return fmt.Errorf("%s: %w", *check, err)
		}
		fmt.Fprintf(stdout, "%s: valid v%d report (%d phases, target %s)\n", *check, rep.Version, len(rep.Phases), rep.Target)
		return nil
	}

	var spec *load.LoadSpec
	if *specPath != "" {
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		if spec, err = load.ParseLoadSpec(raw); err != nil {
			return fmt.Errorf("%s: %w", *specPath, err)
		}
	} else {
		spec = &load.LoadSpec{Seed: *seed, Mode: *mode, ColdRefs: *coldRefs, MaxInFlight: *maxInFlight}
		switch *mode {
		case "ramp":
			spec.Ramp = &load.RampSpec{
				StartRPS:         *startRPS,
				StepRPS:          *stepRPS,
				MaxRPS:           *maxRPS,
				StepSeconds:      *stepSeconds,
				Onset429Fraction: *onset,
			}
		case "sweep":
			grid, err := parseFloats(*rpsGrid)
			if err != nil {
				return fmt.Errorf("-rps-grid: %w", err)
			}
			spec.Sweep = &load.SweepSpec{RPS: grid, SecondsPerPoint: *perPoint}
		case "burst":
			spec.Burst = &load.BurstSpec{LowRPS: *lowRPS, HighRPS: *highRPS, PeriodSeconds: *period, Cycles: *cycles}
		}
		if err := spec.Validate(); err != nil {
			return err
		}
	}

	var tgt load.Target
	if *target != "" {
		tgt = load.NewHTTPTarget(strings.TrimRight(*target, "/"), *clientTO)
	} else {
		srv := serve.New(serve.Config{
			Workers:        *workers,
			QueueDepth:     *queue,
			CacheEntries:   *entries,
			MaxBodyBytes:   *maxBody,
			DefaultTimeout: *simTimeout,
		})
		defer srv.Close()
		tgt = load.NewHandlerTarget("embedded", srv.Handler())
		fmt.Fprintf(stderr, "ppc-load: embedded server (workers=%d queue=%d)\n",
			srv.Snapshot().Workers, srv.Snapshot().QueueCapacity)
	}

	runner := &load.Runner{Spec: spec, Target: tgt, Log: stderr}
	rep, err := runner.Run(context.Background())
	if err != nil {
		return err
	}
	load.WriteTable(stderr, rep)

	path := *out
	if path == "" {
		path = load.NextReportPath(".")
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(stdout, path)
	if rep.SLO != nil && !rep.SLO.Pass {
		return fmt.Errorf("SLO verdict: FAIL (%d violations; see %s)", len(rep.SLO.Violations), path)
	}
	return nil
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
