package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestBoundaryExitCodes is the CLI half of the boundary-validation
// table: configuration mistakes exit 2 with a ConfigError-derived
// message on stderr, never a panic and never exit 1's runtime-failure
// meaning.
func TestBoundaryExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring
	}{
		{"default run", []string{"-trace", "synth", "-alg", "demand"}, 0, ""},
		{"zero disks", []string{"-disks", "0"}, 2, "Disks"},
		{"negative disks", []string{"-disks", "-3"}, 2, "Disks"},
		{"zero cache", []string{"-cache", "0"}, 2, "CacheBlocks"},
		{"negative cache", []string{"-cache", "-8"}, 2, "CacheBlocks"},
		{"one-block cache", []string{"-cache", "1"}, 2, "CacheBlocks"},
		{"unknown algorithm", []string{"-alg", "tip2"}, 2, "Algorithm"},
		{"unknown scheduler", []string{"-sched", "sstf"}, 2, "Scheduler"},
		{"unknown trace", []string{"-trace", "bogus"}, 2, "Trace"},
		{"negative batch", []string{"-alg", "aggressive", "-batch", "-1"}, 2, "BatchSize"},
		{"negative horizon", []string{"-alg", "fixed-horizon", "-horizon", "-1"}, 2, "Horizon"},
		{"zero window", []string{"-alg", "fixed-horizon", "-window", "0"}, 2, "Window"},
		{"negative window", []string{"-alg", "fixed-horizon", "-window", "-4"}, 2, "Window"},
		{"bad hint fraction", []string{"-alg", "fixed-horizon", "-hint-fraction", "1.5"}, 2, "hint fraction"},
		{"windowed reverse-aggressive", []string{"-alg", "reverse-aggressive", "-window", "10"}, 2, "Hints"},
		{"unparseable flag", []string{"-disks", "many"}, 2, ""},
		{"unknown flag", []string{"-frobnicate"}, 2, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			args := c.args
			if c.name != "unknown trace" && c.name != "default run" {
				// Keep failure cases fast: a tiny truncated run never
				// happens anyway (they must fail before simulating), but a
				// typo here shouldn't cost a full-trace simulation.
				args = append([]string{"-trace", "synth"}, args...)
			}
			var stdout, stderr bytes.Buffer
			code := run(args, &stdout, &stderr)
			if code != c.code {
				t.Fatalf("exit %d, want %d\nstderr: %s", code, c.code, stderr.String())
			}
			if c.stderr != "" && !strings.Contains(stderr.String(), c.stderr) {
				t.Errorf("stderr %q does not name field %q", stderr.String(), c.stderr)
			}
			if c.code != 0 && stdout.Len() > 0 {
				t.Errorf("failed run wrote to stdout: %s", stdout.String())
			}
		})
	}
}

// TestRunWindowedSucceeds: a positive -window is accepted and the run
// completes; the flag alone implies fully-accurate hints.
func TestRunWindowedSucceeds(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trace", "ld", "-alg", "fixed-horizon", "-window", "64"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "elapsed time (sec):") {
		t.Errorf("output missing metrics:\n%s", stdout.String())
	}
}

// TestRunPrintsMetrics sanity-checks the success path's report shape.
func TestRunPrintsMetrics(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trace", "ld", "-alg", "forestall", "-disks", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"fetches:", "elapsed time (sec):", "stall time (sec):", "avg disk util:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
