package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppcsim"
)

// TestBoundaryExitCodes is the CLI half of the boundary-validation
// table: configuration mistakes exit 2 with a ConfigError-derived
// message on stderr, never a panic and never exit 1's runtime-failure
// meaning.
func TestBoundaryExitCodes(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string // required substring
	}{
		{"default run", []string{"-trace", "synth", "-alg", "demand"}, 0, ""},
		{"zero disks", []string{"-disks", "0"}, 2, "Disks"},
		{"negative disks", []string{"-disks", "-3"}, 2, "Disks"},
		{"zero cache", []string{"-cache", "0"}, 2, "CacheBlocks"},
		{"negative cache", []string{"-cache", "-8"}, 2, "CacheBlocks"},
		{"one-block cache", []string{"-cache", "1"}, 2, "CacheBlocks"},
		{"unknown algorithm", []string{"-alg", "tip2"}, 2, "Algorithm"},
		{"unknown scheduler", []string{"-sched", "sstf"}, 2, "Scheduler"},
		{"unknown trace", []string{"-trace", "bogus"}, 2, "Trace"},
		{"negative batch", []string{"-alg", "aggressive", "-batch", "-1"}, 2, "BatchSize"},
		{"negative horizon", []string{"-alg", "fixed-horizon", "-horizon", "-1"}, 2, "Horizon"},
		{"zero window", []string{"-alg", "fixed-horizon", "-window", "0"}, 2, "Window"},
		{"negative window", []string{"-alg", "fixed-horizon", "-window", "-4"}, 2, "Window"},
		{"bad hint fraction", []string{"-alg", "fixed-horizon", "-hint-fraction", "1.5"}, 2, "hint fraction"},
		{"windowed reverse-aggressive", []string{"-alg", "reverse-aggressive", "-window", "10"}, 2, "Hints"},
		{"unparseable flag", []string{"-disks", "many"}, 2, ""},
		{"unknown flag", []string{"-frobnicate"}, 2, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			args := c.args
			if c.name != "unknown trace" && c.name != "default run" {
				// Keep failure cases fast: a tiny truncated run never
				// happens anyway (they must fail before simulating), but a
				// typo here shouldn't cost a full-trace simulation.
				args = append([]string{"-trace", "synth"}, args...)
			}
			var stdout, stderr bytes.Buffer
			code := run(args, &stdout, &stderr)
			if code != c.code {
				t.Fatalf("exit %d, want %d\nstderr: %s", code, c.code, stderr.String())
			}
			if c.stderr != "" && !strings.Contains(stderr.String(), c.stderr) {
				t.Errorf("stderr %q does not name field %q", stderr.String(), c.stderr)
			}
			if c.code != 0 && stdout.Len() > 0 {
				t.Errorf("failed run wrote to stdout: %s", stdout.String())
			}
		})
	}
}

// TestRunWindowedSucceeds: a positive -window is accepted and the run
// completes; the flag alone implies fully-accurate hints.
func TestRunWindowedSucceeds(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trace", "ld", "-alg", "fixed-horizon", "-window", "64"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "elapsed time (sec):") {
		t.Errorf("output missing metrics:\n%s", stdout.String())
	}
}

// TestRunStreaming covers the streaming flags: -stream must reproduce
// the materialized run's metrics exactly (only the wall-clock refs/sec
// line may differ), -large must stream a synthetic trace, and the
// streaming-specific misconfigurations must exit 2.
func TestRunStreaming(t *testing.T) {
	strip := func(out string) string {
		var kept []string
		for _, line := range strings.Split(out, "\n") {
			if !strings.Contains(line, "refs/sec") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}

	var mat, str, stderr bytes.Buffer
	if code := run([]string{"-trace", "ld", "-alg", "aggressive", "-disks", "2", "-window", "128"}, &mat, &stderr); code != 0 {
		t.Fatalf("materialized exit %d\nstderr: %s", code, stderr.String())
	}
	if code := run([]string{"-trace", "ld", "-alg", "aggressive", "-disks", "2", "-window", "128", "-stream"}, &str, &stderr); code != 0 {
		t.Fatalf("streamed exit %d\nstderr: %s", code, stderr.String())
	}
	if strip(mat.String()) != strip(str.String()) {
		t.Errorf("streamed metrics differ from materialized:\n--- materialized\n%s\n--- streamed\n%s", mat.String(), str.String())
	}

	var out bytes.Buffer
	stderr.Reset()
	if code := run([]string{"-large", "20000:512:zipf:1", "-window", "100", "-alg", "forestall", "-disks", "2"}, &out, &stderr); code != 0 {
		t.Fatalf("-large exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(out.String(), "refs/sec") {
		t.Errorf("-large output missing refs/sec:\n%s", out.String())
	}

	out.Reset()
	stderr.Reset()
	if code := run([]string{"-trace", "ld", "-alg", "demand", "-window", "-1", "-stream"}, &out, &stderr); code != 0 {
		t.Fatalf("-window -1 -stream exit %d\nstderr: %s", code, stderr.String())
	}

	for _, c := range []struct {
		name   string
		args   []string
		stderr string
	}{
		{"stream without window", []string{"-trace", "ld", "-alg", "demand", "-stream"}, "Hints"},
		{"large without window", []string{"-large", "1000:64", "-alg", "demand"}, "Hints"},
		{"bad large spec", []string{"-large", "zipf", "-window", "16"}, "Trace"},
		{"large plus trace", []string{"-trace", "ld", "-large", "1000:64", "-window", "16"}, "Trace"},
		{"large plus trace-file", []string{"-large", "1000:64", "-trace-file", "x.col", "-window", "16"}, "Trace"},
		{"streaming reverse-aggressive", []string{"-large", "1000:64", "-alg", "reverse-aggressive", "-window", "16"}, "Algorithm"},
		{"missing trace-file", []string{"-trace-file", "/nonexistent.col", "-stream", "-window", "16"}, "Trace"},
	} {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.stderr) {
				t.Errorf("stderr %q does not name %q", stderr.String(), c.stderr)
			}
		})
	}
}

// TestRunTraceFile runs a columnar file through both the materialized
// and streamed paths; the metrics must match exactly.
func TestRunTraceFile(t *testing.T) {
	tr, err := ppcsim.NewTrace("ld")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ld.col")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ppcsim.WriteColumnarTrace(f, tr.Source()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	strip := func(out string) string {
		var kept []string
		for _, line := range strings.Split(out, "\n") {
			if !strings.Contains(line, "refs/sec") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	var mat, str, stderr bytes.Buffer
	if code := run([]string{"-trace-file", path, "-alg", "forestall", "-disks", "2", "-window", "64"}, &mat, &stderr); code != 0 {
		t.Fatalf("materialized exit %d\nstderr: %s", code, stderr.String())
	}
	if code := run([]string{"-trace-file", path, "-stream", "-alg", "forestall", "-disks", "2", "-window", "64"}, &str, &stderr); code != 0 {
		t.Fatalf("streamed exit %d\nstderr: %s", code, stderr.String())
	}
	if strip(mat.String()) != strip(str.String()) {
		t.Errorf("streamed -trace-file metrics differ:\n--- materialized\n%s\n--- streamed\n%s", mat.String(), str.String())
	}
}

// TestRunPrintsMetrics sanity-checks the success path's report shape.
func TestRunPrintsMetrics(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trace", "ld", "-alg", "forestall", "-disks", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"fetches:", "elapsed time (sec):", "stall time (sec):", "avg disk util:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
