// Command ppc-sim runs a single prefetching-and-caching simulation and
// prints its metrics.
//
// Usage:
//
//	ppc-sim -trace postgres-select -alg forestall -disks 4
//	ppc-sim -trace synth -alg aggressive -disks 3 -batch 40 -sched fcfs
package main

import (
	"flag"
	"fmt"
	"os"

	"ppcsim"
)

func main() {
	var (
		traceName = flag.String("trace", "synth", "trace name (see ppc-traces for the list)")
		alg       = flag.String("alg", "forestall", "algorithm: demand, fixed-horizon, aggressive, reverse-aggressive, forestall")
		disks     = flag.Int("disks", 1, "number of disks in the array")
		cacheBlk  = flag.Int("cache", 0, "cache size in 8K blocks (0 = trace default)")
		sched     = flag.String("sched", "cscan", "disk-head scheduling: cscan or fcfs")
		batch     = flag.Int("batch", 0, "batch size for aggressive/forestall/reverse-aggressive (0 = paper default)")
		horizon   = flag.Int("horizon", 0, "prefetch horizon H for fixed-horizon/forestall (0 = 62)")
		festimate = flag.Float64("f", 0, "reverse aggressive's fetch time estimate F (0 = 32)")
		fixedF    = flag.Float64("forestall-f", 0, "fix forestall's F' instead of dynamic estimation")
		overhead  = flag.Float64("driver-ms", 0, "driver overhead per request in ms (0 = 0.5, negative = none)")
		simple    = flag.Bool("simple-disk", false, "use the simplified fixed-latency disk model")
		seed      = flag.Int64("seed", 0, "data placement seed")
		cpuScale  = flag.Float64("cpu-scale", 1, "scale all compute times (0.5 = double-speed CPU)")
		perDisk   = flag.Bool("per-disk", false, "print a per-disk breakdown")
	)
	flag.Parse()

	tr, err := ppcsim.NewTrace(*traceName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *cpuScale != 1 {
		tr = tr.ScaleCompute(*cpuScale)
	}
	opts := ppcsim.Options{
		Trace:            tr,
		Algorithm:        ppcsim.Algorithm(*alg),
		Disks:            *disks,
		CacheBlocks:      *cacheBlk,
		BatchSize:        *batch,
		Horizon:          *horizon,
		FetchEstimate:    *festimate,
		ForestallFixedF:  *fixedF,
		DriverOverheadMs: *overhead,
		SimpleDiskModel:  *simple,
		PlacementSeed:    *seed,
	}
	switch *sched {
	case "cscan":
		opts.Scheduler = ppcsim.CSCAN
	case "fcfs":
		opts.Scheduler = ppcsim.FCFS
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q (want cscan or fcfs)\n", *sched)
		os.Exit(1)
	}
	res, err := ppcsim.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(res)
	fmt.Printf("  fetches:            %d\n", res.Fetches)
	fmt.Printf("  elapsed time (sec): %.3f\n", res.ElapsedSec)
	fmt.Printf("  compute time (sec): %.3f\n", res.ComputeSec)
	fmt.Printf("  driver time (sec):  %.3f\n", res.DriverTimeSec)
	fmt.Printf("  stall time (sec):   %.3f\n", res.StallTimeSec)
	fmt.Printf("  avg fetch (msec):   %.3f\n", res.AvgFetchMs)
	fmt.Printf("  avg response (ms):  %.3f\n", res.AvgResponseMs)
	fmt.Printf("  avg disk util:      %.2f\n", res.AvgUtilization)
	if *perDisk {
		for i, d := range res.PerDisk {
			fmt.Printf("  disk %2d: fetches %6d  busy %8.3fs  svc %7.3fms  resp %7.3fms  util %.2f\n",
				i, d.Fetches, d.BusySec, d.AvgFetchMs, d.AvgRespMs, d.Utilization)
		}
	}
}
