// Command ppc-sim runs a single prefetching-and-caching simulation and
// prints its metrics.
//
// Usage:
//
//	ppc-sim -trace postgres-select -alg forestall -disks 4
//	ppc-sim -trace synth -alg aggressive -disks 3 -batch 40 -sched fcfs
//	ppc-sim -trace cscope1 -alg forestall -disks 2 -events trace.json -series series.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"ppcsim"
)

func main() {
	var (
		traceName = flag.String("trace", "synth", "trace name (see ppc-traces for the list)")
		alg       = flag.String("alg", "forestall", "algorithm: demand, fixed-horizon, aggressive, reverse-aggressive, forestall")
		disks     = flag.Int("disks", 1, "number of disks in the array")
		cacheBlk  = flag.Int("cache", 0, "cache size in 8K blocks (0 = trace default)")
		sched     = flag.String("sched", "cscan", "disk-head scheduling: cscan or fcfs")
		batch     = flag.Int("batch", 0, "batch size for aggressive/forestall/reverse-aggressive (0 = paper default)")
		horizon   = flag.Int("horizon", 0, "prefetch horizon H for fixed-horizon/forestall (0 = 62)")
		festimate = flag.Float64("f", 0, "reverse aggressive's fetch time estimate F (0 = 32)")
		fixedF    = flag.Float64("forestall-f", 0, "fix forestall's F' instead of dynamic estimation")
		overhead  = flag.Float64("driver-ms", 0, "driver overhead per request in ms (0 = 0.5, negative = none)")
		simple    = flag.Bool("simple-disk", false, "use the simplified fixed-latency disk model")
		seed      = flag.Int64("seed", 0, "data placement seed")
		cpuScale  = flag.Float64("cpu-scale", 1, "scale all compute times (0.5 = double-speed CPU)")
		perDisk   = flag.Bool("per-disk", false, "print a per-disk breakdown")
		events    = flag.String("events", "", "write Chrome trace-event JSON to this file (view in chrome://tracing or ui.perfetto.dev)")
		series    = flag.String("series", "", "write per-disk time-series CSV (queue depth, utilization, cache occupancy, stalls) to this file")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	tr, err := ppcsim.NewTrace(*traceName)
	if err != nil {
		die(err)
	}
	if *cpuScale != 1 { //ppcvet:ignore flag-default sentinel, parsed rather than computed
		tr = tr.ScaleCompute(*cpuScale)
	}
	algorithm, err := ppcsim.ParseAlgorithm(*alg)
	if err != nil {
		die(err)
	}
	discipline, err := ppcsim.ParseDiscipline(*sched)
	if err != nil {
		die(err)
	}
	opts := ppcsim.Options{
		Trace:            tr,
		Algorithm:        algorithm,
		Disks:            *disks,
		CacheBlocks:      *cacheBlk,
		Scheduler:        discipline,
		BatchSize:        *batch,
		Horizon:          *horizon,
		FetchEstimate:    *festimate,
		ForestallFixedF:  *fixedF,
		DriverOverheadMs: *overhead,
		SimpleDiskModel:  *simple,
		PlacementSeed:    *seed,
	}

	// Attach observers only when an export was requested, so the default
	// invocation keeps the unobserved fast path. Output files are opened
	// up front so a bad path fails before the simulation, not after.
	var (
		tracer   *ppcsim.ChromeTracer
		recorder *ppcsim.Recorder
		stats    *ppcsim.StreamingStats
		eventsF  *os.File
		seriesF  *os.File
	)
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			die(err)
		}
		eventsF = f
		tracer = ppcsim.NewChromeTracer()
	}
	if *series != "" {
		f, err := os.Create(*series)
		if err != nil {
			die(err)
		}
		seriesF = f
		recorder = ppcsim.NewRecorder()
	}
	if tracer != nil || recorder != nil {
		stats = ppcsim.NewStreamingStats()
		opts.Observer = ppcsim.Tee(tracer, recorder, stats)
	}

	res, err := ppcsim.Run(opts)
	if err != nil {
		die(err)
	}
	fmt.Println(res)
	fmt.Printf("  fetches:            %d\n", res.Fetches)
	fmt.Printf("  elapsed time (sec): %.3f\n", res.ElapsedSec)
	fmt.Printf("  compute time (sec): %.3f\n", res.ComputeSec)
	fmt.Printf("  driver time (sec):  %.3f\n", res.DriverTimeSec)
	fmt.Printf("  stall time (sec):   %.3f\n", res.StallTimeSec)
	fmt.Printf("  avg fetch (msec):   %.3f\n", res.AvgFetchMs)
	fmt.Printf("  avg response (ms):  %.3f\n", res.AvgResponseMs)
	fmt.Printf("  avg disk util:      %.2f\n", res.AvgUtilization)
	if res.Latency != nil {
		l := res.Latency
		fmt.Printf("  fetch latency (ms): p50 %.3f  p95 %.3f  p99 %.3f  (n=%d)\n",
			l.FetchP50Ms, l.FetchP95Ms, l.FetchP99Ms, l.FetchCount)
		fmt.Printf("  stall length (ms):  p50 %.3f  p95 %.3f  p99 %.3f  (n=%d)\n",
			l.StallP50Ms, l.StallP95Ms, l.StallP99Ms, l.StallCount)
	}
	if *perDisk {
		for i, d := range res.PerDisk {
			fmt.Printf("  disk %2d: fetches %6d  busy %8.3fs  svc %7.3fms  resp %7.3fms  util %.2f\n",
				i, d.Fetches, d.BusySec, d.AvgFetchMs, d.AvgRespMs, d.Utilization)
		}
	}

	if tracer != nil {
		if _, err := tracer.WriteTo(eventsF); err != nil {
			die(err)
		}
		if err := eventsF.Close(); err != nil {
			die(err)
		}
		fmt.Printf("  wrote trace events: %s\n", *events)
	}
	if recorder != nil {
		if err := recorder.WriteCSV(seriesF); err != nil {
			die(err)
		}
		if err := seriesF.Close(); err != nil {
			die(err)
		}
		fmt.Printf("  wrote time series:  %s\n", *series)
	}
}
