// Command ppc-sim runs a single prefetching-and-caching simulation and
// prints its metrics.
//
// Usage:
//
//	ppc-sim -trace postgres-select -alg forestall -disks 4
//	ppc-sim -trace synth -alg aggressive -disks 3 -batch 40 -sched fcfs
//	ppc-sim -trace cscope1 -alg forestall -disks 2 -events trace.json -series series.csv
//	ppc-sim -large 1e7:65536:zipf:1 -window 1000 -alg forestall -disks 4
//	ppc-sim -trace-file big.col -stream -window 1000 -alg aggressive
//
// Exit status: 0 on success, 2 for an invalid configuration (unknown
// trace or algorithm, non-positive -disks or -cache, and anything else
// ppcsim reports as a ConfigError), 1 for runtime failures.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ppcsim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges injected, so the table tests in
// main_test.go can drive the full flag-to-exit-status path in process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ppc-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		traceName = fs.String("trace", "synth", "trace name (see ppc-traces for the list)")
		traceFile = fs.String("trace-file", "", "columnar trace file to run instead of a bundled trace (see ppc-traces convert)")
		largeSpec = fs.String("large", "", "stream a synthetic trace refs[:blocks[:pattern[:seed]]] (pattern: loop or zipf), e.g. 1e7:65536:zipf:1; requires -window")
		stream    = fs.Bool("stream", false, "run through the streaming engine (bounded memory; requires -window; implied by -large)")
		alg       = fs.String("alg", "forestall", "algorithm: demand, fixed-horizon, aggressive, reverse-aggressive, forestall")
		disks     = fs.Int("disks", 1, "number of disks in the array")
		cacheBlk  = fs.Int("cache", 0, "cache size in 8K blocks (0 = trace default)")
		sched     = fs.String("sched", "cscan", "disk-head scheduling: cscan or fcfs")
		batch     = fs.Int("batch", 0, "batch size for aggressive/forestall/reverse-aggressive (0 = paper default)")
		horizon   = fs.Int("horizon", 0, "prefetch horizon H for fixed-horizon/forestall (0 = 62)")
		festimate = fs.Float64("f", 0, "reverse aggressive's fetch time estimate F (0 = 32)")
		fixedF    = fs.Float64("forestall-f", 0, "fix forestall's F' instead of dynamic estimation")
		window    = fs.Int("window", 0, "lookahead window in references (unset = unlimited hints)")
		hintFrac  = fs.Float64("hint-fraction", 1, "fraction of references disclosed as hints")
		hintAcc   = fs.Float64("hint-accuracy", 1, "probability a disclosed hint names the right block")
		hintSeed  = fs.Int64("hint-seed", 0, "seed for hint disclosure/corruption draws")
		overhead  = fs.Float64("driver-ms", 0, "driver overhead per request in ms (0 = 0.5, negative = none)")
		simple    = fs.Bool("simple-disk", false, "use the simplified fixed-latency disk model")
		seed      = fs.Int64("seed", 0, "data placement seed")
		cpuScale  = fs.Float64("cpu-scale", 1, "scale all compute times (0.5 = double-speed CPU)")
		perDisk   = fs.Bool("per-disk", false, "print a per-disk breakdown")
		events    = fs.String("events", "", "write Chrome trace-event JSON to this file (view in chrome://tracing or ui.perfetto.dev)")
		series    = fs.String("series", "", "write per-disk time-series CSV (queue depth, utilization, cache occupancy, stalls) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// fail maps errors to exit codes: configuration mistakes (the
	// ConfigError family) exit 2 so scripts can tell bad invocations from
	// runtime failures, which exit 1.
	fail := func(err error) int {
		fmt.Fprintln(stderr, "ppc-sim:", err)
		var cfgErr *ppcsim.ConfigError
		if errors.As(err, &cfgErr) {
			return 2
		}
		return 1
	}

	// The library treats zero Disks/CacheBlocks as "use the default", so
	// an explicit -disks 0 or -cache 0 would otherwise be silently
	// reinterpreted instead of rejected. Catch explicit non-positive
	// values at the flag boundary.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["disks"] && *disks <= 0 {
		return fail(&ppcsim.ConfigError{Field: "Disks",
			Reason: fmt.Sprintf("must be positive, got %d", *disks)})
	}
	if explicit["cache"] && *cacheBlk <= 0 {
		return fail(&ppcsim.ConfigError{Field: "CacheBlocks",
			Reason: fmt.Sprintf("must be positive, got %d", *cacheBlk)})
	}
	// The library's HintSpec uses Window 0 for "unlimited" and -1 for "no
	// lookahead"; at the CLI, absent means unlimited and anything explicit
	// must be a positive reference count or -1 for no lookahead.
	if explicit["window"] && (*window == 0 || *window < -1) {
		return fail(&ppcsim.ConfigError{Field: "Window",
			Reason: fmt.Sprintf("must be positive or -1 for no lookahead, got %d (omit the flag for unlimited lookahead)", *window)})
	}
	if *largeSpec != "" && *traceFile != "" {
		return fail(&ppcsim.ConfigError{Field: "Trace", Reason: "-large and -trace-file are mutually exclusive"})
	}
	if (*largeSpec != "" || *traceFile != "") && explicit["trace"] {
		return fail(&ppcsim.ConfigError{Field: "Trace", Reason: "-trace cannot be combined with -large or -trace-file"})
	}

	// Resolve the workload: a streaming source (-large, or -stream over a
	// file/bundled trace) or a materialized trace.
	var tr *ppcsim.Trace
	var src ppcsim.TraceSource
	var totalRefs int64
	switch {
	case *largeSpec != "":
		spec, err := ppcsim.ParseLargeTraceSpec(*largeSpec)
		if err != nil {
			return fail(&ppcsim.ConfigError{Field: "Trace", Reason: err.Error()})
		}
		s, err := spec.Source()
		if err != nil {
			return fail(&ppcsim.ConfigError{Field: "Trace", Reason: err.Error()})
		}
		src = s
	case *traceFile != "":
		f, err := ppcsim.OpenColumnarTrace(*traceFile)
		if err != nil {
			return fail(&ppcsim.ConfigError{Field: "Trace", Reason: err.Error()})
		}
		defer f.Close()
		if *stream {
			src = f
		} else if tr, err = ppcsim.MaterializeTrace(f); err != nil {
			return fail(&ppcsim.ConfigError{Field: "Trace", Reason: err.Error()})
		}
	default:
		var err error
		if tr, err = ppcsim.NewTrace(*traceName); err != nil {
			return fail(&ppcsim.ConfigError{Field: "Trace", Reason: err.Error()})
		}
		if *stream {
			src = tr.Source()
			tr = nil
		}
	}
	if src != nil {
		if *cpuScale != 1 { //ppcvet:ignore flag-default sentinel, parsed rather than computed
			return fail(&ppcsim.ConfigError{Field: "CPUScale", Reason: "-cpu-scale requires a materialized trace"})
		}
		totalRefs = src.Meta().Refs
	} else {
		if *cpuScale != 1 { //ppcvet:ignore flag-default sentinel, parsed rather than computed
			tr = tr.ScaleCompute(*cpuScale)
		}
		totalRefs = int64(len(tr.Refs))
	}
	algorithm, err := ppcsim.ParseAlgorithm(*alg)
	if err != nil {
		return fail(err)
	}
	discipline, err := ppcsim.ParseDiscipline(*sched)
	if err != nil {
		return fail(err)
	}
	opts := ppcsim.Options{
		Trace:            tr,
		Source:           src,
		Algorithm:        algorithm,
		Disks:            *disks,
		CacheBlocks:      *cacheBlk,
		Scheduler:        discipline,
		BatchSize:        *batch,
		Horizon:          *horizon,
		FetchEstimate:    *festimate,
		ForestallFixedF:  *fixedF,
		DriverOverheadMs: *overhead,
		SimpleDiskModel:  *simple,
		PlacementSeed:    *seed,
	}
	if *window != 0 || *hintFrac != 1 || *hintAcc != 1 { //ppcvet:ignore flag-default sentinels, parsed rather than computed
		opts.Hints = &ppcsim.HintSpec{
			Fraction: *hintFrac,
			Accuracy: *hintAcc,
			Seed:     *hintSeed,
			Window:   *window,
		}
	}

	// Attach observers only when an export was requested, so the default
	// invocation keeps the unobserved fast path. Output files are opened
	// up front so a bad path fails before the simulation, not after.
	var (
		tracer   *ppcsim.ChromeTracer
		recorder *ppcsim.Recorder
		stats    *ppcsim.StreamingStats
		eventsF  *os.File
		seriesF  *os.File
	)
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return fail(err)
		}
		eventsF = f
		tracer = ppcsim.NewChromeTracer()
	}
	if *series != "" {
		f, err := os.Create(*series)
		if err != nil {
			return fail(err)
		}
		seriesF = f
		recorder = ppcsim.NewRecorder()
	}
	if tracer != nil || recorder != nil {
		stats = ppcsim.NewStreamingStats()
		opts.Observer = ppcsim.Tee(tracer, recorder, stats)
	}

	start := time.Now() //ppcvet:ignore wall-clock throughput report (refs/sec), not simulation time
	res, err := ppcsim.Run(opts)
	if err != nil {
		return fail(err)
	}
	wall := time.Since(start) //ppcvet:ignore wall-clock throughput report (refs/sec), not simulation time
	fmt.Fprintln(stdout, res)
	fmt.Fprintf(stdout, "  fetches:            %d\n", res.Fetches)
	fmt.Fprintf(stdout, "  elapsed time (sec): %.3f\n", res.ElapsedSec)
	fmt.Fprintf(stdout, "  compute time (sec): %.3f\n", res.ComputeSec)
	fmt.Fprintf(stdout, "  driver time (sec):  %.3f\n", res.DriverTimeSec)
	fmt.Fprintf(stdout, "  stall time (sec):   %.3f\n", res.StallTimeSec)
	fmt.Fprintf(stdout, "  avg fetch (msec):   %.3f\n", res.AvgFetchMs)
	fmt.Fprintf(stdout, "  avg response (ms):  %.3f\n", res.AvgResponseMs)
	fmt.Fprintf(stdout, "  avg disk util:      %.2f\n", res.AvgUtilization)
	if secs := wall.Seconds(); secs > 0 {
		fmt.Fprintf(stdout, "  refs/sec (wall):    %.0f\n", float64(totalRefs)/secs)
	}
	if res.Latency != nil {
		l := res.Latency
		fmt.Fprintf(stdout, "  fetch latency (ms): p50 %.3f  p95 %.3f  p99 %.3f  (n=%d)\n",
			l.FetchP50Ms, l.FetchP95Ms, l.FetchP99Ms, l.FetchCount)
		fmt.Fprintf(stdout, "  stall length (ms):  p50 %.3f  p95 %.3f  p99 %.3f  (n=%d)\n",
			l.StallP50Ms, l.StallP95Ms, l.StallP99Ms, l.StallCount)
	}
	if *perDisk {
		for i, d := range res.PerDisk {
			fmt.Fprintf(stdout, "  disk %2d: fetches %6d  busy %8.3fs  svc %7.3fms  resp %7.3fms  util %.2f\n",
				i, d.Fetches, d.BusySec, d.AvgFetchMs, d.AvgRespMs, d.Utilization)
		}
	}

	if tracer != nil {
		if _, err := tracer.WriteTo(eventsF); err != nil {
			return fail(err)
		}
		if err := eventsF.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "  wrote trace events: %s\n", *events)
	}
	if recorder != nil {
		if err := recorder.WriteCSV(seriesF); err != nil {
			return fail(err)
		}
		if err := seriesF.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "  wrote time series:  %s\n", *series)
	}
	return 0
}
