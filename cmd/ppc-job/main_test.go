package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppcsim"
	"ppcsim/internal/serve"
	"ppcsim/internal/serve/coord"
	"ppcsim/internal/serve/tracestore"
)

func TestSplitHelpers(t *testing.T) {
	if got := splitList(" a, ,b ,"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitList: %v", got)
	}
	if got := splitList(""); got != nil {
		t.Errorf("splitList empty: %v", got)
	}
	ints, err := splitInts("1, 2,3")
	if err != nil || len(ints) != 3 || ints[2] != 3 {
		t.Errorf("splitInts: %v %v", ints, err)
	}
	if _, err := splitInts("1,x"); err == nil {
		t.Error("splitInts accepted a non-integer")
	}
	if v := 7; intOr(&v, 1) != 7 || intOr(nil, 1) != 1 {
		t.Error("intOr")
	}
}

func TestBuildSpecVariants(t *testing.T) {
	build := func(t *testing.T, specPath, trace, algs, disks, caches, windows, sched string, hf, ha, to float64, large *ppcsim.LargeTraceSpec, hash string) coord.JobSpec {
		t.Helper()
		body, err := buildSpec(specPath, trace, algs, disks, caches, windows, sched, hf, ha, to, large, hash)
		if err != nil {
			t.Fatal(err)
		}
		var js coord.JobSpec
		if err := json.Unmarshal(body, &js); err != nil {
			t.Fatalf("buildSpec emitted unparseable JSON: %v\n%s", err, body)
		}
		return js
	}

	// Bundled-name grid with hints and axes.
	js := build(t, "", "synth", "demand,aggressive", "1,2", "500", "64", "fcfs", 0.5, 0.9, 250, nil, "")
	if js.Trace != "synth" || len(js.Algorithms) != 2 || len(js.DiskCounts) != 2 ||
		js.Scheduler != "fcfs" || js.TimeoutMs != 250 {
		t.Errorf("bundled spec: %+v", js)
	}
	if js.Hints == nil || js.Hints.Fraction != 0.5 || js.Hints.Accuracy != 0.9 {
		t.Errorf("hints: %+v", js.Hints)
	}

	// Generator spec: the -large flag rides as trace_spec, no trace name.
	large := ppcsim.LargeTraceSpec{Refs: 1000, Blocks: 64, Pattern: "zipf", Seed: 3}
	js = build(t, "", "synth", "demand", "", "", "32", "", 1, 1, 0, &large, "")
	if js.Trace != "" || js.TraceSpec == nil || js.TraceSpec.Refs != 1000 || js.TraceSpec.Pattern != "zipf" {
		t.Errorf("large spec: %+v", js)
	}
	if js.Hints != nil {
		t.Error("default hints must stay unset")
	}

	// Store hash wins over the bundled default.
	hash := strings.Repeat("ab", 32)
	js = build(t, "", "synth", "demand", "", "", "32", "", 1, 1, 0, nil, hash)
	if js.Trace != "" || js.TraceHash != hash {
		t.Errorf("hash spec: %+v", js)
	}

	// Bad axis integers are rejected.
	if _, err := buildSpec("", "synth", "demand", "1,x", "", "", "", 1, 1, 0, nil, ""); err == nil {
		t.Error("bad disk count accepted")
	}

	// -spec reads the file verbatim.
	path := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(path, []byte(`{"raw":"bytes"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	body, err := buildSpec(path, "", "", "", "", "", "", 1, 1, 0, nil, "")
	if err != nil || string(body) != `{"raw":"bytes"}` {
		t.Errorf("spec file: %q %v", body, err)
	}
}

func TestRetryDo(t *testing.T) {
	calls := 0
	resp, err := retryDo(0, func() (*http.Response, error) {
		calls++
		return &http.Response{StatusCode: 200}, nil
	})
	if err != nil || resp.StatusCode != 200 || calls != 1 {
		t.Errorf("immediate success: %v %v calls=%d", resp, err, calls)
	}

	calls = 0
	if _, err := retryDo(0, func() (*http.Response, error) {
		calls++
		return nil, errors.New("refused")
	}); err == nil || calls != 1 {
		t.Errorf("zero budget must not retry: %v calls=%d", err, calls)
	}

	calls = 0
	resp, err = retryDo(300e6, func() (*http.Response, error) { // 300ms budget
		calls++
		if calls < 3 {
			return nil, errors.New("refused")
		}
		return &http.Response{StatusCode: 200}, nil
	})
	if err != nil || resp.StatusCode != 200 || calls != 3 {
		t.Errorf("retry until success: %v %v calls=%d", resp, err, calls)
	}
}

func TestEnsureTrace(t *testing.T) {
	blob := []byte("columnar bytes for hashing")
	hash := tracestore.HashBytes(blob)
	path := filepath.Join(t.TempDir(), "t.ppccol")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var headStatus int
	var putBody []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/traces/") {
			t.Errorf("unexpected path %s", r.URL.Path)
		}
		switch r.Method {
		case http.MethodHead:
			w.WriteHeader(headStatus)
		case http.MethodPut:
			b := new(bytes.Buffer)
			b.ReadFrom(r.Body)
			putBody = b.Bytes()
			w.WriteHeader(http.StatusCreated)
		}
	}))
	defer ts.Close()

	// Already held: HEAD 204, no upload.
	headStatus, putBody = http.StatusNoContent, nil
	h, err := ensureTrace(ts.URL, path, 0)
	if err != nil || h != hash || putBody != nil {
		t.Errorf("held trace: %q %v upload=%d bytes", h, err, len(putBody))
	}

	// Missing: HEAD 404 then PUT of the exact file bytes.
	headStatus = http.StatusNotFound
	h, err = ensureTrace(ts.URL, path, 0)
	if err != nil || h != hash || !bytes.Equal(putBody, blob) {
		t.Errorf("uploaded trace: %q %v bytes equal=%v", h, err, bytes.Equal(putBody, blob))
	}

	// Unexpected probe status is an error.
	headStatus = http.StatusBadGateway
	if _, err := ensureTrace(ts.URL, path, 0); err == nil {
		t.Error("502 probe accepted")
	}

	// Missing file fails before any request.
	if _, err := ensureTrace(ts.URL, filepath.Join(t.TempDir(), "absent"), 0); err == nil {
		t.Error("absent file accepted")
	}
}

// fakeStream renders NDJSON the way a coordinator would.
func fakeStream(t *testing.T, recs []coord.CellRecord, sum *coord.Summary) string {
	t.Helper()
	var b strings.Builder
	for _, rec := range recs {
		rec.Type = "cell"
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	if sum != nil {
		sum.Type = "summary"
		line, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func TestStreamRelayAndCSV(t *testing.T) {
	spec, err := coord.ParseJobSpec([]byte(`{"trace_spec":{"refs":100,"blocks":16},"algorithms":["demand","aggressive"],"windows":[8]}`))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Cells(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	res := []byte(`{"Trace":"large-loop-100","ElapsedSec":1.25,"ComputeSec":1,"StallTimeSec":0.25,"DriverTimeSec":0.1,"Fetches":42,"AvgFetchMs":9.5,"AvgResponseMs":10.25,"AvgUtilization":0.5}`)
	recs := []coord.CellRecord{
		{Index: 1, Key: "k1", Result: res},
		{Index: 0, Key: "k0", Result: res},
	}
	sum := &coord.Summary{Complete: true, CellsTotal: 2, CellsDone: 2}

	// Relay mode copies cell lines through verbatim and strips nothing.
	var relay bytes.Buffer
	got, err := stream(&relay, strings.NewReader(fakeStream(t, recs, sum)), cells, false)
	if err != nil || got == nil || !got.Complete {
		t.Fatalf("relay stream: %+v %v", got, err)
	}
	if n := strings.Count(relay.String(), "\n"); n != 2 {
		t.Errorf("relay copied %d lines, want 2 cells", n)
	}

	// CSV mode sorts by index and renders the sweep dialect, naming
	// streamed cells by the result's resolved trace.
	var csvOut bytes.Buffer
	if _, err := stream(&csvOut, strings.NewReader(fakeStream(t, recs, sum)), cells, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "trace,algorithm,") {
		t.Fatalf("csv output:\n%s", csvOut.String())
	}
	if !strings.HasPrefix(lines[1], "large-loop-100,demand,1,CSCAN,") ||
		!strings.HasPrefix(lines[2], "large-loop-100,aggressive,") {
		t.Errorf("csv rows out of order or misnamed:\n%s", csvOut.String())
	}
	if !strings.Contains(lines[1], ",1.2500,") || !strings.Contains(lines[1], ",9.500,") {
		t.Errorf("csv formatting drifted from the sweep dialect:\n%s", lines[1])
	}

	// A malformed line is a hard error.
	if _, err := stream(&bytes.Buffer{}, strings.NewReader("not json\n"), cells, false); err == nil {
		t.Error("malformed stream line accepted")
	}

	// An out-of-grid index is a hard error in CSV mode.
	bad := fakeStream(t, []coord.CellRecord{{Index: 99, Result: res}}, sum)
	if _, err := stream(&bytes.Buffer{}, strings.NewReader(bad), cells, true); err == nil {
		t.Error("out-of-grid cell index accepted")
	}

	// Failed cells are skipped in CSV mode (reported on stderr), so the
	// grid still renders the rows that completed.
	withFail := fakeStream(t, []coord.CellRecord{
		{Index: 0, Result: res},
		{Index: 1, Error: &serve.ErrorDetail{Message: "boom"}},
	}, sum)
	var partial bytes.Buffer
	if _, err := stream(&partial, strings.NewReader(withFail), cells, true); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(strings.TrimSpace(partial.String()), "\n"); n != 1 {
		t.Errorf("failed cell rendered: %d data rows, want 1\n%s", n, partial.String())
	}
}
