// Command ppc-job submits one sweep grid to a ppc-coord coordinator and
// streams the results. By default it relays the coordinator's NDJSON
// stream to stdout as it arrives; with -csv it buffers the cells and
// emits the same CSV ppc-sweep writes for the equivalent grid — same
// header, same row order, same formatting — so cluster output can be
// diffed directly against local sweeps.
//
// Usage:
//
//	ppc-job -coord http://localhost:8070 -trace synth -algs demand,aggressive -disks 1,2
//	ppc-job -coord http://localhost:8070 -spec job.json
//	ppc-job -coord ... -large 1e9:65536:zipf:1 -windows 4096 -algs forestall
//	ppc-job -coord ... -trace-file big.coltrace -windows 4096
//	ppc-job ... -csv -o out.csv
//
// -large submits a generator spec: workers synthesize the reference
// stream locally, so a 10^9-reference sweep costs no trace bytes on the
// wire. -trace-file hashes a columnar trace file, uploads it to the
// cluster if no worker holds it yet, and submits the job by hash; both
// stream on the workers and therefore require -windows.
//
// The job summary goes to stderr; the exit status is zero only when the
// coordinator reports the grid complete.
package main

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ppcsim"
	"ppcsim/internal/serve"
	"ppcsim/internal/serve/coord"
	"ppcsim/internal/serve/tracestore"
)

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		coordURL = flag.String("coord", "http://localhost:8070", "coordinator base URL")
		specPath = flag.String("spec", "", "JobSpec JSON file ('-' = stdin; overrides the grid flags)")
		traceFlg = flag.String("trace", "synth", "bundled trace name")
		largeFlg = flag.String("large", "", "stream a synthetic trace on the workers: refs[:blocks[:pattern[:seed]]] (requires -windows)")
		traceFl  = flag.String("trace-file", "", "columnar trace file to run by hash, uploading it to the cluster if absent (requires -windows)")
		algs     = flag.String("algs", "fixed-horizon,aggressive,forestall", "comma-separated algorithms")
		disks    = flag.String("disks", "", "comma-separated disk counts (empty = simulator default)")
		caches   = flag.String("caches", "", "comma-separated cache sizes (empty = trace default)")
		windows  = flag.String("windows", "", "comma-separated lookahead windows (empty = unlimited)")
		sched    = flag.String("sched", "", "disk scheduler: cscan or fcfs (empty = cscan)")
		hintFrac = flag.Float64("hint-fraction", 1, "fraction of references disclosed")
		hintAcc  = flag.Float64("hint-accuracy", 1, "accuracy of disclosed hints")
		timeout  = flag.Float64("timeout-ms", 0, "per-cell worker deadline in ms (0 = worker default)")
		asCSV    = flag.Bool("csv", false, "emit ppc-sweep-compatible CSV instead of the NDJSON stream")
		out      = flag.String("o", "", "output file (default stdout)")
		retryFor = flag.Duration("retry-for", 0, "keep retrying the initial connection this long (for scripted startups)")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "ppc-job:", err)
		os.Exit(1)
	}

	if *largeFlg != "" && *traceFl != "" {
		die(fmt.Errorf("-large and -trace-file are mutually exclusive"))
	}
	if *largeFlg != "" || *traceFl != "" {
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "trace" {
				die(fmt.Errorf("-trace cannot be combined with -large or -trace-file"))
			}
		})
	}
	base := strings.TrimRight(*coordURL, "/")

	var largeSpec *ppcsim.LargeTraceSpec
	if *largeFlg != "" {
		spec, err := ppcsim.ParseLargeTraceSpec(*largeFlg)
		if err != nil {
			die(err)
		}
		largeSpec = &spec
	}
	traceHash := ""
	if *traceFl != "" {
		h, err := ensureTrace(base, *traceFl, *retryFor)
		if err != nil {
			die(err)
		}
		traceHash = h
	}

	body, err := buildSpec(*specPath, *traceFlg, *algs, *disks, *caches, *windows, *sched, *hintFrac, *hintAcc, *timeout, largeSpec, traceHash)
	if err != nil {
		die(err)
	}
	// Expand the grid locally with the same code the coordinator runs, so
	// CSV mode knows each cell's configuration up front.
	spec, err := coord.ParseJobSpec(body)
	if err != nil {
		die(err)
	}
	cells, err := spec.Cells(1 << 20)
	if err != nil {
		die(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		w = f
	}

	resp, err := submit(base+"/v1/jobs", body, *retryFor)
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		die(fmt.Errorf("coordinator rejected job: %s: %s", resp.Status, strings.TrimSpace(string(msg))))
	}

	summary, err := stream(w, resp.Body, cells, *asCSV)
	if err != nil {
		die(err)
	}
	if summary == nil {
		die(fmt.Errorf("stream ended without a summary record"))
	}
	fmt.Fprintf(os.Stderr, "ppc-job: %d/%d cells done (%d failed, %d retried, %d from store, %d cache hits) in %.0fms\n",
		summary.CellsDone, summary.CellsTotal, summary.CellsFailed, summary.CellsRetried,
		summary.CellsFromStore, summary.CacheHits, summary.ElapsedMs)
	if !summary.Complete {
		os.Exit(1)
	}
}

// buildSpec assembles the JobSpec body from -spec or from the grid flags.
func buildSpec(specPath, trace, algs, disks, caches, windows, sched string, hintFrac, hintAcc, timeoutMs float64, large *ppcsim.LargeTraceSpec, traceHash string) ([]byte, error) {
	if specPath != "" {
		if specPath == "-" {
			return io.ReadAll(os.Stdin)
		}
		return os.ReadFile(specPath)
	}
	js := coord.JobSpec{Algorithms: splitList(algs), TimeoutMs: timeoutMs}
	switch {
	case large != nil:
		js.TraceSpec = &serve.TraceSpec{
			Name:          large.Name,
			Refs:          large.Refs,
			Blocks:        large.Blocks,
			Files:         large.Files,
			Pattern:       large.Pattern,
			MeanComputeMs: large.MeanComputeMs,
			Seed:          large.Seed,
			CacheBlocks:   large.CacheBlocks,
		}
	case traceHash != "":
		js.TraceHash = traceHash
	default:
		js.Trace = trace
	}
	js.Scheduler = sched
	var err error
	if js.DiskCounts, err = splitInts(disks); err != nil {
		return nil, err
	}
	if js.CacheSizes, err = splitInts(caches); err != nil {
		return nil, err
	}
	if js.Windows, err = splitInts(windows); err != nil {
		return nil, err
	}
	if hintFrac != 1 || hintAcc != 1 { //ppcvet:ignore flag-default sentinels, parsed rather than computed
		js.Hints = &serve.Hints{Fraction: hintFrac, Accuracy: hintAcc}
	}
	return json.Marshal(js)
}

// submit posts the job, optionally retrying the connection while the
// coordinator is still starting (scripted cluster bring-up).
func submit(url string, body []byte, retryFor time.Duration) (*http.Response, error) {
	return retryDo(retryFor, func() (*http.Response, error) {
		return http.Post(url, "application/json", bytes.NewReader(body))
	})
}

// retryDo runs do, retrying connection-level failures every 100ms for up
// to retryFor (an HTTP error status is a response, not a failure).
func retryDo(retryFor time.Duration, do func() (*http.Response, error)) (*http.Response, error) {
	var lastErr error
	for waited := time.Duration(0); ; waited += 100 * time.Millisecond {
		resp, err := do()
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if waited >= retryFor {
			return nil, lastErr
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// ensureTrace hashes the columnar trace file at path and makes sure the
// cluster holds it: a HEAD probe against the coordinator's trace store,
// then a PUT of the file bytes on miss. Returns the store hash the job
// should reference. The probe honors -retry-for so scripted bring-ups
// can race the coordinator's startup.
func ensureTrace(coordBase, path string, retryFor time.Duration) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	hash, _, err := tracestore.HashReader(f)
	if err != nil {
		return "", fmt.Errorf("hashing %s: %v", path, err)
	}
	url := coordBase + "/v1/traces/" + hash
	resp, err := retryDo(retryFor, func() (*http.Response, error) {
		return http.Head(url)
	})
	if err != nil {
		return "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return hash, nil // already on a worker; preflight replicates as needed
	case http.StatusNotFound:
	default:
		return "", fmt.Errorf("trace probe: %s", resp.Status)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return "", err
	}
	req, err := http.NewRequest(http.MethodPut, url, f)
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer putResp.Body.Close()
	if putResp.StatusCode != http.StatusCreated && putResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(putResp.Body, 4096))
		return "", fmt.Errorf("trace upload: %s: %s", putResp.Status, strings.TrimSpace(string(msg)))
	}
	fmt.Fprintf(os.Stderr, "ppc-job: uploaded trace %s (%s)\n", hash[:12], path)
	return hash, nil
}

// stream consumes the NDJSON job stream. In relay mode every line is
// copied through as it arrives; in CSV mode cells are buffered and
// written in index order with ppc-sweep's exact formatting.
func stream(w io.Writer, r io.Reader, cells []coord.Cell, asCSV bool) (*coord.Summary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var summary *coord.Summary
	var recs []coord.CellRecord
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("bad stream line: %v: %s", err, line)
		}
		if probe.Type == "summary" {
			var s coord.Summary
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, err
			}
			summary = &s
			continue
		}
		if !asCSV {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return nil, err
			}
			continue
		}
		var rec coord.CellRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, err
		}
		if rec.Error != nil {
			fmt.Fprintf(os.Stderr, "ppc-job: cell %d failed: %s\n", rec.Index, rec.Error.Message)
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if asCSV {
		if err := writeCSV(w, cells, recs); err != nil {
			return nil, err
		}
	}
	return summary, nil
}

// writeCSV renders completed cells in ppc-sweep's exact CSV dialect:
// same header, same index (= expansion) order, same value formatting,
// so `ppc-job -csv` over a cluster diffs clean against `ppc-sweep` run
// locally on the equivalent grid.
func writeCSV(w io.Writer, cells []coord.Cell, recs []coord.CellRecord) error {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Index < recs[j].Index })
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"trace", "algorithm", "disks", "scheduler", "cache_blocks", "batch", "horizon",
		"hint_fraction", "hint_accuracy", "window",
		"elapsed_sec", "compute_sec", "driver_sec", "stall_sec",
		"fetches", "avg_fetch_ms", "avg_response_ms", "avg_utilization",
	}); err != nil {
		return err
	}
	for _, rec := range recs {
		if rec.Index < 0 || rec.Index >= len(cells) {
			return fmt.Errorf("stream cell index %d outside the %d-cell grid", rec.Index, len(cells))
		}
		spec := cells[rec.Index].Spec
		var res ppcsim.Result
		if err := json.Unmarshal(rec.Result, &res); err != nil {
			return fmt.Errorf("cell %d result: %v", rec.Index, err)
		}
		// The trace column must match what ppc-sweep prints for the
		// equivalent local run: streamed cells carry their resolved trace
		// name in the result itself; inline bodies have no local name.
		traceName := spec.Trace
		switch {
		case spec.TraceSpec != nil || spec.TraceHash != "":
			traceName = res.Trace
		case traceName == "":
			traceName = "inline"
		}
		alg := spec.Algorithm
		if a, err := ppcsim.ParseAlgorithm(alg); err == nil {
			alg = string(a)
		}
		sched := ppcsim.CSCAN
		if spec.Scheduler != "" {
			d, err := ppcsim.ParseDiscipline(spec.Scheduler)
			if err != nil {
				return err
			}
			sched = d
		}
		hintFrac, hintAcc := 1.0, 1.0
		if spec.Hints != nil {
			hintFrac, hintAcc = spec.Hints.Fraction, spec.Hints.Accuracy
		}
		if err := cw.Write([]string{
			traceName, alg, strconv.Itoa(intOr(spec.Disks, 1)), sched.String(),
			strconv.Itoa(intOr(spec.CacheBlocks, 0)),
			strconv.Itoa(spec.BatchSize), strconv.Itoa(spec.Horizon),
			fmt.Sprintf("%g", hintFrac), fmt.Sprintf("%g", hintAcc),
			strconv.Itoa(intOr(spec.Window, 0)),
			fmt.Sprintf("%.4f", res.ElapsedSec),
			fmt.Sprintf("%.4f", res.ComputeSec),
			fmt.Sprintf("%.4f", res.DriverTimeSec),
			fmt.Sprintf("%.4f", res.StallTimeSec),
			strconv.FormatInt(res.Fetches, 10),
			fmt.Sprintf("%.3f", res.AvgFetchMs),
			fmt.Sprintf("%.3f", res.AvgResponseMs),
			fmt.Sprintf("%.3f", res.AvgUtilization),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func intOr(p *int, def int) int {
	if p != nil {
		return *p
	}
	return def
}
