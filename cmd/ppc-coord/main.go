// Command ppc-coord is the coordinator role of a sweep cluster: it
// accepts whole sweep grids as jobs (POST /v1/jobs), shards their cells
// across a fleet of ppc-serve workers by consistent-hash routing on the
// canonical cache key, streams results back as NDJSON, requeues cells
// from failed workers, and persists completed grids so identical
// resubmissions are served from storage with zero recomputation. See
// docs/api-v1.md for the endpoint schemas.
//
// Usage:
//
//	ppc-coord -addr :8070 -backends http://w1:8080,http://w2:8080
//	ppc-coord -addr :8070 -embedded 4            # single-process cluster
//	ppc-coord -backends ... -store /var/lib/ppc  # grids survive restarts
//
// SIGINT/SIGTERM triggers a graceful shutdown: intake stops, streaming
// jobs finish, embedded workers drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ppcsim/internal/serve"
	"ppcsim/internal/serve/coord"
)

func main() {
	var (
		addr     = flag.String("addr", ":8070", "listen address")
		backends = flag.String("backends", "", "comma-separated worker base URLs (empty = embedded workers)")
		embedded = flag.Int("embedded", 2, "in-process workers when -backends is empty")
		storeDir = flag.String("store", "", "directory for persisted grids (empty = in-memory)")
		perBack  = flag.Int("per-backend", 0, "cells in flight per worker (0 = 2)")
		replicas = flag.Int("replicas", 0, "virtual ring points per worker (0 = 64)")
		attempts = flag.Int("max-attempts", 0, "tries per cell before permanent failure (0 = workers+1)")
		backoff  = flag.Duration("backoff", 0, "pause before retrying a busy worker (0 = 50ms)")
		maxCells = flag.Int("max-cells", 0, "grid expansion bound per job (0 = 1024)")
		maxBody  = flag.Int64("max-body", 0, "request body byte limit (0 = 8 MiB)")
		workers  = flag.Int("workers", 0, "embedded mode: concurrent simulations per worker (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "embedded mode: per-run simulation deadline (0 = 60s)")
		drainFor = flag.Duration("drain-timeout", time.Minute, "shutdown drain deadline for open connections")
	)
	flag.Parse()

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "ppc-coord:", err)
		os.Exit(1)
	}

	var fleet []coord.Backend
	closeFleet := func() {}
	if *backends != "" {
		for _, u := range strings.Split(*backends, ",") {
			u = strings.TrimSpace(strings.TrimRight(u, "/"))
			if u == "" {
				continue
			}
			// The URL is the backend's name: unique, stable, and the same
			// string on every coordinator pointing at the same fleet, so ring
			// routing agrees across coordinator restarts.
			fleet = append(fleet, coord.NewHTTPBackend(u, u, nil))
		}
		if len(fleet) == 0 {
			die(errors.New("-backends given but contains no URLs"))
		}
	} else {
		fleet, closeFleet = coord.NewEmbeddedBackends(*embedded, serve.Config{
			Workers:        *workers,
			DefaultTimeout: *timeout,
		})
		fmt.Fprintf(os.Stderr, "ppc-coord: embedded mode, %d in-process workers\n", len(fleet))
	}

	cfg := coord.Config{
		Backends:     fleet,
		Replicas:     *replicas,
		PerBackend:   *perBack,
		MaxAttempts:  *attempts,
		Backoff:      *backoff,
		MaxBodyBytes: *maxBody,
		MaxCells:     *maxCells,
	}
	if *storeDir != "" {
		store, err := coord.NewDirStore(*storeDir)
		if err != nil {
			die(err)
		}
		cfg.Store = store
	}
	c, err := coord.New(cfg)
	if err != nil {
		die(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: c.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ppc-coord: listening on %s (%d backends)\n", *addr, len(fleet))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		closeFleet()
		die(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "ppc-coord: %v, draining\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "ppc-coord: shutdown:", err)
	}
	closeFleet()
	fmt.Fprintln(os.Stderr, "ppc-coord: drained")
}
