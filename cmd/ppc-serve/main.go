// Command ppc-serve exposes the simulator as an HTTP service speaking
// the v1 API (see docs/api-v1.md): POST /v1/run runs (or serves from
// cache) one simulation, /v1/healthz reports liveness, /v1/statsz
// reports queue depth, cache hit rate, and hit/miss latency
// percentiles. The pre-v1 paths remain as deprecated shims (/simulate
// 308-redirects to /v1/run).
//
// A ppc-serve process is also the worker role of a sweep cluster:
// point ppc-coord's -backends flag at a fleet of these and the
// coordinator shards grid cells across their result caches.
//
// Usage:
//
//	ppc-serve -addr :8080
//	curl -s localhost:8080/v1/run -d '{"trace":"synth","algorithm":"forestall","disks":4}'
//
// SIGINT/SIGTERM triggers a graceful shutdown: intake stops, in-flight
// and queued simulations finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ppcsim/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "queued-request bound before 429s (0 = 4x workers)")
		entries  = flag.Int("cache-entries", 0, "result-cache entries (0 = 1024)")
		timeout  = flag.Duration("timeout", 0, "per-request simulation deadline (0 = 60s)")
		maxBody  = flag.Int64("max-body", 0, "request body byte limit (0 = 8 MiB)")
		drainFor = flag.Duration("drain-timeout", time.Minute, "shutdown drain deadline for open connections")
		storeDir = flag.String("trace-store", "", "trace-store directory for PUT /v1/traces blobs (empty = per-process temp dir)")
		storeCap = flag.Int64("trace-store-bytes", 0, "trace-store byte budget before LRU eviction (0 = 1 GiB)")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheEntries:    *entries,
		DefaultTimeout:  *timeout,
		MaxBodyBytes:    *maxBody,
		TraceStoreDir:   *storeDir,
		TraceStoreBytes: *storeCap,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ppc-serve: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// Listener failed before any shutdown request.
		fmt.Fprintln(os.Stderr, "ppc-serve:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "ppc-serve: %v, draining\n", s)
	}

	// Stop accepting connections and let handlers finish, then drain the
	// worker pool so every accepted simulation completes.
	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "ppc-serve: shutdown:", err)
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "ppc-serve: drained")
}
