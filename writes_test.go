package ppcsim_test

import (
	"bytes"
	"testing"

	"ppcsim"
	"ppcsim/internal/layout"
	"ppcsim/internal/trace"
)

// The write-behind extension: the paper ignores writes because "write
// behind strategies can mask update latency"; these tests pin the
// extension that models exactly that — writes never stall the process but
// do compete with reads for disk time.

// rwTrace interleaves a sequential read loop with writes to a log file.
func rwTrace(reads, writesEvery int) *ppcsim.Trace {
	tr := &trace.Trace{
		Name: "read-write",
		Files: []layout.File{
			{First: 0, Blocks: 200},   // data read in a loop
			{First: 200, Blocks: 512}, // log, written sequentially
		},
		CacheBlocks: 128,
	}
	log := 0
	for i := 0; i < reads; i++ {
		tr.Refs = append(tr.Refs, trace.Ref{Block: layout.BlockID(i % 200), ComputeMs: 1})
		if writesEvery > 0 && i%writesEvery == writesEvery-1 {
			tr.Refs = append(tr.Refs, trace.Ref{
				Block:     layout.BlockID(200 + log%512),
				ComputeMs: 0.2,
				Write:     true,
			})
			log++
		}
	}
	return tr
}

func TestWritesNeverStallButCost(t *testing.T) {
	readOnly := rwTrace(2000, 0)
	withWrites := rwTrace(2000, 4)
	st := withWrites.Stats()
	if st.Writes != 500 || st.Reads != 2000 {
		t.Fatalf("stats %+v", st)
	}
	for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall, ppcsim.Demand} {
		ro, err := ppcsim.Run(ppcsim.Options{Trace: readOnly, Algorithm: alg, Disks: 1})
		if err != nil {
			t.Fatal(err)
		}
		rw, err := ppcsim.Run(ppcsim.Options{Trace: withWrites, Algorithm: alg, Disks: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rw.WriteRequests != 500 {
			t.Errorf("%s: write requests = %d, want 500", alg, rw.WriteRequests)
		}
		if ro.WriteRequests != 0 {
			t.Errorf("%s: read-only run reported writes", alg)
		}
		// Write traffic consumes disk time, so the run cannot get faster.
		if rw.ElapsedSec < ro.ElapsedSec {
			t.Errorf("%s: writes made the run faster (%.3f < %.3f)", alg, rw.ElapsedSec, ro.ElapsedSec)
		}
		// Reads are still all served.
		if rw.CacheHits+rw.CacheMisses != 2000 {
			t.Errorf("%s: served %d reads, want 2000", alg, rw.CacheHits+rw.CacheMisses)
		}
	}
}

func TestWriteOnlyTraceCompletes(t *testing.T) {
	tr := &trace.Trace{
		Name:        "write-only",
		Files:       []layout.File{{First: 0, Blocks: 64}},
		CacheBlocks: 16,
	}
	for i := 0; i < 300; i++ {
		tr.Refs = append(tr.Refs, trace.Ref{Block: layout.BlockID(i % 64), ComputeMs: 0.5, Write: true})
	}
	r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.WriteRequests != 300 || r.Fetches != 0 {
		t.Errorf("writes=%d fetches=%d, want 300/0", r.WriteRequests, r.Fetches)
	}
	if r.StallTimeSec > 1e-9 {
		t.Errorf("write-only run stalled %.3fs", r.StallTimeSec)
	}
	// Elapsed is compute + driver overhead only: 300 compute periods of
	// 0.5 ms plus 299 driver overheads (the run ends at the last
	// reference, before its write's overhead would delay anything).
	want := 0.150 + 0.0005*299
	if diff := r.ElapsedSec - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("elapsed %.6f, want %.6f", r.ElapsedSec, want)
	}
}

func TestWritesDoNotConfusePrefetchers(t *testing.T) {
	// The prefetchers must not try to "prefetch" blocks that are only
	// ever written: fetch counts must match the read-only working set.
	tr := rwTrace(1200, 3)
	r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Only the 200 data blocks are ever read; with a 128-block cache the
	// loop misses repeatedly but never touches the log blocks.
	if r.Fetches < 200 {
		t.Errorf("fetches = %d, want >= 200", r.Fetches)
	}
	for _, d := range r.PerDisk {
		if d.Fetches < 0 {
			t.Error("negative per-disk fetches")
		}
	}
}

func TestWriteSerializationRoundTrip(t *testing.T) {
	tr := rwTrace(50, 5)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Refs {
		if got.Refs[i].Write != tr.Refs[i].Write || got.Refs[i].Block != tr.Refs[i].Block {
			t.Fatalf("ref %d mismatch: %+v vs %+v", i, got.Refs[i], tr.Refs[i])
		}
	}
	half := tr.ScaleCompute(0.5)
	for i := range tr.Refs {
		if half.Refs[i].Write != tr.Refs[i].Write {
			t.Fatal("ScaleCompute dropped the write flag")
		}
	}
}

func TestWritesWithHints(t *testing.T) {
	tr := rwTrace(800, 4)
	r, err := ppcsim.Run(ppcsim.Options{
		Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2,
		Hints: &ppcsim.HintSpec{Fraction: 0.6, Accuracy: 0.9, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.WriteRequests != 200 {
		t.Errorf("writes = %d, want 200", r.WriteRequests)
	}
	if r.CacheHits+r.CacheMisses != 800 {
		t.Errorf("reads served = %d, want 800", r.CacheHits+r.CacheMisses)
	}
}
