package ppcsim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppcsim"
	"ppcsim/internal/trace/tracetest"
)

// The hints extension: the paper's section 6 notes the study covers only
// the fully-hinted case and that the online algorithms "can easily be
// adapted" to incomplete or inaccurate hints. These tests pin the
// extension's expected behavior.

func hintRun(t *testing.T, tr *ppcsim.Trace, alg ppcsim.Algorithm, d int, h *ppcsim.HintSpec) ppcsim.Result {
	t.Helper()
	r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: d, Hints: h})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestHintsFullEqualsNoSpec: Fraction=1, Accuracy=1 must reproduce the
// fully-hinted run exactly.
func TestHintsFullEqualsNoSpec(t *testing.T) {
	tr := truncated(t, "cscope2", 5000)
	for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall} {
		base := hintRun(t, tr, alg, 2, nil)
		full := hintRun(t, tr, alg, 2, &ppcsim.HintSpec{Fraction: 1, Accuracy: 1})
		if base.ElapsedSec != full.ElapsedSec || base.Fetches != full.Fetches {
			t.Errorf("%s: full hints differ from no spec: %v vs %v", alg, base, full)
		}
	}
}

// TestHintsDegradeGracefully: fewer hints must not help, and zero hints
// must behave like demand fetching with suboptimal-but-legal replacement
// (every reference still served).
func TestHintsDegradeGracefully(t *testing.T) {
	tr := truncated(t, "postgres-select", 3000)
	for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Forestall} {
		full := hintRun(t, tr, alg, 2, nil)
		half := hintRun(t, tr, alg, 2, &ppcsim.HintSpec{Fraction: 0.5, Accuracy: 1, Seed: 7})
		none := hintRun(t, tr, alg, 2, &ppcsim.HintSpec{Fraction: 0, Accuracy: 1, Seed: 7})
		if half.ElapsedSec < full.ElapsedSec*0.98 {
			t.Errorf("%s: half hints (%.3fs) should not beat full hints (%.3fs)", alg, half.ElapsedSec, full.ElapsedSec)
		}
		if none.ElapsedSec < half.ElapsedSec*0.98 {
			t.Errorf("%s: no hints (%.3fs) should not beat half hints (%.3fs)", alg, none.ElapsedSec, half.ElapsedSec)
		}
		for _, r := range []ppcsim.Result{full, half, none} {
			if r.CacheHits+r.CacheMisses != int64(len(tr.Refs)) {
				t.Errorf("%s: not every reference served", alg)
			}
		}
	}
}

// TestInaccurateHintsWasteFetches: wrong hints cause prefetches of blocks
// that are never used.
func TestInaccurateHintsWasteFetches(t *testing.T) {
	tr := truncated(t, "cscope2", 5000)
	good := hintRun(t, tr, ppcsim.Aggressive, 2, nil)
	bad := hintRun(t, tr, ppcsim.Aggressive, 2, &ppcsim.HintSpec{Fraction: 1, Accuracy: 0.5, Seed: 3})
	if bad.Fetches <= good.Fetches {
		t.Errorf("inaccurate hints should add wasted fetches: %d vs %d", bad.Fetches, good.Fetches)
	}
	if bad.ElapsedSec <= good.ElapsedSec {
		t.Errorf("inaccurate hints should hurt: %.3fs vs %.3fs", bad.ElapsedSec, good.ElapsedSec)
	}
}

// TestLRUImmuneToHintQuality: demand-LRU ignores hints entirely.
func TestLRUImmuneToHintQuality(t *testing.T) {
	tr := truncated(t, "glimpse", 4000)
	base := hintRun(t, tr, ppcsim.DemandLRU, 2, nil)
	noisy := hintRun(t, tr, ppcsim.DemandLRU, 2, &ppcsim.HintSpec{Fraction: 0.3, Accuracy: 0.5, Seed: 11})
	if base.Fetches != noisy.Fetches || base.ElapsedSec != noisy.ElapsedSec {
		t.Errorf("LRU should be hint-independent: %v vs %v", base, noisy)
	}
}

// TestHintedPrefetchersStillBeatLRUWithDecentHints: even 75% hints keep
// the prefetchers ahead of a conventional LRU cache.
func TestHintedPrefetchersStillBeatLRUWithDecentHints(t *testing.T) {
	tr := truncated(t, "postgres-select", 3000)
	lru := hintRun(t, tr, ppcsim.DemandLRU, 2, nil)
	fo := hintRun(t, tr, ppcsim.Forestall, 2, &ppcsim.HintSpec{Fraction: 0.75, Accuracy: 1, Seed: 5})
	if fo.ElapsedSec >= lru.ElapsedSec {
		t.Errorf("75%%-hinted forestall (%.3fs) should beat LRU (%.3fs)", fo.ElapsedSec, lru.ElapsedSec)
	}
}

// TestReverseAggressiveRejectsHints: the offline algorithm needs full
// knowledge.
func TestReverseAggressiveRejectsHints(t *testing.T) {
	tr := truncated(t, "ld", 500)
	_, err := ppcsim.Run(ppcsim.Options{
		Trace: tr, Algorithm: ppcsim.ReverseAggressive, Disks: 1,
		Hints: &ppcsim.HintSpec{Fraction: 0.5, Accuracy: 1},
	})
	if err == nil {
		t.Error("reverse aggressive with partial hints should be rejected")
	}
}

// TestHintSpecValidation rejects out-of-range specs.
func TestHintSpecValidation(t *testing.T) {
	tr := truncated(t, "ld", 500)
	for _, h := range []*ppcsim.HintSpec{
		{Fraction: -0.1, Accuracy: 1},
		{Fraction: 1.5, Accuracy: 1},
		{Fraction: 1, Accuracy: -1},
		{Fraction: 1, Accuracy: 2},
	} {
		if _, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: 1, Hints: h}); err == nil {
			t.Errorf("spec %+v should be rejected", h)
		}
	}
}

// TestHintsRandomTraces: property test — every online policy completes
// under arbitrary hint quality on arbitrary traces.
func TestHintsRandomTraces(t *testing.T) {
	algs := []ppcsim.Algorithm{ppcsim.Demand, ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall, ppcsim.DemandLRU}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := tracetest.Random(rng, tracetest.RandomConfig{
			MaxBlocks: 44, MaxRefs: 329, MaxComputeMs: 4,
		})
		n := len(tr.Refs)
		h := &ppcsim.HintSpec{
			Fraction: rng.Float64(),
			Accuracy: rng.Float64(),
			Seed:     rng.Int63(),
		}
		alg := algs[rng.Intn(len(algs))]
		r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 1 + rng.Intn(4), Hints: h})
		if err != nil {
			t.Logf("seed %d %s: %v", seed, alg, err)
			return false
		}
		return r.CacheHits+r.CacheMisses == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
