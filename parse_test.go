package ppcsim_test

import (
	"errors"
	"strings"
	"testing"

	"ppcsim"
)

func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		in      string
		want    ppcsim.Algorithm
		wantErr bool
	}{
		{"demand", ppcsim.Demand, false},
		{"fixed-horizon", ppcsim.FixedHorizon, false},
		{"aggressive", ppcsim.Aggressive, false},
		{"reverse-aggressive", ppcsim.ReverseAggressive, false},
		{"forestall", ppcsim.Forestall, false},
		{"demand-lru", ppcsim.DemandLRU, false},
		{"Forestall", ppcsim.Forestall, false},
		{"  AGGRESSIVE  ", ppcsim.Aggressive, false},
		{"", "", true},
		{"tip2", "", true},
		{"fixed horizon", "", true},
	}
	for _, c := range cases {
		got, err := ppcsim.ParseAlgorithm(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseAlgorithm(%q) = %q, want error", c.in, got)
			} else if !strings.Contains(err.Error(), "forestall") {
				t.Errorf("ParseAlgorithm(%q) error %q should list the valid names", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("ParseAlgorithm(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseDiscipline(t *testing.T) {
	cases := []struct {
		in      string
		want    ppcsim.Discipline
		wantErr bool
	}{
		{"cscan", ppcsim.CSCAN, false},
		{"fcfs", ppcsim.FCFS, false},
		{"CSCAN", ppcsim.CSCAN, false},
		{" FCFS ", ppcsim.FCFS, false},
		{"", 0, true},
		{"sstf", 0, true},
	}
	for _, c := range cases {
		got, err := ppcsim.ParseDiscipline(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseDiscipline(%q) = %v, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDiscipline(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("ParseDiscipline(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestOptionsValidate exercises every rejection path and checks the
// returned *ConfigError names the offending field.
func TestOptionsValidate(t *testing.T) {
	tr, err := ppcsim.NewTrace("synth")
	if err != nil {
		t.Fatal(err)
	}
	ok := func() ppcsim.Options {
		return ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall}
	}
	cases := []struct {
		name  string
		opts  ppcsim.Options
		field string // "" = expect valid
	}{
		{"valid minimal", ok(), ""},
		{"valid full hints", func() ppcsim.Options {
			o := ok()
			o.Hints = &ppcsim.HintSpec{Fraction: 0.5, Accuracy: 0.9}
			return o
		}(), ""},
		{"nil trace", ppcsim.Options{Algorithm: ppcsim.Demand}, "Trace"},
		{"invalid trace", ppcsim.Options{Trace: &ppcsim.Trace{Name: "empty"}, Algorithm: ppcsim.Demand}, "Trace"},
		{"missing algorithm", ppcsim.Options{Trace: tr}, "Algorithm"},
		{"unknown algorithm", ppcsim.Options{Trace: tr, Algorithm: "tip2"}, "Algorithm"},
		{"negative disks", func() ppcsim.Options {
			o := ok()
			o.Disks = -1
			return o
		}(), "Disks"},
		{"one-block cache", func() ppcsim.Options {
			o := ok()
			o.CacheBlocks = 1
			return o
		}(), "CacheBlocks"},
		{"negative cache", func() ppcsim.Options {
			o := ok()
			o.CacheBlocks = -5
			return o
		}(), "CacheBlocks"},
		{"negative batch", func() ppcsim.Options {
			o := ok()
			o.BatchSize = -1
			return o
		}(), "BatchSize"},
		{"negative horizon", func() ppcsim.Options {
			o := ok()
			o.Horizon = -1
			return o
		}(), "Horizon"},
		{"negative fetch estimate", func() ppcsim.Options {
			o := ok()
			o.FetchEstimate = -2
			return o
		}(), "FetchEstimate"},
		{"negative forestall F", func() ppcsim.Options {
			o := ok()
			o.ForestallFixedF = -0.5
			return o
		}(), "ForestallFixedF"},
		{"hints with reverse aggressive", ppcsim.Options{
			Trace: tr, Algorithm: ppcsim.ReverseAggressive,
			Hints: &ppcsim.HintSpec{Fraction: 0.5, Accuracy: 1},
		}, "Hints"},
		{"bad hint fraction", func() ppcsim.Options {
			o := ok()
			o.Hints = &ppcsim.HintSpec{Fraction: 1.5, Accuracy: 1}
			return o
		}(), "Hints"},
		{"bad geometry", func() ppcsim.Options {
			o := ok()
			g := ppcsim.HP97560Geometry()
			g.RPM = 0
			o.DiskGeometry = &g
			return o
		}(), "DiskGeometry"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.opts.Validate()
			if c.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error on %s", c.field)
			}
			var cfgErr *ppcsim.ConfigError
			if !errors.As(err, &cfgErr) {
				t.Fatalf("Validate() = %v, want *ConfigError", err)
			}
			if cfgErr.Field != c.field {
				t.Errorf("ConfigError.Field = %q, want %q (err: %v)", cfgErr.Field, c.field, err)
			}
			// Run must reject the same options with the same error shape.
			if _, runErr := ppcsim.Run(c.opts); runErr == nil {
				t.Error("Run accepted options Validate rejected")
			} else if !errors.As(runErr, &cfgErr) {
				t.Errorf("Run error %v is not a *ConfigError", runErr)
			}
		})
	}
}
