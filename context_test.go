package ppcsim_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"ppcsim"
)

// TestRunContextCancel covers the cooperative cancellation path: a
// canceled context stops the engine loop with an error that matches both
// ppcsim.ErrCanceled and the context's own cause.
func TestRunContextCancel(t *testing.T) {
	tr, err := ppcsim.NewTrace("synth")
	if err != nil {
		t.Fatal(err)
	}
	opts := ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 4}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the run must stop at the first check
	_, err = ppcsim.RunContext(ctx, opts)
	if !errors.Is(err, ppcsim.ErrCanceled) {
		t.Fatalf("err = %v, want ppcsim.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, should also match context.Canceled", err)
	}
}

// TestRunContextDeadlineExpired: an already-expired deadline must abort
// the run for every algorithm before any work happens. This is the
// deterministic form of the timeout guarantee: the engine promises to
// stop at the next iteration boundary once the context is done, while a
// live sub-10ms timer may not fire at all before a short run completes
// (Go delivers timers to a CPU-bound loop only at preemption points).
func TestRunContextDeadlineExpired(t *testing.T) {
	tr, err := ppcsim.NewTrace("xds")
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []ppcsim.Algorithm{
		ppcsim.Demand, ppcsim.FixedHorizon, ppcsim.Aggressive,
		ppcsim.ReverseAggressive, ppcsim.Forestall,
	} {
		t.Run(string(alg), func(t *testing.T) {
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			defer cancel()
			opts := ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 2}
			_, err := ppcsim.RunContext(ctx, opts)
			if !errors.Is(err, ppcsim.ErrCanceled) {
				t.Fatalf("err = %v, want ppcsim.ErrCanceled", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err = %v, should also match context.DeadlineExceeded", err)
			}
		})
	}
}

// TestRunContextNilMatchesRun: a nil context must change nothing — the
// plain Run path and RunContext(nil) produce identical results.
func TestRunContextNilMatchesRun(t *testing.T) {
	tr, err := ppcsim.NewTrace("synth")
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.Truncate(2000)
	opts := ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2}

	want, err := ppcsim.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ppcsim.RunContext(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RunContext(nil) = %+v\nRun = %+v", got, want)
	}
}
