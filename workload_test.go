package ppcsim_test

import (
	"testing"

	"ppcsim"
)

func TestTraceBuilderBasic(t *testing.T) {
	b := ppcsim.NewTraceBuilder("custom")
	f := b.AddFile(100)
	b.ComputeFixed(2.0).Loop(f, 3)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Reads != 300 || st.DistinctBlocks != 100 {
		t.Fatalf("stats %+v", st)
	}
	if st.ComputeSec != 0.6 {
		t.Errorf("compute %g, want 0.6", st.ComputeSec)
	}
	r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2, CacheBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHits+r.CacheMisses != 300 {
		t.Error("not every reference served")
	}
}

func TestTraceBuilderPatterns(t *testing.T) {
	b := ppcsim.NewTraceBuilder("patterns").Seed(9)
	idx := b.AddFile(16)
	dat := b.AddFile(512)
	b.ComputeUniform(0.5, 1.5)
	b.Sequential(idx, 0, 16)
	b.RandomUniform(dat, 50)
	b.Zipf(dat, 50, 1.5)
	b.Strided(dat, 3, 37, 40)
	b.ComputeExp(1.0)
	b.Ref(idx, 5, 4.0)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 157 || len(tr.Refs) != 157 {
		t.Fatalf("refs = %d, want 157", len(tr.Refs))
	}
	// Blocks must stay within their files: idx is [0,16), dat [16,528).
	for i, r := range tr.Refs {
		if int(r.Block) < 0 || int(r.Block) >= 528 {
			t.Fatalf("ref %d block %d out of space", i, r.Block)
		}
	}
	// The explicit Ref has the explicit compute time.
	if tr.Refs[156].ComputeMs != 4.0 || tr.Refs[156].Block != 5 {
		t.Errorf("explicit ref wrong: %+v", tr.Refs[156])
	}
}

func TestTraceBuilderDeterministicWithSeed(t *testing.T) {
	mk := func() *ppcsim.Trace {
		b := ppcsim.NewTraceBuilder("det").Seed(123)
		f := b.AddFile(64)
		b.ComputeExp(1).RandomUniform(f, 200)
		tr, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, c := mk(), mk()
	for i := range a.Refs {
		if a.Refs[i] != c.Refs[i] {
			t.Fatal("builder not deterministic under a fixed seed")
		}
	}
}

func TestTraceBuilderErrors(t *testing.T) {
	cases := []func(*ppcsim.TraceBuilder){
		func(b *ppcsim.TraceBuilder) { b.AddFile(0) },
		func(b *ppcsim.TraceBuilder) { b.Sequential(ppcsim.FileID(5), 0, 1) },
		func(b *ppcsim.TraceBuilder) { f := b.AddFile(4); b.Sequential(f, 9, 1) },
		func(b *ppcsim.TraceBuilder) { f := b.AddFile(4); b.Strided(f, 0, 0, 1) },
		func(b *ppcsim.TraceBuilder) { f := b.AddFile(4); b.Zipf(f, 1, 0.5) },
		func(b *ppcsim.TraceBuilder) { b.ComputeFixed(-1) },
		func(b *ppcsim.TraceBuilder) { b.ComputeUniform(3, 1) },
		func(b *ppcsim.TraceBuilder) { b.ComputeExp(0) },
		func(b *ppcsim.TraceBuilder) { f := b.AddFile(4); b.Ref(f, 0, -2) },
		func(b *ppcsim.TraceBuilder) { f := b.AddFile(4); b.Ref(f, 7, 1) },
		func(b *ppcsim.TraceBuilder) {}, // no refs at all
	}
	for i, mutate := range cases {
		b := ppcsim.NewTraceBuilder("bad")
		mutate(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: expected Build error", i)
		}
	}
}

func TestTraceBuilderFirstErrorWins(t *testing.T) {
	b := ppcsim.NewTraceBuilder("bad")
	b.Sequential(ppcsim.FileID(0), 0, 1) // no files yet
	f := b.AddFile(8)
	b.Loop(f, 1) // would be fine, but the builder already failed
	if _, err := b.Build(); err == nil {
		t.Error("expected the first error to stick")
	}
}

func TestTraceBuilderZipfSkew(t *testing.T) {
	b := ppcsim.NewTraceBuilder("zipf").Seed(4)
	f := b.AddFile(1000)
	b.Zipf(f, 5000, 2.0)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	head := 0
	for _, r := range tr.Refs {
		if int(r.Block) < 10 {
			head++
		}
	}
	if head < len(tr.Refs)/2 {
		t.Errorf("zipf(2.0): only %d/%d references in the 10 hottest blocks", head, len(tr.Refs))
	}
}

func TestTraceBuilderStridedWraps(t *testing.T) {
	b := ppcsim.NewTraceBuilder("wrap")
	f := b.AddFile(10)
	b.Strided(f, 8, 3, 5) // 8, 11->1, 4, 7, 10->0
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 1, 4, 7, 0}
	for i, w := range want {
		if int(tr.Refs[i].Block) != w {
			t.Fatalf("strided ref %d = %d, want %d", i, tr.Refs[i].Block, w)
		}
	}
	// Negative strides also wrap.
	b2 := ppcsim.NewTraceBuilder("wrap2")
	f2 := b2.AddFile(10)
	b2.Strided(f2, 1, -4, 3) // 1, -3->7, -7->3
	tr2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []int{1, 7, 3} {
		if int(tr2.Refs[i].Block) != w {
			t.Fatalf("negative stride ref %d = %d, want %d", i, tr2.Refs[i].Block, w)
		}
	}
}
