package ppcsim

import (
	"fmt"
	"math"
	"strings"
)

// ParseAlgorithm converts a user-supplied name (a CLI flag, a config
// value) into an Algorithm, rejecting anything that Run would not
// accept. Matching is case-insensitive and ignores surrounding space.
// Failures are *ConfigError values (field "Algorithm"), so CLI and HTTP
// boundaries report them uniformly with Options.Validate's errors.
func ParseAlgorithm(s string) (Algorithm, error) {
	name := Algorithm(strings.ToLower(strings.TrimSpace(s)))
	for _, a := range Algorithms {
		if name == a {
			return a, nil
		}
	}
	return "", &ConfigError{
		Field:  "Algorithm",
		Reason: fmt.Sprintf("unknown algorithm %q (valid: %s)", s, algorithmNames()),
	}
}

func algorithmNames() string {
	names := make([]string, len(Algorithms))
	for i, a := range Algorithms {
		names[i] = string(a)
	}
	return strings.Join(names, ", ")
}

// ParseDiscipline converts a user-supplied scheduler name ("cscan" or
// "fcfs", case-insensitive) into a Discipline. Failures are *ConfigError
// values (field "Scheduler").
func ParseDiscipline(s string) (Discipline, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "cscan":
		return CSCAN, nil
	case "fcfs":
		return FCFS, nil
	}
	return CSCAN, &ConfigError{
		Field:  "Scheduler",
		Reason: fmt.Sprintf("unknown disk scheduler %q (valid: cscan, fcfs)", s),
	}
}

// ConfigError reports an invalid Options field. Run and Options.Validate
// return it (wrapped in error) so callers can point users at the exact
// field: errors.As(err, &cfgErr) then cfgErr.Field.
type ConfigError struct {
	// Field is the Options field name, e.g. "Disks".
	Field string
	// Reason says what is wrong with the value.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("ppcsim: invalid Options.%s: %s", e.Field, e.Reason)
}

// Validate checks the Options for the errors Run would otherwise surface
// mid-setup, returning a *ConfigError naming the offending field. Run
// calls it first, so callers constructing Options programmatically can
// validate early (e.g. at flag-parsing time) and get the same answer.
func (o Options) Validate() error {
	if o.Trace == nil && o.Source == nil {
		return &ConfigError{Field: "Trace", Reason: "required (see NewTrace; or set Source for a streaming run)"}
	}
	if o.Trace != nil && o.Source != nil {
		return &ConfigError{Field: "Source", Reason: "mutually exclusive with Trace"}
	}
	if o.Trace != nil {
		if err := o.Trace.Validate(); err != nil {
			return &ConfigError{Field: "Trace", Reason: err.Error()}
		}
	}
	if o.Source != nil {
		if err := o.validateStreaming(); err != nil {
			return err
		}
	}
	if _, err := ParseAlgorithm(string(o.Algorithm)); err != nil {
		reason := fmt.Sprintf("unknown algorithm %q (valid: %s)", o.Algorithm, algorithmNames())
		if o.Algorithm == "" {
			reason = "required (see Algorithms)"
		}
		return &ConfigError{Field: "Algorithm", Reason: reason}
	}
	if o.Disks < 0 {
		return &ConfigError{Field: "Disks", Reason: fmt.Sprintf("must be non-negative, got %d", o.Disks)}
	}
	if o.CacheBlocks < 0 || o.CacheBlocks == 1 {
		return &ConfigError{Field: "CacheBlocks", Reason: fmt.Sprintf("need at least 2 blocks (0 = trace default), got %d", o.CacheBlocks)}
	}
	if o.BatchSize < 0 {
		return &ConfigError{Field: "BatchSize", Reason: fmt.Sprintf("must be non-negative, got %d", o.BatchSize)}
	}
	if o.Horizon < 0 {
		return &ConfigError{Field: "Horizon", Reason: fmt.Sprintf("must be non-negative, got %d", o.Horizon)}
	}
	if o.FetchEstimate < 0 {
		return &ConfigError{Field: "FetchEstimate", Reason: fmt.Sprintf("must be non-negative, got %g", o.FetchEstimate)}
	}
	if o.ForestallFixedF < 0 {
		return &ConfigError{Field: "ForestallFixedF", Reason: fmt.Sprintf("must be non-negative, got %g", o.ForestallFixedF)}
	}
	if o.Hints != nil {
		if err := o.Hints.Validate(); err != nil {
			return &ConfigError{Field: "Hints", Reason: err.Error()}
		}
		if o.Algorithm == ReverseAggressive && o.Trace != nil {
			// Reverse aggressive is offline: it builds its schedule from
			// the whole disclosed sequence up front. A spec is acceptable
			// only when it is information-equivalent to full hints —
			// everything disclosed, everything accurate, and a window that
			// is unlimited or covers the whole trace.
			full := o.Hints.Fraction == 1 && o.Hints.Accuracy == 1 //ppcvet:ignore exact fully-hinted sentinel values, assigned not computed
			if !full || (o.Hints.Window != 0 && o.Hints.Window < len(o.Trace.Refs)) {
				return &ConfigError{Field: "Hints", Reason: "reverse aggressive is offline and requires full hints"}
			}
		}
	}
	if o.DiskGeometry != nil {
		if err := o.DiskGeometry.Validate(); err != nil {
			return &ConfigError{Field: "DiskGeometry", Reason: err.Error()}
		}
	}
	return nil
}

// validateStreaming checks the constraints specific to Options.Source
// runs: a valid source header, a reference count that fits the engine's
// int32 position space, an online algorithm, and a bounded lookahead
// window — the window is what lets the engine keep only a ring of
// upcoming references resident.
func (o Options) validateStreaming() error {
	m := o.Source.Meta()
	if err := m.Validate(); err != nil {
		return &ConfigError{Field: "Source", Reason: err.Error()}
	}
	if m.Refs >= math.MaxInt32 {
		return &ConfigError{Field: "Source", Reason: fmt.Sprintf("trace length %d exceeds the streaming maximum of 2^31-2 references", m.Refs)}
	}
	if o.Algorithm == ReverseAggressive {
		return &ConfigError{Field: "Algorithm", Reason: "reverse aggressive is offline and requires a materialized trace (see MaterializeTrace)"}
	}
	if o.Hints == nil {
		return &ConfigError{Field: "Hints", Reason: "streaming runs require a bounded lookahead window (set Hints with Window > 0 or WindowNone)"}
	}
	if o.Hints.Window == 0 || int64(o.Hints.Window) >= m.Refs {
		return &ConfigError{Field: "Hints", Reason: fmt.Sprintf("streaming runs require a window smaller than the trace (window %d, trace %d references)", o.Hints.Window, m.Refs)}
	}
	return nil
}
