package ppcsim_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ppcsim"
)

// TestAllTraces pins the bundled-trace enumeration against TraceNames.
func TestAllTraces(t *testing.T) {
	all := ppcsim.AllTraces()
	if len(all) != len(ppcsim.TraceNames) {
		t.Fatalf("AllTraces returned %d traces, TraceNames lists %d", len(all), len(ppcsim.TraceNames))
	}
	for i, tr := range all {
		if tr.Name != ppcsim.TraceNames[i] {
			t.Errorf("AllTraces[%d] = %q, want %q", i, tr.Name, ppcsim.TraceNames[i])
		}
	}
}

// TestColumnarTraceAPI drives the public streaming surface end to end:
// write a bundled trace to a columnar file, reopen it, run it streamed,
// and require the result to equal the materialized run's.
func TestColumnarTraceAPI(t *testing.T) {
	tr, err := ppcsim.NewTrace("ld")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ld.col")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ppcsim.WriteColumnarTrace(f, tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != n {
		t.Fatalf("WriteColumnarTrace reported %d bytes, file has %v (%v)", n, st, err)
	}

	src, err := ppcsim.OpenColumnarTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	back, err := ppcsim.MaterializeTrace(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Refs, tr.Refs) {
		t.Fatal("materialized columnar refs differ from the original trace")
	}

	hints := &ppcsim.HintSpec{Fraction: 1, Accuracy: 1, Window: 64}
	want, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2, Hints: hints})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ppcsim.Run(ppcsim.Options{Source: src, Algorithm: ppcsim.Forestall, Disks: 2, Hints: hints})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed run differs from materialized:\n%+v\n%+v", got, want)
	}
}
