package ppcsim_test

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark runs the experiment's central configuration(s) and reports
// the simulated elapsed time as a custom metric (sim-sec/op), so
// `go test -bench=. -benchmem` both times the simulator and regenerates
// the headline numbers. The full tables are produced by
// `go run ./cmd/ppc-experiments`; the benchmarks use quarter-length
// traces so the whole suite stays fast.
//
// See DESIGN.md section 5 for the experiment index.

import (
	"fmt"
	"testing"

	"ppcsim"
	"ppcsim/internal/trace/tracetest"
)

// benchTrace returns a quarter-length bundled trace; generation is
// cached per process by tracetest, truncation is a cheap copy.
func benchTrace(b *testing.B, name string) *ppcsim.Trace {
	b.Helper()
	tr := tracetest.Bundled(b, name)
	return tr.Truncate(len(tr.Refs) / 4)
}

// benchRun executes one configuration b.N times and reports the simulated
// elapsed and stall times.
func benchRun(b *testing.B, opts ppcsim.Options) {
	b.Helper()
	var last ppcsim.Result
	for i := 0; i < b.N; i++ {
		r, err := ppcsim.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.ElapsedSec, "sim-sec")
	b.ReportMetric(last.StallTimeSec, "stall-sec")
	b.ReportMetric(float64(last.Fetches), "fetches")
}

// BenchmarkTable2CrossValidation runs the two drive models on xds (the
// simulator cross-check of Table 2).
func BenchmarkTable2CrossValidation(b *testing.B) {
	tr := benchTrace(b, "xds")
	b.Run("full-model", func(b *testing.B) {
		benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: 2})
	})
	b.Run("simple-model", func(b *testing.B) {
		benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: 2, SimpleDiskModel: true})
	})
}

// BenchmarkTable3TraceSummary times trace generation + stats for Table 3.
func BenchmarkTable3TraceSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total := 0
		for _, tr := range ppcsim.AllTraces() {
			total += tr.Stats().Reads
		}
		if total == 0 {
			b.Fatal("no reads")
		}
	}
}

// BenchmarkFig2PostgresSelect: demand vs the prefetchers (Figure 2).
func BenchmarkFig2PostgresSelect(b *testing.B) {
	tr := benchTrace(b, "postgres-select")
	for _, alg := range []ppcsim.Algorithm{ppcsim.Demand, ppcsim.FixedHorizon, ppcsim.Aggressive} {
		b.Run(string(alg)+"/4d", func(b *testing.B) {
			benchRun(b, ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 4})
		})
	}
}

// BenchmarkFig3SynthCscope1: the fundamental-differences figure.
func BenchmarkFig3SynthCscope1(b *testing.B) {
	for _, name := range []string{"synth", "cscope1"} {
		tr := benchTrace(b, name)
		for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive} {
			b.Run(name+"/"+string(alg)+"/1d", func(b *testing.B) {
				benchRun(b, ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 1})
			})
		}
	}
}

// BenchmarkTable4Utilization: utilization measurement path (Table 4).
func BenchmarkTable4Utilization(b *testing.B) {
	tr := benchTrace(b, "postgres-select")
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 8})
}

// BenchmarkFig4Ld: the ld crossover figure.
func BenchmarkFig4Ld(b *testing.B) {
	tr := benchTrace(b, "ld")
	for _, d := range []int{1, 4, 16} {
		b.Run(string(rune('0'+d/10))+string(rune('0'+d%10))+"d", func(b *testing.B) {
			benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: d})
		})
	}
}

// BenchmarkFig5Cscope3: reverse aggressive on the bursty-compute trace.
func BenchmarkFig5Cscope3(b *testing.B) {
	tr := benchTrace(b, "cscope3")
	b.Run("reverse-aggressive/1d", func(b *testing.B) {
		benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.ReverseAggressive, Disks: 1, FetchEstimate: 4, BatchSize: 80})
	})
	b.Run("aggressive/1d", func(b *testing.B) {
		benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 1})
	})
}

// BenchmarkTable5CscanVsFcfs: scheduler comparison (Table 5).
func BenchmarkTable5CscanVsFcfs(b *testing.B) {
	tr := benchTrace(b, "postgres-select")
	b.Run("CSCAN", func(b *testing.B) {
		benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 1})
	})
	b.Run("FCFS", func(b *testing.B) {
		benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 1, Scheduler: ppcsim.FCFS})
	})
}

// BenchmarkFig6BatchSize: aggressive's batch-size sweep endpoints.
func BenchmarkFig6BatchSize(b *testing.B) {
	tr := benchTrace(b, "cscope2")
	for _, batch := range []int{4, 160, 1280} {
		b.Run(map[int]string{4: "batch4", 160: "batch160", 1280: "batch1280"}[batch], func(b *testing.B) {
			benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 1, BatchSize: batch})
		})
	}
}

// BenchmarkFig7Horizon: fixed horizon's H sweep endpoints.
func BenchmarkFig7Horizon(b *testing.B) {
	tr := benchTrace(b, "cscope2")
	for _, h := range []int{16, 62, 2048} {
		b.Run(map[int]string{16: "H16", 62: "H62", 2048: "H2048"}[h], func(b *testing.B) {
			benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: 2, Horizon: h})
		})
	}
}

// BenchmarkTable7CacheSize: cache-size sensitivity (Table 7, appendix D).
func BenchmarkTable7CacheSize(b *testing.B) {
	tr := benchTrace(b, "glimpse")
	for _, k := range []int{640, 1920} {
		b.Run(map[int]string{640: "K640", 1920: "K1920"}[k], func(b *testing.B) {
			benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: 2, CacheBlocks: k})
		})
	}
}

// BenchmarkFig8Forestall: forestall on synth and xds.
func BenchmarkFig8Forestall(b *testing.B) {
	for _, name := range []string{"synth", "xds"} {
		tr := benchTrace(b, name)
		b.Run(name+"/1d", func(b *testing.B) {
			benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 1})
		})
	}
}

// BenchmarkFig9ForestallCscope2: forestall on cscope2.
func BenchmarkFig9ForestallCscope2(b *testing.B) {
	tr := benchTrace(b, "cscope2")
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 4})
}

// BenchmarkFig10ForestallGlimpse: forestall on glimpse.
func BenchmarkFig10ForestallGlimpse(b *testing.B) {
	tr := benchTrace(b, "glimpse")
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 4})
}

// BenchmarkTable8ForestallUtil: forestall's utilization path.
func BenchmarkTable8ForestallUtil(b *testing.B) {
	tr := benchTrace(b, "postgres-select")
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 8})
}

// BenchmarkAppendixABaseline: one baseline row per algorithm (ld, 2d).
func BenchmarkAppendixABaseline(b *testing.B) {
	tr := benchTrace(b, "ld")
	for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall} {
		b.Run(string(alg), func(b *testing.B) {
			benchRun(b, ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 2})
		})
	}
	b.Run("reverse-aggressive", func(b *testing.B) {
		benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.ReverseAggressive, Disks: 2, FetchEstimate: 8, BatchSize: 40})
	})
}

// BenchmarkAppendixBFCFS: the FCFS baseline.
func BenchmarkAppendixBFCFS(b *testing.B) {
	tr := benchTrace(b, "ld")
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: 2, Scheduler: ppcsim.FCFS})
}

// BenchmarkAppendixCDoubleCPU: double-speed-CPU xds (H=124).
func BenchmarkAppendixCDoubleCPU(b *testing.B) {
	tr := benchTrace(b, "xds").ScaleCompute(0.5)
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: 2, Horizon: 124})
}

// BenchmarkAppendixDCacheSize: the 640-block cache variant.
func BenchmarkAppendixDCacheSize(b *testing.B) {
	tr := benchTrace(b, "postgres-join")
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 2, CacheBlocks: 640})
}

// BenchmarkAppendixEBatch: aggressive's batch sweep midpoint.
func BenchmarkAppendixEBatch(b *testing.B) {
	tr := benchTrace(b, "dinero")
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 2, BatchSize: 16})
}

// BenchmarkAppendixFRevAggParams: reverse aggressive with fixed params,
// including the schedule-construction cost.
func BenchmarkAppendixFRevAggParams(b *testing.B) {
	tr := benchTrace(b, "cscope1")
	for _, f := range []float64{4, 64} {
		b.Run(map[float64]string{4: "F4", 64: "F64"}[f], func(b *testing.B) {
			benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.ReverseAggressive, Disks: 2, FetchEstimate: f, BatchSize: 40})
		})
	}
}

// BenchmarkAppendixGHorizon: the huge-horizon configuration.
func BenchmarkAppendixGHorizon(b *testing.B) {
	tr := benchTrace(b, "dinero")
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.FixedHorizon, Disks: 2, Horizon: 2048})
}

// BenchmarkAppendixHForestallFixed: forestall with a fixed estimate.
func BenchmarkAppendixHForestallFixed(b *testing.B) {
	tr := benchTrace(b, "cscope2")
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2, ForestallFixedF: 30})
}

// --- Hot-path benchmarks ---
//
// One benchmark per (policy, disk count) on the full synthetic
// 100k-reference trace, reporting refs/sec alongside ns/op and allocs/op.
// These are the regression surface for the simulator's hot path;
// `go run ./cmd/ppc-bench` runs the same grid and emits BENCH_<n>.json.

func benchTraceFull(b *testing.B, name string) *ppcsim.Trace {
	b.Helper()
	return tracetest.Bundled(b, name)
}

// HotPathGrid is the benchmark grid shared with cmd/ppc-bench.
var (
	hotPathAlgs  = []ppcsim.Algorithm{ppcsim.Demand, ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall}
	hotPathDisks = []int{1, 2, 4, 8, 16}
)

// BenchmarkHotPath runs every hot-path grid point on the full synth trace.
func BenchmarkHotPath(b *testing.B) {
	tr := benchTraceFull(b, "synth")
	refs := float64(len(tr.Refs))
	for _, alg := range hotPathAlgs {
		for _, d := range hotPathDisks {
			b.Run(fmt.Sprintf("%s/%dd", alg, d), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: d}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(refs*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
			})
		}
	}
}

// --- Extension benchmarks (beyond the paper's artifacts) ---

// BenchmarkExtLRU times the hint-less LRU baseline.
func BenchmarkExtLRU(b *testing.B) {
	tr := benchTrace(b, "glimpse")
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.DemandLRU, Disks: 2})
}

// BenchmarkExtHints times a degraded-hints run (phantom-block path).
func BenchmarkExtHints(b *testing.B) {
	tr := benchTrace(b, "postgres-select")
	benchRun(b, ppcsim.Options{
		Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2,
		Hints: &ppcsim.HintSpec{Fraction: 0.5, Accuracy: 0.9, Seed: 1},
	})
}

// BenchmarkExtWrites times the write-behind path.
func BenchmarkExtWrites(b *testing.B) {
	bld := ppcsim.NewTraceBuilder("bench-writes").Seed(3)
	data := bld.AddFile(400)
	logf := bld.AddFile(1024)
	for i := 0; i < 800; i++ {
		bld.Sequential(data, i%400, 1)
		if i%4 == 3 {
			bld.WriteSequential(logf, i%1024, 1)
		}
	}
	tr, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	benchRun(b, ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 2, CacheBlocks: 256})
}

// BenchmarkExtMulti times the multi-process simulator.
func BenchmarkExtMulti(b *testing.B) {
	mk := func(seed int64) *ppcsim.Trace {
		bld := ppcsim.NewTraceBuilder("mp").Seed(seed)
		f := bld.AddFile(500)
		bld.ComputeExp(1.5).Loop(f, 3)
		tr, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		return tr
	}
	var last ppcsim.MultiResult
	for i := 0; i < b.N; i++ {
		r, err := ppcsim.RunMulti(ppcsim.MultiConfig{
			Processes: []ppcsim.ProcessSpec{
				{Trace: mk(1), Algorithm: ppcsim.MultiForestall, Hinted: true},
				{Trace: mk(2)},
			},
			Disks:       2,
			CacheBlocks: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.ElapsedSec, "sim-sec")
}

// BenchmarkTraceBuilder times workload construction itself.
func BenchmarkTraceBuilder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bld := ppcsim.NewTraceBuilder("bench").Seed(int64(i))
		f := bld.AddFile(2000)
		bld.ComputeExp(1).Loop(f, 5).Zipf(f, 2000, 1.3).Strided(f, 0, 17, 1000)
		if _, err := bld.Build(); err != nil {
			b.Fatal(err)
		}
	}
}
