package ppcsim

import (
	"ppcsim/internal/multi"
)

// Multi-process simulation: several processes share the buffer cache and
// disk array, the setting the paper's section 6 leaves open. Replacement
// is global, comparing hinted blocks (hinted distance × the owner's
// compute rate) with unhinted ones (age, i.e. LRU) in estimated
// time-to-next-use, in the spirit of TIP2's cost-benefit allocator.
//
//	res, err := ppcsim.RunMulti(ppcsim.MultiConfig{
//	    Processes: []ppcsim.ProcessSpec{
//	        {Trace: hintedTrace, Algorithm: ppcsim.MultiAggressive, Hinted: true},
//	        {Trace: otherTrace},  // unhinted: demand fetching, LRU value
//	    },
//	    Disks:       2,
//	    CacheBlocks: 1280,
//	})

// MultiConfig configures a multi-process run.
type MultiConfig = multi.Config

// ProcessSpec describes one competing process of a multi-process run.
type ProcessSpec = multi.ProcessSpec

// MultiResult reports a multi-process run.
type MultiResult = multi.Result

// ProcessResult reports one process's share of a multi-process run.
type ProcessResult = multi.ProcessResult

// Per-process strategies for multi-process runs.
const (
	// MultiFixedHorizon prefetches a hinted process's missing blocks at
	// most H references ahead.
	MultiFixedHorizon = multi.FixedHorizon
	// MultiAggressive prefetches a hinted process's first missing blocks
	// whenever a disk is free.
	MultiAggressive = multi.Aggressive
	// MultiForestall prefetches just early enough to forestall predicted
	// stalls, per disk.
	MultiForestall = multi.Forestall
	// MultiDemand never prefetches.
	MultiDemand = multi.Demand
)

// RunMulti executes a multi-process simulation.
func RunMulti(cfg MultiConfig) (MultiResult, error) {
	return multi.Run(cfg)
}
