package ppcsim_test

import (
	"testing"

	"ppcsim"
)

// This file pins the paper's headline findings (section 1.4, "Summary of
// results") as executable assertions. The runs use half-length traces to
// stay fast; the shapes they check are scale-invariant.

func claimTrace(t *testing.T, name string) *ppcsim.Trace {
	t.Helper()
	tr, err := ppcsim.NewTrace(name)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Truncate(len(tr.Refs) / 2)
}

func claimRun(t *testing.T, tr *ppcsim.Trace, alg ppcsim.Algorithm, disks int) ppcsim.Result {
	t.Helper()
	r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: disks})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Claim 1: "All four algorithms significantly outperform demand fetching,
// even when advance knowledge ... is used to make optimal replacement
// decisions in conjunction with demand fetching."
func TestClaimPrefetchingBeatsOptimalDemand(t *testing.T) {
	for _, name := range []string{"postgres-select", "cscope2", "ld", "synth"} {
		tr := claimTrace(t, name)
		for _, d := range []int{1, 4} {
			dm := claimRun(t, tr, ppcsim.Demand, d)
			for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall} {
				r := claimRun(t, tr, alg, d)
				if r.ElapsedSec >= dm.ElapsedSec {
					t.Errorf("%s/d=%d: %s (%.3fs) does not beat optimal demand (%.3fs)",
						name, d, alg, r.ElapsedSec, dm.ElapsedSec)
				}
			}
		}
	}
}

// Claim 2: near-linear reduction in I/O stall with added disks until the
// application becomes compute-bound.
func TestClaimStallShrinksWithDisks(t *testing.T) {
	tr := claimTrace(t, "postgres-select")
	prev := -1.0
	for _, d := range []int{1, 2, 4, 8} {
		r := claimRun(t, tr, ppcsim.FixedHorizon, d)
		if prev >= 0 && r.StallTimeSec > prev+0.05 {
			t.Errorf("d=%d: stall %.3fs grew from %.3fs", d, r.StallTimeSec, prev)
		}
		prev = r.StallTimeSec
	}
	one := claimRun(t, tr, ppcsim.FixedHorizon, 1)
	eight := claimRun(t, tr, ppcsim.FixedHorizon, 8)
	if eight.StallTimeSec > one.StallTimeSec/4 {
		t.Errorf("8 disks should cut 1-disk stall (%.3fs) by far more; got %.3fs",
			one.StallTimeSec, eight.StallTimeSec)
	}
}

// Claim 3: aggressive wins I/O-bound, fixed horizon wins compute-bound,
// with a crossover as disks are added (the paper's synth behavior).
func TestClaimCrossover(t *testing.T) {
	tr := claimTrace(t, "synth")
	ag1 := claimRun(t, tr, ppcsim.Aggressive, 1)
	fh1 := claimRun(t, tr, ppcsim.FixedHorizon, 1)
	if ag1.ElapsedSec >= fh1.ElapsedSec {
		t.Errorf("1 disk (I/O bound): aggressive %.3fs should beat fixed horizon %.3fs",
			ag1.ElapsedSec, fh1.ElapsedSec)
	}
	ag4 := claimRun(t, tr, ppcsim.Aggressive, 4)
	fh4 := claimRun(t, tr, ppcsim.FixedHorizon, 4)
	if fh4.ElapsedSec >= ag4.ElapsedSec {
		t.Errorf("4 disks (compute bound): fixed horizon %.3fs should beat aggressive %.3fs",
			fh4.ElapsedSec, ag4.ElapsedSec)
	}
	// The compute-bound loss is driver overhead from wasted fetches.
	if ag4.Fetches <= fh4.Fetches {
		t.Errorf("aggressive should waste fetches at 4 disks: %d vs %d", ag4.Fetches, fh4.Fetches)
	}
}

// Claim 4/5: forestall performs close to the best of fixed horizon and
// aggressive in every configuration (paper: between 2% worse and 5.8%
// better on the application traces; we allow 10%).
func TestClaimForestallTracksBest(t *testing.T) {
	for _, name := range []string{"synth", "cscope2", "glimpse", "postgres-select", "ld"} {
		tr := claimTrace(t, name)
		for _, d := range []int{1, 2, 4} {
			fo := claimRun(t, tr, ppcsim.Forestall, d)
			fh := claimRun(t, tr, ppcsim.FixedHorizon, d)
			ag := claimRun(t, tr, ppcsim.Aggressive, d)
			best := fh.ElapsedSec
			if ag.ElapsedSec < best {
				best = ag.ElapsedSec
			}
			if fo.ElapsedSec > best*1.10 {
				t.Errorf("%s/d=%d: forestall %.3fs vs best(fh=%.3f, ag=%.3f)",
					name, d, fo.ElapsedSec, fh.ElapsedSec, ag.ElapsedSec)
			}
		}
	}
}

// Claim: reverse aggressive (best parameters) is close to the best of
// fixed horizon and aggressive, and never much better — choosing
// replacements to balance load is unnecessary when data is striped.
func TestClaimReverseAggressiveCloseToBest(t *testing.T) {
	for _, name := range []string{"cscope1", "postgres-select"} {
		tr := claimTrace(t, name)
		for _, d := range []int{1, 4} {
			ra, _, err := ppcsim.RunBestReverseAggressive(ppcsim.Options{Trace: tr, Disks: d},
				ppcsim.ReverseAggressiveGrid{Estimates: []float64{2, 4, 16, 64}, Batches: []int{8, 40, 160}})
			if err != nil {
				t.Fatal(err)
			}
			fh := claimRun(t, tr, ppcsim.FixedHorizon, d)
			ag := claimRun(t, tr, ppcsim.Aggressive, d)
			best := fh.ElapsedSec
			if ag.ElapsedSec < best {
				best = ag.ElapsedSec
			}
			if ra.ElapsedSec > best*1.15 {
				t.Errorf("%s/d=%d: reverse aggressive %.3fs much worse than best %.3fs", name, d, ra.ElapsedSec, best)
			}
			if ra.ElapsedSec < best*0.75 {
				t.Errorf("%s/d=%d: reverse aggressive %.3fs suspiciously better than best %.3fs", name, d, ra.ElapsedSec, best)
			}
		}
	}
}

// Claim: "Fixed horizon consistently places the least I/O load on the
// disks ... Reverse aggressive and forestall are intermediate between
// aggressive and fixed horizon" — checked via utilization and fetch
// counts on postgres-select (the paper's Tables 4 and 8).
func TestClaimUtilizationOrdering(t *testing.T) {
	tr := claimTrace(t, "postgres-select")
	for _, d := range []int{2, 4} {
		dm := claimRun(t, tr, ppcsim.Demand, d)
		fh := claimRun(t, tr, ppcsim.FixedHorizon, d)
		ag := claimRun(t, tr, ppcsim.Aggressive, d)
		fo := claimRun(t, tr, ppcsim.Forestall, d)
		if dm.AvgUtilization > fh.AvgUtilization+0.05 {
			t.Errorf("d=%d: demand utilization %.2f above fixed horizon %.2f", d, dm.AvgUtilization, fh.AvgUtilization)
		}
		// "Load" in the paper's sense is the number of fetches the policy
		// issues: demand <= fixed horizon <= forestall <= aggressive.
		// (Utilization also reflects per-request service times, which
		// CSCAN improves for the batched algorithms, so it is not a clean
		// ordering at every array size.)
		if dm.Fetches > fh.Fetches {
			t.Errorf("d=%d: demand fetches %d above fixed horizon %d", d, dm.Fetches, fh.Fetches)
		}
		if ag.Fetches < fh.Fetches {
			t.Errorf("d=%d: aggressive fetches %d below fixed horizon %d", d, ag.Fetches, fh.Fetches)
		}
		if fo.Fetches > ag.Fetches {
			t.Errorf("d=%d: forestall fetches %d above aggressive %d", d, fo.Fetches, ag.Fetches)
		}
		if fo.AvgUtilization > ag.AvgUtilization+0.10 {
			t.Errorf("d=%d: forestall utilization %.2f above aggressive %.2f", d, fo.AvgUtilization, ag.AvgUtilization)
		}
	}
}

// Claim (section 4.4): CSCAN helps most in I/O-bound situations; the
// benefit falls off (and can reverse slightly) as disks are added.
func TestClaimCSCANHelpsIOBound(t *testing.T) {
	tr := claimTrace(t, "postgres-select")
	cs := claimRun(t, tr, ppcsim.Aggressive, 1)
	r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Aggressive, Disks: 1, Scheduler: ppcsim.FCFS})
	if err != nil {
		t.Fatal(err)
	}
	if cs.ElapsedSec >= r.ElapsedSec {
		t.Errorf("1 disk: CSCAN (%.3fs) should beat FCFS (%.3fs)", cs.ElapsedSec, r.ElapsedSec)
	}
}

// Claim (section 4.4, Table 7): larger caches improve every algorithm.
func TestClaimLargerCacheHelps(t *testing.T) {
	tr := claimTrace(t, "glimpse")
	for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive} {
		small, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 2, CacheBlocks: 640})
		if err != nil {
			t.Fatal(err)
		}
		large, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 2, CacheBlocks: 1920})
		if err != nil {
			t.Fatal(err)
		}
		if large.ElapsedSec >= small.ElapsedSec {
			t.Errorf("%s: cache 1920 (%.3fs) should beat cache 640 (%.3fs)", alg, large.ElapsedSec, small.ElapsedSec)
		}
	}
}

// Claim (appendix C): with a double-speed CPU the fixed-horizon vs
// aggressive crossover shifts to more disks (aggressive stays ahead
// longer because the workload is more I/O bound).
func TestClaimFasterCPUFavorsAggressiveLonger(t *testing.T) {
	tr := claimTrace(t, "synth")
	fast := tr.ScaleCompute(0.5)
	// At 2 disks the normal-speed run is already compute-bound enough
	// that fixed horizon is competitive; at double CPU speed aggressive
	// must win at 2 disks.
	agF, err := ppcsim.Run(ppcsim.Options{Trace: fast, Algorithm: ppcsim.Aggressive, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	fhF, err := ppcsim.Run(ppcsim.Options{Trace: fast, Algorithm: ppcsim.FixedHorizon, Disks: 2, Horizon: 124})
	if err != nil {
		t.Fatal(err)
	}
	if agF.ElapsedSec >= fhF.ElapsedSec {
		t.Errorf("double-speed CPU, 2 disks: aggressive %.3fs should beat fixed horizon %.3fs",
			agF.ElapsedSec, fhF.ElapsedSec)
	}
}
