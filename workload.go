package ppcsim

import (
	"fmt"
	"math/rand"

	"ppcsim/internal/layout"
	"ppcsim/internal/trace"
)

// FileID names a file created by TraceBuilder.AddFile.
type FileID int

// TraceBuilder constructs custom traces for the simulator, so the library
// can be driven by workloads beyond the ten bundled ones. Files are
// declared first; access-pattern methods then append references, using
// the compute-time distribution in effect at the time of the call.
//
//	b := ppcsim.NewTraceBuilder("mydb")
//	idx := b.AddFile(64)     // a hot index
//	dat := b.AddFile(4096)   // a cold relation
//	b.ComputeExp(2.0)
//	for i := 0; i < 1000; i++ {
//	    b.Sequential(idx, i%64, 1).RandomUniform(dat, 1)
//	}
//	tr, err := b.Build()
type TraceBuilder struct {
	name        string
	files       []layout.File
	refs        []trace.Ref
	rng         *rand.Rand
	compute     func() float64
	cacheBlocks int
	placeByFile bool
	err         error
}

// NewTraceBuilder starts a trace named name, with a fixed 1 ms compute
// time, a 1280-block cache, per-file placement, and a deterministic seed.
func NewTraceBuilder(name string) *TraceBuilder {
	b := &TraceBuilder{
		name:        name,
		rng:         rand.New(rand.NewSource(1)),
		cacheBlocks: 1280,
		placeByFile: true,
	}
	b.compute = func() float64 { return 1.0 }
	return b
}

// Seed reseeds the builder's random source (affects subsequent random
// patterns and compute draws).
func (b *TraceBuilder) Seed(seed int64) *TraceBuilder {
	b.rng = rand.New(rand.NewSource(seed))
	return b
}

// CacheBlocks sets the default cache size of the built trace.
func (b *TraceBuilder) CacheBlocks(k int) *TraceBuilder {
	b.cacheBlocks = k
	return b
}

// PlaceByFile selects per-file random placement (true, the default) or
// direct logical-block placement.
func (b *TraceBuilder) PlaceByFile(v bool) *TraceBuilder {
	b.placeByFile = v
	return b
}

// AddFile declares a file of the given size in 8K blocks and returns its
// id. Files must be declared before they are referenced.
func (b *TraceBuilder) AddFile(blocks int) FileID {
	if blocks <= 0 && b.err == nil {
		b.err = fmt.Errorf("ppcsim: AddFile(%d): size must be positive", blocks)
		return -1
	}
	first := 0
	if n := len(b.files); n > 0 {
		first = int(b.files[n-1].First) + b.files[n-1].Blocks
	}
	b.files = append(b.files, layout.File{First: layout.BlockID(first), Blocks: blocks})
	return FileID(len(b.files) - 1)
}

// ComputeFixed makes subsequent references use a constant inter-reference
// compute time in milliseconds.
func (b *TraceBuilder) ComputeFixed(ms float64) *TraceBuilder {
	if ms < 0 {
		b.fail(fmt.Errorf("ppcsim: ComputeFixed(%g): negative", ms))
		return b
	}
	b.compute = func() float64 { return ms }
	return b
}

// ComputeUniform draws compute times uniformly from [lo, hi) ms.
func (b *TraceBuilder) ComputeUniform(lo, hi float64) *TraceBuilder {
	if lo < 0 || hi < lo {
		b.fail(fmt.Errorf("ppcsim: ComputeUniform(%g, %g): bad range", lo, hi))
		return b
	}
	b.compute = func() float64 { return lo + b.rng.Float64()*(hi-lo) }
	return b
}

// ComputeExp draws compute times from an exponential distribution with
// the given mean in ms (the distribution of the paper's synth trace).
func (b *TraceBuilder) ComputeExp(mean float64) *TraceBuilder {
	if mean <= 0 {
		b.fail(fmt.Errorf("ppcsim: ComputeExp(%g): mean must be positive", mean))
		return b
	}
	b.compute = func() float64 { return b.rng.ExpFloat64() * mean }
	return b
}

func (b *TraceBuilder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

func (b *TraceBuilder) file(f FileID) (layout.File, bool) {
	if b.err != nil {
		return layout.File{}, false
	}
	if int(f) < 0 || int(f) >= len(b.files) {
		b.fail(fmt.Errorf("ppcsim: unknown file %d", f))
		return layout.File{}, false
	}
	return b.files[f], true
}

func (b *TraceBuilder) add(fl layout.File, offset int) {
	if offset < 0 || offset >= fl.Blocks {
		b.fail(fmt.Errorf("ppcsim: offset %d outside file of %d blocks", offset, fl.Blocks))
		return
	}
	b.refs = append(b.refs, trace.Ref{
		Block:     fl.First + layout.BlockID(offset),
		ComputeMs: b.compute(),
	})
}

// Sequential appends count references reading the file sequentially from
// offset start, wrapping at the end of the file.
func (b *TraceBuilder) Sequential(f FileID, start, count int) *TraceBuilder {
	fl, ok := b.file(f)
	if !ok {
		return b
	}
	if start < 0 || start >= fl.Blocks {
		b.fail(fmt.Errorf("ppcsim: Sequential start %d outside file", start))
		return b
	}
	for i := 0; i < count; i++ {
		b.add(fl, (start+i)%fl.Blocks)
	}
	return b
}

// Loop appends passes full sequential passes over the file.
func (b *TraceBuilder) Loop(f FileID, passes int) *TraceBuilder {
	fl, ok := b.file(f)
	if !ok {
		return b
	}
	return b.Sequential(f, 0, passes*fl.Blocks)
}

// RandomUniform appends count references to uniformly random blocks of
// the file.
func (b *TraceBuilder) RandomUniform(f FileID, count int) *TraceBuilder {
	fl, ok := b.file(f)
	if !ok {
		return b
	}
	for i := 0; i < count; i++ {
		b.add(fl, b.rng.Intn(fl.Blocks))
	}
	return b
}

// Zipf appends count references with a Zipf(s) popularity skew over the
// file's blocks (s > 1; larger s = hotter head).
func (b *TraceBuilder) Zipf(f FileID, count int, s float64) *TraceBuilder {
	fl, ok := b.file(f)
	if !ok {
		return b
	}
	if s <= 1 {
		b.fail(fmt.Errorf("ppcsim: Zipf s=%g must exceed 1", s))
		return b
	}
	z := rand.NewZipf(b.rng, s, 1, uint64(fl.Blocks-1))
	for i := 0; i < count; i++ {
		b.add(fl, int(z.Uint64()))
	}
	return b
}

// Strided appends count references walking the file from start with the
// given stride, wrapping around — the access pattern of a planar slice
// through a volume (the paper's xds workload).
func (b *TraceBuilder) Strided(f FileID, start, stride, count int) *TraceBuilder {
	fl, ok := b.file(f)
	if !ok {
		return b
	}
	if stride == 0 {
		b.fail(fmt.Errorf("ppcsim: Strided stride must be nonzero"))
		return b
	}
	pos := start
	for i := 0; i < count; i++ {
		o := ((pos % fl.Blocks) + fl.Blocks) % fl.Blocks
		b.add(fl, o)
		pos += stride
	}
	return b
}

// WriteSequential appends count write-behind references walking the file
// sequentially from offset start, wrapping at the end. Writes never stall
// the simulated process but compete with reads for disk time.
func (b *TraceBuilder) WriteSequential(f FileID, start, count int) *TraceBuilder {
	fl, ok := b.file(f)
	if !ok {
		return b
	}
	if start < 0 || start >= fl.Blocks {
		b.fail(fmt.Errorf("ppcsim: WriteSequential start %d outside file", start))
		return b
	}
	for i := 0; i < count; i++ {
		o := (start + i) % fl.Blocks
		b.refs = append(b.refs, trace.Ref{
			Block:     fl.First + layout.BlockID(o),
			ComputeMs: b.compute(),
			Write:     true,
		})
	}
	return b
}

// Ref appends one explicit reference with an explicit compute time.
func (b *TraceBuilder) Ref(f FileID, offset int, computeMs float64) *TraceBuilder {
	fl, ok := b.file(f)
	if !ok {
		return b
	}
	if computeMs < 0 {
		b.fail(fmt.Errorf("ppcsim: negative compute %g", computeMs))
		return b
	}
	if offset < 0 || offset >= fl.Blocks {
		b.fail(fmt.Errorf("ppcsim: offset %d outside file of %d blocks", offset, fl.Blocks))
		return b
	}
	b.refs = append(b.refs, trace.Ref{Block: fl.First + layout.BlockID(offset), ComputeMs: computeMs})
	return b
}

// Len returns the number of references appended so far.
func (b *TraceBuilder) Len() int { return len(b.refs) }

// Build validates and returns the trace.
func (b *TraceBuilder) Build() (*Trace, error) {
	if b.err != nil {
		return nil, b.err
	}
	t := &trace.Trace{
		Name:        b.name,
		Refs:        append([]trace.Ref(nil), b.refs...),
		Files:       append([]layout.File(nil), b.files...),
		PlaceByFile: b.placeByFile,
		CacheBlocks: b.cacheBlocks,
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
