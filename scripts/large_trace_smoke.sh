#!/usr/bin/env bash
# large_trace_smoke.sh — streaming-path regression smoke.
#
# Streams a 10^7-reference synthetic trace through ppc-sim under a hard
# memory ceiling (GOMEMLIMIT plus a soft address-space rlimit), proving
# the engine's resident set is bounded and independent of trace length,
# and asserts a refs/sec floor so a streaming-path slowdown fails fast.
# Also round-trips a slice of the workload through a columnar file and
# requires the streamed and materialized runs to print identical metrics
# — the byte-identity acceptance criterion, exercised from the CLI.
#
# Usage: scripts/large_trace_smoke.sh [refs] [floor-refs-per-sec]
set -euo pipefail

cd "$(dirname "$0")/.."

REFS="${1:-1e7}"
FLOOR="${2:-200000}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/ppc-sim" ./cmd/ppc-sim
go build -o "$WORK/ppc-traces" ./cmd/ppc-traces

echo "== stream $REFS refs under GOMEMLIMIT=256MiB"
# 10^7 materialized refs alone would be ~160 MB before engine state; the
# ceiling proves the streaming path never holds them. The rlimit is a
# backstop (1 GiB address space) in case the Go runtime shrugs off the
# soft limit.
ulimit -v 1048576 2>/dev/null || echo "(no ulimit support; relying on GOMEMLIMIT)"
GOMEMLIMIT=256MiB GOGC=50 "$WORK/ppc-sim" \
    -large "$REFS:65536:zipf:1" -window 1000 -alg forestall -disks 4 \
    | tee "$WORK/large.out"

RPS="$(awk '/refs\/sec/ {print int($3)}' "$WORK/large.out")"
echo "== refs/sec: $RPS (floor: $FLOOR)"
if [ -z "$RPS" ] || [ "$RPS" -lt "$FLOOR" ]; then
    echo "streaming throughput $RPS refs/sec fell below the floor $FLOOR" >&2
    exit 1
fi

echo "== columnar round-trip: streamed == materialized"
"$WORK/ppc-traces" gen -refs 2e5 -blocks 4096 -pattern zipf -seed 1 -o "$WORK/smoke.col"
"$WORK/ppc-traces" inspect "$WORK/smoke.col"
"$WORK/ppc-sim" -trace-file "$WORK/smoke.col" -window 500 -alg aggressive -disks 2 \
    | grep -v 'refs/sec' > "$WORK/mat.out"
"$WORK/ppc-sim" -trace-file "$WORK/smoke.col" -stream -window 500 -alg aggressive -disks 2 \
    | grep -v 'refs/sec' > "$WORK/str.out"
diff -u "$WORK/mat.out" "$WORK/str.out"

echo "== large-trace smoke OK"
