#!/usr/bin/env bash
# coord_smoke.sh — end-to-end smoke test of the sweep cluster.
#
# Brings up two ppc-serve workers and a ppc-coord coordinator, runs the
# same grid through `ppc-job -csv` (cluster) and `ppc-sweep` (local),
# and requires the CSVs to be byte-identical — the determinism claim the
# whole sharded-cache design rests on. Then resubmits the grid and
# requires the coordinator to serve every cell from its persisted store
# with zero recomputation, checked against /v1/statsz counters.
#
# Usage: scripts/coord_smoke.sh [port-base]   (default 18200)
set -euo pipefail

cd "$(dirname "$0")/.."

BASE="${1:-18200}"
W1_PORT=$((BASE + 1))
W2_PORT=$((BASE + 2))
COORD_PORT=$((BASE + 3))
WORK="$(mktemp -d)"
GRID=(-trace synth -algs demand,aggressive -disks 1,2 -caches 500,1000)

PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/ppc-serve" ./cmd/ppc-serve
go build -o "$WORK/ppc-coord" ./cmd/ppc-coord
go build -o "$WORK/ppc-job" ./cmd/ppc-job
go build -o "$WORK/ppc-sweep" ./cmd/ppc-sweep

echo "== start fleet (workers :$W1_PORT :$W2_PORT, coordinator :$COORD_PORT)"
"$WORK/ppc-serve" -addr "127.0.0.1:$W1_PORT" 2>"$WORK/w1.log" &
PIDS+=($!)
"$WORK/ppc-serve" -addr "127.0.0.1:$W2_PORT" 2>"$WORK/w2.log" &
PIDS+=($!)
"$WORK/ppc-coord" -addr "127.0.0.1:$COORD_PORT" \
    -backends "http://127.0.0.1:$W1_PORT,http://127.0.0.1:$W2_PORT" \
    -store "$WORK/store" 2>"$WORK/coord.log" &
PIDS+=($!)

echo "== run grid through the cluster (ppc-job -csv)"
"$WORK/ppc-job" -coord "http://127.0.0.1:$COORD_PORT" -retry-for 10s \
    "${GRID[@]}" -csv -o "$WORK/cluster.csv"

echo "== run the same grid locally (ppc-sweep)"
"$WORK/ppc-sweep" -traces synth -algs demand,aggressive -disks 1,2 -caches 500,1000 \
    -o "$WORK/local.csv"

echo "== diff cluster vs local"
if ! diff "$WORK/cluster.csv" "$WORK/local.csv"; then
    echo "FAIL: cluster results are not byte-identical to a local sweep" >&2
    exit 1
fi
echo "byte-identical"

echo "== resubmit: must replay from the persisted store"
"$WORK/ppc-job" -coord "http://127.0.0.1:$COORD_PORT" \
    "${GRID[@]}" -csv -o "$WORK/replay.csv" 2>"$WORK/replay.log"
cat "$WORK/replay.log"
if ! diff "$WORK/replay.csv" "$WORK/local.csv"; then
    echo "FAIL: store replay differs from the local sweep" >&2
    exit 1
fi
if ! grep -q '8 from store' "$WORK/replay.log"; then
    echo "FAIL: resubmission was not served from the store" >&2
    exit 1
fi

echo "== verify zero recomputation via /v1/statsz"
stats="$(curl -sf "http://127.0.0.1:$COORD_PORT/v1/statsz")"
echo "$stats" | python3 -c '
import json, sys
st = json.load(sys.stdin)
total = 8
assert st["jobs_from_store"] == 1, st
assert st["cells_from_store"] == total, st
assert st["cells_done"] == total, st          # first job only
assert st["cells_total"] == 2 * total, st     # both submissions counted
assert st["cells_failed"] == 0, st
print("store replay confirmed: %d cells, %d recomputed" % (total, st["cells_done"] - total))
'

echo "== streaming leg: 10^7-ref generator sweep sharded across the fleet"
LARGE="1e7:65536:zipf:1"
STREAMGRID=(-large "$LARGE" -algs aggressive,forestall -disks 2 -windows 4096)
"$WORK/ppc-job" -coord "http://127.0.0.1:$COORD_PORT" \
    "${STREAMGRID[@]}" -csv -o "$WORK/stream-cluster.csv" 2>"$WORK/stream.log"
cat "$WORK/stream.log"

echo "== run the same sweep locally (ppc-sweep -large)"
"$WORK/ppc-sweep" -large "$LARGE" -algs aggressive,forestall -disks 2 -window 4096 \
    -o "$WORK/stream-local.csv"

echo "== diff streamed cluster vs local streamed sweep"
if ! diff "$WORK/stream-cluster.csv" "$WORK/stream-local.csv"; then
    echo "FAIL: streamed cluster results are not byte-identical to a local -large sweep" >&2
    exit 1
fi
echo "byte-identical"

echo "== streaming throughput floor via worker /v1/statsz"
for port in "$W1_PORT" "$W2_PORT"; do
    curl -sf "http://127.0.0.1:$port/v1/statsz"
    echo
done | python3 -c '
import json, sys
floor = 50_000  # refs/sec; ~100x below typical, catches accidental materialization or quadratic regressions
stats = [json.loads(line) for line in sys.stdin if line.strip()]
streamed = sum(st["streamed_runs"] for st in stats)
assert streamed >= 2, stats  # both cells streamed (one per worker on an even shard, but >=2 total regardless)
best = max(st["last_refs_per_sec"] for st in stats)
assert best >= floor, "streamed throughput %.0f refs/sec below floor %d" % (best, floor)
peak = max(st["peak_inuse_bytes"] for st in stats)
assert 0 < peak < 512 << 20, "peak in-use %d bytes implausible for a streamed run" % peak
print("streamed %d cells, best %.0f refs/sec, peak in-use %.1f MiB" % (streamed, best, peak / 2**20))
'

echo "== resubmit the streamed sweep: must replay from the persisted store"
"$WORK/ppc-job" -coord "http://127.0.0.1:$COORD_PORT" \
    "${STREAMGRID[@]}" -csv -o "$WORK/stream-replay.csv" 2>"$WORK/stream-replay.log"
cat "$WORK/stream-replay.log"
if ! diff "$WORK/stream-replay.csv" "$WORK/stream-local.csv"; then
    echo "FAIL: streamed store replay differs from the local sweep" >&2
    exit 1
fi
if ! grep -q '2 from store' "$WORK/stream-replay.log"; then
    echo "FAIL: streamed resubmission was not served from the store" >&2
    exit 1
fi

echo "== coordinator log"
cat "$WORK/coord.log"
echo "PASS"
