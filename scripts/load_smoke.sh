#!/usr/bin/env bash
# load_smoke.sh — end-to-end smoke test of the load harness.
#
# Runs a short ppc-load capacity ramp against the embedded server (the
# full v1 handler path in-process) with a pinned worker/queue size, and
# requires:
#
#   1. saturation (429 backpressure onset) is found below the ramp cap;
#   2. the emitted LOAD report survives a strict re-parse (-check);
#   3. the lowest step's p99 is sane (positive, below a generous floor —
#      catching a broken collector, not a slow host);
#   4. the run's SLO verdict passes (byte-identity + error fraction);
#   5. a second run with the same seed reproduces the saturation point
#      within one ramp step — the determinism claim a checked-in
#      LOAD_<n>.json baseline rests on.
#
# Usage: scripts/load_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

STEP_RPS=12

echo "== build"
go build -o "$WORK/ppc-load" ./cmd/ppc-load

# Geometry chosen for a sharp, host-independent knee: all-cold traffic
# (cache hits cannot 429 and would dilute the signal) with large bodies
# (~100k refs, ~70ms each), so per-request cost dominates scheduler and
# host noise and capacity sits at a few dozen RPS where the open-loop
# schedule is exact. Steps are ~2x capacity apart, so the loss fraction
# jumps from ~0 straight past the 20% threshold in one step.
cat > "$WORK/spec.json" <<EOF
{
  "seed": 7,
  "mode": "ramp",
  "mix": {"cold": 1},
  "cold_refs": 100000,
  "ramp": {
    "start_rps": 6,
    "step_rps": $STEP_RPS,
    "max_rps": 90,
    "step_seconds": 1,
    "onset_429_fraction": 0.2
  },
  "slo": {"max_error_fraction": 0.005}
}
EOF

run_ramp() { # $1 = output report path
    "$WORK/ppc-load" -spec "$WORK/spec.json" -workers 2 -queue 4 -o "$1"
}

echo "== ramp run 1 (embedded server, workers=2 queue=4)"
run_ramp "$WORK/LOAD_a.json"

echo "== report round-trips through the strict parser"
"$WORK/ppc-load" -check "$WORK/LOAD_a.json"

echo "== saturation found, low-RPS p99 sane, SLO verdict PASS"
python3 - "$WORK/LOAD_a.json" <<'PY'
import json, sys
rep = json.load(open(sys.argv[1]))
sat = rep["saturation"]
assert sat["found"], f"no saturation below the ramp cap: {sat}"
assert sat["onset_rps"] > sat["max_clean_rps"] >= 0, sat
first = rep["phases"][0]
p99 = first["total"]["latency"]["p99_ms"]
assert 0 < p99 < 1000, f"first step p99 {p99}ms is not sane"
assert first["frac_429"] < 0.2, f"lowest step already saturated: {first['frac_429']}"
assert rep["slo"]["pass"], rep["slo"]
assert not rep["consistency"].get("mismatched_keys"), rep["consistency"]
print(f"onset {sat['onset_rps']:.0f} RPS (last clean {sat['max_clean_rps']:.0f}), "
      f"low-step p99 {p99:.2f}ms, {rep['consistency']['checked_bodies']} bodies byte-identical")
PY

echo "== ramp run 2 (same seed): onset must agree within one step"
run_ramp "$WORK/LOAD_b.json"
python3 - "$WORK/LOAD_a.json" "$WORK/LOAD_b.json" "$STEP_RPS" <<'PY'
import json, sys
a = json.load(open(sys.argv[1]))["saturation"]
b = json.load(open(sys.argv[2]))["saturation"]
step = float(sys.argv[3])
assert b["found"], f"run 2 found no saturation: {b}"
drift = abs(a["onset_rps"] - b["onset_rps"])
assert drift <= step, f"onset drifted {drift:.0f} RPS across runs (> one {step:.0f} RPS step)"
print(f"reproducible: onset {a['onset_rps']:.0f} vs {b['onset_rps']:.0f} RPS (|drift| {drift:.0f} <= {step:.0f})")
PY

echo "PASS"
