package ppcsim_test

import (
	"fmt"

	"ppcsim"
)

// Running one of the paper's configurations: forestall on the synthetic
// trace with a two-disk array.
func ExampleRun() {
	tr, err := ppcsim.NewTrace("synth")
	if err != nil {
		panic(err)
	}
	res, err := ppcsim.Run(ppcsim.Options{
		Trace:     tr.Truncate(10000),
		Algorithm: ppcsim.Forestall,
		Disks:     2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("fetches: %d\n", res.Fetches)
	fmt.Printf("stall under a second: %v\n", res.StallTimeSec < 1)
	// Output:
	// fetches: 4880
	// stall under a second: true
}

// Composing a custom workload with the trace builder.
func ExampleTraceBuilder() {
	b := ppcsim.NewTraceBuilder("mydb").Seed(7)
	index := b.AddFile(64)
	data := b.AddFile(4096)
	b.ComputeFixed(2.0)
	for q := 0; q < 100; q++ {
		b.Sequential(index, 0, 4).RandomUniform(data, 8)
	}
	tr, err := b.Build()
	if err != nil {
		panic(err)
	}
	st := tr.Stats()
	fmt.Printf("reads: %d, compute: %.1fs\n", st.Reads, st.ComputeSec)
	// Output:
	// reads: 1200, compute: 2.4s
}

// Watching a run through the observability layer: a Recorder for the
// reconciled time decomposition and a StreamingStats for latency
// percentiles, fanned out with Tee.
func ExampleRun_observer() {
	tr, err := ppcsim.NewTrace("synth")
	if err != nil {
		panic(err)
	}
	rec := ppcsim.NewRecorder()
	stats := ppcsim.NewStreamingStats()
	res, err := ppcsim.Run(ppcsim.Options{
		Trace:     tr.Truncate(10000),
		Algorithm: ppcsim.Forestall,
		Disks:     2,
		Observer:  ppcsim.Tee(rec, stats),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("stall intervals: %d\n", len(rec.Stalls))
	fmt.Printf("event stall == result stall: %v\n",
		rec.StallTimeSec()-res.StallTimeSec < 1e-9)
	fmt.Printf("latency percentiles ordered: %v\n",
		res.Latency.FetchP50Ms <= res.Latency.FetchP99Ms)
	// Output:
	// stall intervals: 364
	// event stall == result stall: true
	// latency percentiles ordered: true
}

// Comparing algorithms the way the paper's figures do.
func ExampleRun_comparison() {
	tr, err := ppcsim.NewTrace("postgres-select")
	if err != nil {
		panic(err)
	}
	tr = tr.Truncate(2000)
	for _, alg := range []ppcsim.Algorithm{ppcsim.Demand, ppcsim.Forestall} {
		res, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: 4})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s stalls less than demand: %v\n", alg, res.StallTimeSec < 10)
	}
	// Output:
	// demand stalls less than demand: false
	// forestall stalls less than demand: true
}
