package ppcsim

import (
	"ppcsim/internal/engine"
	"ppcsim/internal/obs"
)

// Observer receives the typed event stream of a run: references served,
// stalls, fetch lifecycles with service-time breakdowns, evictions, and
// batch formation. Attach one via Options.Observer; a nil observer costs
// nothing. Embed ObserverBase to implement only the events you need.
type Observer = obs.Observer

// ObserverBase is a no-op Observer for embedding in custom observers.
type ObserverBase = obs.Base

// Event payloads; see package internal/obs for field documentation. All
// times are milliseconds of simulated time since the start of the run.
type (
	RefEvent    = obs.RefEvent
	StallEvent  = obs.StallEvent
	FetchEvent  = obs.FetchEvent
	EvictEvent  = obs.EvictEvent
	BatchEvent  = obs.BatchEvent
	WindowEvent = obs.WindowEvent
	AssocEvent  = obs.AssocEvent
)

// Recorder is the built-in time-series observer: per-disk utilization
// and queue-depth series, cache occupancy, stall intervals, batches,
// and evictions, with event-derived driver/stall totals that reconcile
// exactly with the Result. Export everything with WriteCSV.
type Recorder = obs.Recorder

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// ChromeTracer exports a run as Chrome trace-event JSON: one timeline
// row per disk plus one for the process. Write the file with WriteTo and
// load it in chrome://tracing or https://ui.perfetto.dev.
type ChromeTracer = obs.ChromeTracer

// NewChromeTracer returns an empty ChromeTracer.
func NewChromeTracer() *ChromeTracer { return obs.NewChromeTracer() }

// StreamingStats maintains streaming histograms of fetch latency and
// stall duration. When attached to a run it also populates the Result's
// Latency summary (p50/p95/p99).
type StreamingStats = obs.StreamingStats

// NewStreamingStats returns an empty StreamingStats.
func NewStreamingStats() *StreamingStats { return obs.NewStreamingStats() }

// LatencySummary is the Result.Latency payload a StreamingStats observer
// produces.
type LatencySummary = engine.LatencySummary

// Tee fans the event stream out to several observers (nils are dropped;
// Tee() returns nil, preserving the unobserved fast path).
func Tee(observers ...Observer) Observer { return obs.Tee(observers...) }
