// Package ppcsim is a disk-accurate, trace-driven simulator of integrated
// parallel prefetching and caching algorithms, reproducing Kimbrel et al.,
// "A Trace-Driven Comparison of Algorithms for Parallel Prefetching and
// Caching" (OSDI 1996).
//
// The library simulates a single fully-hinted process reading a traced
// block sequence from an array of HP 97560-like disks through a shared
// buffer cache, under one of five integrated prefetching-and-caching
// algorithms: optimal demand fetching, fixed horizon (TIP2), multi-disk
// aggressive, reverse aggressive, and forestall.
//
// Quick start:
//
//	tr, _ := ppcsim.NewTrace("postgres-select")
//	res, _ := ppcsim.Run(ppcsim.Options{
//	    Trace:     tr,
//	    Algorithm: ppcsim.Forestall,
//	    Disks:     4,
//	})
//	fmt.Println(res)
package ppcsim

import (
	"context"
	"fmt"
	"io"

	"ppcsim/internal/disk"
	"ppcsim/internal/engine"
	"ppcsim/internal/policy"
	"ppcsim/internal/revagg"
	"ppcsim/internal/trace"
)

// Trace is a file-access trace: a read sequence with inter-reference
// compute times and a (file, offset) structure for data placement.
type Trace = trace.Trace

// TraceSource is a streaming trace: references arrive in order through
// ReadRefs and only a caller-chosen window is ever resident, so traces
// far larger than memory can be simulated. Obtain one from
// Trace.Source(), OpenColumnarTrace, or LargeTraceSpec.Source(); run it
// with Options.Source. See trace.Source.
type TraceSource = trace.Source

// TraceMeta is the trace-level description a TraceSource carries (name,
// file structure, default cache size, total reference count).
type TraceMeta = trace.Meta

// LargeTraceSpec describes a synthetic streaming trace of arbitrary
// length: references are generated on demand, so a 10^9-reference
// workload costs no memory to produce. See trace.LargeSpec.
type LargeTraceSpec = trace.LargeSpec

// ColumnarTraceFile is an open columnar trace file acting as a
// TraceSource; Close it when done.
type ColumnarTraceFile = trace.FileSource

// ParseLargeTraceSpec parses the CLI shorthand for a large synthetic
// trace, refs[:blocks[:pattern[:seed]]], with scientific-notation
// reference counts (1e9) and a 65536-block default.
func ParseLargeTraceSpec(s string) (LargeTraceSpec, error) {
	return trace.ParseLargeSpec(s)
}

// OpenColumnarTrace opens a trace file in the columnar binary format
// (see docs/trace-format.md) as a streaming TraceSource.
func OpenColumnarTrace(path string) (*ColumnarTraceFile, error) {
	return trace.OpenColumnarFile(path)
}

// WriteColumnarTrace encodes a trace source in the columnar binary
// format, returning the number of bytes written.
func WriteColumnarTrace(w io.Writer, src TraceSource) (int64, error) {
	return trace.WriteColumnar(w, src)
}

// MaterializeTrace drains a streaming source into a fully resident
// Trace, e.g. to run an offline algorithm (reverse aggressive) over a
// columnar file that fits in memory.
func MaterializeTrace(src TraceSource) (*Trace, error) {
	return trace.Materialize(src)
}

// Result holds the metrics of one simulation run, in the units of the
// paper's appendix tables.
type Result = engine.Result

// Discipline selects the disk-head scheduling policy.
type Discipline = disk.Discipline

// DiskGeometry parameterizes a custom drive model (seek curve, rotation,
// readahead cache); see HP97560Geometry for the paper's drive.
type DiskGeometry = disk.Geometry

// HP97560Geometry returns the parameters of the paper's HP 97560 drive.
func HP97560Geometry() DiskGeometry { return disk.HP97560Geometry() }

// HintSpec models incomplete or inaccurate application hints: each
// reference is disclosed with probability Fraction and, if disclosed,
// names the correct block with probability Accuracy; Window limits how
// far past the cursor disclosed references are visible (0 = unlimited,
// WindowNone = no future visibility), with eviction falling back to LRU
// beyond the horizon. The paper's fully-hinted case is the nil spec. See
// engine.HintSpec.
type HintSpec = engine.HintSpec

// WindowNone is the HintSpec.Window value for zero lookahead: the policy
// learns each reference only as the process reaches it.
const WindowNone = engine.WindowNone

// Disk-head scheduling disciplines.
const (
	CSCAN = disk.CSCAN
	FCFS  = disk.FCFS
)

// ErrCanceled marks a run aborted through RunContext's context. The
// returned error also wraps the context's own error, so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.DeadlineExceeded)
// hold for a timed-out run.
var ErrCanceled = engine.ErrCanceled

// Algorithm names an integrated prefetching and caching policy.
type Algorithm string

// The five algorithms the paper compares.
const (
	// Demand fetches only on a miss but replaces optimally (offline MIN).
	Demand Algorithm = "demand"
	// FixedHorizon fetches missing blocks at most H references ahead
	// (TIP2 restricted to one hinting process).
	FixedHorizon Algorithm = "fixed-horizon"
	// Aggressive prefetches whenever a disk is free, as early as the
	// do-no-harm rule allows.
	Aggressive Algorithm = "aggressive"
	// ReverseAggressive builds a near-optimal offline schedule from the
	// reversed request sequence and replays it.
	ReverseAggressive Algorithm = "reverse-aggressive"
	// Forestall prefetches just early enough to forestall predicted
	// stalls (the paper's new hybrid algorithm).
	Forestall Algorithm = "forestall"
	// DemandLRU is demand fetching with least-recently-used replacement —
	// a conventional hint-less buffer cache. Not part of the paper's
	// comparison; it isolates the value of better-than-LRU replacement.
	DemandLRU Algorithm = "demand-lru"
	// Readahead is sequential readahead with adaptive depth: it detects
	// constant-stride runs in the observed reference stream and prefetches
	// their extrapolation, with LRU replacement. Hint-less; not part of
	// the paper's comparison.
	Readahead Algorithm = "readahead"
	// History is MITHRIL-style history-based prefetching: it mines
	// repeated block associations from the observed reference stream into
	// a bounded table and prefetches a block's supported successors on
	// access, with LRU replacement. Hint-less; not part of the paper's
	// comparison.
	History Algorithm = "history"
)

// Algorithms lists the paper's five algorithms in its order, plus the
// hint-less extension baselines (demand-LRU, readahead, history).
var Algorithms = []Algorithm{Demand, FixedHorizon, Aggressive, ReverseAggressive, Forestall, DemandLRU, Readahead, History}

// TraceNames lists the bundled traces in Table 3 order.
var TraceNames = trace.Names

// NewTrace generates one of the bundled traces by name (see TraceNames).
func NewTrace(name string) (*Trace, error) { return trace.ByName(name) }

// AllTraces generates every bundled trace.
func AllTraces() []*Trace { return trace.All() }

// Options configures one simulation run. Zero values select the paper's
// defaults.
type Options struct {
	// Trace to run; see NewTrace. Exactly one of Trace and Source is
	// required.
	Trace *Trace
	// Source streams the trace instead of materializing it, keeping the
	// engine's resident set bounded regardless of trace length. Streaming
	// runs require Hints with a bounded Window (positive and smaller than
	// the trace, or WindowNone) — the window is what bounds how much
	// future the policies may consult — and reject the offline reverse
	// aggressive algorithm. Results are byte-identical to running the
	// materialized trace with the same options.
	Source TraceSource
	// Algorithm to simulate. Required.
	Algorithm Algorithm
	// Disks is the array size (default 1).
	Disks int
	// CacheBlocks overrides the trace's default cache size.
	CacheBlocks int
	// Scheduler is the disk-head scheduling discipline (default CSCAN).
	Scheduler Discipline
	// BatchSize overrides aggressive's/forestall's/reverse aggressive's
	// batch size (default: the paper's Table 6 value for the array size).
	BatchSize int
	// Horizon overrides fixed horizon's prefetch horizon H (default 62).
	Horizon int
	// FetchEstimate is reverse aggressive's fixed fetch-time/compute-time
	// ratio F (default 32).
	FetchEstimate float64
	// ForestallFixedF, when positive, replaces forestall's dynamic F
	// estimation with this fixed value.
	ForestallFixedF float64
	// DriverOverheadMs is the per-request driver CPU cost (default
	// 0.5 ms; negative for zero).
	DriverOverheadMs float64
	// SimpleDiskModel swaps the HP 97560 model for a fixed-latency model
	// (used for simulator cross-validation).
	SimpleDiskModel bool
	// DiskGeometry, when non-nil, simulates a custom drive instead of the
	// HP 97560. Takes precedence over SimpleDiskModel.
	DiskGeometry *DiskGeometry
	// PlacementSeed varies the per-file random placement.
	PlacementSeed int64
	// Hints degrades the advance knowledge the policy receives (nil =
	// fully hinted, the paper's setting). Reverse aggressive is offline
	// and requires full hints; combining it with a HintSpec is an error.
	Hints *HintSpec
	// Observer, when non-nil, receives the run's event stream: every
	// reference served, stall, fetch (with its service-time breakdown),
	// eviction, and prefetch batch. nil costs nothing — the simulator
	// skips all event construction. Combine observers with Tee; see
	// Recorder, ChromeTracer, and StreamingStats for built-ins.
	Observer Observer
}

// NewPolicy constructs the named algorithm with the given options.
func NewPolicy(opts Options) (engine.Policy, error) {
	switch opts.Algorithm {
	case Demand:
		return policy.NewDemand(), nil
	case DemandLRU:
		return policy.NewDemandLRU(), nil
	case Readahead:
		return policy.NewReadahead(), nil
	case History:
		return policy.NewHistory(), nil
	case FixedHorizon:
		return policy.NewFixedHorizon(opts.Horizon), nil
	case Aggressive:
		return policy.NewAggressive(opts.BatchSize), nil
	case ReverseAggressive:
		return revagg.New(opts.FetchEstimate, opts.BatchSize), nil
	case Forestall:
		f := policy.NewForestall()
		f.BatchSize = opts.BatchSize
		f.Horizon = opts.Horizon
		f.FixedF = opts.ForestallFixedF
		return f, nil
	default:
		return nil, fmt.Errorf("ppcsim: unknown algorithm %q", opts.Algorithm)
	}
}

// Run executes one simulation and returns its metrics. It validates the
// options first (see Options.Validate); configuration errors are
// *ConfigError values naming the offending field.
func Run(opts Options) (Result, error) { return RunContext(nil, opts) }

// RunContext is Run with cooperative cancellation: when ctx is non-nil,
// the engine polls it periodically (every ~1k event-loop iterations) and
// aborts with an error wrapping both engine.ErrCanceled and ctx.Err()
// once the context is done. A nil or never-canceled context adds no
// measurable cost. Services use it to enforce per-request deadlines on
// long simulations.
func RunContext(ctx context.Context, opts Options) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	pol, err := NewPolicy(opts)
	if err != nil {
		return Result{}, err
	}
	disks := opts.Disks
	if disks == 0 {
		disks = 1
	}
	cfg := engine.Config{
		Trace:            opts.Trace,
		Source:           opts.Source,
		Policy:           pol,
		Disks:            disks,
		CacheBlocks:      opts.CacheBlocks,
		Discipline:       opts.Scheduler,
		DriverOverheadMs: opts.DriverOverheadMs,
		PlacementSeed:    opts.PlacementSeed,
		Hints:            opts.Hints,
		Observer:         opts.Observer,
		Ctx:              ctx,
	}
	if opts.SimpleDiskModel {
		cfg.Model = func() disk.Model { return disk.NewSimple() }
	}
	if opts.DiskGeometry != nil {
		g := *opts.DiskGeometry // already validated by Options.Validate
		cfg.Model = func() disk.Model {
			m, merr := disk.NewParametric(g)
			if merr != nil {
				panic(merr) // validated above
			}
			return m
		}
	}
	return engine.Run(cfg)
}

// ReverseAggressiveGrid is the parameter grid RunBestReverseAggressive
// sweeps. The zero value selects the appendix-F sweep: fetch estimates
// {2, 3, 4, 8, 16, 32, 64, 128} and batch sizes {4, 8, 16, 40, 80, 160}.
type ReverseAggressiveGrid struct {
	// Estimates are the fetch-time/compute-time ratios F to try.
	Estimates []float64
	// Batches are the batch sizes to try.
	Batches []int
}

// ReverseAggressiveChoice is the (F, batch) pair that won a
// RunBestReverseAggressive sweep.
type ReverseAggressiveChoice struct {
	FetchEstimate float64
	BatchSize     int
}

// RunBestReverseAggressive runs reverse aggressive over a grid of fetch
// estimates and batch sizes and returns the best-elapsed-time result and
// the winning (F, batch) pair, the way the paper's baseline tables choose
// reverse aggressive's parameters ("chosen to minimize its elapsed
// time"). The zero grid selects the appendix-F sweep values.
func RunBestReverseAggressive(opts Options, grid ReverseAggressiveGrid) (Result, ReverseAggressiveChoice, error) {
	estimates := grid.Estimates
	if len(estimates) == 0 {
		estimates = []float64{2, 3, 4, 8, 16, 32, 64, 128}
	}
	batches := grid.Batches
	if len(batches) == 0 {
		batches = []int{4, 8, 16, 40, 80, 160}
	}
	opts.Algorithm = ReverseAggressive
	var best Result
	var choice ReverseAggressiveChoice
	found := false
	for _, f := range estimates {
		for _, b := range batches {
			o := opts
			o.FetchEstimate = f
			o.BatchSize = b
			r, err := Run(o)
			if err != nil {
				return Result{}, ReverseAggressiveChoice{}, err
			}
			if !found || r.ElapsedSec < best.ElapsedSec {
				best, found = r, true
				choice = ReverseAggressiveChoice{FetchEstimate: f, BatchSize: b}
			}
		}
	}
	return best, choice, nil
}
