package ppcsim_test

import (
	"reflect"
	"testing"

	"ppcsim"
	"ppcsim/internal/trace/tracetest"
)

// The lookahead-window extension: Hints.Window limits how far past the
// cursor the policy can see. These tests pin the two ends of the knob —
// a window covering the whole trace is indistinguishable from unlimited
// knowledge, and WindowNone strips all future knowledge — plus the event
// stream and validation semantics in between.

// windowAlgs are the algorithms the equivalence acceptance criterion
// names: all four paper prefetchers, including the offline one.
var windowAlgs = []ppcsim.Algorithm{
	ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall, ppcsim.ReverseAggressive,
}

// recordedRun runs one configuration with a Recorder attached and
// returns both the metrics and the full event stream.
func recordedRun(t *testing.T, tr *ppcsim.Trace, alg ppcsim.Algorithm, d int, h *ppcsim.HintSpec) (ppcsim.Result, *ppcsim.Recorder) {
	t.Helper()
	rec := ppcsim.NewRecorder()
	r, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: alg, Disks: d, Hints: h, Observer: rec})
	if err != nil {
		t.Fatalf("%s/%s/d=%d/%+v: %v", tr.Name, alg, d, h, err)
	}
	return r, rec
}

// TestWindowFullTraceEquivalence: a window that covers the whole trace
// discloses exactly what unlimited lookahead does, so runs with
// W >= len(trace) must be byte-identical to the unlimited-hints run —
// not merely close: identical metrics and identical observer event
// streams — for every paper algorithm and array size.
func TestWindowFullTraceEquivalence(t *testing.T) {
	tr := truncated(t, "synth", 4000)
	n := len(tr.Refs)
	for _, alg := range windowAlgs {
		for _, d := range []int{1, 2, 4} {
			baseR, baseRec := recordedRun(t, tr, alg, d, &ppcsim.HintSpec{Fraction: 1, Accuracy: 1})
			for _, w := range []int{n, n + 1, 10 * n} {
				winR, winRec := recordedRun(t, tr, alg, d, &ppcsim.HintSpec{Fraction: 1, Accuracy: 1, Window: w})
				if !reflect.DeepEqual(baseR, winR) {
					t.Errorf("%s/d=%d: W=%d metrics differ from unlimited:\n%+v\nvs\n%+v", alg, d, w, winR, baseR)
				}
				if !reflect.DeepEqual(baseRec, winRec) {
					t.Errorf("%s/d=%d: W=%d observer event stream differs from unlimited", alg, d, w)
				}
				if len(winRec.WindowMisses) != 0 {
					t.Errorf("%s/d=%d: W=%d covering the trace emitted %d window-miss events",
						alg, d, w, len(winRec.WindowMisses))
				}
			}
		}
	}
}

// TestWindowEquivalenceUnderNoise: the full-trace equivalence must also
// hold with partial, inaccurate hints — which additionally pins that the
// hint corruption is drawn per trace position from the seed alone, never
// re-rolled when the window changes.
func TestWindowEquivalenceUnderNoise(t *testing.T) {
	tr := truncated(t, "cscope2", 3000)
	h := ppcsim.HintSpec{Fraction: 0.8, Accuracy: 0.7, Seed: 21}
	for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall} {
		noisy := h
		baseR, baseRec := recordedRun(t, tr, alg, 2, &noisy)
		windowed := h
		windowed.Window = len(tr.Refs)
		winR, winRec := recordedRun(t, tr, alg, 2, &windowed)
		if !reflect.DeepEqual(baseR, winR) || !reflect.DeepEqual(baseRec, winRec) {
			t.Errorf("%s: noisy full-trace window differs from unlimited run", alg)
		}
	}
}

// TestWindowNoneStripsPrefetching: WindowNone removes all future
// visibility, so a prefetcher degrades to demand fetching — same
// reference counts, elapsed within the queueing tolerance of the demand
// policy (replacement differs: LRU fallback vs optimal, which only
// matters under eviction pressure, so the full-residency default cache
// keeps the comparison tight).
func TestWindowNoneStripsPrefetching(t *testing.T) {
	const tol = 1.05
	for _, tr := range metaTraces() {
		for _, d := range metaDisks {
			demand := metaRun(t, tr, ppcsim.Demand, d, 0)
			for _, alg := range []ppcsim.Algorithm{ppcsim.FixedHorizon, ppcsim.Aggressive, ppcsim.Forestall} {
				r, err := ppcsim.Run(ppcsim.Options{
					Trace: tr, Algorithm: alg, Disks: d,
					Hints: &ppcsim.HintSpec{Fraction: 1, Accuracy: 1, Window: ppcsim.WindowNone},
				})
				if err != nil {
					t.Fatalf("%s/%s/d=%d: %v", tr.Name, alg, d, err)
				}
				if r.CacheHits+r.CacheMisses != int64(len(tr.Refs)) {
					t.Errorf("%s/%s/d=%d: served %d of %d refs", tr.Name, alg, d, r.CacheHits+r.CacheMisses, len(tr.Refs))
				}
				if r.ElapsedSec > demand.ElapsedSec*tol || r.ElapsedSec < demand.ElapsedSec/tol {
					t.Errorf("%s/%s/d=%d: WindowNone elapsed %.4fs not within %g of demand %.4fs",
						tr.Name, alg, d, r.ElapsedSec, tol, demand.ElapsedSec)
				}
			}
		}
	}
}

// TestWindowMissEvents: a windowed run that stalls reports each stall
// with a WindowMiss event carrying the window in force, and an unlimited
// run reports none.
func TestWindowMissEvents(t *testing.T) {
	tr := tracetest.Loop("loop", 32, 400, 2)
	tr.CacheBlocks = 16
	const w = 4
	r, rec := recordedRun(t, tr, ppcsim.Demand, 2, &ppcsim.HintSpec{Fraction: 1, Accuracy: 1, Window: w})
	if len(rec.Stalls) == 0 {
		t.Fatal("loop over a half-size cache should stall")
	}
	if len(rec.WindowMisses) != len(rec.Stalls) {
		t.Errorf("%d window-miss events for %d stalls", len(rec.WindowMisses), len(rec.Stalls))
	}
	for i, e := range rec.WindowMisses {
		if e.Window != w {
			t.Fatalf("event %d reports window %d, want %d", i, e.Window, w)
		}
		if e.Pos < 0 || e.Pos >= len(tr.Refs) {
			t.Fatalf("event %d at out-of-range position %d", i, e.Pos)
		}
	}
	if r.CacheHits+r.CacheMisses != int64(len(tr.Refs)) {
		t.Error("not every reference served")
	}
	_, unlimited := recordedRun(t, tr, ppcsim.Demand, 2, nil)
	if len(unlimited.WindowMisses) != 0 {
		t.Errorf("unlimited run emitted %d window-miss events", len(unlimited.WindowMisses))
	}
}

// TestHistoryAssociationEvents: the history policy reports its useful
// prefetches as association-hit events with non-negative lag.
func TestHistoryAssociationEvents(t *testing.T) {
	tr := tracetest.Loop("loop", 32, 400, 2)
	tr.CacheBlocks = 16
	_, rec := recordedRun(t, tr, ppcsim.History, 2, nil)
	if len(rec.AssocHits) == 0 {
		t.Fatal("history on a cycling loop should land association prefetches")
	}
	for i, e := range rec.AssocHits {
		if e.Lag < 0 {
			t.Fatalf("event %d has negative lag %d", i, e.Lag)
		}
		if e.Trigger == e.Block {
			t.Fatalf("event %d is a self-association of block %d", i, e.Block)
		}
	}
}

// TestWindowValidation pins the library-level window semantics: anything
// below WindowNone is rejected, WindowNone and positive windows run for
// the online algorithms, and the offline reverse-aggressive accepts only
// windows that keep it fully informed.
func TestWindowValidation(t *testing.T) {
	tr := truncated(t, "ld", 500)
	run := func(alg ppcsim.Algorithm, w int) error {
		_, err := ppcsim.Run(ppcsim.Options{
			Trace: tr, Algorithm: alg, Disks: 1,
			Hints: &ppcsim.HintSpec{Fraction: 1, Accuracy: 1, Window: w},
		})
		return err
	}
	if err := run(ppcsim.FixedHorizon, ppcsim.WindowNone-1); err == nil {
		t.Error("window below WindowNone should be rejected")
	}
	for _, w := range []int{ppcsim.WindowNone, 1, 100, len(tr.Refs)} {
		if err := run(ppcsim.FixedHorizon, w); err != nil {
			t.Errorf("fixed-horizon window %d: %v", w, err)
		}
	}
	// The offline algorithm needs the whole future: partial windows are
	// partial knowledge, full-trace windows change nothing.
	for _, w := range []int{ppcsim.WindowNone, 1, len(tr.Refs) - 1} {
		if err := run(ppcsim.ReverseAggressive, w); err == nil {
			t.Errorf("reverse-aggressive window %d should be rejected", w)
		}
	}
	for _, w := range []int{0, len(tr.Refs), len(tr.Refs) + 50} {
		if err := run(ppcsim.ReverseAggressive, w); err != nil {
			t.Errorf("reverse-aggressive window %d: %v", w, err)
		}
	}
}
