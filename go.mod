module ppcsim

go 1.22
