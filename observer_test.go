package ppcsim_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"ppcsim"
)

// TestObserverReconciliation checks the core observability invariant on
// every bundled trace: the stall and driver totals derived from the
// event stream must match the engine's Result to within 1e-9 seconds.
func TestObserverReconciliation(t *testing.T) {
	type cfg struct {
		name string
		alg  ppcsim.Algorithm
		mut  func(*ppcsim.Options)
	}
	cfgs := []cfg{
		{"forestall-2d", ppcsim.Forestall, func(o *ppcsim.Options) { o.Disks = 2 }},
		{"aggressive-1d", ppcsim.Aggressive, nil},
		{"aggressive-4d-fcfs", ppcsim.Aggressive, func(o *ppcsim.Options) {
			o.Disks = 4
			o.Scheduler = ppcsim.FCFS
		}},
		{"demand-lru", ppcsim.DemandLRU, nil},
		{"fixed-horizon-hints", ppcsim.FixedHorizon, func(o *ppcsim.Options) {
			o.Disks = 2
			o.Hints = &ppcsim.HintSpec{Fraction: 0.7, Accuracy: 0.9}
		}},
		{"forestall-no-driver", ppcsim.Forestall, func(o *ppcsim.Options) { o.DriverOverheadMs = -1 }},
	}
	for _, name := range ppcsim.TraceNames {
		tr, err := ppcsim.NewTrace(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cfgs {
			rec := ppcsim.NewRecorder()
			opts := ppcsim.Options{Trace: tr, Algorithm: c.alg, Observer: rec}
			if c.mut != nil {
				c.mut(&opts)
			}
			res, err := ppcsim.Run(opts)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, c.name, err)
			}
			if d := math.Abs(rec.StallTimeSec() - res.StallTimeSec); d > 1e-9 {
				t.Errorf("%s/%s: event-derived stall %.12f vs result %.12f (|Δ|=%g)",
					name, c.name, rec.StallTimeSec(), res.StallTimeSec, d)
			}
			if d := math.Abs(rec.DriverTimeSec() - res.DriverTimeSec); d > 1e-9 {
				t.Errorf("%s/%s: event-derived driver %.12f vs result %.12f (|Δ|=%g)",
					name, c.name, rec.DriverTimeSec(), res.DriverTimeSec, d)
			}
			if got, want := int64(len(rec.Stalls)), res.CacheMisses; got != want {
				t.Errorf("%s/%s: %d stall intervals, want one per miss (%d)", name, c.name, got, want)
			}
			if rec.ElapsedMs <= 0 {
				t.Errorf("%s/%s: recorder never saw RunEnd", name, c.name)
			}
		}
	}
}

// TestObserverStreamingStats: a Tee'd StreamingStats populates
// Result.Latency with ordered percentiles consistent with the run.
func TestObserverStreamingStats(t *testing.T) {
	tr, err := ppcsim.NewTrace("cscope1")
	if err != nil {
		t.Fatal(err)
	}
	stats := ppcsim.NewStreamingStats()
	rec := ppcsim.NewRecorder()
	res, err := ppcsim.Run(ppcsim.Options{
		Trace:     tr,
		Algorithm: ppcsim.Forestall,
		Disks:     2,
		Observer:  ppcsim.Tee(rec, stats),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency == nil {
		t.Fatal("Result.Latency not populated despite StreamingStats observer")
	}
	l := res.Latency
	if l.FetchCount != res.Fetches {
		t.Errorf("latency summary saw %d fetches, result has %d", l.FetchCount, res.Fetches)
	}
	if l.StallCount != res.CacheMisses {
		t.Errorf("latency summary saw %d stalls, result has %d misses", l.StallCount, res.CacheMisses)
	}
	if !(l.FetchP50Ms <= l.FetchP95Ms && l.FetchP95Ms <= l.FetchP99Ms) {
		t.Errorf("fetch percentiles out of order: p50=%g p95=%g p99=%g", l.FetchP50Ms, l.FetchP95Ms, l.FetchP99Ms)
	}
	if !(l.StallP50Ms <= l.StallP95Ms && l.StallP95Ms <= l.StallP99Ms) {
		t.Errorf("stall percentiles out of order: p50=%g p95=%g p99=%g", l.StallP50Ms, l.StallP95Ms, l.StallP99Ms)
	}
	if l.FetchMeanMs <= 0 {
		t.Errorf("fetch mean %g must be positive", l.FetchMeanMs)
	}

	// Without an observer, Latency stays nil and results are unchanged.
	bare, err := ppcsim.Run(ppcsim.Options{Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Latency != nil {
		t.Error("Result.Latency must be nil without an observer")
	}
	if bare.ElapsedSec != res.ElapsedSec || bare.Fetches != res.Fetches {
		t.Errorf("observer changed the simulation: elapsed %g vs %g, fetches %d vs %d",
			bare.ElapsedSec, res.ElapsedSec, bare.Fetches, res.Fetches)
	}
}

// TestChromeTracerOutput: the exported JSON is a loadable trace-event
// file with one thread row per disk plus the process row.
func TestChromeTracerOutput(t *testing.T) {
	tr, err := ppcsim.NewTrace("synth")
	if err != nil {
		t.Fatal(err)
	}
	tracer := ppcsim.NewChromeTracer()
	res, err := ppcsim.Run(ppcsim.Options{
		Trace:     tr,
		Algorithm: ppcsim.Aggressive,
		Disks:     3,
		Observer:  tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tracer.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var fetchSlices, stallSlices int64
	threads := map[int]bool{}
	for _, e := range doc.TraceEvents {
		threads[e.Tid] = true
		if e.Ph == "X" {
			if e.Ts < 0 || e.Dur < 0 {
				t.Fatalf("slice %q has negative ts/dur (%g/%g)", e.Name, e.Ts, e.Dur)
			}
			if e.Tid == 0 {
				stallSlices++
			} else {
				fetchSlices++
			}
		}
	}
	// tid 0 is the process; tids 1..3 are the disks.
	for tid := 0; tid <= 3; tid++ {
		if !threads[tid] {
			t.Errorf("no events on thread %d", tid)
		}
	}
	if fetchSlices != res.Fetches {
		t.Errorf("%d fetch slices, want one per fetch (%d)", fetchSlices, res.Fetches)
	}
	if stallSlices != res.CacheMisses {
		t.Errorf("%d stall slices, want one per miss (%d)", stallSlices, res.CacheMisses)
	}
}

// TestRecorderSeries: the recorder's time series are well-formed —
// monotone timestamps, utilization in [0,1], queue depths consistent
// with the fetch count — and the CSV export carries every series.
func TestRecorderSeries(t *testing.T) {
	tr, err := ppcsim.NewTrace("xds")
	if err != nil {
		t.Fatal(err)
	}
	rec := ppcsim.NewRecorder()
	res, err := ppcsim.Run(ppcsim.Options{
		Trace:     tr,
		Algorithm: ppcsim.Forestall,
		Disks:     2,
		Observer:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.QueueDepth) != 2 || len(rec.Utilization) != 2 {
		t.Fatalf("expected per-disk series for 2 disks, got %d/%d", len(rec.QueueDepth), len(rec.Utilization))
	}
	for d, series := range rec.Utilization {
		for _, p := range series {
			if p.V < 0 || p.V > 1+1e-9 {
				t.Fatalf("disk %d utilization %g at t=%g out of [0,1]", d, p.V, p.TMs)
			}
		}
	}
	for d, series := range rec.QueueDepth {
		last := -1.0
		for _, p := range series {
			if p.TMs < last {
				t.Fatalf("disk %d queue-depth series not time-ordered", d)
			}
			last = p.TMs
		}
	}
	if len(rec.CacheOccupancy) == 0 {
		t.Error("no cache-occupancy samples")
	}
	if int64(len(rec.Evictions)) > res.Fetches {
		t.Errorf("%d evictions exceed %d fetches", len(rec.Evictions), res.Fetches)
	}
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, series := range []string{"queue_depth", "utilization", "cache_used", "stall"} {
		if !bytes.Contains(buf.Bytes(), []byte(series)) {
			t.Errorf("CSV missing %q series; header+first lines:\n%.300s", series, out)
		}
	}
}
