// Package clean holds the allocation shapes hotalloc must accept: hot
// functions that preallocate and reuse, and unannotated cold functions
// free to allocate however they like.
package clean

import (
	"fmt"
	"strconv"
)

// Decode preallocates its output, reuses one scratch buffer, and keeps
// its map outside the loop — the shape the frame decoder should have.
//
//ppcvet:hotpath
func Decode(ids []uint64) []string {
	names := make([]string, 0, len(ids))
	buf := make([]byte, 0, 32)
	counts := map[uint64]int{}
	for _, id := range ids {
		buf = strconv.AppendUint(buf[:0], id, 10)
		names = append(names, string(buf))
		counts[id]++
	}
	return names
}

// Sized appends into a capacity-reserving slice; growth never copies.
//
//ppcvet:hotpath
func Sized(vals []int) []int {
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		out = append(out, v)
	}
	return out
}

// GrowOutsideLoop may append to an unsized slice — once, not per
// iteration.
//
//ppcvet:hotpath
func GrowOutsideLoop(v int) []int {
	var out []int
	out = append(out, v)
	return out
}

// NotHot carries every pattern the bad fixture flags, with no
// annotation: hotalloc must stay silent on cold paths.
func NotHot(ids []uint64) []string {
	out := []string{}
	for _, id := range ids {
		m := make(map[string]int)
		m["n"] = int(id)
		out = append(out, fmt.Sprintf("ref-%d", id))
	}
	return out
}
