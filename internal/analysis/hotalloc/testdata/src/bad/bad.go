// Package bad exercises every hotalloc diagnostic inside annotated
// functions.
package bad

import "fmt"

// Decode is a hot frame decoder that allocates per reference.
//
//ppcvet:hotpath
func Decode(ids []uint64) []string {
	names := []string{}
	for _, id := range ids {
		m := make(map[string]int) // want `map allocated per loop iteration in a hot path`
		m["n"] = int(id)
		lit := map[uint64]bool{id: true} // want `map composite literal allocates per loop iteration in a hot path`
		_ = lit
		names = append(names, fmt.Sprintf("ref-%d", id)) // want `fmt\.Sprintf allocates in a hot path` `append grows names per iteration but it was declared without capacity`
	}
	return names
}

// Label formats outside any loop; Sprintf is banned anywhere hot.
//
//ppcvet:hotpath
func Label(id uint64) string {
	return fmt.Sprintf("ref-%d", id) // want `fmt\.Sprintf allocates in a hot path`
}

// Box converts to an interface per element.
//
//ppcvet:hotpath
func Box(vals []int) []any {
	out := make([]any, 0, len(vals))
	for _, v := range vals {
		out = append(out, any(v)) // want `conversion to interface type boxes the value per loop iteration in a hot path`
	}
	return out
}

// GrowVar starts from a nil slice declared with var.
//
//ppcvet:hotpath
func GrowVar(vals []int) []int {
	var doubled []int
	for _, v := range vals {
		doubled = append(doubled, v*2) // want `append grows doubled per iteration but it was declared without capacity`
	}
	return doubled
}

// GrowMakeNoCap uses the two-argument make, which sizes the length but
// reserves nothing for growth.
//
//ppcvet:hotpath
func GrowMakeNoCap(vals []int) []int {
	acc := make([]int, 0)
	for _, v := range vals {
		acc = append(acc, v) // want `append grows acc per iteration but it was declared without capacity`
	}
	return acc
}
