package hotalloc

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"ppcsim/internal/analysis"
)

func TestFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "clean"} {
		if err := analysis.RunFixture(Analyzer, filepath.Join("testdata", "src", dir)); err != nil {
			t.Errorf("fixture %s:\n%v", dir, err)
		}
	}
}

// analyze runs hotalloc over a single import-free source string.
func analyze(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.CheckPackage("p", fset, []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	return analysis.RunPackage(pkg, []*analysis.Analyzer{Analyzer})
}

// An orphaned hotpath annotation protects nothing and must be loud
// about it. (This lives here rather than in the fixture because a want
// comment cannot share the directive's line.)
func TestOrphanHotpathIsDiagnosed(t *testing.T) {
	diags := analyze(t, `package p

//ppcvet:hotpath
var x int
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "not attached to a function declaration") {
		t.Fatalf("diagnostics = %v, want one orphan-directive report", diags)
	}
	if diags[0].Pos.Line != 3 {
		t.Fatalf("orphan reported at line %d, want 3 (the directive line)", diags[0].Pos.Line)
	}
}

// A directive separated from the function by a blank line is not doc
// and does not attach.
func TestDetachedDirectiveIsOrphan(t *testing.T) {
	diags := analyze(t, `package p

//ppcvet:hotpath

func f() {}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "not attached") {
		t.Fatalf("diagnostics = %v, want one orphan-directive report", diags)
	}
}
