// Package hotalloc polices allocation in functions annotated
// //ppcvet:hotpath — the engine event loop, the oracle advance, the
// columnar frame decoder. These run once per trace reference, so a
// single per-iteration allocation multiplies by a billion on the large
// runs the streaming substrate exists for.
//
// Inside a hot function the analyzer reports
//
//   - any fmt.Sprintf call: it allocates the result string and boxes
//     every argument (strconv.Append* into a reused buffer does not);
//   - a map allocated inside a loop, by make or composite literal;
//   - append growth in a loop into a slice declared in the same
//     function without capacity (var s []T, []T{}, or two-argument
//     make): every doubling copies the backing array mid-loop;
//   - an explicit conversion to an interface type inside a loop, which
//     heap-boxes the value per iteration.
//
// The annotation rides on the function's doc comment:
//
//	// runLoop advances the simulation one event at a time.
//	//ppcvet:hotpath
//	func (e *Engine) runLoop() { ... }
//
// A hotpath directive not attached to a function declaration is itself
// reported: an orphaned annotation protects nothing.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"ppcsim/internal/analysis"
)

// Analyzer is the hotalloc instance; it has no configuration — the
// hotpath annotations in the source are the configuration.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flag per-iteration allocation inside //ppcvet:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) {
	hot := map[string][]int{} // filename → hotpath directive lines, in order
	for _, d := range analysis.PackageDirectives(pass.Fset, pass.Files) {
		if d.Name == "hotpath" {
			hot[d.Pos.Filename] = append(hot[d.Pos.Filename], d.Pos.Line)
		}
	}
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		used := map[int]bool{}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if line, ok := hotDirective(pass, fd, hot[filename]); ok {
				used[line] = true
				checkHot(pass, fd)
			}
		}
		for _, line := range hot[filename] {
			if !used[line] {
				pass.Reportf(filePos(pass, f, line), "//ppcvet:hotpath is not attached to a function declaration")
			}
		}
	}
}

// hotDirective reports whether a hotpath directive on one of lines
// covers fd: the directive lies within fd's doc comment, or sits on the
// line directly above the declaration.
func hotDirective(pass *analysis.Pass, fd *ast.FuncDecl, lines []int) (int, bool) {
	pos := pass.Fset.Position(fd.Pos())
	lo := pos.Line - 1
	if fd.Doc != nil {
		lo = pass.Fset.Position(fd.Doc.Pos()).Line
	}
	for _, line := range lines {
		if line >= lo && line < pos.Line {
			return line, true
		}
	}
	return 0, false
}

// filePos converts a line back to a token.Pos inside f, so
// orphan-directive diagnostics carry their own location.
func filePos(pass *analysis.Pass, f *ast.File, line int) token.Pos {
	tf := pass.Fset.File(f.Pos())
	if tf == nil || line > tf.LineCount() {
		return f.Pos()
	}
	return tf.LineStart(line)
}

// checkHot walks one hot function. inLoop tracks lexical containment in
// a for or range statement; function literals inside the hot function
// are included — the engine's loop bodies close over state.
func checkHot(pass *analysis.Pass, fd *ast.FuncDecl) {
	unsized := unsizedSlices(pass, fd.Body)
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch node := m.(type) {
			case *ast.ForStmt:
				if node.Init != nil {
					walk(node.Init, inLoop)
				}
				walk(node.Body, true)
				return false
			case *ast.RangeStmt:
				walk(node.Body, true)
				return false
			case *ast.CallExpr:
				checkCall(pass, node, inLoop, unsized)
			case *ast.CompositeLit:
				if inLoop && isMapType(pass.Info.TypeOf(node)) {
					pass.Reportf(node.Pos(), "map composite literal allocates per loop iteration in a hot path; hoist it out of the loop or reuse one map")
				}
			}
			return true
		})
	}
	walk(fd.Body, false)
}

// checkCall handles the call-shaped diagnostics: Sprintf, make(map) in
// loops, unsized append in loops, and interface conversions in loops.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, inLoop bool, unsized map[types.Object]bool) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if inLoop && len(call.Args) == 1 {
			target := pass.Info.TypeOf(call.Fun)
			arg := pass.Info.TypeOf(call.Args[0])
			if target != nil && arg != nil && types.IsInterface(target) && !types.IsInterface(arg) {
				pass.Reportf(call.Pos(), "conversion to interface type boxes the value per loop iteration in a hot path")
			}
		}
		return
	}
	fn := analysis.Callee(pass.Info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Sprintf" {
		pass.Reportf(call.Pos(), "fmt.Sprintf allocates in a hot path; use strconv.Append* into a reused buffer")
		return
	}
	if !inLoop {
		return
	}
	switch builtinName(pass, call) {
	case "make":
		if len(call.Args) >= 1 && isMapType(pass.Info.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "map allocated per loop iteration in a hot path; hoist it out of the loop or reuse one map")
		}
	case "append":
		if len(call.Args) == 0 {
			return
		}
		if target, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := pass.Info.ObjectOf(target); obj != nil && unsized[obj] {
				pass.Reportf(call.Pos(), "append grows %s per iteration but it was declared without capacity; preallocate with make(..., 0, n)", target.Name)
			}
		}
	}
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(pass *analysis.Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
		return b.Name()
	}
	return ""
}

// unsizedSlices collects function-local slice variables declared with
// no capacity: var s []T, s := []T{}, or s := make([]T, n) without a
// capacity argument.
func unsizedSlices(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	unsized := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeclStmt:
			gd, ok := node.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := pass.Info.Defs[name]; obj != nil && isSliceType(obj.Type()) {
						unsized[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				if i >= len(node.Rhs) {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || !isSliceType(obj.Type()) {
					continue
				}
				switch rhs := ast.Unparen(node.Rhs[i]).(type) {
				case *ast.CompositeLit:
					if len(rhs.Elts) == 0 && isSliceType(pass.Info.TypeOf(rhs)) {
						unsized[obj] = true
					}
				case *ast.CallExpr:
					if builtinName(pass, rhs) == "make" &&
						len(rhs.Args) == 2 && isSliceType(pass.Info.TypeOf(rhs.Args[0])) {
						unsized[obj] = true
					}
				}
			}
		}
		return true
	})
	return unsized
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}
