// Package bad exercises every floateq diagnostic.
package bad

// Reconcile compares two derived simulation times exactly.
func Reconcile(stallEnd, now float64) bool {
	return stallEnd == now // want `float equality \(==\)`
}

// NotEqual is just as unsafe as equality.
func NotEqual(a, b float64) bool {
	return a != b // want `float equality \(!=\)`
}

// Constant compares against a float literal.
func Constant(elapsed float64) bool {
	return elapsed == 1.5 // want `float equality \(==\)`
}

// Zero equality is the classic stall-reconciliation hazard: an
// accumulated stall that should be zero rarely is.
func Zero(stall float64) bool {
	return stall == 0 // want `float equality \(==\)`
}

// Narrow shows float32 is covered too.
func Narrow(a, b float32) bool {
	return a == b // want `float equality \(==\)`
}
