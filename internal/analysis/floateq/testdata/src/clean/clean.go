// Package clean holds the float comparisons that stay legal: epsilon
// helpers, the NaN self-test, infinity sentinels, orderings, and
// non-float equality.
package clean

import "math"

const eps = 1e-9

// approxEqual is an approved epsilon helper; its exact comparison
// fast-path is the reason helpers are exempt.
func approxEqual(a, b float64) bool {
	return a == b || math.Abs(a-b) < eps
}

// withinTolerance is exempt through the "within" helper naming.
func withinTolerance(a, b, tol float64) bool {
	return a == b || math.Abs(a-b) <= tol
}

// IsNaN uses the self-comparison idiom.
func IsNaN(x float64) bool {
	return x != x
}

// Unbounded compares against the engine's infinity sentinel for an idle
// disk, which IEEE arithmetic preserves exactly.
func Unbounded(x float64) bool {
	return x == math.Inf(1)
}

// Ints compares integers; only floats are restricted.
func Ints(a, b int) bool { return a == b }

// Ordered comparisons carry no exact-representation hazard.
func Ordered(a, b float64) bool { return a < b }

// Reconciled uses the approved helper instead of raw equality.
func Reconciled(stallEnd, now float64) bool {
	return approxEqual(stallEnd, now)
}

// Suppressed shows a justified exact comparison: times copied, never
// recomputed, so bit-equality is sound.
func Suppressed(copied, original float64) bool {
	return copied == original //ppcvet:ignore copied value, never recomputed
}
