// Package floateq flags == and != between floating-point expressions.
// Simulation time in this repository is float64 milliseconds, and exact
// equality between derived times (stall reconciliation, event ordering)
// is only safe inside deliberate epsilon helpers. Two idioms stay legal:
// self-comparison (the x != x NaN test) and comparison against a
// math.Inf sentinel, which IEEE arithmetic preserves exactly.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ppcsim/internal/analysis"
)

// Analyzer is the floateq check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between floats outside approved epsilon helpers",
	Run:  run,
}

// approvedSubstrings mark function names that are allowed to compare
// floats exactly — the repository's epsilon/approximation helpers.
var approvedSubstrings = []string{"approx", "almost", "near", "within", "eps"}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return
			}
			if !isFloat(pass.Info, bin.X) || !isFloat(pass.Info, bin.Y) {
				return
			}
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return // x != x is the NaN test
			}
			if isInf(pass.Info, bin.X) || isInf(pass.Info, bin.Y) {
				return // infinity sentinels compare exactly
			}
			if inApprovedHelper(stack) {
				return
			}
			pass.Reportf(bin.OpPos, "float equality (%s) on simulation-time values; use an epsilon helper or restructure the comparison", bin.Op)
		})
	}
}

func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isInf reports whether e is a math.Inf(...) call.
func isInf(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.Callee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Inf"
}

// inApprovedHelper reports whether the innermost enclosing declared
// function is named like an epsilon helper.
func inApprovedHelper(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		decl, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := strings.ToLower(decl.Name.Name)
		for _, s := range approvedSubstrings {
			if strings.Contains(name, s) {
				return true
			}
		}
		return false
	}
	return false
}
