// Package bad exercises every lockguard diagnostic.
package bad

import "sync"

// registry mirrors the serving stack's mutex-plus-state shape.
type registry struct {
	mu sync.Mutex
	n  int //ppcvet:guardedby mu

	//ppcvet:guardedby mu
	entries map[string]int

	other sync.Mutex
}

// Unlocked accesses guarded state with no lock anywhere in sight.
func (r *registry) Unlocked() int {
	return r.n // want `field n is guarded by mu but accessed without holding r\.mu`
}

// AfterUnlock releases the mutex and keeps going.
func (r *registry) AfterUnlock() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	r.n++ // want `field n is guarded by mu but accessed without holding r\.mu`
}

// WrongMutex holds a different lock of the same struct.
func (r *registry) WrongMutex() {
	r.other.Lock()
	defer r.other.Unlock()
	r.entries["x"]++ // want `field entries is guarded by mu but accessed without holding r\.mu`
}

// WrongReceiver locks one instance and touches another.
func (r *registry) WrongReceiver(s *registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.n++ // want `field n is guarded by mu but accessed without holding s\.mu`
}

// NotLockedSuffix is a helper without the Locked naming convention, so
// its unguarded receiver access is a finding, not an assumption.
func (r *registry) insert(key string) {
	r.entries[key] = 1 // want `field entries is guarded by mu but accessed without holding r\.mu`
}

// LockInBranch only acquires on one path.
func (r *registry) LockInBranch(cond bool) {
	if cond {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	r.n++ // want `field n is guarded by mu but accessed without holding r\.mu`
}

// Malformed directives (a guard that is not a mutex field, a directive
// attached to nothing) report on the directive's own line, which cannot
// also carry a want comment — lockguard_test.go covers them directly.
