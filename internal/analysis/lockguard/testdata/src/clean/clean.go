// Package clean holds every guarded-access pattern lockguard must
// accept: Lock-then-defer, RLock for readers, mid-block unlock/relock,
// closures created under the lock, the *Locked caller-holds convention,
// and construction through composite literals.
package clean

import "sync"

type registry struct {
	mu sync.RWMutex
	n  int //ppcvet:guardedby mu

	//ppcvet:guardedby mu
	entries map[string]int
}

// newRegistry initializes guarded fields through the composite literal,
// before the value can be shared.
func newRegistry() *registry {
	return &registry{entries: make(map[string]int)}
}

// Add is the idiomatic Lock-then-defer pair.
func (r *registry) Add(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	r.entries[key]++
}

// Get holds the read lock.
func (r *registry) Get(key string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[key]
}

// Relock releases mid-function and reacquires before touching state.
func (r *registry) Relock() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
	work()
	r.mu.Lock()
	r.n--
	r.mu.Unlock()
}

// Nested reaches guarded state from inside branches and loops opened
// after the lock was taken.
func (r *registry) Nested(keys []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range keys {
		if k != "" {
			r.entries[k]++
		}
	}
}

// Closure captures guarded state in a function literal created under
// the lock (the emit-under-lock pattern).
func (r *registry) Closure() func() {
	r.mu.Lock()
	defer r.mu.Unlock()
	inc := func() { r.n++ }
	inc()
	return inc
}

// bumpLocked follows the caller-holds-the-lock naming convention.
func (r *registry) bumpLocked(key string) {
	r.n++
	r.entries[key]++
}

// Bump drives the Locked helper under its lock.
func (r *registry) Bump(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bumpLocked(key)
}

// Switch reaches guarded state from a case body, the lock having been
// taken at function level.
func (r *registry) Switch(mode int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch mode {
	case 0:
		r.n = 0
	default:
		r.n++
	}
}

func work() {}
