// Package lockguard enforces mutex discipline on annotated shared
// state: a struct field carrying a //ppcvet:guardedby <mutex> directive
// (trailing on the field's line or on the line above) may only be
// accessed while the named sync.Mutex or sync.RWMutex of the same
// struct is held. The analysis is lexical, in the style of obsguard: an
// access through base expression B to a field guarded by mutex m is
// accepted when an earlier statement in an enclosing block is
// `B.m.Lock()` or `B.m.RLock()` with no later `B.m.Unlock()`/`RUnlock()`
// before the access at that level. `defer B.m.Unlock()` does not
// release the lexical lock, so the idiomatic Lock-then-defer pair reads
// as held for the rest of the block.
//
// Two deliberate allowances keep the check aligned with how the serving
// stack is actually written:
//
//   - Crossing function-literal boundaries: a closure created while the
//     lock is held is assumed to run under it. This mirrors obsguard and
//     matches the scheduler's emit-under-lock pattern; a closure handed
//     to `go` escapes this assumption, which is goroleak's concern.
//   - Methods whose name ends in "Locked" (the repository's convention
//     for "caller holds the lock") may access their own receiver's
//     guarded fields freely; calling such a method without the lock is
//     invisible to a lexical analyzer and remains a code-review concern.
//
// Struct-literal keys are not accesses: constructors initialize guarded
// fields before the value is shared, and flagging them would force
// pointless locking of unreachable state.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ppcsim/internal/analysis"
)

// Analyzer is the lockguard instance; it has no configuration.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc:  "require //ppcvet:guardedby fields to be accessed only under their mutex",
	Run:  run,
}

// guardInfo records one guarded field: the mutex field's name and the
// directive that declared the relationship.
type guardInfo struct {
	mutex     string
	directive token.Position
}

func run(pass *analysis.Pass) {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			selection := pass.Info.Selections[sel]
			if selection == nil || selection.Kind() != types.FieldVal {
				return
			}
			info, isGuarded := guarded[selection.Obj()]
			if !isGuarded {
				return
			}
			base := types.ExprString(sel.X)
			if lockedMethodOwns(stack, base) {
				return
			}
			if lockHeld(stack, n, base+"."+info.mutex) {
				return
			}
			pass.Reportf(sel.Sel.Pos(), "field %s is guarded by %s but accessed without holding %s.%s",
				sel.Sel.Name, info.mutex, base, info.mutex)
		})
	}
}

// collectGuarded resolves every guardedby directive to the field object
// it annotates, validating that the named mutex is a sync.Mutex or
// sync.RWMutex field of the same struct. Unattached or invalid
// directives are reported.
func collectGuarded(pass *analysis.Pass) map[types.Object]guardInfo {
	guarded := map[types.Object]guardInfo{}
	for _, f := range pass.Files {
		// Directives in this file, keyed by line, consumed as matched.
		directives := map[int]analysis.Directive{}
		for _, d := range analysis.PackageDirectives(pass.Fset, []*ast.File{f}) {
			if d.Name == "guardedby" {
				directives[d.Pos.Line] = d
			}
		}
		if len(directives) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				line := pass.Fset.Position(field.Pos()).Line
				d, ok := directives[line]
				if !ok {
					d, ok = directives[line-1]
					if !ok {
						continue
					}
					delete(directives, line-1)
				} else {
					delete(directives, line)
				}
				if !mutexField(pass, st, d.Arg) {
					pass.Reportf(field.Pos(), "//ppcvet:guardedby names %q, which is not a sync.Mutex or sync.RWMutex field of this struct", d.Arg)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guarded[obj] = guardInfo{mutex: d.Arg, directive: d.Pos}
					}
				}
			}
			return true
		})
		// Whatever is left never matched a struct field; report in line
		// order so the output does not depend on map iteration.
		var orphans []int
		for line := range directives {
			orphans = append(orphans, line)
		}
		sort.Ints(orphans)
		for _, line := range orphans {
			pass.Reportf(filePos(pass, f, directives[line].Pos), "//ppcvet:guardedby is not attached to a struct field (it must trail the field's line or sit on the line above)")
		}
	}
	return guarded
}

// filePos converts a resolved position back to a token.Pos inside f, so
// orphan-directive diagnostics carry their own location.
func filePos(pass *analysis.Pass, f *ast.File, pos token.Position) token.Pos {
	tf := pass.Fset.File(f.Pos())
	if tf == nil || pos.Line > tf.LineCount() {
		return f.Pos()
	}
	return tf.LineStart(pos.Line)
}

// mutexField reports whether st has a field named name whose type is
// sync.Mutex or sync.RWMutex (possibly a pointer to one).
func mutexField(pass *analysis.Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			t := pass.Info.TypeOf(field.Type)
			if t == nil {
				return false
			}
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
				return false
			}
			return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
		}
	}
	return false
}

// lockedMethodOwns reports whether the access sits inside a method
// whose name ends in "Locked" and whose receiver is the access base —
// the convention for "caller already holds my lock".
func lockedMethodOwns(stack []ast.Node, base string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		decl, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		if !strings.HasSuffix(decl.Name.Name, "Locked") {
			return false
		}
		if decl.Recv == nil || len(decl.Recv.List) != 1 || len(decl.Recv.List[0].Names) != 1 {
			return false
		}
		return decl.Recv.List[0].Names[0].Name == base
	}
	return false
}

// lockHeld walks the ancestor stack looking for an enclosing block in
// which guard (e.g. "c.mu") was locked by an earlier statement and not
// unlocked again before the access. Function-literal boundaries are
// crossed deliberately (see the package comment).
func lockHeld(stack []ast.Node, node ast.Node, guard string) bool {
	child := node
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.BlockStmt:
			if heldBefore(parent.List, child, guard) {
				return true
			}
		case *ast.CaseClause:
			if heldBefore(parent.Body, child, guard) {
				return true
			}
		case *ast.CommClause:
			if heldBefore(parent.Body, child, guard) {
				return true
			}
		}
		child = stack[i]
	}
	return false
}

// heldBefore scans the statements preceding child, tracking the
// lexical lock state of guard: Lock/RLock acquire, Unlock/RUnlock
// release, deferred unlocks are skipped (they run at function exit).
func heldBefore(list []ast.Stmt, child ast.Node, guard string) bool {
	held := false
	for _, stmt := range list {
		if stmt == child {
			break
		}
		switch lockCall(stmt, guard) {
		case "Lock", "RLock":
			held = true
		case "Unlock", "RUnlock":
			held = false
		}
	}
	return held
}

// lockCall returns the mutex method name when stmt is a plain
// `<guard>.<method>()` call statement, and "" otherwise.
func lockCall(stmt ast.Stmt, guard string) string {
	expr, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		if types.ExprString(sel.X) == guard {
			return sel.Sel.Name
		}
	}
	return ""
}
