package lockguard

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"ppcsim/internal/analysis"
)

func TestFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "clean"} {
		if err := analysis.RunFixture(Analyzer, filepath.Join("testdata", "src", dir)); err != nil {
			t.Errorf("fixture %s:\n%v", dir, err)
		}
	}
}

// analyze type-checks one import-free source string and runs lockguard.
func analyze(t *testing.T, src string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.CheckPackage("p", fset, []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	return analysis.RunPackage(pkg, []*analysis.Analyzer{Analyzer})
}

func TestGuardMustBeMutexField(t *testing.T) {
	diags := analyze(t, `package p

type s struct {
	n     int
	state int //ppcvet:guardedby n
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "not a sync.Mutex or sync.RWMutex field") {
		t.Errorf("non-mutex guard not diagnosed: %v", diags)
	}
}

func TestOrphanDirectiveIsDiagnosed(t *testing.T) {
	diags := analyze(t, `package p

func f() {
	//ppcvet:guardedby mu
	_ = 0
}
`)
	// The directive's covered lines (its own and the next) hold no
	// struct field, so it must be reported as unattached. The statement
	// line below must not accidentally consume it.
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "not attached to a struct field") {
		t.Errorf("orphan directive not diagnosed: %v", diags)
	}
	if diags[0].Pos.Line != 4 {
		t.Errorf("orphan diagnostic at line %d, want the directive's line 4", diags[0].Pos.Line)
	}
}

func TestBareGuardedByIsMalformed(t *testing.T) {
	diags := analyze(t, `package p

type s struct {
	n int //ppcvet:guardedby
}
`)
	var sawMalformed bool
	for _, d := range diags {
		if d.Analyzer == "ppcvet" && strings.Contains(d.Message, "requires a mutex field name") {
			sawMalformed = true
		}
	}
	if !sawMalformed {
		t.Errorf("bare guardedby not diagnosed: %v", diags)
	}
}
