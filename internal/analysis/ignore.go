package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The analyzers share one directive vocabulary, all under the
// //ppcvet: comment prefix:
//
//	//ppcvet:ignore <reason>     suppress every finding on this line and
//	                             the next; the reason is mandatory
//	//ppcvet:guardedby <field>   (struct fields) the field may only be
//	                             accessed holding the named mutex;
//	                             consumed by lockguard
//	//ppcvet:hotpath             (functions) allocation discipline
//	                             applies inside; consumed by hotalloc
//
// An ignore directive silences every analyzer finding on the comment's
// own line and the line below it — covering both a trailing comment on
// the offending line and a standalone comment directly above it. A bare
// //ppcvet:ignore, a bare //ppcvet:guardedby, or any unrecognized
// //ppcvet: directive is itself reported as a diagnostic from the
// pseudo-analyzer "ppcvet", and does not suppress anything. Directives
// are line comments only: a /* block comment */ is never a directive,
// so commented-out code cannot smuggle one in.
const (
	directivePrefix    = "//ppcvet:"
	ignoreDirective    = "//ppcvet:ignore"
	guardedByDirective = "//ppcvet:guardedby"
	hotPathDirective   = "//ppcvet:hotpath"
)

// Suppression is one valid //ppcvet:ignore directive. Used reports
// whether it actually suppressed a diagnostic in the run that collected
// it — a suppression that no longer fires is stale and should be
// deleted (see ppc-vet -suppressions).
type Suppression struct {
	Pos    token.Position
	Reason string
	Used   bool
}

// Directive is one non-ignore annotation (guardedby, hotpath), handed
// to the analyzer that consumes it.
type Directive struct {
	Pos  token.Position
	Name string // "guardedby" or "hotpath"
	Arg  string // mutex field name for guardedby, empty for hotpath
}

// ignores indexes valid ignore directives by filename and line, and
// owns the Suppression records so matches can be marked used.
type ignores struct {
	byLine map[string]map[int][]int // filename → line → suppression indices
	list   []Suppression
}

// suppresses reports whether d is covered by a directive on its own
// line or the line above, marking every covering directive as used.
func (ig *ignores) suppresses(d Diagnostic) bool {
	lines := ig.byLine[d.Pos.Filename]
	hit := false
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, i := range lines[line] {
			ig.list[i].Used = true
			hit = true
		}
	}
	return hit
}

// directiveArg splits a directive comment into (argument, ok): ok is
// false when text does not carry the directive, and the argument is the
// trimmed text after it ("" for a bare directive).
func directiveArg(text, directive string) (string, bool) {
	rest, found := strings.CutPrefix(text, directive)
	if !found || (rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t")) {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// scanDirectives walks the comments of files once, classifying every
// //ppcvet: directive: ignore directives build the suppression index,
// guardedby/hotpath are collected for their analyzers, and anything
// malformed becomes a diagnostic.
func scanDirectives(fset *token.FileSet, files []*ast.File) (*ignores, []Directive, []Diagnostic) {
	idx := &ignores{byLine: map[string]map[int][]int{}}
	var directives []Directive
	var malformed []Diagnostic
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				if reason, ok := directiveArg(c.Text, ignoreDirective); ok {
					if reason == "" {
						malformed = append(malformed, Diagnostic{
							Analyzer: "ppcvet",
							Pos:      pos,
							Message:  "//ppcvet:ignore requires a reason",
						})
						continue
					}
					lines := idx.byLine[pos.Filename]
					if lines == nil {
						lines = map[int][]int{}
						idx.byLine[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], len(idx.list))
					idx.list = append(idx.list, Suppression{Pos: pos, Reason: reason})
					continue
				}
				if field, ok := directiveArg(c.Text, guardedByDirective); ok {
					if field == "" {
						malformed = append(malformed, Diagnostic{
							Analyzer: "ppcvet",
							Pos:      pos,
							Message:  "//ppcvet:guardedby requires a mutex field name",
						})
						continue
					}
					directives = append(directives, Directive{Pos: pos, Name: "guardedby", Arg: field})
					continue
				}
				if arg, ok := directiveArg(c.Text, hotPathDirective); ok {
					if arg != "" {
						malformed = append(malformed, Diagnostic{
							Analyzer: "ppcvet",
							Pos:      pos,
							Message:  "//ppcvet:hotpath takes no argument",
						})
						continue
					}
					directives = append(directives, Directive{Pos: pos, Name: "hotpath"})
					continue
				}
				malformed = append(malformed, Diagnostic{
					Analyzer: "ppcvet",
					Pos:      pos,
					Message:  "unknown ppcvet directive; recognized: //ppcvet:ignore <reason>, //ppcvet:guardedby <field>, //ppcvet:hotpath",
				})
			}
		}
	}
	return idx, directives, malformed
}

// PackageDirectives returns the guardedby and hotpath directives of
// files, for the analyzers that consume them (lockguard, hotalloc).
// Malformed directives are not included — RunPackage reports those.
func PackageDirectives(fset *token.FileSet, files []*ast.File) []Directive {
	_, directives, _ := scanDirectives(fset, files)
	return directives
}
