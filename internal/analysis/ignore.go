package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments have the form
//
//	//ppcvet:ignore <reason>
//
// and silence every analyzer finding on the comment's own line and the
// line below it — covering both a trailing comment on the offending line
// and a standalone comment directly above it. The reason is mandatory: a
// bare //ppcvet:ignore (or any other //ppcvet: directive) is itself
// reported as a diagnostic from the pseudo-analyzer "ppcvet", and does
// not suppress anything.
const (
	directivePrefix = "//ppcvet:"
	ignoreDirective = "//ppcvet:ignore"
)

// ignores records, per filename, the lines carrying a valid ignore
// directive.
type ignores map[string]map[int]bool

func (ig ignores) suppresses(d Diagnostic) bool {
	lines := ig[d.Pos.Filename]
	return lines[d.Pos.Line] || lines[d.Pos.Line-1]
}

// ignoreIndex scans the comments of files for ppcvet directives. It
// returns the suppression index and a diagnostic for every malformed
// directive.
func ignoreIndex(fset *token.FileSet, files []*ast.File) (ignores, []Diagnostic) {
	idx := ignores{}
	var malformed []Diagnostic
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest, isIgnore := strings.CutPrefix(c.Text, ignoreDirective)
				if !isIgnore || (rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t")) {
					malformed = append(malformed, Diagnostic{
						Analyzer: "ppcvet",
						Pos:      pos,
						Message:  "unknown ppcvet directive; only //ppcvet:ignore <reason> is recognized",
					})
					continue
				}
				if strings.TrimSpace(rest) == "" {
					malformed = append(malformed, Diagnostic{
						Analyzer: "ppcvet",
						Pos:      pos,
						Message:  "//ppcvet:ignore requires a reason",
					})
					continue
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int]bool{}
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = true
			}
		}
	}
	return idx, malformed
}
