package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
}

// goList runs the go command in dir and decodes its JSON package stream.
func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// GoListDir resolves an import path to its source directory.
func GoListDir(importPath string) (string, error) {
	pkgs, err := goList(".", "list", "-json=Dir", importPath)
	if err != nil {
		return "", err
	}
	if len(pkgs) != 1 || pkgs[0].Dir == "" {
		return "", fmt.Errorf("go list %s: no directory", importPath)
	}
	return pkgs[0].Dir, nil
}

// exportMap builds an import-path → export-data-file index for the
// patterns' full dependency graphs. The -export flag makes the go
// command compile (or reuse from its build cache) export data for every
// importable package, which is what lets the type checker resolve
// imports without golang.org/x/tools package loading.
func exportMap(dir string, patterns []string) (map[string]string, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// exportImporter adapts an export map into the lookup function
// go/importer's gc importer expects.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// Load lists patterns with the go command (relative to dir), parses each
// matched package's non-test Go files, and type-checks them against
// export data for their dependencies. Test files are intentionally
// excluded: the determinism and observability invariants apply to
// simulator code, while tests may legitimately read the wall clock.
func Load(dir string, patterns []string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports, err := exportMap(dir, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := loadTarget(t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// loadTarget parses and type-checks one listed package against the
// shared export map. Each target gets its own FileSet and importer, so
// loadTarget calls for different targets are safe to run concurrently
// (the export map is read-only by then).
func loadTarget(t listedPkg, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	pkg, err := check(t.ImportPath, fset, files, exportImporter(fset, exports))
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
	}
	return pkg, nil
}

// check type-checks one package's files and bundles the result.
func check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	dir := ""
	if len(files) > 0 {
		dir = filepath.Dir(fset.Position(files[0].Pos()).Filename)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
