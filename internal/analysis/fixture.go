package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// RunFixture type-checks the single package rooted at dir, runs a over
// it (including //ppcvet:ignore handling), and compares the resulting
// diagnostics against the fixture's expectations. An expectation is a
// trailing comment on the offending line of the form
//
//	// want "regexp" "another regexp"
//
// where each quoted regexp must match the message of one diagnostic
// reported on that line. Lines without a want comment must produce no
// diagnostics. The returned error joins every mismatch; nil means the
// fixture passed. Fixture packages may import only the standard library.
func RunFixture(a *Analyzer, dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return fmt.Errorf("fixture %s: no Go files (%v)", dir, err)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("fixture %s: %v", dir, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[path] = true
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		exports, err = exportMap(dir, paths)
		if err != nil {
			return fmt.Errorf("fixture %s: %v", dir, err)
		}
	}
	pkg, err := check("fixture/"+filepath.Base(dir), fset, files, exportImporter(fset, exports))
	if err != nil {
		return fmt.Errorf("fixture %s: %v", dir, err)
	}
	diags := RunPackage(pkg, []*Analyzer{a})
	return matchWants(fset, files, diags)
}

// wantRE extracts the quoted regexps of a want comment: double-quoted
// (Go escaping applies) or backquoted (raw).
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// matchWants pairs diagnostics with // want expectations line by line.
func matchWants(fset *token.FileSet, files []*ast.File, diags []Diagnostic) error {
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllString(text, -1) {
					pattern, err := strconv.Unquote(m)
					if err != nil {
						return fmt.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, m, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	var failures []error
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			failures = append(failures, fmt.Errorf("unexpected diagnostic %s", d))
		}
	}
	var leftover []key
	for k := range wants {
		leftover = append(leftover, k)
	}
	sort.Slice(leftover, func(i, j int) bool {
		if leftover[i].file != leftover[j].file {
			return leftover[i].file < leftover[j].file
		}
		return leftover[i].line < leftover[j].line
	})
	for _, k := range leftover {
		for _, re := range wants[k] {
			if re != nil {
				failures = append(failures, fmt.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, re))
			}
		}
	}
	return errors.Join(failures...)
}

// FixtureDirs returns the fixture package directories under an
// analyzer's testdata/src tree.
func FixtureDirs(analyzerDir string) ([]string, error) {
	root := filepath.Join(analyzerDir, "testdata", "src")
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(root, e.Name()))
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("no fixture packages under %s", root)
	}
	return dirs, nil
}
