// Package analysis is a minimal static-analysis framework built only on
// the standard library's go/ast, go/parser, go/types and go/token
// packages. It exists so the repository can machine-check the invariants
// its experiments depend on — simulator determinism, float-time
// discipline and zero-cost observability — without importing
// golang.org/x/tools.
//
// The moving parts mirror x/tools/go/analysis at a much smaller scale: an
// Analyzer holds a Run function that inspects one type-checked package
// through a Pass and reports Diagnostics; Load builds packages with the
// go command's export data (see load.go); AnalyzePackage drives a set
// of analyzers over one package, applies //ppcvet:ignore suppression
// (see ignore.go), and records per-analyzer wall time; Vet fans the
// load-and-analyze pipeline across a bounded worker pool (see
// parallel.go); RunFixture checks an analyzer against a testdata
// package annotated with // want comments (see fixture.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and JSON output.
	Name string
	// Doc is a short description, shown by ppc-vet's usage text.
	Doc string
	// Run inspects the package behind pass and calls pass.Reportf for
	// every finding.
	Run func(pass *Pass)
}

// Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package to an analyzer's Run function.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// PackageResult is the full outcome of analyzing one package:
// surviving diagnostics, every suppression directive seen (with whether
// it actually fired), and per-analyzer wall time.
type PackageResult struct {
	Diagnostics  []Diagnostic
	Suppressions []Suppression
	Timings      map[string]time.Duration
}

// AnalyzePackage runs each analyzer over pkg, drops findings suppressed
// by a //ppcvet:ignore directive, appends diagnostics for malformed
// directives, and returns everything sorted by position, together with
// the suppression audit and per-analyzer timings.
func AnalyzePackage(pkg *Package, analyzers []*Analyzer) PackageResult {
	var all []Diagnostic
	timings := make(map[string]time.Duration, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
		}
		start := time.Now() //ppcvet:ignore analyzer wall-time report for ppc-vet -json, not simulation time
		a.Run(pass)
		timings[a.Name] = time.Since(start) //ppcvet:ignore analyzer wall-time report for ppc-vet -json, not simulation time
		all = append(all, pass.diags...)
	}
	idx, _, malformed := scanDirectives(pkg.Fset, pkg.Files)
	kept := malformed
	for _, d := range all {
		if !idx.suppresses(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return PackageResult{Diagnostics: kept, Suppressions: idx.list, Timings: timings}
}

// RunPackage is AnalyzePackage reduced to its diagnostics — the
// fixture runner and single-package callers need nothing else.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return AnalyzePackage(pkg, analyzers).Diagnostics
}

// CheckPackage type-checks a parsed file set with no importer — enough
// for import-free sources, which is what analyzer unit tests feed it.
// Fixture packages with imports go through RunFixture instead.
func CheckPackage(path string, fset *token.FileSet, files []*ast.File) (*Package, error) {
	return check(path, fset, files, nil)
}

// WalkStack traverses root depth-first, calling fn for every node with
// the stack of its ancestors (outermost first, excluding n itself).
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// Callee resolves the *types.Func a call invokes, or nil when the callee
// is not a declared function or method (builtins, conversions, calls of
// function-typed values).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ObserverCall reports whether call is a method call whose static
// receiver type is a named interface called "Observer" — the
// observability layer's contract type (internal/obs.Observer, or a local
// equivalent in fixtures). It returns the receiver expression and method
// name when it is.
func ObserverCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return nil, "", false
	}
	t := selection.Recv()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Name() != "Observer" {
		return nil, "", false
	}
	if _, isIface := named.Underlying().(*types.Interface); !isIface {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}
