// Package ctxflow enforces context.Context plumbing discipline across
// the serving stack, where cancellation is the backbone of per-request
// deadlines, client-disconnect teardown, and graceful drain:
//
//   - A context parameter must come first, matching the standard
//     library convention every call site reads by.
//   - context.Context must not be stored in struct fields: a stored
//     context outlives the call it scoped and silently decouples
//     cancellation from the work it governs. Named carrier types with a
//     documented reason (the engine's cooperative-cancellation Config,
//     the per-job scheduler) are allowlisted as pkgpath.TypeName.
//   - The cancel function returned by context.WithCancel, WithTimeout,
//     WithDeadline, or WithCancelCause must be visibly called on all
//     paths, which lexically means `defer cancel()` in the same block
//     after the assignment. Discarding it with _ is always a leak: the
//     derived context's timer and goroutine survive until the parent
//     dies.
package ctxflow

import (
	"go/ast"
	"go/types"

	"ppcsim/internal/analysis"
)

// New returns the analyzer. allow lists struct types permitted to carry
// a context field, as pkgpath.TypeName (for the fixture and test
// packages the package path is the one given to the loader, e.g.
// "fixture/clean.carrier").
func New(allow []string) *analysis.Analyzer {
	allowed := make(map[string]bool, len(allow))
	for _, a := range allow {
		allowed[a] = true
	}
	return &analysis.Analyzer{
		Name: "ctxflow",
		Doc:  "require context-first signatures, no stored contexts outside the allowlist, and deferred cancels",
		Run:  func(pass *analysis.Pass) { run(pass, allowed) },
	}
}

// Analyzer is the default instance with an empty allowlist.
var Analyzer = New(nil)

func run(pass *analysis.Pass, allowed map[string]bool) {
	for _, f := range pass.Files {
		checkSignatures(pass, f)
		checkStoredContexts(pass, f, allowed)
		checkCancels(pass, f)
	}
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkSignatures flags any function type — declaration, literal,
// interface method, or named function type — whose context parameter is
// not the first.
func checkSignatures(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ft, ok := n.(*ast.FuncType)
		if !ok || ft.Params == nil || len(ft.Params.List) == 0 {
			return true
		}
		first := pass.Info.TypeOf(ft.Params.List[0].Type)
		if first != nil && isContext(first) {
			// Context already leads; a second context parameter in a
			// merge helper is deliberate.
			return true
		}
		for _, field := range ft.Params.List[1:] {
			if t := pass.Info.TypeOf(field.Type); t != nil && isContext(t) {
				pass.Reportf(field.Pos(), "context.Context must be the first parameter")
			}
		}
		return true
	})
}

// checkStoredContexts flags struct fields of type context.Context
// outside the allowlist.
func checkStoredContexts(pass *analysis.Pass, f *ast.File, allowed map[string]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		qualified := pass.Pkg.Path() + "." + ts.Name.Name
		for _, field := range st.Fields.List {
			t := pass.Info.TypeOf(field.Type)
			if t == nil || !isContext(t) {
				continue
			}
			if allowed[qualified] {
				continue
			}
			pass.Reportf(field.Pos(), "context.Context stored in struct field of %s; pass it as a call parameter (or allowlist the carrier via -ctxflow.allow)", ts.Name.Name)
		}
		return true
	})
}

// cancelConstructors are the context functions returning (Context,
// CancelFunc) pairs whose cancel must not be lost.
var cancelConstructors = map[string]bool{
	"WithCancel":      true,
	"WithTimeout":     true,
	"WithDeadline":    true,
	"WithCancelCause": true,
}

// checkCancels finds every `ctx, cancel := context.WithX(...)`
// assignment and requires a `defer cancel()` later in the same block.
func checkCancels(pass *analysis.Pass, f *ast.File) {
	analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
			return
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := analysis.Callee(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" || !cancelConstructors[fn.Name()] {
			return
		}
		cancel, ok := ast.Unparen(assign.Lhs[1]).(*ast.Ident)
		if !ok {
			return
		}
		if cancel.Name == "_" {
			pass.Reportf(cancel.Pos(), "cancel function of context.%s discarded; the derived context leaks its timer until the parent dies", fn.Name())
			return
		}
		obj := pass.Info.ObjectOf(cancel)
		if obj == nil {
			return
		}
		if !deferredInBlock(pass, stack, assign, obj) {
			pass.Reportf(cancel.Pos(), "cancel function of context.%s is not deferred in this block; use `defer %s()` so every path releases the context", fn.Name(), cancel.Name)
		}
	})
}

// deferredInBlock reports whether a `defer cancel()` for obj follows
// the assignment in its innermost enclosing statement list.
func deferredInBlock(pass *analysis.Pass, stack []ast.Node, assign ast.Stmt, obj types.Object) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch parent := stack[i].(type) {
		case *ast.BlockStmt:
			list = parent.List
		case *ast.CaseClause:
			list = parent.Body
		case *ast.CommClause:
			list = parent.Body
		default:
			continue
		}
		seen := false
		for _, stmt := range list {
			if stmt == assign {
				seen = true
				continue
			}
			if !seen {
				continue
			}
			d, ok := stmt.(*ast.DeferStmt)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(d.Call.Fun).(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
				return true
			}
		}
		// Only the innermost statement list containing the assignment
		// matters: the cancel variable is scoped to it.
		return false
	}
	return false
}
