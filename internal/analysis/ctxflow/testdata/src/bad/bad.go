// Package bad exercises every ctxflow diagnostic: context parameters
// out of position, contexts stored in struct fields, and cancel
// functions that are discarded or not deferred.
package bad

import (
	"context"
	"time"
)

// TrailingContext buries the context behind the payload.
func TrailingContext(id int, ctx context.Context) error { // want `context\.Context must be the first parameter`
	return ctx.Err()
}

// MiddleContext has a context between two value parameters.
func MiddleContext(name string, ctx context.Context, n int) { // want `context\.Context must be the first parameter`
	_ = ctx
}

// literalCallback shows the check applies to function literals too.
var literalCallback = func(n int, ctx context.Context) { // want `context\.Context must be the first parameter`
	_ = ctx
}

// session stores a context for later, decoupling cancellation from the
// call that created it.
type session struct {
	id  int
	ctx context.Context // want `context\.Context stored in struct field of session`
}

// DroppedCancel throws away the cancel: the timeout timer lives until
// the parent context dies.
func DroppedCancel(ctx context.Context) context.Context {
	ctx, _ = context.WithTimeout(ctx, time.Second) // want `cancel function of context\.WithTimeout discarded`
	return ctx
}

// ForgottenCancel never calls cancel at all.
func ForgottenCancel(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent) // want `cancel function of context\.WithCancel is not deferred in this block`
	_ = cancel
	return work(ctx)
}

// LateManualCancel calls cancel on the happy path only; an early return
// would leak, so ctxflow insists on defer.
func LateManualCancel(parent context.Context) error {
	ctx, cancel := context.WithDeadline(parent, time.Now().Add(time.Second)) // want `cancel function of context\.WithDeadline is not deferred in this block`
	err := work(ctx)
	cancel()
	return err
}

func work(ctx context.Context) error { return ctx.Err() }
