// Package clean holds every context shape ctxflow must accept:
// context-first signatures, merge helpers whose first parameter is
// already a context, deferred cancels (including inside select and
// switch clauses), and an allowlisted carrier struct.
package clean

import (
	"context"
	"time"
)

// First is the canonical signature.
func First(ctx context.Context, id int) error {
	return ctx.Err()
}

// NoContext has nothing to check.
func NoContext(a, b int) int { return a + b }

// Merge deliberately takes two contexts; the first one leading makes
// the intent visible.
func Merge(ctx, aux context.Context) context.Context {
	if ctx.Err() != nil {
		return aux
	}
	return ctx
}

// Timeout defers its cancel immediately.
func Timeout(parent context.Context) error {
	ctx, cancel := context.WithTimeout(parent, time.Second)
	defer cancel()
	return work(ctx)
}

// Reassigned defers the cancel after other statements in the same
// block; defer-anywhere-after is enough, order of defers is the
// caller's business.
func Reassigned(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	ctx = context.WithValue(ctx, key{}, 1)
	defer cancel()
	return work(ctx)
}

// InClause derives and cancels inside a select clause body.
func InClause(parent context.Context, ch chan int) error {
	select {
	case <-ch:
		ctx, cancel := context.WithTimeout(parent, time.Second)
		defer cancel()
		return work(ctx)
	default:
		return nil
	}
}

// carrier is the allowlisted exception: a named type documented to own
// its context (mirrors the engine Config and coordinator jobRun).
type carrier struct {
	ctx context.Context
}

// Run consumes the carried context.
func (c *carrier) Run() error { return work(c.ctx) }

type key struct{}

func work(ctx context.Context) error { return ctx.Err() }
