package ctxflow

import (
	"path/filepath"
	"strings"
	"testing"

	"ppcsim/internal/analysis"
)

func TestFixtures(t *testing.T) {
	// The clean fixture's carrier struct is allowlisted, mirroring how
	// cmd/ppc-vet allowlists the engine Config and coordinator jobRun.
	cases := []struct {
		dir      string
		analyzer *analysis.Analyzer
	}{
		{"bad", Analyzer},
		{"clean", New([]string{"fixture/clean.carrier"})},
	}
	for _, c := range cases {
		if err := analysis.RunFixture(c.analyzer, filepath.Join("testdata", "src", c.dir)); err != nil {
			t.Errorf("fixture %s:\n%v", c.dir, err)
		}
	}
}

// TestDefaultFlagsCarrier proves the allowlist is what spares the clean
// fixture's carrier: the default analyzer must flag exactly that field.
func TestDefaultFlagsCarrier(t *testing.T) {
	err := analysis.RunFixture(Analyzer, filepath.Join("testdata", "src", "clean"))
	if err == nil {
		t.Fatal("default analyzer accepted the carrier struct; allowlist is dead code")
	}
	want := "context.Context stored in struct field of carrier"
	if got := err.Error(); !strings.Contains(got, want) {
		t.Fatalf("default analyzer error = %q, want mention of %q", got, want)
	}
}
