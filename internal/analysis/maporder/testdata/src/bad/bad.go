// Package bad exercises every maporder diagnostic.
package bad

import (
	"fmt"
	"sort"
	"strings"
)

// Keys collects map keys with no reordering sort afterwards.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys under map iteration`
	}
	return keys
}

// Print writes rows straight out of the iteration.
func Print(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `output written via fmt\.Printf`
	}
}

// Join commits bytes to a builder in iteration order.
func Join(m map[string]bool) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `output written via WriteString`
	}
	return b.String()
}

// Observer mirrors the simulator's observability contract.
type Observer interface{ Event(string) }

// Emit publishes events in iteration order; a nil guard does not make
// the order deterministic.
func Emit(m map[string]int, o Observer) {
	for k := range m {
		if o != nil {
			o.Event(k) // want `observer event Event emitted under map iteration`
		}
	}
}

// SortedWrongSlice sorts a different slice than the one appended to.
func SortedWrongSlice(m map[string]int) []string {
	var keys, other []string
	for k := range m {
		keys = append(keys, k) // want `append to keys under map iteration`
	}
	sort.Strings(other)
	return keys
}
