// Package clean holds map iterations whose order cannot reach any
// observable result.
package clean

import (
	"fmt"
	"sort"
)

// SortedKeys is the canonical collect-then-sort pattern.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SortSlice redeems the append through sort.Slice.
func SortSlice(m map[string]float64) []float64 {
	var vs []float64
	for _, v := range m {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Count only aggregates order-independent state.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// LocalPerIteration appends to a slice scoped to one iteration, so its
// order never spans the map walk.
func LocalPerIteration(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		pair := make([]int, 0, len(vs))
		pair = append(pair, vs...)
		total += len(pair)
	}
	return total
}

// PrintSorted writes output only after sorting outside the map loop.
func PrintSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// RangeSlice ranges over a slice; slice order is deterministic.
func RangeSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Suppressed shows a justified suppression of a debug dump.
func Suppressed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //ppcvet:ignore debug dump, order irrelevant
	}
}
