// Package maporder flags range statements over maps whose iteration
// order can leak into observable results: appending to a slice declared
// outside the loop without sorting it afterwards, emitting an observer
// event, or writing output from inside the loop body. Go randomizes map
// iteration order per run, so any of these silently breaks the
// simulator's byte-identical-output guarantee.
package maporder

import (
	"go/ast"
	"go/types"

	"ppcsim/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose order can reach appended slices, observer events, or output",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := pass.Info.Types[rs.X].Type
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			after := statementsAfter(stack, rs)
			checkBody(pass, rs, after)
		})
	}
}

// statementsAfter returns the statements that follow the range statement
// in its enclosing statement list — the region where a reordering sort
// would redeem an order-dependent append.
func statementsAfter(stack []ast.Node, rs *ast.RangeStmt) []ast.Stmt {
	var stmt ast.Stmt = rs
	for i := len(stack) - 1; i >= 0; i-- {
		if labeled, ok := stack[i].(*ast.LabeledStmt); ok && labeled.Stmt == stmt {
			stmt = labeled
			continue
		}
		var list []ast.Stmt
		switch parent := stack[i].(type) {
		case *ast.BlockStmt:
			list = parent.List
		case *ast.CaseClause:
			list = parent.Body
		case *ast.CommClause:
			list = parent.Body
		default:
			return nil
		}
		for j, s := range list {
			if s == stmt {
				return list[j+1:]
			}
		}
		return nil
	}
	return nil
}

func checkBody(pass *analysis.Pass, rs *ast.RangeStmt, after []ast.Stmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if target, isAppend := appendTarget(pass.Info, call); isAppend {
			if declaredWithin(pass.Info, target, rs) || sortedIn(pass, after, target) {
				return true
			}
			pass.Reportf(call.Pos(), "append to %s under map iteration without a later sort; element order becomes nondeterministic", types.ExprString(target))
			return true
		}
		if _, method, isObs := analysis.ObserverCall(pass.Info, call); isObs {
			pass.Reportf(call.Pos(), "observer event %s emitted under map iteration; event order becomes nondeterministic", method)
			return true
		}
		if name, isOut := outputCall(pass.Info, call); isOut {
			pass.Reportf(call.Pos(), "output written via %s under map iteration; output order becomes nondeterministic", name)
		}
		return true
	})
}

// appendTarget returns the first argument of a builtin append call.
func appendTarget(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	if b, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "append" {
		return nil, false
	}
	return call.Args[0], true
}

// declaredWithin reports whether the root object of expr is declared
// inside the range statement — a per-iteration slice whose order cannot
// outlive one iteration.
func declaredWithin(info *types.Info, expr ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			return false
		}
	}
}

// sortedIn reports whether any statement in list calls a sort or slices
// function over target (directly, or through a single wrapping call such
// as sort.Sort(byLen(target))).
func sortedIn(pass *analysis.Pass, list []ast.Stmt, target ast.Expr) bool {
	want := types.ExprString(target)
	for _, stmt := range list {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := analysis.Callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if types.ExprString(arg) == want {
					found = true
					return false
				}
				if wrap, isCall := ast.Unparen(arg).(*ast.CallExpr); isCall && len(wrap.Args) == 1 &&
					types.ExprString(wrap.Args[0]) == want {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// fmtWriters are the fmt functions that write to a stream.
var fmtWriters = map[string]bool{
	"Print": true, "Println": true, "Printf": true,
	"Fprint": true, "Fprintln": true, "Fprintf": true,
}

// writeMethods are method names that commit bytes to a writer or
// encoder, regardless of receiver type.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

// outputCall reports whether call writes output, returning a short name
// for the diagnostic.
func outputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch {
	case !isMethod && fn.Pkg().Path() == "fmt" && fmtWriters[fn.Name()]:
		return "fmt." + fn.Name(), true
	case !isMethod && fn.Pkg().Path() == "io" && fn.Name() == "WriteString":
		return "io.WriteString", true
	case isMethod && writeMethods[fn.Name()]:
		return fn.Name(), true
	}
	return "", false
}
