package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parsePkg type-checks one import-free source string.
func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := check("p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// reportInts is a toy analyzer that flags every integer literal.
var reportInts = &Analyzer{
	Name: "ints",
	Doc:  "flag integer literals",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.INT {
					pass.Reportf(lit.Pos(), "integer literal %s", lit.Value)
				}
				return true
			})
		}
	},
}

func TestRunPackageReportsAndSorts(t *testing.T) {
	pkg := parsePkg(t, "package p\n\nvar b = 2\nvar a = 1\n")
	diags := RunPackage(pkg, []*Analyzer{reportInts})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 3 || diags[1].Pos.Line != 4 {
		t.Errorf("diagnostics not sorted by position: %v", diags)
	}
	if diags[0].Analyzer != "ints" || !strings.Contains(diags[0].Message, "2") {
		t.Errorf("bad diagnostic: %+v", diags[0])
	}
}

func TestIgnoreSuppressesSameAndNextLine(t *testing.T) {
	pkg := parsePkg(t, `package p

var a = 1 //ppcvet:ignore trailing suppression

//ppcvet:ignore standalone suppression above the line
var b = 2

var c = 3
`)
	diags := RunPackage(pkg, []*Analyzer{reportInts})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "3") {
		t.Fatalf("want only the unsuppressed literal 3, got %v", diags)
	}
}

func TestIgnoreWithoutReasonIsDiagnosed(t *testing.T) {
	pkg := parsePkg(t, "package p\n\nvar a = 1 //ppcvet:ignore\n")
	diags := RunPackage(pkg, []*Analyzer{reportInts})
	if len(diags) != 2 {
		t.Fatalf("want the finding plus the malformed-directive diagnostic, got %v", diags)
	}
	var sawMissing, sawFinding bool
	for _, d := range diags {
		switch d.Analyzer {
		case "ppcvet":
			sawMissing = strings.Contains(d.Message, "requires a reason")
		case "ints":
			sawFinding = true
		}
	}
	if !sawMissing || !sawFinding {
		t.Errorf("reasonless ignore must not suppress and must be flagged: %v", diags)
	}
}

func TestUnknownDirectiveIsDiagnosed(t *testing.T) {
	pkg := parsePkg(t, "package p\n\n//ppcvet:silence all\nvar a = 1\n")
	diags := RunPackage(pkg, []*Analyzer{reportInts})
	var sawUnknown bool
	for _, d := range diags {
		if d.Analyzer == "ppcvet" && strings.Contains(d.Message, "unknown ppcvet directive") {
			sawUnknown = true
		}
	}
	if !sawUnknown {
		t.Errorf("unknown directive not flagged: %v", diags)
	}
}

func TestWalkStackTracksAncestors(t *testing.T) {
	pkg := parsePkg(t, "package p\n\nfunc f() { if true { _ = 1 } }\n")
	var depth int
	WalkStack(pkg.Files[0], func(n ast.Node, stack []ast.Node) {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Value == "1" {
			depth = len(stack)
			// The stack must contain, among others, the file, the func
			// declaration, and the if statement.
			var sawFunc, sawIf bool
			for _, a := range stack {
				switch a.(type) {
				case *ast.FuncDecl:
					sawFunc = true
				case *ast.IfStmt:
					sawIf = true
				}
			}
			if !sawFunc || !sawIf {
				t.Errorf("stack misses ancestors: %T", stack)
			}
		}
	})
	if depth == 0 {
		t.Fatal("literal not visited")
	}
}

func TestMatchWantsFlagsBothDirections(t *testing.T) {
	fset := token.NewFileSet()
	src := "package p\n\nvar a = 1 // want `integer literal 1`\nvar b = 2\n"
	f, err := parser.ParseFile(fset, "w.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	files := []*ast.File{f}
	ok := []Diagnostic{{Analyzer: "ints", Pos: token.Position{Filename: "w.go", Line: 3}, Message: "integer literal 1"}}
	if err := matchWants(fset, files, ok); err != nil {
		t.Errorf("matching diagnostic rejected: %v", err)
	}
	if err := matchWants(fset, files, nil); err == nil || !strings.Contains(err.Error(), "no diagnostic matched") {
		t.Errorf("unmatched want not reported: %v", err)
	}
	extra := append(ok, Diagnostic{Analyzer: "ints", Pos: token.Position{Filename: "w.go", Line: 4}, Message: "integer literal 2"})
	if err := matchWants(fset, files, extra); err == nil || !strings.Contains(err.Error(), "unexpected diagnostic") {
		t.Errorf("unexpected diagnostic not reported: %v", err)
	}
}
