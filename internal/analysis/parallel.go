package analysis

import (
	"errors"
	"runtime"
	"sort"
	"sync"
	"time"
)

// VetResult aggregates a multi-package analysis run. Diagnostics are in
// go-list package order (position-sorted within each package) and
// Suppressions are position-sorted, so the output is deterministic
// regardless of how many workers analyzed the tree.
type VetResult struct {
	Diagnostics  []Diagnostic
	Suppressions []Suppression
	Timings      map[string]time.Duration // analyzer name → summed wall time
	Packages     int
}

// Vet lists patterns with the go command, then fans the per-package
// parse → type-check → analyze pipeline across workers goroutines
// (bounded at GOMAXPROCS; values < 1 select it). The go command is
// still invoked once up front — listing and export-data compilation
// dominate a cold run and parallelize internally — but the pure-Go tail
// (parsing, type-checking, analyzer passes over ~15 packages) runs
// concurrently, each package on its own FileSet and importer.
func Vet(dir string, patterns []string, analyzers []*Analyzer, workers int) (VetResult, error) {
	targets, err := goList(dir, append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return VetResult{}, err
	}
	exports, err := exportMap(dir, patterns)
	if err != nil {
		return VetResult{}, err
	}
	loadable := targets[:0]
	for _, t := range targets {
		if len(t.GoFiles) > 0 {
			loadable = append(loadable, t)
		}
	}
	if workers < 1 || workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(loadable) && len(loadable) > 0 {
		workers = len(loadable)
	}

	results := make([]PackageResult, len(loadable))
	errs := make([]error, len(loadable))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				pkg, err := loadTarget(loadable[i], exports)
				if err != nil {
					errs[i] = err
					continue
				}
				results[i] = AnalyzePackage(pkg, analyzers)
			}
		}()
	}
	for i := range loadable {
		next <- i
	}
	close(next)
	wg.Wait()

	if err := errors.Join(errs...); err != nil {
		return VetResult{}, err
	}
	out := VetResult{Timings: make(map[string]time.Duration, len(analyzers)), Packages: len(loadable)}
	for _, r := range results {
		out.Diagnostics = append(out.Diagnostics, r.Diagnostics...)
		out.Suppressions = append(out.Suppressions, r.Suppressions...)
		for name, d := range r.Timings {
			out.Timings[name] += d
		}
	}
	sort.Slice(out.Suppressions, func(i, j int) bool {
		a, b := out.Suppressions[i], out.Suppressions[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out, nil
}
