// Package bad exercises every detrand diagnostic.
package bad

import (
	"math/rand"
	"time"
)

// Seeds derives values from ambient process state.
func Seeds() (int64, float64) {
	t := time.Now().UnixNano() // want `wall-clock time\.Now`
	f := rand.Float64()        // want `global math/rand Float64`
	return t, f
}

// Elapsed reads the wall clock through time.Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock time\.Since`
}

var source = rand.NewSource(42)

// FromVariable hides the seed behind a variable, so the call site no
// longer pins the stream.
func FromVariable() *rand.Rand {
	return rand.New(source) // want `rand\.New argument must be a direct rand\.NewSource`
}

// Shuffled draws a permutation from the global source.
func Shuffled(n int) []int {
	return rand.Perm(n) // want `global math/rand Perm`
}

// Reseeded mutates the global source.
func Reseeded() {
	rand.Seed(7) // want `global math/rand Seed`
}
