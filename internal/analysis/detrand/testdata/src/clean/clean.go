// Package clean holds the sanctioned randomness patterns: every stream
// is a *rand.Rand pinned to an explicit seed at the construction site.
package clean

import "math/rand"

// Stream is the canonical seeded-generator construction.
func Stream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Draws uses methods of a seeded generator, never the global source.
func Draws(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, rng.Intn(100))
	}
	return out
}

// Zipfian builds a distribution over a seeded generator; the NewZipf
// constructor itself draws nothing.
func Zipfian(seed int64) *rand.Zipf {
	rng := rand.New(rand.NewSource(seed))
	return rand.NewZipf(rng, 1.2, 1, 100)
}

// Sanctioned shows a justified suppression: the finding is silenced by
// an ignore directive carrying a reason.
func Sanctioned() float64 {
	return rand.Float64() //ppcvet:ignore demo of a justified suppression
}
