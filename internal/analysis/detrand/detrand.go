// Package detrand checks that simulator code stays a deterministic
// function of (trace, algorithm, disks, seed): no wall-clock reads and
// no draws from the global math/rand source. All randomness must flow
// through an explicitly seeded *rand.Rand, the pattern used by
// internal/trace/gen.go, internal/layout, and the hint corruption in
// internal/engine.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"ppcsim/internal/analysis"
)

// constructors are the math/rand package-level functions that do not
// touch the global source; everything else at package level does.
var constructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 generator constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// New returns the analyzer. Packages whose import path starts with one
// of the exempt prefixes are skipped entirely (e.g. a benchmark CLI that
// legitimately reads the wall clock).
func New(exempt []string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "detrand",
		Doc:  "forbid wall-clock reads and global math/rand draws in simulator code",
		Run:  func(pass *analysis.Pass) { run(pass, exempt) },
	}
}

// Analyzer is the default, exemption-free instance.
var Analyzer = New(nil)

func run(pass *analysis.Pass, exempt []string) {
	for _, prefix := range exempt {
		if strings.HasPrefix(pass.Pkg.Path(), prefix) {
			return
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods (e.g. (*rand.Rand).Intn on a seeded generator)
				// are exactly the sanctioned pattern.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				switch fn.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(), "wall-clock time.%s in simulator code; simulation time must come from the engine clock", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !constructors[fn.Name()] {
					pass.Reportf(call.Pos(), "global math/rand %s draws from ambient process state; use a seeded *rand.Rand", fn.Name())
					return true
				}
				if fn.Name() == "New" && !seededSource(pass, call) {
					pass.Reportf(call.Pos(), "rand.New argument must be a direct rand.NewSource(seed) call so the stream is reproducibly seeded")
				}
			}
			return true
		})
	}
}

// seededSource reports whether the sole argument of a rand.New call is
// itself a rand.NewSource / NewPCG / NewChaCha8 constructor call, tying
// the generator to an explicit seed at the call site.
func seededSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	src, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.Callee(pass.Info, src)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		return constructors[fn.Name()] && fn.Name() != "New"
	}
	return false
}
