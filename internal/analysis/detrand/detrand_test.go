package detrand

import (
	"path/filepath"
	"testing"

	"ppcsim/internal/analysis"
)

func TestFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "clean"} {
		if err := analysis.RunFixture(Analyzer, filepath.Join("testdata", "src", dir)); err != nil {
			t.Errorf("fixture %s:\n%v", dir, err)
		}
	}
}

func TestExemptPrefixSkipsPackage(t *testing.T) {
	a := New([]string{"fixture/"})
	if err := analysis.RunFixture(a, filepath.Join("testdata", "src", "clean")); err != nil {
		t.Errorf("exempt clean fixture: %v", err)
	}
	// With the whole fixture tree exempt, the bad package's want
	// comments must go unmatched — RunFixture reports that as an error.
	if err := analysis.RunFixture(a, filepath.Join("testdata", "src", "bad")); err == nil {
		t.Error("exempt bad fixture: analyzer still ran despite exemption")
	}
}
