// Package clean holds every guard form obsguard accepts.
package clean

// Event is a stand-in for the simulator's event payloads.
type Event struct{ TMs float64 }

// Observer mirrors internal/obs.Observer: nil means disabled.
type Observer interface {
	RefServed(Event)
	RunEnd(float64)
}

// Engine mirrors the simulator state that carries an optional observer.
type Engine struct{ obs Observer }

// Step uses the canonical then-branch guard.
func (e *Engine) Step() {
	if e.obs != nil {
		e.obs.RefServed(Event{TMs: 1})
	}
}

// Combined guards inside a conjunction.
func (e *Engine) Combined(ok bool) {
	if ok && e.obs != nil {
		e.obs.RefServed(Event{})
	}
}

// EarlyReturn removes the nil case before emitting.
func (e *Engine) EarlyReturn() {
	if e.obs == nil {
		return
	}
	e.obs.RunEnd(0)
}

// ElseBranch emits where the == nil condition is false.
func (e *Engine) ElseBranch() {
	if e.obs == nil {
		_ = 0
	} else {
		e.obs.RunEnd(1)
	}
}

// Hook creates the emitting closure only when an observer is attached —
// the engine's OnStart/OnEvict installation pattern.
func (e *Engine) Hook() func() {
	if e.obs != nil {
		return func() { e.obs.RunEnd(2) }
	}
	return nil
}

// Local guards a rebound observer value.
func (e *Engine) Local() {
	if o := e.obs; o != nil {
		o.RunEnd(3)
	}
}

// LoopGuard skips nil inside the loop with continue.
func (e *Engine) LoopGuard(events []Event) {
	for _, ev := range events {
		if e.obs == nil {
			continue
		}
		e.obs.RefServed(ev)
	}
}

// Recorder is a concrete implementation; calls on concrete observers
// need no guard, only the nilable interface does.
type Recorder struct{}

func (*Recorder) RefServed(Event) {}
func (*Recorder) RunEnd(float64)  {}
func Use(r *Recorder)             { r.RefServed(Event{}) }

// Suppressed shows a justified suppression: the caller's contract
// guarantees a non-nil observer.
func MustEmit(o Observer) {
	o.RunEnd(4) //ppcvet:ignore caller contract guarantees non-nil observer
}
