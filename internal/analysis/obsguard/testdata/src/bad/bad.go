// Package bad exercises every obsguard diagnostic.
package bad

// Event is a stand-in for the simulator's event payloads.
type Event struct{ TMs float64 }

// Observer mirrors internal/obs.Observer: nil means disabled.
type Observer interface {
	RefServed(Event)
	RunEnd(float64)
}

// Engine mirrors the simulator state that carries an optional observer.
type Engine struct{ obs Observer }

// Step emits with no guard at all.
func (e *Engine) Step() {
	e.obs.RefServed(Event{TMs: 1}) // want `RefServed called without a dominating nil check on e\.obs`
}

// Finish guards on the wrong condition.
func (e *Engine) Finish(elapsed float64) {
	if elapsed > 0 {
		e.obs.RunEnd(elapsed) // want `RunEnd called without a dominating nil check`
	}
}

// Inverted calls inside the nil branch.
func (e *Engine) Inverted() {
	if e.obs == nil {
		e.obs.RunEnd(0) // want `RunEnd called without a dominating nil check`
	}
}

// OrGuard is unsound: the disjunction can be true with a nil observer.
func (e *Engine) OrGuard(force bool) {
	if e.obs != nil || force {
		e.obs.RefServed(Event{}) // want `RefServed called without a dominating nil check`
	}
}

// WrongReceiver checks one observer and calls another.
func (e *Engine) WrongReceiver(other Observer) {
	if e.obs != nil {
		other.RunEnd(1) // want `RunEnd called without a dominating nil check on other`
	}
}

// NoExit checks nil but falls through instead of leaving the block.
func (e *Engine) NoExit() {
	if e.obs == nil {
		_ = 0
	}
	e.obs.RunEnd(2) // want `RunEnd called without a dominating nil check`
}
