// Package obsguard enforces the observability layer's
// zero-cost-when-disabled contract: every method call on an
// Observer-typed value must be dominated by a nil check on that value,
// so a run with no observer attached pays only the check. The analysis
// is lexical: a call is guarded when it sits in the then-branch of
// `if recv != nil` (or the else-branch of `if recv == nil`), possibly
// inside a function literal created under such a guard, or when an
// earlier statement in an enclosing block is `if recv == nil` followed
// by return/continue/break/panic.
//
// Calls on concrete observer implementations (say *obs.Recorder) are
// not flagged — only calls through the Observer interface, where the
// value may legitimately be nil to mean "observation disabled".
package obsguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"ppcsim/internal/analysis"
)

// New returns the analyzer. Packages whose import path is listed in skip
// are not checked; the driver skips ppcsim/internal/obs, which owns the
// contract and fans events out to members its Tee constructor has
// already nil-filtered.
func New(skip []string) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "obsguard",
		Doc:  "require a dominating nil check on every Observer interface method call",
		Run:  func(pass *analysis.Pass) { run(pass, skip) },
	}
}

// Analyzer is the default instance with no skipped packages.
var Analyzer = New(nil)

func run(pass *analysis.Pass, skip []string) {
	for _, path := range skip {
		if pass.Pkg.Path() == path {
			return
		}
	}
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			recv, method, isObs := analysis.ObserverCall(pass.Info, call)
			if !isObs {
				return
			}
			if guarded(stack, n, types.ExprString(recv)) {
				return
			}
			pass.Reportf(call.Pos(), "Observer method %s called without a dominating nil check on %s", method, types.ExprString(recv))
		})
	}
}

// guarded walks the ancestor stack of the call looking for either guard
// form. Crossing function-literal boundaries is deliberate: a closure
// created under `if recv != nil` only exists when the observer was
// attached, which is exactly the engine's hook-installation pattern.
func guarded(stack []ast.Node, node ast.Node, recv string) bool {
	child := node
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.IfStmt:
			if parent.Body == child && condChecks(parent.Cond, recv, token.NEQ) {
				return true
			}
			if parent.Else == child && condChecks(parent.Cond, recv, token.EQL) {
				return true
			}
		case *ast.BlockStmt:
			if earlyExitBefore(parent.List, child, recv) {
				return true
			}
		case *ast.CaseClause:
			if earlyExitBefore(parent.Body, child, recv) {
				return true
			}
		case *ast.CommClause:
			if earlyExitBefore(parent.Body, child, recv) {
				return true
			}
		}
		child = stack[i]
	}
	return false
}

// condChecks reports whether cond guarantees `recv <op> nil` when the
// guarded branch runs: for the then-branch (op NEQ) the check must sit
// on the && spine of cond; for the else-branch (op EQL) on the || spine,
// since the else-branch runs only when every disjunct is false.
func condChecks(cond ast.Expr, recv string, op token.Token) bool {
	spineOp := token.LAND
	if op == token.EQL {
		spineOp = token.LOR
	}
	for _, term := range spine(cond, spineOp) {
		bin, ok := term.(*ast.BinaryExpr)
		if !ok || bin.Op != op {
			continue
		}
		if isNilCheckOf(bin, recv) {
			return true
		}
	}
	return false
}

// spine flattens nested binary expressions joined by op.
func spine(e ast.Expr, op token.Token) []ast.Expr {
	e = ast.Unparen(e)
	if bin, ok := e.(*ast.BinaryExpr); ok && bin.Op == op {
		return append(spine(bin.X, op), spine(bin.Y, op)...)
	}
	return []ast.Expr{e}
}

// isNilCheckOf reports whether bin compares recv against nil.
func isNilCheckOf(bin *ast.BinaryExpr, recv string) bool {
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNil(y) {
		return types.ExprString(x) == recv
	}
	if isNil(x) {
		return types.ExprString(y) == recv
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// earlyExitBefore reports whether a statement preceding child in list is
// `if recv == nil { ...; <terminating stmt> }`, which removes the nil
// case from everything after it.
func earlyExitBefore(list []ast.Stmt, child ast.Node, recv string) bool {
	for _, stmt := range list {
		if stmt == child {
			return false
		}
		ifStmt, ok := stmt.(*ast.IfStmt)
		if !ok || ifStmt.Else != nil || ifStmt.Body == nil || len(ifStmt.Body.List) == 0 {
			continue
		}
		if !condChecks(ifStmt.Cond, recv, token.EQL) {
			continue
		}
		// For the then-branch of `if recv == nil || ...` to act as a
		// guard for later statements it must terminate abruptly.
		if terminates(ifStmt.Body.List[len(ifStmt.Body.List)-1]) {
			return true
		}
	}
	return false
}

// terminates reports whether stmt abruptly leaves the enclosing block.
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK || s.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
