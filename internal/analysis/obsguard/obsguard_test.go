package obsguard

import (
	"path/filepath"
	"testing"

	"ppcsim/internal/analysis"
)

func TestFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "clean"} {
		if err := analysis.RunFixture(Analyzer, filepath.Join("testdata", "src", dir)); err != nil {
			t.Errorf("fixture %s:\n%v", dir, err)
		}
	}
}

func TestSkipListDisablesPackage(t *testing.T) {
	a := New([]string{"fixture/bad"})
	// With the bad fixture's package path skipped, its want comments go
	// unmatched, which RunFixture reports as an error.
	if err := analysis.RunFixture(a, filepath.Join("testdata", "src", "bad")); err == nil {
		t.Error("skip list had no effect: analyzer still reported diagnostics")
	}
}
