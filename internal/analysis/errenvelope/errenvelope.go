// Package errenvelope enforces the v1 serving API's single error shape:
// every non-2xx HTTP response in the serving packages must carry the
// shared ErrorEnvelope JSON body (built from *ppcsim.ConfigError and
// friends by serve.Envelope), so clients can branch on one stable
// {"error":{"code",...}} form no matter which handler failed.
//
// Within the configured package scope the analyzer reports
//
//   - any call to http.Error, which writes a bare text/plain body the
//     v1 clients cannot parse;
//   - any direct WriteHeader call with a constant 4xx/5xx status
//     outside the named helper functions — the status must travel
//     through a helper so the body travels with it;
//   - any call to a helper with a constant 4xx/5xx status whose payload
//     is not the envelope type: an error status with a non-envelope
//     body is exactly the inconsistency the envelope exists to prevent.
//
// Statuses that are not compile-time constants are not checked at the
// call site; they are the helpers' own business (WriteError maps them
// through Envelope).
package errenvelope

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"ppcsim/internal/analysis"
)

// Config selects where and how the envelope discipline applies.
type Config struct {
	// Scope lists package-path prefixes under the discipline.
	Scope []string
	// Transport names the raw (w, status, payload) helpers, matched by
	// bare name within scope. Their own WriteHeader calls are exempt;
	// in exchange, any call to them with a constant error status must
	// pass the envelope type as the payload.
	Transport []string
	// Blessed names the envelope-constructing writers (they build the
	// envelope from an error themselves, so their call sites carry no
	// payload to check). Their bodies are exempt like Transport's.
	Blessed []string
	// Envelope is the name of the blessed envelope type.
	Envelope string
}

// New returns an errenvelope analyzer for the given configuration.
func New(cfg Config) *analysis.Analyzer {
	transport := make(map[string]bool, len(cfg.Transport))
	for _, h := range cfg.Transport {
		transport[h] = true
	}
	exempt := make(map[string]bool, len(cfg.Transport)+len(cfg.Blessed))
	for _, h := range append(cfg.Blessed, cfg.Transport...) {
		exempt[h] = true
	}
	return &analysis.Analyzer{
		Name: "errenvelope",
		Doc:  "require error responses in the serving packages to use the shared JSON error envelope",
		Run:  func(pass *analysis.Pass) { run(pass, cfg, transport, exempt) },
	}
}

// Analyzer is the production instance covering the serving stack.
var Analyzer = New(Config{
	Scope:     []string{"ppcsim/internal/serve"},
	Transport: []string{"writeJSON"},
	Blessed:   []string{"WriteError"},
	Envelope:  "ErrorEnvelope",
})

func run(pass *analysis.Pass, cfg Config, transport, exempt map[string]bool) {
	if !inScope(pass.Pkg.Path(), cfg.Scope) {
		return
	}
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if isHTTPError(pass, call) {
				pass.Reportf(call.Pos(), "http.Error writes a bare text body; use the %s envelope helper instead", cfg.Envelope)
				return
			}
			if status, ok := writeHeaderStatus(pass, call); ok && status >= 400 && !insideHelper(stack, exempt) {
				pass.Reportf(call.Pos(), "WriteHeader(%d) outside an envelope helper; error statuses must carry the %s body", status, cfg.Envelope)
				return
			}
			if fn := analysis.Callee(pass.Info, call); fn != nil &&
				transport[fn.Name()] && fn.Pkg() != nil && inScope(fn.Pkg().Path(), cfg.Scope) &&
				len(call.Args) == 3 {
				status, ok := intConst(pass, call.Args[1])
				if ok && status >= 400 && !isEnvelope(pass, call.Args[2], cfg.Envelope) {
					pass.Reportf(call.Pos(), "%s called with status %d but a non-%s payload; error bodies must use the envelope", fn.Name(), status, cfg.Envelope)
				}
			}
		})
	}
}

func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, strings.TrimSuffix(s, "/")+"/") {
			return true
		}
	}
	return false
}

// isHTTPError reports whether call is net/http.Error.
func isHTTPError(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.Info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "Error"
}

// writeHeaderStatus matches a WriteHeader method call with a constant
// argument and returns the status.
func writeHeaderStatus(pass *analysis.Pass, call *ast.CallExpr) (int64, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return 0, false
	}
	if selection := pass.Info.Selections[sel]; selection == nil || selection.Kind() != types.MethodVal {
		return 0, false
	}
	return intConst(pass, call.Args[0])
}

// intConst evaluates e as a compile-time integer constant.
func intConst(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// insideHelper reports whether the node under the stack is lexically
// inside a function declaration named as a helper.
func insideHelper(stack []ast.Node, helpers map[string]bool) bool {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok && helpers[fd.Name.Name] {
			return true
		}
	}
	return false
}

// isEnvelope reports whether e's static type is (a pointer to) the
// named envelope type.
func isEnvelope(pass *analysis.Pass, e ast.Expr, envelope string) bool {
	t := pass.Info.TypeOf(e)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == envelope
}
