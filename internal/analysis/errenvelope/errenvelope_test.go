package errenvelope

import (
	"path/filepath"
	"testing"

	"ppcsim/internal/analysis"
)

// fixtureAnalyzer applies the production rules to the fixture package
// paths; cmd/ppc-vet builds the same instance for fixture mode.
func fixtureAnalyzer() *analysis.Analyzer {
	return New(Config{
		Scope:     []string{"fixture/"},
		Transport: []string{"writeJSON"},
		Blessed:   []string{"WriteError"},
		Envelope:  "ErrorEnvelope",
	})
}

func TestFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "clean"} {
		if err := analysis.RunFixture(fixtureAnalyzer(), filepath.Join("testdata", "src", dir)); err != nil {
			t.Errorf("fixture %s:\n%v", dir, err)
		}
	}
}

// TestOutOfScopePackageIsSkipped proves the scope gate: the bad fixture
// is full of violations, but an analyzer scoped elsewhere must stay
// silent on it.
func TestOutOfScopePackageIsSkipped(t *testing.T) {
	a := New(Config{
		Scope:     []string{"ppcsim/internal/serve"},
		Transport: []string{"writeJSON"},
		Envelope:  "ErrorEnvelope",
	})
	if err := analysis.RunFixture(a, filepath.Join("testdata", "src", "bad")); err == nil {
		t.Fatal("out-of-scope analyzer satisfied the bad fixture's want comments; scope gate is dead")
	}
	// The failure must be unmatched wants (nothing reported), not
	// unexpected diagnostics.
	diagsErr := analysis.RunFixture(a, filepath.Join("testdata", "src", "clean"))
	if diagsErr != nil {
		t.Fatalf("out-of-scope analyzer reported on the clean fixture: %v", diagsErr)
	}
}
