// Package clean holds every response shape errenvelope must accept:
// success statuses written directly or through the helper, error
// statuses carried by the envelope, and the helpers' own internals.
package clean

import "net/http"

// ErrorEnvelope mirrors the serving package's envelope type.
type ErrorEnvelope struct {
	Message string `json:"message"`
}

// OKHeader writes a success status directly; only error statuses need
// the envelope.
func OKHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
}

// OKBody sends a success payload through the helper.
func OKBody(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Enveloped routes an error through WriteError, the canonical path.
func Enveloped(w http.ResponseWriter) {
	WriteError(w, http.StatusBadRequest, "bad disks")
}

// EnvelopeByValue passes the envelope directly at an error status.
func EnvelopeByValue(w http.ResponseWriter) {
	writeJSON(w, http.StatusServiceUnavailable, ErrorEnvelope{Message: "draining"})
}

// EnvelopeByPointer also counts: same body on the wire.
func EnvelopeByPointer(w http.ResponseWriter) {
	writeJSON(w, http.StatusBadGateway, &ErrorEnvelope{Message: "upstream"})
}

// writeJSON may call WriteHeader with any status: it is the helper.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	_ = v
}

// WriteError builds the envelope; its status is a variable, so the
// call-site constant check does not apply inside it.
func WriteError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorEnvelope{Message: msg})
}
