// Package bad exercises every errenvelope diagnostic: bare http.Error,
// direct error-status WriteHeader outside a helper, and a helper call
// whose error body is not the envelope.
package bad

import "net/http"

// ErrorEnvelope stands in for the serving package's envelope type.
type ErrorEnvelope struct {
	Message string `json:"message"`
}

// BareError writes text/plain, invisible to envelope-parsing clients.
func BareError(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error writes a bare text body`
}

// DirectHeader sets an error status by hand, so no body travels with it.
func DirectHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusBadRequest) // want `WriteHeader\(400\) outside an envelope helper`
}

// NonEnvelopeBody routes an error status through the helper but with an
// ad-hoc map body.
func NonEnvelopeBody(w http.ResponseWriter) {
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"oops": "down"}) // want `writeJSON called with status 503 but a non-ErrorEnvelope payload`
}

// writeJSON is the blessed transport helper; its own WriteHeader call
// is exempt, and error-status calls into it are checked at the caller.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	_ = v
}
