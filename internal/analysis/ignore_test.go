package analysis

import (
	"go/ast"
	"go/token"
	"strings"
	"testing"
)

// reportStrings is a second toy analyzer so tests can aim two analyzers
// at one site.
var reportStrings = &Analyzer{
	Name: "strs",
	Doc:  "flag string literals",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					pass.Reportf(lit.Pos(), "string literal %s", lit.Value)
				}
				return true
			})
		}
	},
}

// One finding covered by two directives — a standalone ignore above and
// a trailing ignore on the line — must mark both used: neither is stale
// while the finding exists.
func TestStackedDirectivesBothMarkUsed(t *testing.T) {
	pkg := parsePkg(t, `package p

//ppcvet:ignore belt
var a = 1 //ppcvet:ignore suspenders
`)
	res := AnalyzePackage(pkg, []*Analyzer{reportInts})
	if len(res.Diagnostics) != 0 {
		t.Fatalf("finding not suppressed: %v", res.Diagnostics)
	}
	if len(res.Suppressions) != 2 {
		t.Fatalf("got %d suppressions, want 2: %+v", len(res.Suppressions), res.Suppressions)
	}
	for _, s := range res.Suppressions {
		if !s.Used {
			t.Errorf("suppression %q at line %d not marked used", s.Reason, s.Pos.Line)
		}
	}
}

// Block comments are never directives: commented-out code cannot
// smuggle in a suppression, and a ppcvet-looking block comment is not
// reported as malformed either.
func TestBlockCommentIsNotADirective(t *testing.T) {
	pkg := parsePkg(t, `package p

/*ppcvet:ignore hidden in a block comment*/
var a = 1
var b = 2 /* ppcvet:ignore also not a directive */
`)
	res := AnalyzePackage(pkg, []*Analyzer{reportInts})
	if len(res.Diagnostics) != 2 {
		t.Fatalf("block comments must not suppress: got %v, want both literals flagged", res.Diagnostics)
	}
	for _, d := range res.Diagnostics {
		if d.Analyzer == "ppcvet" {
			t.Errorf("block comment misread as a malformed directive: %v", d)
		}
	}
	if len(res.Suppressions) != 0 {
		t.Errorf("block comments recorded as suppressions: %+v", res.Suppressions)
	}
}

// A trailing directive covers its own line; a standalone one covers the
// line below — and neither reaches any further.
func TestDirectiveCoverageAboveVsTrailing(t *testing.T) {
	pkg := parsePkg(t, `package p

var a = 1 //ppcvet:ignore trailing covers its own line

//ppcvet:ignore standalone covers the next line
var b = 2
var c = 3
`)
	res := AnalyzePackage(pkg, []*Analyzer{reportInts})
	if len(res.Diagnostics) != 1 || !strings.Contains(res.Diagnostics[0].Message, "3") {
		t.Fatalf("want only literal 3 reported, got %v", res.Diagnostics)
	}
	if len(res.Suppressions) != 2 {
		t.Fatalf("got %d suppressions, want 2", len(res.Suppressions))
	}
	for _, s := range res.Suppressions {
		if !s.Used {
			t.Errorf("suppression %q not marked used", s.Reason)
		}
	}
}

// One directive suppresses every analyzer reporting on the site — and a
// single hit from either analyzer is enough to keep it from going
// stale.
func TestOneDirectiveSuppressesTwoAnalyzers(t *testing.T) {
	pkg := parsePkg(t, `package p

//ppcvet:ignore both analyzers fire here
var a, b = 1, "x"
var c, d = 2, "y"
`)
	res := AnalyzePackage(pkg, []*Analyzer{reportInts, reportStrings})
	if len(res.Diagnostics) != 2 {
		t.Fatalf("want the two unsuppressed findings on the last line, got %v", res.Diagnostics)
	}
	for _, d := range res.Diagnostics {
		if d.Pos.Line != 5 {
			t.Errorf("suppressed-line finding leaked: %v", d)
		}
	}
	if len(res.Suppressions) != 1 || !res.Suppressions[0].Used {
		t.Fatalf("directive covering two analyzers must be one used suppression: %+v", res.Suppressions)
	}
}

// A directive whose line produces no findings is recorded but not used
// — the raw material for the -suppressions stale audit.
func TestUnusedSuppressionIsStale(t *testing.T) {
	pkg := parsePkg(t, `package p

var a = 1 //ppcvet:ignore nothing here anymore... wait, the literal
var b = "quiet" //ppcvet:ignore strings are not flagged by ints
`)
	res := AnalyzePackage(pkg, []*Analyzer{reportInts})
	if len(res.Diagnostics) != 0 {
		t.Fatalf("unexpected diagnostics: %v", res.Diagnostics)
	}
	if len(res.Suppressions) != 2 {
		t.Fatalf("got %d suppressions, want 2", len(res.Suppressions))
	}
	byLine := map[int]bool{}
	for _, s := range res.Suppressions {
		byLine[s.Pos.Line] = s.Used
	}
	if !byLine[3] {
		t.Error("line 3 suppression covers a real finding; must be used")
	}
	if byLine[4] {
		t.Error("line 4 suppression covers nothing; must be stale")
	}
}

// Per-analyzer wall time is recorded for every analyzer that ran, even
// when it reports nothing.
func TestAnalyzePackageRecordsTimings(t *testing.T) {
	pkg := parsePkg(t, "package p\n\nvar a = 1\n")
	res := AnalyzePackage(pkg, []*Analyzer{reportInts, reportStrings})
	for _, name := range []string{"ints", "strs"} {
		if _, ok := res.Timings[name]; !ok {
			t.Errorf("no timing recorded for %s: %v", name, res.Timings)
		}
	}
}

// Vet fans packages across workers but must produce byte-identical
// ordering to a serial run: diagnostics in go-list package order,
// position-sorted within each package.
func TestVetDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("go-list round trips in -short mode")
	}
	serial, err := Vet("..", []string{"ppcsim/internal/analysis/..."}, []*Analyzer{reportInts}, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Vet("..", []string{"ppcsim/internal/analysis/..."}, []*Analyzer{reportInts}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Diagnostics) == 0 {
		t.Fatal("toy analyzer found no integer literals in the analysis tree; test is vacuous")
	}
	if len(serial.Diagnostics) != len(parallel.Diagnostics) {
		t.Fatalf("serial %d diagnostics, parallel %d", len(serial.Diagnostics), len(parallel.Diagnostics))
	}
	for i := range serial.Diagnostics {
		if serial.Diagnostics[i].String() != parallel.Diagnostics[i].String() {
			t.Fatalf("diagnostic %d differs:\nserial:   %s\nparallel: %s",
				i, serial.Diagnostics[i], parallel.Diagnostics[i])
		}
	}
	if serial.Packages != parallel.Packages {
		t.Errorf("package counts differ: %d vs %d", serial.Packages, parallel.Packages)
	}
}
