package goroleak

import (
	"path/filepath"
	"testing"

	"ppcsim/internal/analysis"
)

func TestFixtures(t *testing.T) {
	for _, dir := range []string{"bad", "clean"} {
		if err := analysis.RunFixture(Analyzer, filepath.Join("testdata", "src", dir)); err != nil {
			t.Errorf("fixture %s:\n%v", dir, err)
		}
	}
}
