// Package bad exercises every goroleak diagnostic.
package bad

import "context"

// Spin launches a busy loop with no way out.
func Spin() {
	go func() { // want `goroutine has no visible termination path`
		for {
			work()
		}
	}()
}

// PollForever selects inside the loop but no case ever leaves it: the
// break targets the select, not the for.
func PollForever(ctx context.Context, ch chan int) {
	go func() { // want `goroutine has no visible termination path`
		for {
			select {
			case <-ch:
				work()
			default:
				break
			}
		}
	}()
}

// spinner is a named worker with an unbounded loop.
func spinner() {
	for {
		work()
	}
}

// SpawnNamed launches it by name; the declaration is in this package,
// so the leak is visible.
func SpawnNamed() {
	go spinner() // want `goroutine has no visible termination path`
}

// InnerExitOnly breaks out of the inner loop while the outer spins on.
func InnerExitOnly(items []int) {
	go func() { // want `goroutine has no visible termination path`
		for {
			for _, it := range items {
				if it == 0 {
					break
				}
				work()
			}
		}
	}()
}

func work() {}
