// Package clean holds every goroutine shape goroleak must accept: the
// worker-pool range loop, ctx/done-channel selects that return, a
// WaitGroup-tracked worker, one-shot goroutines, bounded loops, and a
// labeled break that really leaves the loop.
package clean

import (
	"context"
	"sync"
)

// RangeWorker drains a channel; close(jobs) terminates it — the
// serve pool pattern.
func RangeWorker(jobs chan func()) {
	go func() {
		for job := range jobs {
			job()
		}
	}()
}

// CtxSelect returns when the context is canceled.
func CtxSelect(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				use(v)
			}
		}
	}()
}

// Tracked is owned by a WaitGroup; whoever Waits bounds its life.
func Tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			work()
		}
	}()
}

// OneShot has no loop at all; it ends when the send completes.
func OneShot(errCh chan error) {
	go func() { errCh <- run() }()
}

// Bounded loops carry their condition with them.
func Bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			work()
		}
	}()
}

// CondLoop spins on a condition, which is a visible bound.
func CondLoop(stop *bool) {
	go func() {
		for !*stop {
			work()
		}
	}()
}

// LabeledBreak leaves the outer loop from inside the select.
func LabeledBreak(done chan struct{}) {
	go func() {
	loop:
		for {
			select {
			case <-done:
				break loop
			default:
				work()
			}
		}
	}()
}

// named is a terminating worker launched by name.
func named(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
			work()
		}
	}
}

// SpawnNamed launches the named worker.
func SpawnNamed(done chan struct{}) {
	go named(done)
}

func work()      {}
func run() error { return nil }
func use(v int)  {}
