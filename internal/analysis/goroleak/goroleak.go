// Package goroleak requires every goroutine launched in non-test code
// to have a visible termination path. The serving stack's drain
// guarantees (pool.drain, Coordinator job teardown, graceful shutdown)
// all assume no goroutine outlives its owner, and a leaked goroutine
// under load is a memory leak with a stack attached.
//
// A `go` statement is accepted when the launched function
//
//   - is tracked by a sync.WaitGroup (a Done() call, usually deferred,
//     anywhere in its body), or
//   - contains no unbounded loop at all (a one-shot goroutine
//     terminates when its body returns; range-over-channel loops end
//     when the channel closes; loops with a condition are bounded by
//     it), or
//   - exits its unbounded loops visibly: a return, or a break/goto
//     that leaves the loop (a break inside a nested select or switch
//     targets that statement, not the loop, and does not count).
//
// Function literals are analyzed directly; named functions declared in
// the same package are analyzed through their declaration. A call into
// another package cannot be inspected with per-package export data and
// is skipped — the boundary packages own their own goroutines.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"ppcsim/internal/analysis"
)

// Analyzer is the goroleak instance; it has no configuration.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "require a visible termination path for every launched goroutine",
	Run:  run,
}

func run(pass *analysis.Pass) {
	decls := declIndex(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, g, decls)
			if body == nil {
				return true
			}
			if hasWaitGroupDone(pass, body) {
				return true
			}
			if loop := unboundedLoop(body); loop != nil {
				pass.Reportf(g.Pos(), "goroutine has no visible termination path: unbounded for loop at line %d never returns or breaks (track it with a WaitGroup, select on a done channel, or bound the loop)",
					pass.Fset.Position(loop.Pos()).Line)
			}
			return true
		})
	}
}

// declIndex maps each declared function object to its body, so `go
// name(...)` can be checked through the declaration.
func declIndex(pass *analysis.Pass) map[types.Object]*ast.BlockStmt {
	decls := map[types.Object]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd.Body
				}
			}
		}
	}
	return decls
}

// goBody resolves the body of the function a go statement launches, or
// nil when it is declared outside this package.
func goBody(pass *analysis.Pass, g *ast.GoStmt, decls map[types.Object]*ast.BlockStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := analysis.Callee(pass.Info, g.Call); fn != nil {
		return decls[fn]
	}
	return nil
}

// hasWaitGroupDone reports whether body calls Done on a sync.WaitGroup
// anywhere (including inside defers and nested literals): the goroutine
// is tracked, and whoever Waits owns its lifetime.
func hasWaitGroupDone(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		selection := pass.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.MethodVal {
			return true
		}
		t := selection.Recv()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok &&
			named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
			found = true
		}
		return !found
	})
	return found
}

// unboundedLoop returns the first for loop in body that can never
// terminate: no condition, not a range, and no return/break/goto that
// leaves it. Nested function literals are their own scope — a loop
// inside one belongs to whatever runs that literal.
func unboundedLoop(body *ast.BlockStmt) *ast.ForStmt {
	var bad *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		switch loop := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if loop.Cond == nil && !loopExits(loop) {
				bad = loop
				return false
			}
		}
		return true
	})
	return bad
}

// loopExits reports whether loop contains a statement that leaves it: a
// return, a goto, or a break that actually targets this loop rather
// than a nested for, select, or switch.
func loopExits(loop *ast.ForStmt) bool {
	return blockExits(loop.Body.List, false)
}

// blockExits scans statements for an escape from the loop under
// analysis. breakCaptured is true once the scan has descended into a
// construct that consumes unlabeled break (a nested loop, select, or
// switch) — past that point only return, goto, and labeled break count.
func blockExits(stmts []ast.Stmt, breakCaptured bool) bool {
	for _, s := range stmts {
		if stmtExits(s, breakCaptured) {
			return true
		}
	}
	return false
}

// stmtExits recurses into compound statements, stopping at function
// literals (their control flow belongs to whoever runs them).
func stmtExits(s ast.Stmt, breakCaptured bool) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		if st.Tok == token.GOTO {
			return true
		}
		return st.Tok == token.BREAK && (!breakCaptured || st.Label != nil)
	case *ast.BlockStmt:
		return blockExits(st.List, breakCaptured)
	case *ast.IfStmt:
		if blockExits(st.Body.List, breakCaptured) {
			return true
		}
		if st.Else != nil {
			return stmtExits(st.Else, breakCaptured)
		}
	case *ast.LabeledStmt:
		return stmtExits(st.Stmt, breakCaptured)
	case *ast.ForStmt:
		return blockExits(st.Body.List, true)
	case *ast.RangeStmt:
		return blockExits(st.Body.List, true)
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if comm, ok := c.(*ast.CommClause); ok && blockExits(comm.Body, true) {
				return true
			}
		}
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && blockExits(cc.Body, true) {
				return true
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok && blockExits(cc.Body, true) {
				return true
			}
		}
	}
	return false
}
