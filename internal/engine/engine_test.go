package engine

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"ppcsim/internal/cache"
	"ppcsim/internal/disk"
	"ppcsim/internal/layout"
	"ppcsim/internal/trace"
)

// fixedModel serves every request in a constant time.
type fixedModel struct{ ms float64 }

func (m fixedModel) Service(int64, float64) float64 { return m.ms }
func (m fixedModel) Reset()                         {}

// demandPolicy is a minimal in-package demand fetcher for engine tests.
type demandPolicy struct{ s *State }

func (d *demandPolicy) Name() string    { return "test-demand" }
func (d *demandPolicy) Attach(s *State) { d.s = s }
func (d *demandPolicy) Poll()           {}
func (d *demandPolicy) OnStall(b layout.BlockID) {
	if d.s.Cache.FreeBuffers() > 0 {
		d.s.Issue(b, cache.NoBlock)
		return
	}
	v, _ := d.s.Cache.FurthestEvictable()
	d.s.Issue(b, v)
}

// mkTrace builds a trace over one file of nBlocks with the given refs and
// uniform compute time.
func mkTrace(nBlocks int, computeMs float64, ids ...int) *trace.Trace {
	tr := &trace.Trace{
		Name:        "test",
		Files:       []layout.File{{First: 0, Blocks: nBlocks}},
		CacheBlocks: 2,
	}
	for _, id := range ids {
		tr.Refs = append(tr.Refs, trace.Ref{Block: layout.BlockID(id), ComputeMs: computeMs})
	}
	return tr
}

func TestDemandHandComputed(t *testing.T) {
	// Two blocks, cache of two, 10ms disk, 1ms compute, 0.5ms driver.
	// refs: 0 1 0 1. Both fetches stall 10ms; the re-references hit.
	tr := mkTrace(2, 1.0, 0, 1, 0, 1)
	res, err := Run(Config{
		Trace:  tr,
		Policy: &demandPolicy{},
		Disks:  1,
		Model:  func() disk.Model { return fixedModel{10} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fetches != 2 {
		t.Errorf("fetches = %d, want 2", res.Fetches)
	}
	// Timeline: ref0 at t=1 stalls to 11; ref1 at 12 stalls to 22; ref2
	// at 23; ref3 at 24.
	if math.Abs(res.ElapsedSec-0.024) > 1e-9 {
		t.Errorf("elapsed = %g s, want 0.024", res.ElapsedSec)
	}
	if math.Abs(res.DriverTimeSec-0.001) > 1e-9 {
		t.Errorf("driver = %g s, want 0.001", res.DriverTimeSec)
	}
	// Stall residual: 24 - 4 (compute) - 1 (driver) = 19 ms.
	if math.Abs(res.StallTimeSec-0.019) > 1e-9 {
		t.Errorf("stall = %g s, want 0.019", res.StallTimeSec)
	}
	if res.CacheHits != 2 || res.CacheMisses != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", res.CacheHits, res.CacheMisses)
	}
}

func TestDecompositionIdentity(t *testing.T) {
	tr, _ := trace.ByName("cscope1")
	tr = tr.Truncate(3000)
	for _, disks := range []int{1, 3} {
		res, err := Run(Config{Trace: tr, Policy: &demandPolicy{}, Disks: disks})
		if err != nil {
			t.Fatal(err)
		}
		sum := res.ComputeSec + res.DriverTimeSec + res.StallTimeSec
		if res.StallTimeSec > 0 && math.Abs(sum-res.ElapsedSec) > 1e-6 {
			t.Errorf("d=%d: cpu+driver+stall = %g, elapsed = %g", disks, sum, res.ElapsedSec)
		}
		if res.ElapsedSec < res.ComputeSec {
			t.Errorf("d=%d: elapsed %g < compute %g", disks, res.ElapsedSec, res.ComputeSec)
		}
		if int64(res.CacheHits+res.CacheMisses) != int64(len(tr.Refs)) {
			t.Errorf("d=%d: hits+misses = %d, want %d", disks, res.CacheHits+res.CacheMisses, len(tr.Refs))
		}
	}
}

func TestDemandMissCountOnLoop(t *testing.T) {
	// A cyclic loop of N blocks with a K-block cache under offline MIN
	// replacement misses N on the first pass and N-K on each later pass
	// (the paper's synth arithmetic: 37280 = 2000 + 49*720).
	const n, k, passes = 40, 25, 6
	var ids []int
	for p := 0; p < passes; p++ {
		for i := 0; i < n; i++ {
			ids = append(ids, i)
		}
	}
	tr := mkTrace(n, 1.0, ids...)
	tr.CacheBlocks = k
	res, err := Run(Config{
		Trace:  tr,
		Policy: &demandPolicy{},
		Disks:  1,
		Model:  func() disk.Model { return fixedModel{5} },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(n + (passes-1)*(n-k))
	if res.Fetches != want {
		t.Errorf("fetches = %d, want %d (MIN replacement on a loop)", res.Fetches, want)
	}
}

func TestConfigValidation(t *testing.T) {
	tr := mkTrace(2, 1.0, 0, 1)
	cases := []Config{
		{Policy: &demandPolicy{}, Disks: 1},                                   // nil trace
		{Trace: tr, Disks: 1},                                                 // nil policy
		{Trace: tr, Policy: &demandPolicy{}, Disks: 0},                        // no disks
		{Trace: tr, Policy: &demandPolicy{}, Disks: 1, CacheBlocks: 1},        // tiny cache
		{Trace: &trace.Trace{Name: "bad"}, Policy: &demandPolicy{}, Disks: 1}, // invalid trace
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// brokenPolicy never fetches.
type brokenPolicy struct{ demandPolicy }

func (b *brokenPolicy) Attach(s *State)        { b.s = s }
func (b *brokenPolicy) OnStall(layout.BlockID) {}
func (b *brokenPolicy) Name() string           { return "broken" }

func TestPolicyMustFetchStalledBlock(t *testing.T) {
	tr := mkTrace(2, 1.0, 0, 1)
	if _, err := Run(Config{Trace: tr, Policy: &brokenPolicy{}, Disks: 1}); err == nil {
		t.Error("expected error when policy never fetches")
	}
}

// illegalPolicy issues a fetch for a block that is already present.
type illegalPolicy struct{ demandPolicy }

func (p *illegalPolicy) Attach(s *State) { p.s = s }
func (p *illegalPolicy) Name() string    { return "illegal" }
func (p *illegalPolicy) OnStall(b layout.BlockID) {
	p.s.Issue(b, cache.NoBlock)
	p.s.Issue(b, cache.NoBlock) // double fetch: illegal
}

func TestIllegalIssueAborts(t *testing.T) {
	tr := mkTrace(2, 1.0, 0, 1)
	if _, err := Run(Config{Trace: tr, Policy: &illegalPolicy{}, Disks: 1}); err == nil {
		t.Error("expected error from illegal issue")
	}
}

func TestDeterminism(t *testing.T) {
	tr, _ := trace.ByName("ld")
	tr = tr.Truncate(2000)
	cfg := Config{Trace: tr, Policy: &demandPolicy{}, Disks: 3}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = &demandPolicy{}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("nondeterministic results:\n%v\n%v", a, b)
	}
}

func TestDriverOverheadSettings(t *testing.T) {
	tr := mkTrace(2, 1.0, 0, 1)
	zero, err := Run(Config{Trace: tr, Policy: &demandPolicy{}, Disks: 1, DriverOverheadMs: -1})
	if err != nil {
		t.Fatal(err)
	}
	if zero.DriverTimeSec != 0 {
		t.Errorf("driver time with overhead disabled = %g", zero.DriverTimeSec)
	}
	def, _ := Run(Config{Trace: tr, Policy: &demandPolicy{}, Disks: 1})
	if math.Abs(def.DriverTimeSec-0.001) > 1e-9 {
		t.Errorf("default driver time = %g s, want 0.001", def.DriverTimeSec)
	}
	big, _ := Run(Config{Trace: tr, Policy: &demandPolicy{}, Disks: 1, DriverOverheadMs: 2})
	if math.Abs(big.DriverTimeSec-0.004) > 1e-9 {
		t.Errorf("custom driver time = %g s, want 0.004", big.DriverTimeSec)
	}
}

// hookPolicy records completion callbacks.
type hookPolicy struct {
	demandPolicy
	completions int
}

func (h *hookPolicy) Attach(s *State) {
	h.s = s
	s.OnComplete = func(d int, svc float64) {
		if svc <= 0 {
			panic("bad service time")
		}
		h.completions++
	}
}

func TestCompletionHook(t *testing.T) {
	tr := mkTrace(4, 1.0, 0, 1, 2, 3)
	h := &hookPolicy{}
	res, err := Run(Config{Trace: tr, Policy: h, Disks: 2, CacheBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if int64(h.completions) != res.Fetches {
		t.Errorf("hook saw %d completions, want %d", h.completions, res.Fetches)
	}
}

func TestUtilizationBounds(t *testing.T) {
	tr, _ := trace.ByName("cscope1")
	tr = tr.Truncate(2000)
	for _, d := range []int{1, 2, 8} {
		res, err := Run(Config{Trace: tr, Policy: &demandPolicy{}, Disks: d})
		if err != nil {
			t.Fatal(err)
		}
		if res.AvgUtilization < 0 || res.AvgUtilization > 1.0+1e-9 {
			t.Errorf("d=%d: utilization %g out of range", d, res.AvgUtilization)
		}
		if res.AvgFetchMs <= 0 {
			t.Errorf("d=%d: avg fetch %g", d, res.AvgFetchMs)
		}
	}
}

func TestResultString(t *testing.T) {
	tr := mkTrace(2, 1.0, 0, 1)
	res, err := Run(Config{Trace: tr, Policy: &demandPolicy{}, Disks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); s == "" {
		t.Error("empty String()")
	}
}

// assertFiniteFloats walks v (a struct value) and fails on any float64
// field that is NaN or infinite, recursing into nested structs/slices.
func assertFiniteFloats(t *testing.T, path string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Float64:
		f := v.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Errorf("%s = %v, want finite", path, f)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			assertFiniteFloats(t, path+"."+v.Type().Field(i).Name, v.Field(i))
		}
	case reflect.Slice:
		for i := 0; i < v.Len(); i++ {
			assertFiniteFloats(t, fmt.Sprintf("%s[%d]", path, i), v.Index(i))
		}
	case reflect.Pointer:
		if !v.IsNil() {
			assertFiniteFloats(t, path, v.Elem())
		}
	}
}

// TestZeroLengthTraceFiniteMetrics pins the degenerate empty-trace run:
// no elapsed time and no fetches must not turn the derived averages
// (utilization, response, fetch time) into NaN via 0/0.
func TestZeroLengthTraceFiniteMetrics(t *testing.T) {
	tr := mkTrace(4, 1.0) // no references at all
	tr.CacheBlocks = 2
	res, err := Run(Config{Trace: tr, Policy: &demandPolicy{}, Disks: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertFiniteFloats(t, "Result", reflect.ValueOf(res))
	if res.ElapsedSec != 0 || res.Fetches != 0 || res.CacheHits != 0 {
		t.Errorf("empty trace produced work: %+v", res)
	}
	if len(res.PerDisk) != 3 {
		t.Fatalf("PerDisk has %d entries, want 3", len(res.PerDisk))
	}
	for i, d := range res.PerDisk {
		if d.Fetches != 0 || d.Utilization != 0 {
			t.Errorf("disk %d did work on an empty trace: %+v", i, d)
		}
	}
}
