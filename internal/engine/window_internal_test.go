package engine

import (
	"testing"

	"ppcsim/internal/layout"
	"ppcsim/internal/trace"
)

// mkLongTrace builds an n-reference cycling trace over nBlocks blocks.
func mkLongTrace(nBlocks, n int, computeMs float64) *trace.Trace {
	tr := mkTrace(nBlocks, computeMs)
	for i := 0; i < n; i++ {
		tr.Refs = append(tr.Refs, trace.Ref{Block: layout.BlockID(i % nBlocks), ComputeMs: computeMs})
	}
	return tr
}

// TestHintNoiseIgnoresWindow is the regression pin for the corruption
// draw: which positions are undisclosed or corrupted, and what wrong
// block a corrupted hint names, is a function of the seed and the trace
// position alone. Two specs differing only in Window must produce the
// same disclosed stream position for position — the lookahead horizon
// changes when a hint becomes visible, never what it says.
func TestHintNoiseIgnoresWindow(t *testing.T) {
	const nBlocks = 16
	refs := make([]layout.BlockID, 500)
	for i := range refs {
		refs[i] = layout.BlockID((i * 7) % nBlocks)
	}
	isWrite := make([]bool, len(refs))
	for i := range isWrite {
		isWrite[i] = i%11 == 0
	}
	phantom := layout.BlockID(nBlocks)
	disclose := func(window int) []layout.BlockID {
		disclosed := make([]layout.BlockID, len(refs))
		copy(disclosed, refs)
		h := &HintSpec{Fraction: 0.6, Accuracy: 0.5, Seed: 41, Window: window}
		applyHintNoise(disclosed, refs, isWrite, phantom, nBlocks, h)
		return disclosed
	}
	base := disclose(0)
	for _, w := range []int{WindowNone, 1, 8, len(refs) / 2, len(refs), 10 * len(refs)} {
		got := disclose(w)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("window %d re-rolled the noise at position %d: %d vs %d", w, i, got[i], base[i])
			}
		}
	}
}

// TestHintNoiseEndToEndIgnoresWindow re-checks the same property through
// Run: the disclosed stream a policy sees is unchanged across windows.
func TestHintNoiseEndToEndIgnoresWindow(t *testing.T) {
	tr := mkLongTrace(8, 200, 1)
	tr.CacheBlocks = 4
	disclose := func(window int) []layout.BlockID {
		spy := &disclosedSpy{}
		if _, err := Run(Config{
			Trace:  tr,
			Policy: spy,
			Disks:  1,
			Hints:  &HintSpec{Fraction: 0.7, Accuracy: 0.6, Seed: 5, Window: window},
		}); err != nil {
			t.Fatal(err)
		}
		return spy.refs
	}
	base := disclose(0)
	for _, w := range []int{WindowNone, 3, 50} {
		got := disclose(w)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("window %d changed the disclosed stream at position %d", w, i)
			}
		}
	}
}

// windowSpy checks the State's window accessors against the engine's
// cursor on every poll.
type windowSpy struct {
	demandPolicy
	window   int
	bad      int
	polls    int
	windowed bool
}

func (p *windowSpy) Attach(s *State) { p.s = s; p.windowed = s.Windowed() }
func (p *windowSpy) Name() string    { return "window-spy" }
func (p *windowSpy) Poll() {
	p.polls++
	limit := p.s.WindowLimit(p.s.Len())
	want := p.s.Oracle.Cursor() + p.window
	if p.window == 0 || want > p.s.Len() {
		want = p.s.Len()
	}
	if p.window == WindowNone {
		want = p.s.Oracle.Cursor()
	}
	if limit != want {
		p.bad++
	}
}

// TestWindowLimitTracksCursor: WindowLimit clamps scan limits to
// cursor+W for positive windows, to the cursor itself for WindowNone,
// and is the identity for unlimited runs — including runs whose window
// covers the whole trace, which the engine normalizes to unlimited.
func TestWindowLimitTracksCursor(t *testing.T) {
	tr := mkLongTrace(8, 120, 1)
	tr.CacheBlocks = 4
	for _, w := range []int{WindowNone, 0, 5, 30, 120, 500} {
		effective := w
		if w >= len(tr.Refs) {
			effective = 0 // normalized to the unlimited fast path
		}
		spy := &windowSpy{window: effective}
		if _, err := Run(Config{
			Trace:  tr,
			Policy: spy,
			Disks:  1,
			Hints:  &HintSpec{Fraction: 1, Accuracy: 1, Window: w},
		}); err != nil {
			t.Fatal(err)
		}
		if spy.polls == 0 {
			t.Fatalf("W=%d: policy never polled", w)
		}
		if spy.bad != 0 {
			t.Errorf("W=%d: WindowLimit disagreed with cursor+W on %d of %d polls", w, spy.bad, spy.polls)
		}
		if wantWindowed := effective != 0; spy.windowed != wantWindowed {
			t.Errorf("W=%d: Windowed() = %v, want %v", w, spy.windowed, wantWindowed)
		}
	}
}
