package engine

import (
	"testing"

	"ppcsim/internal/layout"
	"ppcsim/internal/trace"
)

// spyPolicy records what the engine shows it.
type spyPolicy struct {
	demandPolicy
	sawPhantom bool
	phantom    layout.BlockID
}

func (p *spyPolicy) Attach(s *State) { p.s = s }
func (p *spyPolicy) Name() string    { return "spy" }
func (p *spyPolicy) Poll() {
	for _, b := range p.s.Refs {
		if b == p.phantom {
			p.sawPhantom = true
		}
	}
}

func TestHintsPhantomIsVisibleButNeverAbsent(t *testing.T) {
	tr := mkTrace(4, 1.0, 0, 1, 2, 3, 0, 1, 2, 3)
	tr.CacheBlocks = 4
	spy := &spyPolicy{phantom: layout.BlockID(4)} // block space is 4; phantom is 4
	_, err := Run(Config{
		Trace:  tr,
		Policy: spy,
		Disks:  1,
		Hints:  &HintSpec{Fraction: 0.5, Accuracy: 1, Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !spy.sawPhantom {
		t.Error("with 50% hints some positions should disclose the phantom")
	}
}

// observedPolicy checks Observed() against the true sequence and panics
// from the engine if it allows future peeking.
type observedPolicy struct {
	demandPolicy
	tr         *trace.Trace
	mismatches int
	futureOK   bool
}

func (p *observedPolicy) Attach(s *State) { p.s = s }
func (p *observedPolicy) Name() string    { return "observer" }
func (p *observedPolicy) Poll() {
	c := p.s.Cursor()
	for i := 0; i < c; i++ {
		if p.s.Observed(i) != p.tr.Refs[i].Block {
			p.mismatches++
		}
	}
	if c < p.s.Len() {
		func() {
			defer func() {
				if recover() == nil {
					p.futureOK = true
				}
			}()
			p.s.Observed(c)
		}()
	}
}

func TestObservedIsTruePastOnly(t *testing.T) {
	tr := mkTrace(5, 1.0, 0, 1, 2, 3, 4, 0, 1)
	tr.CacheBlocks = 5
	p := &observedPolicy{tr: tr}
	_, err := Run(Config{
		Trace:  tr,
		Policy: p,
		Disks:  1,
		Hints:  &HintSpec{Fraction: 0.3, Accuracy: 0.5, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.mismatches != 0 {
		t.Errorf("Observed disagreed with the true history %d times", p.mismatches)
	}
	if p.futureOK {
		t.Error("Observed allowed peeking at the future")
	}
}

func TestPerDiskConsistency(t *testing.T) {
	tr := mkTrace(64, 1.0)
	for i := 0; i < 500; i++ {
		tr.Refs = append(tr.Refs, trace.Ref{Block: layout.BlockID(i % 64), ComputeMs: 1})
		if i%5 == 0 {
			tr.Refs = append(tr.Refs, trace.Ref{Block: layout.BlockID((i * 7) % 64), ComputeMs: 0.1, Write: true})
		}
	}
	tr.CacheBlocks = 32
	res, err := Run(Config{Trace: tr, Policy: &demandPolicy{}, Disks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerDisk) != 3 {
		t.Fatalf("PerDisk has %d entries", len(res.PerDisk))
	}
	var totalReqs int64
	var busy float64
	for _, d := range res.PerDisk {
		totalReqs += d.Fetches
		busy += d.BusySec
		if d.Utilization < 0 || d.Utilization > 1+1e-9 {
			t.Errorf("per-disk utilization %g", d.Utilization)
		}
		if d.Fetches > 0 && (d.AvgFetchMs <= 0 || d.AvgRespMs < d.AvgFetchMs-1e-9) {
			t.Errorf("per-disk timing inconsistent: svc %g resp %g", d.AvgFetchMs, d.AvgRespMs)
		}
	}
	// Drives serve both read fetches and write-behind requests.
	if totalReqs != res.Fetches+res.WriteRequests {
		t.Errorf("per-disk requests %d != fetches %d + writes %d", totalReqs, res.Fetches, res.WriteRequests)
	}
	if res.AvgResponseMs < res.AvgFetchMs-1e-9 {
		t.Errorf("response %g below service %g", res.AvgResponseMs, res.AvgFetchMs)
	}
}

// disclosedSpy captures the disclosed reference stream the engine hands
// to policies.
type disclosedSpy struct {
	demandPolicy
	refs []layout.BlockID
}

func (p *disclosedSpy) Attach(s *State) {
	p.s = s
	p.refs = append([]layout.BlockID(nil), s.Refs...)
}
func (p *disclosedSpy) Name() string { return "disclosed-spy" }

// TestHintCorruptionRate pins the realized corruption rate to 1-Accuracy.
// With full disclosure every position where the disclosed block differs
// from the true block is a corrupted hint; a corrupted hint must never
// accidentally name the true block, or the realized rate drops by a
// factor of 1/nBlocks (the regression: with 4 blocks the buggy draw
// yields 0.75*(1-Accuracy) instead of 1-Accuracy).
func TestHintCorruptionRate(t *testing.T) {
	const (
		nBlocks  = 4
		nRefs    = 20000
		accuracy = 0.7
	)
	tr := mkTrace(nBlocks, 0.1)
	for i := 0; i < nRefs; i++ {
		tr.Refs = append(tr.Refs, trace.Ref{Block: layout.BlockID(i % nBlocks), ComputeMs: 0.1})
	}
	tr.CacheBlocks = 2
	spy := &disclosedSpy{}
	if _, err := Run(Config{
		Trace:  tr,
		Policy: spy,
		Disks:  1,
		Hints:  &HintSpec{Fraction: 1, Accuracy: accuracy, Seed: 11},
	}); err != nil {
		t.Fatal(err)
	}
	if len(spy.refs) != nRefs {
		t.Fatalf("spy saw %d refs, want %d", len(spy.refs), nRefs)
	}
	phantom := layout.BlockID(nBlocks)
	corrupted := 0
	for i, b := range spy.refs {
		if b == phantom {
			t.Fatalf("position %d disclosed the phantom with Fraction=1", i)
		}
		if b != tr.Refs[i].Block {
			corrupted++
		}
	}
	rate := float64(corrupted) / nRefs
	want := 1 - accuracy
	// Binomial noise at n=20000 is ~0.003; the old bug shifts the rate by
	// (1-accuracy)/nBlocks = 0.075, far outside this tolerance.
	if diff := rate - want; diff < -0.02 || diff > 0.02 {
		t.Errorf("corruption rate %.4f, want %.2f +/- 0.02", rate, want)
	}
}

// TestHintCorruptionSingleBlock covers the degenerate one-block trace:
// there is no wrong block to disclose, so a corrupted hint falls back to
// the phantom (equivalent to not disclosing the reference).
func TestHintCorruptionSingleBlock(t *testing.T) {
	tr := mkTrace(1, 0.1)
	for i := 0; i < 100; i++ {
		tr.Refs = append(tr.Refs, trace.Ref{Block: 0, ComputeMs: 0.1})
	}
	tr.CacheBlocks = 2
	spy := &disclosedSpy{}
	if _, err := Run(Config{
		Trace:  tr,
		Policy: spy,
		Disks:  1,
		Hints:  &HintSpec{Fraction: 1, Accuracy: 0, Seed: 3},
	}); err != nil {
		t.Fatal(err)
	}
	phantom := layout.BlockID(1)
	for i, b := range spy.refs {
		if b != phantom {
			t.Fatalf("position %d disclosed %d; a fully inaccurate single-block hint must disclose the phantom", i, b)
		}
	}
}

func TestHintSpecValidateDirect(t *testing.T) {
	good := HintSpec{Fraction: 0.5, Accuracy: 0.5}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	for _, h := range []HintSpec{
		{Fraction: -0.01, Accuracy: 1},
		{Fraction: 1.01, Accuracy: 1},
		{Fraction: 1, Accuracy: -0.01},
		{Fraction: 1, Accuracy: 1.01},
	} {
		if err := h.Validate(); err == nil {
			t.Errorf("%+v should fail validation", h)
		}
	}
}
