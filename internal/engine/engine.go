// Package engine implements the paper's trace-driven simulator: a single
// fully-hinted process consuming a read trace, an array of independently
// scheduled disks, a shared buffer cache with advance knowledge, and a
// pluggable integrated prefetching-and-caching policy.
//
// The simulation is event driven. Between references the process computes
// for the traced inter-reference CPU time; every disk request charges a
// driver overhead (0.5 ms by default, "typical of the DECstation
// 5000/200") to the process's CPU timeline; referencing an unavailable
// block stalls the process until the block arrives. Elapsed time therefore
// decomposes exactly as in the paper's figures: compute + driver + stall.
package engine

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"

	"ppcsim/internal/cache"
	"ppcsim/internal/disk"
	"ppcsim/internal/future"
	"ppcsim/internal/layout"
	"ppcsim/internal/obs"
	"ppcsim/internal/trace"
)

// DefaultDriverOverheadMs is the per-request I/O driver CPU cost.
const DefaultDriverOverheadMs = 0.5

// Policy is an integrated prefetching and caching algorithm. The engine
// calls Attach once, then Poll at every decision point (after each served
// reference and after each disk completion), and OnStall when the process
// is blocked on a block that no in-flight fetch will deliver — the policy
// must then issue a fetch for that block.
type Policy interface {
	Name() string
	Attach(s *State)
	Poll()
	OnStall(b layout.BlockID)
}

// Config describes one simulation run.
type Config struct {
	Trace *trace.Trace
	// Source, when set instead of Trace, streams the reference sequence:
	// the engine keeps only a bounded ring of upcoming references
	// resident, so traces of 10^9 references run in constant memory.
	// Streaming runs require Hints with a bounded Window (the resident
	// ring is sized from it) and reject policies that declare
	// RequiresFullTrace. Trace and Source are mutually exclusive.
	Source           trace.Source
	Policy           Policy
	Disks            int
	CacheBlocks      int               // 0 → trace default
	Discipline       disk.Discipline   // CSCAN by default
	Model            func() disk.Model // nil → disk.NewHP97560
	DriverOverheadMs float64           // <0 → 0; 0 → default
	PlacementSeed    int64             // seed for per-file placement
	// Hints degrades the advance knowledge the policy receives; nil means
	// the paper's fully-hinted case.
	Hints *HintSpec
	// Observer receives the run's event stream (see package obs). When
	// nil — the default — every emission point reduces to one nil check,
	// so an unobserved run pays nothing.
	Observer obs.Observer
	// Ctx, when non-nil, cancels the run cooperatively: the event loop
	// polls Ctx.Done() each iteration and aborts with Ctx.Err() wrapped
	// in ErrCanceled. A nil Ctx costs one nil check per iteration; a set
	// one adds a non-blocking channel poll, cheap next to the disk-model
	// and heap work an iteration already does. The guarantee is that a
	// done context stops the run at the next iteration boundary; how
	// quickly a live timer MAKES the context done is up to the Go
	// runtime (a CPU-bound loop can delay timer delivery until async
	// preemption, ~10ms), so sub-10ms deadlines may resolve only after
	// short runs complete.
	Ctx context.Context
}

// ErrCanceled wraps the context error of a run aborted through
// Config.Ctx; test with errors.Is(err, engine.ErrCanceled).
var ErrCanceled = fmt.Errorf("engine: run canceled")

// HintSpec models incomplete or inaccurate application hints — the
// generalization the paper's section 6 leaves open ("we have not
// considered the effects of incomplete or inaccurate hints"). Each
// reference is disclosed to the policy with probability Fraction; a
// disclosed reference names the wrong block with probability
// 1 - Accuracy. Undisclosed references are invisible to the policy until
// the process reaches them (they surface as demand misses). The policy
// still observes all *past* accesses through State.Observed, as any real
// system would.
type HintSpec struct {
	// Fraction of references disclosed, in [0, 1]. 1 = fully hinted.
	Fraction float64
	// Accuracy of a disclosed hint, in [0, 1]. 1 = always correct.
	Accuracy float64
	// Seed drives the disclosure and corruption draws.
	Seed int64
	// Window limits lookahead: a positive W lets the policy see disclosed
	// references only inside [cursor, cursor+W), with eviction falling
	// back to LRU order for blocks whose next use lies beyond that
	// horizon. 0 (the zero value) means unlimited lookahead — the paper's
	// full-knowledge setting — and WindowNone means no future visibility
	// at all. A window covering the whole trace (W >= len(refs)) is
	// information-equivalent to unlimited and is treated as such.
	Window int
}

// WindowNone is the HintSpec.Window value for zero lookahead: the policy
// learns each reference only when the process reaches it. (0 could not
// mean this, because the zero-value HintSpec must equal the fully-hinted
// default.)
const WindowNone = -1

// Validate checks the spec's ranges.
func (h *HintSpec) Validate() error {
	if h.Fraction < 0 || h.Fraction > 1 {
		return fmt.Errorf("engine: hint fraction %g out of [0,1]", h.Fraction)
	}
	if h.Accuracy < 0 || h.Accuracy > 1 {
		return fmt.Errorf("engine: hint accuracy %g out of [0,1]", h.Accuracy)
	}
	if h.Window < WindowNone {
		return fmt.Errorf("engine: hint window %d invalid (0 = unlimited, %d = none, positive = lookahead)", h.Window, WindowNone)
	}
	return nil
}

// hintNoiser draws the disclosure/corruption noise of a HintSpec one
// reference at a time. The noise is a pure function of (Seed, Fraction,
// Accuracy) and the trace position — Window deliberately plays no part,
// so sliding the lookahead horizon changes when a hint becomes visible
// but never re-rolls whether it is disclosed or corrupted; and because
// the draws happen in trace order, a streaming run consumes the exact
// same sequence a materialized run does.
type hintNoiser struct {
	rng     *rand.Rand
	h       *HintSpec
	phantom layout.BlockID
	nBlocks int
}

func newHintNoiser(h *HintSpec, phantom layout.BlockID, nBlocks int) *hintNoiser {
	return &hintNoiser{
		rng:     rand.New(rand.NewSource(h.Seed ^ 0x70636873)), // "pchs"
		h:       h,
		phantom: phantom,
		nBlocks: nBlocks,
	}
}

// draw returns the disclosed block for the next non-write reference whose
// true block is b. Write positions must not be drawn for (they are always
// disclosed as phantom without consuming randomness).
func (nz *hintNoiser) draw(b layout.BlockID) layout.BlockID {
	switch {
	case nz.rng.Float64() >= nz.h.Fraction:
		return nz.phantom
	case nz.rng.Float64() >= nz.h.Accuracy:
		// An inaccurate hint must name a wrong block: draw from the
		// other nBlocks-1 blocks and shift past the true one (a plain
		// Intn(nBlocks) would be correct by accident 1/nBlocks of the
		// time, skewing the realized accuracy).
		if nz.nBlocks > 1 {
			w := nz.rng.Intn(nz.nBlocks - 1)
			if w >= int(b) {
				w++
			}
			return layout.BlockID(w)
		}
		return nz.phantom
	default:
		return b
	}
}

// applyHintNoise overwrites disclosed with the hint stream the policy
// sees: undisclosed positions become phantom, inaccurate ones a wrong
// block.
func applyHintNoise(disclosed, refs []layout.BlockID, isWrite []bool, phantom layout.BlockID, nBlocks int, h *HintSpec) {
	nz := newHintNoiser(h, phantom, nBlocks)
	for i, b := range refs {
		if isWrite[i] {
			continue
		}
		disclosed[i] = nz.draw(b)
	}
}

// Result reports the metrics of one run in the units of the paper's
// appendix tables.
type Result struct {
	Trace      string
	Policy     string
	Disks      int
	Discipline disk.Discipline

	Fetches       int64
	DriverTimeSec float64
	StallTimeSec  float64
	ElapsedSec    float64
	ComputeSec    float64
	AvgFetchMs    float64
	// AvgResponseMs is the mean request response time (queueing plus
	// service) across all disks.
	AvgResponseMs float64
	// AvgUtilization is the mean fraction of elapsed time each disk spent
	// servicing requests.
	AvgUtilization float64
	CacheHits      int64
	CacheMisses    int64
	// WriteRequests counts write-behind disk requests (zero for the
	// paper's read-only traces).
	WriteRequests int64
	// PerDisk breaks the I/O metrics down by array slot.
	PerDisk []DiskResult
	// Latency summarizes the fetch-latency and stall-duration
	// distributions. It is populated only when a *obs.StreamingStats
	// observer is attached to the run (directly or inside an obs.Tee);
	// otherwise it is nil.
	Latency *LatencySummary
}

// LatencySummary reports streaming-histogram percentiles of per-request
// fetch latency (queueing plus service) and per-stall duration.
type LatencySummary struct {
	FetchCount  int64
	FetchMeanMs float64
	FetchP50Ms  float64
	FetchP95Ms  float64
	FetchP99Ms  float64
	StallCount  int64
	StallMeanMs float64
	StallP50Ms  float64
	StallP95Ms  float64
	StallP99Ms  float64
}

// DiskResult is one drive's share of a Result.
type DiskResult struct {
	Fetches     int64
	BusySec     float64
	AvgFetchMs  float64
	AvgRespMs   float64
	Utilization float64
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s d=%d %s: elapsed %.3fs (cpu %.3f + driver %.3f + stall %.3f), %d fetches, %.3f ms/fetch, util %.2f",
		r.Trace, r.Policy, r.Disks, r.Discipline,
		r.ElapsedSec, r.ComputeSec, r.DriverTimeSec, r.StallTimeSec,
		r.Fetches, r.AvgFetchMs, r.AvgUtilization)
}

// State is the view of the running simulation a policy operates on.
//
// Refs is the *disclosed* reference sequence: under a HintSpec it may
// differ from the true one (undisclosed positions point at a phantom
// block that is permanently present, so policies naturally skip them;
// inaccurate positions name the wrong block). Without hints it is the
// true sequence. The Oracle answers next-use queries over the disclosed
// sequence — that is exactly the knowledge the application shared.
//
// Policies must index the sequence through Ref, not Refs directly: in a
// streaming run (Config.Source) the reference columns are rings holding
// only a bounded window of positions around the cursor, and Ref masks
// the position into its ring slot. In a materialized run the mask is -1,
// so Ref(i) reads Refs[i] with zero overhead.
type State struct {
	Refs   []layout.BlockID
	Layout *layout.Layout
	Oracle *future.Oracle
	Cache  *cache.Cache
	Drives []*disk.Drive

	trueRefs []layout.BlockID
	isWrite  []bool
	writes   int64

	// Streaming state. src is nil for materialized runs. The reference
	// columns (Refs, trueRefs, isWrite, compute) are rings of a
	// power-of-two capacity; mask folds a position into its slot
	// (mask = -1, a no-op, when materialized). filled counts the
	// references pulled from the source so far; ahead is how far past
	// the cursor fill keeps the window primed; n is the total trace
	// length in both modes.
	src     trace.Source
	srcBuf  []trace.Ref
	srcI    int
	srcN    int
	mask    int
	n       int
	filled  int
	ahead   int
	phantom layout.BlockID
	noiser  *hintNoiser
	// dwin is the sliding per-disk index a streaming run maintains in
	// place of the lazily built materialized one (both are served
	// through DiskIndex()).
	dwin         *future.DiskIndex
	totalCompute float64
	traceName    string

	compute []float64
	now     float64
	// processAt is the time the process will issue its next reference
	// (start-of-stall time once it arrives there).
	processAt float64
	stalled   bool

	afterMiss bool
	driverMs  float64
	overhead  float64
	fetches   int64
	// In-flight fetch tracking for stall lookups: per block the disk
	// holding its outstanding fetch plus one (0 = none), and the count of
	// outstanding fetches. A flat slice instead of a map keeps the
	// per-fetch bookkeeping allocation free.
	inFlightDisk []int32
	inFlightN    int
	issueErr     error

	// busyEnds mirrors each drive's in-service completion time (+Inf when
	// idle) in one contiguous slice, refreshed after every enqueue and
	// completion. The run loop's next-completion lookup and the policies'
	// free-disk tests read it instead of chasing per-drive pointers.
	// minBusyIdx/minBusyEnd cache the scan the run loop used to do every
	// iteration: the earliest completion, lowest disk index first on
	// ties (-1/+Inf when every drive is idle).
	busyEnds   []float64
	minBusyIdx int
	minBusyEnd float64
	idleDrives int

	// reqFree recycles disk.Request values: a request retires when its
	// drive completes it, so the engine reuses it for a later fetch
	// instead of allocating one per disk access.
	reqFree []*disk.Request

	// dindex is the lazily-built per-disk position index shared by the
	// policies (see DiskIndex).
	dindex *future.DiskIndex

	// Observability. obs is nil for unobserved runs; every emission
	// point is behind a nil check. batchIssued counts the fetches issued
	// per disk within one policy invocation, to emit batch-formation
	// events; stallStart is the begin time of the current stall; breakdowns
	// carries each in-service request's service-time decomposition from
	// start to completion (kept out of disk.Request so the unobserved fast
	// path allocates smaller requests).
	obs         obs.Observer
	batchIssued []int
	stallStart  float64
	breakdowns  map[*disk.Request]disk.Breakdown

	// window is the effective lookahead limit: 0 = unlimited (the paper's
	// full-knowledge case, including windows clamped for covering the
	// whole trace), WindowNone = no future visibility, W > 0 = the policy
	// sees disclosed references in [cursor, cursor+W) only.
	window int

	// OnComplete, if set by the policy in Attach, is invoked after every
	// disk completion with the disk index and modeled service time.
	// Forestall uses it to track recent disk access times.
	OnComplete func(disk int, serviceMs float64)
}

// Now returns the current simulation time in ms.
func (s *State) Now() float64 { return s.now }

// Cursor returns the index of the next reference to be consumed.
func (s *State) Cursor() int { return s.Oracle.Cursor() }

// Len returns the trace length.
func (s *State) Len() int { return s.n }

// Ref returns the disclosed block at position i. In a streaming run only
// a bounded window of positions is resident; policies stay inside it by
// construction (they scan at most WindowLimit positions ahead, and the
// engine fills strictly past that horizon).
func (s *State) Ref(i int) layout.BlockID { return s.Refs[i&s.mask] }

// trueRef returns the block actually referenced at position i (ring slot
// in streaming runs).
func (s *State) trueRef(i int) layout.BlockID { return s.trueRefs[i&s.mask] }

// writeAt reports whether position i is a write-behind update.
func (s *State) writeAt(i int) bool { return s.isWrite[i&s.mask] }

// DiskOf returns the disk holding block b.
func (s *State) DiskOf(b layout.BlockID) int { return s.Layout.Lookup(b).Disk }

// DriveFree reports whether drive i has no request outstanding. It is
// equivalent to Drives[i].Outstanding() == 0 but reads the contiguous
// busy-end mirror, so per-disk polling loops stay cheap.
func (s *State) DriveFree(i int) bool { return s.busyEnds[i] > math.MaxFloat64 }

// AnyDriveFree reports whether at least one drive has no request
// outstanding, without scanning the array.
func (s *State) AnyDriveFree() bool { return s.idleDrives > 0 }

// refreshDrive re-mirrors drive i's completion time after an enqueue or
// completion changed its service state, and maintains the cached
// earliest-completion minimum.
func (s *State) refreshDrive(i int) {
	be := math.Inf(1)
	if d := s.Drives[i]; d.Busy() {
		be = d.BusyEnd()
	}
	if wasIdle, isIdle := s.busyEnds[i] > math.MaxFloat64, be > math.MaxFloat64; wasIdle != isIdle {
		if isIdle {
			s.idleDrives++
		} else {
			s.idleDrives--
		}
	}
	s.busyEnds[i] = be
	switch {
	case i == s.minBusyIdx:
		// The minimum itself moved (completion started a queued request,
		// or the drive went idle); rescan.
		s.rescanBusy()
	case be < s.minBusyEnd || (be == s.minBusyEnd && i < s.minBusyIdx): //ppcvet:ignore bit-exact tie-break over copied busy ends, mirrors rescanBusy's linear scan
		// A linear scan would now stop at i first.
		s.minBusyIdx, s.minBusyEnd = i, be
	}
}

// rescanBusy recomputes the earliest completion: the first drive with a
// strictly smaller busy end wins, matching a left-to-right linear scan.
func (s *State) rescanBusy() {
	s.minBusyIdx, s.minBusyEnd = -1, math.Inf(1)
	for i, be := range s.busyEnds {
		if be < s.minBusyEnd {
			s.minBusyIdx, s.minBusyEnd = i, be
		}
	}
}

// DiskIndex returns the per-disk index of the disclosed reference
// sequence, building it on first use. Positions referencing the phantom
// block (undisclosed hints, write-behind updates) are excluded — the
// phantom is pinned present and has no placement.
func (s *State) DiskIndex() *future.DiskIndex {
	if s.dindex == nil {
		n := layout.BlockID(s.Layout.NumBlocks())
		s.dindex = future.NewDiskIndex(s.Refs, len(s.Drives), func(b layout.BlockID) int {
			if b >= n {
				return -1 // phantom
			}
			return s.Layout.Lookup(b).Disk
		})
	}
	return s.dindex
}

// newRequest returns a zeroed request, reusing a retired one when
// available.
func (s *State) newRequest() *disk.Request {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		*r = disk.Request{}
		return r
	}
	return &disk.Request{}
}

// recycleRequest returns a completed request to the free list. The caller
// must not touch r afterwards.
func (s *State) recycleRequest(r *disk.Request) {
	s.reqFree = append(s.reqFree, r)
}

// ComputeMs returns the inter-reference CPU time that precedes reference i.
func (s *State) ComputeMs(i int) float64 { return s.compute[i&s.mask] }

// Windowed reports whether the run limits lookahead (Window != 0).
func (s *State) Windowed() bool { return s.window != 0 }

// WindowSize returns the effective lookahead window: 0 for unlimited,
// WindowNone for no future visibility, otherwise the positive W.
func (s *State) WindowSize() int { return s.window }

// WindowLimit clamps a policy's scan limit (an exclusive upper position
// bound) to the lookahead horizon cursor+W. With unlimited lookahead it
// returns limit unchanged; with WindowNone the horizon is the cursor
// itself, so scanning loops see no future at all.
func (s *State) WindowLimit(limit int) int {
	if s.window == 0 {
		return limit
	}
	w := s.window
	if w < 0 {
		w = 0
	}
	if horizon := s.Oracle.Cursor() + w; horizon < limit {
		return horizon
	}
	return limit
}

// NoteAssociationHit reports that a block fetched on a mined association
// (the history policy) was subsequently referenced: trigger is the block
// whose access caused the prefetch, block the prefetched block, and lag
// the number of references between prefetch and use. It forwards to the
// observer and is free when the run is unobserved.
func (s *State) NoteAssociationHit(trigger, block layout.BlockID, lag int) {
	if s.obs != nil {
		s.obs.AssociationHit(obs.AssocEvent{
			TMs: s.now, Trigger: int64(trigger), Block: int64(block), Lag: lag,
		})
	}
}

// Observed returns the block actually referenced at a past position
// i < Cursor(). Unlike Refs (the disclosed hints), past accesses are
// observable by any policy — a hint-less LRU cache works from exactly
// this information. Asking about the future panics.
func (s *State) Observed(i int) layout.BlockID {
	if i >= s.Oracle.Cursor() {
		panic(fmt.Sprintf("engine: Observed(%d) is in the future (cursor %d)", i, s.Oracle.Cursor()))
	}
	if s.src != nil && i < s.filled-len(s.trueRefs) {
		panic(fmt.Sprintf("engine: Observed(%d) is outside the retained streaming window (oldest %d)",
			i, s.filled-len(s.trueRefs)))
	}
	return s.trueRefs[i&s.mask]
}

// NextUseVisible returns b's next disclosed use as the policy is allowed
// to see it: clamped to the lookahead window in windowed runs (Never
// beyond the horizon), the raw next use otherwise. Policies consulting
// next-use positions outside their bounded scan loops (e.g. forestall's
// eviction bookkeeping) must use this instead of Oracle.NextUse, or a
// windowed materialized run would act on future knowledge a streaming
// run cannot even hold.
func (s *State) NextUseVisible(b layout.BlockID) int {
	if s.window == 0 {
		return s.Oracle.NextUse(b)
	}
	w := s.window
	if w < 0 {
		w = 0
	}
	return s.Oracle.NextUseWithin(b, w)
}

// Fetches returns the number of fetches issued so far.
func (s *State) Fetches() int64 { return s.fetches }

// Issue starts a fetch of block b, evicting victim (cache.NoBlock for
// none), and enqueues the request at b's disk. The driver overhead is
// charged to the process timeline. Policies must only issue legal
// fetches; an illegal one aborts the run with an error.
func (s *State) Issue(b, victim layout.BlockID) {
	if err := s.Cache.StartFetch(b, victim); err != nil {
		if s.issueErr == nil {
			s.issueErr = fmt.Errorf("policy %T: %w", s, err)
		}
		return
	}
	pl := s.Layout.Lookup(b)
	req := s.newRequest()
	req.Block, req.LBN = b, pl.LBN
	s.Drives[pl.Disk].Enqueue(req, s.now)
	s.refreshDrive(pl.Disk)
	s.inFlightDisk[b] = int32(pl.Disk) + 1
	s.inFlightN++
	s.fetches++
	s.driverMs += s.overhead
	if !s.stalled {
		s.processAt += s.overhead
	}
	if s.obs != nil {
		s.batchIssued[pl.Disk]++
		s.obs.FetchIssued(obs.FetchEvent{
			TMs:         s.now,
			Block:       int64(b),
			Disk:        pl.Disk,
			QueueDepth:  s.Drives[pl.Disk].Outstanding(),
			CacheUsed:   s.Cache.Used(),
			DriverMs:    s.overhead,
			DuringStall: s.stalled,
		})
	}
}

// batchTracker wraps the policy of an observed run: each Poll or OnStall
// invocation counts the fetches the policy issues per disk (via
// State.batchIssued) and emits one BatchFormed event per disk that
// received any. Unobserved runs use the policy directly, so the fast
// path keeps its original call structure.
type batchTracker struct {
	s     *State
	inner Policy
}

func (t *batchTracker) Name() string    { return t.inner.Name() }
func (t *batchTracker) Attach(s *State) { t.inner.Attach(s) }

func (t *batchTracker) Poll() {
	clearBatches(t.s)
	t.inner.Poll()
	emitBatches(t.s, false)
}

func (t *batchTracker) OnStall(b layout.BlockID) {
	clearBatches(t.s)
	t.inner.OnStall(b)
	emitBatches(t.s, true)
}

func clearBatches(s *State) {
	for i := range s.batchIssued {
		s.batchIssued[i] = 0
	}
}

func emitBatches(s *State, onStall bool) {
	if s.obs == nil {
		return
	}
	for d, n := range s.batchIssued {
		if n > 0 {
			s.obs.BatchFormed(obs.BatchEvent{TMs: s.now, Disk: d, Size: n, OnStall: onStall})
		}
	}
}

// Run executes the configured simulation to completion.
func Run(cfg Config) (Result, error) {
	if cfg.Source != nil {
		if cfg.Trace != nil {
			return Result{}, fmt.Errorf("engine: Trace and Source are mutually exclusive")
		}
		return runStreaming(cfg)
	}
	if cfg.Trace == nil {
		return Result{}, fmt.Errorf("engine: nil trace")
	}
	// A zero-length trace is a valid degenerate run (nothing happens, all
	// metrics are zero); Validate rejects it only as a guard for the
	// public API, which screens options before reaching the engine.
	if len(cfg.Trace.Refs) > 0 {
		if err := cfg.Trace.Validate(); err != nil {
			return Result{}, fmt.Errorf("engine: %w", err)
		}
	}
	if cfg.Policy == nil {
		return Result{}, fmt.Errorf("engine: nil policy")
	}
	if cfg.Disks <= 0 {
		return Result{}, fmt.Errorf("engine: disks must be positive, got %d", cfg.Disks)
	}
	cacheBlocks := cfg.CacheBlocks
	if cacheBlocks == 0 {
		cacheBlocks = cfg.Trace.CacheBlocks
	}
	if cacheBlocks <= 1 {
		return Result{}, fmt.Errorf("engine: cache of %d blocks is too small", cacheBlocks)
	}
	overhead := cfg.DriverOverheadMs
	switch {
	case overhead == 0: //ppcvet:ignore unset-config sentinel, assigned by the caller rather than computed
		overhead = DefaultDriverOverheadMs
	case overhead < 0:
		overhead = 0
	}
	model := cfg.Model
	if model == nil {
		model = func() disk.Model { return disk.NewHP97560() }
	}

	lay, err := cfg.Trace.Layout(cfg.Disks, cfg.PlacementSeed)
	if err != nil {
		return Result{}, fmt.Errorf("engine: %w", err)
	}
	refs := make([]layout.BlockID, len(cfg.Trace.Refs))
	compute := make([]float64, len(cfg.Trace.Refs))
	for i, r := range cfg.Trace.Refs {
		refs[i] = r.Block
		compute[i] = r.ComputeMs
	}
	nBlocks := cfg.Trace.NumBlocks()
	isWrite := make([]bool, len(cfg.Trace.Refs))
	hasWrites := false
	for i, r := range cfg.Trace.Refs {
		if r.Write {
			isWrite[i] = true
			hasWrites = true
		}
	}
	disclosed := refs
	blockSpace := nBlocks
	if cfg.Hints != nil || hasWrites {
		// Block id nBlocks is the phantom standing in for references the
		// policy must not act on — undisclosed hints and write-behind
		// updates; it is pinned present so policies skip it.
		blockSpace = nBlocks + 1
		phantom := layout.BlockID(nBlocks)
		disclosed = make([]layout.BlockID, len(refs))
		copy(disclosed, refs)
		for i := range disclosed {
			if isWrite[i] {
				disclosed[i] = phantom
			}
		}
		if cfg.Hints != nil {
			if err := cfg.Hints.Validate(); err != nil {
				return Result{}, err
			}
			applyHintNoise(disclosed, refs, isWrite, phantom, nBlocks, cfg.Hints)
		}
	}
	oracle := future.New(disclosed, blockSpace)
	c, err := cache.New(cacheBlocks, blockSpace, oracle)
	if err != nil {
		return Result{}, fmt.Errorf("engine: %w", err)
	}
	if blockSpace > nBlocks {
		c.MarkAlwaysPresent(layout.BlockID(nBlocks))
	}
	// A window covering the whole trace discloses exactly what unlimited
	// lookahead does (the horizon cursor+W stays past the last reference
	// for every cursor), so it is normalized to the unlimited fast path:
	// runs with W >= len(refs) are bit-identical to full-knowledge runs
	// by construction.
	window := 0
	if cfg.Hints != nil {
		window = cfg.Hints.Window
		if window >= len(refs) {
			window = 0
		}
	}
	if window != 0 {
		c.EnableWindow(window)
	}
	drives := make([]*disk.Drive, cfg.Disks)
	for i := range drives {
		drives[i] = disk.NewDrive(model(), cfg.Discipline)
	}

	s := &State{
		Refs:         disclosed,
		trueRefs:     refs,
		isWrite:      isWrite,
		Layout:       lay,
		Oracle:       oracle,
		Cache:        c,
		Drives:       drives,
		compute:      compute,
		overhead:     overhead,
		inFlightDisk: make([]int32, blockSpace),
		obs:          cfg.Observer,
		window:       window,
		mask:         -1,
		n:            len(refs),
		traceName:    cfg.Trace.Name,
	}
	for _, ct := range compute {
		s.totalCompute += ct
	}
	wireRun(s, cfg)
	return runLoop(s, cfg)
}

// wireRun finishes State setup shared by materialized and streaming
// runs: the busy-end mirror and, for observed runs, the per-drive and
// cache event plumbing.
func wireRun(s *State, cfg Config) {
	s.busyEnds = make([]float64, cfg.Disks)
	for i := range s.busyEnds {
		s.busyEnds[i] = math.Inf(1)
	}
	s.minBusyIdx, s.minBusyEnd = -1, math.Inf(1)
	s.idleDrives = cfg.Disks
	if s.obs != nil {
		s.batchIssued = make([]int, cfg.Disks)
		s.breakdowns = make(map[*disk.Request]disk.Breakdown)
		for i, d := range s.Drives {
			i := i
			d.EnableBreakdown()
			d.OnStart = func(r *disk.Request, b disk.Breakdown, at float64) {
				s.breakdowns[r] = b
				s.obs.FetchStarted(obs.FetchEvent{
					TMs:        at,
					Block:      int64(r.Block),
					Disk:       i,
					Write:      r.Write,
					IssuedMs:   r.EnqueuedAt,
					StartMs:    at,
					QueuedMs:   at - r.EnqueuedAt,
					ServiceMs:  r.ServiceMs,
					SeekMs:     b.SeekMs,
					RotationMs: b.RotationMs,
					TransferMs: b.TransferMs,
				})
			}
		}
		s.Cache.OnEvict = func(victim, replacement layout.BlockID, nextUse int) {
			// Clamp the reported distance to the lookahead window: the event
			// stream must not disclose next uses the run itself cannot see
			// (and a streaming run does not even hold them).
			if s.window != 0 && nextUse != future.Never {
				w := s.window
				if w < 0 {
					w = 0
				}
				if nextUse >= s.Oracle.Cursor()+w {
					nextUse = future.Never
				}
			}
			dist := -1
			if nextUse != future.Never {
				dist = nextUse - s.Oracle.Cursor()
			}
			s.obs.Eviction(obs.EvictEvent{
				TMs:             s.now,
				Victim:          int64(victim),
				Replacement:     int64(replacement),
				NextUseDistance: dist,
			})
		}
	}
}

// runLoop drives the event loop to completion and assembles the Result.
// The State must be fully wired; streaming runs must have primed the
// reference window with fill(0) already.
//
//ppcvet:hotpath
func runLoop(s *State, cfg Config) (Result, error) {
	// pol is the policy the run loop drives; observed runs interpose the
	// batch tracker so BatchFormed events bracket each policy invocation.
	pol := cfg.Policy
	if s.obs != nil {
		pol = &batchTracker{s: s, inner: cfg.Policy}
	}
	cfg.Policy.Attach(s)

	n := s.n
	if n > 0 {
		// The process is about to start computing toward reference 0.
		s.processAt = s.ComputeMs(0)
		pol.Poll()
		if s.issueErr != nil {
			return Result{}, s.issueErr
		}
	}
	var done <-chan struct{}
	if cfg.Ctx != nil {
		done = cfg.Ctx.Done()
	}
	for cursor := 0; cursor < n; {
		if done != nil {
			select {
			case <-done:
				return Result{}, fmt.Errorf("%w after %d of %d references: %w",
					ErrCanceled, cursor, n, cfg.Ctx.Err())
			default:
			}
		}
		if s.src != nil {
			// Keep the streaming window primed past the lookahead horizon
			// before anything reads the columns at this cursor.
			if err := s.fill(cursor); err != nil {
				return Result{}, err
			}
		}
		// Next disk completion, if any (maintained incrementally by
		// refreshDrive; idle drives never surface).
		nextDisk, diskAt := s.minBusyIdx, s.minBusyEnd

		b := s.trueRef(cursor)

		if !s.stalled && diskAt >= s.processAt {
			// The process reaches its reference before any disk event.
			s.now = s.processAt
			if s.writeAt(cursor) {
				// Write behind: enqueue the update and continue without
				// stalling (the paper's motivation for ignoring writes).
				pl := s.Layout.Lookup(b)
				req := s.newRequest()
				req.Block, req.LBN, req.Write = b, pl.LBN, true
				s.Drives[pl.Disk].Enqueue(req, s.now)
				s.refreshDrive(pl.Disk)
				s.writes++
				s.driverMs += s.overhead
				if s.obs != nil {
					s.obs.FetchIssued(obs.FetchEvent{
						TMs:        s.now,
						Block:      int64(b),
						Disk:       pl.Disk,
						Write:      true,
						QueueDepth: s.Drives[pl.Disk].Outstanding(),
						CacheUsed:  s.Cache.Used(),
						DriverMs:   s.overhead,
					})
				}
				serveReference(s, pol, &cursor)
				if s.issueErr != nil {
					return Result{}, s.issueErr
				}
				// The write's driver overhead delays the next reference
				// (serveReference reset processAt from the compute time).
				s.processAt += s.overhead
				continue
			}
			if s.Cache.Present(b) {
				serveReference(s, pol, &cursor)
				if s.issueErr != nil {
					return Result{}, s.issueErr
				}
				continue
			}
			// Stall begins.
			s.stalled = true
			s.Cache.Miss()
			if s.obs != nil {
				s.stallStart = s.now
				s.obs.StallBegin(obs.StallEvent{
					TMs: s.now, Pos: cursor, Block: int64(b), Disk: s.DiskOf(b),
				})
				if s.window != 0 {
					// Under limited lookahead every demand miss is a
					// window miss: the block was either beyond the horizon
					// or invisible (undisclosed / WindowNone) when the
					// policy could still have prefetched it.
					s.obs.WindowMiss(obs.WindowEvent{
						TMs: s.now, Pos: cursor, Block: int64(b),
						Disk: s.DiskOf(b), Window: s.window,
					})
				}
			}
			if err := ensureStallFetch(s, pol, b, cursor); err != nil {
				return Result{}, err
			}
			continue
		}

		if nextDisk < 0 {
			// Unreachable when not stalled (the process branch above
			// always fires with no disk events); stalling with idle disks
			// means the policy failed to fetch.
			return Result{}, fmt.Errorf("engine: stalled on block %d with all disks idle", b)
		}

		// Advance to the disk completion.
		s.now = diskAt
		req := s.Drives[nextDisk].Complete(s.now)
		s.refreshDrive(nextDisk)
		if s.obs != nil {
			emitFetchCompleted(s, req, nextDisk)
		}
		if req.Write {
			// Write-behind completion: no cache state changes; just give
			// the policy a decision point.
			s.recycleRequest(req)
			pol.Poll()
			if s.issueErr != nil {
				return Result{}, s.issueErr
			}
			if s.stalled {
				if err := ensureStallFetch(s, pol, b, cursor); err != nil {
					return Result{}, err
				}
			}
			continue
		}
		// The request retires here; copy what the rest of the iteration
		// needs before recycling it.
		fetched := req.Block
		serviceMs := req.ServiceMs
		s.recycleRequest(req)
		s.Cache.CompleteFetch(fetched)
		s.inFlightDisk[fetched] = 0
		s.inFlightN--
		if s.OnComplete != nil {
			s.OnComplete(nextDisk, serviceMs)
		}

		if s.stalled && fetched == b && !s.writeAt(cursor) {
			// Stall ends: the process consumes the reference now.
			s.stalled = false
			s.afterMiss = true
			s.processAt = s.now
			if s.obs != nil {
				s.obs.StallEnd(obs.StallEvent{
					TMs: s.now, Pos: cursor, Block: int64(b), Disk: nextDisk,
					DurationMs: s.now - s.stallStart,
				})
			}
			serveReference(s, pol, &cursor)
			if s.issueErr != nil {
				return Result{}, s.issueErr
			}
			continue
		}
		pol.Poll()
		if s.issueErr != nil {
			return Result{}, s.issueErr
		}
		if s.stalled {
			// A buffer may have freed up; make sure the stalled block's
			// fetch gets issued.
			if err := ensureStallFetch(s, pol, b, cursor); err != nil {
				return Result{}, err
			}
		}
	}

	elapsed := s.now
	if s.obs != nil {
		s.obs.RunEnd(elapsed)
	}
	var busy, svc, resp float64
	var served int64
	perDisk := make([]DiskResult, len(s.Drives))
	for i, d := range s.Drives {
		// Busy time is credited at service start; a speculative fetch still
		// in service when the last reference lands (readahead extrapolating
		// past the end of the trace) would otherwise count service beyond
		// the run window and push utilization above 1.
		diskBusy := d.BusyTime()
		if d.Busy() && d.BusyEnd() > elapsed {
			diskBusy -= d.BusyEnd() - elapsed
		}
		busy += diskBusy
		svc += d.MeanServiceMs() * float64(d.Completed())
		resp += d.MeanResponseMs() * float64(d.Completed())
		served += d.Completed()
		perDisk[i] = DiskResult{
			Fetches:    d.Completed(),
			BusySec:    diskBusy / 1000,
			AvgFetchMs: d.MeanServiceMs(),
			AvgRespMs:  d.MeanResponseMs(),
		}
		if elapsed > 0 {
			perDisk[i].Utilization = diskBusy / elapsed
		}
	}
	// Stall is the residual idle time, exactly as the paper decomposes
	// elapsed time: CPU compute + driver overhead + I/O stall. Driver work
	// performed while the process was stalled overlaps the stall, so the
	// residual (clamped at zero) is the pure idle component.
	stallMs := elapsed - s.totalCompute - s.driverMs
	if stallMs < 0 {
		stallMs = 0
	}
	res := Result{
		Trace:         s.traceName,
		Policy:        cfg.Policy.Name(),
		Disks:         cfg.Disks,
		Discipline:    cfg.Discipline,
		Fetches:       s.fetches,
		DriverTimeSec: s.driverMs / 1000,
		StallTimeSec:  stallMs / 1000,
		ElapsedSec:    elapsed / 1000,
		ComputeSec:    s.totalCompute / 1000,
		CacheHits:     s.Cache.Hits(),
		CacheMisses:   s.Cache.Misses(),
		WriteRequests: s.writes,
		PerDisk:       perDisk,
	}
	if served > 0 {
		res.AvgFetchMs = svc / float64(served)
		res.AvgResponseMs = resp / float64(served)
	}
	if elapsed > 0 {
		res.AvgUtilization = busy / elapsed / float64(len(s.Drives))
	}
	if cfg.Observer != nil {
		obs.Each(cfg.Observer, func(o obs.Observer) {
			if st, ok := o.(*obs.StreamingStats); ok {
				res.Latency = summarize(st)
			}
		})
	}
	return res, nil
}

// runStreaming executes a run from a streaming trace source, keeping
// only a bounded ring of references resident. A streamed run is
// byte-identical to materializing the same source and running it with
// the same options: the hint noise is drawn in the same order, the
// policies only ever inspect positions inside their lookahead window
// (which the engine keeps filled), and eviction beyond the window falls
// back to the same LRU order in both modes.
func runStreaming(cfg Config) (Result, error) {
	src := cfg.Source
	if cfg.Policy == nil {
		return Result{}, fmt.Errorf("engine: nil policy")
	}
	if _, ok := cfg.Policy.(interface{ RequiresFullTrace() }); ok {
		return Result{}, fmt.Errorf("engine: policy %s requires the full trace; materialize the source to run it", cfg.Policy.Name())
	}
	if cfg.Disks <= 0 {
		return Result{}, fmt.Errorf("engine: disks must be positive, got %d", cfg.Disks)
	}
	m := src.Meta()
	if err := m.Validate(); err != nil {
		return Result{}, fmt.Errorf("engine: %w", err)
	}
	if err := src.Reset(); err != nil {
		return Result{}, fmt.Errorf("engine: source reset: %w", err)
	}
	if m.Refs >= int64(future.Never) {
		return Result{}, fmt.Errorf("engine: trace of %d references exceeds the 2^31-1 position space", m.Refs)
	}
	n := int(m.Refs)
	if cfg.Hints == nil {
		return Result{}, fmt.Errorf("engine: streaming runs need Hints with a bounded lookahead window")
	}
	if err := cfg.Hints.Validate(); err != nil {
		return Result{}, err
	}
	window := cfg.Hints.Window
	if window == 0 || window >= n {
		return Result{}, fmt.Errorf("engine: streaming runs need a lookahead window smaller than the trace (window %d, %d refs); materialize the trace for unlimited lookahead", window, n)
	}
	cacheBlocks := cfg.CacheBlocks
	if cacheBlocks == 0 {
		cacheBlocks = m.CacheBlocks
	}
	if cacheBlocks <= 1 {
		return Result{}, fmt.Errorf("engine: cache of %d blocks is too small", cacheBlocks)
	}
	overhead := cfg.DriverOverheadMs
	switch {
	case overhead == 0: //ppcvet:ignore unset-config sentinel, assigned by the caller rather than computed
		overhead = DefaultDriverOverheadMs
	case overhead < 0:
		overhead = 0
	}
	model := cfg.Model
	if model == nil {
		model = func() disk.Model { return disk.NewHP97560() }
	}
	lay, err := m.Layout(cfg.Disks, cfg.PlacementSeed)
	if err != nil {
		return Result{}, fmt.Errorf("engine: %w", err)
	}
	nBlocks := m.NumBlocks()
	// Hints are mandatory here, so the phantom block always exists (as it
	// does in the materialized hinted run this one must match).
	blockSpace := nBlocks + 1
	phantom := layout.BlockID(nBlocks)

	// The ring must hold the policies' whole lookahead ([cursor,
	// cursor+W)), the compute time of the reference after the one being
	// served, and a margin of already-consumed positions for the recency
	// policies' Observed back-reads (they lag the cursor by a handful of
	// references at most; 64 is comfortable).
	w := window
	if w < 0 {
		w = 0
	}
	ahead := w + 2
	ringCap := nextPow2(ahead + 64)
	oracle := future.NewStreaming(blockSpace, ringCap)
	c, err := cache.New(cacheBlocks, blockSpace, oracle)
	if err != nil {
		return Result{}, fmt.Errorf("engine: %w", err)
	}
	c.MarkAlwaysPresent(phantom)
	c.EnableWindow(window)
	drives := make([]*disk.Drive, cfg.Disks)
	for i := range drives {
		drives[i] = disk.NewDrive(model(), cfg.Discipline)
	}

	s := &State{
		Refs:         make([]layout.BlockID, ringCap),
		trueRefs:     make([]layout.BlockID, ringCap),
		isWrite:      make([]bool, ringCap),
		compute:      make([]float64, ringCap),
		Layout:       lay,
		Oracle:       oracle,
		Cache:        c,
		Drives:       drives,
		overhead:     overhead,
		inFlightDisk: make([]int32, blockSpace),
		obs:          cfg.Observer,
		window:       window,
		src:          src,
		srcBuf:       make([]trace.Ref, 4096),
		mask:         ringCap - 1,
		n:            n,
		ahead:        ahead,
		phantom:      phantom,
		noiser:       newHintNoiser(cfg.Hints, phantom, nBlocks),
		traceName:    m.Name,
	}
	s.dwin = future.NewSlidingDiskIndex(cfg.Disks, ringCap)
	s.dindex = s.dwin
	wireRun(s, cfg)
	if err := s.fill(0); err != nil {
		return Result{}, err
	}
	return runLoop(s, cfg)
}

// fill pulls references from the source until positions [cursor,
// cursor+ahead) (clamped to the trace length) are resident, validating
// each reference and threading its disclosed block into the oracle and
// the sliding disk index. The total compute accumulates in trace order,
// so the final sum is bit-identical to a materialized run's.
func (s *State) fill(cursor int) error {
	target := cursor + s.ahead
	if target > s.n {
		target = s.n
	}
	for s.filled < target {
		if s.srcI == s.srcN {
			nr, err := s.src.ReadRefs(s.srcBuf)
			if nr <= 0 {
				if err == nil || err == io.EOF {
					return fmt.Errorf("engine: source %q ended at reference %d of %d", s.traceName, s.filled, s.n)
				}
				return fmt.Errorf("engine: source %q read: %w", s.traceName, err)
			}
			// A non-EOF error alongside refs: consume them; the error
			// resurfaces on the next read if it persists.
			s.srcI, s.srcN = 0, nr
		}
		r := s.srcBuf[s.srcI]
		s.srcI++
		i := s.filled
		if int(r.Block) < 0 || int(r.Block) >= int(s.phantom) {
			return fmt.Errorf("engine: source %q ref %d block %d out of range [0,%d)", s.traceName, i, r.Block, s.phantom)
		}
		if math.IsNaN(r.ComputeMs) || math.IsInf(r.ComputeMs, 0) || r.ComputeMs < 0 {
			return fmt.Errorf("engine: source %q ref %d invalid compute %g", s.traceName, i, r.ComputeMs)
		}
		slot := i & s.mask
		s.trueRefs[slot] = r.Block
		s.compute[slot] = r.ComputeMs
		s.isWrite[slot] = r.Write
		d := s.phantom
		if !r.Write {
			d = s.noiser.draw(r.Block)
		}
		s.Refs[slot] = d
		s.Oracle.Append(d)
		if d != s.phantom {
			s.dwin.Append(i, s.Layout.Lookup(d).Disk)
		}
		s.totalCompute += r.ComputeMs
		s.filled++
	}
	return nil
}

// nextPow2 returns the smallest power of two >= v (and >= 2).
func nextPow2(v int) int {
	p := 2
	for p < v {
		p <<= 1
	}
	return p
}

// summarize converts a StreamingStats observer into the Result's
// latency summary.
func summarize(st *obs.StreamingStats) *LatencySummary {
	return &LatencySummary{
		FetchCount:  st.FetchLatency.Count(),
		FetchMeanMs: st.FetchLatency.MeanMs(),
		FetchP50Ms:  st.FetchLatency.Quantile(0.50),
		FetchP95Ms:  st.FetchLatency.Quantile(0.95),
		FetchP99Ms:  st.FetchLatency.Quantile(0.99),
		StallCount:  st.StallDuration.Count(),
		StallMeanMs: st.StallDuration.MeanMs(),
		StallP50Ms:  st.StallDuration.Quantile(0.50),
		StallP95Ms:  st.StallDuration.Quantile(0.95),
		StallP99Ms:  st.StallDuration.Quantile(0.99),
	}
}

// emitFetchCompleted reports a completed request, with its queueing and
// service breakdown, to the attached observer.
func emitFetchCompleted(s *State, req *disk.Request, d int) {
	if s.obs == nil {
		return
	}
	start := s.now - req.ServiceMs
	b := s.breakdowns[req]
	delete(s.breakdowns, req)
	s.obs.FetchCompleted(obs.FetchEvent{
		TMs:        s.now,
		Block:      int64(req.Block),
		Disk:       d,
		Write:      req.Write,
		QueueDepth: s.Drives[d].Outstanding(),
		CacheUsed:  s.Cache.Used(),
		IssuedMs:   req.EnqueuedAt,
		StartMs:    start,
		QueuedMs:   start - req.EnqueuedAt,
		ServiceMs:  req.ServiceMs,
		SeekMs:     b.SeekMs,
		RotationMs: b.RotationMs,
		TransferMs: b.TransferMs,
	})
}

// ensureStallFetch asks the policy to fetch the stalled block b. A policy
// may be unable to comply when every buffer is reserved by an in-flight
// fetch; in that case the engine retries after the next disk completion.
// It is an error only if no fetch is in flight anywhere (deadlock).
func ensureStallFetch(s *State, p Policy, b layout.BlockID, cursor int) error {
	if s.inFlightDisk[b] != 0 {
		return nil
	}
	if !s.Cache.Absent(b) {
		return nil // completed while polling
	}
	p.OnStall(b)
	if s.issueErr != nil {
		return s.issueErr
	}
	if s.inFlightDisk[b] != 0 {
		return nil
	}
	if s.inFlightN == 0 {
		return fmt.Errorf("engine: policy %s did not fetch stalled block %d at position %d",
			p.Name(), b, cursor)
	}
	return nil
}

// serveReference consumes the reference at *cursor (which must be
// present), advances the oracle and heap bookkeeping, sets the process's
// next reference time, and polls the policy.
func serveReference(s *State, p Policy, cursor *int) {
	b := s.trueRef(*cursor)
	hit := !s.afterMiss
	switch {
	case s.writeAt(*cursor):
		// Writes bypass the cache.
	case s.afterMiss:
		s.Cache.ReferenceMissed(b)
		s.afterMiss = false
	default:
		s.Cache.Reference(b)
	}
	wasWrite := s.writeAt(*cursor)
	if s.obs != nil && !wasWrite {
		s.obs.RefServed(obs.RefEvent{
			TMs: s.now, Pos: *cursor, Block: int64(b),
			Disk: s.DiskOf(b), Hit: hit,
		})
	}
	*cursor++
	s.advanceCursor(*cursor)
	if !wasWrite {
		s.Cache.Touched(b)
	}
	if *cursor < s.n {
		s.processAt = s.now + s.ComputeMs(*cursor)
	}
	p.Poll()
}

// advanceCursor moves the oracle cursor to c, first popping the consumed
// positions from a streaming run's sliding disk index (their disclosed
// blocks leave the window as the oracle passes them).
func (s *State) advanceCursor(c int) {
	if s.src != nil {
		for p := s.Oracle.Cursor(); p < c; p++ {
			if d := s.Refs[p&s.mask]; d != s.phantom {
				s.dwin.AdvancePast(p, s.Layout.Lookup(d).Disk)
			}
		}
	}
	s.Oracle.Advance(c)
}
