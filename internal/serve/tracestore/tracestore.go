// Package tracestore is a content-addressed store of columnar trace
// files for the serving stack. Traces are named by the lowercase hex
// SHA-256 of their bytes, uploaded once per worker (PUT /v1/traces), and
// then referenced from any number of run cells by hash — the
// cluster-scale analogue of the inline trace body. The store keeps a
// byte budget: least-recently-used blobs are deleted when a new upload
// would exceed it, except that entries pinned by a running simulation
// are never evicted (a sweep that streams a 9 GB trace must not have the
// file unlinked mid-read).
package tracestore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrNotFound reports a hash the store does not hold.
var ErrNotFound = errors.New("tracestore: trace not found")

// MismatchError reports an upload whose bytes do not hash to the name
// it was uploaded under.
type MismatchError struct {
	Want, Got string
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("tracestore: body hashes to %s, not %s", e.Got, e.Want)
}

// TooLargeError reports a single upload bigger than the whole budget.
type TooLargeError struct {
	Bytes, Budget int64
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("tracestore: %d-byte trace exceeds the %d-byte store budget", e.Bytes, e.Budget)
}

// ValidHash reports whether h is a well-formed trace name: exactly 64
// lowercase hex digits.
func ValidHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Config configures a Store.
type Config struct {
	// Dir is the directory holding the blobs; created if absent. Files
	// are named by their hash, so a restarted worker re-adopts whatever
	// a previous process left behind.
	Dir string
	// MaxBytes is the byte budget (0 = 1 GiB).
	MaxBytes int64
	// Now supplies access times for LRU ordering (nil = time.Now).
	// Tests inject a fake clock here.
	Now func() time.Time
}

// Store is a concurrency-safe content-addressed blob directory with
// LRU byte-budget eviction and pinning.
type Store struct {
	dir      string
	maxBytes int64
	now      func() time.Time

	mu sync.Mutex
	//ppcvet:guardedby mu
	ll *list.List // front = most recently used
	//ppcvet:guardedby mu
	m map[string]*list.Element
	//ppcvet:guardedby mu
	bytes int64
	//ppcvet:guardedby mu
	evictions int64
}

// storeEntry is one blob; pins counts open Handles, and a pinned entry
// is skipped by eviction.
type storeEntry struct {
	hash  string
	bytes int64
	pins  int
	atime time.Time
}

// Stats is a point-in-time snapshot for /v1/statsz.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Evictions int64 `json:"evictions"`
}

// New opens (creating if needed) the store directory and adopts any
// blobs already there, oldest first so a fresh upload outranks them.
// Adopted files are trusted to match their names — Put verified them
// when they were written — but anything not named like a hash is
// ignored rather than deleted.
func New(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("tracestore: Config.Dir is required")
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 1 << 30
	}
	if cfg.MaxBytes < 0 {
		return nil, fmt.Errorf("tracestore: negative byte budget %d", cfg.MaxBytes)
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	s := &Store{
		dir:      cfg.Dir,
		maxBytes: cfg.MaxBytes,
		now:      cfg.Now,
		ll:       list.New(),
		m:        make(map[string]*list.Element),
	}
	ents, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	type adopted struct {
		hash  string
		bytes int64
		mtime time.Time
	}
	var found []adopted
	for _, de := range ents {
		if de.IsDir() || !ValidHash(de.Name()) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, adopted{de.Name(), info.Size(), info.ModTime()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	s.mu.Lock()
	for _, a := range found {
		e := &storeEntry{hash: a.hash, bytes: a.bytes, atime: a.mtime}
		s.m[a.hash] = s.ll.PushFront(e)
		s.bytes += a.bytes
	}
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// path returns the blob file for hash.
func (s *Store) path(hash string) string { return filepath.Join(s.dir, hash) }

// Put streams r into the store under hash, verifying that the bytes
// actually hash to that name before committing. It reports whether a
// new blob was created (false: the store already held it, and the body
// was drained and discarded after verification). Eviction runs after a
// successful commit; uploads larger than the whole budget are rejected
// up front with a *TooLargeError.
func (s *Store) Put(hash string, r io.Reader) (created bool, err error) {
	if !ValidHash(hash) {
		return false, fmt.Errorf("tracestore: invalid trace hash %q (want 64 lowercase hex digits)", hash)
	}
	// Stream to a temp file while hashing; rename into place only after
	// the digest checks out, so the directory never holds a blob whose
	// name lies about its content.
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return false, fmt.Errorf("tracestore: %w", err)
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}()
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(tmp, h), io.LimitReader(r, s.maxBytes+1))
	if err != nil {
		return false, fmt.Errorf("tracestore: reading upload: %w", err)
	}
	if n > s.maxBytes {
		return false, &TooLargeError{Bytes: n, Budget: s.maxBytes}
	}
	got := hex.EncodeToString(h.Sum(nil))
	if got != hash {
		return false, &MismatchError{Want: hash, Got: got}
	}
	if err := tmp.Close(); err != nil {
		return false, fmt.Errorf("tracestore: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[hash]; ok {
		// Duplicate upload: keep the existing blob, refresh recency.
		ent := e.Value.(*storeEntry)
		ent.atime = s.now()
		s.ll.MoveToFront(e)
		return false, nil
	}
	if err := os.Rename(tmp.Name(), s.path(hash)); err != nil {
		return false, fmt.Errorf("tracestore: %w", err)
	}
	// The fresh blob rides through the insertion eviction pinned:
	// otherwise a store whose older entries are all pinned would evict
	// the bytes it just verified and report the upload a success anyway.
	// If nothing else is evictable the store runs over budget until a
	// pin drops.
	ent := &storeEntry{hash: hash, bytes: n, atime: s.now(), pins: 1}
	s.m[hash] = s.ll.PushFront(ent)
	s.bytes += n
	s.evictLocked()
	ent.pins--
	return true, nil
}

// evictLocked deletes least-recently-used unpinned blobs until the
// store fits its budget. Pinned entries are skipped: if every remaining
// blob is mid-read the store runs over budget until the pins drop.
func (s *Store) evictLocked() {
	e := s.ll.Back()
	for s.bytes > s.maxBytes && e != nil {
		prev := e.Prev()
		ent := e.Value.(*storeEntry)
		if ent.pins == 0 {
			s.ll.Remove(e)
			delete(s.m, ent.hash)
			s.bytes -= ent.bytes
			s.evictions++
			os.Remove(s.path(ent.hash))
		}
		e = prev
	}
}

// Has reports whether the store holds hash, without touching recency.
func (s *Store) Has(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[hash]
	return ok
}

// Handle is an open, pinned blob. It is an io.ReadSeeker over the raw
// columnar bytes; Close releases the pin. The entry cannot be evicted
// while any Handle on it is open.
type Handle struct {
	f     *os.File
	s     *Store
	hash  string
	bytes int64
	once  sync.Once
}

func (h *Handle) Read(p []byte) (int, error)                { return h.f.Read(p) }
func (h *Handle) Seek(off int64, whence int) (int64, error) { return h.f.Seek(off, whence) }
func (h *Handle) Bytes() int64                              { return h.bytes }

// Close releases the pin and closes the file. Safe to call twice.
func (h *Handle) Close() error {
	err := h.f.Close()
	h.once.Do(func() { h.s.unpin(h.hash) })
	return err
}

// Open returns a pinned read handle on hash, marking it most recently
// used, or ErrNotFound.
func (s *Store) Open(hash string) (*Handle, error) {
	s.mu.Lock()
	e, ok := s.m[hash]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, hash)
	}
	ent := e.Value.(*storeEntry)
	ent.pins++
	ent.atime = s.now()
	s.ll.MoveToFront(e)
	s.mu.Unlock()

	f, err := os.Open(s.path(hash))
	if err != nil {
		s.unpin(hash)
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	return &Handle{f: f, s: s, hash: hash, bytes: ent.bytes}, nil
}

// unpin drops one pin from hash and re-runs eviction in case the store
// was held over budget waiting for it.
func (s *Store) unpin(hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[hash]; ok {
		ent := e.Value.(*storeEntry)
		if ent.pins > 0 {
			ent.pins--
		}
	}
	if s.bytes > s.maxBytes {
		s.evictLocked()
	}
}

// Stats snapshots the store for /v1/statsz.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:   s.ll.Len(),
		Bytes:     s.bytes,
		MaxBytes:  s.maxBytes,
		Evictions: s.evictions,
	}
}

// HashBytes returns the store name for a blob: lowercase hex SHA-256.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// HashReader hashes r to the store naming scheme.
func HashReader(r io.Reader) (string, int64, error) {
	h := sha256.New()
	n, err := io.Copy(h, r)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}
