package tracestore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic, concurrency-safe Config.Now: every call
// advances one second, so successive operations get distinct,
// monotonically increasing access times without touching the wall clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Second)
	return c.t
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// blob returns n deterministic bytes tagged by label, plus their hash.
func blob(label string, n int) ([]byte, string) {
	b := bytes.Repeat([]byte(label), (n+len(label)-1)/len(label))[:n]
	return b, HashBytes(b)
}

func newTestStore(t *testing.T, maxBytes int64) (*Store, string, *fakeClock) {
	t.Helper()
	dir := t.TempDir()
	clk := newFakeClock()
	s, err := New(Config{Dir: dir, MaxBytes: maxBytes, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	return s, dir, clk
}

func mustPut(t *testing.T, s *Store, data []byte, hash string) {
	t.Helper()
	created, err := s.Put(hash, bytes.NewReader(data))
	if err != nil {
		t.Fatalf("Put(%s): %v", hash[:8], err)
	}
	if !created {
		t.Fatalf("Put(%s): expected a new blob", hash[:8])
	}
}

func TestPutOpenRoundTrip(t *testing.T) {
	s, dir, _ := newTestStore(t, 1<<20)
	data, hash := blob("roundtrip", 1000)
	mustPut(t, s, data, hash)

	if !s.Has(hash) {
		t.Fatal("Has = false after Put")
	}
	h, err := s.Open(hash)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	got, err := io.ReadAll(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read bytes differ from upload")
	}
	if h.Bytes() != int64(len(data)) {
		t.Fatalf("Bytes() = %d, want %d", h.Bytes(), len(data))
	}
	// The blob is a plain file named by its hash.
	if _, err := os.Stat(filepath.Join(dir, hash)); err != nil {
		t.Fatalf("blob file missing: %v", err)
	}
}

func TestEvictionIsLRU(t *testing.T) {
	s, dir, _ := newTestStore(t, 100)
	a, hashA := blob("aaaa", 40)
	b, hashB := blob("bbbb", 40)
	mustPut(t, s, a, hashA)
	mustPut(t, s, b, hashB)

	// Touch A so B becomes the least recently used entry.
	h, err := s.Open(hashA)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()

	c, hashC := blob("cccc", 40)
	mustPut(t, s, c, hashC)

	if s.Has(hashB) {
		t.Fatal("B should have been evicted (least recently used)")
	}
	if !s.Has(hashA) || !s.Has(hashC) {
		t.Fatal("A (recently read) and C (just written) should survive")
	}
	if _, err := os.Stat(filepath.Join(dir, hashB)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("evicted blob file still on disk: %v", err)
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("store over budget after eviction: %d > %d", st.Bytes, st.MaxBytes)
	}
}

func TestDuplicatePutRefreshesRecency(t *testing.T) {
	s, _, _ := newTestStore(t, 100)
	a, hashA := blob("aaaa", 40)
	b, hashB := blob("bbbb", 40)
	mustPut(t, s, a, hashA)
	mustPut(t, s, b, hashB)

	// Re-upload A: no new blob, but A becomes most recently used.
	created, err := s.Put(hashA, bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("duplicate Put reported created = true")
	}

	c, hashC := blob("cccc", 40)
	mustPut(t, s, c, hashC)
	if s.Has(hashB) || !s.Has(hashA) {
		t.Fatal("duplicate Put should have refreshed A's recency over B")
	}
}

func TestPinnedEntriesAreNeverEvicted(t *testing.T) {
	s, dir, _ := newTestStore(t, 100)
	a, hashA := blob("aaaa", 60)
	mustPut(t, s, a, hashA)

	h, err := s.Open(hashA) // pin A
	if err != nil {
		t.Fatal(err)
	}

	// B pushes the store over budget; A is LRU but pinned, so the store
	// runs over budget rather than unlinking a file mid-read.
	b, hashB := blob("bbbb", 60)
	mustPut(t, s, b, hashB)
	if !s.Has(hashA) {
		t.Fatal("pinned entry was evicted")
	}
	if st := s.Stats(); st.Bytes <= st.MaxBytes {
		t.Fatalf("expected over-budget store while pinned, got %d <= %d", st.Bytes, st.MaxBytes)
	}
	// The pinned handle still reads its full content.
	if got, err := io.ReadAll(h); err != nil || !bytes.Equal(got, a) {
		t.Fatalf("pinned read failed: %v", err)
	}

	// Dropping the pin releases the deferred eviction: A is LRU and goes.
	h.Close()
	if s.Has(hashA) {
		t.Fatal("unpinned LRU entry should be evicted once over budget")
	}
	if !s.Has(hashB) {
		t.Fatal("most recent entry evicted instead of the unpinned LRU one")
	}
	if st := s.Stats(); st.Bytes > st.MaxBytes {
		t.Fatalf("store still over budget after unpin: %d > %d", st.Bytes, st.MaxBytes)
	}
	if _, err := os.Stat(filepath.Join(dir, hashA)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("evicted blob file still on disk")
	}
}

func TestDoubleCloseReleasesOnePin(t *testing.T) {
	s, _, _ := newTestStore(t, 1000)
	a, hashA := blob("aaaa", 10)
	mustPut(t, s, a, hashA)
	h1, err := s.Open(hashA)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.Open(hashA)
	if err != nil {
		t.Fatal(err)
	}
	h1.Close()
	h1.Close() // second Close must not drop h2's pin

	s.mu.Lock()
	pins := s.m[hashA].Value.(*storeEntry).pins
	s.mu.Unlock()
	if pins != 1 {
		t.Fatalf("pins = %d after double close of one handle, want 1", pins)
	}
	h2.Close()
}

func TestPutRejectsMismatch(t *testing.T) {
	s, dir, _ := newTestStore(t, 1<<20)
	data, _ := blob("content", 100)
	_, wrongHash := blob("other", 100)
	_, err := s.Put(wrongHash, bytes.NewReader(data))
	var mismatch *MismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("Put under wrong hash: got %v, want *MismatchError", err)
	}
	if mismatch.Want != wrongHash || mismatch.Got != HashBytes(data) {
		t.Fatalf("mismatch names wrong hashes: %+v", mismatch)
	}
	if s.Has(wrongHash) {
		t.Fatal("mismatched upload committed")
	}
	// The temp file must not linger.
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("directory not clean after rejected upload: %v", ents)
	}
}

func TestPutRejectsOversize(t *testing.T) {
	s, _, _ := newTestStore(t, 50)
	data, hash := blob("big", 51)
	_, err := s.Put(hash, bytes.NewReader(data))
	var tooLarge *TooLargeError
	if !errors.As(err, &tooLarge) {
		t.Fatalf("oversize Put: got %v, want *TooLargeError", err)
	}
	if tooLarge.Budget != 50 {
		t.Fatalf("TooLargeError budget = %d, want 50", tooLarge.Budget)
	}
}

func TestPutRejectsBadHashName(t *testing.T) {
	s, _, _ := newTestStore(t, 1<<20)
	for _, h := range []string{"", "abc", strings.Repeat("G", 64), strings.Repeat("A", 64)} {
		if _, err := s.Put(h, bytes.NewReader(nil)); err == nil {
			t.Fatalf("Put(%q) accepted an invalid hash", h)
		}
	}
}

func TestOpenNotFound(t *testing.T) {
	s, _, _ := newTestStore(t, 1<<20)
	_, unknown := blob("never-stored", 8)
	_, err := s.Open(unknown)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Open of unknown hash: got %v, want ErrNotFound", err)
	}
}

func TestNewAdoptsExistingBlobs(t *testing.T) {
	dir := t.TempDir()
	a, hashA := blob("adopt-a", 30)
	b, hashB := blob("adopt-b", 30)
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	for i, f := range []struct {
		hash string
		data []byte
	}{{hashA, a}, {hashB, b}} {
		p := filepath.Join(dir, f.hash)
		if err := os.WriteFile(p, f.data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes pin the adoption (= LRU) order: A older than B.
		if err := os.Chtimes(p, base, base.Add(time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	// Junk that is not named like a hash is ignored, not deleted.
	junk := filepath.Join(dir, "README")
	if err := os.WriteFile(junk, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	clk := newFakeClock()
	s, err := New(Config{Dir: dir, MaxBytes: 100, Now: clk.now})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(hashA) || !s.Has(hashB) {
		t.Fatal("existing blobs not adopted")
	}
	if st := s.Stats(); st.Entries != 2 || st.Bytes != 60 {
		t.Fatalf("adopted stats = %+v", st)
	}
	if _, err := os.Stat(junk); err != nil {
		t.Fatal("non-blob file was deleted during adoption")
	}

	// A fresh upload outranks both adopted blobs; the oldest mtime (A)
	// is evicted first.
	c, hashC := blob("adopt-c", 50)
	mustPut(t, s, c, hashC)
	if s.Has(hashA) {
		t.Fatal("oldest adopted blob should be evicted first")
	}
	if !s.Has(hashB) || !s.Has(hashC) {
		t.Fatal("wrong blob evicted")
	}
}

func TestNewEvictsOverBudgetAdoption(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 4; i++ {
		data, hash := blob(fmt.Sprintf("over-%d", i), 40)
		if err := os.WriteFile(filepath.Join(dir, hash), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Config{Dir: dir, MaxBytes: 100, Now: newFakeClock().now})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Bytes > st.MaxBytes || st.Entries != 2 {
		t.Fatalf("adoption did not enforce the budget: %+v", st)
	}
}

func TestHashHelpersAgree(t *testing.T) {
	data, _ := blob("helpers", 500)
	want := HashBytes(data)
	got, n, err := HashReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got != want || n != int64(len(data)) {
		t.Fatalf("HashReader = (%s, %d), want (%s, %d)", got, n, want, len(data))
	}
	if !ValidHash(want) {
		t.Fatal("HashBytes output fails ValidHash")
	}
}

// TestConcurrentPutOpenStress hammers one small-budget store from many
// goroutines mixing uploads, duplicate uploads, reads, probes, and
// stats. Run under -race this is the store's concurrency-safety proof;
// the invariant checked at the end is that every surviving blob still
// reads back bytes matching its name.
func TestConcurrentPutOpenStress(t *testing.T) {
	s, _, _ := newTestStore(t, 2000)
	const blobs = 8
	data := make([][]byte, blobs)
	hashes := make([]string, blobs)
	for i := range data {
		data[i], hashes[i] = blob(fmt.Sprintf("stress-%d-", i), 300+i)
	}

	const goroutines = 16
	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*31 + i*7) % blobs
				switch (g + i) % 4 {
				case 0:
					if _, err := s.Put(hashes[k], bytes.NewReader(data[k])); err != nil {
						t.Errorf("Put: %v", err)
					}
				case 1:
					h, err := s.Open(hashes[k])
					if errors.Is(err, ErrNotFound) {
						continue // evicted or not yet uploaded
					}
					if err != nil {
						t.Errorf("Open: %v", err)
						continue
					}
					got, err := io.ReadAll(h)
					if err != nil || !bytes.Equal(got, data[k]) {
						t.Errorf("pinned read of %s corrupted (err %v)", hashes[k][:8], err)
					}
					h.Close()
				case 2:
					s.Has(hashes[k])
				default:
					if st := s.Stats(); st.Bytes < 0 {
						t.Errorf("negative byte accounting: %+v", st)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("store over budget with no pins held: %d > %d", st.Bytes, st.MaxBytes)
	}
	for i, h := range hashes {
		if !s.Has(h) {
			continue
		}
		rd, err := s.Open(h)
		if err != nil {
			t.Fatalf("surviving blob %s: %v", h[:8], err)
		}
		got, err := io.ReadAll(rd)
		rd.Close()
		if err != nil || !bytes.Equal(got, data[i]) {
			t.Fatalf("surviving blob %s corrupted", h[:8])
		}
	}
}
