package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"ppcsim"
	"ppcsim/internal/trace"
)

// RunSpec describes exactly one simulation in the v1 API's snake_case
// JSON schema. It is the shared request vocabulary: POST /v1/run bodies
// embed it directly (plus a transport-only timeout), and a coordinator
// JobSpec embeds it as the base configuration its grid axes vary.
//
// Exactly one of Trace (a bundled trace name) or TraceText (an inline
// trace) selects the workload. TraceText carries either the ppctrace
// text format (see trace.Write) or a base64-encoded columnar binary
// trace (see docs/trace-format.md), told apart by content sniffing on
// the base64 prefix of the columnar magic; both hash into the result
// cache key the same way. Absent optional fields take the simulator's
// defaults,
// matching ppcsim.Options: zero Disks means one drive, zero CacheBlocks
// means the trace's default size, and zero batch/horizon/estimate
// values mean the paper's Table 6 settings.
type RunSpec struct {
	Trace     string `json:"trace,omitempty"`
	TraceText string `json:"trace_text,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	// Disks and CacheBlocks are pointers so the boundary can tell an
	// absent field (use the default) from an explicit zero (an error —
	// a zero-disk array or an empty cache cannot simulate anything).
	Disks            *int    `json:"disks,omitempty"`
	CacheBlocks      *int    `json:"cache_blocks,omitempty"`
	Scheduler        string  `json:"scheduler,omitempty"`
	BatchSize        int     `json:"batch_size,omitempty"`
	Horizon          int     `json:"horizon,omitempty"`
	FetchEstimate    float64 `json:"fetch_estimate,omitempty"`
	ForestallFixedF  float64 `json:"forestall_fixed_f,omitempty"`
	DriverOverheadMs float64 `json:"driver_overhead_ms,omitempty"`
	SimpleDiskModel  bool    `json:"simple_disk_model,omitempty"`
	PlacementSeed    int64   `json:"placement_seed,omitempty"`
	CPUScale         float64 `json:"cpu_scale,omitempty"`
	Hints            *Hints  `json:"hints,omitempty"`
	// Window is the lookahead limit in references: the policy sees hinted
	// references at most window positions past the current one, with
	// eviction falling back to LRU beyond that horizon. A pointer so the
	// boundary can tell an absent field (unlimited lookahead, the paper's
	// setting) from an explicit non-positive value (an error).
	Window *int `json:"window,omitempty"`
}

// Hints mirrors ppcsim.HintSpec in the request schema.
type Hints struct {
	Fraction float64 `json:"fraction"`
	Accuracy float64 `json:"accuracy"`
	Seed     int64   `json:"seed,omitempty"`
}

// Validate applies the boundary rules that precede option assembly:
// exactly one trace source, a known algorithm and scheduler, and
// positive disk/cache/scale values where present. Failures are
// *ppcsim.ConfigError values naming the offending field, the same shape
// ppcsim.Options.Validate returns, so HTTP and CLI diagnostics match.
func (r *RunSpec) Validate() error {
	switch {
	case r.Trace == "" && r.TraceText == "":
		return &ppcsim.ConfigError{Field: "Trace", Reason: "one of trace or trace_text is required"}
	case r.Trace != "" && r.TraceText != "":
		return &ppcsim.ConfigError{Field: "Trace", Reason: "trace and trace_text are mutually exclusive"}
	}
	if _, err := ppcsim.ParseAlgorithm(r.Algorithm); err != nil {
		return err
	}
	if r.Scheduler != "" {
		if _, err := ppcsim.ParseDiscipline(r.Scheduler); err != nil {
			return err
		}
	}
	if r.Disks != nil && *r.Disks <= 0 {
		return &ppcsim.ConfigError{Field: "Disks", Reason: fmt.Sprintf("must be positive, got %d", *r.Disks)}
	}
	if r.CacheBlocks != nil && *r.CacheBlocks <= 0 {
		return &ppcsim.ConfigError{Field: "CacheBlocks", Reason: fmt.Sprintf("must be positive, got %d", *r.CacheBlocks)}
	}
	if r.Window != nil && *r.Window <= 0 {
		return &ppcsim.ConfigError{Field: "Window", Reason: fmt.Sprintf("must be positive, got %d (omit the field for unlimited lookahead)", *r.Window)}
	}
	if r.CPUScale < 0 {
		return &ppcsim.ConfigError{Field: "CPUScale", Reason: fmt.Sprintf("must be non-negative, got %g", r.CPUScale)}
	}
	return nil
}

// canonical is the deterministic cache-key shape: every option that
// changes the simulation's outcome, with defaults filled in, and inline
// traces replaced by a content hash. Transport-only fields (timeout_ms)
// are deliberately absent.
type canonical struct {
	Trace            string  `json:"t,omitempty"`
	TraceHash        string  `json:"th,omitempty"`
	Algorithm        string  `json:"a"`
	Disks            int     `json:"d"`
	CacheBlocks      int     `json:"c"`
	Scheduler        string  `json:"s"`
	BatchSize        int     `json:"b"`
	Horizon          int     `json:"h"`
	FetchEstimate    float64 `json:"f"`
	ForestallFixedF  float64 `json:"ff"`
	DriverOverheadMs float64 `json:"dr"`
	SimpleDiskModel  bool    `json:"sd"`
	PlacementSeed    int64   `json:"ps"`
	CPUScale         float64 `json:"cs"`
	Hints            *Hints  `json:"hi,omitempty"`
	Window           int     `json:"w,omitempty"`
}

// Key returns the canonical result-cache key of a validated spec.
//
// Derivation (documented because sharding depends on it): the spec is
// projected onto the canonical struct above — defaults spelled out
// (disks 1, scheduler cscan, cpu_scale 1), the algorithm name
// normalized through ParseAlgorithm, and an inline trace replaced by
// the hex SHA-256 of its text — then JSON-marshaled with fixed field
// order. Equal keys therefore mean runs with byte-identical Result
// JSON (the simulator is deterministic), so worker result caches,
// singleflight deduplication, and the coordinator's consistent-hash
// cell routing all hang off this one string: a cell is routed by its
// Key, and the worker that runs it caches it under the same Key, so
// the cluster-wide cache partitions by construction instead of
// duplicating.
func (r *RunSpec) Key() string {
	c := canonical{
		Trace:            r.Trace,
		Algorithm:        r.Algorithm,
		Disks:            1,
		Scheduler:        "cscan",
		BatchSize:        r.BatchSize,
		Horizon:          r.Horizon,
		FetchEstimate:    r.FetchEstimate,
		ForestallFixedF:  r.ForestallFixedF,
		DriverOverheadMs: r.DriverOverheadMs,
		SimpleDiskModel:  r.SimpleDiskModel,
		PlacementSeed:    r.PlacementSeed,
		CPUScale:         1,
		Hints:            r.Hints,
	}
	if a, err := ppcsim.ParseAlgorithm(r.Algorithm); err == nil {
		c.Algorithm = string(a) // normalized case/space form
	}
	if r.TraceText != "" {
		sum := sha256.Sum256([]byte(r.TraceText))
		c.Trace, c.TraceHash = "", hex.EncodeToString(sum[:])
	}
	if r.Disks != nil {
		c.Disks = *r.Disks
	}
	if r.CacheBlocks != nil {
		c.CacheBlocks = *r.CacheBlocks
	}
	if r.Scheduler != "" {
		if d, err := ppcsim.ParseDiscipline(r.Scheduler); err == nil && d == ppcsim.FCFS {
			c.Scheduler = "fcfs"
		}
	}
	if r.CPUScale != 0 { //ppcvet:ignore unset-field sentinel, decoded rather than computed
		c.CPUScale = r.CPUScale
	}
	if r.Window != nil {
		c.Window = *r.Window
	}
	key, err := json.Marshal(c)
	if err != nil {
		// canonical contains only marshalable field types; unreachable.
		panic(err)
	}
	return string(key)
}

// Options assembles the validated spec into simulator options,
// resolving the trace through loadTrace (which may cache bundled
// traces). It finishes with ppcsim.Options.Validate, so every
// configuration error the library can diagnose surfaces here as a
// *ppcsim.ConfigError before any queue slot is consumed.
func (r *RunSpec) Options(loadTrace func(name string) (*ppcsim.Trace, error)) (ppcsim.Options, error) {
	var tr *ppcsim.Trace
	var err error
	if r.TraceText != "" {
		if strings.HasPrefix(r.TraceText, trace.ColumnarBase64Prefix) {
			// A base64-encoded columnar binary trace: no text trace can
			// start with this prefix (text headers start with "ppctrace ").
			raw, derr := base64.StdEncoding.DecodeString(r.TraceText)
			if derr != nil {
				return ppcsim.Options{}, &ppcsim.ConfigError{Field: "TraceText", Reason: fmt.Sprintf("columnar body is not valid base64: %v", derr)}
			}
			tr, err = trace.ReadColumnar(bytes.NewReader(raw))
		} else {
			tr, err = trace.Read(strings.NewReader(r.TraceText))
		}
		if err != nil {
			return ppcsim.Options{}, &ppcsim.ConfigError{Field: "TraceText", Reason: err.Error()}
		}
	} else {
		tr, err = loadTrace(r.Trace)
		if err != nil {
			return ppcsim.Options{}, &ppcsim.ConfigError{Field: "Trace", Reason: err.Error()}
		}
	}
	if r.CPUScale != 0 && r.CPUScale != 1 { //ppcvet:ignore flag-default sentinel, decoded rather than computed
		tr = tr.ScaleCompute(r.CPUScale)
	}
	alg, err := ppcsim.ParseAlgorithm(r.Algorithm)
	if err != nil {
		return ppcsim.Options{}, err
	}
	opts := ppcsim.Options{
		Trace:            tr,
		Algorithm:        alg,
		BatchSize:        r.BatchSize,
		Horizon:          r.Horizon,
		FetchEstimate:    r.FetchEstimate,
		ForestallFixedF:  r.ForestallFixedF,
		DriverOverheadMs: r.DriverOverheadMs,
		SimpleDiskModel:  r.SimpleDiskModel,
		PlacementSeed:    r.PlacementSeed,
	}
	if r.Disks != nil {
		opts.Disks = *r.Disks
	}
	if r.CacheBlocks != nil {
		opts.CacheBlocks = *r.CacheBlocks
	}
	if r.Scheduler != "" {
		if opts.Scheduler, err = ppcsim.ParseDiscipline(r.Scheduler); err != nil {
			return ppcsim.Options{}, err
		}
	}
	if r.Hints != nil {
		opts.Hints = &ppcsim.HintSpec{
			Fraction: r.Hints.Fraction,
			Accuracy: r.Hints.Accuracy,
			Seed:     r.Hints.Seed,
		}
	}
	if r.Window != nil {
		if opts.Hints == nil {
			// A bare window means fully-disclosed, accurate hints limited
			// in reach — the TIP2-style partial-knowledge setting.
			opts.Hints = &ppcsim.HintSpec{Fraction: 1, Accuracy: 1}
		}
		opts.Hints.Window = *r.Window
	}
	if err := opts.Validate(); err != nil {
		return ppcsim.Options{}, err
	}
	return opts, nil
}
