package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"ppcsim"
	"ppcsim/internal/serve/tracestore"
	"ppcsim/internal/trace"
)

// RunSpec describes exactly one simulation in the v1 API's snake_case
// JSON schema. It is the shared request vocabulary: POST /v1/run bodies
// embed it directly (plus a transport-only timeout), and a coordinator
// JobSpec embeds it as the base configuration its grid axes vary.
//
// Exactly one of Trace (a bundled trace name), TraceText (an inline
// trace), TraceSpec (a synthetic streaming generator), or TraceHash (a
// columnar file in the worker's content-addressed trace store) selects
// the workload. TraceText carries either the ppctrace text format (see
// trace.Write) or a base64-encoded columnar binary trace (see
// docs/trace-format.md), told apart by content sniffing on the base64
// prefix of the columnar magic; both hash into the result cache key the
// same way. TraceSpec and TraceHash cells stream — the worker never
// materializes the reference sequence, so a 10^9-reference cell runs
// under a flat memory ceiling — and therefore require a bounded Window
// and an online algorithm. Absent optional fields take the simulator's
// defaults,
// matching ppcsim.Options: zero Disks means one drive, zero CacheBlocks
// means the trace's default size, and zero batch/horizon/estimate
// values mean the paper's Table 6 settings.
type RunSpec struct {
	Trace     string     `json:"trace,omitempty"`
	TraceText string     `json:"trace_text,omitempty"`
	TraceSpec *TraceSpec `json:"trace_spec,omitempty"`
	// TraceHash names a columnar trace by the lowercase hex SHA-256 of
	// its bytes, resolved from the worker's trace store (PUT /v1/traces).
	TraceHash string `json:"trace_hash,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	// Disks and CacheBlocks are pointers so the boundary can tell an
	// absent field (use the default) from an explicit zero (an error —
	// a zero-disk array or an empty cache cannot simulate anything).
	Disks            *int    `json:"disks,omitempty"`
	CacheBlocks      *int    `json:"cache_blocks,omitempty"`
	Scheduler        string  `json:"scheduler,omitempty"`
	BatchSize        int     `json:"batch_size,omitempty"`
	Horizon          int     `json:"horizon,omitempty"`
	FetchEstimate    float64 `json:"fetch_estimate,omitempty"`
	ForestallFixedF  float64 `json:"forestall_fixed_f,omitempty"`
	DriverOverheadMs float64 `json:"driver_overhead_ms,omitempty"`
	SimpleDiskModel  bool    `json:"simple_disk_model,omitempty"`
	PlacementSeed    int64   `json:"placement_seed,omitempty"`
	CPUScale         float64 `json:"cpu_scale,omitempty"`
	Hints            *Hints  `json:"hints,omitempty"`
	// Window is the lookahead limit in references: the policy sees hinted
	// references at most window positions past the current one, with
	// eviction falling back to LRU beyond that horizon. A pointer so the
	// boundary can tell an absent field (unlimited lookahead, the paper's
	// setting) from an explicit non-positive value (an error).
	Window *int `json:"window,omitempty"`
}

// Hints mirrors ppcsim.HintSpec in the request schema.
type Hints struct {
	Fraction float64 `json:"fraction"`
	Accuracy float64 `json:"accuracy"`
	Seed     int64   `json:"seed,omitempty"`
}

// TraceSpec mirrors trace.LargeSpec in the request schema: a synthetic
// streaming trace described by its parameters instead of its bytes, so
// a billion-reference workload travels as a few dozen JSON bytes. Zero
// Blocks means 65536 (the CLI shorthand's default); the remaining
// defaults match trace.LargeSpec (pattern "loop", one file, 1280 cache
// blocks, 0.1 ms mean compute).
type TraceSpec struct {
	Name          string  `json:"name,omitempty"`
	Refs          int64   `json:"refs"`
	Blocks        int     `json:"blocks,omitempty"`
	Files         int     `json:"files,omitempty"`
	Pattern       string  `json:"pattern,omitempty"`
	MeanComputeMs float64 `json:"mean_compute_ms,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	CacheBlocks   int     `json:"cache_blocks,omitempty"`
}

// large converts the wire shape to the generator spec, applying the
// wire-level blocks default.
func (t *TraceSpec) large() trace.LargeSpec {
	l := trace.LargeSpec{
		Name:          t.Name,
		Refs:          t.Refs,
		Blocks:        t.Blocks,
		Files:         t.Files,
		Pattern:       t.Pattern,
		MeanComputeMs: t.MeanComputeMs,
		Seed:          t.Seed,
		CacheBlocks:   t.CacheBlocks,
	}
	if l.Blocks == 0 {
		l.Blocks = 65536
	}
	return l
}

// ResolvedName returns the trace name the run will report — the
// explicit Name or the generator's deterministic default — which is the
// name that appears in Result JSON and CSV trace columns.
func (t *TraceSpec) ResolvedName() string { return t.large().ResolvedName() }

// streaming reports whether the spec names a source the worker streams
// (generator or store hash) rather than materializes.
func (r *RunSpec) streaming() bool { return r.TraceSpec != nil || r.TraceHash != "" }

// Validate applies the boundary rules that precede option assembly:
// exactly one trace source, a known algorithm and scheduler, and
// positive disk/cache/scale values where present. Failures are
// *ppcsim.ConfigError values naming the offending field, the same shape
// ppcsim.Options.Validate returns, so HTTP and CLI diagnostics match.
func (r *RunSpec) Validate() error {
	sources := 0
	for _, set := range []bool{r.Trace != "", r.TraceText != "", r.TraceSpec != nil, r.TraceHash != ""} {
		if set {
			sources++
		}
	}
	switch {
	case sources == 0:
		return &ppcsim.ConfigError{Field: "Trace", Reason: "one of trace, trace_text, trace_spec, or trace_hash is required"}
	case sources > 1:
		return &ppcsim.ConfigError{Field: "Trace", Reason: "trace, trace_text, trace_spec, and trace_hash are mutually exclusive"}
	}
	if r.TraceHash != "" && !tracestore.ValidHash(r.TraceHash) {
		return &ppcsim.ConfigError{Field: "TraceHash", Reason: fmt.Sprintf("%q is not a trace hash (want 64 lowercase hex digits)", r.TraceHash)}
	}
	if r.TraceSpec != nil {
		ls := r.TraceSpec.large()
		if err := ls.Validate(); err != nil {
			return &ppcsim.ConfigError{Field: "TraceSpec", Reason: err.Error()}
		}
		if ls.Refs >= math.MaxInt32 {
			return &ppcsim.ConfigError{Field: "TraceSpec", Reason: fmt.Sprintf("refs %d exceeds the streaming maximum of 2^31-2", ls.Refs)}
		}
		if r.Window != nil && int64(*r.Window) >= ls.Refs {
			return &ppcsim.ConfigError{Field: "Window", Reason: fmt.Sprintf("streaming cells need a window smaller than the trace (window %d, trace %d references)", *r.Window, ls.Refs)}
		}
	}
	if r.streaming() {
		// Streaming cells never materialize, so everything that needs the
		// whole sequence resident is rejected at the boundary: the offline
		// algorithm, unlimited lookahead, and post-hoc compute scaling.
		if r.Window == nil {
			return &ppcsim.ConfigError{Field: "Window", Reason: "trace_spec and trace_hash cells stream and require a bounded lookahead window"}
		}
		if a, err := ppcsim.ParseAlgorithm(r.Algorithm); err == nil && a == ppcsim.ReverseAggressive {
			return &ppcsim.ConfigError{Field: "Algorithm", Reason: "reverse aggressive is offline and requires a materialized trace (use trace or trace_text)"}
		}
		if r.CPUScale != 0 && r.CPUScale != 1 { //ppcvet:ignore unset-field sentinels, decoded rather than computed
			return &ppcsim.ConfigError{Field: "CPUScale", Reason: "cpu_scale requires a materialized trace"}
		}
	}
	if _, err := ppcsim.ParseAlgorithm(r.Algorithm); err != nil {
		return err
	}
	if r.Scheduler != "" {
		if _, err := ppcsim.ParseDiscipline(r.Scheduler); err != nil {
			return err
		}
	}
	if r.Disks != nil && *r.Disks <= 0 {
		return &ppcsim.ConfigError{Field: "Disks", Reason: fmt.Sprintf("must be positive, got %d", *r.Disks)}
	}
	if r.CacheBlocks != nil && *r.CacheBlocks <= 0 {
		return &ppcsim.ConfigError{Field: "CacheBlocks", Reason: fmt.Sprintf("must be positive, got %d", *r.CacheBlocks)}
	}
	if r.Window != nil && *r.Window <= 0 {
		return &ppcsim.ConfigError{Field: "Window", Reason: fmt.Sprintf("must be positive, got %d (omit the field for unlimited lookahead)", *r.Window)}
	}
	if r.CPUScale < 0 {
		return &ppcsim.ConfigError{Field: "CPUScale", Reason: fmt.Sprintf("must be non-negative, got %g", r.CPUScale)}
	}
	return nil
}

// canonical is the deterministic cache-key shape: every option that
// changes the simulation's outcome, with defaults filled in, and inline
// traces replaced by a content hash. Transport-only fields (timeout_ms)
// are deliberately absent.
type canonical struct {
	Trace     string `json:"t,omitempty"`
	TraceHash string `json:"th,omitempty"`
	// TraceSpec carries generator cells with every default spelled out
	// (resolved name included — the name appears in Result JSON, so two
	// specs differing only in Name must key differently); TraceFile
	// carries store-hash cells. Inline trace_text bodies keep hashing
	// into TraceHash exactly as before, so pre-existing keys are stable.
	TraceSpec        *canonicalTraceSpec `json:"tg,omitempty"`
	TraceFile        string              `json:"tf,omitempty"`
	Algorithm        string              `json:"a"`
	Disks            int                 `json:"d"`
	CacheBlocks      int                 `json:"c"`
	Scheduler        string              `json:"s"`
	BatchSize        int                 `json:"b"`
	Horizon          int                 `json:"h"`
	FetchEstimate    float64             `json:"f"`
	ForestallFixedF  float64             `json:"ff"`
	DriverOverheadMs float64             `json:"dr"`
	SimpleDiskModel  bool                `json:"sd"`
	PlacementSeed    int64               `json:"ps"`
	CPUScale         float64             `json:"cs"`
	Hints            *Hints              `json:"hi,omitempty"`
	Window           int                 `json:"w,omitempty"`
}

// canonicalTraceSpec is the cache-key projection of a generator cell:
// trace.LargeSpec.Canonical with fixed short field names.
type canonicalTraceSpec struct {
	Name          string  `json:"n"`
	Refs          int64   `json:"r"`
	Blocks        int     `json:"b"`
	Files         int     `json:"fi"`
	Pattern       string  `json:"p"`
	MeanComputeMs float64 `json:"m"`
	Seed          int64   `json:"se"`
	CacheBlocks   int     `json:"cb"`
}

// Key returns the canonical result-cache key of a validated spec.
//
// Derivation (documented because sharding depends on it): the spec is
// projected onto the canonical struct above — defaults spelled out
// (disks 1, scheduler cscan, cpu_scale 1), the algorithm name
// normalized through ParseAlgorithm, and an inline trace replaced by
// the hex SHA-256 of its text — then JSON-marshaled with fixed field
// order. Equal keys therefore mean runs with byte-identical Result
// JSON (the simulator is deterministic), so worker result caches,
// singleflight deduplication, and the coordinator's consistent-hash
// cell routing all hang off this one string: a cell is routed by its
// Key, and the worker that runs it caches it under the same Key, so
// the cluster-wide cache partitions by construction instead of
// duplicating.
func (r *RunSpec) Key() string {
	c := canonical{
		Trace:            r.Trace,
		Algorithm:        r.Algorithm,
		Disks:            1,
		Scheduler:        "cscan",
		BatchSize:        r.BatchSize,
		Horizon:          r.Horizon,
		FetchEstimate:    r.FetchEstimate,
		ForestallFixedF:  r.ForestallFixedF,
		DriverOverheadMs: r.DriverOverheadMs,
		SimpleDiskModel:  r.SimpleDiskModel,
		PlacementSeed:    r.PlacementSeed,
		CPUScale:         1,
		Hints:            r.Hints,
	}
	if a, err := ppcsim.ParseAlgorithm(r.Algorithm); err == nil {
		c.Algorithm = string(a) // normalized case/space form
	}
	if r.TraceText != "" {
		sum := sha256.Sum256([]byte(r.TraceText))
		c.Trace, c.TraceHash = "", hex.EncodeToString(sum[:])
	}
	if r.TraceSpec != nil {
		ls := r.TraceSpec.large().Canonical()
		c.TraceSpec = &canonicalTraceSpec{
			Name:          ls.Name,
			Refs:          ls.Refs,
			Blocks:        ls.Blocks,
			Files:         ls.Files,
			Pattern:       ls.Pattern,
			MeanComputeMs: ls.MeanComputeMs,
			Seed:          ls.Seed,
			CacheBlocks:   ls.CacheBlocks,
		}
	}
	if r.TraceHash != "" {
		c.TraceFile = r.TraceHash
	}
	if r.Disks != nil {
		c.Disks = *r.Disks
	}
	if r.CacheBlocks != nil {
		c.CacheBlocks = *r.CacheBlocks
	}
	if r.Scheduler != "" {
		if d, err := ppcsim.ParseDiscipline(r.Scheduler); err == nil && d == ppcsim.FCFS {
			c.Scheduler = "fcfs"
		}
	}
	if r.CPUScale != 0 { //ppcvet:ignore unset-field sentinel, decoded rather than computed
		c.CPUScale = r.CPUScale
	}
	if r.Window != nil {
		c.Window = *r.Window
	}
	key, err := json.Marshal(c)
	if err != nil {
		// canonical contains only marshalable field types; unreachable.
		panic(err)
	}
	return string(key)
}

// SourceEnv supplies the worker-local resources BuildOptions resolves
// traces through: LoadTrace maps bundled trace names (and may cache),
// OpenHash opens a pinned read handle on a store blob (nil when the
// worker has no trace store).
type SourceEnv struct {
	LoadTrace func(name string) (*ppcsim.Trace, error)
	OpenHash  func(hash string) (io.ReadSeekCloser, error)
}

// BuildOptions assembles the validated spec into simulator options,
// resolving the trace through env. The returned cleanup func (never
// nil) releases whatever the source holds — a store pin, most
// importantly — and must be called after the run finishes.
//
// Trace-source routing: trace_spec cells stream from the generator,
// trace_hash cells stream from the store blob, and inline columnar
// trace_text bodies stream from the decoded bytes whenever a bounded
// window is set (the sliding-window engine requires one; unbounded or
// trace-covering windows and cpu_scale fall back to materializing,
// which is byte-identical). Text traces and bundled names materialize
// as before. It finishes with ppcsim.Options.Validate, so every
// configuration error the library can diagnose surfaces here as a
// *ppcsim.ConfigError before any queue slot is consumed.
func (r *RunSpec) BuildOptions(env SourceEnv) (ppcsim.Options, func(), error) {
	cleanup := func() {}
	var tr *ppcsim.Trace
	var src ppcsim.TraceSource
	var err error
	switch {
	case r.TraceSpec != nil:
		src, err = r.TraceSpec.large().Source()
		if err != nil {
			return ppcsim.Options{}, cleanup, &ppcsim.ConfigError{Field: "TraceSpec", Reason: err.Error()}
		}
	case r.TraceHash != "":
		if env.OpenHash == nil {
			return ppcsim.Options{}, cleanup, &ppcsim.ConfigError{Field: "TraceHash", Reason: "this worker has no trace store"}
		}
		h, herr := env.OpenHash(r.TraceHash)
		if herr != nil {
			return ppcsim.Options{}, cleanup, &ppcsim.ConfigError{Field: "TraceHash", Reason: herr.Error()}
		}
		src, err = trace.NewColumnarSource(h)
		if err != nil {
			h.Close()
			return ppcsim.Options{}, cleanup, &ppcsim.ConfigError{Field: "TraceHash", Reason: fmt.Sprintf("stored trace %s: %v", r.TraceHash, err)}
		}
		cleanup = func() { h.Close() }
	case r.TraceText != "":
		if strings.HasPrefix(r.TraceText, trace.ColumnarBase64Prefix) {
			// A base64-encoded columnar binary trace: no text trace can
			// start with this prefix (text headers start with "ppctrace ").
			raw, derr := base64.StdEncoding.DecodeString(r.TraceText)
			if derr != nil {
				return ppcsim.Options{}, cleanup, &ppcsim.ConfigError{Field: "TraceText", Reason: fmt.Sprintf("columnar body is not valid base64: %v", derr)}
			}
			scaled := r.CPUScale != 0 && r.CPUScale != 1 //ppcvet:ignore unset-field sentinels, decoded rather than computed
			if r.Window != nil && !scaled {
				var s *trace.ColumnarSource
				s, err = trace.NewColumnarSource(bytes.NewReader(raw))
				if err == nil && int64(*r.Window) < s.Meta().Refs {
					src = s
				} else if err == nil {
					// The window covers the whole trace, which the
					// sliding-window engine rejects; materializing is
					// byte-identical, so keep the old acceptance.
					tr, err = trace.Materialize(s)
				}
			} else {
				tr, err = trace.ReadColumnar(bytes.NewReader(raw))
			}
		} else {
			tr, err = trace.Read(strings.NewReader(r.TraceText))
		}
		if err != nil {
			return ppcsim.Options{}, cleanup, &ppcsim.ConfigError{Field: "TraceText", Reason: err.Error()}
		}
	default:
		tr, err = env.LoadTrace(r.Trace)
		if err != nil {
			return ppcsim.Options{}, cleanup, &ppcsim.ConfigError{Field: "Trace", Reason: err.Error()}
		}
	}
	if tr != nil && r.CPUScale != 0 && r.CPUScale != 1 { //ppcvet:ignore flag-default sentinel, decoded rather than computed
		tr = tr.ScaleCompute(r.CPUScale)
	}
	alg, err := ppcsim.ParseAlgorithm(r.Algorithm)
	if err != nil {
		cleanup()
		return ppcsim.Options{}, func() {}, err
	}
	opts := ppcsim.Options{
		Trace:            tr,
		Source:           src,
		Algorithm:        alg,
		BatchSize:        r.BatchSize,
		Horizon:          r.Horizon,
		FetchEstimate:    r.FetchEstimate,
		ForestallFixedF:  r.ForestallFixedF,
		DriverOverheadMs: r.DriverOverheadMs,
		SimpleDiskModel:  r.SimpleDiskModel,
		PlacementSeed:    r.PlacementSeed,
	}
	if r.Disks != nil {
		opts.Disks = *r.Disks
	}
	if r.CacheBlocks != nil {
		opts.CacheBlocks = *r.CacheBlocks
	}
	if r.Scheduler != "" {
		if opts.Scheduler, err = ppcsim.ParseDiscipline(r.Scheduler); err != nil {
			cleanup()
			return ppcsim.Options{}, func() {}, err
		}
	}
	if r.Hints != nil {
		opts.Hints = &ppcsim.HintSpec{
			Fraction: r.Hints.Fraction,
			Accuracy: r.Hints.Accuracy,
			Seed:     r.Hints.Seed,
		}
	}
	if r.Window != nil {
		if opts.Hints == nil {
			// A bare window means fully-disclosed, accurate hints limited
			// in reach — the TIP2-style partial-knowledge setting.
			opts.Hints = &ppcsim.HintSpec{Fraction: 1, Accuracy: 1}
		}
		opts.Hints.Window = *r.Window
	}
	if err := opts.Validate(); err != nil {
		cleanup()
		return ppcsim.Options{}, func() {}, err
	}
	return opts, cleanup, nil
}
