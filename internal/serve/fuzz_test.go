package serve

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"ppcsim"
	"ppcsim/internal/serve/tracestore"
)

var (
	bundledMu sync.Mutex
	bundled   = map[string]*ppcsim.Trace{}
)

// FuzzParseOptions throws arbitrary bytes at the full request boundary:
// JSON decoding, field validation, canonical-key construction, and
// option assembly (which ends in ppcsim.Options.Validate and exercises
// ParseAlgorithm/ParseDiscipline). The invariants: never panic, reject
// only with *ppcsim.ConfigError, and anything accepted has a stable
// canonical key and assembles into validated options.
func FuzzParseOptions(f *testing.F) {
	f.Add(`{"trace":"synth","algorithm":"forestall","disks":4,"cache_blocks":100}`)
	f.Add(`{"trace_text":"ppctrace t false 4\nfile 2\nr 0 1\nr 1 0.5\n","algorithm":"demand"}`)
	f.Add(`{"trace":"xds","algorithm":"fixed-horizon","scheduler":"fcfs","hints":{"fraction":0.5,"accuracy":0.9,"seed":7}}`)
	f.Add(`{"trace":"synth","algorithm":"aggressive","disks":0}`)
	f.Add(`{"trace":"synth","algorithm":"fixed-horizon","window":64}`)
	f.Add(`{"trace":"synth","algorithm":"aggressive","window":0}`)
	f.Add(`{"trace":"synth","algorithm":"forestall","window":-3}`)
	f.Add(`{"trace":"synth","algorithm":"reverse-aggressive","window":10}`)
	f.Add(`{"trace":"synth","algorithm":"nope","cache_blocks":-1}`)
	f.Add(`{"algorithm":"demand","timeout_ms":1e300}`)
	f.Add(`{`)
	f.Add(`nullnull`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := ParseRequest([]byte(body))
		if err != nil {
			var cfgErr *ppcsim.ConfigError
			if !errors.As(err, &cfgErr) {
				t.Fatalf("rejection is not a ConfigError: %T %v", err, err)
			}
			if cfgErr.Field == "" {
				t.Fatalf("ConfigError without a field: %v", err)
			}
			return
		}
		key := req.Key()
		if key == "" {
			t.Fatal("accepted request produced an empty key")
		}
		if key != req.Key() {
			t.Fatal("Key is not deterministic")
		}
		opts, cleanup, err := req.BuildOptions(SourceEnv{LoadTrace: loadBundled})
		if err != nil {
			var cfgErr *ppcsim.ConfigError
			if !errors.As(err, &cfgErr) {
				t.Fatalf("option assembly error is not a ConfigError: %T %v", err, err)
			}
			return
		}
		defer cleanup()
		// BuildOptions promised to finish with Validate; double-check.
		if err := opts.Validate(); err != nil {
			t.Fatalf("assembled options fail validation: %v", err)
		}
	})
}

// FuzzParseRunSpec targets the trace-source surface of the boundary:
// the four mutually exclusive ways a cell names its trace (bundled
// name, inline text, generator spec, store hash) and the streaming
// constraints the latter two add. Invariants: rejections are
// *ppcsim.ConfigError values naming a field; whatever is accepted names
// exactly one source, carries a well-formed hash, keeps generator refs
// inside the engine's int32 budget, and — for streaming sources — has a
// bounded window; and option assembly on a worker with no trace store
// fails hash cells with a ConfigError rather than a panic.
func FuzzParseRunSpec(f *testing.F) {
	goodHash := strings.Repeat("ab", 32)
	f.Add(`{"trace_spec":{"refs":1000,"blocks":64},"algorithm":"forestall","window":32}`)
	f.Add(`{"trace_spec":{"refs":50000,"blocks":4096,"pattern":"zipf","seed":7},"algorithm":"aggressive","window":128,"disks":2}`)
	f.Add(`{"trace_spec":{"refs":1000},"algorithm":"demand"}`)                                  // no window
	f.Add(`{"trace_spec":{"refs":4294967296,"blocks":64},"algorithm":"demand","window":8}`)     // oversize refs
	f.Add(`{"trace_spec":{"refs":100,"blocks":64},"algorithm":"demand","window":100}`)          // window >= refs
	f.Add(`{"trace_spec":{"refs":100,"blocks":1},"algorithm":"demand","window":8}`)             // bad generator
	f.Add(`{"trace_spec":{"refs":100,"pattern":"walk"},"algorithm":"demand","window":8}`)       // bad pattern
	f.Add(`{"trace_spec":{"refs":1000},"algorithm":"reverse-aggressive","window":32}`)          // offline alg streams
	f.Add(`{"trace_spec":{"refs":1000},"algorithm":"demand","window":32,"cpu_scale":2}`)        // scaling needs materialization
	f.Add(`{"trace":"synth","trace_spec":{"refs":1000},"algorithm":"demand","window":32}`)      // conflict
	f.Add(`{"trace_hash":"` + goodHash + `","trace_text":"x","algorithm":"demand"}`)            // conflict
	f.Add(`{"trace_hash":"` + goodHash + `","algorithm":"forestall","window":64}`)              // well-formed hash
	f.Add(`{"trace_hash":"` + strings.ToUpper(goodHash) + `","algorithm":"demand","window":8}`) // case-sensitive
	f.Add(`{"trace_hash":"abc123","algorithm":"demand","window":8}`)                            // short hash
	f.Add(`{"trace_hash":"zz` + goodHash[2:] + `","algorithm":"demand","window":8}`)            // non-hex
	f.Add(`{"algorithm":"demand","window":8}`)                                                  // no source at all
	f.Fuzz(func(t *testing.T, body string) {
		req, err := ParseRequest([]byte(body))
		if err != nil {
			var cfgErr *ppcsim.ConfigError
			if !errors.As(err, &cfgErr) {
				t.Fatalf("rejection is not a ConfigError: %T %v", err, err)
			}
			if cfgErr.Field == "" {
				t.Fatalf("ConfigError without a field: %v", err)
			}
			return
		}
		sources := 0
		for _, set := range []bool{req.Trace != "", req.TraceText != "", req.TraceSpec != nil, req.TraceHash != ""} {
			if set {
				sources++
			}
		}
		if sources != 1 {
			t.Fatalf("accepted spec names %d trace sources", sources)
		}
		if req.TraceHash != "" && !tracestore.ValidHash(req.TraceHash) {
			t.Fatalf("accepted malformed trace hash %q", req.TraceHash)
		}
		if req.TraceSpec != nil && req.TraceSpec.Refs >= math.MaxInt32 {
			t.Fatalf("accepted %d-ref generator beyond the engine's index budget", req.TraceSpec.Refs)
		}
		if (req.TraceSpec != nil || req.TraceHash != "") && req.Window == nil {
			t.Fatal("accepted a streaming cell without a bounded window")
		}
		if key := req.Key(); key == "" || key != req.Key() {
			t.Fatal("canonical key empty or unstable")
		}
		opts, cleanup, err := req.BuildOptions(SourceEnv{LoadTrace: loadBundled})
		if err != nil {
			cleanup()
			var cfgErr *ppcsim.ConfigError
			if !errors.As(err, &cfgErr) {
				t.Fatalf("option assembly error is not a ConfigError: %T %v", err, err)
			}
			return
		}
		defer cleanup()
		if req.TraceHash != "" {
			t.Fatal("hash cell assembled options on a worker with no trace store")
		}
		if req.TraceSpec != nil && opts.Source == nil {
			t.Fatal("generator cell assembled without a streaming source")
		}
		if err := opts.Validate(); err != nil {
			t.Fatalf("assembled options fail validation: %v", err)
		}
	})
}

// loadBundled resolves bundled trace names for the fuzz target without a
// Server (memoized: the generators are deterministic but not free).
func loadBundled(name string) (*ppcsim.Trace, error) {
	bundledMu.Lock()
	defer bundledMu.Unlock()
	if tr, ok := bundled[name]; ok {
		return tr, nil
	}
	tr, err := ppcsim.NewTrace(name)
	if err != nil {
		return nil, err
	}
	bundled[name] = tr
	return tr, nil
}
