package serve

import (
	"errors"
	"sync"
	"testing"

	"ppcsim"
)

var (
	bundledMu sync.Mutex
	bundled   = map[string]*ppcsim.Trace{}
)

// FuzzParseOptions throws arbitrary bytes at the full request boundary:
// JSON decoding, field validation, canonical-key construction, and
// option assembly (which ends in ppcsim.Options.Validate and exercises
// ParseAlgorithm/ParseDiscipline). The invariants: never panic, reject
// only with *ppcsim.ConfigError, and anything accepted has a stable
// canonical key and assembles into validated options.
func FuzzParseOptions(f *testing.F) {
	f.Add(`{"trace":"synth","algorithm":"forestall","disks":4,"cache_blocks":100}`)
	f.Add(`{"trace_text":"ppctrace t false 4\nfile 2\nr 0 1\nr 1 0.5\n","algorithm":"demand"}`)
	f.Add(`{"trace":"xds","algorithm":"fixed-horizon","scheduler":"fcfs","hints":{"fraction":0.5,"accuracy":0.9,"seed":7}}`)
	f.Add(`{"trace":"synth","algorithm":"aggressive","disks":0}`)
	f.Add(`{"trace":"synth","algorithm":"fixed-horizon","window":64}`)
	f.Add(`{"trace":"synth","algorithm":"aggressive","window":0}`)
	f.Add(`{"trace":"synth","algorithm":"forestall","window":-3}`)
	f.Add(`{"trace":"synth","algorithm":"reverse-aggressive","window":10}`)
	f.Add(`{"trace":"synth","algorithm":"nope","cache_blocks":-1}`)
	f.Add(`{"algorithm":"demand","timeout_ms":1e300}`)
	f.Add(`{`)
	f.Add(`nullnull`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, body string) {
		req, err := ParseRequest([]byte(body))
		if err != nil {
			var cfgErr *ppcsim.ConfigError
			if !errors.As(err, &cfgErr) {
				t.Fatalf("rejection is not a ConfigError: %T %v", err, err)
			}
			if cfgErr.Field == "" {
				t.Fatalf("ConfigError without a field: %v", err)
			}
			return
		}
		key := req.Key()
		if key == "" {
			t.Fatal("accepted request produced an empty key")
		}
		if key != req.Key() {
			t.Fatal("Key is not deterministic")
		}
		opts, err := req.Options(loadBundled)
		if err != nil {
			var cfgErr *ppcsim.ConfigError
			if !errors.As(err, &cfgErr) {
				t.Fatalf("option assembly error is not a ConfigError: %T %v", err, err)
			}
			return
		}
		// Options promised to finish with Validate; double-check.
		if err := opts.Validate(); err != nil {
			t.Fatalf("assembled options fail validation: %v", err)
		}
	})
}

// loadBundled resolves bundled trace names for the fuzz target without a
// Server (memoized: the generators are deterministic but not free).
func loadBundled(name string) (*ppcsim.Trace, error) {
	bundledMu.Lock()
	defer bundledMu.Unlock()
	if tr, ok := bundled[name]; ok {
		return tr, nil
	}
	tr, err := ppcsim.NewTrace(name)
	if err != nil {
		return nil, err
	}
	bundled[name] = tr
	return tr, nil
}
