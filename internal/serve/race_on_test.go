//go:build race

package serve

// raceEnabled gates heap-footprint assertions: the race detector's
// shadow memory inflates live-heap readings far past the ceilings the
// streaming tests check, so those assertions only run in plain builds.
const raceEnabled = true
