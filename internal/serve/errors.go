package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"ppcsim"
)

// ErrorCode is the machine-readable classification carried by every
// non-200 v1 response. Codes are stable API: clients branch on them,
// humans read Message.
type ErrorCode string

const (
	// CodeInvalidRequest: the body failed JSON decoding or boundary
	// validation; Field names the offending request field.
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeBodyTooLarge: the request body exceeded the server's limit.
	CodeBodyTooLarge ErrorCode = "body_too_large"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	// CodeNotFound: no such endpoint.
	CodeNotFound ErrorCode = "not_found"
	// CodeQueueFull: backpressure — retry after the Retry-After delay.
	CodeQueueFull ErrorCode = "queue_full"
	// CodeDraining: the server is shutting down and refuses new work.
	CodeDraining ErrorCode = "draining"
	// CodeTimeout: the simulation deadline expired.
	CodeTimeout ErrorCode = "timeout"
	// CodeUpstream: a coordinator could not complete the work on any
	// worker backend.
	CodeUpstream ErrorCode = "upstream_failed"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// ErrorEnvelope is the one JSON error form of the v1 API:
//
//	{"error":{"code":"invalid_request","field":"Disks","message":"..."}}
//
// Field is present exactly when the error is a *ppcsim.ConfigError, and
// Message is that error's Error() string, so HTTP clients see the same
// diagnostic text the CLIs print.
type ErrorEnvelope struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the payload inside ErrorEnvelope.
type ErrorDetail struct {
	Code    ErrorCode `json:"code"`
	Field   string    `json:"field,omitempty"`
	Message string    `json:"message"`
}

// StatusForError maps a run error to its v1 HTTP status code. The
// mapping is shared by the worker handler and the coordinator's proxy
// path so both report a failure identically.
func StatusForError(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ppcsim.ErrCanceled):
		return http.StatusGatewayTimeout
	}
	var cfgErr *ppcsim.ConfigError
	if errors.As(err, &cfgErr) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// CodeForStatus returns the envelope code conventionally paired with an
// HTTP status.
func CodeForStatus(status int) ErrorCode {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return CodeBodyTooLarge
	case http.StatusTooManyRequests:
		return CodeQueueFull
	case http.StatusServiceUnavailable:
		return CodeDraining
	case http.StatusGatewayTimeout:
		return CodeTimeout
	case http.StatusBadGateway:
		return CodeUpstream
	}
	return CodeInternal
}

// Envelope builds the ErrorEnvelope for an error at a given status,
// deriving Field from *ppcsim.ConfigError when present.
func Envelope(status int, err error) ErrorEnvelope {
	d := ErrorDetail{Code: CodeForStatus(status), Message: err.Error()}
	var cfgErr *ppcsim.ConfigError
	if errors.As(err, &cfgErr) {
		d.Field = cfgErr.Field
	}
	return ErrorEnvelope{Error: d}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// WriteError renders err as the v1 error envelope.
func WriteError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, Envelope(status, err))
}
