package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ppcsim"
	"ppcsim/internal/trace"
)

// inlineTrace renders a small deterministic trace in the ppctrace text
// format, for requests that carry their workload inline.
func inlineTrace(name string, nBlocks, nRefs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ppctrace %s false %d\n", name, nBlocks)
	fmt.Fprintf(&b, "file %d\n", nBlocks)
	for i := 0; i < nRefs; i++ {
		fmt.Fprintf(&b, "r %d 0.1\n", i%nBlocks)
	}
	return b.String()
}

// gateRunner is an injectable Runner that signals each start and blocks
// until released, so tests control exactly when simulations finish.
type gateRunner struct {
	started chan struct{} // receives one value per started run
	release chan struct{} // closed (or fed) to let runs finish
}

func (g *gateRunner) run(ctx context.Context, opts ppcsim.Options) (ppcsim.Result, error) {
	g.started <- struct{}{}
	select {
	case <-g.release:
		return ppcsim.Result{Trace: opts.Trace.Name, Policy: string(opts.Algorithm), Disks: opts.Disks}, nil
	case <-ctx.Done():
		return ppcsim.Result{}, fmt.Errorf("%w: %w", ppcsim.ErrCanceled, ctx.Err())
	}
}

func post(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestSimulateEndToEnd runs a real (tiny) simulation through the full
// HTTP path and checks the Result JSON decodes with sane metrics.
func TestSimulateEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"trace_text":%q,"algorithm":"forestall","disks":2,"cache_blocks":16}`,
		inlineTrace("e2e", 64, 400))
	resp, got := post(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	var res ppcsim.Result
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatalf("bad result JSON: %v\n%s", err, got)
	}
	if res.Policy != "forestall" || res.Disks != 2 {
		t.Errorf("wrong run: %+v", res)
	}
	if res.CacheHits+res.CacheMisses != 400 {
		t.Errorf("served %d of 400 refs", res.CacheHits+res.CacheMisses)
	}
	if res.ElapsedSec <= 0 {
		t.Errorf("non-positive elapsed %g", res.ElapsedSec)
	}
}

// TestSimulateWindowedEndToEnd: a bare window field implies accurate
// full hints limited in reach, and the windowed run completes.
func TestSimulateWindowedEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"trace_text":%q,"algorithm":"fixed-horizon","disks":2,"window":32}`,
		inlineTrace("win", 64, 400))
	resp, got := post(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	var res ppcsim.Result
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatalf("bad result JSON: %v\n%s", err, got)
	}
	if res.CacheHits+res.CacheMisses != 400 {
		t.Errorf("served %d of 400 refs", res.CacheHits+res.CacheMisses)
	}
}

// TestSimulateColumnarInline: trace_text carrying a base64-encoded
// columnar binary trace is sniffed, decoded, and must produce the exact
// Result JSON the same trace produces in the text format.
func TestSimulateColumnarInline(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	text := inlineTrace("col", 64, 400)
	tr, err := trace.Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	var col bytes.Buffer
	if _, err := trace.WriteColumnar(&col, tr.Source()); err != nil {
		t.Fatal(err)
	}
	b64 := base64.StdEncoding.EncodeToString(col.Bytes())
	if !strings.HasPrefix(b64, trace.ColumnarBase64Prefix) {
		t.Fatalf("encoded columnar trace does not start with the sniff prefix: %q", b64[:12])
	}

	resp, gotCol := post(t, ts, fmt.Sprintf(`{"trace_text":%q,"algorithm":"forestall","disks":2,"cache_blocks":16}`, b64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("columnar status %d: %s", resp.StatusCode, gotCol)
	}
	resp, gotText := post(t, ts, fmt.Sprintf(`{"trace_text":%q,"algorithm":"forestall","disks":2,"cache_blocks":16}`, text))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text status %d: %s", resp.StatusCode, gotText)
	}
	if !bytes.Equal(gotCol, gotText) {
		t.Errorf("columnar and text runs differ:\ncolumnar: %s\ntext:     %s", gotCol, gotText)
	}

	// A corrupt base64 body must 400 naming TraceText, not panic.
	resp, got := post(t, ts, `{"trace_text":"`+trace.ColumnarBase64Prefix+`!!!","algorithm":"demand"}`)
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(got, []byte("TraceText")) {
		t.Errorf("corrupt columnar body: status %d, body %s", resp.StatusCode, got)
	}
}

// TestDecoderBoundaries is the HTTP half of the boundary-validation
// table: every malformed or out-of-range request must draw a 400 with a
// ConfigError-derived JSON body naming the field — never a panic, never
// a simulation.
func TestDecoderBoundaries(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name  string
		body  string
		field string
	}{
		{"empty body", ``, "Request"},
		{"bad json", `{`, "Request"},
		{"trailing data", `{"trace":"synth","algorithm":"demand"} extra`, "Request"},
		{"unknown field", `{"trace":"synth","algorithm":"demand","bogus":1}`, "Request"},
		{"no trace", `{"algorithm":"demand"}`, "Trace"},
		{"both traces", `{"trace":"synth","trace_text":"x","algorithm":"demand"}`, "Trace"},
		{"unknown trace name", `{"trace":"bogus","algorithm":"demand"}`, "Trace"},
		{"bad inline trace", `{"trace_text":"garbage","algorithm":"demand"}`, "TraceText"},
		{"missing algorithm", `{"trace":"synth"}`, "Algorithm"},
		{"unknown algorithm", `{"trace":"synth","algorithm":"tip2"}`, "Algorithm"},
		{"unknown scheduler", `{"trace":"synth","algorithm":"demand","scheduler":"sstf"}`, "Scheduler"},
		{"zero disks", `{"trace":"synth","algorithm":"demand","disks":0}`, "Disks"},
		{"negative disks", `{"trace":"synth","algorithm":"demand","disks":-2}`, "Disks"},
		{"zero cache", `{"trace":"synth","algorithm":"demand","cache_blocks":0}`, "CacheBlocks"},
		{"negative cache", `{"trace":"synth","algorithm":"demand","cache_blocks":-5}`, "CacheBlocks"},
		{"one-block cache", `{"trace":"synth","algorithm":"demand","cache_blocks":1}`, "CacheBlocks"},
		{"negative batch", `{"trace":"synth","algorithm":"aggressive","batch_size":-1}`, "BatchSize"},
		{"negative horizon", `{"trace":"synth","algorithm":"fixed-horizon","horizon":-1}`, "Horizon"},
		{"negative cpu scale", `{"trace":"synth","algorithm":"demand","cpu_scale":-1}`, "CPUScale"},
		{"negative timeout", `{"trace":"synth","algorithm":"demand","timeout_ms":-1}`, "TimeoutMs"},
		{"bad hint fraction", `{"trace":"synth","algorithm":"demand","hints":{"fraction":1.5,"accuracy":1}}`, "Hints"},
		{"hints with reverse-aggressive", `{"trace":"synth","algorithm":"reverse-aggressive","hints":{"fraction":0.5,"accuracy":1}}`, "Hints"},
		{"zero window", `{"trace":"synth","algorithm":"fixed-horizon","window":0}`, "Window"},
		{"negative window", `{"trace":"synth","algorithm":"fixed-horizon","window":-8}`, "Window"},
		{"window with reverse-aggressive", `{"trace":"synth","algorithm":"reverse-aggressive","window":10}`, "Hints"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts, c.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body: %s", resp.StatusCode, body)
			}
			var env ErrorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("non-JSON error body: %v\n%s", err, body)
			}
			if env.Error.Field != c.field {
				t.Errorf("error field %q, want %q (error: %s)", env.Error.Field, c.field, env.Error.Message)
			}
			if env.Error.Code != CodeInvalidRequest {
				t.Errorf("error code %q, want %q", env.Error.Code, CodeInvalidRequest)
			}
			if env.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestSingleflightDeduplicates is the acceptance check: identical
// concurrent requests share exactly one underlying simulation and all
// receive byte-identical Result JSON.
func TestSingleflightDeduplicates(t *testing.T) {
	gate := &gateRunner{started: make(chan struct{}, 16), release: make(chan struct{})}
	s := New(Config{Workers: 2, Runner: gate.run})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const concurrent = 8
	body := `{"trace":"synth","algorithm":"aggressive","disks":4}`

	var wg sync.WaitGroup
	bodies := make([][]byte, concurrent)
	statuses := make([]int, concurrent)
	// First request becomes the leader and blocks inside the runner...
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, b := post(t, ts, body)
		statuses[0], bodies[0] = resp.StatusCode, b
	}()
	<-gate.started
	// ...then the rest arrive while the leader's run is in flight.
	for i := 1; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := post(t, ts, body)
			statuses[i], bodies[i] = resp.StatusCode, b
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let followers reach the flight group
	close(gate.release)
	wg.Wait()

	for i := 0; i < concurrent; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if runs := s.runs.Load(); runs != 1 {
		t.Errorf("%d underlying simulations, want exactly 1", runs)
	}
}

// TestResultCacheHits: a repeated request is served from the LRU with
// byte-identical body and an X-Cache: hit marker; requests that spell
// the defaults explicitly share the canonical key.
func TestResultCacheHits(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"trace_text":%q,"algorithm":"demand"}`, inlineTrace("c", 32, 200))
	resp1, b1 := post(t, ts, body)
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first request: status %d, X-Cache %q", resp1.StatusCode, resp1.Header.Get("X-Cache"))
	}
	resp2, b2 := post(t, ts, body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second request: status %d, X-Cache %q", resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cache hit is not byte-identical:\n%s\nvs\n%s", b1, b2)
	}
	// Explicit defaults (disks 1, cscan, cpu_scale 1) canonicalize to the
	// same key, so this also hits.
	explicit := fmt.Sprintf(`{"trace_text":%q,"algorithm":"demand","disks":1,"scheduler":"cscan","cpu_scale":1}`,
		inlineTrace("c", 32, 200))
	resp3, b3 := post(t, ts, explicit)
	if resp3.Header.Get("X-Cache") != "hit" {
		t.Errorf("explicit-defaults request missed the cache")
	}
	if !bytes.Equal(b1, b3) {
		t.Errorf("explicit-defaults hit differs from original body")
	}
	if runs := s.runs.Load(); runs != 1 {
		t.Errorf("%d simulations for three identical requests, want 1", runs)
	}
}

// TestBackpressure: with one worker and one queue slot, a third distinct
// request is rejected with 429 and a Retry-After header while the first
// two are eventually served.
func TestBackpressure(t *testing.T) {
	gate := &gateRunner{started: make(chan struct{}, 4), release: make(chan struct{})}
	s := New(Config{Workers: 1, QueueDepth: 1, Runner: gate.run})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := func(alg string) string {
		return fmt.Sprintf(`{"trace":"synth","algorithm":%q}`, alg)
	}
	type reply struct {
		status int
	}
	results := make(chan reply, 2)
	go func() {
		resp, _ := post(t, ts, req("demand"))
		results <- reply{resp.StatusCode}
	}()
	<-gate.started // worker is now occupied by the first request
	go func() {
		resp, _ := post(t, ts, req("aggressive"))
		results <- reply{resp.StatusCode}
	}()
	// Wait for the second request to take the single queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.depth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := post(t, ts, req("forestall"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Message == "" {
		t.Errorf("429 body is not the JSON error envelope: %s", body)
	}
	if env.Error.Code != CodeQueueFull {
		t.Errorf("429 code %q, want %q", env.Error.Code, CodeQueueFull)
	}

	close(gate.release)
	for i := 0; i < 2; i++ {
		if r := <-results; r.status != http.StatusOK {
			t.Errorf("accepted request finished with %d", r.status)
		}
	}
	if got := s.rejected.Load(); got != 1 {
		t.Errorf("rejected counter %d, want 1", got)
	}
}

// TestGracefulShutdownDrains is the acceptance check: requests accepted
// before Close all complete with 200 even though Close begins while they
// are running or queued, and later submissions are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	const queued = 3
	gate := &gateRunner{started: make(chan struct{}, 8), release: make(chan struct{})}
	s := New(Config{Workers: 1, QueueDepth: queued, Runner: gate.run})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	algs := []string{"demand", "aggressive", "forestall", "fixed-horizon"}
	statuses := make(chan int, len(algs))
	go func() {
		resp, _ := post(t, ts, fmt.Sprintf(`{"trace":"synth","algorithm":%q}`, algs[0]))
		statuses <- resp.StatusCode
	}()
	<-gate.started
	for _, alg := range algs[1:] {
		go func(alg string) {
			resp, _ := post(t, ts, fmt.Sprintf(`{"trace":"synth","algorithm":%q}`, alg))
			statuses <- resp.StatusCode
		}(alg)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.depth() < queued {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests queued", s.pool.depth(), queued)
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	// Close must be blocked in drain while work is outstanding.
	select {
	case <-closed:
		t.Fatal("Close returned with simulations still gated")
	case <-time.After(20 * time.Millisecond):
	}
	close(gate.release)
	for range algs {
		if status := <-statuses; status != http.StatusOK {
			t.Errorf("accepted request lost to shutdown: status %d", status)
		}
	}
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after drain")
	}

	// After drain: new work refused, health reports draining.
	resp, _ := post(t, ts, `{"trace":"synth","algorithm":"demand","disks":7}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: status %d, want 503", resp.StatusCode)
	}
	hresp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status %d, want 503", hresp.StatusCode)
	}
}

// TestRequestTimeout: a deadline far shorter than the simulation
// produces 504 via the engine's cooperative cancellation.
func TestRequestTimeout(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := post(t, ts, `{"trace":"synth","algorithm":"aggressive","disks":4,"timeout_ms":1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, body)
	}
	if s.timeouts.Load() != 1 {
		t.Errorf("timeout counter %d, want 1", s.timeouts.Load())
	}
	// The failed run must not have been cached.
	if s.cache.len() != 0 {
		t.Errorf("timed-out result was cached")
	}
}

// TestHealthzAndStatsz: endpoint shapes and counter consistency.
func TestHealthzAndStatsz(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hresp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}

	body := fmt.Sprintf(`{"trace_text":%q,"algorithm":"demand"}`, inlineTrace("s", 16, 100))
	post(t, ts, body)
	post(t, ts, body)

	sresp, err := ts.Client().Get(ts.URL + "/v1/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Requests != 2 || st.Simulations != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.CacheHitRate != 0.5 {
		t.Errorf("hit rate %g, want 0.5", st.CacheHitRate)
	}
	// One computed run and one cache hit: each latency series gets
	// exactly one sample, so a hit can never hide a slow computed run.
	if st.LatencyMiss.Count != 1 || st.LatencyMiss.P95Ms < 0 {
		t.Errorf("miss latency summary: %+v", st.LatencyMiss)
	}
	if st.LatencyHit.Count != 1 || st.LatencyHit.P95Ms < 0 {
		t.Errorf("hit latency summary: %+v", st.LatencyHit)
	}
	if st.Workers != 1 || st.QueueCapacity != 4 {
		t.Errorf("pool shape: %+v", st)
	}
}

// TestMethodAndSizeLimits: wrong method and oversized bodies are
// rejected before any queue slot is touched.
func TestMethodAndSizeLimits(t *testing.T) {
	s := New(Config{Workers: 1, MaxBodyBytes: 128})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: %d, want 405", resp.StatusCode)
	}

	big := fmt.Sprintf(`{"trace_text":%q,"algorithm":"demand"}`, inlineTrace("big", 64, 500))
	resp2, _ := post(t, ts, big)
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", resp2.StatusCode)
	}
}

// TestPoolDrainLosesNothing exercises the pool directly: every accepted
// job runs even when drain races the submissions.
func TestPoolDrainLosesNothing(t *testing.T) {
	p := newPool(2, 8)
	var mu sync.Mutex
	ran := 0
	accepted := 0
	for i := 0; i < 100; i++ {
		err := p.submit(func() {
			mu.Lock()
			ran++
			mu.Unlock()
		})
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrQueueFull):
			// Backpressure under a slow consumer is fine here.
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	p.drain()
	mu.Lock()
	defer mu.Unlock()
	if ran != accepted {
		t.Errorf("ran %d of %d accepted jobs", ran, accepted)
	}
	if err := p.submit(func() {}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-drain submit: %v, want ErrClosed", err)
	}
}

// TestLRUEviction: the result cache honors its bound and evicts the
// least recently used key.
func TestLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	c.get("a") // refresh a; b is now LRU
	c.put("c", []byte("3"))
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || string(v) != "1" {
		t.Error("a should have survived")
	}
	if c.len() != 2 {
		t.Errorf("len %d, want 2", c.len())
	}
}

// TestLegacyShims: the pre-v1 paths survive one release as thin shims —
// POST /simulate answers 308 to /v1/run (method- and body-preserving,
// so redirect-following clients keep working), and the unversioned GET
// endpoints alias their v1 handlers with a Deprecation header.
func TestLegacyShims(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Raw shim behavior, redirects not followed.
	noFollow := &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	resp, err := noFollow.Post(ts.URL+"/simulate", "application/json",
		strings.NewReader(`{"trace":"synth","algorithm":"demand"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPermanentRedirect {
		t.Fatalf("POST /simulate: status %d, want 308", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/run" {
		t.Errorf("Location %q, want /v1/run", loc)
	}
	if resp.Header.Get("Deprecation") == "" {
		t.Error("308 shim without Deprecation header")
	}

	// A default client follows the 308 and reaches the real handler.
	body := fmt.Sprintf(`{"trace_text":%q,"algorithm":"demand"}`, inlineTrace("legacy", 16, 50))
	resp2, err := ts.Client().Post(ts.URL+"/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("redirected /simulate: status %d", resp2.StatusCode)
	}
	var res ppcsim.Result
	if err := json.NewDecoder(resp2.Body).Decode(&res); err != nil {
		t.Fatalf("bad result through shim: %v", err)
	}

	// GET aliases serve the v1 payloads and flag deprecation.
	for _, path := range []string{"/healthz", "/statsz"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") == "" {
			t.Errorf("GET %s without Deprecation header", path)
		}
	}

	// Unknown paths draw the 404 envelope, not net/http's plain text.
	resp3, err := ts.Client().Get(ts.URL + "/v2/run")
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp3.Body).Decode(&env); err != nil || env.Error.Code != CodeNotFound {
		t.Errorf("404 body not the envelope (err %v, code %q)", err, env.Error.Code)
	}
	resp3.Body.Close()
}

// TestKeyCanonicalization: keys are insensitive to spelling defaults
// explicitly and to algorithm case, but sensitive to every
// outcome-changing option and to inline-trace content.
func TestKeyCanonicalization(t *testing.T) {
	one := 1
	base := RunSpec{Trace: "synth", Algorithm: "demand"}
	same := []RunSpec{
		{Trace: "synth", Algorithm: "DEMAND"},
		{Trace: "synth", Algorithm: "demand", Disks: &one, Scheduler: "cscan", CPUScale: 1},
	}
	for i, r := range same {
		if r.Key() != base.Key() {
			t.Errorf("variant %d key differs:\n%s\n%s", i, r.Key(), base.Key())
		}
	}
	// The transport-only timeout lives on Request, outside the key.
	withTimeout := Request{RunSpec: base, TimeoutMs: 500}
	if withTimeout.Key() != base.Key() {
		t.Errorf("timeout_ms leaked into the canonical key")
	}
	two := 2
	diff := []RunSpec{
		{Trace: "xds", Algorithm: "demand"},
		{Trace: "synth", Algorithm: "forestall"},
		{Trace: "synth", Algorithm: "demand", Disks: &two},
		{Trace: "synth", Algorithm: "demand", Scheduler: "fcfs"},
		{Trace: "synth", Algorithm: "demand", PlacementSeed: 9},
		{Trace: "synth", Algorithm: "demand", CPUScale: 0.5},
		{Trace: "synth", Algorithm: "demand", Hints: &Hints{Fraction: 0.5, Accuracy: 1}},
		{Trace: "synth", Algorithm: "demand", Window: &two},
		{TraceText: inlineTrace("synth", 8, 8), Algorithm: "demand"},
	}
	for i, r := range diff {
		if r.Key() == base.Key() {
			t.Errorf("variant %d should have a distinct key", i)
		}
	}
	if (&RunSpec{TraceText: inlineTrace("a", 8, 8), Algorithm: "demand"}).Key() ==
		(&RunSpec{TraceText: inlineTrace("a", 8, 9), Algorithm: "demand"}).Key() {
		t.Error("different inline traces share a key")
	}
}
