package serve

import "sync"

// flightGroup deduplicates concurrent work by key: the first caller of a
// key (the leader) runs fn; callers arriving while that run is in flight
// block and share the leader's outcome, including errors — a follower of
// a leader that hit a full queue shares the 429 rather than adding load.
// The entry is removed once fn returns, so a later request with the same
// key starts fresh (the result cache, not the flight group, serves
// repeats).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight //ppcvet:guardedby mu
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// do returns fn's result for key, running fn at most once per in-flight
// key. shared reports whether this caller joined an existing flight.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-f.done
		return f.val, f.err, true
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()
	close(f.done)

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return f.val, f.err, false
}
