package serve

import (
	"container/list"
	"sync"
)

// resultCache is a concurrency-safe LRU of canonical request key →
// serialized Result JSON. Serving a caching simulator is itself a
// caching problem: request streams are repeated and skewed (the MITHRIL
// regime), so an LRU over completed runs absorbs the hot keys while the
// worker pool handles the cold tail. Values are the exact bytes sent to
// clients, so hits are byte-identical to the first response.
type resultCache struct {
	mu  sync.Mutex
	max int
	//ppcvet:guardedby mu
	ll *list.List // front = most recently used
	//ppcvet:guardedby mu
	m map[string]*list.Element
}

type cacheEntry struct {
	key string
	val []byte
}

func newResultCache(max int) *resultCache {
	return &resultCache{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached bytes for key and marks the entry most
// recently used.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).val, true
}

// put stores val under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its value and
// recency.
func (c *resultCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry).val = val
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
