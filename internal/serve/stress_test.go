package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestServeStress hammers a live server with mixed concurrent traffic —
// repeated keys, distinct keys, inline traces, and invalid requests —
// and checks the service invariants hold under load. The CI race job
// runs this under -race, which is the real assertion: the cache,
// singleflight group, pool, and counters must be data-race free while
// saturated.
func TestServeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	s := New(Config{Workers: 4, QueueDepth: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A small request mix. All valid entries use tiny inline traces so a
	// single run is cheap; two of them share a body (and therefore a key),
	// and one is always invalid.
	tiny := inlineTrace("stress", 32, 200)
	mix := []struct {
		body  string
		valid bool
	}{
		{fmt.Sprintf(`{"trace_text":%q,"algorithm":"demand"}`, tiny), true},
		{fmt.Sprintf(`{"trace_text":%q,"algorithm":"demand"}`, tiny), true}, // same key as above
		{fmt.Sprintf(`{"trace_text":%q,"algorithm":"aggressive","disks":2}`, tiny), true},
		{fmt.Sprintf(`{"trace_text":%q,"algorithm":"forestall","disks":2,"cache_blocks":8}`, tiny), true},
		{fmt.Sprintf(`{"trace_text":%q,"algorithm":"fixed-horizon","disks":4}`, tiny), true},
		{fmt.Sprintf(`{"trace_text":%q,"algorithm":"reverse-aggressive"}`, tiny), true},
		{`{"trace":"nope","algorithm":"demand"}`, false},
		{`{"trace_text":"bad","algorithm":"demand"}`, false},
	}

	const (
		goroutines = 8
		rounds     = 40
	)
	var (
		mu     sync.Mutex
		bodies = map[string][]byte{} // request body -> first 200 response
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				m := mix[(g+i)%len(mix)]
				resp, got := post(t, ts, m.body)
				switch {
				case !m.valid:
					if resp.StatusCode != http.StatusBadRequest {
						t.Errorf("invalid request: status %d", resp.StatusCode)
					}
				case resp.StatusCode == http.StatusTooManyRequests:
					// Backpressure under saturation is a correct outcome.
				case resp.StatusCode == http.StatusOK:
					mu.Lock()
					if prev, ok := bodies[m.body]; !ok {
						bodies[m.body] = got
					} else if !bytes.Equal(prev, got) {
						t.Errorf("same request produced different bodies:\n%s\nvs\n%s", prev, got)
					}
					mu.Unlock()
				default:
					t.Errorf("valid request: status %d, want 200 or 429", resp.StatusCode)
				}
			}
		}(g)
	}
	wg.Wait()

	// Successful runs cache forever here (the cache holds 1024 entries),
	// so the number of underlying simulations is bounded by the distinct
	// valid keys: every repeat was a cache hit or a deduplicated flight.
	distinct := 5 // mix entries 0/1 share a key; entries 2-5 add one each
	if runs := s.runs.Load(); runs > int64(distinct) {
		t.Errorf("%d simulations for %d distinct keys — caching or dedup leak", runs, distinct)
	}
	st := s.Snapshot()
	if st.Requests == 0 || st.CacheHits == 0 {
		t.Errorf("implausible stats after stress: %+v", st)
	}
}
