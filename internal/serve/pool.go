package serve

import (
	"errors"
	"sync"
)

// ErrQueueFull reports that the bounded job queue had no free slot; the
// HTTP layer maps it to 429 with a Retry-After header.
var ErrQueueFull = errors.New("serve: simulation queue full")

// ErrClosed reports a submission after drain began; the HTTP layer maps
// it to 503.
var ErrClosed = errors.New("serve: server shutting down")

// pool runs jobs on a fixed set of workers fed by a bounded queue. The
// queue bound is the service's backpressure mechanism: a submit that
// finds it full fails immediately instead of queueing unbounded work,
// and drain guarantees every accepted job still runs.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool //ppcvet:guardedby mu
}

// newPool starts workers goroutines consuming a queue of depth slots.
func newPool(workers, depth int) *pool {
	p := &pool{jobs: make(chan func(), depth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit enqueues job without blocking. It returns ErrQueueFull when
// every queue slot is taken and ErrClosed after drain began. A nil
// return means the job is accepted: it will run even if drain starts
// immediately afterwards.
func (p *pool) submit(job func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.jobs <- job:
		return nil
	default:
		return ErrQueueFull
	}
}

// depth returns the number of accepted jobs not yet picked up by a
// worker.
func (p *pool) depth() int { return len(p.jobs) }

// drain stops intake and blocks until every accepted job has finished.
// Safe to call more than once.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
