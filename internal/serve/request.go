package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"ppcsim"
)

// Request is the JSON body of POST /v1/run: one RunSpec (the shared
// simulation schema, flattened into the same object) plus the
// transport-only timeout. See RunSpec for the field semantics.
type Request struct {
	RunSpec
	// TimeoutMs caps this request's simulation time (host milliseconds).
	// It is clamped to the server's MaxTimeout and excluded from the
	// result-cache key: two requests for the same simulation share one
	// run and one cache entry regardless of their deadlines.
	TimeoutMs float64 `json:"timeout_ms,omitempty"`
}

// ParseRequest decodes and boundary-checks a /v1/run body. Decoding is
// strict (unknown fields are rejected, so typos fail loudly instead of
// simulating the wrong configuration). Validation failures are
// *ppcsim.ConfigError values naming the offending field, which the
// handler renders as the 400 error envelope.
func ParseRequest(body []byte) (*Request, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, &ppcsim.ConfigError{Field: "Request", Reason: fmt.Sprintf("bad JSON: %v", err)}
	}
	// Reject trailing garbage after the JSON object.
	if dec.More() {
		return nil, &ppcsim.ConfigError{Field: "Request", Reason: "trailing data after JSON body"}
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.TimeoutMs < 0 {
		return nil, &ppcsim.ConfigError{Field: "TimeoutMs", Reason: fmt.Sprintf("must be non-negative, got %g", req.TimeoutMs)}
	}
	return &req, nil
}
