package coord

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf(`{"a":"demand","c":%d}`, i)
	}
	return keys
}

// TestRingDeterministic: ownership is a pure function of the node set —
// independent of configuration order — because routing must agree
// between a coordinator and any future process reading its store.
func TestRingDeterministic(t *testing.T) {
	a := newRing([]string{"w0", "w1", "w2"}, 64)
	b := newRing([]string{"w2", "w0", "w1"}, 64)
	for _, k := range ringKeys(200) {
		if ao, bo := a.owner(k, nil), b.owner(k, nil); ao != bo {
			t.Fatalf("owner(%q) differs by construction order: %q vs %q", k, ao, bo)
		}
	}
}

// TestRingBalance: with 64 virtual points per node, no node owns a
// wildly disproportionate share of a large key population.
func TestRingBalance(t *testing.T) {
	nodes := []string{"w0", "w1", "w2", "w3"}
	r := newRing(nodes, 64)
	counts := make(map[string]int)
	keys := ringKeys(4000)
	for _, k := range keys {
		counts[r.owner(k, nil)]++
	}
	mean := len(keys) / len(nodes)
	for _, n := range nodes {
		if counts[n] < mean/3 || counts[n] > mean*3 {
			t.Errorf("node %s owns %d of %d keys (mean %d) — badly unbalanced",
				n, counts[n], len(keys), mean)
		}
	}
}

// TestRingMinimalDisruption: excluding one node must reroute only the
// keys that node owned; every other key keeps its owner, so a worker
// failure does not cold-start the survivors' caches.
func TestRingMinimalDisruption(t *testing.T) {
	r := newRing([]string{"w0", "w1", "w2"}, 64)
	dead := map[string]bool{"w1": true}
	moved := 0
	for _, k := range ringKeys(1000) {
		before := r.owner(k, nil)
		after := r.owner(k, dead)
		if before != "w1" {
			if after != before {
				t.Fatalf("key %q moved %q -> %q though its owner survived", k, before, after)
			}
			continue
		}
		moved++
		if after == "w1" || after == "" {
			t.Fatalf("key %q still routed to dead node (got %q)", k, after)
		}
	}
	if moved == 0 {
		t.Fatal("w1 owned no keys out of 1000 — balance test should have caught this")
	}
}

// TestRingAllDead: a fully dead fleet yields no owner rather than a
// spin or a panic.
func TestRingAllDead(t *testing.T) {
	r := newRing([]string{"w0", "w1"}, 8)
	dead := map[string]bool{"w0": true, "w1": true}
	if got := r.owner("any-key", dead); got != "" {
		t.Fatalf("owner over all-dead fleet = %q, want empty", got)
	}
	empty := newRing(nil, 8)
	if got := empty.owner("any-key", nil); got != "" {
		t.Fatalf("owner on empty ring = %q, want empty", got)
	}
}

// TestItoa pins the local itoa helper against the obvious cases.
func TestItoa(t *testing.T) {
	for _, n := range []int{0, 1, 9, 10, 63, 100, 12345} {
		if got, want := itoa(n), fmt.Sprintf("%d", n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}
