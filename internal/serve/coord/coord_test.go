package coord

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ppcsim/internal/serve"
)

// inlineTrace renders a small deterministic trace in the ppctrace text
// format, so jobs carry their workload inline and tests never wait on
// bundled trace generation.
func inlineTrace(name string, nBlocks, nRefs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ppctrace %s false %d\n", name, nBlocks)
	fmt.Fprintf(&b, "file %d\n", nBlocks)
	for i := 0; i < nRefs; i++ {
		fmt.Fprintf(&b, "r %d 0.1\n", i%nBlocks)
	}
	return b.String()
}

// jobBody is the canonical test grid: 2 algorithms × 2 disk counts ×
// 2 cache sizes = 8 cells over one inline trace.
func jobBody(t *testing.T) string {
	t.Helper()
	return fmt.Sprintf(`{"trace_text":%q,"algorithms":["demand","aggressive"],"disk_counts":[1,2],"cache_sizes":[16,32]}`,
		inlineTrace("grid", 64, 300))
}

// stream is a parsed NDJSON job response.
type stream struct {
	status  int
	header  http.Header
	cells   []CellRecord
	summary *Summary
}

// submitJob posts a job and parses the NDJSON stream.
func submitJob(t *testing.T, url, body string) *stream {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	st := &stream{status: resp.StatusCode, header: resp.Header}
	if resp.StatusCode != http.StatusOK {
		return st
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, line)
		}
		switch probe.Type {
		case "cell":
			var rec CellRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				t.Fatalf("bad cell record: %v\n%s", err, line)
			}
			st.cells = append(st.cells, rec)
		case "summary":
			if st.summary != nil {
				t.Fatal("two summary records in one stream")
			}
			var sum Summary
			if err := json.Unmarshal(line, &sum); err != nil {
				t.Fatalf("bad summary record: %v\n%s", err, line)
			}
			st.summary = &sum
		default:
			t.Fatalf("unknown record type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return st
}

// singleNodeResults runs every cell of body's grid on a fresh
// standalone worker and returns index → exact response bytes — the
// byte-identity oracle for streamed results.
func singleNodeResults(t *testing.T, body string) map[int][]byte {
	t.Helper()
	spec, err := ParseJobSpec([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Cells(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	out := make(map[int][]byte, len(cells))
	for _, c := range cells {
		req, err := json.Marshal(c.Spec)
		if err != nil {
			t.Fatal(err)
		}
		val, _, err := srv.RunJSON(req)
		if err != nil {
			t.Fatalf("single-node cell %d: %v", c.Index, err)
		}
		out[c.Index] = val
	}
	return out
}

// checkExactlyOnceIdentical asserts every cell index streams exactly
// once with bytes equal to the single-node oracle.
func checkExactlyOnceIdentical(t *testing.T, st *stream, want map[int][]byte) {
	t.Helper()
	seen := make(map[int]int)
	for _, rec := range st.cells {
		seen[rec.Index]++
		if rec.Error != nil {
			t.Errorf("cell %d failed: %+v", rec.Index, rec.Error)
			continue
		}
		if !bytes.Equal(rec.Result, want[rec.Index]) {
			t.Errorf("cell %d not byte-identical to single-node run:\n%s\nvs\n%s",
				rec.Index, rec.Result, want[rec.Index])
		}
	}
	for idx := range want {
		if seen[idx] != 1 {
			t.Errorf("cell %d delivered %d times, want exactly once", idx, seen[idx])
		}
	}
	if len(st.cells) != len(want) {
		t.Errorf("%d cell records for %d cells", len(st.cells), len(want))
	}
}

// newHTTPWorker starts a real worker over HTTP and returns its backend.
func newHTTPWorker(t *testing.T, name string) (*serve.Server, *httptest.Server, Backend) {
	t.Helper()
	srv := serve.New(serve.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, NewHTTPBackend(name, ts.URL, nil)
}

// TestJobByteIdenticalAndExactlyOnce is the acceptance path: a grid
// sharded over two real HTTP workers — some cells colliding with warm
// worker caches — streams every cell exactly once, byte-identical to
// single-node runs.
func TestJobByteIdenticalAndExactlyOnce(t *testing.T) {
	body := jobBody(t)
	want := singleNodeResults(t, body)

	_, tsA, bA := newHTTPWorker(t, "a")
	_, tsB, bB := newHTTPWorker(t, "b")
	c, err := New(Config{Backends: []Backend{bA, bB}})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(c.Handler())
	defer coordTS.Close()

	// Warm both workers with the first two cells so the job collides with
	// hot result caches no matter which worker owns those keys.
	spec, _ := ParseJobSpec([]byte(body))
	cells, _ := spec.Cells(1 << 20)
	for _, cell := range cells[:2] {
		req, _ := json.Marshal(cell.Spec)
		for _, ts := range []*httptest.Server{tsA, tsB} {
			resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(req))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("warmup run: status %d", resp.StatusCode)
			}
		}
	}

	st := submitJob(t, coordTS.URL, body)
	if st.status != http.StatusOK {
		t.Fatalf("job status %d", st.status)
	}
	if st.header.Get("X-Job-Cache") != "miss" {
		t.Errorf("first submission X-Job-Cache %q, want miss", st.header.Get("X-Job-Cache"))
	}
	checkExactlyOnceIdentical(t, st, want)
	if st.summary == nil || !st.summary.Complete {
		t.Fatalf("incomplete job: %+v", st.summary)
	}
	if st.summary.CellsDone != len(want) || st.summary.CellsFailed != 0 {
		t.Errorf("summary: %+v", st.summary)
	}
	// The two warmed cells must have been answered by warm worker caches.
	if st.summary.CacheHits < 2 {
		t.Errorf("cache hits %d, want >= 2 (warmed cells)", st.summary.CacheHits)
	}
	// Both workers took a share of the grid (consistent hashing spreads 8
	// keys across 2 nodes; the fixed keys make this deterministic).
	if len(st.summary.Workers) != 2 {
		t.Errorf("worker shares %v, want both workers used", st.summary.Workers)
	}
	snap := c.Snapshot()
	if snap.CellsDone != int64(len(want)) || snap.CellsTotal != int64(len(want)) {
		t.Errorf("coordinator counters: %+v", snap)
	}
	if snap.ShardSkew < 1 {
		t.Errorf("shard skew %g, want >= 1", snap.ShardSkew)
	}
}

// killingProxy fronts a worker and, after `allow` successful /v1/run
// responses, hard-closes every subsequent run request's connection —
// the transport signature of a worker process killed mid-job.
func killingProxy(t *testing.T, inner http.Handler, allow int64) *httptest.Server {
	t.Helper()
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/run" && served.Add(1) > allow {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("response writer is not a Hijacker")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestWorkerKilledMidJob: one of two workers dies after its first cell;
// the coordinator marks it dead, requeues its cells onto the survivor,
// and the stream still delivers every cell exactly once with
// byte-identical results.
func TestWorkerKilledMidJob(t *testing.T) {
	body := jobBody(t)
	want := singleNodeResults(t, body)

	srvA := serve.New(serve.Config{Workers: 2})
	defer srvA.Close()
	tsA := killingProxy(t, srvA.Handler(), 1)
	_, _, bB := newHTTPWorker(t, "b")
	bA := NewHTTPBackend("a", tsA.URL, nil)

	c, err := New(Config{Backends: []Backend{bA, bB}, PerBackend: 1, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(c.Handler())
	defer coordTS.Close()

	st := submitJob(t, coordTS.URL, body)
	if st.status != http.StatusOK {
		t.Fatalf("job status %d", st.status)
	}
	checkExactlyOnceIdentical(t, st, want)
	if st.summary == nil || !st.summary.Complete {
		t.Fatalf("incomplete job after worker death: %+v", st.summary)
	}
	if st.summary.CellsRetried == 0 {
		t.Error("no cells retried — the kill never bit, test is vacuous")
	}
	if got := st.summary.Workers["b"]; got < len(want)-1 {
		t.Errorf("survivor ran %d cells, want >= %d", got, len(want)-1)
	}
	if snap := c.Snapshot(); snap.CellsRetried == 0 {
		t.Errorf("coordinator retry counter: %+v", snap)
	}
}

// TestResubmitServedFromStore: an identical grid resubmitted to the
// coordinator is replayed entirely from the persisted store — zero
// recomputed cells, byte-identical stream — even across axis reorderings
// that expand to the same cell set, and even from a fresh coordinator
// sharing the same store directory.
func TestResubmitServedFromStore(t *testing.T) {
	body := jobBody(t)
	want := singleNodeResults(t, body)
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	srvA, _, bA := newHTTPWorker(t, "a")
	srvB, _, bB := newHTTPWorker(t, "b")
	c, err := New(Config{Backends: []Backend{bA, bB}, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(c.Handler())
	defer coordTS.Close()

	first := submitJob(t, coordTS.URL, body)
	if first.summary == nil || !first.summary.Complete {
		t.Fatalf("first submission incomplete: %+v", first.summary)
	}
	ranBefore := srvA.Snapshot().Simulations + srvB.Snapshot().Simulations

	second := submitJob(t, coordTS.URL, body)
	if second.header.Get("X-Job-Cache") != "hit" {
		t.Errorf("resubmission X-Job-Cache %q, want hit", second.header.Get("X-Job-Cache"))
	}
	checkExactlyOnceIdentical(t, second, want)
	if second.summary == nil || !second.summary.Complete {
		t.Fatalf("resubmission incomplete: %+v", second.summary)
	}
	if second.summary.CellsFromStore != len(want) {
		t.Errorf("cells_from_store %d, want %d", second.summary.CellsFromStore, len(want))
	}
	for _, rec := range second.cells {
		if rec.Cache != "store" {
			t.Errorf("cell %d cache %q, want store", rec.Index, rec.Cache)
		}
	}
	// Zero recomputed cells: the workers ran nothing new.
	if ranAfter := srvA.Snapshot().Simulations + srvB.Snapshot().Simulations; ranAfter != ranBefore {
		t.Errorf("workers ran %d new simulations on resubmission, want 0", ranAfter-ranBefore)
	}
	snap := c.Snapshot()
	if snap.JobsFromStore != 1 || snap.CellsFromStore != int64(len(want)) {
		t.Errorf("store counters: %+v", snap)
	}

	// Axis order does not matter: the reversed grid expands to the same
	// cell set and therefore the same job key.
	reordered := fmt.Sprintf(`{"trace_text":%q,"algorithms":["aggressive","demand"],"disk_counts":[2,1],"cache_sizes":[32,16]}`,
		inlineTrace("grid", 64, 300))
	third := submitJob(t, coordTS.URL, reordered)
	if third.header.Get("X-Job-Cache") != "hit" {
		t.Errorf("reordered grid X-Job-Cache %q, want hit", third.header.Get("X-Job-Cache"))
	}
	if third.summary == nil || third.summary.CellsFromStore != len(want) {
		t.Errorf("reordered grid not fully from store: %+v", third.summary)
	}

	// Persistence survives a coordinator restart: a fresh coordinator on
	// the same directory replays the grid without touching its fleet.
	c2, err := New(Config{Backends: []Backend{bA, bB}, Store: mustDirStore(t, store.dir)})
	if err != nil {
		t.Fatal(err)
	}
	coordTS2 := httptest.NewServer(c2.Handler())
	defer coordTS2.Close()
	fourth := submitJob(t, coordTS2.URL, body)
	if fourth.header.Get("X-Job-Cache") != "hit" {
		t.Errorf("restarted coordinator X-Job-Cache %q, want hit", fourth.header.Get("X-Job-Cache"))
	}
	checkExactlyOnceIdentical(t, fourth, want)
}

func mustDirStore(t *testing.T, dir string) *DirStore {
	t.Helper()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEmbeddedSingleProcess: the coordinator with embedded in-process
// workers — one binary, no sockets — serves the same byte-identical
// grid, and its /v1/run proxy routes singles to the owning shard.
func TestEmbeddedSingleProcess(t *testing.T) {
	body := jobBody(t)
	want := singleNodeResults(t, body)

	backends, closeAll := NewEmbeddedBackends(2, serve.Config{Workers: 2})
	defer closeAll()
	c, err := New(Config{Backends: backends})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(c.Handler())
	defer coordTS.Close()

	st := submitJob(t, coordTS.URL, body)
	checkExactlyOnceIdentical(t, st, want)
	if st.summary == nil || !st.summary.Complete {
		t.Fatalf("embedded job incomplete: %+v", st.summary)
	}

	// Proxy path: a single run through the coordinator lands on the shard
	// owning its key, and a repeat hits that shard's (already warm) cache.
	spec, _ := ParseJobSpec([]byte(body))
	cells, _ := spec.Cells(1 << 20)
	req, _ := json.Marshal(cells[0].Spec)
	resp, err := http.Post(coordTS.URL+"/v1/run", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy run status %d: %s", resp.StatusCode, buf.Bytes())
	}
	if resp.Header.Get("X-Worker") == "" {
		t.Error("proxy response without X-Worker")
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("proxy X-Cache %q, want hit (the job warmed this key's shard)", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(buf.Bytes(), want[0]) {
		t.Errorf("proxied run not byte-identical to single-node run")
	}
	if c.Snapshot().ProxiedRuns != 1 {
		t.Errorf("proxied_runs %d, want 1", c.Snapshot().ProxiedRuns)
	}
}

// TestJobBoundaries: every malformed or out-of-range job draws a 400
// envelope naming the offending field before any worker is touched.
func TestJobBoundaries(t *testing.T) {
	backends, closeAll := NewEmbeddedBackends(1, serve.Config{Workers: 1})
	defer closeAll()
	c, err := New(Config{Backends: backends, MaxCells: 16})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(c.Handler())
	defer coordTS.Close()

	cases := []struct {
		name  string
		body  string
		field string
	}{
		{"empty body", ``, "JobSpec"},
		{"bad json", `{`, "JobSpec"},
		{"trailing data", `{"trace":"synth","algorithms":["demand"]} extra`, "JobSpec"},
		{"unknown field", `{"trace":"synth","algorithms":["demand"],"bogus":1}`, "JobSpec"},
		{"no algorithms", `{"trace":"synth"}`, "Algorithms"},
		{"both algorithm forms", `{"trace":"synth","algorithm":"demand","algorithms":["demand"]}`, "Algorithms"},
		{"unknown algorithm in axis", `{"trace":"synth","algorithms":["demand","nosuch"]}`, "Algorithm"},
		{"disks and disk_counts", `{"trace":"synth","algorithms":["demand"],"disks":2,"disk_counts":[1,2]}`, "DiskCounts"},
		{"zero disk count", `{"trace":"synth","algorithms":["demand"],"disk_counts":[1,0]}`, "DiskCounts"},
		{"negative cache size", `{"trace":"synth","algorithms":["demand"],"cache_sizes":[-4]}`, "CacheSizes"},
		{"zero window", `{"trace":"synth","algorithms":["fixed-horizon"],"windows":[0]}`, "Windows"},
		{"window and windows", `{"trace":"synth","algorithms":["fixed-horizon"],"window":8,"windows":[8]}`, "Windows"},
		{"negative timeout", `{"trace":"synth","algorithms":["demand"],"timeout_ms":-1}`, "TimeoutMs"},
		{"no trace", `{"algorithms":["demand"]}`, "Trace"},
		{"both traces", `{"trace":"synth","trace_text":"x","algorithms":["demand"]}`, "Trace"},
		{"bad scheduler", `{"trace":"synth","algorithms":["demand"],"scheduler":"sstf"}`, "Scheduler"},
		{"grid too large", `{"trace":"synth","algorithms":["demand"],"disk_counts":[1,2,3,4,5],"cache_sizes":[8,16,32,64]}`, "JobSpec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(coordTS.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var env serve.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("non-envelope 400 body: %v", err)
			}
			if env.Error.Field != tc.field {
				t.Errorf("field %q, want %q (message: %s)", env.Error.Field, tc.field, env.Error.Message)
			}
			if env.Error.Code != serve.CodeInvalidRequest {
				t.Errorf("code %q, want invalid_request", env.Error.Code)
			}
		})
	}
}

// TestPermanentCellFailure: a grid whose cells are valid at the job
// boundary but rejected by the worker (window with an algorithm that
// takes no hints) fails those cells permanently — no retry storm — and
// the summary reports an incomplete job that is not persisted.
func TestPermanentCellFailure(t *testing.T) {
	backends, closeAll := NewEmbeddedBackends(2, serve.Config{Workers: 1})
	defer closeAll()
	store := NewMemStore()
	c, err := New(Config{Backends: backends, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptest.NewServer(c.Handler())
	defer coordTS.Close()

	// reverse-aggressive rejects hints; the job boundary validates only
	// the first cell (demand), so the bad cells surface as per-cell 400s.
	body := fmt.Sprintf(`{"trace_text":%q,"algorithms":["demand","reverse-aggressive"],"windows":[8]}`,
		inlineTrace("pf", 32, 100))
	st := submitJob(t, coordTS.URL, body)
	if st.status != http.StatusOK {
		t.Fatalf("job status %d", st.status)
	}
	if st.summary == nil || st.summary.Complete {
		t.Fatalf("job with failing cells reported complete: %+v", st.summary)
	}
	if st.summary.CellsFailed != 1 || st.summary.CellsDone != 1 {
		t.Errorf("summary: %+v", st.summary)
	}
	var failed *CellRecord
	for i := range st.cells {
		if st.cells[i].Error != nil {
			failed = &st.cells[i]
		}
	}
	if failed == nil {
		t.Fatal("no failed cell record streamed")
	}
	if failed.Error.Field != "Hints" {
		t.Errorf("failed cell error field %q, want Hints", failed.Error.Field)
	}
	if _, ok, _ := store.Load(JobKey(mustCells(t, body))); ok {
		t.Error("incomplete job was persisted")
	}
}

func mustCells(t *testing.T, body string) []Cell {
	t.Helper()
	spec, err := ParseJobSpec([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Cells(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	return cells
}
