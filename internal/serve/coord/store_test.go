package coord

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleJob(key string) *StoredJob {
	return &StoredJob{
		JobKey: key,
		Cells: []StoredCell{
			{Index: 0, Key: "k0", Result: json.RawMessage(`{"x":1}`)},
			{Index: 1, Key: "k1", Result: json.RawMessage(`{"x":2}`)},
		},
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	if _, ok, err := s.Load("absent"); ok || err != nil {
		t.Fatalf("Load(absent) = ok=%v err=%v", ok, err)
	}
	want := sampleJob("j1")
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load("j1")
	if !ok || err != nil {
		t.Fatalf("Load = ok=%v err=%v", ok, err)
	}
	if len(got.Cells) != 2 || string(got.Cells[1].Result) != `{"x":2}` {
		t.Errorf("loaded job mismatch: %+v", got)
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load("absent"); ok || err != nil {
		t.Fatalf("Load(absent) = ok=%v err=%v", ok, err)
	}
	if err := s.Save(sampleJob("j1")); err != nil {
		t.Fatal(err)
	}
	// A second store over the same directory sees the entry: persistence,
	// not process state.
	s2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Load("j1")
	if !ok || err != nil {
		t.Fatalf("Load after reopen = ok=%v err=%v", ok, err)
	}
	if len(got.Cells) != 2 {
		t.Errorf("loaded job mismatch: %+v", got)
	}
	// No temp droppings left behind by the atomic write path.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// TestDirStoreCorruption: a truncated or mislabeled entry surfaces as an
// error (which the coordinator degrades to recomputation), never as a
// trusted half-grid.
func TestDirStoreCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte(`{"job_key":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load("bad"); ok || err == nil {
		t.Errorf("corrupt entry: ok=%v err=%v, want load failure", ok, err)
	}
	// An entry whose content claims a different key is rejected too.
	if err := s.Save(sampleJob("honest")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, "honest.json"), filepath.Join(dir, "liar.json")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Load("liar"); ok || err == nil {
		t.Errorf("mislabeled entry: ok=%v err=%v, want load failure", ok, err)
	}
}
