package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ppcsim/internal/serve"
)

// readBody reads a bounded request body, writing the envelope error
// itself on failure.
func (c *Coordinator) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		serve.WriteError(w, http.StatusMethodNotAllowed, errors.New("coord: POST required"))
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			serve.WriteError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			serve.WriteError(w, http.StatusBadRequest, err)
		}
		return nil, false
	}
	return body, true
}

// handleJobs is the sweep-grid entry point: expand, shard, stream.
func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	spec, err := ParseJobSpec(body)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, err)
		return
	}
	cells, err := spec.Cells(c.cfg.MaxCells)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, err)
		return
	}
	jobKey := JobKey(cells)
	c.jobsAccepted.Inc()
	c.cellsTotal.Add(int64(len(cells)))

	if stored := c.loadStored(jobKey, cells); stored != nil {
		c.streamStored(w, jobKey, cells, stored)
		return
	}
	if spec.TraceHash != "" {
		// Hash-named jobs pre-flight before any cell is scheduled: every
		// worker the ring can route to must hold the blob, so a rerouted
		// cell after a mid-job death still finds its trace.
		if err := c.preflightTrace(r.Context(), spec.TraceHash); err != nil {
			var pe *preflightError
			if errors.As(err, &pe) {
				serve.WriteError(w, pe.status, pe.err)
			} else {
				serve.WriteError(w, http.StatusBadGateway, err)
			}
			return
		}
	}
	c.streamLive(w, r, jobKey, cells, spec.TimeoutMs)
}

// loadStored returns the stored result for every current cell key, or
// nil when the store cannot satisfy the whole grid.
func (c *Coordinator) loadStored(jobKey string, cells []Cell) map[string]json.RawMessage {
	job, ok, err := c.cfg.Store.Load(jobKey)
	if !ok || err != nil {
		// A corrupt store entry degrades to recomputation, never to a
		// failed job.
		return nil
	}
	byKey := make(map[string]json.RawMessage, len(job.Cells))
	for _, sc := range job.Cells {
		byKey[sc.Key] = sc.Result
	}
	for i := range cells {
		if _, ok := byKey[cells[i].Key]; !ok {
			return nil
		}
	}
	return byKey
}

// streamStored replays a persisted grid: every cell record carries the
// stored bytes (still byte-identical to a fresh run, by determinism)
// and no worker is touched.
func (c *Coordinator) streamStored(w http.ResponseWriter, jobKey string, cells []Cell, byKey map[string]json.RawMessage) {
	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Job-Cache", "hit")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range cells {
		ready := time.Now()
		enc.Encode(CellRecord{
			Type:   "cell",
			Index:  cells[i].Index,
			Key:    cells[i].Key,
			Cache:  "store",
			Result: byKey[cells[i].Key],
		})
		if flusher != nil {
			flusher.Flush()
		}
		c.streamLag.Observe(float64(time.Since(ready)) / float64(time.Millisecond))
	}
	c.cellsFromStore.Add(int64(len(cells)))
	c.jobsFromStore.Inc()
	c.jobsCompleted.Inc()
	enc.Encode(Summary{
		Type:           "summary",
		JobKey:         jobKey,
		Complete:       true,
		CellsTotal:     len(cells),
		CellsDone:      len(cells),
		CellsFromStore: len(cells),
		ElapsedMs:      float64(time.Since(start)) / float64(time.Millisecond),
	})
	if flusher != nil {
		flusher.Flush()
	}
}

// streamLive runs the job on the fleet, streaming each cell as it
// completes and persisting the grid if every cell succeeded.
func (c *Coordinator) streamLive(w http.ResponseWriter, r *http.Request, jobKey string, cells []Cell, timeoutMs float64) {
	start := time.Now()
	c.jobsActive.Inc()
	defer c.jobsActive.Dec()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Job-Cache", "miss")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	run := c.newJobRun(r.Context(), cells, timeoutMs)
	run.start()

	var (
		stored    = make([]StoredCell, 0, len(cells))
		workers   = make(map[string]int, len(c.names))
		cacheHits int
		failed    int
	)
	for rec := range run.results {
		enc.Encode(rec.cell)
		if flusher != nil {
			flusher.Flush()
		}
		c.streamLag.Observe(float64(time.Since(rec.ready)) / float64(time.Millisecond))
		if rec.cell.Error != nil {
			failed++
			continue
		}
		workers[rec.cell.Worker]++
		if rec.cell.Cache == "hit" {
			cacheHits++
		}
		stored = append(stored, StoredCell{Index: rec.cell.Index, Key: rec.cell.Key, Result: rec.cell.Result})
	}
	run.wg.Wait()

	run.mu.Lock()
	retried, aborted := run.retried, run.aborted
	run.mu.Unlock()
	if aborted {
		// The client disconnected mid-stream; nobody is reading, and the
		// grid is incomplete — count the failure and stop.
		c.jobsFailed.Inc()
		return
	}
	complete := failed == 0 && len(stored) == len(cells)
	if complete {
		sort.Slice(stored, func(i, k int) bool { return stored[i].Index < stored[k].Index })
		// A failed save only costs a future recomputation.
		c.cfg.Store.Save(&StoredJob{JobKey: jobKey, Cells: stored})
		c.jobsCompleted.Inc()
	} else {
		c.jobsFailed.Inc()
	}
	enc.Encode(Summary{
		Type:         "summary",
		JobKey:       jobKey,
		Complete:     complete,
		CellsTotal:   len(cells),
		CellsDone:    len(stored),
		CellsFailed:  failed,
		CellsRetried: retried,
		CacheHits:    cacheHits,
		Workers:      workers,
		ElapsedMs:    float64(time.Since(start)) / float64(time.Millisecond),
	})
	if flusher != nil {
		flusher.Flush()
	}
}

// handleRun proxies one single simulation to the worker owning its
// canonical key, so a coordinator address serves the whole v1 surface:
// clients that only ever run single configs still populate (and profit
// from) the sharded caches.
func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	req, err := serve.ParseRequest(body)
	if err != nil {
		serve.WriteError(w, http.StatusBadRequest, err)
		return
	}
	c.proxiedRuns.Inc()
	key := req.Key()
	dead := make(map[string]bool)
	var lastErr error
	for range c.names {
		name := c.ring.owner(key, dead)
		if name == "" {
			break
		}
		c.perBackend[name].assigned.Inc()
		result, meta, err := c.byName[name].Run(r.Context(), body)
		if err == nil {
			c.perBackend[name].completed.Inc()
			xcache := "miss"
			if meta.CacheHit {
				xcache = "hit"
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Cache", xcache)
			w.Header().Set("X-Worker", name)
			if meta.Streamed {
				w.Header().Set("X-Streamed", "1")
				w.Header().Set("X-Refs-Per-Sec", strconv.FormatFloat(meta.RefsPerSec, 'f', 1, 64))
				w.Header().Set("X-Peak-Inuse-Bytes", strconv.FormatInt(meta.PeakInuseBytes, 10))
			}
			w.WriteHeader(http.StatusOK)
			w.Write(result)
			return
		}
		c.perBackend[name].failed.Inc()
		ce := classify(err)
		switch ce.kind {
		case errPermanent:
			serve.WriteError(w, serve.StatusForError(ce.err), ce.err)
			return
		case errBusy:
			w.Header().Set("Retry-After", "1")
			serve.WriteError(w, http.StatusTooManyRequests, ce.err)
			return
		}
		dead[name] = true
		lastErr = ce.err
	}
	if lastErr == nil {
		lastErr = errors.New("coord: no live backend")
	}
	serve.WriteError(w, http.StatusBadGateway, fmt.Errorf("coord: all backends failed: %w", lastErr))
}

// WorkerStats is one backend's slice of the coordinator stats.
type WorkerStats struct {
	Name      string `json:"name"`
	Assigned  int64  `json:"assigned"`
	Completed int64  `json:"completed"`
	Failed    int64  `json:"failed"`
}

// Stats is the coordinator's /v1/statsz response.
type Stats struct {
	Backends []WorkerStats `json:"backends"`

	JobsAccepted  int64 `json:"jobs_accepted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsFromStore int64 `json:"jobs_from_store"`
	JobsActive    int64 `json:"jobs_active"`

	CellsTotal     int64 `json:"cells_total"`
	CellsDone      int64 `json:"cells_done"`
	CellsRetried   int64 `json:"cells_retried"`
	CellsFailed    int64 `json:"cells_failed"`
	CellsFromStore int64 `json:"cells_from_store"`

	ProxiedRuns int64 `json:"proxied_runs"`

	// TraceUploads counts PUT /v1/traces accepted here; TracesReplicated
	// counts preflight worker→worker copies.
	TraceUploads     int64 `json:"trace_uploads"`
	TracesReplicated int64 `json:"traces_replicated"`

	// ShardSkew is max/mean of per-backend assigned cells (1 = perfectly
	// balanced, 0 = nothing assigned yet). Persistent skew means the key
	// space is hashing unevenly and the hot workers' caches are thrashing
	// while the cold workers' sit idle.
	ShardSkew float64 `json:"shard_skew"`

	// StreamLag is the per-cell result-ready → flushed distribution.
	StreamLag serve.LatencySummary `json:"stream_lag"`
}

// Snapshot collects the coordinator's current statistics.
func (c *Coordinator) Snapshot() Stats {
	st := Stats{
		JobsAccepted:     c.jobsAccepted.Load(),
		JobsCompleted:    c.jobsCompleted.Load(),
		JobsFailed:       c.jobsFailed.Load(),
		JobsFromStore:    c.jobsFromStore.Load(),
		JobsActive:       c.jobsActive.Load(),
		CellsTotal:       c.cellsTotal.Load(),
		CellsDone:        c.cellsDone.Load(),
		CellsRetried:     c.cellsRetried.Load(),
		CellsFailed:      c.cellsFailed.Load(),
		CellsFromStore:   c.cellsFromStore.Load(),
		ProxiedRuns:      c.proxiedRuns.Load(),
		TraceUploads:     c.traceUploads.Load(),
		TracesReplicated: c.tracesReplicated.Load(),
		StreamLag:        serve.Summarize(&c.streamLag),
	}
	var total, max int64
	for _, name := range c.names {
		bc := c.perBackend[name]
		ws := WorkerStats{
			Name:      name,
			Assigned:  bc.assigned.Load(),
			Completed: bc.completed.Load(),
			Failed:    bc.failed.Load(),
		}
		st.Backends = append(st.Backends, ws)
		total += ws.Assigned
		if ws.Assigned > max {
			max = ws.Assigned
		}
	}
	if total > 0 {
		mean := float64(total) / float64(len(c.names))
		st.ShardSkew = float64(max) / mean
	}
	return st
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "backends": len(c.names)})
}

func (c *Coordinator) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Snapshot())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// NewEmbeddedBackends starts n in-process worker servers — the
// single-binary deployment: ppc-coord with no -backends flag serves a
// whole (sharded) fleet from one process. The returned close function
// drains every worker.
func NewEmbeddedBackends(n int, scfg serve.Config) ([]Backend, func()) {
	if n <= 0 {
		n = 1
	}
	backends := make([]Backend, n)
	servers := make([]*serve.Server, n)
	for i := 0; i < n; i++ {
		servers[i] = serve.New(scfg)
		backends[i] = NewLocalBackend(fmt.Sprintf("local-%d", i), servers[i])
	}
	return backends, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}
