package coord

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// StoredJob is a completed grid: every cell's exact result bytes, keyed
// by the job's canonical identity. Because results are deterministic,
// replaying a StoredJob is indistinguishable from recomputing it —
// byte-for-byte — so identical resubmissions are served from storage
// with zero recomputed cells.
type StoredJob struct {
	JobKey string       `json:"job_key"`
	Cells  []StoredCell `json:"cells"`
}

// StoredCell pairs one cell's canonical key with its result JSON.
type StoredCell struct {
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// Store persists completed jobs. Implementations must be safe for
// concurrent use.
type Store interface {
	// Load returns the stored job for jobKey, or ok=false when absent.
	Load(jobKey string) (job *StoredJob, ok bool, err error)
	// Save persists a completed job (overwriting any previous entry).
	Save(job *StoredJob) error
}

// MemStore is an in-memory Store — the default, scoped to the
// coordinator process's lifetime.
type MemStore struct {
	mu   sync.Mutex
	jobs map[string]*StoredJob
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{jobs: make(map[string]*StoredJob)}
}

// Load implements Store.
func (s *MemStore) Load(jobKey string) (*StoredJob, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobKey]
	return j, ok, nil
}

// Save implements Store.
func (s *MemStore) Save(job *StoredJob) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[job.JobKey] = job
	return nil
}

// DirStore persists jobs as one JSON file per job key under a
// directory, surviving coordinator restarts. Writes go through a temp
// file plus rename, so a crash mid-save never leaves a half-written
// grid that a later Load would trust.
type DirStore struct {
	dir string
	mu  sync.Mutex
}

// NewDirStore creates (if needed) and wraps the directory.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

func (s *DirStore) path(jobKey string) string {
	// Job keys are hex SHA-256 strings — already safe as file names.
	return filepath.Join(s.dir, jobKey+".json")
}

// Load implements Store.
func (s *DirStore) Load(jobKey string) (*StoredJob, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.path(jobKey))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var job StoredJob
	if err := json.Unmarshal(data, &job); err != nil {
		return nil, false, fmt.Errorf("coord: corrupt stored job %s: %w", jobKey, err)
	}
	if job.JobKey != jobKey {
		return nil, false, fmt.Errorf("coord: stored job %s claims key %s", jobKey, job.JobKey)
	}
	return &job, true, nil
}

// Save implements Store.
func (s *DirStore) Save(job *StoredJob) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.Marshal(job)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "job-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.path(job.JobKey))
}
