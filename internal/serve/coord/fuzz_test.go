package coord

import (
	"errors"
	"testing"

	"ppcsim"
)

// FuzzParseJobSpec hammers the /v1/jobs decoder: arbitrary bytes must
// never panic, every rejection must be a *ppcsim.ConfigError naming a
// field, and anything accepted must expand deterministically into a
// bounded, well-formed cell list.
func FuzzParseJobSpec(f *testing.F) {
	f.Add([]byte(`{"trace":"synth","algorithms":["demand","aggressive"],"disk_counts":[1,2],"cache_sizes":[16,32]}`))
	f.Add([]byte(`{"trace":"synth","algorithm":"demand"}`))
	f.Add([]byte(`{"trace_text":"ppctrace t false 4\nfile 4\nr 0 0.1\n","algorithms":["demand"],"windows":[4]}`))
	f.Add([]byte(`{"trace":"synth","algorithms":["demand"],"timeout_ms":-3}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"trace":"synth","algorithms":["demand"],"bogus":true}`))
	f.Add([]byte(`{"trace":"synth","algorithms":["demand"]} trailing`))
	f.Fuzz(func(t *testing.T, body []byte) {
		spec, err := ParseJobSpec(body)
		if err != nil {
			var ce *ppcsim.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("rejection is not a ConfigError: %T %v", err, err)
			}
			if ce.Field == "" {
				t.Fatalf("ConfigError without a field: %v", err)
			}
			return
		}
		cells, err := spec.Cells(1 << 20)
		if err != nil {
			var ce *ppcsim.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("expansion rejection is not a ConfigError: %T %v", err, err)
			}
			return
		}
		if len(cells) == 0 {
			t.Fatal("accepted spec expanded to zero cells")
		}
		again, err := spec.Cells(1 << 20)
		if err != nil || len(again) != len(cells) {
			t.Fatalf("re-expansion disagrees: %d vs %d cells, err %v", len(cells), len(again), err)
		}
		for i, c := range cells {
			if c.Index != i {
				t.Fatalf("cell %d has Index %d", i, c.Index)
			}
			if c.Key == "" || c.Key != c.Spec.Key() || c.Key != again[i].Key {
				t.Fatalf("cell %d key unstable or empty", i)
			}
		}
		if JobKey(cells) != JobKey(again) {
			t.Fatal("job key unstable across expansions")
		}
	})
}
