package coord

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// ring is a consistent-hash ring mapping canonical cell keys to backend
// names. Each backend contributes `replicas` virtual points (hashes of
// "name#i"); a key is owned by the first point clockwise from the key's
// own hash. Two properties matter here:
//
//   - Partitioning: for a fixed fleet, each worker owns a stable,
//     roughly even slice of key space, so the per-worker LRU result
//     caches shard the cluster-wide working set instead of each holding
//     a duplicate of the hot keys.
//   - Minimal disruption: excluding a dead backend reroutes only the
//     keys that backend owned; every other key keeps its owner, so a
//     single worker failure does not cold-start the whole fleet's
//     caches.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// hash64 maps a string onto the ring's key space. SHA-256 (truncated)
// rather than a fast non-cryptographic hash: routing must be stable
// across processes, architectures, and releases, because the smoke
// tests and the result stores bake keys into saved state.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring for a fixed set of backend names.
func newRing(nodes []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = 64
	}
	r := &ring{points: make([]ringPoint, 0, len(nodes)*replicas)}
	for _, n := range nodes {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(n + "#" + itoa(i)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Ties broken by name so the ring is deterministic regardless of
		// the order backends were configured in.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// itoa is strconv.Itoa for the small non-negative ints used in virtual
// point labels, kept local to avoid importing strconv for one call.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// owner returns the backend owning key, walking clockwise past points
// whose node is in dead. It returns "" when every backend is dead.
func (r *ring) owner(key string, dead map[string]bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !dead[p.node] {
			return p.node
		}
	}
	return ""
}
