package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ppcsim"
	"ppcsim/internal/serve"
	"ppcsim/internal/serve/tracestore"
	"ppcsim/internal/trace"
)

// materializeSpec drains a generator spec into a fully resident trace —
// the reference workload every streamed result must match byte for byte.
func materializeSpec(t *testing.T, spec ppcsim.LargeTraceSpec) *ppcsim.Trace {
	t.Helper()
	src, err := spec.Source()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ppcsim.MaterializeTrace(src)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// nopSeekCloser adapts a bytes.Reader to the store-handle interface the
// oracle's SourceEnv needs.
type nopSeekCloser struct{ *bytes.Reader }

func (nopSeekCloser) Close() error { return nil }

// materializedResults is the conformance oracle: every cell of the grid
// assembled through the same option-mapping the workers use, but run on
// the fully materialized trace via the library — no streaming anywhere —
// and marshaled exactly as a worker response body. blob is the columnar
// encoding backing trace_hash cells (nil for generator grids).
func materializedResults(t *testing.T, body string, tr *ppcsim.Trace, blob []byte) map[int][]byte {
	t.Helper()
	cells := mustCells(t, body)
	env := serve.SourceEnv{
		OpenHash: func(string) (io.ReadSeekCloser, error) {
			return nopSeekCloser{bytes.NewReader(blob)}, nil
		},
	}
	out := make(map[int][]byte, len(cells))
	for _, c := range cells {
		opts, cleanup, err := c.Spec.BuildOptions(env)
		if err != nil {
			t.Fatalf("cell %d options: %v", c.Index, err)
		}
		opts.Source = nil
		opts.Trace = tr
		res, err := ppcsim.Run(opts)
		cleanup()
		if err != nil {
			t.Fatalf("cell %d materialized run: %v", c.Index, err)
		}
		val, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		out[c.Index] = val
	}
	return out
}

// TestStreamedJobMatchesMaterializedRuns is the streaming conformance
// acceptance: a generator-spec grid sharded over two real HTTP workers
// — every cell streamed, nothing materialized anywhere in the serving
// path — delivers each cell exactly once, byte-identical to the same
// cell run locally on the fully materialized trace. Both generator
// patterns are covered, and every computed cell must carry the
// streaming observations (throughput, peak heap) as transport metadata.
func TestStreamedJobMatchesMaterializedRuns(t *testing.T) {
	for _, tc := range []struct {
		pattern string
		seed    int64
	}{
		{"zipf", 11},
		{"loop", 0},
	} {
		t.Run(tc.pattern, func(t *testing.T) {
			body := fmt.Sprintf(
				`{"trace_spec":{"refs":24000,"blocks":1024,"pattern":%q,"seed":%d},"algorithms":["demand","aggressive","forestall"],"disk_counts":[1,2],"windows":[64,256]}`,
				tc.pattern, tc.seed)
			tr := materializeSpec(t, ppcsim.LargeTraceSpec{Refs: 24000, Blocks: 1024, Pattern: tc.pattern, Seed: tc.seed})
			want := materializedResults(t, body, tr, nil)

			_, _, bA := newHTTPWorker(t, "a")
			_, _, bB := newHTTPWorker(t, "b")
			c, err := New(Config{Backends: []Backend{bA, bB}})
			if err != nil {
				t.Fatal(err)
			}
			coordTS := httptestNewServer(t, c)

			st := submitJob(t, coordTS, body)
			if st.status != http.StatusOK {
				t.Fatalf("job status %d", st.status)
			}
			checkExactlyOnceIdentical(t, st, want)
			if st.summary == nil || !st.summary.Complete {
				t.Fatalf("incomplete job: %+v", st.summary)
			}
			if len(st.summary.Workers) != 2 {
				t.Errorf("worker shares %v, want both workers used", st.summary.Workers)
			}
			keys := make(map[string]bool, len(st.cells))
			for _, rec := range st.cells {
				if rec.Cache != "miss" {
					t.Errorf("cell %d cache %q, want miss on fresh workers", rec.Index, rec.Cache)
				}
				if rec.RefsPerSec <= 0 || rec.PeakInuseBytes <= 0 {
					t.Errorf("streamed cell %d missing observations: refs/sec %g, peak %d",
						rec.Index, rec.RefsPerSec, rec.PeakInuseBytes)
				}
				if rec.Key == "" || keys[rec.Key] {
					t.Errorf("cell %d key %q empty or duplicated", rec.Index, rec.Key)
				}
				keys[rec.Key] = true
			}
		})
	}
}

// httptestNewServer wraps the coordinator handler in a test server with
// cleanup, returning its base URL.
func httptestNewServer(t *testing.T, c *Coordinator) string {
	t.Helper()
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestHashNamedJobReplicatesAndMatches drives the content-addressed
// path end to end: the client uploads the columnar blob once, to the
// coordinator; job preflight replicates it to the worker that missed
// it; every cell streams from the store byte-identical to the
// materialized oracle; and an identical resubmission replays entirely
// from the job store with zero new simulations and zero fresh
// streaming telemetry.
func TestHashNamedJobReplicatesAndMatches(t *testing.T) {
	tr := materializeSpec(t, ppcsim.LargeTraceSpec{Refs: 20000, Blocks: 512, Pattern: "zipf", Seed: 7})
	var col bytes.Buffer
	if _, err := trace.WriteColumnar(&col, tr.Source()); err != nil {
		t.Fatal(err)
	}
	hash := tracestore.HashBytes(col.Bytes())

	srvA, _, bA := newHTTPWorker(t, "a")
	srvB, _, bB := newHTTPWorker(t, "b")
	c, err := New(Config{Backends: []Backend{bA, bB}, Store: NewMemStore()})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptestNewServer(t, c)

	// Upload once, to the coordinator: it lands on the hash's ring owner.
	req, err := http.NewRequest(http.MethodPut, coordTS+"/v1/traces/"+hash, bytes.NewReader(col.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("coordinator PUT: %d", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodHead, coordTS+"/v1/traces/"+hash, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("coordinator HEAD: %d", resp.StatusCode)
	}
	if holders := countHolders(t, hash, srvA, srvB); holders != 1 {
		t.Fatalf("%d workers hold the trace after upload, want exactly the ring owner", holders)
	}

	body := fmt.Sprintf(`{"trace_hash":%q,"algorithms":["demand","forestall"],"disk_counts":[1,2],"windows":[128]}`, hash)
	want := materializedResults(t, body, tr, col.Bytes())

	st := submitJob(t, coordTS, body)
	if st.status != http.StatusOK {
		t.Fatalf("job status %d", st.status)
	}
	checkExactlyOnceIdentical(t, st, want)
	if st.summary == nil || !st.summary.Complete {
		t.Fatalf("incomplete job: %+v", st.summary)
	}
	// Preflight copied the blob to the worker that missed it before any
	// cell was scheduled.
	if snap := c.Snapshot(); snap.TracesReplicated < 1 {
		t.Errorf("traces_replicated %d, want >= 1", snap.TracesReplicated)
	}
	if holders := countHolders(t, hash, srvA, srvB); holders != 2 {
		t.Errorf("%d workers hold the trace after the job, want 2", holders)
	}

	// Store replay: zero recompute, zero fresh telemetry, same bytes.
	ranBefore := srvA.Snapshot().Simulations + srvB.Snapshot().Simulations
	second := submitJob(t, coordTS, body)
	if second.header.Get("X-Job-Cache") != "hit" {
		t.Errorf("resubmission X-Job-Cache %q, want hit", second.header.Get("X-Job-Cache"))
	}
	checkExactlyOnceIdentical(t, second, want)
	if second.summary == nil || second.summary.CellsFromStore != len(want) {
		t.Errorf("resubmission not fully from store: %+v", second.summary)
	}
	for _, rec := range second.cells {
		if rec.Cache != "store" {
			t.Errorf("replayed cell %d cache %q, want store", rec.Index, rec.Cache)
		}
		if rec.RefsPerSec != 0 || rec.PeakInuseBytes != 0 {
			t.Errorf("replayed cell %d carries stale streaming telemetry: %+v", rec.Index, rec)
		}
	}
	if ranAfter := srvA.Snapshot().Simulations + srvB.Snapshot().Simulations; ranAfter != ranBefore {
		t.Errorf("workers ran %d new simulations on replay, want 0", ranAfter-ranBefore)
	}

	// A job naming a hash nobody holds is rejected at preflight — a 400
	// naming the field, before any cell touches a worker.
	otherHash := tracestore.HashBytes([]byte("never uploaded"))
	missing := fmt.Sprintf(`{"trace_hash":%q,"algorithms":["demand"],"windows":[128]}`, otherHash)
	resp, err = http.Post(coordTS+"/v1/jobs", "application/json", strings.NewReader(missing))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("absent-hash job status %d, want 400", resp.StatusCode)
	}
	var env serve.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("non-envelope 400 body: %v", err)
	}
	if env.Error.Field != "TraceHash" {
		t.Errorf("absent-hash error field %q, want TraceHash", env.Error.Field)
	}
}

// countHolders reports how many workers' trace stores hold hash.
func countHolders(t *testing.T, hash string, srvs ...*serve.Server) int {
	t.Helper()
	n := 0
	for _, s := range srvs {
		store, err := s.TraceStore()
		if err != nil {
			t.Fatal(err)
		}
		if store.Has(hash) {
			n++
		}
	}
	return n
}

// TestWorkerKilledMidStreamedJob: the fault-tolerance half of the
// conformance suite. One of two workers dies after its first streamed
// cell; the coordinator requeues its cells onto the survivor and the
// stream still delivers every cell exactly once, byte-identical to the
// materialized oracle — recovery must not perturb streamed results.
func TestWorkerKilledMidStreamedJob(t *testing.T) {
	body := `{"trace_spec":{"refs":24000,"blocks":1024,"pattern":"zipf","seed":5},"algorithms":["demand","aggressive"],"disk_counts":[1,2],"windows":[64,256]}`
	tr := materializeSpec(t, ppcsim.LargeTraceSpec{Refs: 24000, Blocks: 1024, Pattern: "zipf", Seed: 5})
	want := materializedResults(t, body, tr, nil)

	srvA := serve.New(serve.Config{Workers: 2})
	defer srvA.Close()
	tsA := killingProxy(t, srvA.Handler(), 1)
	_, _, bB := newHTTPWorker(t, "b")
	bA := NewHTTPBackend("a", tsA.URL, nil)

	c, err := New(Config{Backends: []Backend{bA, bB}, PerBackend: 1, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	coordTS := httptestNewServer(t, c)

	st := submitJob(t, coordTS, body)
	if st.status != http.StatusOK {
		t.Fatalf("job status %d", st.status)
	}
	checkExactlyOnceIdentical(t, st, want)
	if st.summary == nil || !st.summary.Complete {
		t.Fatalf("incomplete job after worker death: %+v", st.summary)
	}
	if st.summary.CellsRetried == 0 {
		t.Error("no cells retried — the kill never bit, test is vacuous")
	}
	if got := st.summary.Workers["b"]; got < len(want)-1 {
		t.Errorf("survivor ran %d cells, want >= %d", got, len(want)-1)
	}
}
