package coord

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ppcsim"
	"ppcsim/internal/serve"
	"ppcsim/internal/serve/tracestore"
)

// TestCoordTraceEndpointBoundaries drives the coordinator's /v1/traces
// surface through its rejection paths: the routes and methods it does
// not serve, malformed hashes, and a PUT whose body does not hash to
// its name (which must come back as a 400 naming TraceHash, not a
// gateway error, even though the rejection happens on the worker).
func TestCoordTraceEndpointBoundaries(t *testing.T) {
	_, _, bA := newHTTPWorker(t, "a")
	c, err := New(Config{Backends: []Backend{bA}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	do := func(t *testing.T, method, path string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	envelope := func(t *testing.T, resp *http.Response) serve.ErrorEnvelope {
		t.Helper()
		var env serve.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("decoding error envelope: %v", err)
		}
		return env
	}

	goodHash := tracestore.HashBytes([]byte("body"))

	if resp := do(t, http.MethodPut, "/v1/traces/", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("empty hash: status %d, want 404", resp.StatusCode)
	}
	if resp := do(t, http.MethodPut, "/v1/traces/"+goodHash+"/extra", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("nested path: status %d, want 404", resp.StatusCode)
	}

	resp := do(t, http.MethodPut, "/v1/traces/nothex", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed hash: status %d, want 400", resp.StatusCode)
	}
	if env := envelope(t, resp); env.Error.Field != "TraceHash" {
		t.Errorf("malformed hash: envelope %+v, want Field TraceHash", env.Error)
	}

	resp = do(t, http.MethodDelete, "/v1/traces/"+goodHash, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "PUT, HEAD" {
		t.Errorf("DELETE: Allow %q, want \"PUT, HEAD\"", allow)
	}

	// The body hashes to something other than its name: the worker
	// rejects the digest, and the coordinator must relay it as a
	// config error on TraceHash.
	resp = do(t, http.MethodPut, "/v1/traces/"+goodHash, []byte("different bytes"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched PUT: status %d, want 400", resp.StatusCode)
	}
	if env := envelope(t, resp); env.Error.Field != "TraceHash" {
		t.Errorf("mismatched PUT: envelope %+v, want Field TraceHash", env.Error)
	}

	if resp := do(t, http.MethodHead, "/v1/traces/"+goodHash, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("HEAD absent: status %d, want 404", resp.StatusCode)
	}

	// The happy path still works after all the rejections.
	resp = do(t, http.MethodPut, "/v1/traces/"+goodHash, []byte("body"))
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("valid PUT: status %d, want 201", resp.StatusCode)
	}
	if resp := do(t, http.MethodHead, "/v1/traces/"+goodHash, nil); resp.StatusCode != http.StatusNoContent {
		t.Errorf("HEAD held: status %d, want 204", resp.StatusCode)
	}
}

func TestPreflightErrorWrapsCause(t *testing.T) {
	cause := &ppcsim.ConfigError{Field: "TraceHash", Reason: "absent"}
	pe := &preflightError{status: http.StatusBadRequest, err: cause}
	if !strings.Contains(pe.Error(), "absent") {
		t.Errorf("Error() = %q, want the cause's text", pe.Error())
	}
	var cfg *ppcsim.ConfigError
	if !errors.As(pe, &cfg) || cfg.Field != "TraceHash" {
		t.Errorf("errors.As through preflightError failed: %v", pe)
	}
	wrapped := fmt.Errorf("outer: %w", pe)
	if !errors.As(wrapped, &cfg) {
		t.Error("preflightError does not unwrap through further wrapping")
	}
}
