package coord

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"ppcsim"
	"ppcsim/internal/serve"
)

// JobSpec is the JSON body of POST /v1/jobs: one whole sweep grid as a
// single job. It embeds the shared serve.RunSpec (flattened into the
// same object) as the base configuration, and the grid axes below
// multiply it into cells: the cross product of algorithms × disk
// counts × cache sizes × windows, every cell inheriting the base's
// trace, scheduler, hints, and tuning fields.
//
// An axis and its scalar base field are mutually exclusive — a job
// either fixes `algorithm` or sweeps `algorithms`, never both — so a
// spec always reads unambiguously.
type JobSpec struct {
	serve.RunSpec
	// Algorithms sweeps RunSpec.Algorithm. One of the two must be set.
	Algorithms []string `json:"algorithms,omitempty"`
	// DiskCounts sweeps RunSpec.Disks.
	DiskCounts []int `json:"disk_counts,omitempty"`
	// CacheSizes sweeps RunSpec.CacheBlocks.
	CacheSizes []int `json:"cache_sizes,omitempty"`
	// Windows sweeps RunSpec.Window.
	Windows []int `json:"windows,omitempty"`
	// TimeoutMs caps each cell's simulation time on the worker (host
	// milliseconds). Transport-only: excluded from all keys.
	TimeoutMs float64 `json:"timeout_ms,omitempty"`
}

// Cell is one grid point of a job: a fully resolved single-run spec
// plus its position in the deterministic expansion order.
type Cell struct {
	// Index is the cell's position in expansion order (algorithms-major,
	// then disk counts, cache sizes, windows — the same nesting ppc-sweep
	// uses, so streams sorted by Index line up with its CSV rows).
	Index int `json:"index"`
	// Spec is the cell's single-run configuration, exactly what the
	// coordinator posts to a worker's /v1/run.
	Spec serve.RunSpec `json:"spec"`
	// Key is Spec.Key(): the canonical cache key the owning worker will
	// also derive, which is what the consistent-hash routing hashes.
	Key string `json:"key"`
}

// ParseJobSpec decodes and boundary-checks a /v1/jobs body with the
// same strictness as the single-run boundary: unknown fields and
// trailing data are rejected, and every failure is a *ppcsim.ConfigError
// naming the offending field.
func ParseJobSpec(body []byte) (*JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, &ppcsim.ConfigError{Field: "JobSpec", Reason: fmt.Sprintf("bad JSON: %v", err)}
	}
	if dec.More() {
		return nil, &ppcsim.ConfigError{Field: "JobSpec", Reason: "trailing data after JSON body"}
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

func (s *JobSpec) validate() error {
	switch {
	case s.Algorithm == "" && len(s.Algorithms) == 0:
		return &ppcsim.ConfigError{Field: "Algorithms", Reason: "one of algorithm or algorithms is required"}
	case s.Algorithm != "" && len(s.Algorithms) > 0:
		return &ppcsim.ConfigError{Field: "Algorithms", Reason: "algorithm and algorithms are mutually exclusive"}
	}
	if s.Disks != nil && len(s.DiskCounts) > 0 {
		return &ppcsim.ConfigError{Field: "DiskCounts", Reason: "disks and disk_counts are mutually exclusive"}
	}
	if s.CacheBlocks != nil && len(s.CacheSizes) > 0 {
		return &ppcsim.ConfigError{Field: "CacheSizes", Reason: "cache_blocks and cache_sizes are mutually exclusive"}
	}
	if s.Window != nil && len(s.Windows) > 0 {
		return &ppcsim.ConfigError{Field: "Windows", Reason: "window and windows are mutually exclusive"}
	}
	for _, a := range s.Algorithms {
		if _, err := ppcsim.ParseAlgorithm(a); err != nil {
			return err
		}
	}
	for _, d := range s.DiskCounts {
		if d <= 0 {
			return &ppcsim.ConfigError{Field: "DiskCounts", Reason: fmt.Sprintf("must be positive, got %d", d)}
		}
	}
	for _, c := range s.CacheSizes {
		if c <= 0 {
			return &ppcsim.ConfigError{Field: "CacheSizes", Reason: fmt.Sprintf("must be positive, got %d", c)}
		}
	}
	for _, w := range s.Windows {
		if w <= 0 {
			return &ppcsim.ConfigError{Field: "Windows", Reason: fmt.Sprintf("must be positive, got %d", w)}
		}
	}
	if s.TimeoutMs < 0 {
		return &ppcsim.ConfigError{Field: "TimeoutMs", Reason: fmt.Sprintf("must be non-negative, got %g", s.TimeoutMs)}
	}
	// Validate one representative cell so base-field errors (missing
	// trace, unknown scheduler, bad hints ranges) surface at the job
	// boundary rather than as per-cell failures mid-stream. The remaining
	// cells differ only in axis values already checked above.
	cells, err := s.Cells(1 << 20)
	if err != nil {
		return err
	}
	return cells[0].Spec.Validate()
}

// Cells expands the grid into its deterministic cell list
// (algorithms-major, then disk counts, cache sizes, windows). maxCells
// bounds the expansion so a typo'd grid cannot fan a million
// simulations onto the fleet.
func (s *JobSpec) Cells(maxCells int) ([]Cell, error) {
	algs := s.Algorithms
	if len(algs) == 0 {
		algs = []string{s.Algorithm}
	}
	nd, nc, nw := len(s.DiskCounts), len(s.CacheSizes), len(s.Windows)
	if nd == 0 {
		nd = 1
	}
	if nc == 0 {
		nc = 1
	}
	if nw == 0 {
		nw = 1
	}
	total := len(algs) * nd * nc * nw
	if total > maxCells {
		return nil, &ppcsim.ConfigError{Field: "JobSpec",
			Reason: fmt.Sprintf("grid expands to %d cells, limit %d", total, maxCells)}
	}
	cells := make([]Cell, 0, total)
	for _, alg := range algs {
		for di := 0; di < nd; di++ {
			for ci := 0; ci < nc; ci++ {
				for wi := 0; wi < nw; wi++ {
					spec := s.RunSpec
					spec.Algorithm = alg
					if len(s.DiskCounts) > 0 {
						d := s.DiskCounts[di]
						spec.Disks = &d
					}
					if len(s.CacheSizes) > 0 {
						c := s.CacheSizes[ci]
						spec.CacheBlocks = &c
					}
					if len(s.Windows) > 0 {
						w := s.Windows[wi]
						spec.Window = &w
					}
					cells = append(cells, Cell{
						Index: len(cells),
						Spec:  spec,
						Key:   spec.Key(),
					})
				}
			}
		}
	}
	return cells, nil
}

// JobKey returns the job's canonical identity: the hex SHA-256 over the
// sorted set of cell keys. Two submissions whose grids expand to the
// same cell set — however the axes were spelled or ordered — share a
// key, and therefore share one persisted result grid.
func JobKey(cells []Cell) string {
	keys := make([]string, len(cells))
	for i, c := range cells {
		keys[i] = c.Key
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
