package coord

import (
	"errors"
	"fmt"
	"testing"

	"ppcsim"
)

// TestCellsExpansionOrder pins the grid nesting (algorithms-major, then
// disk counts, cache sizes, windows) that ppc-job's CSV mode and the
// smoke diff against ppc-sweep both depend on.
func TestCellsExpansionOrder(t *testing.T) {
	spec, err := ParseJobSpec([]byte(`{"trace":"synth","algorithms":["demand","aggressive"],"disk_counts":[1,2],"cache_sizes":[16,32]}`))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Cells(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("expanded %d cells, want 8", len(cells))
	}
	i := 0
	for _, alg := range []string{"demand", "aggressive"} {
		for _, d := range []int{1, 2} {
			for _, cb := range []int{16, 32} {
				c := cells[i]
				if c.Index != i {
					t.Errorf("cell %d has Index %d", i, c.Index)
				}
				if c.Spec.Algorithm != alg || *c.Spec.Disks != d || *c.Spec.CacheBlocks != cb {
					t.Errorf("cell %d = (%s,%d,%d), want (%s,%d,%d)",
						i, c.Spec.Algorithm, *c.Spec.Disks, *c.Spec.CacheBlocks, alg, d, cb)
				}
				if c.Key != c.Spec.Key() {
					t.Errorf("cell %d Key does not match Spec.Key()", i)
				}
				i++
			}
		}
	}
}

// TestCellsInheritBase: axis-free fields propagate from the embedded
// RunSpec into every cell.
func TestCellsInheritBase(t *testing.T) {
	spec, err := ParseJobSpec([]byte(`{"trace":"synth","algorithms":["demand"],"scheduler":"fcfs","batch_size":5,"hints":{"fraction":0.5,"accuracy":0.9},"cache_sizes":[16,32]}`))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Cells(100)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Spec.Scheduler != "fcfs" || c.Spec.BatchSize != 5 || c.Spec.Hints == nil || c.Spec.Hints.Fraction != 0.5 {
			t.Errorf("cell %d lost base fields: %+v", c.Index, c.Spec)
		}
		if c.Spec.Disks != nil {
			t.Errorf("cell %d grew a Disks value from nowhere", c.Index)
		}
	}
	if *cells[0].Spec.CacheBlocks != 16 || *cells[1].Spec.CacheBlocks != 32 {
		t.Error("cache_sizes axis not applied in order")
	}
}

// TestCellsMaxCells: the expansion bound reports the would-be size.
func TestCellsMaxCells(t *testing.T) {
	spec, err := ParseJobSpec([]byte(`{"trace":"synth","algorithms":["demand","aggressive"],"cache_sizes":[8,16,32]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Cells(5); err == nil {
		t.Fatal("6-cell grid passed a 5-cell limit")
	} else {
		var ce *ppcsim.ConfigError
		if !errors.As(err, &ce) || ce.Field != "JobSpec" {
			t.Fatalf("overflow error = %v, want ConfigError on JobSpec", err)
		}
	}
}

// TestJobKeyOrderInsensitive: grids that expand to the same cell set
// share a job key regardless of how the axes were spelled or ordered;
// different cell sets do not.
func TestJobKeyOrderInsensitive(t *testing.T) {
	expand := func(body string) []Cell {
		t.Helper()
		spec, err := ParseJobSpec([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		cells, err := spec.Cells(100)
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	a := JobKey(expand(`{"trace":"synth","algorithms":["demand","aggressive"],"cache_sizes":[16,32]}`))
	b := JobKey(expand(`{"trace":"synth","algorithms":["aggressive","demand"],"cache_sizes":[32,16]}`))
	if a != b {
		t.Error("reordered axes changed the job key")
	}
	// A scalar spelling of the same single-cell set also matches.
	c := JobKey(expand(`{"trace":"synth","algorithms":["demand"],"cache_sizes":[16]}`))
	d := JobKey(expand(`{"trace":"synth","algorithm":"demand","cache_blocks":16}`))
	if c != d {
		t.Error("scalar vs single-element-axis spelling changed the job key")
	}
	if a == c {
		t.Error("different grids share a job key")
	}
}

// TestParseJobSpecErrors: boundary failures are *ppcsim.ConfigError
// values naming the offending field (exercised over HTTP in
// TestJobBoundaries; this covers the direct API).
func TestParseJobSpecErrors(t *testing.T) {
	cases := []struct {
		body  string
		field string
	}{
		{`not json`, "JobSpec"},
		{`{"trace":"synth","algorithms":[]}`, "Algorithms"},
		{`{"trace":"synth","algorithms":["demand"],"cache_blocks":16,"cache_sizes":[16]}`, "CacheSizes"},
		{`{"trace":"synth","algorithms":["demand"],"cache_sizes":[16,0]}`, "CacheSizes"},
	}
	for _, tc := range cases {
		_, err := ParseJobSpec([]byte(tc.body))
		var ce *ppcsim.ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("ParseJobSpec(%s) err = %v, want ConfigError", tc.body, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("ParseJobSpec(%s) field = %q, want %q", tc.body, ce.Field, tc.field)
		}
	}
}

// TestJobKeyStable pins the job-key construction: any change to the
// canonical key derivation or the hash breaks stored-grid lookup for
// existing stores, and should have to change this test to do it.
func TestJobKeyStable(t *testing.T) {
	spec, err := ParseJobSpec([]byte(`{"trace":"synth","algorithms":["demand"],"cache_sizes":[16]}`))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Cells(10)
	if err != nil {
		t.Fatal(err)
	}
	key := JobKey(cells)
	if len(key) != 64 {
		t.Fatalf("job key %q is not hex SHA-256", key)
	}
	if again := JobKey(cells); again != key {
		t.Error("JobKey is not deterministic")
	}
	_ = fmt.Sprintf("%s", key)
}
