package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"ppcsim"
	"ppcsim/internal/serve"
)

// Backend is one worker in the fleet: it runs a single /v1/run body and
// returns the worker's exact response bytes (which are byte-identical
// across the fleet for a given key, because the simulator is
// deterministic and the canonical key pins every outcome-changing
// option). meta carries the run's transport metadata: whether the
// worker's result cache answered and, for streamed cells, the refs/sec
// and peak-heap observations.
type Backend interface {
	// Name identifies the backend on the hash ring and in stats. Names
	// must be unique within a coordinator.
	Name() string
	Run(ctx context.Context, body []byte) (result []byte, meta serve.RunMeta, err error)
}

// TraceBackend is the optional trace-store surface of a Backend. Both
// built-in backends implement it; the coordinator uses it to pre-flight
// trace_hash cells — probing which workers hold a hash and replicating
// the blob to the ones that don't before any cell is scheduled.
type TraceBackend interface {
	// TraceHas probes the worker's store for hash.
	TraceHas(ctx context.Context, hash string) (bool, error)
	// TracePut streams a blob into the worker's store under hash.
	TracePut(ctx context.Context, hash string, r io.Reader) error
	// TraceGet opens the worker's blob for reading; the caller closes it.
	TraceGet(ctx context.Context, hash string) (io.ReadCloser, error)
}

// errKind classifies a cell failure for the scheduler's retry logic.
type errKind int

const (
	// errTransient: the backend is unreachable or failed internally; mark
	// it dead for this job and reroute its cells.
	errTransient errKind = iota
	// errBusy: the backend applied backpressure (429); retry the cell on
	// the same backend after a pause.
	errBusy
	// errPermanent: the cell itself is invalid (400); retrying anywhere
	// is pointless.
	errPermanent
)

// cellError is a classified failure from a Backend.Run call.
type cellError struct {
	kind errKind
	err  error
}

func (e *cellError) Error() string { return e.err.Error() }
func (e *cellError) Unwrap() error { return e.err }

func classify(err error) *cellError {
	var ce *cellError
	if errors.As(err, &ce) {
		return ce
	}
	return &cellError{kind: errTransient, err: err}
}

// HTTPBackend drives a remote ppc-serve worker over its v1 API.
type HTTPBackend struct {
	name    string
	baseURL string
	client  *http.Client
}

// NewHTTPBackend wraps the worker at baseURL (scheme://host:port). A
// nil client uses http.DefaultClient. The name defaults to the URL.
func NewHTTPBackend(name, baseURL string, client *http.Client) *HTTPBackend {
	if client == nil {
		client = http.DefaultClient
	}
	if name == "" {
		name = baseURL
	}
	return &HTTPBackend{name: name, baseURL: strings.TrimRight(baseURL, "/"), client: client}
}

// Name implements Backend.
func (b *HTTPBackend) Name() string { return b.name }

// Run implements Backend: POST {base}/v1/run, classifying the response
// for the retry scheduler.
func (b *HTTPBackend) Run(ctx context.Context, body []byte) ([]byte, serve.RunMeta, error) {
	var meta serve.RunMeta
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.baseURL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nil, meta, &cellError{kind: errPermanent, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		// Connection refused, reset, or timeout: the worker is gone.
		return nil, meta, &cellError{kind: errTransient, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, meta, &cellError{kind: errTransient, err: err}
	}
	if resp.StatusCode == http.StatusOK {
		meta.CacheHit = resp.Header.Get("X-Cache") == "hit"
		if resp.Header.Get("X-Streamed") == "1" {
			meta.Streamed = true
			meta.RefsPerSec, _ = strconv.ParseFloat(resp.Header.Get("X-Refs-Per-Sec"), 64)
			meta.PeakInuseBytes, _ = strconv.ParseInt(resp.Header.Get("X-Peak-Inuse-Bytes"), 10, 64)
		}
		return data, meta, nil
	}
	// Prefer the worker's envelope message so the diagnostic a client
	// sees matches what the worker reported.
	errMsg := fmt.Sprintf("worker %s: status %d", b.name, resp.StatusCode)
	var env serve.ErrorEnvelope
	if jsonErr := json.Unmarshal(data, &env); jsonErr == nil && env.Error.Message != "" {
		if env.Error.Field != "" {
			return nil, meta, &cellError{kind: kindForStatus(resp.StatusCode),
				err: &ppcsim.ConfigError{Field: env.Error.Field, Reason: env.Error.Message}}
		}
		errMsg = fmt.Sprintf("worker %s: %s", b.name, env.Error.Message)
	}
	return nil, meta, &cellError{kind: kindForStatus(resp.StatusCode), err: errors.New(errMsg)}
}

// TraceHas implements TraceBackend via HEAD /v1/traces/<hash>.
func (b *HTTPBackend) TraceHas(ctx context.Context, hash string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, b.baseURL+"/v1/traces/"+hash, nil)
	if err != nil {
		return false, err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusNoContent:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	}
	return false, fmt.Errorf("coord: worker %s trace probe: status %d", b.name, resp.StatusCode)
}

// TracePut implements TraceBackend via PUT /v1/traces/<hash>.
func (b *HTTPBackend) TracePut(ctx context.Context, hash string, r io.Reader) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, b.baseURL+"/v1/traces/"+hash, r)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := b.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		return nil
	}
	var env serve.ErrorEnvelope
	if jsonErr := json.Unmarshal(data, &env); jsonErr == nil && env.Error.Message != "" {
		return fmt.Errorf("coord: worker %s trace upload: %s", b.name, env.Error.Message)
	}
	return fmt.Errorf("coord: worker %s trace upload: status %d", b.name, resp.StatusCode)
}

// TraceGet implements TraceBackend via GET /v1/traces/<hash>.
func (b *HTTPBackend) TraceGet(ctx context.Context, hash string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.baseURL+"/v1/traces/"+hash, nil)
	if err != nil {
		return nil, err
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("coord: worker %s trace download: status %d", b.name, resp.StatusCode)
	}
	return resp.Body, nil
}

func kindForStatus(status int) errKind {
	switch {
	case status == http.StatusTooManyRequests:
		return errBusy
	case status == http.StatusGatewayTimeout:
		// A deterministic simulation that exceeded its deadline here will
		// exceed it on every other worker too; don't punish the fleet.
		return errPermanent
	case status >= 400 && status < 500:
		return errPermanent
	default:
		return errTransient
	}
}

// LocalBackend runs cells on an in-process serve.Server — the embedded
// single-process mode, where one binary hosts the coordinator and its
// whole worker fleet with no sockets in between.
type LocalBackend struct {
	name string
	srv  *serve.Server
}

// NewLocalBackend wraps an in-process worker server.
func NewLocalBackend(name string, srv *serve.Server) *LocalBackend {
	return &LocalBackend{name: name, srv: srv}
}

// Name implements Backend.
func (b *LocalBackend) Name() string { return b.name }

// Server returns the wrapped worker, e.g. for stats or shutdown.
func (b *LocalBackend) Server() *serve.Server { return b.srv }

// Run implements Backend via serve.Server.RunJSONMeta, classifying
// errors exactly as the HTTP status mapping would.
func (b *LocalBackend) Run(ctx context.Context, body []byte) ([]byte, serve.RunMeta, error) {
	val, meta, err := b.srv.RunJSONMeta(body)
	if err != nil {
		return nil, serve.RunMeta{}, &cellError{kind: kindForStatus(serve.StatusForError(err)), err: err}
	}
	return val, meta, nil
}

// TraceHas implements TraceBackend against the embedded server's store.
func (b *LocalBackend) TraceHas(ctx context.Context, hash string) (bool, error) {
	st, err := b.srv.TraceStore()
	if err != nil {
		return false, err
	}
	return st.Has(hash), nil
}

// TracePut implements TraceBackend against the embedded server's store.
func (b *LocalBackend) TracePut(ctx context.Context, hash string, r io.Reader) error {
	st, err := b.srv.TraceStore()
	if err != nil {
		return err
	}
	_, err = st.Put(hash, r)
	return err
}

// TraceGet implements TraceBackend against the embedded server's store.
func (b *LocalBackend) TraceGet(ctx context.Context, hash string) (io.ReadCloser, error) {
	st, err := b.srv.TraceStore()
	if err != nil {
		return nil, err
	}
	return st.Open(hash)
}
