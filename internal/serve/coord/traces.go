package coord

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"ppcsim"
	"ppcsim/internal/serve"
	"ppcsim/internal/serve/tracestore"
)

// handleTraces is the coordinator's trace-store surface:
//
//	PUT  /v1/traces/<hash>  upload through the hash's ring-owner worker
//	HEAD /v1/traces/<hash>  probe whether any worker holds the hash
//
// A client needs to upload a trace exactly once, to the coordinator;
// job preflight replicates it to whichever workers a sweep lands on.
func (c *Coordinator) handleTraces(w http.ResponseWriter, r *http.Request) {
	hash := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	if hash == "" || strings.Contains(hash, "/") {
		serve.WriteError(w, http.StatusNotFound, fmt.Errorf("coord: no such endpoint %s", r.URL.Path))
		return
	}
	if !tracestore.ValidHash(hash) {
		serve.WriteError(w, http.StatusBadRequest, &ppcsim.ConfigError{Field: "TraceHash",
			Reason: fmt.Sprintf("%q is not a trace hash (want 64 lowercase hex digits)", hash)})
		return
	}
	switch r.Method {
	case http.MethodPut:
		// Route the blob to the worker owning the hash on the ring — the
		// same worker trace_hash cell keys gravitate toward, so in the
		// common single-trace job the bytes land where the work does.
		name := c.ring.owner(hash, nil)
		tb, ok := c.byName[name].(TraceBackend)
		if !ok {
			serve.WriteError(w, http.StatusBadGateway, fmt.Errorf("coord: backend %s cannot store traces", name))
			return
		}
		if err := tb.TracePut(r.Context(), hash, r.Body); err != nil {
			c.writeTracePutError(w, err)
			return
		}
		c.traceUploads.Inc()
		writeJSON(w, http.StatusCreated, map[string]any{"hash": hash, "worker": name})
	case http.MethodHead:
		for _, name := range c.names {
			tb, ok := c.byName[name].(TraceBackend)
			if !ok {
				continue
			}
			if has, err := tb.TraceHas(r.Context(), hash); err == nil && has {
				w.WriteHeader(http.StatusNoContent)
				return
			}
		}
		// net/http drops the body for HEAD; the status is the answer.
		serve.WriteError(w, http.StatusNotFound, fmt.Errorf("coord: trace %s not on any worker", hash))
	default:
		w.Header().Set("Allow", "PUT, HEAD")
		serve.WriteError(w, http.StatusMethodNotAllowed, fmt.Errorf("coord: PUT or HEAD required"))
	}
}

// writeTracePutError maps a worker upload failure onto the v1 envelope,
// keeping hash-mismatch and bad-hash diagnostics a 400 rather than a
// gateway error. The HTTP backend flattens the worker's envelope into
// the message text, so the mismatch case is sniffed there.
func (c *Coordinator) writeTracePutError(w http.ResponseWriter, err error) {
	var cfgErr *ppcsim.ConfigError
	var mismatch *tracestore.MismatchError
	switch {
	case errors.As(err, &cfgErr):
		serve.WriteError(w, http.StatusBadRequest, cfgErr)
	case errors.As(err, &mismatch), strings.Contains(err.Error(), "hashes to"):
		serve.WriteError(w, http.StatusBadRequest, &ppcsim.ConfigError{Field: "TraceHash", Reason: err.Error()})
	default:
		serve.WriteError(w, http.StatusBadGateway, err)
	}
}

// preflightTrace makes a trace_hash job runnable before any cell is
// scheduled: every backend is probed for the hash, and workers missing
// it receive a copy pulled from one that holds it. With no holder
// anywhere the job is rejected up front — the client must upload first
// — and a failed copy is a gateway error (the scheduler cannot route a
// cell to a worker that cannot see its trace).
func (c *Coordinator) preflightTrace(ctx context.Context, hash string) error {
	var holder TraceBackend
	var missing []TraceBackend
	for _, name := range c.names {
		tb, ok := c.byName[name].(TraceBackend)
		if !ok {
			return &preflightError{status: http.StatusBadGateway,
				err: fmt.Errorf("coord: backend %s cannot store traces", name)}
		}
		// A probe failure counts as missing: if the worker is truly gone
		// the copy below fails and reports it.
		if has, err := tb.TraceHas(ctx, hash); err == nil && has {
			if holder == nil {
				holder = tb
			}
		} else {
			missing = append(missing, tb)
		}
	}
	if holder == nil {
		return &preflightError{status: http.StatusBadRequest,
			err: &ppcsim.ConfigError{Field: "TraceHash",
				Reason: fmt.Sprintf("trace %s not found on any worker; upload it via PUT /v1/traces/%s first", hash, hash)}}
	}
	for _, tb := range missing {
		if err := c.copyTrace(ctx, hash, holder, tb); err != nil {
			return &preflightError{status: http.StatusBadGateway,
				err: fmt.Errorf("coord: replicating trace %s: %w", hash, err)}
		}
		c.tracesReplicated.Inc()
	}
	return nil
}

// copyTrace streams one blob holder → target.
func (c *Coordinator) copyTrace(ctx context.Context, hash string, from, to TraceBackend) error {
	rc, err := from.TraceGet(ctx, hash)
	if err != nil {
		return err
	}
	defer rc.Close()
	return to.TracePut(ctx, hash, rc)
}

// preflightError carries the HTTP status a preflight failure should
// surface as.
type preflightError struct {
	status int
	err    error
}

func (e *preflightError) Error() string { return e.err.Error() }
func (e *preflightError) Unwrap() error { return e.err }
