// Package coord is the coordinator role of a sweep cluster: it accepts
// a whole sweep grid as one job (POST /v1/jobs), expands it into cells,
// shards the cells across a fleet of worker backends by consistent-hash
// routing on the canonical cache key — so each worker's LRU result
// cache owns a disjoint slice of key space instead of duplicating the
// hot set — streams cell results back as NDJSON while they complete,
// requeues cells from failed workers onto the survivors, and persists
// completed grids so an identical resubmission is served from storage
// with zero recomputed cells.
//
// v1 endpoints (see docs/api-v1.md):
//
//	POST /v1/jobs     submit a sweep grid; chunked NDJSON stream out
//	POST /v1/run      proxy one simulation to the worker owning its key
//	GET  /v1/healthz  liveness and fleet size
//	GET  /v1/statsz   per-job counters, shard skew, stream lag
//
// The fleet can be remote ppc-serve processes (HTTPBackend), in-process
// serve.Servers (LocalBackend — the embedded single-process mode), or a
// mix.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"ppcsim/internal/obs"
	"ppcsim/internal/serve"
)

// Config parameterizes a Coordinator. The zero value of each field
// selects the noted default.
type Config struct {
	// Backends is the worker fleet. Required, non-empty, unique names.
	Backends []Backend
	// Replicas is the number of virtual ring points per backend
	// (default 64).
	Replicas int
	// PerBackend is the number of cells kept in flight per backend
	// (default 2 — workers pipeline one queued cell behind each running
	// one without tripping their own backpressure).
	PerBackend int
	// MaxAttempts bounds how many times one cell is tried before it is
	// failed permanently (default len(Backends)+1).
	MaxAttempts int
	// Backoff is the pause before retrying a cell on a backend that
	// answered 429 (default 50ms).
	Backoff time.Duration
	// MaxBodyBytes bounds the /v1/jobs request body (default 8 MiB, the
	// same limit workers apply, since a job body can carry an inline
	// trace).
	MaxBodyBytes int64
	// MaxCells bounds a job's grid expansion (default 1024).
	MaxCells int
	// Store persists completed grids (default an in-process MemStore;
	// use DirStore to survive restarts).
	Store Store
}

// Coordinator shards sweep jobs across a worker fleet. Create with
// New, expose via Handler.
type Coordinator struct {
	cfg        Config
	ring       *ring
	names      []string // backend names, sorted for deterministic output
	byName     map[string]Backend
	perBackend map[string]*backendCounters
	mux        *http.ServeMux

	// Job and cell lifecycle counters (see /v1/statsz).
	jobsAccepted   obs.Counter
	jobsCompleted  obs.Counter
	jobsFailed     obs.Counter
	jobsFromStore  obs.Counter
	jobsActive     obs.Gauge
	cellsTotal     obs.Counter
	cellsDone      obs.Counter
	cellsRetried   obs.Counter
	cellsFailed    obs.Counter
	cellsFromStore obs.Counter
	proxiedRuns    obs.Counter
	// Trace-store plumbing: uploads accepted at the coordinator's
	// /v1/traces endpoint and blobs copied worker→worker by job
	// preflight.
	traceUploads     obs.Counter
	tracesReplicated obs.Counter
	// streamLag measures result-ready → flushed-to-client per cell: a
	// growing lag means the client (or the coordinator's write path) is
	// the bottleneck, not the fleet.
	streamLag obs.SyncHistogram
}

// backendCounters is the per-worker slice of the coordinator's stats.
type backendCounters struct {
	assigned  obs.Counter // cells routed to this backend (incl. reroutes)
	completed obs.Counter // cells it finished successfully
	failed    obs.Counter // run attempts that errored on it
}

// New builds a Coordinator over a fixed fleet.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("coord: at least one backend is required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 64
	}
	if cfg.PerBackend <= 0 {
		cfg.PerBackend = 2
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = len(cfg.Backends) + 1
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = 1024
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	c := &Coordinator{
		cfg:        cfg,
		byName:     make(map[string]Backend, len(cfg.Backends)),
		perBackend: make(map[string]*backendCounters, len(cfg.Backends)),
		mux:        http.NewServeMux(),
	}
	for _, b := range cfg.Backends {
		name := b.Name()
		if _, dup := c.byName[name]; dup {
			return nil, fmt.Errorf("coord: duplicate backend name %q", name)
		}
		c.byName[name] = b
		c.perBackend[name] = &backendCounters{}
		c.names = append(c.names, name)
	}
	sort.Strings(c.names)
	c.ring = newRing(c.names, cfg.Replicas)
	c.mux.HandleFunc("/v1/jobs", c.handleJobs)
	c.mux.HandleFunc("/v1/run", c.handleRun)
	c.mux.HandleFunc("/v1/traces/", c.handleTraces)
	c.mux.HandleFunc("/v1/healthz", c.handleHealthz)
	c.mux.HandleFunc("/v1/statsz", c.handleStatsz)
	c.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteError(w, http.StatusNotFound, fmt.Errorf("coord: no such endpoint %s", r.URL.Path))
	})
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// CellRecord is one NDJSON line of a job stream: a completed (or
// permanently failed) cell. Result carries the worker's response bytes
// verbatim, so a streamed cell is byte-identical to the same request
// answered by a single-node /v1/run.
type CellRecord struct {
	Type     string `json:"type"` // "cell"
	Index    int    `json:"index"`
	Key      string `json:"key"`
	Worker   string `json:"worker,omitempty"` // empty when replayed from the store
	Attempts int    `json:"attempts,omitempty"`
	// Cache is where the result came from: "miss" (computed), "hit" (the
	// worker's result cache), or "store" (the coordinator's job store).
	Cache string             `json:"cache,omitempty"`
	Error *serve.ErrorDetail `json:"error,omitempty"` // set iff the cell failed
	// RefsPerSec and PeakInuseBytes are the worker's wall-clock
	// observations of a streamed (trace_spec/trace_hash) cell — transport
	// metadata, deliberately outside Result so stored grids replay
	// byte-identical results whatever machine computed them. Zero for
	// materialized cells, cache hits, and store replays.
	RefsPerSec     float64         `json:"refs_per_sec,omitempty"`
	PeakInuseBytes int64           `json:"peak_inuse_bytes,omitempty"`
	Result         json.RawMessage `json:"result,omitempty"`
}

// Summary is the terminal NDJSON record of a job stream.
type Summary struct {
	Type           string         `json:"type"` // "summary"
	JobKey         string         `json:"job_key"`
	Complete       bool           `json:"complete"`
	CellsTotal     int            `json:"cells_total"`
	CellsDone      int            `json:"cells_done"`
	CellsFailed    int            `json:"cells_failed"`
	CellsRetried   int            `json:"cells_retried"`
	CellsFromStore int            `json:"cells_from_store"`
	CacheHits      int            `json:"cache_hits"` // worker result-cache hits
	Workers        map[string]int `json:"workers,omitempty"`
	ElapsedMs      float64        `json:"elapsed_ms"`
}

// cellTask is a cell plus its scheduling state.
type cellTask struct {
	cell     Cell
	body     []byte // the /v1/run request this cell posts to a worker
	attempts int
}

// record pairs a stream line with the instant its result became ready,
// for the stream-lag histogram.
type record struct {
	ready time.Time
	cell  CellRecord
}

// jobRun is the per-job scheduler: per-backend queues under one mutex,
// worker goroutines pulling only their own backend's cells, and
// dead-backend reroute that rehashes orphaned cells onto the survivors.
type jobRun struct {
	c   *Coordinator
	ctx context.Context

	mu   sync.Mutex
	cond *sync.Cond
	//ppcvet:guardedby mu
	queues map[string][]*cellTask
	//ppcvet:guardedby mu
	dead      map[string]bool
	remaining int  //ppcvet:guardedby mu
	retried   int  //ppcvet:guardedby mu
	closed    bool //ppcvet:guardedby mu
	aborted   bool //ppcvet:guardedby mu
	results   chan record
	wg        sync.WaitGroup
}

func (c *Coordinator) newJobRun(ctx context.Context, cells []Cell, timeoutMs float64) *jobRun {
	j := &jobRun{
		c:         c,
		ctx:       ctx,
		queues:    make(map[string][]*cellTask, len(c.names)),
		dead:      make(map[string]bool),
		remaining: len(cells),
		// Every cell emits exactly one record, so a buffer of len(cells)
		// means sends under the scheduler lock never block.
		results: make(chan record, len(cells)),
	}
	j.cond = sync.NewCond(&j.mu)
	for i := range cells {
		body, err := json.Marshal(struct {
			serve.RunSpec
			TimeoutMs float64 `json:"timeout_ms,omitempty"`
		}{cells[i].Spec, timeoutMs})
		if err != nil {
			// RunSpec contains only marshalable fields; unreachable.
			panic(err)
		}
		j.enqueueLocked(&cellTask{cell: cells[i], body: body}, "")
	}
	return j
}

// start spawns the per-backend worker goroutines.
func (j *jobRun) start() {
	for _, name := range j.c.names {
		b := j.c.byName[name]
		for i := 0; i < j.c.cfg.PerBackend; i++ {
			j.wg.Add(1)
			go func() {
				defer j.wg.Done()
				for {
					t := j.next(b.Name())
					if t == nil {
						return
					}
					j.runCell(b, t)
				}
			}()
		}
	}
}

// enqueueLocked routes a task to preferred (when alive) or to the ring
// owner among live backends. Caller holds j.mu — which newJobRun does
// implicitly, being single-threaded before start.
func (j *jobRun) enqueueLocked(t *cellTask, preferred string) {
	name := preferred
	if name == "" || j.dead[name] {
		name = j.c.ring.owner(t.cell.Key, j.dead)
	}
	if name == "" {
		j.failLocked(t, http.StatusBadGateway,
			fmt.Errorf("coord: no live backend for cell %d after %d attempts", t.cell.Index, t.attempts))
		return
	}
	j.c.perBackend[name].assigned.Inc()
	j.queues[name] = append(j.queues[name], t)
	j.cond.Broadcast()
}

// next blocks until a cell for backend name is available, returning nil
// when the job is finished, aborted, or the backend is dead with an
// empty queue.
func (j *jobRun) next(name string) *cellTask {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.closed {
			return nil
		}
		if q := j.queues[name]; len(q) > 0 {
			t := q[0]
			j.queues[name] = q[1:]
			return t
		}
		if j.dead[name] {
			return nil
		}
		j.cond.Wait()
	}
}

// emitLocked sends a stream record unless the job already closed.
func (j *jobRun) emitLocked(rec CellRecord) {
	if !j.closed {
		j.results <- record{ready: time.Now(), cell: rec}
	}
}

// doneLocked retires one cell; the last one closes the stream.
func (j *jobRun) doneLocked() {
	j.remaining--
	if j.remaining == 0 && !j.closed {
		j.closed = true
		close(j.results)
	}
	j.cond.Broadcast()
}

// failLocked permanently fails a cell, emitting its error record.
func (j *jobRun) failLocked(t *cellTask, status int, err error) {
	j.c.cellsFailed.Inc()
	env := serve.Envelope(status, err)
	j.emitLocked(CellRecord{
		Type:     "cell",
		Index:    t.cell.Index,
		Key:      t.cell.Key,
		Attempts: t.attempts,
		Error:    &env.Error,
	})
	j.doneLocked()
}

// abortLocked tears the job down after a client disconnect: no more
// scheduling, stream closed, workers unblocked.
func (j *jobRun) abortLocked() {
	j.aborted = true
	if !j.closed {
		j.closed = true
		close(j.results)
	}
	j.cond.Broadcast()
}

// markDeadLocked excludes a backend for the rest of the job and
// rehashes its queued cells onto the survivors.
func (j *jobRun) markDeadLocked(name string) {
	if j.dead[name] {
		return
	}
	j.dead[name] = true
	orphans := j.queues[name]
	j.queues[name] = nil
	for _, t := range orphans {
		j.retried++
		j.c.cellsRetried.Inc()
		j.enqueueLocked(t, "")
	}
	j.cond.Broadcast()
}

// runCell executes one attempt of a cell on a backend and routes the
// outcome: emit on success, backoff-retry on busy, permanent-fail on
// invalid, mark-dead-and-reroute on transport failure.
func (j *jobRun) runCell(b Backend, t *cellTask) {
	t.attempts++
	result, meta, err := b.Run(j.ctx, t.body)
	name := b.Name()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	if err == nil {
		j.c.perBackend[name].completed.Inc()
		j.c.cellsDone.Inc()
		cache := "miss"
		if meta.CacheHit {
			cache = "hit"
		}
		j.emitLocked(CellRecord{
			Type:           "cell",
			Index:          t.cell.Index,
			Key:            t.cell.Key,
			Worker:         name,
			Attempts:       t.attempts,
			Cache:          cache,
			RefsPerSec:     meta.RefsPerSec,
			PeakInuseBytes: meta.PeakInuseBytes,
			Result:         result,
		})
		j.doneLocked()
		return
	}
	if j.ctx.Err() != nil {
		// The client went away; the backend error is just its echo.
		j.abortLocked()
		return
	}
	j.c.perBackend[name].failed.Inc()
	ce := classify(err)
	switch {
	case ce.kind == errPermanent:
		j.failLocked(t, serve.StatusForError(ce.err), ce.err)
	case t.attempts >= j.c.cfg.MaxAttempts:
		j.failLocked(t, http.StatusBadGateway,
			fmt.Errorf("coord: cell %d failed %d attempts, last: %w", t.cell.Index, t.attempts, ce.err))
	case ce.kind == errBusy:
		// Backpressure: pause outside the lock, then try the same backend
		// again — its queue drains in bounded time.
		j.mu.Unlock()
		time.Sleep(j.c.cfg.Backoff)
		j.mu.Lock()
		if j.closed {
			return
		}
		j.retried++
		j.c.cellsRetried.Inc()
		j.enqueueLocked(t, name)
	default: // transient: the worker is gone
		j.markDeadLocked(name)
		j.retried++
		j.c.cellsRetried.Inc()
		j.enqueueLocked(t, "")
	}
}
