package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/metrics"
	"strings"
	"testing"

	"ppcsim"
	"ppcsim/internal/serve/tracestore"
	"ppcsim/internal/trace"
)

// columnarBody renders a small deterministic trace as the base64
// columnar inline form, returning the encoded text and the raw bytes.
func columnarBody(t *testing.T, name string, nBlocks, nRefs int) (string, []byte) {
	t.Helper()
	tr, err := trace.Read(strings.NewReader(inlineTrace(name, nBlocks, nRefs)))
	if err != nil {
		t.Fatal(err)
	}
	var col bytes.Buffer
	if _, err := trace.WriteColumnar(&col, tr.Source()); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(col.Bytes()), col.Bytes()
}

// TestGeneratorSpecRunsStreamed: a trace_spec cell runs through
// Options.Source (meta.Streamed, throughput and heap observations set)
// and its Result is byte-identical to materializing the same generator
// locally and running it with the same options.
func TestGeneratorSpecRunsStreamed(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	body := []byte(`{"trace_spec":{"refs":30000,"blocks":512,"pattern":"zipf","seed":3},"algorithm":"forestall","disks":2,"window":256}`)
	val, meta, err := s.RunJSONMeta(body)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Streamed {
		t.Fatal("generator-spec run did not stream")
	}
	if meta.RefsPerSec <= 0 || meta.PeakInuseBytes <= 0 {
		t.Fatalf("missing streaming observations: %+v", meta)
	}

	spec := ppcsim.LargeTraceSpec{Refs: 30000, Blocks: 512, Pattern: "zipf", Seed: 3}
	src, err := spec.Source()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ppcsim.MaterializeTrace(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ppcsim.Run(ppcsim.Options{
		Trace: tr, Algorithm: ppcsim.Forestall, Disks: 2,
		Hints: &ppcsim.HintSpec{Fraction: 1, Accuracy: 1, Window: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(val, want) {
		t.Errorf("streamed and materialized results differ:\nstreamed:     %s\nmaterialized: %s", val, want)
	}

	// The transport metadata must stay out of the cached body: a replay
	// returns the same bytes with zero fresh observations.
	val2, meta2, err := s.RunJSONMeta(body)
	if err != nil {
		t.Fatal(err)
	}
	if !meta2.CacheHit || meta2.Streamed || meta2.RefsPerSec != 0 {
		t.Fatalf("replay meta = %+v, want pure cache hit", meta2)
	}
	if !bytes.Equal(val, val2) {
		t.Error("cache replay returned different bytes")
	}

	st := s.Snapshot()
	if st.StreamedRuns != 1 || st.PeakInuseBytes <= 0 || st.LastRefsPerSec <= 0 {
		t.Errorf("statsz missing streaming telemetry: %+v", st)
	}
}

// TestInlineColumnarWindowStreams: the satellite fix — an inline base64
// columnar body with a bounded window must route through Options.Source
// instead of materializing, and still produce the exact bytes of the
// materialized text-format run with the same options.
func TestInlineColumnarWindowStreams(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	b64, _ := columnarBody(t, "colwin", 64, 400)
	resp, gotCol := post(t, ts, fmt.Sprintf(`{"trace_text":%q,"algorithm":"fixed-horizon","disks":2,"window":32}`, b64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("columnar status %d: %s", resp.StatusCode, gotCol)
	}
	if resp.Header.Get("X-Streamed") != "1" {
		t.Error("windowed inline columnar run did not stream")
	}
	if resp.Header.Get("X-Refs-Per-Sec") == "" || resp.Header.Get("X-Peak-Inuse-Bytes") == "" {
		t.Error("streamed response missing observation headers")
	}

	resp, gotText := post(t, ts, fmt.Sprintf(`{"trace_text":%q,"algorithm":"fixed-horizon","disks":2,"window":32}`,
		inlineTrace("colwin", 64, 400)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text status %d: %s", resp.StatusCode, gotText)
	}
	if resp.Header.Get("X-Streamed") == "1" {
		t.Error("text-format run claims to stream")
	}
	if !bytes.Equal(gotCol, gotText) {
		t.Errorf("streamed columnar and materialized text runs differ:\ncolumnar: %s\ntext:     %s", gotCol, gotText)
	}

	// Without a window the columnar body still materializes (offline
	// algorithms and unlimited lookahead stay available).
	resp, got := post(t, ts, fmt.Sprintf(`{"trace_text":%q,"algorithm":"reverse-aggressive"}`, b64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offline columnar status %d: %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Streamed") == "1" {
		t.Error("windowless columnar run claims to stream")
	}
}

// TestTraceStoreEndpoints drives the worker's /v1/traces surface: PUT
// verifies and stores, duplicate PUTs are acknowledged without a new
// blob, HEAD probes, GET round-trips the bytes, and a trace_hash run
// cell streams from the stored blob with the exact result bytes of the
// same trace submitted inline.
func TestTraceStoreEndpoints(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	b64, raw := columnarBody(t, "stored", 64, 400)
	hash := tracestore.HashBytes(raw)
	url := ts.URL + "/v1/traces/" + hash

	do := func(method, u string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, u, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Probe before upload: 404.
	if resp := do(http.MethodHead, url, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD before upload: %d", resp.StatusCode)
	}
	// Upload: 201, then duplicate: 200.
	if resp := do(http.MethodPut, url, raw); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d", resp.StatusCode)
	}
	if resp := do(http.MethodPut, url, raw); resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate PUT: %d", resp.StatusCode)
	}
	if resp := do(http.MethodHead, url, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("HEAD after upload: %d", resp.StatusCode)
	}
	// GET round-trips the exact bytes.
	resp := do(http.MethodGet, url, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("GET bytes differ from upload")
	}

	// Wrong-hash and malformed-hash uploads are 400s naming the field.
	otherHash := tracestore.HashBytes([]byte("not the blob"))
	if resp := do(http.MethodPut, ts.URL+"/v1/traces/"+otherHash, raw); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched PUT: %d", resp.StatusCode)
	}
	if resp := do(http.MethodPut, ts.URL+"/v1/traces/nothex", raw); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed-hash PUT: %d", resp.StatusCode)
	}

	// A trace_hash cell streams from the store and matches the inline
	// submission of the same trace byte for byte.
	resp, gotHash := post(t, ts, fmt.Sprintf(`{"trace_hash":%q,"algorithm":"forestall","disks":2,"window":32}`, hash))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace_hash run: %d: %s", resp.StatusCode, gotHash)
	}
	if resp.Header.Get("X-Streamed") != "1" {
		t.Error("trace_hash run did not stream")
	}
	resp, gotInline := post(t, ts, fmt.Sprintf(`{"trace_text":%q,"algorithm":"forestall","disks":2,"window":32}`, b64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline run: %d: %s", resp.StatusCode, gotInline)
	}
	if !bytes.Equal(gotHash, gotInline) {
		t.Errorf("hash-named and inline runs differ:\nhash:   %s\ninline: %s", gotHash, gotInline)
	}

	// A run naming an absent hash is a 400 the client can act on.
	resp, got := post(t, ts, fmt.Sprintf(`{"trace_hash":%q,"algorithm":"demand","window":32}`, otherHash))
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("absent-hash run: %d: %s", resp.StatusCode, got)
	}

	// The store shows up in statsz once touched.
	if st := s.Snapshot(); st.TraceStore == nil || st.TraceStore.Entries != 1 {
		t.Errorf("statsz trace store: %+v", s.Snapshot().TraceStore)
	}
}

// heapInuse reads the live-heap gauge the streaming sampler polls.
func heapInuse() int64 {
	sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(sample)
	return int64(sample[0].Value.Uint64())
}

// TestStreamingRunMemoryCeiling is the memory regression the streaming
// path exists for: a multi-million-reference generator cell must not
// materialize its reference slice. The run's observed live-heap growth
// over the pre-run baseline must stay far under the materialized
// footprint (refs × sizeof(Ref) alone would be ~3x the ceiling).
func TestStreamingRunMemoryCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates live-heap readings")
	}
	if testing.Short() {
		t.Skip("multi-million-reference simulation")
	}
	s := New(Config{Workers: 1})
	defer s.Close()

	const refs = 3_000_000
	const ceiling = 24 << 20 // materializing would cost >= refs * 16B = 48 MiB
	runtime.GC()
	base := heapInuse()

	body := fmt.Sprintf(`{"trace_spec":{"refs":%d,"blocks":65536},"algorithm":"forestall","disks":2,"window":1024}`, refs)
	_, meta, err := s.RunJSONMeta([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Streamed {
		t.Fatal("generator run did not stream")
	}
	if meta.PeakInuseBytes <= 0 {
		t.Fatal("no heap observation")
	}
	if grew := meta.PeakInuseBytes - base; grew > ceiling {
		t.Errorf("streamed %d-ref run grew the live heap %d bytes (ceiling %d): streaming is materializing",
			refs, grew, ceiling)
	}
	t.Logf("refs/sec %.0f, peak in-use %d bytes (baseline %d)", meta.RefsPerSec, meta.PeakInuseBytes, base)
}
