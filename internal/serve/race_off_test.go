//go:build !race

package serve

// raceEnabled gates heap-footprint assertions; see race_on_test.go.
const raceEnabled = false
