// Package serve exposes the simulator as a concurrent HTTP service: a
// bounded worker pool runs simulations, an LRU result cache with
// singleflight deduplication absorbs repeated and concurrent identical
// requests, and a bounded queue applies backpressure (429 + Retry-After)
// when the pool is saturated. Per-request deadlines cancel the engine
// cooperatively (ppcsim.RunContext), and shutdown drains every accepted
// request before returning.
//
// Endpoints:
//
//	POST /simulate  run (or serve from cache) one simulation; JSON in/out
//	GET  /healthz   liveness and drain state
//	GET  /statsz    queue depth, cache hit rate, latency percentiles
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ppcsim"
	"ppcsim/internal/obs"
)

// Config parameterizes a Server. The zero value selects the defaults
// noted on each field.
type Config struct {
	// Workers is the number of concurrent simulations (default
	// runtime.GOMAXPROCS(0) — the simulator is CPU bound, so more workers
	// than cores only adds contention).
	Workers int
	// QueueDepth bounds the accepted-but-not-started request queue
	// (default 4×Workers). A full queue rejects with 429.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 1024 entries).
	CacheEntries int
	// MaxBodyBytes bounds the request body, which may carry an inline
	// trace (default 8 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-request simulation deadline when the
	// request does not set timeout_ms (default 60s; negative disables).
	DefaultTimeout time.Duration
	// MaxTimeout caps a request-supplied timeout_ms (default: the
	// resolved DefaultTimeout).
	MaxTimeout time.Duration
	// Runner executes one simulation (default ppcsim.RunContext). Tests
	// substitute instrumented runners.
	Runner func(ctx context.Context, opts ppcsim.Options) (ppcsim.Result, error)
}

// Server is the simulation service. Create with New, expose via
// Handler, stop with Close.
type Server struct {
	cfg   Config
	pool  *pool
	cache *resultCache
	group flightGroup
	mux   *http.ServeMux

	traceMu sync.Mutex
	traces  map[string]*ppcsim.Trace

	draining atomic.Bool

	// Service-level counters (see /statsz).
	requests  obs.Counter // POST /simulate bodies decoded
	completed obs.Counter // 200 responses from fresh runs
	failed    obs.Counter // 500 responses
	rejected  obs.Counter // 429 responses (queue full)
	timeouts  obs.Counter // 504 responses (deadline exceeded)
	deduped   obs.Counter // requests that joined another request's run
	cacheHits obs.Counter // served straight from the result cache
	cacheMiss obs.Counter
	runs      obs.Counter // underlying simulations actually executed
	latency   obs.SyncHistogram
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout == 0 {
		cfg.MaxTimeout = cfg.DefaultTimeout
	}
	if cfg.Runner == nil {
		cfg.Runner = ppcsim.RunContext
	}
	s := &Server{
		cfg:    cfg,
		pool:   newPool(cfg.Workers, cfg.QueueDepth),
		cache:  newResultCache(cfg.CacheEntries),
		traces: make(map[string]*ppcsim.Trace),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("/simulate", s.handleSimulate)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the service: intake stops (new submissions get 503), and
// Close blocks until every accepted simulation has finished, so no
// request that got past backpressure is lost. Idempotent.
func (s *Server) Close() {
	s.draining.Store(true)
	s.pool.drain()
}

// errorBody is the JSON error form of every non-200 response.
type errorBody struct {
	Error string `json:"error"`
	// Field names the offending request field for 400s, mirroring
	// ppcsim.ConfigError.
	Field string `json:"field,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody{Error: err.Error()}
	var cfgErr *ppcsim.ConfigError
	if errors.As(err, &cfgErr) {
		body.Field = cfgErr.Field
	}
	writeJSON(w, status, body)
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST required"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	s.requests.Inc()
	req, err := ParseRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := req.Key()
	if cached, ok := s.cache.get(key); ok {
		s.cacheHits.Inc()
		s.writeResult(w, cached, "hit")
		return
	}
	s.cacheMiss.Inc()
	val, err, shared := s.group.do(key, func() ([]byte, error) {
		// Double-check the cache inside the flight: a previous leader may
		// have filled it between our lookup and joining the group.
		if cached, ok := s.cache.get(key); ok {
			return cached, nil
		}
		return s.execute(req, key)
	})
	if shared {
		s.deduped.Inc()
	}
	switch {
	case err == nil:
		s.writeResult(w, val, "miss")
	case errors.Is(err, ErrQueueFull):
		s.rejected.Inc()
		// The queue holds at most QueueDepth simulations ahead of a
		// retry; one second is a sane lower bound for a slot to free.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ppcsim.ErrCanceled):
		s.timeouts.Inc()
		writeError(w, http.StatusGatewayTimeout, err)
	default:
		var cfgErr *ppcsim.ConfigError
		if errors.As(err, &cfgErr) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.failed.Inc()
		writeError(w, http.StatusInternalServerError, err)
	}
}

// writeResult sends a cached or fresh Result JSON body. The bytes are
// written exactly as cached, so every response for a key is
// byte-identical; only the X-Cache header distinguishes hits.
func (s *Server) writeResult(w http.ResponseWriter, body []byte, xcache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", xcache)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// execute resolves the request into options, runs it on the worker pool
// under its deadline, and caches the serialized result. Called at most
// once per in-flight key (the singleflight leader).
func (s *Server) execute(req *Request, key string) ([]byte, error) {
	opts, err := req.Options(s.loadTrace)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if timeout := s.timeoutFor(req); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var (
		res    ppcsim.Result
		runErr error
		done   = make(chan struct{})
	)
	start := time.Now()
	job := func() {
		defer close(done)
		defer func() {
			// A panicking simulation must not take a worker (and with it
			// the whole drain protocol) down; surface it as a 500.
			if p := recover(); p != nil {
				runErr = fmt.Errorf("serve: simulation panic: %v", p)
			}
		}()
		if err := ctx.Err(); err != nil {
			// The deadline expired while the job sat in the queue.
			runErr = fmt.Errorf("%w before starting: %w", ppcsim.ErrCanceled, err)
			return
		}
		s.runs.Inc()
		res, runErr = s.cfg.Runner(ctx, opts)
	}
	if err := s.pool.submit(job); err != nil {
		return nil, err
	}
	<-done
	s.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if runErr != nil {
		return nil, runErr
	}
	body, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	s.cache.put(key, body)
	s.completed.Inc()
	return body, nil
}

// timeoutFor resolves a request's simulation deadline: the request's
// timeout_ms clamped to MaxTimeout, or DefaultTimeout when unset.
// Non-positive resolved values disable the deadline.
func (s *Server) timeoutFor(req *Request) time.Duration {
	if req.TimeoutMs > 0 {
		t := time.Duration(req.TimeoutMs * float64(time.Millisecond))
		if t > s.cfg.MaxTimeout {
			t = s.cfg.MaxTimeout
		}
		return t
	}
	return s.cfg.DefaultTimeout
}

// loadTrace returns a bundled trace, generating it once and caching it
// for the server's lifetime (the generators are deterministic, and
// nothing downstream mutates a loaded trace).
func (s *Server) loadTrace(name string) (*ppcsim.Trace, error) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if tr, ok := s.traces[name]; ok {
		return tr, nil
	}
	tr, err := ppcsim.NewTrace(name)
	if err != nil {
		return nil, err
	}
	s.traces[name] = tr
	return tr, nil
}

// Stats is the /statsz response.
type Stats struct {
	Draining      bool `json:"draining"`
	Workers       int  `json:"workers"`
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`

	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Timeouts  int64 `json:"timeouts"`
	Deduped   int64 `json:"deduped"`

	CacheEntries  int     `json:"cache_entries"`
	CacheCapacity int     `json:"cache_capacity"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`

	Simulations int64 `json:"simulations"`

	LatencyCount  int64   `json:"latency_count"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP95Ms  float64 `json:"latency_p95_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
}

// Snapshot collects the current service statistics.
func (s *Server) Snapshot() Stats {
	st := Stats{
		Draining:      s.draining.Load(),
		Workers:       s.cfg.Workers,
		QueueDepth:    s.pool.depth(),
		QueueCapacity: s.cfg.QueueDepth,
		Requests:      s.requests.Load(),
		Completed:     s.completed.Load(),
		Failed:        s.failed.Load(),
		Rejected:      s.rejected.Load(),
		Timeouts:      s.timeouts.Load(),
		Deduped:       s.deduped.Load(),
		CacheEntries:  s.cache.len(),
		CacheCapacity: s.cfg.CacheEntries,
		CacheHits:     s.cacheHits.Load(),
		CacheMisses:   s.cacheMiss.Load(),
		Simulations:   s.runs.Load(),
		LatencyCount:  s.latency.Count(),
		LatencyMeanMs: s.latency.MeanMs(),
		LatencyP50Ms:  s.latency.Quantile(0.50),
		LatencyP95Ms:  s.latency.Quantile(0.95),
		LatencyP99Ms:  s.latency.Quantile(0.99),
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(lookups)
	}
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
