// Package serve exposes the simulator as a concurrent HTTP service: a
// bounded worker pool runs simulations, an LRU result cache with
// singleflight deduplication absorbs repeated and concurrent identical
// requests, and a bounded queue applies backpressure (429 + Retry-After)
// when the pool is saturated. Per-request deadlines cancel the engine
// cooperatively (ppcsim.RunContext), and shutdown drains every accepted
// request before returning.
//
// A Server is also the worker role of a sweep cluster: the coordinator
// (ppcsim/internal/serve/coord) routes sweep cells to a fleet of these
// servers over the same /v1/run contract, either via HTTP or embedded
// in process through RunJSON.
//
// v1 endpoints (see docs/api-v1.md):
//
//	POST /v1/run      run (or serve from cache) one simulation; JSON in/out
//	GET  /v1/healthz  liveness and drain state
//	GET  /v1/statsz   queue depth, cache hit rate, latency percentiles
//
// The pre-v1 paths remain as deprecation shims for one release:
// POST /simulate answers 308 Permanent Redirect to /v1/run, and the
// unversioned GET /healthz and /statsz alias their v1 handlers with a
// Deprecation header.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppcsim"
	"ppcsim/internal/obs"
	"ppcsim/internal/serve/tracestore"
)

// Config parameterizes a Server. The zero value selects the defaults
// noted on each field.
type Config struct {
	// Workers is the number of concurrent simulations (default
	// runtime.GOMAXPROCS(0) — the simulator is CPU bound, so more workers
	// than cores only adds contention).
	Workers int
	// QueueDepth bounds the accepted-but-not-started request queue
	// (default 4×Workers). A full queue rejects with 429.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 1024 entries).
	CacheEntries int
	// MaxBodyBytes bounds the request body, which may carry an inline
	// trace (default 8 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-request simulation deadline when the
	// request does not set timeout_ms (default 60s; negative disables).
	DefaultTimeout time.Duration
	// MaxTimeout caps a request-supplied timeout_ms (default: the
	// resolved DefaultTimeout).
	MaxTimeout time.Duration
	// Runner executes one simulation (default ppcsim.RunContext). Tests
	// substitute instrumented runners.
	Runner func(ctx context.Context, opts ppcsim.Options) (ppcsim.Result, error)
	// TraceStoreDir is the directory of the content-addressed trace
	// store behind /v1/traces and trace_hash cells. Empty means a fresh
	// temporary directory owned by the server and removed on Close, so a
	// restart with a configured directory re-adopts its blobs while the
	// default leaves nothing behind.
	TraceStoreDir string
	// TraceStoreBytes is the trace store's LRU byte budget (default
	// 1 GiB).
	TraceStoreBytes int64
}

// Server is the simulation service. Create with New, expose via
// Handler, stop with Close.
type Server struct {
	cfg   Config
	pool  *pool
	cache *resultCache
	group flightGroup
	mux   *http.ServeMux

	traceMu sync.Mutex
	traces  map[string]*ppcsim.Trace //ppcvet:guardedby traceMu

	// The trace store is created on first use — most servers never see a
	// trace_hash cell and should not pay for a directory.
	storeMu sync.Mutex
	//ppcvet:guardedby storeMu
	store *tracestore.Store
	//ppcvet:guardedby storeMu
	storeDir string // set only when the server owns (and removes) the dir
	//ppcvet:guardedby storeMu
	storeErr error

	draining atomic.Bool

	// Service-level counters (see /v1/statsz).
	requests  obs.Counter // /v1/run bodies decoded
	completed obs.Counter // successful fresh runs
	failed    obs.Counter // internal failures
	rejected  obs.Counter // queue-full rejections (429)
	timeouts  obs.Counter // deadline expirations (504)
	deduped   obs.Counter // requests that joined another request's run
	cacheHits obs.Counter // served straight from the result cache
	cacheMiss obs.Counter
	runs      obs.Counter // underlying simulations actually executed
	streamed  obs.Counter // runs that went through Options.Source
	// Streaming gauges: the high-water live-heap mark across streamed
	// runs (the number the flat-memory-ceiling claim is checked against)
	// and the most recent streaming throughput, as float64 bits.
	peakInuse      atomic.Int64
	lastRefsPerSec atomic.Uint64
	// Request latency split by cache outcome: lumping the
	// microsecond-scale hits in with computed runs hides pool saturation
	// behind a flood of fast hits, so each series is its own histogram.
	latencyHit  obs.SyncHistogram
	latencyMiss obs.SyncHistogram
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout == 0 {
		cfg.MaxTimeout = cfg.DefaultTimeout
	}
	if cfg.Runner == nil {
		cfg.Runner = ppcsim.RunContext
	}
	s := &Server{
		cfg:    cfg,
		pool:   newPool(cfg.Workers, cfg.QueueDepth),
		cache:  newResultCache(cfg.CacheEntries),
		traces: make(map[string]*ppcsim.Trace),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/traces/", s.handleTraces)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/statsz", s.handleStatsz)
	// Deprecation shims for the pre-v1 surface (one release).
	s.mux.HandleFunc("/simulate", redirectV1("/v1/run"))
	s.mux.HandleFunc("/healthz", deprecated(s.handleHealthz))
	s.mux.HandleFunc("/statsz", deprecated(s.handleStatsz))
	s.mux.HandleFunc("/", handleNotFound)
	return s
}

// redirectV1 returns a shim handler answering 308 Permanent Redirect to
// the v1 path. 308 preserves the method and body, so POST clients that
// follow redirects keep working through the deprecation window.
func redirectV1(target string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", target))
		http.Redirect(w, r, target, http.StatusPermanentRedirect)
	}
}

// deprecated aliases a v1 GET handler under its unversioned path,
// flagging the response so clients can migrate before the shim is
// removed.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		h(w, r)
	}
}

func handleNotFound(w http.ResponseWriter, r *http.Request) {
	WriteError(w, http.StatusNotFound, fmt.Errorf("serve: no such endpoint %s", r.URL.Path))
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the service: intake stops (new submissions get 503), and
// Close blocks until every accepted simulation has finished, so no
// request that got past backpressure is lost. Idempotent.
func (s *Server) Close() {
	s.draining.Store(true)
	s.pool.drain()
	// Every accepted run has finished, so no store blob is pinned; a
	// server-owned temporary store directory can go with the server.
	s.storeMu.Lock()
	if s.storeDir != "" {
		os.RemoveAll(s.storeDir)
		s.storeDir = ""
		s.store = nil
		s.storeErr = ErrClosed
	}
	s.storeMu.Unlock()
}

// TraceStore returns the server's content-addressed trace store,
// creating it (and, absent Config.TraceStoreDir, its temporary
// directory) on first use.
func (s *Server) TraceStore() (*tracestore.Store, error) {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if s.store != nil || s.storeErr != nil {
		return s.store, s.storeErr
	}
	dir := s.cfg.TraceStoreDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ppc-tracestore-*")
		if err != nil {
			s.storeErr = err
			return nil, err
		}
		s.storeDir, dir = tmp, tmp
	}
	st, err := tracestore.New(tracestore.Config{Dir: dir, MaxBytes: s.cfg.TraceStoreBytes})
	if err != nil {
		if s.storeDir != "" {
			os.RemoveAll(s.storeDir)
			s.storeDir = ""
		}
		s.storeErr = err
		return nil, err
	}
	s.store = st
	return st, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		WriteError(w, http.StatusMethodNotAllowed, errors.New("serve: POST required"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			WriteError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			WriteError(w, http.StatusBadRequest, err)
		}
		return
	}
	val, meta, err := s.RunJSONMeta(body)
	if err != nil {
		status := StatusForError(err)
		if status == http.StatusTooManyRequests {
			// The queue holds at most QueueDepth simulations ahead of a
			// retry; one second is a sane lower bound for a slot to free.
			w.Header().Set("Retry-After", "1")
		}
		WriteError(w, status, err)
		return
	}
	xcache := "miss"
	if meta.CacheHit {
		xcache = "hit"
	}
	if meta.Streamed {
		// Wall-clock observations ride as headers, never in the body:
		// response bytes for a key stay identical across runs and workers.
		w.Header().Set("X-Streamed", "1")
		w.Header().Set("X-Refs-Per-Sec", strconv.FormatFloat(meta.RefsPerSec, 'f', 1, 64))
		w.Header().Set("X-Peak-Inuse-Bytes", strconv.FormatInt(meta.PeakInuseBytes, 10))
	}
	s.writeResult(w, val, xcache)
}

// handleTraces serves the trace-store endpoints:
//
//	PUT  /v1/traces/<hash>  upload a columnar trace (verified, idempotent)
//	HEAD /v1/traces/<hash>  existence probe (204 / 404)
//	GET  /v1/traces/<hash>  download the raw blob
//
// PUT bodies stream straight into the store, so uploads are bounded by
// the store's byte budget rather than MaxBodyBytes.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	hash := strings.TrimPrefix(r.URL.Path, "/v1/traces/")
	if hash == "" || strings.Contains(hash, "/") {
		WriteError(w, http.StatusNotFound, fmt.Errorf("serve: no such endpoint %s", r.URL.Path))
		return
	}
	if !tracestore.ValidHash(hash) {
		WriteError(w, http.StatusBadRequest, &ppcsim.ConfigError{Field: "TraceHash",
			Reason: fmt.Sprintf("%q is not a trace hash (want 64 lowercase hex digits)", hash)})
		return
	}
	switch r.Method {
	case http.MethodPut:
		if s.draining.Load() {
			WriteError(w, http.StatusServiceUnavailable, ErrClosed)
			return
		}
		st, err := s.TraceStore()
		if err != nil {
			WriteError(w, http.StatusInternalServerError, err)
			return
		}
		created, err := st.Put(hash, r.Body)
		if err != nil {
			var mismatch *tracestore.MismatchError
			var tooLarge *tracestore.TooLargeError
			switch {
			case errors.As(err, &mismatch):
				WriteError(w, http.StatusBadRequest, &ppcsim.ConfigError{Field: "TraceHash", Reason: mismatch.Error()})
			case errors.As(err, &tooLarge):
				WriteError(w, http.StatusRequestEntityTooLarge, err)
			default:
				WriteError(w, http.StatusInternalServerError, err)
			}
			return
		}
		status := http.StatusOK
		if created {
			status = http.StatusCreated
		}
		writeJSON(w, status, map[string]any{"hash": hash, "created": created})
	case http.MethodHead:
		st, err := s.TraceStore()
		if err != nil {
			WriteError(w, http.StatusInternalServerError, err)
			return
		}
		if !st.Has(hash) {
			// net/http drops the body for HEAD; the status is the answer.
			WriteError(w, http.StatusNotFound, fmt.Errorf("serve: trace %s not in store", hash))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		st, err := s.TraceStore()
		if err != nil {
			WriteError(w, http.StatusInternalServerError, err)
			return
		}
		h, err := st.Open(hash)
		if err != nil {
			if errors.Is(err, tracestore.ErrNotFound) {
				WriteError(w, http.StatusNotFound, err)
			} else {
				WriteError(w, http.StatusInternalServerError, err)
			}
			return
		}
		defer h.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(h.Bytes(), 10))
		w.WriteHeader(http.StatusOK)
		io.Copy(w, h)
	default:
		w.Header().Set("Allow", "PUT, HEAD, GET")
		WriteError(w, http.StatusMethodNotAllowed, errors.New("serve: PUT, HEAD, or GET required"))
	}
}

// RunJSON is the transport-independent worker entry point: it decodes
// one /v1/run body, serves it from the result cache or runs it on the
// worker pool (deduplicating concurrent identical requests), and
// returns the exact response bytes plus whether the cache answered.
// The HTTP handler and the coordinator's embedded single-process mode
// both call it, so a simulation behaves identically however it
// arrives. Errors map to HTTP statuses via StatusForError.
func (s *Server) RunJSON(body []byte) (val []byte, cacheHit bool, err error) {
	val, meta, err := s.RunJSONMeta(body)
	return val, meta.CacheHit, err
}

// RunMeta is the per-run transport metadata RunJSONMeta reports
// alongside the response bytes. It deliberately never enters the result
// cache or the response body — wall-clock observations differ between
// runs of the same key, and bodies must not. Deduplicated followers see
// zero streaming metrics (only the singleflight leader observes the
// run).
type RunMeta struct {
	// CacheHit reports the result came from the cache (or a concurrent
	// leader) rather than a fresh simulation.
	CacheHit bool
	// Streamed reports the run went through Options.Source under the
	// sliding-window engine, never materializing the trace.
	Streamed bool
	// RefsPerSec is the streamed run's throughput.
	RefsPerSec float64
	// PeakInuseBytes is the live-heap high-water mark sampled during the
	// streamed run.
	PeakInuseBytes int64
}

// RunJSONMeta is RunJSON plus the run's transport metadata.
func (s *Server) RunJSONMeta(body []byte) (val []byte, meta RunMeta, err error) {
	s.requests.Inc()
	req, err := ParseRequest(body)
	if err != nil {
		return nil, meta, err
	}
	start := time.Now()
	key := req.Key()
	if cached, ok := s.cache.get(key); ok {
		s.cacheHits.Inc()
		s.latencyHit.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		meta.CacheHit = true
		return cached, meta, nil
	}
	s.cacheMiss.Inc()
	val, err, shared := s.group.do(key, func() ([]byte, error) {
		// Double-check the cache inside the flight: a previous leader may
		// have filled it between our lookup and joining the group.
		if cached, ok := s.cache.get(key); ok {
			meta.CacheHit = true
			return cached, nil
		}
		b, m, err := s.execute(req, key)
		if err == nil {
			meta = m
		}
		return b, err
	})
	if shared {
		s.deduped.Inc()
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.rejected.Inc()
		case errors.Is(err, ppcsim.ErrCanceled):
			s.timeouts.Inc()
		case errors.Is(err, ErrClosed):
		default:
			var cfgErr *ppcsim.ConfigError
			if !errors.As(err, &cfgErr) {
				s.failed.Inc()
			}
		}
		return nil, RunMeta{}, err
	}
	// Only completed work lands in the miss series: fast failures (429,
	// 400) would otherwise drag the computed-run distribution down.
	s.latencyMiss.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	return val, meta, nil
}

// writeResult sends a cached or fresh Result JSON body. The bytes are
// written exactly as cached, so every response for a key is
// byte-identical; only the X-Cache header distinguishes hits.
func (s *Server) writeResult(w http.ResponseWriter, body []byte, xcache string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", xcache)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// execute resolves the request into options, runs it on the worker pool
// under its deadline, and caches the serialized result. Called at most
// once per in-flight key (the singleflight leader).
func (s *Server) execute(req *Request, key string) ([]byte, RunMeta, error) {
	opts, cleanup, err := req.BuildOptions(SourceEnv{
		LoadTrace: s.loadTrace,
		OpenHash: func(hash string) (io.ReadSeekCloser, error) {
			st, err := s.TraceStore()
			if err != nil {
				return nil, err
			}
			return st.Open(hash)
		},
	})
	if err != nil {
		return nil, RunMeta{}, err
	}
	defer cleanup()
	ctx := context.Background()
	if timeout := s.timeoutFor(req); timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var (
		res    ppcsim.Result
		runErr error
		meta   RunMeta
		done   = make(chan struct{})
	)
	job := func() {
		defer close(done)
		defer func() {
			// A panicking simulation must not take a worker (and with it
			// the whole drain protocol) down; surface it as a 500.
			if p := recover(); p != nil {
				runErr = fmt.Errorf("serve: simulation panic: %v", p)
			}
		}()
		if err := ctx.Err(); err != nil {
			// The deadline expired while the job sat in the queue.
			runErr = fmt.Errorf("%w before starting: %w", ppcsim.ErrCanceled, err)
			return
		}
		s.runs.Inc()
		if opts.Source == nil {
			res, runErr = s.cfg.Runner(ctx, opts)
			return
		}
		// Streaming run: sample the live heap while it executes and time
		// it, so the flat-memory-ceiling and throughput claims are
		// observable per run.
		peakC := sampleHeapPeak()
		runStart := time.Now()
		res, runErr = s.cfg.Runner(ctx, opts)
		elapsed := time.Since(runStart)
		meta.Streamed = true
		meta.PeakInuseBytes = peakC()
		if elapsed > 0 {
			meta.RefsPerSec = float64(opts.Source.Meta().Refs) / elapsed.Seconds()
		}
	}
	if err := s.pool.submit(job); err != nil {
		return nil, RunMeta{}, err
	}
	<-done
	if runErr != nil {
		return nil, RunMeta{}, runErr
	}
	if meta.Streamed {
		s.streamed.Inc()
		for {
			cur := s.peakInuse.Load()
			if meta.PeakInuseBytes <= cur || s.peakInuse.CompareAndSwap(cur, meta.PeakInuseBytes) {
				break
			}
		}
		s.lastRefsPerSec.Store(math.Float64bits(meta.RefsPerSec))
	}
	body, err := json.Marshal(res)
	if err != nil {
		return nil, RunMeta{}, err
	}
	s.cache.put(key, body)
	s.completed.Inc()
	return body, meta, nil
}

// sampleHeapPeak starts a sampler goroutine polling the runtime's
// live-heap gauge and returns a stop function that ends the sampler,
// waits for it, and reports the peak it saw.
func sampleHeapPeak() func() int64 {
	var peak int64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		sample := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			metrics.Read(sample)
			if v := int64(sample[0].Value.Uint64()); v > peak {
				peak = v
			}
			select {
			case <-stop:
				return
			case <-t.C:
			}
		}
	}()
	return func() int64 {
		close(stop)
		<-sampled
		return peak
	}
}

// timeoutFor resolves a request's simulation deadline: the request's
// timeout_ms clamped to MaxTimeout, or DefaultTimeout when unset.
// Non-positive resolved values disable the deadline.
func (s *Server) timeoutFor(req *Request) time.Duration {
	if req.TimeoutMs > 0 {
		t := time.Duration(req.TimeoutMs * float64(time.Millisecond))
		if t > s.cfg.MaxTimeout {
			t = s.cfg.MaxTimeout
		}
		return t
	}
	return s.cfg.DefaultTimeout
}

// loadTrace returns a bundled trace, generating it once and caching it
// for the server's lifetime (the generators are deterministic, and
// nothing downstream mutates a loaded trace).
func (s *Server) loadTrace(name string) (*ppcsim.Trace, error) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if tr, ok := s.traces[name]; ok {
		return tr, nil
	}
	tr, err := ppcsim.NewTrace(name)
	if err != nil {
		return nil, err
	}
	s.traces[name] = tr
	return tr, nil
}

// LatencySummary is one latency distribution in the /v1/statsz
// response.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// Summarize collects a histogram into the stats wire form; shared with
// the coordinator's stream-lag series.
func Summarize(h *obs.SyncHistogram) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanMs: h.MeanMs(),
		P50Ms:  h.Quantile(0.50),
		P95Ms:  h.Quantile(0.95),
		P99Ms:  h.Quantile(0.99),
	}
}

// Stats is the /v1/statsz response.
type Stats struct {
	Draining      bool `json:"draining"`
	Workers       int  `json:"workers"`
	QueueDepth    int  `json:"queue_depth"`
	QueueCapacity int  `json:"queue_capacity"`

	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Rejected  int64 `json:"rejected"`
	Timeouts  int64 `json:"timeouts"`
	Deduped   int64 `json:"deduped"`

	CacheEntries  int     `json:"cache_entries"`
	CacheCapacity int     `json:"cache_capacity"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`

	Simulations int64 `json:"simulations"`

	// Streaming telemetry: StreamedRuns counts simulations that ran
	// through Options.Source, PeakInuseBytes is the live-heap high-water
	// mark across them, and LastRefsPerSec is the most recent streamed
	// run's throughput. TraceStore appears once the content-addressed
	// store has been touched.
	StreamedRuns   int64             `json:"streamed_runs"`
	PeakInuseBytes int64             `json:"peak_inuse_bytes"`
	LastRefsPerSec float64           `json:"last_refs_per_sec"`
	TraceStore     *tracestore.Stats `json:"trace_store,omitempty"`

	// LatencyHit covers requests answered from the result cache;
	// LatencyMiss covers requests that waited on a computed run (their
	// own or a deduplicated leader's). Separate series keep cache hits
	// from masking pool saturation.
	LatencyHit  LatencySummary `json:"latency_hit"`
	LatencyMiss LatencySummary `json:"latency_miss"`
}

// Snapshot collects the current service statistics.
func (s *Server) Snapshot() Stats {
	st := Stats{
		Draining:       s.draining.Load(),
		Workers:        s.cfg.Workers,
		QueueDepth:     s.pool.depth(),
		QueueCapacity:  s.cfg.QueueDepth,
		Requests:       s.requests.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		Rejected:       s.rejected.Load(),
		Timeouts:       s.timeouts.Load(),
		Deduped:        s.deduped.Load(),
		CacheEntries:   s.cache.len(),
		CacheCapacity:  s.cfg.CacheEntries,
		CacheHits:      s.cacheHits.Load(),
		CacheMisses:    s.cacheMiss.Load(),
		Simulations:    s.runs.Load(),
		StreamedRuns:   s.streamed.Load(),
		PeakInuseBytes: s.peakInuse.Load(),
		LastRefsPerSec: math.Float64frombits(s.lastRefsPerSec.Load()),
		LatencyHit:     Summarize(&s.latencyHit),
		LatencyMiss:    Summarize(&s.latencyMiss),
	}
	if lookups := st.CacheHits + st.CacheMisses; lookups > 0 {
		st.CacheHitRate = float64(st.CacheHits) / float64(lookups)
	}
	s.storeMu.Lock()
	if s.store != nil {
		ts := s.store.Stats()
		st.TraceStore = &ts
	}
	s.storeMu.Unlock()
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		// The 503 here is a health probe's "take me out of rotation",
		// not a v1 API error: load balancers read the status document,
		// not the error envelope.
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"}) //ppcvet:ignore health draining body is a status document for probes, not a v1 API error
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
