// Package cache implements the simulated buffer cache shared by every
// policy: K block-sized buffers, each holding a present block or reserved
// for an in-flight fetch. Eviction follows the model of the paper: the
// victim becomes unavailable at the moment its replacement fetch starts,
// and the incoming block becomes available when the fetch completes.
//
// The cache keeps a lazily-updated max-heap of present blocks keyed by
// their next reference, so the optimal-replacement choice ("evict the
// block whose next reference is furthest in the future") is O(log K).
package cache

import (
	"fmt"

	"ppcsim/internal/future"
	"ppcsim/internal/layout"
)

// NoBlock marks the absence of a block (e.g. a fetch with no eviction).
const NoBlock = layout.BlockID(-1)

// state of one block with respect to the cache.
type state uint8

const (
	absent state = iota
	inFlight
	present
)

// Cache is the simulated buffer cache.
type Cache struct {
	capacity int
	oracle   *future.Oracle
	st       []state
	used     int // present + in-flight buffers

	h evictHeap

	// neverEpoch records, per block, the oracle's consumed-occurrence
	// count at the time of the block's most recent Never-keyed heap push.
	// A Never key carries no position to go stale against, so this epoch
	// stands in: the entry is alive only while no occurrence of the block
	// has been consumed since the push. See FurthestEvictable.
	neverEpoch []int32

	// Partial-knowledge mode (EnableWindow): the replacement rule may use
	// next-use positions only inside the lookahead window
	// [cursor, cursor+window); for present blocks whose next use lies at
	// or beyond that horizon it falls back to least-recently-used order,
	// the TIP2-lineage behavior the window models. lastSeq and the lruHeap
	// track recency by a monotone per-use sequence number; both stay nil
	// in the default full-knowledge mode, which pays one branch per
	// FurthestEvictable call and nothing else.
	windowed bool
	window   int
	seq      int32
	lastSeq  []int32
	lru      lruHeap

	// OnEvict, if set, is invoked whenever a present block leaves the
	// cache — replaced by a fetch (replacement is the incoming block) or
	// dropped (replacement is NoBlock) — with the victim's next-use
	// position from the oracle (future.Never if it is never referenced
	// again). The engine uses it to emit eviction observability events.
	OnEvict func(victim, replacement layout.BlockID, nextUse int)

	// Statistics.
	hits, misses int64
}

// New creates a cache of capacity blocks over the given oracle's block ID
// space (one state slot per possible block).
func New(capacity, nBlocks int, o *future.Oracle) (*Cache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: capacity must be positive, got %d", capacity)
	}
	return &Cache{
		capacity:   capacity,
		oracle:     o,
		st:         make([]state, nBlocks),
		neverEpoch: make([]int32, nBlocks),
	}, nil
}

// Capacity returns the number of buffers.
func (c *Cache) Capacity() int { return c.capacity }

// Used returns the number of buffers holding a block or reserved for one.
func (c *Cache) Used() int { return c.used }

// FreeBuffers returns how many buffers are unreserved.
func (c *Cache) FreeBuffers() int { return c.capacity - c.used }

// Present reports whether b can be referenced without stalling.
func (c *Cache) Present(b layout.BlockID) bool { return c.st[b] == present }

// InFlight reports whether a fetch of b has started but not completed.
func (c *Cache) InFlight(b layout.BlockID) bool { return c.st[b] == inFlight }

// Absent reports whether b is neither present nor in flight.
func (c *Cache) Absent(b layout.BlockID) bool { return c.st[b] == absent }

// Hits and Misses count Reference outcomes.
func (c *Cache) Hits() int64   { return c.hits }
func (c *Cache) Misses() int64 { return c.misses }

// EnableWindow switches the cache into partial-knowledge mode with a
// lookahead of w references (w >= 0; 0 means no future visibility, so
// replacement is pure LRU). Must be called before any block enters the
// cache. An unlimited window is the default mode; callers model it by
// not enabling a window at all.
func (c *Cache) EnableWindow(w int) {
	if w < 0 {
		w = 0
	}
	c.windowed = true
	c.window = w
	c.lastSeq = make([]int32, len(c.st))
}

// Windowed reports whether EnableWindow was called.
func (c *Cache) Windowed() bool { return c.windowed }

// noteUse records a recency event for block b (fetch completion or the
// cursor passing a reference to it) in windowed mode.
func (c *Cache) noteUse(b layout.BlockID) {
	if !c.windowed {
		return
	}
	c.seq++
	c.lastSeq[b] = c.seq
	c.lru.push(lruEntry{block: b, seq: c.seq})
	if len(c.lru) > c.heapLimit() {
		c.compactLRUHeap()
	}
}

// compactLRUHeap rebuilds the recency heap keeping only each present
// block's newest entry (the only ones leastRecentBeyond can return).
// Sequence numbers are unique, so the pop order of the survivors — and
// therefore every LRU-fallback victim — is exactly what the
// uncompacted heap would have produced.
func (c *Cache) compactLRUHeap() {
	live := make(lruHeap, 0, 2*c.capacity)
	for _, e := range c.lru {
		if c.st[e.block] == present && e.seq == c.lastSeq[e.block] {
			live.push(e)
		}
	}
	c.lru = live
}

// MarkAlwaysPresent pins block b as permanently present without
// occupying a buffer or becoming an eviction candidate. The engine uses
// it for the phantom block that stands in for undisclosed hints.
func (c *Cache) MarkAlwaysPresent(b layout.BlockID) {
	c.st[b] = present
}

// Reference records the process referencing block b without a stall; it
// must be present.
func (c *Cache) Reference(b layout.BlockID) {
	if c.st[b] != present {
		panic(fmt.Sprintf("cache: referenced block %d not present", b))
	}
	c.hits++
}

// ReferenceMissed records the process referencing block b after a stall
// (the miss was already counted when the stall began); b must be present.
func (c *Cache) ReferenceMissed(b layout.BlockID) {
	if c.st[b] != present {
		panic(fmt.Sprintf("cache: referenced block %d not present", b))
	}
}

// Miss records that the process had to wait for b.
func (c *Cache) Miss() { c.misses++ }

// StartFetch reserves a buffer for block b, evicting victim if it is not
// NoBlock. The victim becomes unavailable immediately. Returns an error
// if the transition is illegal (b not absent, victim not present, or no
// free buffer when no victim given).
func (c *Cache) StartFetch(b, victim layout.BlockID) error {
	if c.st[b] != absent {
		return fmt.Errorf("cache: fetch of block %d in state %d", b, c.st[b])
	}
	if victim == NoBlock {
		if c.used >= c.capacity {
			return fmt.Errorf("cache: fetch of %d without victim but cache full", b)
		}
		c.used++
	} else {
		if c.st[victim] != present {
			return fmt.Errorf("cache: victim %d not present", victim)
		}
		c.st[victim] = absent
		// The heap entry for victim becomes stale and is discarded lazily.
		if c.OnEvict != nil {
			c.OnEvict(victim, b, c.oracle.NextUse(victim))
		}
	}
	c.st[b] = inFlight
	return nil
}

// CompleteFetch makes block b available; its fetch must be in flight.
func (c *Cache) CompleteFetch(b layout.BlockID) {
	if c.st[b] != inFlight {
		panic(fmt.Sprintf("cache: completing fetch of block %d in state %d", b, c.st[b]))
	}
	c.st[b] = present
	c.pushEvict(b)
	c.noteUse(b)
}

// Drop evicts a present block without starting a fetch (frees its buffer).
// Used only by tests and diagnostics; the paper's policies always evict to
// make room for a fetch.
func (c *Cache) Drop(b layout.BlockID) error {
	if c.st[b] != present {
		return fmt.Errorf("cache: dropping block %d not present", b)
	}
	c.st[b] = absent
	c.used--
	if c.OnEvict != nil {
		c.OnEvict(b, NoBlock, c.oracle.NextUse(b))
	}
	return nil
}

// Touched must be called whenever the oracle cursor passes a reference to
// block b, so the eviction heap learns b's new next-use position.
func (c *Cache) Touched(b layout.BlockID) {
	if c.st[b] == present {
		c.pushEvict(b)
		c.noteUse(b)
	}
}

// pushEvict records a fresh eviction-heap entry for present block b keyed
// by its current next use, stamping the block's consumed-occurrence epoch
// when the key is Never.
func (c *Cache) pushEvict(b layout.BlockID) {
	u := c.oracle.NextUse(b)
	if u == future.Never {
		c.neverEpoch[b] = int32(c.oracle.Consumed(b))
	}
	c.h.push(entry{block: b, nextUse: int32(u)})
	if c.windowed && len(c.h) > c.heapLimit() {
		c.compactEvictHeap()
	}
}

// heapLimit is the lazy-deletion debt ceiling for the windowed-mode
// heaps. Lazy deletion only reclaims entries that surface at the top;
// entries whose keys sink never do, so an N-reference streamed run
// would otherwise hold O(N) dead entries — the one structure that would
// grow a bounded-window run without bound. Live entries number O(cache
// capacity), so compacting at a capacity multiple keeps memory
// independent of trace length while amortizing the rebuild to O(1) per
// push.
func (c *Cache) heapLimit() int { return 8*c.capacity + 1024 }

// compactEvictHeap rebuilds the eviction heap with exactly one entry
// per present block, keyed by what FurthestEvictable's surface-time
// rules would leave it as: fresh entries survive, outdated Never keys
// with a live epoch are re-keyed to the oracle's current finite answer
// (the same re-key the surface loop performs, just eagerly), and
// everything else is deterministically dead — an absent block's entry
// (re-fetching pushes a replacement), a finite key the oracle moved
// past (answers only move forward, so a mismatch never heals), or a
// Never key whose epoch went stale (the consumed count only grows).
//
// Deduplication cannot change a victim: surviving keys agree with the
// oracle, so duplicates for one block carry equal keys, finite keys are
// unique across blocks (two blocks cannot share a next-use position),
// and fresh-Never ties route through the LRU fallback in windowed mode
// — the only mode that compacts — rather than the heap's tie layout.
// Without the dedup a workload whose resident blocks all read Never
// (a loop longer than the window over a cache that fits it) keeps
// every duplicate alive, the rebuild never gets under the limit, and
// compaction degrades to a full scan per push.
func (c *Cache) compactEvictHeap() {
	live := make(evictHeap, 0, 2*c.capacity)
	kept := make(map[layout.BlockID]struct{}, 2*c.capacity)
	for _, e := range c.h {
		if c.st[e.block] != present {
			continue
		}
		if _, dup := kept[e.block]; dup {
			continue
		}
		u := c.oracle.NextUse(e.block)
		epochOK := c.neverEpoch[e.block] == int32(c.oracle.Consumed(e.block))
		switch {
		case int(e.nextUse) == u:
			if u == future.Never && !epochOK {
				// Dead by the surface rule: the disclosure window slid over
				// a use the process never touched (see FurthestEvictable).
				continue
			}
		case int(e.nextUse) == future.Never && u != future.Never && epochOK:
			e.nextUse = int32(u) // the surface-time Never -> finite re-key
		default:
			continue
		}
		kept[e.block] = struct{}{}
		live.push(e)
	}
	c.h = live
}

// FurthestEvictable returns the present block whose next reference is
// furthest in the future, along with that position (future.Never if it is
// never referenced again). It returns NoBlock if nothing is evictable.
// Stale heap entries are discarded as they surface.
//
// In windowed mode the furthest-known rule only applies while every
// present block's next use is inside the lookahead window. As soon as the
// heap's top — the furthest of them all — lies at or beyond the horizon,
// the policy cannot rank the beyond-horizon blocks, so the victim is the
// least recently used among them and the reported position is
// future.Never (all the policy knows is "not needed within the window").
func (c *Cache) FurthestEvictable() (layout.BlockID, int) {
	for len(c.h) > 0 {
		top := c.h[0]
		u := c.oracle.NextUse(top.block)
		fresh := c.st[top.block] == present && int(top.nextUse) == u
		if fresh && u == future.Never &&
			c.neverEpoch[top.block] != int32(c.oracle.Consumed(top.block)) {
			// The key still reads Never but an occurrence of the block was
			// consumed since it was recorded: under a streaming oracle the
			// answer moved Never -> finite -> Never as the disclosure
			// window slid over a use the process never touched, while a
			// materialized oracle's exact key would have died at the first
			// move. Treat the entry as dead so both modes agree.
			// Materialized mode never takes this branch — a Never answer
			// is final there, so the epoch cannot have changed.
			fresh = false
		}
		if !fresh {
			c.h.pop()
			// A live streaming oracle's answer can move from Never to a
			// finite position as the disclosure window slides forward over
			// a block's next use. Re-key such entries (epoch unchanged, so
			// the recorded Never is merely outdated, not dead) instead of
			// dropping them, or the block would vanish from eviction's
			// view even though a materialized oracle (whose answers only
			// ever grow) still sees it. Materialized mode never takes this
			// branch.
			if c.st[top.block] == present && int(top.nextUse) == future.Never && u != future.Never &&
				c.neverEpoch[top.block] == int32(c.oracle.Consumed(top.block)) {
				c.h.push(entry{block: top.block, nextUse: int32(u)})
			}
			continue
		}
		if c.windowed {
			if horizon := c.oracle.Cursor() + c.window; c.oracle.NextUseWithin(top.block, c.window) == future.Never {
				if b, ok := c.leastRecentBeyond(horizon); ok {
					return b, future.Never
				}
			}
		}
		return top.block, int(top.nextUse)
	}
	return NoBlock, -1
}

// leastRecentBeyond pops the least-recently-used present block whose next
// use is at or beyond the horizon. Entries for blocks back inside the
// window are discarded: before such a block can drift beyond the horizon
// again the cursor must pass its next use, which (for an accurate hint)
// re-touches it with a fresh entry. An inaccurate hint can skip that
// touch — the cursor consumes the position without referencing the block —
// in which case the block simply drops out of the LRU fallback and the
// caller's furthest-known rule covers it instead.
func (c *Cache) leastRecentBeyond(horizon int) (layout.BlockID, bool) {
	for len(c.lru) > 0 {
		top := c.lru[0]
		if c.st[top.block] != present || top.seq != c.lastSeq[top.block] {
			c.lru.pop()
			continue
		}
		if u := c.oracle.NextUse(top.block); u != future.Never && u < horizon {
			c.lru.pop()
			continue
		}
		return top.block, true
	}
	return NoBlock, false
}

// lruEntry is one (possibly stale) recency record for the windowed-mode
// fallback.
type lruEntry struct {
	block layout.BlockID
	seq   int32
}

// lruHeap is a min-heap on the use-sequence number, hand-rolled with the
// same hole-moving sifts as evictHeap. Sequence numbers are unique, so
// the order is total and no tie-break subtlety arises.
type lruHeap []lruEntry

// push adds e and restores the heap invariant.
func (h *lruHeap) push(e lruEntry) {
	s := append(*h, e)
	*h = s
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if e.seq >= s[i].seq {
			break
		}
		s[j] = s[i]
		j = i
	}
	s[j] = e
}

// pop removes and returns the top (least recently used) entry.
func (h *lruHeap) pop() lruEntry {
	s := *h
	n := len(s) - 1
	top := s[0]
	v := s[n]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && s[j2].seq < s[j1].seq {
			j = j2
		}
		if s[j].seq >= v.seq {
			break
		}
		s[i] = s[j]
		i = j
	}
	s[i] = v
	*h = s[:n]
	return top
}

// entry is one (possibly stale) eviction candidate.
type entry struct {
	block   layout.BlockID
	nextUse int32
}

// evictHeap is a max-heap on nextUse, hand-rolled so pushes stay on the
// hot path without the interface boxing of container/heap (one heap push
// per served reference adds up to an allocation per reference). The sift
// routines move a hole instead of swapping, but the comparison sequence
// and resulting array layout match container/heap element for element —
// the layout decides which of several equal-key blocks surfaces first,
// so it must not drift from the reference implementation.
type evictHeap []entry

// less orders i before j when i's next use is further in the future.
func (h evictHeap) less(i, j int) bool { return h[i].nextUse > h[j].nextUse }

// push adds e and restores the heap invariant (container/heap.Push).
func (h *evictHeap) push(e entry) {
	s := append(*h, e)
	*h = s
	// Sift up from the new leaf: shift ancestors smaller than e down a
	// level until e's slot (container/heap's up(), with e in a register).
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if e.nextUse <= s[i].nextUse {
			break
		}
		s[j] = s[i]
		j = i
	}
	s[j] = e
}

// pop removes and returns the top entry (container/heap.Pop).
func (h *evictHeap) pop() entry {
	s := *h
	n := len(s) - 1
	top := s[0]
	// container/heap swaps the last leaf to the root and sifts it down
	// over s[:n]; holding that leaf in v and shifting the larger child up
	// each level lands every element in the identical slot.
	v := s[n]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && s[j2].nextUse > s[j1].nextUse {
			j = j2 // = 2*i + 2  // right child
		}
		if s[j].nextUse <= v.nextUse {
			break
		}
		s[i] = s[j]
		i = j
	}
	s[i] = v
	*h = s[:n]
	return top
}
