package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppcsim/internal/future"
	"ppcsim/internal/layout"
)

func mkOracle(ids ...int) *future.Oracle {
	refs := make([]layout.BlockID, len(ids))
	max := 0
	for i, v := range ids {
		refs[i] = layout.BlockID(v)
		if v >= max {
			max = v + 1
		}
	}
	return future.New(refs, max)
}

func TestNewValidation(t *testing.T) {
	o := mkOracle(0)
	if _, err := New(0, 1, o); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := New(-5, 1, o); err == nil {
		t.Error("negative capacity should fail")
	}
	c, err := New(3, 1, o)
	if err != nil || c.Capacity() != 3 {
		t.Fatalf("New: %v", err)
	}
}

func TestFetchLifecycle(t *testing.T) {
	o := mkOracle(0, 1, 2, 0, 1, 2)
	c, _ := New(2, 3, o)
	if !c.Absent(0) || c.Present(0) || c.InFlight(0) {
		t.Fatal("initial state wrong")
	}
	if err := c.StartFetch(0, NoBlock); err != nil {
		t.Fatal(err)
	}
	if !c.InFlight(0) || c.Used() != 1 || c.FreeBuffers() != 1 {
		t.Fatal("in-flight accounting wrong")
	}
	c.CompleteFetch(0)
	if !c.Present(0) || c.Used() != 1 {
		t.Fatal("present accounting wrong")
	}
	if err := c.StartFetch(1, NoBlock); err != nil {
		t.Fatal(err)
	}
	c.CompleteFetch(1)
	// Cache now full: fetch of 2 needs a victim.
	if err := c.StartFetch(2, NoBlock); err == nil {
		t.Fatal("full-cache fetch without victim should fail")
	}
	if err := c.StartFetch(2, 1); err != nil {
		t.Fatal(err)
	}
	if c.Present(1) || !c.Absent(1) {
		t.Fatal("victim must become unavailable at fetch start")
	}
	c.CompleteFetch(2)
	if !c.Present(2) || !c.Present(0) {
		t.Fatal("final contents wrong")
	}
}

func TestIllegalTransitions(t *testing.T) {
	o := mkOracle(0, 1)
	c, _ := New(2, 2, o)
	if err := c.StartFetch(0, 1); err == nil {
		t.Error("eviction of absent victim should fail")
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.StartFetch(0, NoBlock))
	if err := c.StartFetch(0, NoBlock); err == nil {
		t.Error("double fetch should fail")
	}
	c.CompleteFetch(0)
	if err := c.StartFetch(1, 0); err != nil {
		t.Fatal(err)
	}
	// Victim 0 is absent now; completing 1 then evicting 0 again fails.
	c.CompleteFetch(1)
	if err := c.StartFetch(0, 0); err == nil {
		t.Error("evicting an absent block should fail")
	}
}

func TestCompleteFetchPanicsWhenNotInFlight(t *testing.T) {
	o := mkOracle(0)
	c, _ := New(1, 1, o)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.CompleteFetch(0)
}

func TestReferencePanicsWhenAbsent(t *testing.T) {
	o := mkOracle(0)
	c, _ := New(1, 1, o)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Reference(0)
}

func TestFurthestEvictable(t *testing.T) {
	// Sequence: 0 1 2 0 1 2 ... next uses at positions 0,1,2.
	o := mkOracle(0, 1, 2, 0, 1, 2)
	c, _ := New(3, 3, o)
	for b := 0; b < 3; b++ {
		if err := c.StartFetch(layout.BlockID(b), NoBlock); err != nil {
			t.Fatal(err)
		}
		c.CompleteFetch(layout.BlockID(b))
	}
	if v, use := c.FurthestEvictable(); v != 2 || use != 2 {
		t.Fatalf("furthest = %d@%d, want 2@2", v, use)
	}
	// Consume position 0 (block 0): its next use moves to 3, making it
	// the furthest.
	c.Reference(0)
	o.Advance(1)
	c.Touched(0)
	if v, use := c.FurthestEvictable(); v != 0 || use != 3 {
		t.Fatalf("furthest = %d@%d, want 0@3", v, use)
	}
	// In-flight blocks are not evictable: evict 0 for a refetch of... use
	// Drop to empty and check NoBlock.
	for b := 0; b < 3; b++ {
		if err := c.Drop(layout.BlockID(b)); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := c.FurthestEvictable(); v != NoBlock {
		t.Fatalf("empty cache furthest = %d, want NoBlock", v)
	}
}

func TestDropErrors(t *testing.T) {
	o := mkOracle(0)
	c, _ := New(1, 1, o)
	if err := c.Drop(0); err == nil {
		t.Error("dropping absent block should fail")
	}
}

func TestHitMissCounters(t *testing.T) {
	o := mkOracle(0, 0, 1)
	c, _ := New(2, 2, o)
	c.Miss()
	if err := c.StartFetch(0, NoBlock); err != nil {
		t.Fatal(err)
	}
	c.CompleteFetch(0)
	c.Reference(0)
	c.Reference(0)
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

// TestCacheInvariantsRandomOps drives the cache with random legal
// operations and checks the capacity invariant and furthest-evictable
// correctness against a naive scan at every step.
func TestCacheInvariantsRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nBlocks = 12
		n := 400
		refs := make([]layout.BlockID, n)
		for i := range refs {
			refs[i] = layout.BlockID(rng.Intn(nBlocks))
		}
		o := future.New(refs, nBlocks)
		capacity := 2 + rng.Intn(5)
		c, _ := New(capacity, nBlocks, o)
		var flying []layout.BlockID
		cursor := 0
		for step := 0; step < 300; step++ {
			switch rng.Intn(4) {
			case 0: // start a fetch of a random absent block
				b := layout.BlockID(rng.Intn(nBlocks))
				if !c.Absent(b) {
					continue
				}
				victim := NoBlock
				if c.FreeBuffers() == 0 {
					victim, _ = c.FurthestEvictable()
					if victim == NoBlock {
						continue
					}
				}
				if err := c.StartFetch(b, victim); err != nil {
					t.Logf("StartFetch: %v", err)
					return false
				}
				flying = append(flying, b)
			case 1: // complete a random in-flight fetch
				if len(flying) == 0 {
					continue
				}
				i := rng.Intn(len(flying))
				b := flying[i]
				flying = append(flying[:i], flying[i+1:]...)
				c.CompleteFetch(b)
			case 2: // advance the cursor
				if cursor >= n {
					continue
				}
				b := refs[cursor]
				cursor++
				o.Advance(cursor)
				c.Touched(b)
			case 3: // verify furthest-evictable against a naive scan
				want, wantUse := NoBlock, -1
				for blk := 0; blk < nBlocks; blk++ {
					b := layout.BlockID(blk)
					if !c.Present(b) {
						continue
					}
					u := o.NextUse(b)
					if u > wantUse {
						want, wantUse = b, u
					}
				}
				got, gotUse := c.FurthestEvictable()
				if want == NoBlock {
					if got != NoBlock {
						return false
					}
					continue
				}
				// Ties on next-use position are impossible for distinct
				// blocks except at Never; accept any Never block.
				if gotUse != wantUse {
					t.Logf("furthest use %d, want %d", gotUse, wantUse)
					return false
				}
				if wantUse != future.Never && got != want {
					t.Logf("furthest block %d, want %d", got, want)
					return false
				}
			}
			if c.Used() > c.Capacity() {
				t.Logf("capacity exceeded: %d > %d", c.Used(), c.Capacity())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
