package cache

import (
	"testing"

	"ppcsim/internal/future"
	"ppcsim/internal/layout"
)

// prime fetches and completes each block in order, so the recency order
// is exactly the argument order (earliest = least recent).
func prime(t *testing.T, c *Cache, ids ...int) {
	t.Helper()
	for _, b := range ids {
		if err := c.StartFetch(layout.BlockID(b), NoBlock); err != nil {
			t.Fatal(err)
		}
		c.CompleteFetch(layout.BlockID(b))
	}
}

// TestWindowedEvictionFallsBackToLRU: when the eviction heap's top lies
// at or beyond the lookahead horizon, the windowed cache stops trusting
// the furthest-known rule and victimizes the least recently used of the
// beyond-horizon blocks, reporting future.Never for its next use.
func TestWindowedEvictionFallsBackToLRU(t *testing.T) {
	// Next uses: block 0 at position 0, block 2 at 1, block 3 at 2.
	o := mkOracle(0, 2, 3)
	c, _ := New(3, 4, o)
	c.EnableWindow(1)
	if !c.Windowed() {
		t.Fatal("EnableWindow did not stick")
	}
	prime(t, c, 2, 3, 0) // recency order: 2 oldest, then 3, then 0

	// Horizon is cursor+1 = 1: only block 0 is in the window. The
	// unwindowed rule would pick block 3 (furthest, next use 2); the
	// windowed rule must pick block 2 — the least recently used of the
	// beyond-horizon blocks {2, 3}.
	b, u := c.FurthestEvictable()
	if b != 2 || u != future.Never {
		t.Fatalf("FurthestEvictable = (%d, %d), want (2, Never)", b, u)
	}

	// Advancing to position 1 pulls block 2 inside the horizon (next use
	// 1 < cursor 1 + window 1 = 2); its stale LRU entry must be skipped
	// and block 3 becomes the fallback victim.
	o.Advance(1)
	c.Touched(0)
	b, u = c.FurthestEvictable()
	if b != 3 || u != future.Never {
		t.Fatalf("after advance, FurthestEvictable = (%d, %d), want (3, Never)", b, u)
	}
}

// TestWindowedEvictionMatchesUnwindowedInsideWindow: while every present
// block's next use is inside the window the furthest-known rule applies
// unchanged, so a window covering the whole future reproduces the
// unwindowed cache exactly.
func TestWindowedEvictionMatchesUnwindowedInsideWindow(t *testing.T) {
	mk := func(window int) *Cache {
		c, _ := New(3, 4, mkOracle(0, 2, 3))
		if window != 0 {
			c.EnableWindow(window)
		}
		prime(t, c, 2, 3, 0)
		return c
	}
	plain := mk(0)
	wide := mk(10)
	pb, pu := plain.FurthestEvictable()
	wb, wu := wide.FurthestEvictable()
	if pb != wb || pu != wu {
		t.Fatalf("wide window diverged: (%d, %d) vs (%d, %d)", wb, wu, pb, pu)
	}
	if pb != 3 || pu != 2 {
		t.Fatalf("furthest-known rule picked (%d, %d), want (3, 2)", pb, pu)
	}
}

// TestWindowedLRURefreshOnTouch: referencing a block refreshes its
// recency, protecting it from the LRU fallback.
func TestWindowedLRURefreshOnTouch(t *testing.T) {
	// Blocks 1 and 2 are never referenced again; block 0 at position 0.
	o := future.New([]layout.BlockID{0}, 3)
	c, _ := New(3, 3, o)
	c.EnableWindow(1)
	prime(t, c, 1, 2, 0)
	// Touch block 1 (present, next use Never): it moves to most recent.
	c.Touched(1)
	b, u := c.FurthestEvictable()
	if b != 2 || u != future.Never {
		t.Fatalf("FurthestEvictable = (%d, %d), want (2, Never) after touching 1", b, u)
	}
}

// TestWindowNoneEvictsPureLRU: EnableWindow clamps negative windows to
// zero lookahead — nothing is ever within the window, so eviction is
// pure LRU over the present blocks.
func TestWindowNoneEvictsPureLRU(t *testing.T) {
	o := mkOracle(0, 1, 2, 0, 1, 2)
	c, _ := New(3, 3, o)
	c.EnableWindow(-1)
	prime(t, c, 1, 0, 2)
	b, u := c.FurthestEvictable()
	if b != 1 || u != future.Never {
		t.Fatalf("FurthestEvictable = (%d, %d), want (1, Never): LRU ignores next uses", b, u)
	}
}
