package cache

import (
	"math/rand"
	"testing"

	"ppcsim/internal/future"
	"ppcsim/internal/layout"
)

// naiveFurthest scans every block linearly for the present block whose
// next reference is furthest in the future — the reference implementation
// of the lazy-heap FurthestEvictable.
func naiveFurthest(c *Cache, o *future.Oracle, nBlocks int) (layout.BlockID, int) {
	best, bestUse := NoBlock, -1
	for b := 0; b < nBlocks; b++ {
		id := layout.BlockID(b)
		if !c.Present(id) {
			continue
		}
		if u := o.NextUse(id); u > bestUse {
			best, bestUse = id, u
		}
	}
	if best == NoBlock {
		return NoBlock, -1
	}
	return best, bestUse
}

// TestFurthestEvictableMatchesNaiveScan runs random fetch/evict/advance
// schedules and checks the heap's eviction choice against the linear
// scan after every step. Distinct blocks can only tie at Never (each
// position references one block), so comparing the next-use value — and
// the block itself when the value is finite — is exact.
func TestFurthestEvictableMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		nBlocks := 2 + rng.Intn(20)
		n := 20 + rng.Intn(300)
		refs := make([]layout.BlockID, n)
		for i := range refs {
			refs[i] = layout.BlockID(rng.Intn(nBlocks))
		}
		o := future.New(refs, nBlocks)
		capacity := 2 + rng.Intn(nBlocks)
		c, err := New(capacity, nBlocks, o)
		if err != nil {
			t.Fatal(err)
		}
		var pending []layout.BlockID // issued fetches not yet completed
		for step := 0; step < 200; step++ {
			switch op := rng.Intn(4); {
			case op == 0 && o.Cursor() < n:
				// Advance the cursor over one reference; present blocks the
				// cursor touches must be re-pushed, as the engine does.
				b := refs[o.Cursor()]
				o.Advance(o.Cursor() + 1)
				c.Touched(b)
			case op == 1:
				// Start a fetch of a random absent block, evicting when full.
				b := layout.BlockID(rng.Intn(nBlocks))
				if !c.Absent(b) {
					continue
				}
				victim := NoBlock
				if c.FreeBuffers() == 0 {
					victim, _ = c.FurthestEvictable()
					if victim == NoBlock {
						continue // every buffer reserved by in-flight fetches
					}
				}
				if err := c.StartFetch(b, victim); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, step, err)
				}
				pending = append(pending, b)
			case op == 2 && len(pending) > 0:
				// Complete a random in-flight fetch.
				i := rng.Intn(len(pending))
				c.CompleteFetch(pending[i])
				pending[i] = pending[len(pending)-1]
				pending = pending[:len(pending)-1]
			case op == 3:
				// Drop a random present block.
				b := layout.BlockID(rng.Intn(nBlocks))
				if c.Present(b) {
					if err := c.Drop(b); err != nil {
						t.Fatal(err)
					}
				}
			}
			gotB, gotU := c.FurthestEvictable()
			wantB, wantU := naiveFurthest(c, o, nBlocks)
			if gotU != wantU {
				t.Fatalf("trial %d step %d: furthest next-use = %d (block %d), want %d (block %d)",
					trial, step, gotU, gotB, wantU, wantB)
			}
			if gotB != NoBlock {
				if !c.Present(gotB) {
					t.Fatalf("trial %d step %d: victim %d not present", trial, step, gotB)
				}
				if o.NextUse(gotB) != gotU {
					t.Fatalf("trial %d step %d: stale next-use %d for victim %d", trial, step, gotU, gotB)
				}
				if gotU != future.Never && gotB != wantB {
					t.Fatalf("trial %d step %d: victim %d, want %d (finite next-use must be unique)",
						trial, step, gotB, wantB)
				}
			}
		}
	}
}
