package future

import (
	"math/rand"
	"testing"

	"ppcsim/internal/layout"
)

// TestStreamingOracleMatchesMaterialized drives a streaming oracle and a
// materialized oracle over the same random sequences in lockstep — the
// streaming one fed through a bounded disclosure window of A references —
// and checks that every query agrees with the materialized answer
// truncated at the window edge: NextUse reads Never exactly when the true
// next use has not been appended yet, and Consumed (the per-block epoch)
// matches unconditionally.
func TestStreamingOracleMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		nBlocks := 2 + rng.Intn(24)
		n := rng.Intn(400)
		ahead := 1 + rng.Intn(70)
		ringCap := 1
		for ringCap < ahead+1 {
			ringCap *= 2
		}
		refs := make([]layout.BlockID, n)
		for i := range refs {
			refs[i] = layout.BlockID(rng.Intn(nBlocks))
		}
		mat := New(refs, nBlocks)
		str := NewStreaming(nBlocks, ringCap)

		filled := 0
		for c := 0; c <= n; c++ {
			for filled < n && filled < c+ahead {
				str.Append(refs[filled])
				filled++
			}
			mat.Advance(c)
			str.Advance(c)
			if str.Len() != filled {
				t.Fatalf("trial %d c=%d: streaming Len %d, appended %d", trial, c, str.Len(), filled)
			}
			for b := 0; b < nBlocks; b++ {
				id := layout.BlockID(b)
				want := mat.NextUse(id)
				if want >= filled {
					want = Never
				}
				if got := str.NextUse(id); got != want {
					t.Fatalf("trial %d c=%d filled=%d: NextUse(%d) = %d, want %d",
						trial, c, filled, b, got, want)
				}
				if got, want := str.Consumed(id), mat.Consumed(id); got != want {
					t.Fatalf("trial %d c=%d: Consumed(%d) = %d, want %d", trial, c, b, got, want)
				}
			}
			for p := c; p < filled; p++ {
				if got := str.Block(p); got != refs[p] {
					t.Fatalf("trial %d c=%d: Block(%d) = %d, want %d", trial, c, p, got, refs[p])
				}
			}
		}
	}
}

// TestSlidingDiskIndexMatchesCSRScan drives a sliding disk index through
// the engine's append/advance pattern and checks Scan yields exactly the
// positions a CSR index over the full sequence would, truncated to the
// disclosure window — including early termination when the callback
// returns false.
func TestSlidingDiskIndexMatchesCSRScan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		nBlocks := 2 + rng.Intn(24)
		disks := 1 + rng.Intn(5)
		n := rng.Intn(400)
		ahead := 1 + rng.Intn(70)
		ringCap := 1
		for ringCap < ahead+1 {
			ringCap *= 2
		}
		refs := make([]layout.BlockID, n)
		for i := range refs {
			refs[i] = layout.BlockID(rng.Intn(nBlocks))
		}
		// The highest block id is excluded, as the engine excludes the
		// phantom.
		diskOf := func(b layout.BlockID) int {
			if int(b) == nBlocks-1 {
				return -1
			}
			return int(b) % disks
		}
		csr := NewDiskIndex(refs, disks, diskOf)
		sl := NewSlidingDiskIndex(disks, ringCap)

		filled := 0
		for c := 0; c <= n; c++ {
			for filled < n && filled < c+ahead {
				if d := diskOf(refs[filled]); d >= 0 {
					sl.Append(filled, d)
				}
				filled++
			}
			if c > 0 {
				if d := diskOf(refs[c-1]); d >= 0 {
					sl.AdvancePast(c-1, d)
				}
			}
			d := rng.Intn(disks)
			stopAfter := rng.Intn(6) // 0 means scan everything
			var got, want []int
			sl.Scan(d, c, func(p int) bool {
				got = append(got, p)
				return stopAfter == 0 || len(got) < stopAfter
			})
			csr.Scan(d, c, func(p int) bool {
				if p >= filled {
					return false
				}
				want = append(want, p)
				return stopAfter == 0 || len(want) < stopAfter
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d c=%d d=%d: scan yielded %v, want %v", trial, c, d, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d c=%d d=%d: scan yielded %v, want %v", trial, c, d, got, want)
				}
			}
		}
	}
}
