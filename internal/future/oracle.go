// Package future provides the advance-knowledge oracle the paper's
// algorithms rely on: for the fully-hinted single process, every policy
// can ask for the next reference position of any block relative to the
// current position (cursor) in the request sequence. The oracle advances
// in lockstep with the simulated process and answers queries in O(1).
package future

import (
	"math"

	"ppcsim/internal/layout"
)

// Never is returned by NextUse for blocks that are not referenced again.
const Never = math.MaxInt32

// Oracle answers next-reference queries over a fixed request sequence.
//
// The per-block occurrence lists are stored in one CSR-style backing
// array: block b's reference positions are pos[start[b]:start[b+1]],
// ascending. A per-block pointer into that array (the "next-reference
// queue" head) advances as the cursor consumes references, so NextUse is
// a two-load O(1) query and building the oracle performs a constant
// number of allocations regardless of the block-space size.
type Oracle struct {
	refs  []layout.BlockID
	pos   []int32 // all reference positions, grouped by block, ascending
	start []int32 // per block b: its positions are pos[start[b]:start[b+1]]
	ptr   []int32 // per block: index into pos of first position >= cursor

	cursor int
}

// New builds an oracle for the given reference sequence over a block ID
// space of nBlocks. The cursor starts at position 0 (before the first
// reference).
func New(refs []layout.BlockID, nBlocks int) *Oracle {
	o := &Oracle{
		refs:  refs,
		pos:   make([]int32, len(refs)),
		start: make([]int32, nBlocks+1),
		ptr:   make([]int32, nBlocks),
	}
	counts := make([]int32, nBlocks)
	for _, b := range refs {
		counts[b]++
	}
	sum := int32(0)
	for b, n := range counts {
		o.start[b] = sum
		o.ptr[b] = sum
		sum += n
	}
	o.start[nBlocks] = sum
	// Reuse counts as per-block fill cursors.
	copy(counts, o.start[:nBlocks])
	for i, b := range refs {
		o.pos[counts[b]] = int32(i)
		counts[b]++
	}
	return o
}

// Len returns the length of the reference sequence.
func (o *Oracle) Len() int { return len(o.refs) }

// Cursor returns the current position: the index of the next reference to
// be consumed.
func (o *Oracle) Cursor() int { return o.cursor }

// Block returns the block referenced at position i.
func (o *Oracle) Block(i int) layout.BlockID { return o.refs[i] }

// Advance moves the cursor forward to position c (monotonic). References
// that the cursor passes stop counting as "next uses".
func (o *Oracle) Advance(c int) {
	if c < o.cursor {
		panic("future: oracle cursor moved backwards")
	}
	for ; o.cursor < c; o.cursor++ {
		b := o.refs[o.cursor]
		// The cursor is consuming position o.cursor; move b's pointer past
		// it.
		if p := o.ptr[b]; int(o.pos[p]) == o.cursor {
			o.ptr[b] = p + 1
		}
	}
}

// NextUse returns the first position >= the cursor at which block b is
// referenced, or Never if it is not referenced again. This is the
// "next reference" every replacement rule in the paper is defined in
// terms of.
func (o *Oracle) NextUse(b layout.BlockID) int {
	p := o.ptr[b]
	if p >= o.start[b+1] {
		return Never
	}
	return int(o.pos[p])
}

// NextUseWithin returns b's next reference position when it falls inside
// the lookahead window [cursor, cursor+window), and Never otherwise. It
// is NextUse as seen by a partial-knowledge policy: references beyond the
// window horizon are indistinguishable from references that never happen.
// A window of 0 means no future visibility at all.
func (o *Oracle) NextUseWithin(b layout.BlockID, window int) int {
	u := o.NextUse(b)
	if u == Never || u >= o.cursor+window {
		return Never
	}
	return u
}

// NextUseAfter returns the first position >= pos (with pos >= cursor) at
// which b is referenced, or Never. Reverse aggressive's schedule
// construction uses this to compute release times.
func (o *Oracle) NextUseAfter(b layout.BlockID, pos int) int {
	lo, hi := int(o.ptr[b]), int(o.start[b+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if int(o.pos[mid]) < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= int(o.start[b+1]) {
		return Never
	}
	return int(o.pos[lo])
}
