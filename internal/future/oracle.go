// Package future provides the advance-knowledge oracle the paper's
// algorithms rely on: for the fully-hinted single process, every policy
// can ask for the next reference position of any block relative to the
// current position (cursor) in the request sequence. The oracle advances
// in lockstep with the simulated process and answers queries in O(1).
package future

import (
	"math"

	"ppcsim/internal/layout"
)

// Never is returned by NextUse for blocks that are not referenced again.
const Never = math.MaxInt32

// Oracle answers next-reference queries over a fixed request sequence.
//
// The per-block occurrence lists are stored in one CSR-style backing
// array: block b's reference positions are pos[start[b]:start[b+1]],
// ascending. A per-block pointer into that array (the "next-reference
// queue" head) advances as the cursor consumes references, so NextUse is
// a two-load O(1) query and building the oracle performs a constant
// number of allocations regardless of the block-space size.
type Oracle struct {
	refs  []layout.BlockID
	pos   []int32 // all reference positions, grouped by block, ascending
	start []int32 // per block b: its positions are pos[start[b]:start[b+1]]
	ptr   []int32 // per block: index into pos of first position >= cursor

	cursor int

	win *slidingWindow // non-nil in streaming mode (NewStreaming)
}

// slidingWindow holds the streaming oracle's state: a power-of-two ring
// of the most recently appended references plus intrusive per-block
// chains threading the unconsumed occurrences of each block through the
// ring, so NextUse stays a single load. Positions are absolute sequence
// indices; slot i&mask holds position i while filled-len(ring) < i.
type slidingWindow struct {
	ring   []layout.BlockID
	next   []int32 // per slot: next unconsumed position of the same block, or -1
	mask   int
	head   []int32 // per block: first unconsumed appended position, or -1
	tail   []int32 // per block: last appended position, or -1 (may be stale once head is -1)
	used   []int32 // per block: occurrences the cursor has consumed (see Consumed)
	filled int     // number of positions appended; the next Append is position filled
}

// New builds an oracle for the given reference sequence over a block ID
// space of nBlocks. The cursor starts at position 0 (before the first
// reference).
func New(refs []layout.BlockID, nBlocks int) *Oracle {
	o := &Oracle{
		refs:  refs,
		pos:   make([]int32, len(refs)),
		start: make([]int32, nBlocks+1),
		ptr:   make([]int32, nBlocks),
	}
	counts := make([]int32, nBlocks)
	for _, b := range refs {
		counts[b]++
	}
	sum := int32(0)
	for b, n := range counts {
		o.start[b] = sum
		o.ptr[b] = sum
		sum += n
	}
	o.start[nBlocks] = sum
	// Reuse counts as per-block fill cursors.
	copy(counts, o.start[:nBlocks])
	for i, b := range refs {
		o.pos[counts[b]] = int32(i)
		counts[b]++
	}
	return o
}

// NewStreaming builds an oracle that answers next-use queries over a
// sliding window of appended references instead of a fixed sequence: the
// producer calls Append as references stream in and Advance as they are
// consumed, keeping at most ringCap positions in flight. Queries see
// exactly the appended-but-unconsumed window — a next use that has not
// been appended yet is indistinguishable from Never, which is precisely
// the partial-knowledge semantics of a bounded lookahead window.
//
// ringCap must be a power of two strictly greater than the maximum
// number of unconsumed references resident at once (filled - cursor).
func NewStreaming(nBlocks, ringCap int) *Oracle {
	if ringCap <= 0 || ringCap&(ringCap-1) != 0 {
		panic("future: streaming ring capacity must be a power of two")
	}
	w := &slidingWindow{
		ring: make([]layout.BlockID, ringCap),
		next: make([]int32, ringCap),
		mask: ringCap - 1,
		head: make([]int32, nBlocks),
		tail: make([]int32, nBlocks),
		used: make([]int32, nBlocks),
	}
	for b := range w.head {
		w.head[b] = -1
		w.tail[b] = -1
	}
	return &Oracle{win: w}
}

// Append discloses the next reference (position filled) to a streaming
// oracle. Panics on a materialized oracle or if the window would exceed
// the ring capacity.
func (o *Oracle) Append(b layout.BlockID) {
	w := o.win
	if w == nil {
		panic("future: Append on a materialized oracle")
	}
	i := w.filled
	if i-o.cursor >= len(w.ring) {
		panic("future: streaming oracle window overflow")
	}
	slot := i & w.mask
	w.ring[slot] = b
	w.next[slot] = -1
	if w.head[b] < 0 {
		// No unconsumed occurrence in the window: any tail is stale (its
		// ring slot may since belong to another block), so start a fresh
		// chain rather than linking through it.
		w.head[b] = int32(i)
	} else {
		w.next[int(w.tail[b])&w.mask] = int32(i)
	}
	w.tail[b] = int32(i)
	w.filled++
}

// Len returns the length of the reference sequence: in streaming mode,
// the number of references appended so far.
func (o *Oracle) Len() int {
	if o.win != nil {
		return o.win.filled
	}
	return len(o.refs)
}

// Cursor returns the current position: the index of the next reference to
// be consumed.
func (o *Oracle) Cursor() int { return o.cursor }

// Block returns the block referenced at position i. In streaming mode i
// must still be resident in the ring.
func (o *Oracle) Block(i int) layout.BlockID {
	if w := o.win; w != nil {
		return w.ring[i&w.mask]
	}
	return o.refs[i]
}

// Advance moves the cursor forward to position c (monotonic). References
// that the cursor passes stop counting as "next uses".
//
//ppcvet:hotpath
func (o *Oracle) Advance(c int) {
	if c < o.cursor {
		panic("future: oracle cursor moved backwards")
	}
	if w := o.win; w != nil {
		if c > w.filled {
			panic("future: oracle cursor advanced past appended references")
		}
		for ; o.cursor < c; o.cursor++ {
			slot := o.cursor & w.mask
			b := w.ring[slot]
			if int(w.head[b]) == o.cursor {
				w.head[b] = w.next[slot]
			}
			w.used[b]++
		}
		return
	}
	for ; o.cursor < c; o.cursor++ {
		b := o.refs[o.cursor]
		// The cursor is consuming position o.cursor; move b's pointer past
		// it.
		if p := o.ptr[b]; int(o.pos[p]) == o.cursor {
			o.ptr[b] = p + 1
		}
	}
}

// NextUse returns the first position >= the cursor at which block b is
// referenced, or Never if it is not referenced again. This is the
// "next reference" every replacement rule in the paper is defined in
// terms of. A streaming oracle answers over its appended window: uses
// not yet disclosed read as Never.
func (o *Oracle) NextUse(b layout.BlockID) int {
	if w := o.win; w != nil {
		if h := w.head[b]; h >= 0 {
			return int(h)
		}
		return Never
	}
	p := o.ptr[b]
	if p >= o.start[b+1] {
		return Never
	}
	return int(o.pos[p])
}

// Consumed returns the number of occurrences of block b the cursor has
// passed. It changes exactly when NextUse(b) moves to a later position
// (or Never) because an occurrence was consumed — so it serves as a
// per-block epoch for detecting that movement even when both the old and
// new answers read as Never, as happens under a streaming oracle whose
// window slides past an occurrence and onward until the block's next use
// is no longer disclosed.
func (o *Oracle) Consumed(b layout.BlockID) int {
	if w := o.win; w != nil {
		return int(w.used[b])
	}
	return int(o.ptr[b] - o.start[b])
}

// NextUseWithin returns b's next reference position when it falls inside
// the lookahead window [cursor, cursor+window), and Never otherwise. It
// is NextUse as seen by a partial-knowledge policy: references beyond the
// window horizon are indistinguishable from references that never happen.
// A window of 0 means no future visibility at all.
func (o *Oracle) NextUseWithin(b layout.BlockID, window int) int {
	u := o.NextUse(b)
	if u == Never || u >= o.cursor+window {
		return Never
	}
	return u
}

// NextUseAfter returns the first position >= pos (with pos >= cursor) at
// which b is referenced, or Never. Reverse aggressive's schedule
// construction uses this to compute release times.
func (o *Oracle) NextUseAfter(b layout.BlockID, pos int) int {
	if o.win != nil {
		panic("future: NextUseAfter requires a materialized oracle")
	}
	lo, hi := int(o.ptr[b]), int(o.start[b+1])
	for lo < hi {
		mid := (lo + hi) / 2
		if int(o.pos[mid]) < pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= int(o.start[b+1]) {
		return Never
	}
	return int(o.pos[lo])
}
