package future

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppcsim/internal/layout"
)

func seq(ids ...int) []layout.BlockID {
	out := make([]layout.BlockID, len(ids))
	for i, v := range ids {
		out[i] = layout.BlockID(v)
	}
	return out
}

func TestNextUseBasic(t *testing.T) {
	o := New(seq(0, 1, 0, 2, 1, 0), 3)
	if got := o.NextUse(0); got != 0 {
		t.Errorf("NextUse(0) = %d, want 0", got)
	}
	if got := o.NextUse(2); got != 3 {
		t.Errorf("NextUse(2) = %d, want 3", got)
	}
	o.Advance(1)
	if got := o.NextUse(0); got != 2 {
		t.Errorf("after advance, NextUse(0) = %d, want 2", got)
	}
	o.Advance(4)
	if got := o.NextUse(2); got != Never {
		t.Errorf("NextUse(2) = %d, want Never", got)
	}
	if got := o.NextUse(1); got != 4 {
		t.Errorf("NextUse(1) = %d, want 4", got)
	}
	o.Advance(6)
	for b := 0; b < 3; b++ {
		if got := o.NextUse(layout.BlockID(b)); got != Never {
			t.Errorf("at end, NextUse(%d) = %d, want Never", b, got)
		}
	}
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	o := New(seq(0, 1), 2)
	o.Advance(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on backwards advance")
		}
	}()
	o.Advance(1)
}

func TestNextUseAfter(t *testing.T) {
	o := New(seq(0, 1, 0, 1, 0), 2)
	if got := o.NextUseAfter(0, 1); got != 2 {
		t.Errorf("NextUseAfter(0,1) = %d, want 2", got)
	}
	if got := o.NextUseAfter(0, 3); got != 4 {
		t.Errorf("NextUseAfter(0,3) = %d, want 4", got)
	}
	if got := o.NextUseAfter(1, 4); got != Never {
		t.Errorf("NextUseAfter(1,4) = %d, want Never", got)
	}
	o.Advance(3)
	if got := o.NextUseAfter(0, 3); got != 4 {
		t.Errorf("after advance, NextUseAfter(0,3) = %d, want 4", got)
	}
}

// naiveNextUse is the O(n) specification NextUse must match.
func naiveNextUse(refs []layout.BlockID, cursor int, b layout.BlockID) int {
	for p := cursor; p < len(refs); p++ {
		if refs[p] == b {
			return p
		}
	}
	return Never
}

// TestNextUseMatchesNaive cross-checks the oracle against a quadratic
// scan over random sequences and random advance patterns.
func TestNextUseMatchesNaive(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		const nBlocks = 8
		refs := make([]layout.BlockID, len(raw))
		for i, v := range raw {
			refs[i] = layout.BlockID(v % nBlocks)
		}
		o := New(refs, nBlocks)
		rng := rand.New(rand.NewSource(seed))
		cursor := 0
		for cursor < len(refs) {
			for b := 0; b < nBlocks; b++ {
				want := naiveNextUse(refs, cursor, layout.BlockID(b))
				if got := o.NextUse(layout.BlockID(b)); got != want {
					t.Logf("cursor=%d block=%d got=%d want=%d", cursor, b, got, want)
					return false
				}
				// NextUseAfter from an arbitrary later position.
				pos := cursor + rng.Intn(len(refs)-cursor+1)
				wantAfter := naiveNextUse(refs, pos, layout.BlockID(b))
				if got := o.NextUseAfter(layout.BlockID(b), pos); got != wantAfter {
					t.Logf("after: cursor=%d pos=%d block=%d got=%d want=%d", cursor, pos, b, got, wantAfter)
					return false
				}
			}
			cursor += 1 + rng.Intn(3)
			if cursor > len(refs) {
				cursor = len(refs)
			}
			o.Advance(cursor)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOracleAccessors(t *testing.T) {
	refs := seq(3, 1, 2)
	o := New(refs, 4)
	if o.Len() != 3 {
		t.Errorf("Len = %d", o.Len())
	}
	if o.Cursor() != 0 {
		t.Errorf("Cursor = %d", o.Cursor())
	}
	if o.Block(1) != 1 {
		t.Errorf("Block(1) = %d", o.Block(1))
	}
	o.Advance(2)
	if o.Cursor() != 2 {
		t.Errorf("Cursor = %d after Advance(2)", o.Cursor())
	}
}

// TestNextUseWithin: the windowed query reports a next use only when it
// falls inside [cursor, cursor+window), and Never otherwise — including
// a zero window, which can see nothing at all.
func TestNextUseWithin(t *testing.T) {
	o := New(seq(0, 1, 0, 2, 1, 0), 3)
	if got := o.NextUseWithin(0, 1); got != 0 {
		t.Errorf("NextUseWithin(0, 1) = %d, want 0", got)
	}
	if got := o.NextUseWithin(2, 3); got != Never {
		t.Errorf("NextUseWithin(2, 3) = %d, want Never: use at 3 is outside [0,3)", got)
	}
	if got := o.NextUseWithin(2, 4); got != 3 {
		t.Errorf("NextUseWithin(2, 4) = %d, want 3", got)
	}
	if got := o.NextUseWithin(1, 0); got != Never {
		t.Errorf("NextUseWithin(1, 0) = %d, want Never: zero window sees nothing", got)
	}
	o.Advance(1)
	if got := o.NextUseWithin(0, 1); got != Never {
		t.Errorf("after advance, NextUseWithin(0, 1) = %d, want Never: use at 2 is outside [1,2)", got)
	}
	if got := o.NextUseWithin(0, 2); got != 2 {
		t.Errorf("after advance, NextUseWithin(0, 2) = %d, want 2", got)
	}
	o.Advance(6)
	for b := 0; b < 3; b++ {
		if got := o.NextUseWithin(seq(b)[0], 1000); got != Never {
			t.Errorf("at end, NextUseWithin(%d, 1000) = %d, want Never", b, got)
		}
	}
}
