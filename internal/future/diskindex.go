package future

import "ppcsim/internal/layout"

// DiskIndex groups the positions of a reference sequence by the disk
// holding each referenced block. The paper's multi-disk policies
// repeatedly need "the first missing block on disk d at or after the
// cursor"; scanning only that disk's positions turns a window walk that
// touches every reference (and a placement lookup per reference) into a
// walk over the 1/D fraction that can possibly match.
//
// The index has two modes sharing one query API (Scan):
//
//   - Materialized (NewDiskIndex): positions are grouped into one
//     CSR-style backing array exactly like the Oracle's next-reference
//     queues, immutable after construction.
//   - Sliding (NewSlidingDiskIndex): the producer Appends positions as
//     references stream in and pops them with AdvancePast as the cursor
//     consumes them, keeping at most ringCap positions resident.
//
// Both modes answer Scan identically over the positions they hold, which
// is what makes streamed and materialized runs byte-identical: bounded
// lookahead policies only ever scan positions inside their window, and
// the engine keeps the sliding index filled strictly past that horizon.
type DiskIndex struct {
	// Materialized mode.
	pos   []int32 // reference positions grouped by disk, ascending
	start []int32 // per disk d: its positions are pos[start[d]:start[d+1]]
	lb    []int32 // per disk: Scan's monotone cursor into pos[start[d]:start[d+1]]

	// Sliding mode.
	ring []int32 // per slot i&mask: next indexed position on the same disk, or -1
	mask int
	head []int32 // per disk: first unconsumed indexed position, or -1
	tail []int32 // per disk: last appended indexed position, or -1 (stale once head is -1)
}

// NewDiskIndex builds the index for the given reference sequence.
// diskOf maps a block to its disk, or a negative value for blocks that
// have no placement and can never be missing (the engine's phantom
// block); such positions are excluded from the index.
func NewDiskIndex(refs []layout.BlockID, disks int, diskOf func(layout.BlockID) int) *DiskIndex {
	x := &DiskIndex{start: make([]int32, disks+1), lb: make([]int32, disks)}
	counts := make([]int32, disks)
	n := 0
	for _, b := range refs {
		if d := diskOf(b); d >= 0 {
			counts[d]++
			n++
		}
	}
	x.pos = make([]int32, n)
	sum := int32(0)
	for d, c := range counts {
		x.start[d] = sum
		sum += c
	}
	x.start[disks] = sum
	copy(counts, x.start[:disks])
	for i, b := range refs {
		if d := diskOf(b); d >= 0 {
			x.pos[counts[d]] = int32(i)
			counts[d]++
		}
	}
	return x
}

// NewSlidingDiskIndex builds an empty sliding index over a ring of
// ringCap positions (a power of two, strictly greater than the maximum
// number of unconsumed positions resident at once).
func NewSlidingDiskIndex(disks, ringCap int) *DiskIndex {
	if ringCap <= 0 || ringCap&(ringCap-1) != 0 {
		panic("future: sliding disk index ring capacity must be a power of two")
	}
	x := &DiskIndex{
		ring: make([]int32, ringCap),
		mask: ringCap - 1,
		head: make([]int32, disks),
		tail: make([]int32, disks),
	}
	for d := range x.head {
		x.head[d] = -1
		x.tail[d] = -1
	}
	return x
}

// Append indexes position p on disk d. Positions must be appended in
// strictly ascending order; positions of unplaced (phantom) blocks are
// simply not appended.
func (x *DiskIndex) Append(p, d int) {
	if x.ring == nil {
		panic("future: Append on a materialized disk index")
	}
	x.ring[p&x.mask] = -1
	if x.head[d] < 0 {
		// Chain empty: any recorded tail has been consumed and its ring
		// slot may belong to another disk now; start fresh.
		x.head[d] = int32(p)
	} else {
		x.ring[int(x.tail[d])&x.mask] = int32(p)
	}
	x.tail[d] = int32(p)
}

// AdvancePast removes position p (on disk d) from a sliding index once
// the cursor has consumed it. Positions are consumed in order, so p is
// always the chain head when it is indexed at all.
func (x *DiskIndex) AdvancePast(p, d int) {
	if x.ring == nil {
		panic("future: AdvancePast on a materialized disk index")
	}
	if int(x.head[d]) == p {
		x.head[d] = x.ring[p&x.mask]
	}
}

// Disks returns the number of disks the index covers.
func (x *DiskIndex) Disks() int {
	if x.ring != nil {
		return len(x.head)
	}
	return len(x.start) - 1
}

// Scan calls fn on disk d's indexed positions >= from, in ascending
// order, until fn returns false or the positions run out. The index
// keeps a per-disk cursor in materialized mode, so across calls `from`
// must be monotonically non-decreasing per disk — which is how the
// policies use it: they always scan from the current engine cursor.
func (x *DiskIndex) Scan(d, from int, fn func(p int) bool) {
	if x.ring != nil {
		for p := x.head[d]; p >= 0; p = x.ring[int(p)&x.mask] {
			if int(p) >= from && !fn(int(p)) {
				return
			}
		}
		return
	}
	ps := x.pos[x.start[d]:x.start[d+1]]
	i := int(x.lb[d])
	for i < len(ps) && int(ps[i]) < from {
		i++
	}
	x.lb[d] = int32(i)
	for ; i < len(ps); i++ {
		if !fn(int(ps[i])) {
			return
		}
	}
}

// Positions returns disk d's reference positions in ascending order
// (materialized mode only). The slice aliases the index; callers must
// not modify it.
func (x *DiskIndex) Positions(d int) []int32 {
	if x.ring != nil {
		panic("future: Positions on a sliding disk index")
	}
	return x.pos[x.start[d]:x.start[d+1]]
}

// LowerBound returns the index of the first position >= p in
// Positions(d) (== len(Positions(d)) if none). Materialized mode only.
func (x *DiskIndex) LowerBound(d, p int) int {
	ps := x.Positions(d)
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(ps[mid]) < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
