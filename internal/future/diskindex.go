package future

import "ppcsim/internal/layout"

// DiskIndex groups the positions of a reference sequence by the disk
// holding each referenced block. The paper's multi-disk policies
// repeatedly need "the first missing block on disk d at or after the
// cursor"; scanning only that disk's positions turns a window walk that
// touches every reference (and a placement lookup per reference) into a
// walk over the 1/D fraction that can possibly match.
//
// The index is immutable after construction: positions are grouped into
// one CSR-style backing array exactly like the Oracle's next-reference
// queues. Callers keep their own cursors into the per-disk lists (see
// Positions and LowerBound).
type DiskIndex struct {
	pos   []int32 // reference positions grouped by disk, ascending
	start []int32 // per disk d: its positions are pos[start[d]:start[d+1]]
}

// NewDiskIndex builds the index for the given reference sequence.
// diskOf maps a block to its disk, or a negative value for blocks that
// have no placement and can never be missing (the engine's phantom
// block); such positions are excluded from the index.
func NewDiskIndex(refs []layout.BlockID, disks int, diskOf func(layout.BlockID) int) *DiskIndex {
	x := &DiskIndex{start: make([]int32, disks+1)}
	counts := make([]int32, disks)
	n := 0
	for _, b := range refs {
		if d := diskOf(b); d >= 0 {
			counts[d]++
			n++
		}
	}
	x.pos = make([]int32, n)
	sum := int32(0)
	for d, c := range counts {
		x.start[d] = sum
		sum += c
	}
	x.start[disks] = sum
	copy(counts, x.start[:disks])
	for i, b := range refs {
		if d := diskOf(b); d >= 0 {
			x.pos[counts[d]] = int32(i)
			counts[d]++
		}
	}
	return x
}

// Disks returns the number of disks the index covers.
func (x *DiskIndex) Disks() int { return len(x.start) - 1 }

// Positions returns disk d's reference positions in ascending order.
// The slice aliases the index; callers must not modify it.
func (x *DiskIndex) Positions(d int) []int32 {
	return x.pos[x.start[d]:x.start[d+1]]
}

// LowerBound returns the index of the first position >= p in
// Positions(d) (== len(Positions(d)) if none).
func (x *DiskIndex) LowerBound(d, p int) int {
	ps := x.Positions(d)
	lo, hi := 0, len(ps)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(ps[mid]) < p {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
