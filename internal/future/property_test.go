package future

import (
	"math/rand"
	"testing"

	"ppcsim/internal/layout"
)

// naiveFirstMissing is the per-disk linear window scan the disk index
// replaced: first position in [c, limit) on disk d whose block is absent.
func naiveFirstMissing(refs []layout.BlockID, diskOf func(layout.BlockID) int, absent []bool, d, c, limit int) int {
	for p := c; p < limit; p++ {
		if diskOf(refs[p]) == d && absent[refs[p]] {
			return p
		}
	}
	return limit
}

// TestDiskIndexMatchesNaiveScan checks that walking a disk's position
// list from its lower bound finds exactly the first missing position the
// full window scan would, over random traces, disk mappings, and
// presence sets — including blocks the mapping excludes (diskOf < 0,
// the engine's phantom).
func TestDiskIndexMatchesNaiveScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		nBlocks := 2 + rng.Intn(30)
		disks := 1 + rng.Intn(6)
		n := rng.Intn(400)
		refs := make([]layout.BlockID, n)
		for i := range refs {
			refs[i] = layout.BlockID(rng.Intn(nBlocks))
		}
		// The highest block id is excluded, as the engine excludes the
		// phantom.
		diskOf := func(b layout.BlockID) int {
			if int(b) == nBlocks-1 {
				return -1
			}
			return int(b) % disks
		}
		idx := NewDiskIndex(refs, disks, diskOf)
		absent := make([]bool, nBlocks)
		for i := range absent {
			absent[i] = rng.Intn(2) == 0
		}
		for probe := 0; probe < 40; probe++ {
			c := rng.Intn(n + 1)
			limit := c + rng.Intn(n-c+1)
			d := rng.Intn(disks)
			got := limit
			ps := idx.Positions(d)
			for i := idx.LowerBound(d, c); i < len(ps); i++ {
				p := int(ps[i])
				if p >= limit {
					break
				}
				if absent[refs[p]] {
					got = p
					break
				}
			}
			if want := naiveFirstMissing(refs, diskOf, absent, d, c, limit); got != want {
				t.Fatalf("trial %d: first missing on disk %d in [%d,%d) = %d, want %d", trial, d, c, limit, got, want)
			}
		}
		// The per-disk lists must partition the non-excluded positions.
		total := 0
		for d := 0; d < disks; d++ {
			prev := int32(-1)
			for _, p := range idx.Positions(d) {
				if p <= prev {
					t.Fatalf("trial %d: disk %d positions not strictly ascending", trial, d)
				}
				if diskOf(refs[p]) != d {
					t.Fatalf("trial %d: position %d filed under disk %d, maps to %d", trial, p, d, diskOf(refs[p]))
				}
				prev = p
			}
			total += len(idx.Positions(d))
		}
		excluded := 0
		for _, b := range refs {
			if diskOf(b) < 0 {
				excluded++
			}
		}
		if total != n-excluded {
			t.Fatalf("trial %d: index holds %d positions, want %d", trial, total, n-excluded)
		}
	}
}
