// Package theory implements the paper's theoretical model (section 2.1):
// a cache of K blocks over d storage devices, a known request sequence,
// one time unit per cache hit, and F time units per fetch, with fetches
// serialized per disk and the evicted block unavailable from the moment
// its replacement fetch starts.
//
// The package exists to validate algorithmic behavior independent of the
// disk-accurate simulator — in particular it replays the worked example
// of the paper's Figure 1 (see the tests) — and to execute explicit
// prefetching schedules.
package theory

import (
	"fmt"

	"ppcsim/internal/future"
	"ppcsim/internal/layout"
)

// Config describes a theoretical system.
type Config struct {
	// K is the cache size in blocks.
	K int
	// F is the fetch time in time units (a cache hit takes 1).
	F float64
	// Disks is the number of storage devices.
	Disks int
	// DiskOf maps each block to its device.
	DiskOf func(layout.BlockID) int
	// NBlocks is the block ID space.
	NBlocks int
	// InitialCache is the set of blocks present at time zero.
	InitialCache []layout.BlockID
}

// Op is an explicit fetch/eviction pair of a schedule: at time At (or as
// soon after as the fetched block's disk is free), fetch Fetch, evicting
// Evict (NoBlock for none).
type Op struct {
	At    float64
	Fetch layout.BlockID
	Evict layout.BlockID
}

// NoBlock marks the absence of an eviction.
const NoBlock = layout.BlockID(-1)

// Policy decides fetches in the theoretical model. It is consulted at
// every decision point and may issue fetches through the Sim.
type Policy interface {
	// Decide may call sim.Issue any number of times.
	Decide(sim *Sim)
}

// Sim is a running theoretical-model simulation.
type Sim struct {
	cfg    Config
	refs   []layout.BlockID
	oracle *future.Oracle

	t       float64
	present map[layout.BlockID]bool
	flight  map[layout.BlockID]float64 // block -> completion time
	freeAt  []float64

	fetches int
	stall   float64
}

// NewSim prepares a simulation of the given sequence.
func NewSim(cfg Config, refs []layout.BlockID) (*Sim, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("theory: K must be positive")
	}
	if cfg.F <= 0 {
		return nil, fmt.Errorf("theory: F must be positive")
	}
	if cfg.Disks <= 0 {
		return nil, fmt.Errorf("theory: need at least one disk")
	}
	if len(cfg.InitialCache) > cfg.K {
		return nil, fmt.Errorf("theory: initial cache exceeds K")
	}
	s := &Sim{
		cfg:     cfg,
		refs:    refs,
		oracle:  future.New(refs, cfg.NBlocks),
		present: make(map[layout.BlockID]bool, cfg.K),
		flight:  make(map[layout.BlockID]float64),
		freeAt:  make([]float64, cfg.Disks),
	}
	for _, b := range cfg.InitialCache {
		s.present[b] = true
	}
	return s, nil
}

// Now returns the current time.
func (s *Sim) Now() float64 { return s.t }

// Cursor returns the index of the next reference.
func (s *Sim) Cursor() int { return s.oracle.Cursor() }

// Oracle exposes next-use queries.
func (s *Sim) Oracle() *future.Oracle { return s.oracle }

// Present reports whether b is available.
func (s *Sim) Present(b layout.BlockID) bool { return s.present[b] }

// InFlight reports whether b is being fetched.
func (s *Sim) InFlight(b layout.BlockID) bool { _, ok := s.flight[b]; return ok }

// Used returns the number of occupied buffers (present + in flight).
func (s *Sim) Used() int { return len(s.present) + len(s.flight) }

// DiskFreeAt returns when disk d finishes its current fetch.
func (s *Sim) DiskFreeAt(d int) float64 { return s.freeAt[d] }

// Fetches returns the number of fetches issued.
func (s *Sim) Fetches() int { return s.fetches }

// Issue starts a fetch of b (must be absent), evicting victim (must be
// present, or NoBlock with a free buffer). The fetch starts when b's disk
// is next free and completes F later. Returns the completion time.
func (s *Sim) Issue(b, victim layout.BlockID) (float64, error) {
	if s.present[b] || s.InFlight(b) {
		return 0, fmt.Errorf("theory: fetch of non-absent block %d", b)
	}
	if victim == NoBlock {
		if s.Used() >= s.cfg.K {
			return 0, fmt.Errorf("theory: fetch of %d without victim but cache full", b)
		}
	} else {
		if !s.present[victim] {
			return 0, fmt.Errorf("theory: victim %d not present", victim)
		}
		delete(s.present, victim)
	}
	d := s.cfg.DiskOf(b)
	start := s.t
	if s.freeAt[d] > start {
		start = s.freeAt[d]
	}
	done := start + s.cfg.F
	s.freeAt[d] = done
	s.flight[b] = done
	s.fetches++
	return done, nil
}

// Run executes the sequence to completion under the policy (which may be
// nil to replay already-issued or demand-only schedules) and returns the
// elapsed time: the number of references plus the total stall.
//
// The timing convention matches the paper's Figure 1: the reference at
// position c is served at time instant c (plus accumulated stall), a
// fetch issued at instant t is usable by the reference at instant t+F,
// and policy decisions are made immediately after each reference is
// served. This reproduces the example's elapsed times of 7 (aggressive)
// and 6 (the better schedule) exactly; see the package tests.
func (s *Sim) Run(p Policy) (float64, error) {
	n := len(s.refs)
	if p != nil {
		// First opportunity: the policy may fetch before the first
		// reference (this is what makes aggressive evict F rather than
		// the about-to-be-dead A in Figure 1a).
		p.Decide(s)
	}
	for cursor := 0; cursor < n; {
		s.completeArrived()
		b := s.refs[cursor]
		if s.present[b] {
			// Serve the reference at instant s.t, then let the policy
			// react, then advance one time unit.
			cursor++
			s.oracle.Advance(cursor)
			if p != nil {
				p.Decide(s)
			}
			s.t++
			continue
		}
		if done, ok := s.flight[b]; ok {
			// Stall until the block arrives.
			if done < s.t {
				done = s.t
			}
			s.stall += done - s.t
			s.t = done
			s.completeArrived()
			continue
		}
		// Demand fetch: the policy did not cover this reference.
		victim := NoBlock
		if s.Used() >= s.cfg.K {
			victim = s.furthest()
			if victim == NoBlock {
				return 0, fmt.Errorf("theory: no evictable block at position %d", cursor)
			}
		}
		if _, err := s.Issue(b, victim); err != nil {
			return 0, err
		}
	}
	return s.t, nil
}

// Stall returns the accumulated stall time after Run.
func (s *Sim) Stall() float64 { return s.stall }

func (s *Sim) completeArrived() {
	for b, done := range s.flight {
		if done <= s.t {
			delete(s.flight, b)
			s.present[b] = true
		}
	}
}

// furthest returns the present block with the furthest next use,
// tie-breaking on the smaller block ID for determinism.
func (s *Sim) furthest() layout.BlockID {
	best := NoBlock
	bestUse := -1
	for b := range s.present {
		u := s.oracle.NextUse(b)
		if u > bestUse || (u == bestUse && (best == NoBlock || b < best)) {
			best, bestUse = b, u
		}
	}
	return best
}

// ScheduleExecutor issues the explicit ops of a schedule at their times.
type ScheduleExecutor struct {
	Ops  []Op
	next int
}

// Decide implements Policy.
func (e *ScheduleExecutor) Decide(sim *Sim) {
	for e.next < len(e.Ops) && e.Ops[e.next].At <= sim.Now() {
		op := e.Ops[e.next]
		if _, err := sim.Issue(op.Fetch, op.Evict); err != nil {
			panic(fmt.Sprintf("theory: schedule op %d: %v", e.next, err))
		}
		e.next++
	}
}

// Aggressive is the multi-disk aggressive algorithm in the theoretical
// model (batch size 1): whenever a disk is free, fetch the first missing
// block on that disk, evicting the furthest-future block, under the
// do-no-harm rule.
type Aggressive struct{}

// Decide implements Policy.
func (Aggressive) Decide(sim *Sim) {
	for {
		issued := false
		for d := 0; d < sim.cfg.Disks; d++ {
			if sim.freeAt[d] > sim.t {
				continue
			}
			p := sim.firstMissingOn(d)
			if p < 0 {
				continue
			}
			b := sim.refs[p]
			victim := NoBlock
			if sim.Used() >= sim.cfg.K {
				victim = sim.furthest()
				if victim == NoBlock || sim.oracle.NextUse(victim) <= p {
					continue // do no harm
				}
			}
			if _, err := sim.Issue(b, victim); err != nil {
				panic(err)
			}
			issued = true
		}
		if !issued {
			return
		}
	}
}

// firstMissingOn returns the position of the first missing block on disk
// d at or after the cursor, or -1.
func (s *Sim) firstMissingOn(d int) int {
	for p := s.Cursor(); p < len(s.refs); p++ {
		b := s.refs[p]
		if s.present[b] || s.InFlight(b) {
			continue
		}
		if s.cfg.DiskOf(b) == d {
			return p
		}
	}
	return -1
}

// FixedHorizon is the fixed-horizon algorithm in the theoretical model:
// fetch any missing block within H references, evicting the
// furthest-future block provided its next use is beyond the horizon.
type FixedHorizon struct{ H int }

// Decide implements Policy.
func (f FixedHorizon) Decide(sim *Sim) {
	c := sim.Cursor()
	limit := c + f.H
	if limit > len(sim.refs) {
		limit = len(sim.refs)
	}
	for p := c; p < limit; p++ {
		b := sim.refs[p]
		if sim.present[b] || sim.InFlight(b) {
			continue
		}
		victim := NoBlock
		if sim.Used() >= sim.cfg.K {
			victim = sim.furthest()
			if victim == NoBlock || sim.oracle.NextUse(victim) <= c+f.H {
				continue
			}
		}
		if _, err := sim.Issue(b, victim); err != nil {
			panic(err)
		}
	}
}
