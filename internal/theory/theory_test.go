package theory

import (
	"testing"

	"ppcsim/internal/layout"
)

// The worked example of the paper's Figure 1: two disks, cache of K=4
// blocks, fetch time F=2. Disk 0 holds blocks A, C, E, F; disk 1 holds
// b and d. The application references (A, b, C, d, E, F) and the cache
// initially holds {A, b, d, F}.
const (
	blkA = layout.BlockID(0)
	blkC = layout.BlockID(1)
	blkE = layout.BlockID(2)
	blkF = layout.BlockID(3)
	blkB = layout.BlockID(4) // "b" in the paper
	blkD = layout.BlockID(5) // "d" in the paper
)

func figure1Config() Config {
	return Config{
		K:     4,
		F:     2,
		Disks: 2,
		DiskOf: func(b layout.BlockID) int {
			if b == blkB || b == blkD {
				return 1
			}
			return 0
		},
		NBlocks:      6,
		InitialCache: []layout.BlockID{blkA, blkB, blkD, blkF},
	}
}

func figure1Refs() []layout.BlockID {
	return []layout.BlockID{blkA, blkB, blkC, blkD, blkE, blkF}
}

// TestFigure1Aggressive reproduces Figure 1(a): the straightforward
// aggressive schedule takes 7 time units (one stall on F).
func TestFigure1Aggressive(t *testing.T) {
	sim, err := NewSim(figure1Config(), figure1Refs())
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := sim.Run(Aggressive{})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 7 {
		t.Errorf("aggressive elapsed = %g, want 7 (paper Figure 1a)", elapsed)
	}
	if sim.Stall() != 1 {
		t.Errorf("aggressive stall = %g, want 1", sim.Stall())
	}
	if sim.Fetches() != 3 {
		t.Errorf("aggressive fetches = %d, want 3", sim.Fetches())
	}
}

// TestFigure1BetterSchedule reproduces Figure 1(b): evicting d instead of
// F on the first fetch offloads one fetch to the idle disk and saves one
// time unit.
func TestFigure1BetterSchedule(t *testing.T) {
	sim, err := NewSim(figure1Config(), figure1Refs())
	if err != nil {
		t.Fatal(err)
	}
	sched := &ScheduleExecutor{Ops: []Op{
		{At: 0, Fetch: blkC, Evict: blkD}, // after A's reference: C replaces d on disk 0
		{At: 1, Fetch: blkD, Evict: blkB}, // after b's reference: d comes back via the idle disk 1
		{At: 2, Fetch: blkE, Evict: blkA}, // after C's reference: E replaces A; F stays cached
	}}
	elapsed, err := sim.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 6 {
		t.Errorf("better schedule elapsed = %g, want 6 (paper Figure 1b)", elapsed)
	}
	if sim.Stall() != 0 {
		t.Errorf("better schedule stall = %g, want 0", sim.Stall())
	}
	if sim.Fetches() != 3 {
		t.Errorf("better schedule fetches = %d, want 3", sim.Fetches())
	}
}

// TestFigure1FixedHorizon checks fixed horizon behaves like aggressive on
// this small example (the paper: "for small caches such as in this
// figure, the fixed horizon and aggressive algorithms both behave in this
// way").
func TestFigure1FixedHorizon(t *testing.T) {
	sim, err := NewSim(figure1Config(), figure1Refs())
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := sim.Run(FixedHorizon{H: 4})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 7 {
		t.Errorf("fixed horizon elapsed = %g, want 7", elapsed)
	}
}

// TestDemandOnly: with no policy, every miss is a demand fetch with
// optimal replacement.
func TestDemandOnly(t *testing.T) {
	sim, err := NewSim(figure1Config(), figure1Refs())
	if err != nil {
		t.Fatal(err)
	}
	elapsed, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Demand fetching stalls F time units on each of the two misses (C
	// and E; F is never evicted under optimal replacement... it is: C
	// evicts F under MIN, so three misses total).
	if elapsed <= 7 {
		t.Errorf("demand elapsed = %g, want > 7 (prefetching must beat demand)", elapsed)
	}
	if sim.Fetches() < 2 {
		t.Errorf("demand fetches = %d, want >= 2", sim.Fetches())
	}
}

// TestIssueValidation checks illegal transitions are rejected.
func TestIssueValidation(t *testing.T) {
	sim, err := NewSim(figure1Config(), figure1Refs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Issue(blkA, NoBlock); err == nil {
		t.Error("fetch of present block should fail")
	}
	if _, err := sim.Issue(blkC, blkE); err == nil {
		t.Error("eviction of absent block should fail")
	}
	if _, err := sim.Issue(blkC, NoBlock); err == nil {
		t.Error("fetch without victim into a full cache should fail")
	}
	if _, err := sim.Issue(blkC, blkF); err != nil {
		t.Errorf("legal fetch failed: %v", err)
	}
	if _, err := sim.Issue(blkC, blkA); err == nil {
		t.Error("double fetch of in-flight block should fail")
	}
}

// TestConfigValidation checks constructor errors.
func TestConfigValidation(t *testing.T) {
	refs := figure1Refs()
	bad := []Config{
		{K: 0, F: 2, Disks: 1, NBlocks: 6},
		{K: 4, F: 0, Disks: 1, NBlocks: 6},
		{K: 4, F: 2, Disks: 0, NBlocks: 6},
		{K: 1, F: 2, Disks: 1, NBlocks: 6, InitialCache: []layout.BlockID{0, 1}},
	}
	for i, cfg := range bad {
		if cfg.DiskOf == nil {
			cfg.DiskOf = func(layout.BlockID) int { return 0 }
		}
		if _, err := NewSim(cfg, refs); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

// TestSerializedDisk: two fetches to the same disk serialize; fetches to
// different disks overlap.
func TestSerializedDisk(t *testing.T) {
	cfg := figure1Config()
	sim, err := NewSim(cfg, figure1Refs())
	if err != nil {
		t.Fatal(err)
	}
	d1, err := sim.Issue(blkC, blkA)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := sim.Issue(blkE, blkB)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != 2 || d2 != 4 {
		t.Errorf("same-disk fetches complete at %g, %g; want 2, 4", d1, d2)
	}
	// blkD's refetch goes to disk 1, which is idle.
	if err := func() error { _, err := sim.Issue(blkD, blkF); return err }(); err == nil {
		t.Fatal("expected failure: blkD is present; pick an absent block instead")
	}
}
