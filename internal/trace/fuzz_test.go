package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTrace checks the trace parser never panics and that anything
// it accepts is valid and round-trips. Seed inputs live both here and in
// testdata/fuzz/FuzzParseTrace, so `go test` replays the corpus and the
// CI fuzz smoke extends it.
func FuzzParseTrace(f *testing.F) {
	f.Add("ppctrace t true 16\nfile 4\nr 0 1.0\nr 3 0.25\nw 1 0.5\n")
	f.Add("ppctrace x false 2\nfile 1\nr 0 0\n")
	f.Add("")
	f.Add("garbage")
	f.Add("ppctrace a true 10\nfile 0\n")
	f.Add("ppctrace a true 10\nfile 2\nr 5 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("Read accepted an invalid trace: %v", verr)
		}
		var buf bytes.Buffer
		if werr := tr.Write(&buf); werr != nil {
			t.Fatalf("Write failed on accepted trace: %v", werr)
		}
		back, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round-trip Read failed: %v", rerr)
		}
		if len(back.Refs) != len(tr.Refs) || len(back.Files) != len(tr.Files) {
			t.Fatal("round trip changed the trace shape")
		}
	})
}
