package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ppcsim/internal/layout"
)

// TestMetaValidateErrors covers the header invariants Meta.Validate
// enforces before a streaming run starts.
func TestMetaValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		m    Meta
		want string
	}{
		{"empty", Meta{Name: "t", Files: []layout.File{{Blocks: 4}}, Refs: 0}, "empty"},
		{"zero-size file", Meta{Name: "t", Files: []layout.File{{Blocks: 0}}, Refs: 1}, "has size"},
		{"gap", Meta{Name: "t", Files: []layout.File{{First: 0, Blocks: 4}, {First: 5, Blocks: 4}}, Refs: 1}, "not contiguous"},
		{"no files", Meta{Name: "t", Refs: 1}, "no files"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.m.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}
	ok := Meta{Name: "t", Files: []layout.File{{First: 0, Blocks: 4}, {First: 4, Blocks: 2}}, Refs: 3}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid meta rejected: %v", err)
	}
}

// brokenSource misbehaves in the ways Materialize must catch: metadata
// promising more references than the stream yields, read errors, and
// zero-progress reads.
type brokenSource struct {
	meta Meta
	mode string
	done bool
}

func (s *brokenSource) Meta() Meta   { return s.meta }
func (s *brokenSource) Reset() error { s.done = false; return nil }

func (s *brokenSource) ReadRefs(p []Ref) (int, error) {
	switch s.mode {
	case "short":
		if s.done {
			return 0, io.EOF
		}
		s.done = true
		p[0] = Ref{Block: 0, ComputeMs: 1}
		return 1, nil
	case "readerr":
		return 0, errors.New("disk on fire")
	default: // "stuck": no refs, no error
		return 0, nil
	}
}

func TestMaterializeErrors(t *testing.T) {
	meta := Meta{Name: "b", Files: []layout.File{{Blocks: 8}}, Refs: 3}
	for _, c := range []struct {
		mode string
		want string
	}{
		{"short", "yielded"},
		{"readerr", "disk on fire"},
		{"stuck", "no references"},
	} {
		t.Run(c.mode, func(t *testing.T) {
			_, err := Materialize(&brokenSource{meta: meta, mode: c.mode})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Materialize = %v, want error containing %q", err, c.want)
			}
		})
	}

	t.Run("invalid meta", func(t *testing.T) {
		_, err := Materialize(&brokenSource{meta: Meta{Name: "b", Refs: 0}})
		if err == nil || !strings.Contains(err.Error(), "empty") {
			t.Fatalf("Materialize = %v, want metadata validation error", err)
		}
	})

	t.Run("roundtrip", func(t *testing.T) {
		tr := genTestTrace("mat", 100)
		src := tr.Source()
		// Partially consume, then materialize: Reset must rewind first.
		var buf [7]Ref
		if _, err := src.ReadRefs(buf[:]); err != nil {
			t.Fatal(err)
		}
		back, err := Materialize(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back.Refs, tr.Refs) {
			t.Fatal("materialized refs differ from the original")
		}
	})
}

// TestOpenColumnarFile exercises the file-backed source end to end:
// open, stream, rewind, and the open-time error paths.
func TestOpenColumnarFile(t *testing.T) {
	tr := genTestTrace("filesrc", 20000) // >2 frames
	dir := t.TempDir()
	path := filepath.Join(dir, "t.col")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteColumnar(f, tr.Source()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := OpenColumnarFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if got := src.Meta().Refs; got != int64(len(tr.Refs)) {
		t.Fatalf("meta refs = %d, want %d", got, len(tr.Refs))
	}
	for round := 0; round < 2; round++ {
		back, err := Materialize(src)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(back.Refs, tr.Refs) {
			t.Fatalf("round %d: refs differ", round)
		}
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenColumnarFile(filepath.Join(dir, "missing.col")); err == nil {
		t.Fatal("opening a missing file succeeded")
	}
	textPath := filepath.Join(dir, "t.txt")
	if err := os.WriteFile(textPath, []byte("ppctrace x true 4\nfile 4\nr 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenColumnarFile(textPath); err == nil {
		t.Fatal("opening a text trace as columnar succeeded")
	}
}

// TestNewColumnarSourceRejectsBadHeaders covers the open-time validation
// of the streaming decoder.
func TestNewColumnarSourceRejectsBadHeaders(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteColumnar(&buf, genTestTrace("hdr", 50).Source()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := NewColumnarSource(bytes.NewReader([]byte("not a columnar file"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewColumnarSource(bytes.NewReader(good[:4])); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

// TestInspectColumnarErrors covers the trailer and footer validation of
// the point-read inspector.
func TestInspectColumnarErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteColumnar(&buf, genTestTrace("ins", 50).Source()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := InspectColumnar(bytes.NewReader(good[:8]), 8); err == nil ||
		!strings.Contains(err.Error(), "too short") {
		t.Fatal("short file accepted")
	}

	noMagic := append([]byte(nil), good...)
	copy(noMagic[len(noMagic)-len("ppccend1"):], "XXXXXXXX")
	if _, err := InspectColumnar(bytes.NewReader(noMagic), int64(len(noMagic))); err == nil ||
		!strings.Contains(err.Error(), "end magic") {
		t.Fatal("bad end magic accepted")
	}

	badOff := append([]byte(nil), good...)
	for i := 0; i < 8; i++ { // footer offset -> huge
		badOff[len(badOff)-len("ppccend1")-8+i] = 0xff
	}
	if _, err := InspectColumnar(bytes.NewReader(badOff), int64(len(badOff))); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatal("out-of-range footer offset accepted")
	}

	info, err := InspectColumnar(bytes.NewReader(good), int64(len(good)))
	if err != nil {
		t.Fatal(err)
	}
	if info.Meta.Refs != 50 || info.Frames != 1 || len(info.FrameOffsets) != 1 {
		t.Fatalf("inspect = %+v", info)
	}
}
