package tracetest

import (
	"math/rand"
	"testing"
)

func TestBundledCachesAndValidates(t *testing.T) {
	a := Bundled(t, "synth")
	b := Bundled(t, "synth")
	if a != b {
		t.Error("Bundled regenerated instead of caching")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	cut := Truncated(t, "synth", 100)
	if len(cut.Refs) != 100 {
		t.Errorf("Truncated returned %d refs", len(cut.Refs))
	}
	if cut == a {
		t.Error("Truncated must copy, not alias the cached trace")
	}
}

func TestBuildersProduceValidTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i, tr := range []interface {
		Validate() error
	}{
		Random(rng, RandomConfig{}),
		Random(rng, RandomConfig{MaxBlocks: 10, MaxRefs: 40, MaxComputeMs: 1, RandomPlacement: true}),
		Loop("l", 8, 50, 2),
		Strided("s", 9, 50, 4, 1),
		Repeat(Loop("l", 8, 50, 2), 3),
	} {
		if err := tr.Validate(); err != nil {
			t.Errorf("builder %d: %v", i, err)
		}
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	a := Random(rand.New(rand.NewSource(7)), RandomConfig{})
	b := Random(rand.New(rand.NewSource(7)), RandomConfig{})
	if len(a.Refs) != len(b.Refs) || a.CacheBlocks != b.CacheBlocks {
		t.Fatalf("same seed, different traces: %d/%d refs, %d/%d cache",
			len(a.Refs), len(b.Refs), a.CacheBlocks, b.CacheBlocks)
	}
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
}

func TestRepeatShape(t *testing.T) {
	base := Strided("s", 9, 30, 4, 1)
	tripled := Repeat(base, 3)
	if len(tripled.Refs) != 3*len(base.Refs) {
		t.Fatalf("Repeat(3) has %d refs, want %d", len(tripled.Refs), 3*len(base.Refs))
	}
	if tripled.CacheBlocks != base.CacheBlocks {
		t.Error("Repeat changed the cache size")
	}
	for i, r := range tripled.Refs {
		if r != base.Refs[i%len(base.Refs)] {
			t.Fatalf("ref %d does not repeat the base sequence", i)
		}
	}
}
