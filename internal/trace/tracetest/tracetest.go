// Package tracetest provides the synthetic-trace builders shared by the
// repository's tests and benchmarks: cached bundled traces, seeded
// random traces, and small deterministic patterns for invariant checks.
// It follows the net/http/httptest convention of a test-support package
// next to the package it supports.
package tracetest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ppcsim/internal/layout"
	"ppcsim/internal/trace"
)

var (
	bundledMu sync.Mutex
	bundledBy = map[string]*trace.Trace{}
)

// Bundled returns the named bundled trace (see trace.Names), generating
// it at most once per process. The cached trace is shared: callers must
// not mutate it (Truncate and ScaleCompute copy, so derive instead).
func Bundled(tb testing.TB, name string) *trace.Trace {
	tb.Helper()
	bundledMu.Lock()
	defer bundledMu.Unlock()
	if tr, ok := bundledBy[name]; ok {
		return tr
	}
	tr, err := trace.ByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	bundledBy[name] = tr
	return tr
}

// Truncated returns the first n references of a bundled trace, sharing
// Bundled's generation cache.
func Truncated(tb testing.TB, name string, n int) *trace.Trace {
	tb.Helper()
	return Bundled(tb, name).Truncate(n)
}

// RandomConfig bounds the traces Random draws. Zero fields take the
// defaults noted on each.
type RandomConfig struct {
	MaxBlocks       int     // block-space upper bound (default 64, min 5)
	MaxRefs         int     // reference-count upper bound (default 512, min 30)
	MaxComputeMs    float64 // per-reference compute upper bound (default 5)
	RandomPlacement bool    // also randomize PlaceByFile
}

// Random draws a valid single-file trace from rng: 5..MaxBlocks blocks,
// 30..MaxRefs uniform references, uniform compute times, and a cache
// size from 2 up to a little beyond the block count (so both thrashing
// and fully-cached regimes occur). Deterministic for a given seed.
func Random(rng *rand.Rand, cfg RandomConfig) *trace.Trace {
	if cfg.MaxBlocks < 5 {
		cfg.MaxBlocks = 64
	}
	if cfg.MaxRefs < 30 {
		cfg.MaxRefs = 512
	}
	if cfg.MaxComputeMs <= 0 {
		cfg.MaxComputeMs = 5
	}
	nBlocks := 5 + rng.Intn(cfg.MaxBlocks-4)
	n := 30 + rng.Intn(cfg.MaxRefs-29)
	tr := &trace.Trace{
		Name:        "random",
		Files:       []layout.File{{First: 0, Blocks: nBlocks}},
		CacheBlocks: 2 + rng.Intn(nBlocks+4),
	}
	if cfg.RandomPlacement {
		tr.PlaceByFile = rng.Intn(2) == 0
	}
	for i := 0; i < n; i++ {
		tr.Refs = append(tr.Refs, trace.Ref{
			Block:     layout.BlockID(rng.Intn(nBlocks)),
			ComputeMs: rng.Float64() * cfg.MaxComputeMs,
		})
	}
	return tr
}

// Loop returns a deterministic trace that cycles through nBlocks blocks
// nRefs times with a fixed compute gap — the classic sequential-reuse
// pattern where prefetching shines and cache-size effects are monotone.
func Loop(name string, nBlocks, nRefs int, computeMs float64) *trace.Trace {
	tr := &trace.Trace{
		Name:        name,
		Files:       []layout.File{{First: 0, Blocks: nBlocks}},
		CacheBlocks: nBlocks,
	}
	for i := 0; i < nRefs; i++ {
		tr.Refs = append(tr.Refs, trace.Ref{
			Block:     layout.BlockID(i % nBlocks),
			ComputeMs: computeMs,
		})
	}
	return tr
}

// Strided returns a deterministic trace touching every stride-th block
// of an nBlocks file, wrapping until nRefs references are issued. With a
// stride coprime to nBlocks this visits the whole file in a
// non-sequential order, defeating naive locality.
func Strided(name string, nBlocks, nRefs, stride int, computeMs float64) *trace.Trace {
	tr := &trace.Trace{
		Name:        name,
		Files:       []layout.File{{First: 0, Blocks: nBlocks}},
		CacheBlocks: nBlocks,
	}
	for i := 0; i < nRefs; i++ {
		tr.Refs = append(tr.Refs, trace.Ref{
			Block:     layout.BlockID((i * stride) % nBlocks),
			ComputeMs: computeMs,
		})
	}
	return tr
}

// Repeat returns tr's reference sequence concatenated k times over the
// same file layout and cache size. The metamorphic duplicated-trace
// invariant compares Repeat(tr, 2) against tr.
func Repeat(tr *trace.Trace, k int) *trace.Trace {
	out := &trace.Trace{
		Name:        fmt.Sprintf("%s-x%d", tr.Name, k),
		Files:       append([]layout.File(nil), tr.Files...),
		PlaceByFile: tr.PlaceByFile,
		CacheBlocks: tr.CacheBlocks,
		Refs:        make([]trace.Ref, 0, k*len(tr.Refs)),
	}
	for i := 0; i < k; i++ {
		out.Refs = append(out.Refs, tr.Refs...)
	}
	return out
}
