package trace

import (
	"fmt"
	"io"

	"ppcsim/internal/layout"
)

// Meta is the trace-level description a streaming Source carries: the
// fields of Trace minus the reference slice, plus the total reference
// count. It is everything the engine needs before consuming a single
// reference — block-ID space, placement policy, cache default — so a
// 10^9-reference trace's metadata stays a few hundred bytes.
type Meta struct {
	Name string
	// Files describes the (file, offset) structure, exactly as in
	// Trace.Files: blocks numbered contiguously file by file.
	Files []layout.File
	// PlaceByFile selects the per-file random-start placement.
	PlaceByFile bool
	// CacheBlocks is the trace's default cache size.
	CacheBlocks int
	// Refs is the total number of references the source will yield.
	Refs int64
}

// NumBlocks returns the size of the block-ID space, as Trace.NumBlocks.
func (m Meta) NumBlocks() int {
	n := 0
	for _, f := range m.Files {
		n += f.Blocks
	}
	return n
}

// Layout places the trace's blocks on a disk array, as Trace.Layout.
func (m Meta) Layout(disks int, seed int64) (*layout.Layout, error) {
	if m.PlaceByFile {
		return layout.NewFiles(m.Files, disks, seed)
	}
	return layout.New(m.NumBlocks(), disks)
}

// Validate checks the structural invariants Trace.Validate checks on the
// header fields: contiguous non-empty files and a positive reference
// count. Per-reference invariants (block range, finite compute) are
// checked by the consumer as references stream by.
func (m Meta) Validate() error {
	if m.Refs <= 0 {
		return fmt.Errorf("trace %q: empty", m.Name)
	}
	n := 0
	for i, f := range m.Files {
		if f.Blocks <= 0 {
			return fmt.Errorf("trace %q: file %d has size %d", m.Name, i, f.Blocks)
		}
		if int(f.First) != n {
			return fmt.Errorf("trace %q: file %d not contiguous", m.Name, i)
		}
		n += f.Blocks
	}
	if n == 0 {
		return fmt.Errorf("trace %q: no files", m.Name)
	}
	return nil
}

// Source is a streaming trace: references arrive in order through
// ReadRefs and only a caller-chosen window of them is ever resident.
// It is the abstraction the engine consumes for traces too large to
// materialize — a columnar file, a synthetic generator, or a plain
// *Trace (see Trace.Source).
//
// ReadRefs follows io.Reader conventions: it fills p with the next
// references in trace order, returns how many it wrote, and returns
// io.EOF (possibly alongside n > 0) once the sequence is exhausted.
// The source must yield exactly Meta().Refs references before EOF.
// Reset rewinds to the first reference; sources are single-goroutine.
type Source interface {
	Meta() Meta
	ReadRefs(p []Ref) (int, error)
	Reset() error
}

// sliceSource streams a materialized reference slice.
type sliceSource struct {
	meta Meta
	refs []Ref
	next int
}

// Source returns a streaming view of the trace. The source aliases the
// trace's slices; it never mutates them.
func (t *Trace) Source() Source {
	return &sliceSource{
		meta: Meta{
			Name:        t.Name,
			Files:       t.Files,
			PlaceByFile: t.PlaceByFile,
			CacheBlocks: t.CacheBlocks,
			Refs:        int64(len(t.Refs)),
		},
		refs: t.Refs,
	}
}

func (s *sliceSource) Meta() Meta { return s.meta }

func (s *sliceSource) ReadRefs(p []Ref) (int, error) {
	if s.next >= len(s.refs) {
		return 0, io.EOF
	}
	n := copy(p, s.refs[s.next:])
	s.next += n
	if s.next == len(s.refs) {
		return n, io.EOF
	}
	return n, nil
}

func (s *sliceSource) Reset() error {
	s.next = 0
	return nil
}

// Materialize drains a source into a fully resident *Trace, validating
// the result. It resets the source first, so a partially consumed source
// still materializes completely.
func Materialize(src Source) (*Trace, error) {
	if err := src.Reset(); err != nil {
		return nil, err
	}
	m := src.Meta()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	t := &Trace{
		Name:        m.Name,
		Files:       append([]layout.File(nil), m.Files...),
		PlaceByFile: m.PlaceByFile,
		CacheBlocks: m.CacheBlocks,
		Refs:        make([]Ref, 0, m.Refs),
	}
	buf := make([]Ref, 4096)
	for {
		n, err := src.ReadRefs(buf)
		t.Refs = append(t.Refs, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace %q: source read: %w", m.Name, err)
		}
		if n == 0 {
			return nil, fmt.Errorf("trace %q: source returned no references and no error", m.Name)
		}
	}
	if int64(len(t.Refs)) != m.Refs {
		return nil, fmt.Errorf("trace %q: source yielded %d references, metadata promises %d", m.Name, len(t.Refs), m.Refs)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
