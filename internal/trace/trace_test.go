package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ppcsim/internal/layout"
)

// TestTable3Exact pins every generator to the paper's Table 3 (with the
// postgres compute totals following the self-consistent appendix tables).
func TestTable3Exact(t *testing.T) {
	for _, name := range Names {
		tr, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := PaperStats(name)
		if !ok {
			t.Fatalf("no paper stats for %s", name)
		}
		got := tr.Stats()
		if got.Reads != want.Reads {
			t.Errorf("%s: reads = %d, want %d", name, got.Reads, want.Reads)
		}
		if got.DistinctBlocks != want.DistinctBlocks {
			t.Errorf("%s: distinct = %d, want %d", name, got.DistinctBlocks, want.DistinctBlocks)
		}
		if math.Abs(got.ComputeSec-want.ComputeSec) > 1e-6 {
			t.Errorf("%s: compute = %g, want %g", name, got.ComputeSec, want.ComputeSec)
		}
	}
}

func TestGeneratorsValidAndDeterministic(t *testing.T) {
	for _, name := range Names {
		a, _ := ByName(name)
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _ := ByName(name)
		if len(a.Refs) != len(b.Refs) {
			t.Fatalf("%s: nondeterministic length", name)
		}
		for i := range a.Refs {
			if a.Refs[i] != b.Refs[i] {
				t.Fatalf("%s: nondeterministic ref %d", name, i)
			}
		}
	}
}

func TestCacheSizesPerPaper(t *testing.T) {
	// dinero and cscope1 reference fewer than 1280 distinct blocks; the
	// paper reduces their cache to 512 blocks.
	for _, name := range Names {
		tr, _ := ByName(name)
		want := 1280
		if name == "dinero" || name == "cscope1" {
			want = 512
		}
		if tr.CacheBlocks != want {
			t.Errorf("%s: cache %d, want %d", name, tr.CacheBlocks, want)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown trace should fail")
	}
}

func TestAllOrder(t *testing.T) {
	all := All()
	if len(all) != len(Names) {
		t.Fatalf("All() returned %d traces", len(all))
	}
	for i, tr := range all {
		if tr.Name != Names[i] {
			t.Errorf("All()[%d] = %s, want %s", i, tr.Name, Names[i])
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	orig, _ := ByName("cscope1")
	orig = orig.Truncate(500)
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.PlaceByFile != orig.PlaceByFile || got.CacheBlocks != orig.CacheBlocks {
		t.Fatal("header mismatch")
	}
	if len(got.Files) != len(orig.Files) || len(got.Refs) != len(orig.Refs) {
		t.Fatal("length mismatch")
	}
	for i := range orig.Refs {
		if got.Refs[i].Block != orig.Refs[i].Block {
			t.Fatalf("ref %d block mismatch", i)
		}
		if math.Abs(got.Refs[i].ComputeMs-orig.Refs[i].ComputeMs) > 1e-5 {
			t.Fatalf("ref %d compute mismatch", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage\n",
		"ppctrace x\n",
		"ppctrace x maybe 10\n",
		"ppctrace x true ten\n",
		"ppctrace x true 10\nfile\n",
		"ppctrace x true 10\nfile ten\n",
		"ppctrace x true 10\nfile 1\nr 0\n",
		"ppctrace x true 10\nfile 1\nr zero 1.0\n",
		"ppctrace x true 10\nfile 1\nr 0 fast\n",
		"ppctrace x true 10\nfile 1\nq 0 1\n",
		"ppctrace x true 10\nfile 1\nr 5 1.0\n", // block out of range
		"ppctrace x true 10\n",                  // no files / refs
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	good := &Trace{
		Name:  "t",
		Refs:  []Ref{{Block: 0, ComputeMs: 1}},
		Files: []layout.File{{First: 0, Blocks: 1}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Trace{
		{Name: "empty", Files: []layout.File{{First: 0, Blocks: 1}}},
		{Name: "nofiles", Refs: []Ref{{Block: 0}}},
		{Name: "gap", Refs: []Ref{{Block: 0}}, Files: []layout.File{{First: 1, Blocks: 1}}},
		{Name: "zerofile", Refs: []Ref{{Block: 0}}, Files: []layout.File{{First: 0, Blocks: 0}}},
		{Name: "oob", Refs: []Ref{{Block: 5}}, Files: []layout.File{{First: 0, Blocks: 1}}},
		{Name: "negcompute", Refs: []Ref{{Block: 0, ComputeMs: -1}}, Files: []layout.File{{First: 0, Blocks: 1}}},
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tr.Name)
		}
	}
}

func TestScaleCompute(t *testing.T) {
	tr, _ := ByName("ld")
	half := tr.ScaleCompute(0.5)
	if math.Abs(half.Stats().ComputeSec-tr.Stats().ComputeSec/2) > 1e-9 {
		t.Error("ScaleCompute(0.5) should halve total compute")
	}
	if half.Name != tr.Name || len(half.Refs) != len(tr.Refs) {
		t.Error("ScaleCompute must preserve structure")
	}
	// Original must be untouched.
	want, _ := PaperStats("ld")
	if math.Abs(tr.Stats().ComputeSec-want.ComputeSec) > 1e-6 {
		t.Error("ScaleCompute mutated the original")
	}
}

func TestTruncate(t *testing.T) {
	tr, _ := ByName("synth")
	short := tr.Truncate(100)
	if len(short.Refs) != 100 {
		t.Fatalf("Truncate(100) gave %d refs", len(short.Refs))
	}
	same := tr.Truncate(1 << 30)
	if len(same.Refs) != len(tr.Refs) {
		t.Fatal("Truncate beyond length should keep everything")
	}
}

func TestLayoutsForAllTraces(t *testing.T) {
	for _, name := range Names {
		tr, _ := ByName(name)
		for _, d := range []int{1, 3, 16} {
			l, err := tr.Layout(d, 1)
			if err != nil {
				t.Fatalf("%s d=%d: %v", name, d, err)
			}
			if l.NumBlocks() != tr.NumBlocks() {
				t.Fatalf("%s: layout covers %d blocks, want %d", name, l.NumBlocks(), tr.NumBlocks())
			}
			// Every referenced block must be mapped.
			for _, r := range tr.Refs {
				p := l.Lookup(r.Block)
				if p.Disk < 0 || p.Disk >= d || p.LBN < 0 {
					t.Fatalf("%s: block %d mapped to %+v", name, r.Block, p)
				}
			}
		}
	}
}

// TestAccessPatternShapes spot-checks the qualitative structure the paper
// describes for individual traces.
func TestAccessPatternShapes(t *testing.T) {
	// dinero: one file read sequentially multiple times.
	din, _ := ByName("dinero")
	if len(din.Files) != 1 {
		t.Errorf("dinero should be a single file")
	}
	for i := 0; i < 986*2; i++ {
		if din.Refs[i].Block != layout.BlockID(i%986) {
			t.Fatalf("dinero ref %d = %d, want sequential loop", i, din.Refs[i].Block)
		}
	}

	// glimpse: index blocks (0..246) are accessed far more often than
	// data blocks.
	gl, _ := ByName("glimpse")
	counts := map[bool]int{}
	for _, r := range gl.Refs {
		counts[r.Block < 247]++
	}
	perIndex := float64(counts[true]) / 247
	perData := float64(counts[false]) / 5000
	if perIndex < 10*perData {
		t.Errorf("glimpse index blocks read %.1fx each vs data %.1fx: index should be far hotter", perIndex, perData)
	}

	// cscope3: compute times must be bursty — both ~1ms and ~7ms regimes
	// present in runs.
	cs3, _ := ByName("cscope3")
	var fast, slow int
	for _, r := range cs3.Refs {
		if r.ComputeMs < 2.0 {
			fast++
		}
		if r.ComputeMs > 5.0 {
			slow++
		}
	}
	if fast < len(cs3.Refs)/3 || slow < len(cs3.Refs)/20 {
		t.Errorf("cscope3 compute not bursty: fast=%d slow=%d of %d", fast, slow, len(cs3.Refs))
	}

	// synth: 50 sequential passes over 2000 blocks.
	sy, _ := ByName("synth")
	for i, r := range sy.Refs {
		if r.Block != layout.BlockID(i%2000) {
			t.Fatalf("synth ref %d = %d, want %d", i, r.Block, i%2000)
		}
	}

	// postgres-select: data blocks are visited at most once each (2%
	// selection via a non-clustered index), in scattered physical order.
	ps, _ := ByName("postgres-select")
	seenData := map[layout.BlockID]bool{}
	ascending := 0
	last := layout.BlockID(-1)
	for _, r := range ps.Refs {
		if r.Block >= 85 { // data space starts after the index
			if seenData[r.Block] {
				t.Fatal("postgres-select data block re-read")
			}
			seenData[r.Block] = true
			if r.Block > last {
				ascending++
			}
			last = r.Block
		}
	}
	if ascending > len(seenData)*3/4 {
		t.Errorf("postgres-select data order too sequential: %d/%d ascending steps", ascending, len(seenData))
	}
}

func TestNumBlocks(t *testing.T) {
	tr, _ := ByName("postgres-join")
	if tr.NumBlocks() != 410+100+4096 {
		t.Errorf("postgres-join block space = %d", tr.NumBlocks())
	}
}
