package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"ppcsim/internal/layout"
)

// The columnar binary trace format. Design goals: compact enough that a
// 10^9-reference trace fits on a laptop disk (delta-encoded varint
// columns), streamable front to back with bounded memory (fixed-size
// reference frames), and seekable (a footer index of frame offsets for
// mmap/io.ReaderAt consumers). See docs/trace-format.md for the byte-level
// specification.
//
// Layout:
//
//	magic "ppccolv1"
//	header:  uvarint len(name) + name bytes
//	         1 byte placeByFile (0/1)
//	         uvarint cacheBlocks
//	         uvarint file count, then per file: uvarint blocks
//	         uvarint reference count
//	frames:  each holds up to frameRefs references:
//	         uvarint count, uvarint payload length, payload:
//	           1 flags byte (bit 0: write bitmap present)
//	           count x signed varint block-ID delta (previous starts at 0)
//	           count x uvarint XOR of float64 compute bits (previous starts at 0)
//	           [flags&1] ceil(count/8) bitmap bytes, LSB first
//	footer:  uvarint frame count
//	         frame offsets: first absolute uvarint, then uvarint deltas
//	         uvarint reference count (echo)
//	trailer: 8-byte little-endian footer offset + magic "ppccend1"
const (
	columnarMagic    = "ppccolv1"
	columnarEndMagic = "ppccend1"

	// frameRefs is the fixed frame capacity. 8192 references decode into
	// ~200 KiB resident per open source, and frames stay small enough
	// that a seek-and-scan lands within one readahead.
	frameRefs = 8192

	// Decoder hardening bounds: nothing a well-formed file exceeds, so a
	// hostile header cannot induce huge allocations.
	maxNameLen      = 1 << 16
	maxFiles        = 1 << 20
	maxBlockSpace   = 1 << 31
	maxFramePayload = 1 + frameRefs*(binary.MaxVarintLen64*2) + frameRefs/8 + 1
)

// ColumnarBase64Prefix is the first eight characters of any
// base64(std)-encoded columnar trace: the encoding of the magic's first
// six bytes "ppccol". JSON boundaries that carry traces as strings sniff
// this prefix to tell a base64 columnar body from ppctrace text (no text
// trace starts with it — text headers start with "ppctrace ").
const ColumnarBase64Prefix = "cHBjY29s"

// IsColumnar reports whether data begins with the columnar magic.
func IsColumnar(data []byte) bool {
	return len(data) >= len(columnarMagic) && string(data[:len(columnarMagic)]) == columnarMagic
}

// countingWriter tracks bytes written through a buffered writer and
// latches the first error so encoding code can skip per-call checks.
type countingWriter struct {
	bw  *bufio.Writer
	n   int64
	err error
	tmp [binary.MaxVarintLen64]byte
}

func (w *countingWriter) bytes(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.bw.Write(p)
	w.n += int64(n)
	w.err = err
}

func (w *countingWriter) byte(c byte) {
	if w.err != nil {
		return
	}
	w.err = w.bw.WriteByte(c)
	if w.err == nil {
		w.n++
	}
}

func (w *countingWriter) uvarint(v uint64) {
	w.bytes(w.tmp[:binary.PutUvarint(w.tmp[:], v)])
}

// WriteColumnar encodes a source's trace in the columnar binary format,
// returning the number of bytes written. The source is reset first and
// fully drained; per-reference invariants (block range, finite compute)
// are enforced during encoding so no invalid trace can be serialized.
func WriteColumnar(w io.Writer, src Source) (int64, error) {
	if err := src.Reset(); err != nil {
		return 0, err
	}
	m := src.Meta()
	if err := m.Validate(); err != nil {
		return 0, err
	}
	nBlocks := m.NumBlocks()
	cw := &countingWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	cw.bytes([]byte(columnarMagic))
	cw.uvarint(uint64(len(m.Name)))
	cw.bytes([]byte(m.Name))
	pb := byte(0)
	if m.PlaceByFile {
		pb = 1
	}
	cw.byte(pb)
	cw.uvarint(uint64(m.CacheBlocks))
	cw.uvarint(uint64(len(m.Files)))
	for _, f := range m.Files {
		cw.uvarint(uint64(f.Blocks))
	}
	cw.uvarint(uint64(m.Refs))

	var offsets []int64
	frame := make([]Ref, 0, frameRefs)
	var payload []byte
	buf := make([]Ref, 4096)
	var total int64
	flush := func() {
		if len(frame) == 0 {
			return
		}
		offsets = append(offsets, cw.n)
		payload = encodeFrame(payload[:0], frame)
		cw.uvarint(uint64(len(frame)))
		cw.uvarint(uint64(len(payload)))
		cw.bytes(payload)
		frame = frame[:0]
	}
	for {
		n, err := src.ReadRefs(buf)
		for _, r := range buf[:n] {
			if int(r.Block) < 0 || int(r.Block) >= nBlocks {
				return cw.n, fmt.Errorf("trace %q: ref %d block %d out of range [0,%d)", m.Name, total, r.Block, nBlocks)
			}
			if cerr := validCompute(r.ComputeMs); cerr != nil {
				return cw.n, fmt.Errorf("trace %q: ref %d: %v", m.Name, total, cerr)
			}
			total++
			frame = append(frame, r)
			if len(frame) == frameRefs {
				flush()
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return cw.n, fmt.Errorf("trace %q: source read: %w", m.Name, err)
		}
		if n == 0 {
			return cw.n, fmt.Errorf("trace %q: source returned no references and no error", m.Name)
		}
	}
	if total != m.Refs {
		return cw.n, fmt.Errorf("trace %q: source yielded %d references, metadata promises %d", m.Name, total, m.Refs)
	}
	flush()

	footerOff := cw.n
	cw.uvarint(uint64(len(offsets)))
	prev := int64(0)
	for _, off := range offsets {
		cw.uvarint(uint64(off - prev))
		prev = off
	}
	cw.uvarint(uint64(m.Refs))
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], uint64(footerOff))
	cw.bytes(trailer[:])
	cw.bytes([]byte(columnarEndMagic))
	if cw.err == nil {
		cw.err = cw.bw.Flush()
	}
	return cw.n, cw.err
}

// encodeFrame appends one frame's payload to dst: flags byte, block-ID
// delta column, compute-bits XOR column, optional write bitmap.
func encodeFrame(dst []byte, refs []Ref) []byte {
	var tmp [binary.MaxVarintLen64]byte
	hasWrites := false
	for _, r := range refs {
		if r.Write {
			hasWrites = true
			break
		}
	}
	flags := byte(0)
	if hasWrites {
		flags = 1
	}
	dst = append(dst, flags)
	prevB := int64(0)
	for _, r := range refs {
		b := int64(r.Block)
		dst = append(dst, tmp[:binary.PutVarint(tmp[:], b-prevB)]...)
		prevB = b
	}
	prevBits := uint64(0)
	for _, r := range refs {
		bits := math.Float64bits(r.ComputeMs)
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], bits^prevBits)]...)
		prevBits = bits
	}
	if hasWrites {
		nb := (len(refs) + 7) / 8
		start := len(dst)
		dst = append(dst, make([]byte, nb)...)
		for i, r := range refs {
			if r.Write {
				dst[start+i/8] |= 1 << (i % 8)
			}
		}
	}
	return dst
}

// readColumnarHeader parses the magic and header from br, returning the
// trace metadata.
func readColumnarHeader(br *bufio.Reader) (Meta, error) {
	var m Meta
	magic := make([]byte, len(columnarMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != columnarMagic {
		return m, fmt.Errorf("trace: not a columnar trace (bad magic)")
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen > maxNameLen {
		return m, fmt.Errorf("trace: bad columnar name length")
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return m, fmt.Errorf("trace: truncated columnar name")
	}
	m.Name = string(name)
	pb, err := br.ReadByte()
	if err != nil || pb > 1 {
		return m, fmt.Errorf("trace: bad columnar placeByFile byte")
	}
	m.PlaceByFile = pb == 1
	cb, err := binary.ReadUvarint(br)
	if err != nil || cb > maxBlockSpace {
		return m, fmt.Errorf("trace: bad columnar cacheBlocks")
	}
	m.CacheBlocks = int(cb)
	nFiles, err := binary.ReadUvarint(br)
	if err != nil || nFiles == 0 || nFiles > maxFiles {
		return m, fmt.Errorf("trace: bad columnar file count %d", nFiles)
	}
	m.Files = make([]layout.File, nFiles)
	next := uint64(0)
	for i := range m.Files {
		fb, err := binary.ReadUvarint(br)
		if err != nil || fb == 0 || next+fb > maxBlockSpace {
			return m, fmt.Errorf("trace: bad columnar file %d size", i)
		}
		m.Files[i] = layout.File{First: layout.BlockID(next), Blocks: int(fb)}
		next += fb
	}
	refs, err := binary.ReadUvarint(br)
	if err != nil || refs == 0 || refs > math.MaxInt64 {
		return m, fmt.Errorf("trace: bad columnar reference count")
	}
	m.Refs = int64(refs)
	return m, nil
}

// decodeFrame reads one frame from br into out (reusing its backing
// array) and returns the decoded references plus the payload scratch
// buffer. remaining bounds the legal frame size; nBlocks bounds block IDs.
//
//ppcvet:hotpath
func decodeFrame(br *bufio.Reader, nBlocks int, remaining int64, payload []byte, out []Ref) ([]Ref, []byte, error) {
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return out, payload, fmt.Errorf("trace: truncated columnar frame header")
	}
	if count == 0 || count > frameRefs || int64(count) > remaining {
		return out, payload, fmt.Errorf("trace: columnar frame count %d out of range", count)
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil || plen == 0 || plen > maxFramePayload {
		return out, payload, fmt.Errorf("trace: bad columnar frame payload length")
	}
	if uint64(cap(payload)) < plen {
		payload = make([]byte, plen)
	}
	payload = payload[:plen]
	if _, err := io.ReadFull(br, payload); err != nil {
		return out, payload, fmt.Errorf("trace: truncated columnar frame payload")
	}
	flags := payload[0]
	if flags&^1 != 0 {
		return out, payload, fmt.Errorf("trace: unknown columnar frame flags %#x", flags)
	}
	rest := payload[1:]
	out = out[:0]
	prevB := int64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Varint(rest)
		if n <= 0 {
			return out, payload, fmt.Errorf("trace: bad columnar block delta")
		}
		rest = rest[n:]
		prevB += d
		if prevB < 0 || prevB >= int64(nBlocks) {
			return out, payload, fmt.Errorf("trace: columnar block %d out of range [0,%d)", prevB, nBlocks)
		}
		out = append(out, Ref{Block: layout.BlockID(prevB)})
	}
	prevBits := uint64(0)
	for i := range out {
		x, n := binary.Uvarint(rest)
		if n <= 0 {
			return out, payload, fmt.Errorf("trace: bad columnar compute delta")
		}
		rest = rest[n:]
		prevBits ^= x
		c := math.Float64frombits(prevBits)
		if cerr := validCompute(c); cerr != nil {
			return out, payload, fmt.Errorf("trace: columnar ref: %v", cerr)
		}
		out[i].ComputeMs = c
	}
	if flags&1 != 0 {
		nb := (len(out) + 7) / 8
		if len(rest) < nb {
			return out, payload, fmt.Errorf("trace: truncated columnar write bitmap")
		}
		for i := range out {
			out[i].Write = rest[i/8]>>(i%8)&1 == 1
		}
		rest = rest[nb:]
	}
	if len(rest) != 0 {
		return out, payload, fmt.Errorf("trace: %d trailing bytes in columnar frame", len(rest))
	}
	return out, payload, nil
}

// countingReader counts consumed bytes so header parsing can locate the
// first frame under a bufio.Reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ColumnarSource streams references out of a columnar trace held by any
// io.ReadSeeker (a file, a bytes.Reader over an mmap'd region). At most
// one frame (~8K references) is resident at a time, so memory use is
// independent of trace length. It implements Source.
type ColumnarSource struct {
	rs        io.ReadSeeker
	cr        *countingReader
	br        *bufio.Reader
	meta      Meta
	nBlocks   int
	dataOff   int64
	remaining int64
	frame     []Ref
	fpos      int
	payload   []byte
}

// NewColumnarSource parses the header at the start of rs and returns a
// streaming source positioned at the first reference.
func NewColumnarSource(rs io.ReadSeeker) (*ColumnarSource, error) {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	cr := &countingReader{r: rs}
	br := bufio.NewReaderSize(cr, 1<<16)
	m, err := readColumnarHeader(br)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := &ColumnarSource{
		rs:        rs,
		cr:        cr,
		br:        br,
		meta:      m,
		nBlocks:   m.NumBlocks(),
		dataOff:   cr.n - int64(br.Buffered()),
		remaining: m.Refs,
		frame:     make([]Ref, 0, frameRefs),
	}
	return s, nil
}

// Meta implements Source.
func (s *ColumnarSource) Meta() Meta { return s.meta }

// ReadRefs implements Source.
func (s *ColumnarSource) ReadRefs(p []Ref) (int, error) {
	if s.fpos == len(s.frame) {
		if s.remaining == 0 {
			return 0, io.EOF
		}
		var err error
		s.frame, s.payload, err = decodeFrame(s.br, s.nBlocks, s.remaining, s.payload, s.frame)
		if err != nil {
			return 0, err
		}
		s.fpos = 0
		s.remaining -= int64(len(s.frame))
	}
	n := copy(p, s.frame[s.fpos:])
	s.fpos += n
	if s.fpos == len(s.frame) && s.remaining == 0 {
		return n, io.EOF
	}
	return n, nil
}

// Reset implements Source: rewind to the first reference.
func (s *ColumnarSource) Reset() error {
	if _, err := s.rs.Seek(s.dataOff, io.SeekStart); err != nil {
		return err
	}
	s.cr.n = s.dataOff
	s.br.Reset(s.cr)
	s.remaining = s.meta.Refs
	s.frame = s.frame[:0]
	s.fpos = 0
	return nil
}

// FileSource is a ColumnarSource over an open file.
type FileSource struct {
	*ColumnarSource
	f *os.File
}

// OpenColumnarFile opens a columnar trace file as a streaming source.
func OpenColumnarFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := NewColumnarSource(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSource{ColumnarSource: src, f: f}, nil
}

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// ReadColumnar decodes a whole columnar trace from r into a materialized
// *Trace. It reads the header and frames sequentially (the footer index
// is for seeking consumers and is not required here) and validates the
// result exactly as Read does for the text format.
func ReadColumnar(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	m, err := readColumnarHeader(br)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	nBlocks := m.NumBlocks()
	capHint := m.Refs
	if capHint > 1<<20 {
		// Don't trust a hostile header with a huge allocation; grow as
		// frames actually arrive.
		capHint = 1 << 20
	}
	t := &Trace{
		Name:        m.Name,
		Files:       m.Files,
		PlaceByFile: m.PlaceByFile,
		CacheBlocks: m.CacheBlocks,
		Refs:        make([]Ref, 0, capHint),
	}
	remaining := m.Refs
	var frame []Ref
	var payload []byte
	for remaining > 0 {
		frame, payload, err = decodeFrame(br, nBlocks, remaining, payload, frame)
		if err != nil {
			return nil, err
		}
		t.Refs = append(t.Refs, frame...)
		remaining -= int64(len(frame))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ColumnarInfo summarizes a columnar trace file without decoding its
// references: the header metadata plus the footer's frame index.
type ColumnarInfo struct {
	Meta Meta
	// Frames is the number of reference frames.
	Frames int
	// FrameOffsets are the absolute file offsets of each frame.
	FrameOffsets []int64
	// DataBytes is the total file size.
	DataBytes int64
}

// InspectColumnar reads the header and footer of a columnar trace
// through an io.ReaderAt of the given size — the access pattern an mmap
// consumer uses: two point reads, no sequential scan.
func InspectColumnar(r io.ReaderAt, size int64) (*ColumnarInfo, error) {
	const trailerLen = 8 + len(columnarEndMagic)
	if size < int64(len(columnarMagic)+trailerLen) {
		return nil, fmt.Errorf("trace: columnar file too short (%d bytes)", size)
	}
	var trailer [trailerLen]byte
	if _, err := r.ReadAt(trailer[:], size-int64(trailerLen)); err != nil {
		return nil, err
	}
	if string(trailer[8:]) != columnarEndMagic {
		return nil, fmt.Errorf("trace: bad columnar end magic")
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if footerOff <= 0 || footerOff >= size-int64(trailerLen) {
		return nil, fmt.Errorf("trace: columnar footer offset %d out of range", footerOff)
	}

	hr := bufio.NewReaderSize(io.NewSectionReader(r, 0, size), 1<<12)
	m, err := readColumnarHeader(hr)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}

	fr := bufio.NewReaderSize(io.NewSectionReader(r, footerOff, size-int64(trailerLen)-footerOff), 1<<12)
	nFrames, err := binary.ReadUvarint(fr)
	if err != nil || nFrames > uint64(size) {
		return nil, fmt.Errorf("trace: bad columnar footer frame count")
	}
	offsets := make([]int64, nFrames)
	prev := int64(0)
	for i := range offsets {
		d, err := binary.ReadUvarint(fr)
		if err != nil {
			return nil, fmt.Errorf("trace: truncated columnar footer")
		}
		prev += int64(d)
		if prev <= 0 || prev >= footerOff {
			return nil, fmt.Errorf("trace: columnar frame offset %d out of range", prev)
		}
		offsets[i] = prev
	}
	refs, err := binary.ReadUvarint(fr)
	if err != nil || int64(refs) != m.Refs {
		return nil, fmt.Errorf("trace: columnar footer reference count disagrees with header")
	}
	return &ColumnarInfo{Meta: m, Frames: int(nFrames), FrameOffsets: offsets, DataBytes: size}, nil
}
