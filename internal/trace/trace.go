// Package trace defines the file-access traces that drive the simulation
// and provides synthetic generators reproducing the nine application
// traces and one synthetic trace of the paper (Table 3): each generator
// matches the paper's read count, distinct-block count, and total compute
// time exactly, and follows the qualitative access pattern the paper
// describes for the application (section 3.1).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"unicode"

	"ppcsim/internal/layout"
)

// Ref is a single traced access: the block referenced and the process
// compute time (in milliseconds) that preceded the reference. The paper's
// traces are read-only; Write marks the optional write-behind extension's
// update accesses, which never stall the process.
type Ref struct {
	Block     layout.BlockID
	ComputeMs float64
	Write     bool
}

// Trace is a sequence of read references of a single execution thread,
// with the measured inter-reference compute times, as collected on the
// paper's DECstation 5000/200.
type Trace struct {
	Name string
	Refs []Ref
	// Files describes the (file, offset) structure of the trace for data
	// placement: blocks are numbered contiguously file by file. Traces
	// that referenced logical file-system block numbers directly have a
	// single File covering all blocks and PlaceByFile false.
	Files []layout.File
	// PlaceByFile selects the per-file random-start placement of the
	// paper for (file, offset) traces; when false the block number is
	// used as the logical block number directly.
	PlaceByFile bool
	// CacheBlocks is the cache size the paper uses for this trace
	// (512 blocks for dinero and cscope1, 1280 otherwise).
	CacheBlocks int
}

// Stats summarizes a trace as in Table 3 of the paper. Writes (the
// write-behind extension) are counted separately; DistinctBlocks counts
// blocks that are read, as the paper does.
type Stats struct {
	Reads          int
	Writes         int
	DistinctBlocks int
	ComputeSec     float64
}

// Stats computes the Table 3 summary of the trace.
func (t *Trace) Stats() Stats {
	seen := make(map[layout.BlockID]struct{}, len(t.Refs))
	total := 0.0
	writes := 0
	for _, r := range t.Refs {
		if r.Write {
			writes++
		} else {
			seen[r.Block] = struct{}{}
		}
		total += r.ComputeMs
	}
	return Stats{
		Reads:          len(t.Refs) - writes,
		Writes:         writes,
		DistinctBlocks: len(seen),
		ComputeSec:     total / 1000.0,
	}
}

// NumBlocks returns the number of distinct block IDs the trace's files
// cover (the block ID space, which generators keep dense).
func (t *Trace) NumBlocks() int {
	n := 0
	for _, f := range t.Files {
		n += f.Blocks
	}
	return n
}

// Layout places the trace's blocks on a disk array of the given size,
// using the paper's placement policy for this trace kind.
func (t *Trace) Layout(disks int, seed int64) (*layout.Layout, error) {
	if t.PlaceByFile {
		return layout.NewFiles(t.Files, disks, seed)
	}
	return layout.New(t.NumBlocks(), disks)
}

// ScaleCompute returns a copy of the trace with every compute time
// multiplied by factor. The paper's double-speed-CPU experiments use
// factor 0.5.
func (t *Trace) ScaleCompute(factor float64) *Trace {
	out := &Trace{
		Name:        t.Name,
		Refs:        make([]Ref, len(t.Refs)),
		Files:       append([]layout.File(nil), t.Files...),
		PlaceByFile: t.PlaceByFile,
		CacheBlocks: t.CacheBlocks,
	}
	for i, r := range t.Refs {
		out.Refs[i] = Ref{Block: r.Block, ComputeMs: r.ComputeMs * factor, Write: r.Write}
	}
	return out
}

// Truncate returns a copy containing only the first n references (or the
// whole trace if n >= len; an empty copy if n < 0). Used by tests and
// benches to run scaled-down configurations.
func (t *Trace) Truncate(n int) *Trace {
	if n < 0 {
		n = 0
	}
	if n > len(t.Refs) {
		n = len(t.Refs)
	}
	out := &Trace{
		Name:        t.Name,
		Refs:        append([]Ref(nil), t.Refs[:n]...),
		Files:       append([]layout.File(nil), t.Files...),
		PlaceByFile: t.PlaceByFile,
		CacheBlocks: t.CacheBlocks,
	}
	return out
}

// Validate checks structural invariants: non-empty, block IDs within the
// file space, non-negative compute times, contiguous files.
func (t *Trace) Validate() error {
	if len(t.Refs) == 0 {
		return fmt.Errorf("trace %q: empty", t.Name)
	}
	n := 0
	for i, f := range t.Files {
		if f.Blocks <= 0 {
			return fmt.Errorf("trace %q: file %d has size %d", t.Name, i, f.Blocks)
		}
		if int(f.First) != n {
			return fmt.Errorf("trace %q: file %d not contiguous", t.Name, i)
		}
		n += f.Blocks
	}
	if n == 0 {
		return fmt.Errorf("trace %q: no files", t.Name)
	}
	total := 0.0
	for i, r := range t.Refs {
		if int(r.Block) < 0 || int(r.Block) >= n {
			return fmt.Errorf("trace %q: ref %d block %d out of range [0,%d)", t.Name, i, r.Block, n)
		}
		if err := validCompute(r.ComputeMs); err != nil {
			return fmt.Errorf("trace %q: ref %d: %v", t.Name, i, err)
		}
		total += r.ComputeMs
	}
	if math.IsInf(total, 0) {
		return fmt.Errorf("trace %q: total compute overflows to %g", t.Name, total)
	}
	return nil
}

// validCompute rejects the compute times no reference may carry: negative
// values, NaN, and infinities. strconv.ParseFloat happily parses "NaN"
// and "Inf" tokens and `x < 0` is false for NaN, so without this check a
// corrupt trace file flows NaN into every engine metric.
func validCompute(ms float64) error {
	if math.IsNaN(ms) || math.IsInf(ms, 0) {
		return fmt.Errorf("non-finite compute %g", ms)
	}
	if ms < 0 {
		return fmt.Errorf("negative compute %g", ms)
	}
	return nil
}

// Write serializes the trace in a line-oriented text format:
//
//	ppctrace <name> <placeByFile> <cacheBlocks>
//	file <blocks>         (one per file)
//	r <block> <computeMs> (one per read)
//	w <block> <computeMs> (one per write)
//
// Names containing whitespace, quotes, or non-printable characters are
// written Go-quoted, so every name round-trips through Read (an unescaped
// `my trace` would split into two header fields; a newline would inject
// arbitrary lines).
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := t.Name
	if needsQuoting(name) {
		name = strconv.Quote(name)
	}
	fmt.Fprintf(bw, "ppctrace %s %t %d\n", name, t.PlaceByFile, t.CacheBlocks)
	for _, f := range t.Files {
		fmt.Fprintf(bw, "file %d\n", f.Blocks)
	}
	for _, r := range t.Refs {
		tag := "r"
		if r.Write {
			tag = "w"
		}
		fmt.Fprintf(bw, "%s %d %.6f\n", tag, r.Block, r.ComputeMs)
	}
	return bw.Flush()
}

// needsQuoting reports whether a trace name would not survive the text
// header unescaped: empty, leading quote (would be mistaken for a quoted
// name), whitespace (splits the field), or non-printable characters.
func needsQuoting(name string) bool {
	if name == "" || name[0] == '"' {
		return true
	}
	for _, r := range name {
		if unicode.IsSpace(r) || !strconv.IsPrint(r) {
			return true
		}
	}
	return false
}

// parseHeader splits the `ppctrace <name> <placeByFile> <cacheBlocks>`
// line, accepting both bare and Go-quoted names.
func parseHeader(line string) (name string, rest []string, err error) {
	const prefix = "ppctrace "
	if !strings.HasPrefix(line, prefix) {
		return "", nil, fmt.Errorf("trace: bad header %q", line)
	}
	tail := line[len(prefix):]
	tail = strings.TrimLeft(tail, " \t")
	if strings.HasPrefix(tail, `"`) {
		q, qerr := strconv.QuotedPrefix(tail)
		if qerr != nil {
			return "", nil, fmt.Errorf("trace: bad quoted name in header %q", line)
		}
		if name, err = strconv.Unquote(q); err != nil {
			return "", nil, fmt.Errorf("trace: bad quoted name in header %q", line)
		}
		rest = strings.Fields(tail[len(q):])
	} else {
		f := strings.Fields(tail)
		if len(f) == 0 {
			return "", nil, fmt.Errorf("trace: bad header %q", line)
		}
		name, rest = f[0], f[1:]
	}
	if len(rest) != 2 {
		return "", nil, fmt.Errorf("trace: bad header %q", line)
	}
	return name, rest, nil
}

// Read parses a trace previously serialized with Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	name, head, err := parseHeader(sc.Text())
	if err != nil {
		return nil, err
	}
	t := &Trace{Name: name}
	if t.PlaceByFile, err = strconv.ParseBool(head[0]); err != nil {
		return nil, fmt.Errorf("trace: bad placeByFile: %v", err)
	}
	if t.CacheBlocks, err = strconv.Atoi(head[1]); err != nil {
		return nil, fmt.Errorf("trace: bad cacheBlocks: %v", err)
	}
	next := 0
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "file":
			if len(f) != 2 {
				return nil, fmt.Errorf("trace: bad file line %q", sc.Text())
			}
			n, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("trace: bad file size: %v", err)
			}
			t.Files = append(t.Files, layout.File{First: layout.BlockID(next), Blocks: n})
			next += n
		case "r", "w":
			if len(f) != 3 {
				return nil, fmt.Errorf("trace: bad ref line %q", sc.Text())
			}
			b, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("trace: bad block: %v", err)
			}
			c, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: bad compute: %v", err)
			}
			t.Refs = append(t.Refs, Ref{Block: layout.BlockID(b), ComputeMs: c, Write: f[0] == "w"})
		default:
			return nil, fmt.Errorf("trace: unknown line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
