package trace

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"ppcsim/internal/layout"
)

// The generators below synthesize the ten traces of the paper. Each one
// matches Table 3 exactly (read count, distinct blocks, total compute
// time) and follows the access structure section 3.1 describes. The
// original DECstation traces are not available; DESIGN.md section 4
// documents this substitution.

// Target totals from Table 3 of the paper.
const (
	dineroReads, dineroDistinct         = 8867, 986
	cscope1Reads, cscope1Distinct       = 8673, 1073
	cscope2Reads, cscope2Distinct       = 20206, 2462
	cscope3Reads, cscope3Distinct       = 30200, 3910
	glimpseReads, glimpseDistinct       = 27981, 5247
	ldReads, ldDistinct                 = 5881, 2882
	pgJoinReads, pgJoinDistinct         = 8896, 3793
	pgSelectReads, pgSelectDistinct     = 5044, 3085
	xdsReads, xdsDistinct               = 10435, 5392
	synthReads, synthDistinct           = 100000, 2000
	dineroComputeSec                    = 103.5
	cscope1ComputeSec                   = 24.9
	cscope2ComputeSec                   = 37.1
	cscope3ComputeSec                   = 74.1
	glimpseComputeSec                   = 38.7
	ldComputeSec                        = 8.2
	pgJoinComputeSec                    = 79.2
	pgSelectComputeSec                  = 11.5
	xdsComputeSec                       = 30.8
	synthComputeSec                     = 99.9
	defaultCacheBlocks, smallCacheBlock = 1280, 512
)

// builder accumulates references and per-reference compute weights; the
// weights are scaled at the end so total compute matches the target.
type builder struct {
	refs    []Ref
	weights []float64
	rng     *rand.Rand
}

func newBuilder(capacity int, seed int64) *builder {
	return &builder{
		refs:    make([]Ref, 0, capacity),
		weights: make([]float64, 0, capacity),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// add appends a reference with the given relative compute weight.
func (b *builder) add(block int, weight float64) {
	b.refs = append(b.refs, Ref{Block: layout.BlockID(block)})
	b.weights = append(b.weights, weight)
}

// noisy returns a weight of 1 with mild multiplicative noise, modeling the
// natural variation of measured inter-reference CPU times.
func (b *builder) noisy() float64 {
	return 0.5 + b.rng.Float64() // uniform in [0.5, 1.5)
}

// finish normalizes weights so total compute equals computeSec and
// returns the trace.
func (b *builder) finish(name string, files []layout.File, byFile bool, cacheBlocks int, computeSec float64) *Trace {
	sum := 0.0
	for _, w := range b.weights {
		sum += w
	}
	scale := computeSec * 1000.0 / sum
	for i := range b.refs {
		b.refs[i].ComputeMs = b.weights[i] * scale
	}
	t := &Trace{
		Name:        name,
		Refs:        b.refs,
		Files:       files,
		PlaceByFile: byFile,
		CacheBlocks: cacheBlocks,
	}
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("trace generator %s produced invalid trace: %v", name, err))
	}
	return t
}

// splitFiles partitions n blocks into roughly count files of varying size,
// returning contiguous layout.Files.
func splitFiles(n, count int, rng *rand.Rand) []layout.File {
	if count > n {
		count = n
	}
	// Random positive sizes summing to n: draw count-1 distinct cut points.
	cuts := map[int]struct{}{}
	for len(cuts) < count-1 {
		cuts[1+rng.Intn(n-1)] = struct{}{}
	}
	points := make([]int, 0, count+1)
	points = append(points, 0)
	for c := range cuts {
		points = append(points, c)
	}
	points = append(points, n)
	sort.Ints(points)
	files := make([]layout.File, 0, count)
	for i := 0; i+1 < len(points); i++ {
		files = append(files, layout.File{
			First:  layout.BlockID(points[i]),
			Blocks: points[i+1] - points[i],
		})
	}
	return files
}

// sequentialPasses emits `full` complete sequential passes over blocks
// [0, n) followed by a partial pass of `extra` references.
func sequentialPasses(b *builder, n, full, extra int) {
	for p := 0; p < full; p++ {
		for i := 0; i < n; i++ {
			b.add(i, b.noisy())
		}
	}
	for i := 0; i < extra; i++ {
		b.add(i, b.noisy())
	}
}

// Dinero generates the dinero trace: a cache simulator that reads one
// file sequentially multiple times (8867 reads of 986 distinct blocks,
// 103.5 s of compute).
func Dinero() *Trace {
	b := newBuilder(dineroReads, 101)
	full := dineroReads / dineroDistinct
	sequentialPasses(b, dineroDistinct, full, dineroReads-full*dineroDistinct)
	files := []layout.File{{First: 0, Blocks: dineroDistinct}}
	return b.finish("dinero", files, true, smallCacheBlock, dineroComputeSec)
}

// Cscope1 generates the cscope1 trace: an interactive C-source examination
// tool searching for eight symbols, reading multiple files sequentially
// multiple times.
func Cscope1() *Trace {
	b := newBuilder(cscope1Reads, 102)
	full := cscope1Reads / cscope1Distinct
	sequentialPasses(b, cscope1Distinct, full, cscope1Reads-full*cscope1Distinct)
	files := splitFiles(cscope1Distinct, 14, b.rng)
	return b.finish("cscope1", files, true, smallCacheBlock, cscope1ComputeSec)
}

// Cscope2 generates the cscope2 trace: four text-string searches over an
// 18 MB software package.
func Cscope2() *Trace {
	b := newBuilder(cscope2Reads, 103)
	full := cscope2Reads / cscope2Distinct
	sequentialPasses(b, cscope2Distinct, full, cscope2Reads-full*cscope2Distinct)
	files := splitFiles(cscope2Distinct, 40, b.rng)
	return b.finish("cscope2", files, true, defaultCacheBlocks, cscope2ComputeSec)
}

// Cscope3 generates the cscope3 trace: four text-string searches over a
// 10 MB package. Its inter-reference compute times are bursty — runs near
// 1 ms interspersed with runs near 7 ms — which section 4.3 of the paper
// identifies as the cause of reverse aggressive's poor single-disk
// performance on this trace.
func Cscope3() *Trace {
	b := newBuilder(cscope3Reads, 104)
	full := cscope3Reads / cscope3Distinct
	total := full*cscope3Distinct + (cscope3Reads - full*cscope3Distinct)
	// Emit the reference stream first with unit weights, then overwrite
	// the weights with bursty 1 ms / 7 ms runs.
	sequentialPasses(b, cscope3Distinct, full, cscope3Reads-full*cscope3Distinct)
	// Fraction of references in the fast (1 ms) regime so the mean comes
	// out near the Table 3 total: mean = p*1 + (1-p)*7.
	mean := cscope3ComputeSec * 1000 / float64(total)
	p := (7 - mean) / 6
	fast := true
	runLeft := 0
	for i := range b.weights {
		if runLeft == 0 {
			// Geometric run lengths, mean ~60 references, biased so the
			// overall time split matches p.
			if b.rng.Float64() < p {
				fast = true
			} else {
				fast = false
			}
			runLeft = 30 + b.rng.Intn(60)
		}
		runLeft--
		w := 7.0
		if fast {
			w = 1.0
		}
		b.weights[i] = w * (0.9 + 0.2*b.rng.Float64())
	}
	files := splitFiles(cscope3Distinct, 30, b.rng)
	return b.finish("cscope3", files, true, defaultCacheBlocks, cscope3ComputeSec)
}

// Glimpse generates the glimpse trace: a text-retrieval system searching
// for four keywords. The small approximate index files are accessed
// repeatedly; the data files are read in short sequential runs, with a
// hot region of articles revisited by every search (so cache size
// matters, as in the paper's appendix-D experiments) and the rest read
// once.
func Glimpse() *Trace {
	const (
		indexBlocks = 247
		dataBlocks  = glimpseDistinct - indexBlocks // 5000
		searches    = 4
		hotBlocks   = 1500 // data region re-read by searches 2..4
		dataRun     = 8
	)
	b := newBuilder(glimpseReads, 105)
	// Build the data-read sequence: each search reads its quarter of the
	// data fresh; searches after the first also rescan the hot region.
	perSearch := dataBlocks / searches // 1250
	var dataSeq []int
	for s := 0; s < searches; s++ {
		lo := s * perSearch
		hi := lo + perSearch
		if s == searches-1 {
			hi = dataBlocks
		}
		if s > 0 {
			// Interleave the hot rescan with this search's fresh reads so
			// re-references are spread through the search.
			fresh := hi - lo
			hs, fs := 0, 0
			for hs < hotBlocks || fs < fresh {
				for j := 0; j < dataRun && hs < hotBlocks; j++ {
					dataSeq = append(dataSeq, hs)
					hs++
				}
				for j := 0; j < dataRun && fs < fresh; j++ {
					dataSeq = append(dataSeq, lo+fs)
					fs++
				}
			}
		} else {
			for d := lo; d < hi; d++ {
				dataSeq = append(dataSeq, d)
			}
		}
	}
	indexReads := glimpseReads - len(dataSeq)
	// Interleave: cycle sequentially over the index; after the right
	// number of index reads, emit a short sequential run of data blocks.
	emitted := 0
	acc := 0.0
	perIndex := float64(len(dataSeq)) / float64(indexReads)
	for i := 0; i < indexReads; i++ {
		b.add(i%indexBlocks, b.noisy())
		acc += perIndex
		if acc >= float64(dataRun) || (i == indexReads-1 && emitted < len(dataSeq)) {
			run := int(acc)
			if i == indexReads-1 {
				run = len(dataSeq) - emitted
			}
			for j := 0; j < run && emitted < len(dataSeq); j++ {
				b.add(indexBlocks+dataSeq[emitted], b.noisy())
				emitted++
			}
			acc -= float64(run)
		}
	}
	files := []layout.File{
		{First: 0, Blocks: indexBlocks},
	}
	files = append(files, splitFilesFrom(indexBlocks, dataBlocks, 25, b.rng)...)
	return b.finish("glimpse", files, true, defaultCacheBlocks, glimpseComputeSec)
}

// splitFilesFrom is splitFiles with a starting offset.
func splitFilesFrom(first, n, count int, rng *rand.Rand) []layout.File {
	fs := splitFiles(n, count, rng)
	for i := range fs {
		fs[i].First += layout.BlockID(first)
	}
	return fs
}

// Ld generates the ld trace: the Ultrix link-editor building a kernel
// from ~25 MB of object files — two sequential passes over the objects
// (symbol resolution, then relocation) plus header re-reads.
func Ld() *Trace {
	b := newBuilder(ldReads, 106)
	files := splitFiles(ldDistinct, 72, b.rng)
	passes := ldReads / ldDistinct // 2
	for p := 0; p < passes; p++ {
		for i := 0; i < ldDistinct; i++ {
			b.add(i, b.noisy())
		}
	}
	// Remaining references re-read object-file headers (first block of
	// each file), as the linker revisits symbol tables.
	extra := ldReads - passes*ldDistinct
	for i := 0; i < extra; i++ {
		f := files[i%len(files)]
		b.add(int(f.First), b.noisy())
	}
	return b.finish("ld", files, true, defaultCacheBlocks, ldComputeSec)
}

// PostgresJoin generates the postgres-join trace: a join between an
// indexed 32 MB relation and a non-indexed 3.2 MB relation. The inner
// relation is scanned sequentially; the index blocks are accessed much
// more frequently than the outer data blocks (paper section 3.1).
func PostgresJoin() *Trace {
	const (
		innerBlocks = 410  // 3.2 MB relation
		indexSpace  = 100  // hot index: 1 root + 99 leaves
		outerSpace  = 4096 // 32 MB relation block space
	)
	outerDistinct := pgJoinDistinct - innerBlocks - indexSpace // 3283
	b := newBuilder(pgJoinReads, 107)
	// Block ID map: [0,410) inner, [410,510) index, [510, 510+4096) outer.
	const innerBase, indexBase, outerBase = 0, innerBlocks, innerBlocks + indexSpace
	// Sequential scan of the inner relation.
	for i := 0; i < innerBlocks; i++ {
		b.add(innerBase+i, b.noisy())
	}
	// Choose which outer blocks the join touches and the (key-ordered,
	// effectively scattered) order it touches them in.
	outer := b.rng.Perm(outerSpace)[:outerDistinct]
	// Index lookups per outer access: root re-read periodically, leaf per
	// lookup, cycling in key order.
	indexReads := pgJoinReads - innerBlocks - outerDistinct // 5203
	rootReads := indexReads - outerDistinct                 // 1920
	rootAcc := 0.0
	rootPer := float64(rootReads) / float64(outerDistinct)
	for j, ob := range outer {
		rootAcc += rootPer
		if rootAcc >= 1 {
			b.add(indexBase, b.noisy()) // root
			rootAcc--
		}
		leaf := 1 + j*(indexSpace-1)/outerDistinct
		b.add(indexBase+leaf, b.noisy())
		b.add(outerBase+ob, b.noisy())
	}
	// Rounding may leave a few root reads unemitted; flush them.
	for len(b.refs) < pgJoinReads {
		b.add(indexBase, b.noisy())
	}
	files := []layout.File{
		{First: 0, Blocks: innerBlocks},
		{First: innerBlocks, Blocks: indexSpace},
		{First: innerBlocks + indexSpace, Blocks: outerSpace},
	}
	return b.finish("postgres-join", files, false, defaultCacheBlocks, pgJoinComputeSec)
}

// PostgresSelect generates the postgres-select trace: an indexed selection
// of 2% of the tuples of a 32 MB relation. The index is scanned in key
// order, but keys are uncorrelated with physical placement (a
// non-clustered index), so the data-block accesses are effectively
// random — which is what gives the paper its ~15 ms average fetch times
// and the large CSCAN-over-FCFS gains of Table 5. Index root and leaf
// blocks are re-read between data accesses. Its compute time (11.5 s)
// follows the paper's appendix tables (Table 16, Figure 2: a 13.0 s
// compute-bound floor), making the trace I/O-bound up to large arrays;
// Table 3's compute column prints the postgres pair the other way around.
func PostgresSelect() *Trace {
	const (
		indexSpace = 85 // 1 root + 84 leaves
		dataSpace  = 4096
	)
	dataDistinct := pgSelectDistinct - indexSpace // 3000
	b := newBuilder(pgSelectReads, 108)
	const indexBase, dataBase = 0, indexSpace
	// Data blocks in key order = random physical order.
	perm := b.rng.Perm(dataSpace)[:dataDistinct]
	indexReads := pgSelectReads - dataDistinct // 2044
	leafReads := indexReads / 2
	rootReads := indexReads - leafReads
	leafAcc, rootAcc := 0.0, 0.0
	leafPer := float64(leafReads) / float64(dataDistinct)
	rootPer := float64(rootReads) / float64(dataDistinct)
	for j, db := range perm {
		rootAcc += rootPer
		if rootAcc >= 1 {
			b.add(indexBase, b.noisy())
			rootAcc--
		}
		leafAcc += leafPer
		if leafAcc >= 1 {
			leaf := 1 + j*(indexSpace-1)/dataDistinct
			b.add(indexBase+leaf, b.noisy())
			leafAcc--
		}
		b.add(dataBase+db, b.noisy())
	}
	for len(b.refs) < pgSelectReads {
		b.add(indexBase, b.noisy())
	}
	files := []layout.File{
		{First: 0, Blocks: indexSpace},
		{First: indexSpace, Blocks: dataSpace},
	}
	return b.finish("postgres-select", files, false, defaultCacheBlocks, pgSelectComputeSec)
}

// Xds generates the xds trace: XDataSlice extracting 25 planar slices at
// random orientations from a 64 MB (8192-block) data file. Each slice
// reads a strided pattern of blocks (the walk a planar cut makes through
// the volume); consecutive slices overlap the earlier ones.
func Xds() *Trace {
	const fileBlocks = 8192
	const slices = 25
	b := newBuilder(xdsReads, 109)
	per := xdsReads / slices // 417 references per slice
	seen := make([]bool, fileBlocks)
	// New-block quota per slice: the first slice is all new; the rest
	// split the remaining distinct blocks evenly, so the trace lands
	// exactly on the Table 3 totals while keeping each slice a strided
	// walk with realistic overlap.
	quota := make([]int, slices)
	quota[0] = per
	rest := xdsDistinct - per
	for s := 1; s < slices; s++ {
		quota[s] = rest / (slices - 1)
	}
	quota[slices-1] += rest % (slices - 1)
	var already []int // seen blocks, in first-seen order
	for s := 0; s < slices; s++ {
		refs := per
		if s == slices-1 {
			refs = xdsReads - (slices-1)*per // absorb the remainder
		}
		start := b.rng.Intn(fileBlocks)
		stride := 1 + b.rng.Intn(31)
		newLeft := quota[s]
		reRead := 0
		for i := 0; i < refs; i++ {
			blk := (start + i*stride) % fileBlocks
			if !seen[blk] && newLeft == 0 {
				// Out of new-block quota: revisit an earlier block at a
				// similar depth in the volume instead.
				blk = already[(s*31+reRead*7)%len(already)]
				reRead++
			} else if seen[blk] && newLeft >= refs-i {
				// Must spend every remaining reference on a new block:
				// step forward to the next unseen one.
				for seen[blk] {
					blk = (blk + 1) % fileBlocks
				}
			}
			if !seen[blk] {
				seen[blk] = true
				already = append(already, blk)
				newLeft--
			}
			b.add(blk, b.noisy())
		}
	}
	files := []layout.File{{First: 0, Blocks: fileBlocks}}
	return b.finish("xds", files, false, defaultCacheBlocks, xdsComputeSec)
}

// Synth generates the synthetic trace of the paper: 50 passes through a
// loop of 2000 sequential blocks, with compute times drawn from an
// exponential distribution with a 1 ms mean (normalized to the 99.9 s
// total of Table 3).
func Synth() *Trace {
	b := newBuilder(synthReads, 110)
	for p := 0; p < synthReads/synthDistinct; p++ {
		for i := 0; i < synthDistinct; i++ {
			b.add(i, b.rng.ExpFloat64())
		}
	}
	files := []layout.File{{First: 0, Blocks: synthDistinct}}
	return b.finish("synth", files, false, defaultCacheBlocks, synthComputeSec)
}

// Names lists the traces in the paper's Table 3 order.
var Names = []string{
	"dinero", "cscope1", "cscope2", "cscope3", "glimpse",
	"ld", "postgres-join", "postgres-select", "xds", "synth",
}

var generators = map[string]func() *Trace{
	"dinero":          Dinero,
	"cscope1":         Cscope1,
	"cscope2":         Cscope2,
	"cscope3":         Cscope3,
	"glimpse":         Glimpse,
	"ld":              Ld,
	"postgres-join":   PostgresJoin,
	"postgres-select": PostgresSelect,
	"xds":             Xds,
	"synth":           Synth,
}

// ByName generates the named trace.
func ByName(name string) (*Trace, error) {
	g, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown trace %q (have %v)", name, Names)
	}
	return g(), nil
}

// All generates every trace in Table 3 order.
func All() []*Trace {
	out := make([]*Trace, 0, len(Names))
	for _, n := range Names {
		t, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, t)
	}
	return out
}

// PaperStats returns the Table 3 row for the named trace, used by tests to
// pin the generators to the paper.
func PaperStats(name string) (Stats, bool) {
	rows := map[string]Stats{
		"dinero":          {Reads: dineroReads, DistinctBlocks: dineroDistinct, ComputeSec: dineroComputeSec},
		"cscope1":         {Reads: cscope1Reads, DistinctBlocks: cscope1Distinct, ComputeSec: cscope1ComputeSec},
		"cscope2":         {Reads: cscope2Reads, DistinctBlocks: cscope2Distinct, ComputeSec: cscope2ComputeSec},
		"cscope3":         {Reads: cscope3Reads, DistinctBlocks: cscope3Distinct, ComputeSec: cscope3ComputeSec},
		"glimpse":         {Reads: glimpseReads, DistinctBlocks: glimpseDistinct, ComputeSec: glimpseComputeSec},
		"ld":              {Reads: ldReads, DistinctBlocks: ldDistinct, ComputeSec: ldComputeSec},
		"postgres-join":   {Reads: pgJoinReads, DistinctBlocks: pgJoinDistinct, ComputeSec: pgJoinComputeSec},
		"postgres-select": {Reads: pgSelectReads, DistinctBlocks: pgSelectDistinct, ComputeSec: pgSelectComputeSec},
		"xds":             {Reads: xdsReads, DistinctBlocks: xdsDistinct, ComputeSec: xdsComputeSec},
		"synth":           {Reads: synthReads, DistinctBlocks: synthDistinct, ComputeSec: synthComputeSec},
	}
	s, ok := rows[name]
	return s, ok
}

// LargeSpec describes a synthetic streaming trace of arbitrary length:
// references are generated on demand, so a 10^9-reference workload costs
// no memory to produce. Unlike the Table 3 generators above — which
// normalize compute weights post hoc and therefore must materialize —
// large traces draw each compute time directly, keeping generation a
// pure left-to-right stream. The sequence is a deterministic function of
// the spec: Reset replays it exactly.
type LargeSpec struct {
	// Name labels the trace ("large-<pattern>-<refs>" if empty).
	Name string
	// Refs is the total reference count. Required.
	Refs int64
	// Blocks is the block-ID space size. Required (>= 2).
	Blocks int
	// Files splits the block space into this many contiguous files
	// (0 -> 1). Placement is by block number (PlaceByFile false).
	Files int
	// Pattern selects the access pattern: "loop" (default) cycles
	// sequentially through the block space — the steady-fetch worst case
	// for a smaller-than-trace cache — and "zipf" draws blocks from a
	// Zipf(1.2) popularity distribution, the skewed-reuse pattern of
	// storage traces.
	Pattern string
	// MeanComputeMs is the mean inter-reference compute time; draws are
	// exponential (0 -> 0.1 ms).
	MeanComputeMs float64
	// Seed drives all random draws.
	Seed int64
	// CacheBlocks is the trace's default cache size (0 -> 1280).
	CacheBlocks int
}

// Canonical returns the spec with every defaulted field spelled out —
// the name resolved, the pattern, file count, cache size, and mean
// compute filled with the values Source would use. Two specs with equal
// Canonical forms generate identical reference streams, which is what
// lets the serving layer derive one cache key per distinct workload.
func (l LargeSpec) Canonical() LargeSpec {
	c := l
	if c.Pattern == "" {
		c.Pattern = "loop"
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("large-%s-%d", c.Pattern, c.Refs)
	}
	if c.Files <= 0 {
		c.Files = 1
	}
	if c.CacheBlocks == 0 {
		c.CacheBlocks = defaultCacheBlocks
	}
	if c.MeanComputeMs == 0 { //ppcvet:ignore unset-config sentinel, assigned by the caller rather than computed
		c.MeanComputeMs = 0.1
	}
	return c
}

// ResolvedName returns the trace name Source will report: the explicit
// Name, or the deterministic default derived from pattern and length.
func (l LargeSpec) ResolvedName() string { return l.Canonical().Name }

// ParseLargeSpec parses the CLI shorthand for a large synthetic trace:
// refs[:blocks[:pattern[:seed]]]. The reference count accepts scientific
// notation (1e9) since that is how trace lengths are naturally spoken
// of; blocks defaults to 65536.
func ParseLargeSpec(s string) (LargeSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) > 4 {
		return LargeSpec{}, fmt.Errorf("large spec %q: want refs[:blocks[:pattern[:seed]]]", s)
	}
	refs, err := strconv.ParseFloat(parts[0], 64)
	if err != nil || refs < 1 || refs != float64(int64(refs)) { //ppcvet:ignore exact integrality check on a parsed count, not simulation time
		return LargeSpec{}, fmt.Errorf("large spec %q: bad reference count %q", s, parts[0])
	}
	spec := LargeSpec{Refs: int64(refs), Blocks: 65536}
	if len(parts) > 1 {
		if spec.Blocks, err = strconv.Atoi(parts[1]); err != nil {
			return LargeSpec{}, fmt.Errorf("large spec %q: bad block count %q", s, parts[1])
		}
	}
	if len(parts) > 2 {
		spec.Pattern = parts[2]
	}
	if len(parts) > 3 {
		if spec.Seed, err = strconv.ParseInt(parts[3], 10, 64); err != nil {
			return LargeSpec{}, fmt.Errorf("large spec %q: bad seed %q", s, parts[3])
		}
	}
	return spec, nil
}

// Validate checks the spec's ranges.
func (l *LargeSpec) Validate() error {
	if l.Refs <= 0 {
		return fmt.Errorf("trace: large spec needs a positive ref count, got %d", l.Refs)
	}
	if l.Blocks < 2 {
		return fmt.Errorf("trace: large spec needs at least 2 blocks, got %d", l.Blocks)
	}
	if l.Files < 0 || l.Files > l.Blocks {
		return fmt.Errorf("trace: large spec file count %d out of [0,%d]", l.Files, l.Blocks)
	}
	switch l.Pattern {
	case "", "loop", "zipf":
	default:
		return fmt.Errorf("trace: unknown large-trace pattern %q (valid: loop, zipf)", l.Pattern)
	}
	if l.MeanComputeMs < 0 || math.IsNaN(l.MeanComputeMs) || math.IsInf(l.MeanComputeMs, 0) {
		return fmt.Errorf("trace: large spec mean compute %g invalid", l.MeanComputeMs)
	}
	return nil
}

// Source returns the streaming generator for the spec.
func (l LargeSpec) Source() (Source, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	c := l.Canonical()
	fs := make([]layout.File, c.Files)
	base, rem := l.Blocks/c.Files, l.Blocks%c.Files
	next := 0
	for i := range fs {
		n := base
		if i < rem {
			n++
		}
		fs[i] = layout.File{First: layout.BlockID(next), Blocks: n}
		next += n
	}
	s := &largeSource{
		spec: l,
		meta: Meta{
			Name:        c.Name,
			Files:       fs,
			CacheBlocks: c.CacheBlocks,
			Refs:        l.Refs,
		},
		pattern: c.Pattern,
		mean:    c.MeanComputeMs,
	}
	if err := s.Reset(); err != nil {
		return nil, err
	}
	return s, nil
}

// largeSource is LargeSpec's deterministic stream.
type largeSource struct {
	spec    LargeSpec
	meta    Meta
	pattern string
	mean    float64
	rng     *rand.Rand
	zipf    *rand.Zipf
	next    int64
}

func (s *largeSource) Meta() Meta { return s.meta }

func (s *largeSource) ReadRefs(p []Ref) (int, error) {
	n := 0
	for n < len(p) && s.next < s.meta.Refs {
		var b int64
		if s.zipf != nil {
			b = int64(s.zipf.Uint64())
		} else {
			b = s.next % int64(s.spec.Blocks)
		}
		p[n] = Ref{
			Block:     layout.BlockID(b),
			ComputeMs: s.rng.ExpFloat64() * s.mean,
		}
		n++
		s.next++
	}
	if s.next == s.meta.Refs {
		return n, io.EOF
	}
	return n, nil
}

// Reset rewinds the stream by recreating the random state, so every pass
// yields the identical sequence.
func (s *largeSource) Reset() error {
	s.rng = rand.New(rand.NewSource(s.spec.Seed ^ 0x6c61726765)) // "large"
	s.zipf = nil
	if s.pattern == "zipf" {
		s.zipf = rand.NewZipf(s.rng, 1.2, 1, uint64(s.spec.Blocks-1))
	}
	s.next = 0
	return nil
}
