package trace

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"ppcsim/internal/layout"
)

// hostileNames are trace names that break naive header formatting: the
// Write/Read round trip must survive all of them.
var hostileNames = []string{
	"plain",
	"my trace",
	"tab\tname",
	"line\nbreak",
	"trailing ",
	" leading",
	`quo"ted`,
	`"quoted-looking"`,
	"",
	"uni códe ☃",
	"\x00control",
}

// genTestTrace builds a deterministic trace exercising every encoder
// feature: multiple files, zero-compute refs, write refs, repeats.
func genTestTrace(name string, refs int) *Trace {
	t := &Trace{
		Name: name,
		Files: []layout.File{
			{First: 0, Blocks: 7},
			{First: 7, Blocks: 13},
			{First: 20, Blocks: 12},
		},
		PlaceByFile: true,
		CacheBlocks: 64,
	}
	for i := 0; i < refs; i++ {
		r := Ref{Block: layout.BlockID((i * 11) % 32)}
		switch i % 5 {
		case 0:
			r.ComputeMs = 0 // exact zero must survive
		case 1:
			r.ComputeMs = 0.25
		case 2:
			r.ComputeMs = float64(i) * 0.001
		case 3:
			r.ComputeMs = 1e-12
		default:
			r.ComputeMs = 17.5
			r.Write = true
		}
		t.Refs = append(t.Refs, r)
	}
	return t
}

// TestWriteReadRoundTrip is the Write->Read property test over hostile
// names and ref shapes: the parsed trace must equal the original exactly.
func TestWriteReadRoundTrip(t *testing.T) {
	for _, name := range hostileNames {
		tr := genTestTrace(name, 137)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("%q: Write: %v", name, err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("%q: Read: %v", name, err)
		}
		if back.Name != tr.Name {
			t.Fatalf("name %q round-tripped to %q", tr.Name, back.Name)
		}
		if back.PlaceByFile != tr.PlaceByFile || back.CacheBlocks != tr.CacheBlocks {
			t.Fatalf("%q: header fields changed", name)
		}
		if !reflect.DeepEqual(back.Files, tr.Files) {
			t.Fatalf("%q: files changed", name)
		}
		if len(back.Refs) != len(tr.Refs) {
			t.Fatalf("%q: %d refs became %d", name, len(tr.Refs), len(back.Refs))
		}
		for i, r := range tr.Refs {
			b := back.Refs[i]
			if b.Block != r.Block || b.Write != r.Write {
				t.Fatalf("%q: ref %d changed: %+v vs %+v", name, i, b, r)
			}
			// The text format prints %.6f, so compute only survives to 1e-6.
			if math.Abs(b.ComputeMs-r.ComputeMs) > 1e-6 {
				t.Fatalf("%q: ref %d compute %g became %g", name, i, r.ComputeMs, b.ComputeMs)
			}
		}
	}
}

// TestReadLegacyHeader keeps the unquoted header form parseable: traces
// written before name quoting must still load.
func TestReadLegacyHeader(t *testing.T) {
	in := "ppctrace oldname true 16\nfile 4\nr 0 1.0\nr 3 0.25\n"
	tr, err := Read(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "oldname" || !tr.PlaceByFile || tr.CacheBlocks != 16 {
		t.Fatalf("legacy header parsed as %+v", tr)
	}
}

// TestValidateRejectsNonFinite pins the NaN/Inf bugfix: Validate and Read
// must both reject non-finite compute times and overflowing totals.
func TestValidateRejectsNonFinite(t *testing.T) {
	base := func() *Trace {
		return &Trace{
			Name:  "t",
			Files: []layout.File{{First: 0, Blocks: 4}},
			Refs:  []Ref{{Block: 0, ComputeMs: 1}, {Block: 1, ComputeMs: 2}},
		}
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		tr := base()
		tr.Refs[1].ComputeMs = bad
		if err := tr.Validate(); err == nil {
			t.Errorf("Validate accepted compute %g", bad)
		}
	}
	// A pair of half-max values overflows the total without either being
	// individually infinite.
	tr := base()
	tr.Refs[0].ComputeMs = math.MaxFloat64
	tr.Refs[1].ComputeMs = math.MaxFloat64
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted an overflowing compute total")
	}
	for _, in := range []string{
		"ppctrace t false 16\nfile 4\nr 0 NaN\n",
		"ppctrace t false 16\nfile 4\nr 0 Inf\n",
		"ppctrace t false 16\nfile 4\nr 0 -Inf\n",
	} {
		if _, err := Read(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("Read accepted %q", in)
		}
	}
}

// TestTruncateNegative pins the negative-n clamp.
func TestTruncateNegative(t *testing.T) {
	tr := genTestTrace("t", 10)
	got := tr.Truncate(-3)
	if len(got.Refs) != 0 {
		t.Fatalf("Truncate(-3) kept %d refs", len(got.Refs))
	}
	if got := tr.Truncate(4); len(got.Refs) != 4 {
		t.Fatalf("Truncate(4) kept %d refs", len(got.Refs))
	}
}

// TestColumnarRoundTrip: encode -> decode must reproduce the trace
// bit-exactly (the binary format stores float64 bits, so unlike the text
// format there is no precision loss), through both the materializing
// reader and the streaming source.
func TestColumnarRoundTrip(t *testing.T) {
	for _, refs := range []int{1, 100, frameRefs, frameRefs + 1, 3*frameRefs + 17} {
		tr := genTestTrace("columnar round trip", refs)
		var buf bytes.Buffer
		n, err := WriteColumnar(&buf, tr.Source())
		if err != nil {
			t.Fatalf("refs=%d: WriteColumnar: %v", refs, err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("refs=%d: reported %d bytes, wrote %d", refs, n, buf.Len())
		}
		if !IsColumnar(buf.Bytes()) {
			t.Fatalf("refs=%d: output does not sniff as columnar", refs)
		}
		back, err := ReadColumnar(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("refs=%d: ReadColumnar: %v", refs, err)
		}
		if !reflect.DeepEqual(back, tr) {
			t.Fatalf("refs=%d: columnar round trip changed the trace", refs)
		}

		src, err := NewColumnarSource(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("refs=%d: NewColumnarSource: %v", refs, err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := Materialize(src)
			if err != nil {
				t.Fatalf("refs=%d pass %d: Materialize: %v", refs, pass, err)
			}
			if !reflect.DeepEqual(got, tr) {
				t.Fatalf("refs=%d pass %d: streamed trace differs", refs, pass)
			}
		}

		info, err := InspectColumnar(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatalf("refs=%d: InspectColumnar: %v", refs, err)
		}
		wantFrames := (refs + frameRefs - 1) / frameRefs
		if info.Frames != wantFrames || info.Meta.Refs != int64(refs) {
			t.Fatalf("refs=%d: inspect reports %d frames / %d refs, want %d / %d",
				refs, info.Frames, info.Meta.Refs, wantFrames, refs)
		}
	}
}

// TestColumnarRejectsTruncation: every prefix of a valid file must fail
// cleanly (no panic, no silent short trace).
func TestColumnarRejectsTruncation(t *testing.T) {
	tr := genTestTrace("trunc", 500)
	var buf bytes.Buffer
	if _, err := WriteColumnar(&buf, tr.Source()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 1, 7, 8, 20, len(data) / 2, len(data) - 30} {
		if _, err := ReadColumnar(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("ReadColumnar accepted a %d-byte prefix of a %d-byte file", cut, len(data))
		}
	}
}

// TestTraceSource pins the slice-backed source: short destination
// buffers, EOF-with-data, and Reset.
func TestTraceSource(t *testing.T) {
	tr := genTestTrace("src", 10)
	src := tr.Source()
	if m := src.Meta(); m.Refs != 10 || m.NumBlocks() != 32 {
		t.Fatalf("meta = %+v", m)
	}
	var got []Ref
	buf := make([]Ref, 3)
	for {
		n, err := src.ReadRefs(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(got, tr.Refs) {
		t.Fatal("streamed refs differ from the slice")
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	back, err := Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Refs, tr.Refs) {
		t.Fatal("materialized refs differ after Reset")
	}
}

// TestLargeSpecSource pins the streaming generator: deterministic across
// Reset, correct count, blocks in range, finite compute.
func TestLargeSpecSource(t *testing.T) {
	for _, pattern := range []string{"loop", "zipf"} {
		spec := LargeSpec{Refs: 50000, Blocks: 1000, Files: 7, Pattern: pattern, Seed: 3}
		src, err := spec.Source()
		if err != nil {
			t.Fatal(err)
		}
		a, err := Materialize(src)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		b, err := Materialize(src)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: generator is not deterministic across Reset", pattern)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: generated trace invalid: %v", pattern, err)
		}
		if len(a.Refs) != 50000 {
			t.Fatalf("%s: generated %d refs", pattern, len(a.Refs))
		}
	}
	if _, err := (LargeSpec{Refs: 0, Blocks: 10}).Source(); err == nil {
		t.Error("zero-ref spec accepted")
	}
	if _, err := (LargeSpec{Refs: 10, Blocks: 1}).Source(); err == nil {
		t.Error("one-block spec accepted")
	}
	if _, err := (LargeSpec{Refs: 10, Blocks: 10, Pattern: "bogus"}).Source(); err == nil {
		t.Error("unknown pattern accepted")
	}
}

// FuzzReadColumnar checks the binary decoder never panics and that
// anything it accepts round-trips through the encoder bit-exactly.
func FuzzReadColumnar(f *testing.F) {
	// Seed with real encodings of varied shapes plus near-miss corruptions.
	for _, refs := range []int{1, 64, frameRefs + 3} {
		tr := genTestTrace("seed", refs)
		var buf bytes.Buffer
		if _, err := WriteColumnar(&buf, tr.Source()); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		data := append([]byte(nil), buf.Bytes()...)
		data[len(data)/2] ^= 0xff
		f.Add(data)
		f.Add(data[:len(data)/3])
	}
	f.Add([]byte(columnarMagic))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, in []byte) {
		tr, err := ReadColumnar(bytes.NewReader(in))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("ReadColumnar accepted an invalid trace: %v", verr)
		}
		var buf bytes.Buffer
		if _, werr := WriteColumnar(&buf, tr.Source()); werr != nil {
			t.Fatalf("WriteColumnar failed on accepted trace: %v", werr)
		}
		back, rerr := ReadColumnar(&buf)
		if rerr != nil {
			t.Fatalf("re-read failed: %v", rerr)
		}
		if !reflect.DeepEqual(back, tr) {
			t.Fatal("round trip changed the trace")
		}
	})
}
