package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Columns: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long", "22")
	out := tb.String()
	for _, want := range []string{"Demo", "====", "name", "alpha", "beta-long", "22", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header columns must be aligned: value column right-aligned.
	if !strings.HasSuffix(lines[2], "value") {
		t.Errorf("header misaligned: %q", lines[2])
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := &Table{Columns: []string{"x"}}
	tb.AddRow("1")
	if strings.Contains(tb.String(), "=") {
		t.Error("untitled table should have no underline")
	}
}

func TestFormatHelpers(t *testing.T) {
	if F(1.5) != "1.5" {
		t.Errorf("F(1.5) = %q", F(1.5))
	}
	if F(2.0) != "2" {
		t.Errorf("F(2.0) = %q", F(2.0))
	}
	if F(0.1234) != "0.123" {
		t.Errorf("F(0.1234) = %q", F(0.1234))
	}
	if F2(1.005) == "" || I(42) != "42" {
		t.Error("helper output wrong")
	}
	if Pct(12.34) != "12.3%" {
		t.Errorf("Pct = %q", Pct(12.34))
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		Title:    "Breakdown",
		SegNames: []string{"cpu", "stall"},
		Unit:     "s",
		Width:    20,
	}
	f.Add("one", 1.0, 1.0)
	f.Add("two", 2.0, 0.0)
	out := f.String()
	for _, want := range []string{"Breakdown", "legend: # cpu, + stall", "one", "two", "2s"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The largest bar should reach the full width.
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
}

func TestFigureZeroTotals(t *testing.T) {
	f := &Figure{SegNames: []string{"a"}}
	f.Add("empty", 0)
	if out := f.String(); !strings.Contains(out, "empty") {
		t.Errorf("zero-value figure broke: %s", out)
	}
}

func TestFigureSVG(t *testing.T) {
	f := &Figure{
		Title:    "SVG <Demo> & friends",
		SegNames: []string{"cpu", "stall"},
		Unit:     "s",
	}
	f.Add("a", 1.5, 0.5)
	f.Add("b", 0.0, 2.0)
	var b strings.Builder
	if err := f.RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "SVG &lt;Demo&gt; &amp; friends", "cpu", "stall", "2s"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in SVG output", want)
		}
	}
	if strings.Contains(out, "<Demo>") {
		t.Error("title not escaped")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c'`); got != "a&lt;b&gt;&amp;&quot;c&apos;" {
		t.Errorf("xmlEscape = %q", got)
	}
}
