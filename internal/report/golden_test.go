package report

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenDocument renders one representative table and figure — every
// formatting feature the experiment reports rely on: title underlines,
// left/right alignment, width-driven padding, notes, legends, glyph
// cycling, and total labels.
func goldenDocument() string {
	var b strings.Builder
	t := &Table{
		Title:   "Elapsed time by algorithm",
		Columns: []string{"algorithm", "elapsed", "stall", "hit rate"},
		Notes:   []string{"synthetic trace, 4 disks", "times in seconds"},
	}
	t.AddRow("demand", F(124.518), F(98.2), Pct(61.35))
	t.AddRow("fixed-horizon", F(77.04), F(51.7), Pct(61.35))
	t.AddRow("aggressive", F(58.3), F(33.009), Pct(61.35))
	t.AddRow("forestall", F(55), F2(29.5), Pct(61.35))
	t.Render(&b)

	f := &Figure{
		Title:    "Elapsed-time breakdown",
		SegNames: []string{"cpu", "driver", "stall"},
		Unit:     "s",
		Width:    40,
	}
	f.Add("demand", 24.0, 2.3, 98.2)
	f.Add("aggressive", 24.0, 1.25, 33.0)
	f.Add("forestall", 24.0, 1.0, 0.0)
	f.Render(&b)
	return b.String()
}

func goldenSVG(t *testing.T) string {
	f := &Figure{
		Title:    "Breakdown <svg>",
		SegNames: []string{"cpu", "stall"},
		Unit:     "s",
	}
	f.Add("demand", 24.0, 98.2)
	f.Add("forestall", 24.0, 29.5)
	var b strings.Builder
	if err := f.RenderSVG(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestGoldenReport pins the exact bytes of the text renderer: the sweep
// and experiment CSV/report outputs are diffed across runs to verify
// determinism, so formatting drift is a real regression.
func TestGoldenReport(t *testing.T) {
	checkGolden(t, "golden_report.txt", goldenDocument())
}

// TestGoldenSVG pins the SVG renderer the figures export path uses.
func TestGoldenSVG(t *testing.T) {
	checkGolden(t, "golden_figure.svg", goldenSVG(t))
}

// TestGoldenIsStable renders the document twice; the report layer must
// be a pure function of its inputs.
func TestGoldenIsStable(t *testing.T) {
	if goldenDocument() != goldenDocument() {
		t.Fatal("two renders of the same document differ")
	}
}
