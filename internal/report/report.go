// Package report renders experiment results as aligned text tables and
// simple ASCII stacked-bar charts, standing in for the paper's tables and
// figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a row, formatting every cell with %v (floats as %.3g is
// the caller's job; use F or Ms helpers for consistency).
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// F formats a float with three decimals, trimming trailing zeros.
func F(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// I formats an integer.
func I(v int64) string { return fmt.Sprintf("%d", v) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
		fmt.Fprintf(w, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(cells))
		for i, cell := range cells {
			if i == 0 {
				parts = append(parts, fmt.Sprintf("%-*s", widths[i], cell))
			} else {
				parts = append(parts, fmt.Sprintf("%*s", widths[i], cell))
			}
		}
		fmt.Fprintf(w, "%s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Bar is one stacked bar of a Figure: a label and the stacked segment
// values (e.g. cpu, driver, stall).
type Bar struct {
	Label    string
	Segments []float64
}

// Figure is an ASCII stacked-bar chart, the textual analogue of the
// paper's elapsed-time breakdown figures.
type Figure struct {
	Title    string
	SegNames []string // names of the stacked segments, in order
	SegGlyph []rune   // one glyph per segment (defaults provided)
	Unit     string   // e.g. "s"
	Bars     []Bar
	Width    int // max bar width in characters (default 60)
}

// DefaultGlyphs used when SegGlyph is unset.
var DefaultGlyphs = []rune{'#', '+', '.', '~', 'o'}

// Add appends a bar.
func (f *Figure) Add(label string, segments ...float64) {
	f.Bars = append(f.Bars, Bar{Label: label, Segments: segments})
}

// Render writes the chart.
func (f *Figure) Render(w io.Writer) {
	width := f.Width
	if width <= 0 {
		width = 60
	}
	glyphs := f.SegGlyph
	if len(glyphs) == 0 {
		glyphs = DefaultGlyphs
	}
	if f.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", f.Title, strings.Repeat("=", len(f.Title)))
	}
	var legend []string
	for i, n := range f.SegNames {
		g := glyphs[i%len(glyphs)]
		legend = append(legend, fmt.Sprintf("%c %s", g, n))
	}
	fmt.Fprintf(w, "legend: %s\n", strings.Join(legend, ", "))
	maxTotal, maxLabel := 0.0, 0
	for _, b := range f.Bars {
		total := 0.0
		for _, s := range b.Segments {
			total += s
		}
		if total > maxTotal {
			maxTotal = total
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	if maxTotal <= 0 {
		maxTotal = 1
	}
	for _, b := range f.Bars {
		var sb strings.Builder
		total := 0.0
		for i, s := range b.Segments {
			n := int(s / maxTotal * float64(width))
			g := glyphs[i%len(glyphs)]
			sb.WriteString(strings.Repeat(string(g), n))
			total += s
		}
		fmt.Fprintf(w, "%-*s |%-*s| %s%s\n", maxLabel, b.Label, width, sb.String(), F(total), f.Unit)
	}
	fmt.Fprintln(w)
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	f.Render(&b)
	return b.String()
}
