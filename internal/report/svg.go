package report

import (
	"fmt"
	"io"
)

// Segment fill colors for SVG figures (cpu, driver, stall, then extras).
var svgColors = []string{"#4878a8", "#e8a33d", "#c8504f", "#6aa56a", "#9470b1"}

// RenderSVG writes the figure as a standalone SVG document: one
// horizontal stacked bar per entry, a legend, and value labels — a
// faithful, plottable version of the paper's elapsed-time breakdown
// figures.
func (f *Figure) RenderSVG(w io.Writer) error {
	const (
		barH     = 16
		gap      = 6
		leftPad  = 150
		rightPad = 90
		topPad   = 56
		plotW    = 560
	)
	maxTotal := 0.0
	for _, b := range f.Bars {
		total := 0.0
		for _, s := range b.Segments {
			total += s
		}
		if total > maxTotal {
			maxTotal = total
		}
	}
	if maxTotal <= 0 {
		maxTotal = 1
	}
	height := topPad + len(f.Bars)*(barH+gap) + 20
	width := leftPad + plotW + rightPad

	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	p(`<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	p(`<text x="%d" y="18" font-size="14" font-weight="bold">%s</text>`+"\n", leftPad, xmlEscape(f.Title))
	// Legend.
	x := leftPad
	for i, name := range f.SegNames {
		color := svgColors[i%len(svgColors)]
		p(`<rect x="%d" y="28" width="10" height="10" fill="%s"/>`+"\n", x, color)
		p(`<text x="%d" y="37">%s</text>`+"\n", x+14, xmlEscape(name))
		x += 14 + 8*len(name) + 20
	}
	// Bars.
	for i, b := range f.Bars {
		y := topPad + i*(barH+gap)
		p(`<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n", leftPad-8, y+barH-4, xmlEscape(b.Label))
		bx := float64(leftPad)
		total := 0.0
		for si, s := range b.Segments {
			wseg := s / maxTotal * plotW
			color := svgColors[si%len(svgColors)]
			if wseg > 0 {
				p(`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"/>`+"\n", bx, y, wseg, barH, color)
			}
			bx += wseg
			total += s
		}
		p(`<text x="%.1f" y="%d">%s%s</text>`+"\n", bx+6, y+barH-4, F(total), xmlEscape(f.Unit))
	}
	p("</svg>\n")
	return err
}

// xmlEscape escapes the five XML special characters.
func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		case '\'':
			out = append(out, "&apos;"...)
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
