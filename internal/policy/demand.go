package policy

import (
	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
)

// Demand is the paper's demand-fetching baseline, made as favorable as
// possible: it fetches only on a miss, but uses the optimal offline
// replacement policy (evict the block whose next reference is furthest in
// the future) enabled by the same advance knowledge the prefetchers get.
type Demand struct {
	s *engine.State
}

// NewDemand returns the optimal demand-fetching baseline.
func NewDemand() *Demand { return &Demand{} }

// Name implements engine.Policy.
func (d *Demand) Name() string { return "demand" }

// Attach implements engine.Policy.
func (d *Demand) Attach(s *engine.State) { d.s = s }

// Poll implements engine.Policy. Demand fetching never prefetches.
func (d *Demand) Poll() {}

// OnStall implements engine.Policy: fetch the missed block, evicting the
// furthest-future block if the cache is full.
func (d *Demand) OnStall(b layout.BlockID) {
	demandFetch(d.s, b)
}

// demandFetch issues a demand fetch of b with optimal replacement. When
// every buffer is reserved by an in-flight fetch it does nothing; the
// engine retries after the next completion.
func demandFetch(s *engine.State, b layout.BlockID) {
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		return
	}
	if v, _ := s.Cache.FurthestEvictable(); v != cache.NoBlock {
		s.Issue(b, v)
	}
}
