package policy

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
	"ppcsim/internal/obs"
	"ppcsim/internal/trace"
)

// The streaming acceptance criterion: running a trace through
// Config.Source (bounded resident window) must produce byte-identical
// results — metrics AND observer event streams — to materializing the
// same trace and running it with the same options. These tests sweep
// policies x windows x disks x hint noise, plus a write-bearing trace.

// mixedTrace builds a trace mixing loop and random re-references, with
// varied compute times, so prefetch batching, eviction, and the LRU
// fallback all get exercised.
func mixedTrace(n, blocks int, writes bool, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{
		Name:        "stream-mixed",
		Files:       []layout.File{{First: 0, Blocks: blocks}},
		CacheBlocks: blocks / 4,
	}
	for i := 0; i < n; i++ {
		var b int
		if i%3 == 0 {
			b = rng.Intn(blocks)
		} else {
			b = i % blocks
		}
		r := trace.Ref{
			Block:     layout.BlockID(b),
			ComputeMs: 0.05 + rng.Float64()*2,
		}
		if writes && i%7 == 5 {
			r.Write = true
		}
		tr.Refs = append(tr.Refs, r)
	}
	return tr
}

func streamPolicies() map[string]func() engine.Policy {
	return map[string]func() engine.Policy{
		"demand":       func() engine.Policy { return NewDemand() },
		"fixedhorizon": func() engine.Policy { return NewFixedHorizon(0) },
		"aggressive":   func() engine.Policy { return NewAggressive(0) },
		"forestall":    func() engine.Policy { return NewForestall() },
	}
}

func TestStreamedMatchesMaterialized(t *testing.T) {
	windows := []int{16, 64, 300, engine.WindowNone}
	hints := []engine.HintSpec{
		{Fraction: 1, Accuracy: 1},
		{Fraction: 0.7, Accuracy: 0.9, Seed: 42},
	}
	for _, writes := range []bool{false, true} {
		tr := mixedTrace(4000, 256, writes, 7)
		for name, mk := range streamPolicies() {
			for _, disks := range []int{1, 4} {
				for _, w := range windows {
					for _, h := range hints {
						h := h
						h.Window = w
						label := fmt.Sprintf("%s/d=%d/w=%d/f=%g/writes=%t", name, disks, w, h.Fraction, writes)

						matRec := obs.NewRecorder()
						mat, err := engine.Run(engine.Config{
							Trace: tr, Policy: mk(), Disks: disks,
							Model: fixed(4), Hints: &h, Observer: matRec,
						})
						if err != nil {
							t.Fatalf("%s materialized: %v", label, err)
						}
						strRec := obs.NewRecorder()
						str, err := engine.Run(engine.Config{
							Source: tr.Source(), Policy: mk(), Disks: disks,
							Model: fixed(4), Hints: &h, Observer: strRec,
						})
						if err != nil {
							t.Fatalf("%s streamed: %v", label, err)
						}
						if !reflect.DeepEqual(mat, str) {
							t.Errorf("%s: results differ\nmaterialized: %+v\nstreamed:     %+v", label, mat, str)
						}
						if !reflect.DeepEqual(matRec, strRec) {
							t.Errorf("%s: observer event streams differ", label)
						}
					}
				}
			}
		}
	}
}

// TestStreamedMatchesMaterializedVariedService repeats the sweep's most
// eviction-heavy corner with a position-dependent service time, so disk
// completion order (and with it CSCAN reordering and stall patterns)
// differs from the constant-time model.
func TestStreamedMatchesMaterializedVariedService(t *testing.T) {
	tr := mixedTrace(3000, 200, false, 11)
	h := engine.HintSpec{Fraction: 0.9, Accuracy: 0.95, Seed: 3, Window: 48}
	for name, mk := range streamPolicies() {
		mat, err := engine.Run(engine.Config{Trace: tr, Policy: mk(), Disks: 4, Hints: &h})
		if err != nil {
			t.Fatalf("%s materialized: %v", name, err)
		}
		str, err := engine.Run(engine.Config{Source: tr.Source(), Policy: mk(), Disks: 4, Hints: &h})
		if err != nil {
			t.Fatalf("%s streamed: %v", name, err)
		}
		if !reflect.DeepEqual(mat, str) {
			t.Errorf("%s: results differ\nmaterialized: %+v\nstreamed:     %+v", name, mat, str)
		}
	}
}

// TestStreamingGuards pins the validation surface of streaming runs.
func TestStreamingGuards(t *testing.T) {
	tr := mixedTrace(100, 32, false, 1)
	base := func() engine.Config {
		return engine.Config{
			Source: tr.Source(), Policy: NewForestall(), Disks: 1, Model: fixed(4),
			Hints: &engine.HintSpec{Fraction: 1, Accuracy: 1, Window: 16},
		}
	}

	if _, err := engine.Run(base()); err != nil {
		t.Fatalf("valid streaming config rejected: %v", err)
	}

	cfg := base()
	cfg.Trace = tr
	if _, err := engine.Run(cfg); err == nil {
		t.Error("Trace+Source accepted")
	}

	cfg = base()
	cfg.Hints = nil
	if _, err := engine.Run(cfg); err == nil {
		t.Error("streaming without hints accepted")
	}

	cfg = base()
	cfg.Hints.Window = 0
	if _, err := engine.Run(cfg); err == nil {
		t.Error("streaming with unlimited window accepted")
	}

	cfg = base()
	cfg.Hints.Window = len(tr.Refs)
	if _, err := engine.Run(cfg); err == nil {
		t.Error("streaming with window covering the trace accepted")
	}

	cfg = base()
	cfg.Hints.Window = engine.WindowNone
	if _, err := engine.Run(cfg); err != nil {
		t.Errorf("WindowNone streaming rejected: %v", err)
	}

	cfg = base()
	cfg.Policy = fullTracePolicy{}
	if _, err := engine.Run(cfg); err == nil {
		t.Error("RequiresFullTrace policy accepted for a streaming run")
	}
}

// fullTracePolicy mimics reverse aggressive's marker.
type fullTracePolicy struct{}

func (fullTracePolicy) Name() string           { return "full-trace-test" }
func (fullTracePolicy) Attach(*engine.State)   {}
func (fullTracePolicy) Poll()                  {}
func (fullTracePolicy) OnStall(layout.BlockID) {}
func (fullTracePolicy) RequiresFullTrace()     {}
