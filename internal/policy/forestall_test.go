package policy

import (
	"math"
	"testing"
)

// mkForestallEst returns a Forestall with only its F'-estimation state
// initialized (what Attach would build for d disks), so the estimator can
// be driven directly.
func mkForestallEst(d int) *Forestall {
	f := &Forestall{}
	f.diskHist = make([][]float64, d)
	for i := range f.diskHist {
		f.diskHist[i] = make([]float64, historyLen)
	}
	f.diskSum = make([]float64, d)
	f.diskPos = make([]int, d)
	f.diskN = make([]int, d)
	f.cpuHist = make([]float64, historyLen)
	return f
}

// addCPU folds one compute-time sample into the history ring, mirroring
// sampleCPU's bookkeeping without needing an attached engine.
func (f *Forestall) addCPU(v float64) {
	f.cpuSum += v - f.cpuHist[f.cpuPos]
	f.cpuHist[f.cpuPos] = v
	f.cpuPos = (f.cpuPos + 1) % historyLen
	if f.cpuN < historyLen {
		f.cpuN++
	}
}

// TestForestallFPrimeWarmup pins the estimator's warm-up behavior: before
// any disk access completes F' is the defaultF seed, and the first real
// estimates average over the samples actually observed — not over the
// full (zero-initialized) history window, which would bias early F' by
// samples/historyLen.
func TestForestallFPrimeWarmup(t *testing.T) {
	f := mkForestallEst(2)
	if got := f.fprime(0); got != defaultF {
		t.Errorf("F' with no samples = %g, want defaultF %g", got, defaultF)
	}
	f.addCPU(2.0)
	if got := f.fprime(0); got != defaultF {
		t.Errorf("F' with no disk samples = %g, want defaultF %g", got, defaultF)
	}

	// First estimate: one 10ms access over a 2ms mean compute time. The
	// disk is slow (>= slowDiskMs) so the 4x overestimate applies:
	// F' = (10/1)/(2/1) * 4 = 20. A zero-biased window would instead give
	// (10/100)/(2/100)*... with meanDisk = 0.1 < slowDiskMs, F' = 0.05 -> 1.
	f.onComplete(0, 10.0)
	if got, want := f.fprime(0), 20.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("first F' estimate = %g, want %g", got, want)
	}

	// Fast-disk branch: 2ms accesses on disk 1 skip the overestimate.
	f.onComplete(1, 2.0)
	f.onComplete(1, 4.0)
	if got, want := f.fprime(1), 1.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("fast-disk F' = %g, want %g", got, want)
	}

	// Per-disk isolation: disk 0's estimate is untouched by disk 1.
	if got, want := f.fprime(0), 20.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("disk 0 F' after disk 1 samples = %g, want %g", got, want)
	}

	// Floor: a disk much faster than compute clamps to F' = 1.
	g := mkForestallEst(1)
	g.addCPU(10.0)
	g.onComplete(0, 1.0)
	if got := g.fprime(0); got != 1.0 {
		t.Errorf("floored F' = %g, want 1", got)
	}

	// FixedF bypasses estimation entirely.
	f.FixedF = 7.5
	if got := f.fprime(0); got != 7.5 {
		t.Errorf("FixedF override = %g, want 7.5", got)
	}
}

// TestForestallFPrimeRingWraparound checks the sliding window: after more
// than historyLen samples the oldest are evicted from the running sum.
func TestForestallFPrimeRingWraparound(t *testing.T) {
	f := mkForestallEst(1)
	f.addCPU(1.0)
	// historyLen samples of 8ms, then historyLen more of 16ms: the window
	// must hold only the 16ms samples.
	for i := 0; i < historyLen; i++ {
		f.onComplete(0, 8.0)
	}
	for i := 0; i < historyLen; i++ {
		f.onComplete(0, 16.0)
	}
	// meanDisk = 16 >= slowDiskMs: F' = 16/1 * 4 = 64.
	if got, want := f.fprime(0), 64.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("post-wraparound F' = %g, want %g", got, want)
	}
}
