package policy

import (
	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/future"
	"ppcsim/internal/layout"
)

// Aggressive is the multi-disk aggressive algorithm (section 2.7 of the
// paper): whenever a disk is free, construct a batch of up to batch-size
// fetches for it — repeatedly take the first missing block on that disk
// and pair it with the cached block whose next reference is furthest in
// the future, as long as the do-no-harm rule allows. When several disks
// are free at once, their missing blocks are considered together in order
// of increasing request index.
type Aggressive struct {
	// BatchSize limits each batch; 0 selects the paper's Table 6 value
	// for the array size.
	BatchSize int
	// MaxLookahead bounds how far past the cursor the missing-block scan
	// walks (an implementation bound; 0 selects max(4*K, 4096)). The
	// do-no-harm rule is the real limiter except when the cache holds
	// blocks that are never referenced again.
	MaxLookahead int

	s       *engine.State
	batch   int
	horizon int

	// Per-disk batch budget for the current Poll, initialized lazily:
	// stamp[d] != epoch means disk d has not been consulted this Poll, so
	// rem[d] is whatever an older Poll left. Laziness is safe because a
	// disk's free state cannot change between the start of a Poll and its
	// first consultation — the only in-Poll event that busies a disk is a
	// fetch to that very disk, which only happens after consulting it.
	rem   []int
	stamp []int
	epoch int

	// gpos is a global first-missing scanner: every position before it
	// was either passed by the cursor or referenced a block that was
	// present or in flight when scanned. In-flight blocks only become
	// present and present blocks only become absent through an eviction,
	// so the invariant persists until invalidate rewinds the scanner to
	// an evicted victim's next use. The min over the per-disk "first
	// missing block" candidates that define the batch loop is exactly
	// the first missing position (restricted to disks with batch budget),
	// so one global scanner replaces per-disk ones.
	gpos int
}

// NewAggressive returns the multi-disk aggressive policy with the given
// batch size (0 → Table 6 default for the array size).
func NewAggressive(batchSize int) *Aggressive {
	return &Aggressive{BatchSize: batchSize}
}

// Name implements engine.Policy.
func (a *Aggressive) Name() string { return "aggressive" }

// Attach implements engine.Policy.
func (a *Aggressive) Attach(s *engine.State) {
	a.s = s
	a.batch = a.BatchSize
	if a.batch <= 0 {
		a.batch = DefaultBatchSize(len(s.Drives))
	}
	a.horizon = a.MaxLookahead
	if a.horizon <= 0 {
		a.horizon = 4 * s.Cache.Capacity()
		if a.horizon < 4096 {
			a.horizon = 4096
		}
	}
	a.rem = make([]int, len(s.Drives))
	a.stamp = make([]int, len(s.Drives))
	a.epoch = 0
	a.gpos = 0
}

// globalFirstMissing returns the first position >= the cursor (on any
// disk) whose block is missing, or limit if there is none before limit
// (exclusive). Skipped positions referenced blocks that were present or
// in flight when scanned; the scan stops at (without consuming) the
// returned position, so the next call re-validates it.
func (a *Aggressive) globalFirstMissing(limit int) int {
	s := a.s
	p := a.gpos
	if c := s.Cursor(); p < c {
		p = c
	}
	for p < limit && !s.Cache.Absent(s.Ref(p)) {
		p++
	}
	a.gpos = p
	return p
}

// invalidate rewinds the global scanner after block v was evicted: its
// next use may now be a missing position the scanner already passed. It
// returns that next use, or future.Never when no state changed.
func (a *Aggressive) invalidate(v layout.BlockID) int {
	if v == cache.NoBlock {
		return future.Never
	}
	u := a.s.Oracle.NextUse(v)
	if u == future.Never {
		return future.Never
	}
	if u < a.gpos {
		a.gpos = u
	}
	return u
}

// Poll implements engine.Policy: fill batches for every free disk,
// considering the free disks' missing blocks together in order of
// increasing request index.
func (a *Aggressive) Poll() {
	s := a.s
	limit := s.Cursor() + a.horizon
	if n := s.Len(); limit > n {
		limit = n
	}
	limit = s.WindowLimit(limit)
	if s.Cache.FreeBuffers() == 0 {
		p := a.globalFirstMissing(limit)
		if p >= limit {
			return // nothing missing anywhere in the window
		}
		// The batch loop fetches missing positions in ascending order and
		// stops outright on its first do-no-harm failure, so if the rule
		// rejects the globally first missing position it rejects the whole
		// Poll: with a full cache no fetch can be issued. The heap may only
		// be consulted when position p's own disk is free — then p is
		// provably the loop's first fetch attempt, and this is the same
		// FurthestEvictable call the loop would make (stale-entry pops and
		// all); on any other Poll shape the loop decides without the heap
		// or with a different first candidate, so fall through to it.
		if d := s.DiskOf(s.Ref(p)); s.DriveFree(d) {
			if _, vUse := s.Cache.FurthestEvictable(); vUse <= p {
				return
			}
		}
	}
	if !s.AnyDriveFree() {
		return
	}
	a.epoch++

	// Repeatedly fetch the first missing position among the disks that
	// still have batch budget (free at this Poll's start, fewer than
	// batch fetches so far). p walks forward from the global scanner
	// without committing: positions that are missing but on a budgetless
	// disk must be revisited by later Polls. A fetch can only create an
	// earlier missing position by evicting its victim, so p rewinds to
	// the victim's next use when that lands before it.
	p := a.globalFirstMissing(limit)
	for {
		d := -1
		for p < limit {
			b := s.Ref(p)
			if s.Cache.Absent(b) {
				d = s.DiskOf(b)
				if a.stamp[d] != a.epoch {
					a.stamp[d] = a.epoch
					a.rem[d] = 0
					if s.DriveFree(d) {
						a.rem[d] = a.batch
					}
				}
				if a.rem[d] > 0 {
					break
				}
			}
			p++
		}
		if p >= limit {
			break
		}
		ok, victim := a.tryFetch(s.Ref(p), p)
		if !ok {
			// Do no harm disallows any further fetch: every later missing
			// block is needed even later than this one.
			break
		}
		a.rem[d]--
		if u := a.invalidate(victim); u < p {
			p = u
		}
	}
}

// tryFetch applies optimal replacement + do no harm for block b whose
// next reference is at position p.
func (a *Aggressive) tryFetch(b layout.BlockID, p int) (bool, layout.BlockID) {
	return issueWithVictim(a.s, b, p)
}

// OnStall implements engine.Policy: the stalled block is the first missing
// block, so the do-no-harm rule always allows a demand fetch.
func (a *Aggressive) OnStall(b layout.BlockID) {
	s := a.s
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		return
	}
	v, _ := s.Cache.FurthestEvictable()
	if v == cache.NoBlock {
		return // every buffer in flight; the engine retries
	}
	s.Issue(b, v)
	a.invalidate(v)
}
