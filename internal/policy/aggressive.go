package policy

import (
	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
)

// Aggressive is the multi-disk aggressive algorithm (section 2.7 of the
// paper): whenever a disk is free, construct a batch of up to batch-size
// fetches for it — repeatedly take the first missing block on that disk
// and pair it with the cached block whose next reference is furthest in
// the future, as long as the do-no-harm rule allows. When several disks
// are free at once, their missing blocks are considered together in order
// of increasing request index.
type Aggressive struct {
	// BatchSize limits each batch; 0 selects the paper's Table 6 value
	// for the array size.
	BatchSize int
	// MaxLookahead bounds how far past the cursor the missing-block scan
	// walks (an implementation bound; 0 selects max(4*K, 4096)). The
	// do-no-harm rule is the real limiter except when the cache holds
	// blocks that are never referenced again.
	MaxLookahead int

	s       *engine.State
	scan    missScanner
	batch   int
	horizon int
	left    []int
}

// NewAggressive returns the multi-disk aggressive policy with the given
// batch size (0 → Table 6 default for the array size).
func NewAggressive(batchSize int) *Aggressive {
	return &Aggressive{BatchSize: batchSize}
}

// Name implements engine.Policy.
func (a *Aggressive) Name() string { return "aggressive" }

// Attach implements engine.Policy.
func (a *Aggressive) Attach(s *engine.State) {
	a.s = s
	a.scan = missScanner{s: s}
	a.batch = a.BatchSize
	if a.batch <= 0 {
		a.batch = DefaultBatchSize(len(s.Drives))
	}
	a.horizon = a.MaxLookahead
	if a.horizon <= 0 {
		a.horizon = 4 * s.Cache.Capacity()
		if a.horizon < 4096 {
			a.horizon = 4096
		}
	}
	a.left = make([]int, len(s.Drives))
}

// Poll implements engine.Policy: fill batches for every free disk.
func (a *Aggressive) Poll() {
	s := a.s
	// Batch budget per free disk; zero entries mean the disk is busy.
	left := a.left
	anyFree := false
	for i, d := range s.Drives {
		left[i] = 0
		if d.Outstanding() == 0 {
			left[i] = a.batch
			anyFree = true
		}
	}
	if !anyFree {
		return
	}

	limit := s.Cursor() + a.horizon
	firstSkipped := -1
	for {
		p := a.scan.next(limit)
		if p >= s.Len() || p >= limit {
			break
		}
		b := s.Refs[p]
		d := s.DiskOf(b)
		if left[d] == 0 {
			// The block's disk is busy or its batch is full: note the
			// position so the scanner can resume here next time, and keep
			// scanning for the free disks.
			if firstSkipped < 0 {
				firstSkipped = p
			}
			a.scan.pos = p + 1
			continue
		}
		ok, victim := a.tryFetch(b, p)
		if !ok {
			// Do no harm disallows any further fetch: every later missing
			// block is needed even later than this one.
			break
		}
		a.scan.invalidate(victim)
		left[d]--
		// Check whether any free disk still has batch budget.
		anyFree = false
		for i := range s.Drives {
			if left[i] > 0 {
				anyFree = true
				break
			}
		}
		if !anyFree {
			break
		}
	}
	if firstSkipped >= 0 && firstSkipped < a.scan.pos {
		// Restore the scanner invariant: the skipped position still
		// references a missing block.
		a.scan.pos = firstSkipped
	}
}

// tryFetch applies optimal replacement + do no harm for block b whose
// next reference is at position p.
func (a *Aggressive) tryFetch(b layout.BlockID, p int) (bool, layout.BlockID) {
	return issueWithVictim(a.s, b, p)
}

// OnStall implements engine.Policy: the stalled block is the first missing
// block, so the do-no-harm rule always allows a demand fetch.
func (a *Aggressive) OnStall(b layout.BlockID) {
	s := a.s
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		return
	}
	v, _ := s.Cache.FurthestEvictable()
	if v == cache.NoBlock {
		return // every buffer in flight; the engine retries
	}
	s.Issue(b, v)
	a.scan.invalidate(v)
}
