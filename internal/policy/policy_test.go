package policy

import (
	"testing"

	"ppcsim/internal/disk"
	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
	"ppcsim/internal/trace"
)

// fixedModel serves every request in a constant time.
type fixedModel struct{ ms float64 }

func (m fixedModel) Service(int64, float64) float64 { return m.ms }
func (m fixedModel) Reset()                         {}

func fixed(ms float64) func() disk.Model {
	return func() disk.Model { return fixedModel{ms} }
}

// loopTrace builds `passes` sequential passes over n blocks with uniform
// compute time.
func loopTrace(n, passes int, computeMs float64, cacheBlocks int) *trace.Trace {
	tr := &trace.Trace{
		Name:        "loop",
		Files:       []layout.File{{First: 0, Blocks: n}},
		CacheBlocks: cacheBlocks,
	}
	for p := 0; p < passes; p++ {
		for i := 0; i < n; i++ {
			tr.Refs = append(tr.Refs, trace.Ref{Block: layout.BlockID(i), ComputeMs: computeMs})
		}
	}
	return tr
}

func mustRun(t *testing.T, cfg engine.Config) engine.Result {
	t.Helper()
	r, err := engine.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDefaultBatchSizeTable6(t *testing.T) {
	want := map[int]int{1: 80, 2: 40, 3: 40, 4: 16, 5: 16, 6: 8, 7: 8, 8: 4, 10: 4, 12: 4, 16: 4}
	for d, w := range want {
		if got := DefaultBatchSize(d); got != w {
			t.Errorf("DefaultBatchSize(%d) = %d, want %d (paper Table 6)", d, got, w)
		}
	}
}

func TestDemandFetchesOnlyOnMiss(t *testing.T) {
	// All blocks fit in cache: demand fetches each block exactly once.
	tr := loopTrace(50, 4, 1.0, 64)
	r := mustRun(t, engine.Config{Trace: tr, Policy: NewDemand(), Disks: 1, Model: fixed(5)})
	if r.Fetches != 50 {
		t.Errorf("fetches = %d, want 50", r.Fetches)
	}
	if r.CacheMisses != 50 || r.CacheHits != int64(len(tr.Refs)-50) {
		t.Errorf("hits=%d misses=%d", r.CacheHits, r.CacheMisses)
	}
	// Every miss stalls the full fetch time under demand fetching.
	if r.StallTimeSec <= 0 {
		t.Error("demand fetching should stall")
	}
}

func TestFixedHorizonEliminatesStallWhenComputeBound(t *testing.T) {
	// 5ms fetch, 10ms compute: one disk is plenty; fixed horizon should
	// fully hide I/O after the first H-window warmup. The loop must be
	// longer than H=62, otherwise the "victim further than H away"
	// condition can never hold on a loop.
	tr := loopTrace(200, 3, 10.0, 150)
	fh := mustRun(t, engine.Config{Trace: tr, Policy: NewFixedHorizon(0), Disks: 1, Model: fixed(5)})
	if fh.StallTimeSec > 0.010 {
		t.Errorf("fixed horizon stall = %gs, want ~0", fh.StallTimeSec)
	}
	dm := mustRun(t, engine.Config{Trace: tr, Policy: NewDemand(), Disks: 1, Model: fixed(5)})
	if fh.ElapsedSec >= dm.ElapsedSec {
		t.Errorf("fixed horizon (%g) should beat demand (%g)", fh.ElapsedSec, dm.ElapsedSec)
	}
}

func TestFixedHorizonFetchCountOnLoop(t *testing.T) {
	// Loop of n blocks, cache K < n: fixed horizon evicts the
	// furthest-future block like MIN, so it performs the same minimal
	// n + (passes-1)*(n-K) fetches plus at most the horizon warmup.
	const n, k, passes = 60, 40, 4
	tr := loopTrace(n, passes, 1.0, k)
	r := mustRun(t, engine.Config{Trace: tr, Policy: NewFixedHorizon(10), Disks: 1, Model: fixed(2)})
	min := int64(n + (passes-1)*(n-k))
	if r.Fetches < min {
		t.Errorf("fetches = %d, below the MIN bound %d", r.Fetches, min)
	}
	if r.Fetches > min+int64(n) {
		t.Errorf("fetches = %d, way above the MIN bound %d", r.Fetches, min)
	}
}

func TestFixedHorizonHonorsHorizon(t *testing.T) {
	// With an H of 4 and huge compute times, at most H blocks should ever
	// be outstanding; with everything cacheable there is exactly one
	// fetch per distinct block.
	tr := loopTrace(30, 2, 50.0, 32)
	r := mustRun(t, engine.Config{Trace: tr, Policy: NewFixedHorizon(4), Disks: 4, Model: fixed(5)})
	if r.Fetches != 30 {
		t.Errorf("fetches = %d, want 30", r.Fetches)
	}
}

func TestFixedHorizonLargerThanCache(t *testing.T) {
	// H > K exercises the retry path ("provided that reference is
	// further than H accesses in the future" can fail).
	tr := loopTrace(50, 4, 1.0, 20)
	r := mustRun(t, engine.Config{Trace: tr, Policy: NewFixedHorizon(200), Disks: 2, Model: fixed(5)})
	if r.CacheHits+r.CacheMisses != int64(len(tr.Refs)) {
		t.Error("not every reference was served")
	}
}

func TestAggressivePrefetchesEverythingOnce(t *testing.T) {
	// All blocks fit: aggressive prefetches each block exactly once and
	// eliminates almost all stalling even with fast references.
	tr := loopTrace(50, 4, 2.0, 64)
	r := mustRun(t, engine.Config{Trace: tr, Policy: NewAggressive(0), Disks: 2, Model: fixed(4)})
	if r.Fetches != 50 {
		t.Errorf("fetches = %d, want 50 (no wasted fetches when everything fits)", r.Fetches)
	}
	dm := mustRun(t, engine.Config{Trace: tr, Policy: NewDemand(), Disks: 2, Model: fixed(4)})
	if r.ElapsedSec >= dm.ElapsedSec {
		t.Errorf("aggressive (%g) should beat demand (%g)", r.ElapsedSec, dm.ElapsedSec)
	}
}

func TestAggressiveBeatsFixedHorizonWhenIOBound(t *testing.T) {
	// The paper's synth single-disk case: the cached 1280-block run makes
	// fixed horizon idle the disk until the last H cached blocks, while
	// aggressive prefetches the distant missing cluster throughout.
	tr, err := trace.ByName("synth")
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.Truncate(20000)
	ag := mustRun(t, engine.Config{Trace: tr, Policy: NewAggressive(0), Disks: 1})
	fh := mustRun(t, engine.Config{Trace: tr, Policy: NewFixedHorizon(0), Disks: 1})
	if ag.ElapsedSec >= fh.ElapsedSec {
		t.Errorf("I/O bound: aggressive (%g) should beat fixed horizon (%g)", ag.ElapsedSec, fh.ElapsedSec)
	}
	if fh.StallTimeSec <= ag.StallTimeSec {
		t.Errorf("fixed horizon should stall more (fh %g vs ag %g)", fh.StallTimeSec, ag.StallTimeSec)
	}
}

func TestFixedHorizonBeatsAggressiveWhenComputeBound(t *testing.T) {
	// Plenty of disks and compute-bound: aggressive wastes fetches
	// (driver overhead) re-fetching the loop, fixed horizon does not
	// (the paper's synth 3-disk observation).
	tr := loopTrace(200, 6, 6.0, 128)
	ag := mustRun(t, engine.Config{Trace: tr, Policy: NewAggressive(0), Disks: 4, Model: fixed(8)})
	fh := mustRun(t, engine.Config{Trace: tr, Policy: NewFixedHorizon(0), Disks: 4, Model: fixed(8)})
	if fh.ElapsedSec > ag.ElapsedSec {
		t.Errorf("compute bound: fixed horizon (%g) should not lose to aggressive (%g)", fh.ElapsedSec, ag.ElapsedSec)
	}
	if ag.Fetches <= fh.Fetches {
		t.Errorf("aggressive fetches (%d) should exceed fixed horizon's (%d) here", ag.Fetches, fh.Fetches)
	}
}

func TestAggressiveBatchSizeAffectsIssue(t *testing.T) {
	tr := loopTrace(300, 3, 1.0, 128)
	small := mustRun(t, engine.Config{Trace: tr, Policy: NewAggressive(1), Disks: 1, Model: fixed(8)})
	big := mustRun(t, engine.Config{Trace: tr, Policy: NewAggressive(80), Disks: 1, Model: fixed(8)})
	if small.Fetches == 0 || big.Fetches == 0 {
		t.Fatal("no fetches")
	}
	// Both must serve the whole trace correctly regardless of batch.
	if small.CacheHits+small.CacheMisses != int64(len(tr.Refs)) ||
		big.CacheHits+big.CacheMisses != int64(len(tr.Refs)) {
		t.Error("not every reference was served")
	}
}

func TestForestallMatchesAggressiveWhenIOBound(t *testing.T) {
	tr := loopTrace(200, 6, 1.0, 128)
	fo := mustRun(t, engine.Config{Trace: tr, Policy: NewForestall(), Disks: 1, Model: fixed(8)})
	ag := mustRun(t, engine.Config{Trace: tr, Policy: NewAggressive(0), Disks: 1, Model: fixed(8)})
	if fo.ElapsedSec > ag.ElapsedSec*1.10 {
		t.Errorf("I/O bound: forestall (%g) should be within 10%% of aggressive (%g)", fo.ElapsedSec, ag.ElapsedSec)
	}
}

func TestForestallMatchesFixedHorizonWhenComputeBound(t *testing.T) {
	tr := loopTrace(200, 6, 6.0, 128)
	fo := mustRun(t, engine.Config{Trace: tr, Policy: NewForestall(), Disks: 4, Model: fixed(8)})
	fh := mustRun(t, engine.Config{Trace: tr, Policy: NewFixedHorizon(0), Disks: 4, Model: fixed(8)})
	ag := mustRun(t, engine.Config{Trace: tr, Policy: NewAggressive(0), Disks: 4, Model: fixed(8)})
	if fo.ElapsedSec > fh.ElapsedSec*1.10 {
		t.Errorf("compute bound: forestall (%g) should track fixed horizon (%g), aggressive was %g",
			fo.ElapsedSec, fh.ElapsedSec, ag.ElapsedSec)
	}
	if fo.Fetches > ag.Fetches {
		t.Errorf("compute bound: forestall fetches (%d) should not exceed aggressive's (%d)", fo.Fetches, ag.Fetches)
	}
}

func TestForestallFixedEstimate(t *testing.T) {
	tr := loopTrace(100, 3, 2.0, 64)
	for _, f := range []float64{1, 15, 60} {
		p := NewForestall()
		p.FixedF = f
		r := mustRun(t, engine.Config{Trace: tr, Policy: p, Disks: 2, Model: fixed(6)})
		if r.CacheHits+r.CacheMisses != int64(len(tr.Refs)) {
			t.Errorf("F'=%g: not every reference served", f)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if NewDemand().Name() != "demand" ||
		NewFixedHorizon(0).Name() != "fixed-horizon" ||
		NewAggressive(0).Name() != "aggressive" ||
		NewForestall().Name() != "forestall" {
		t.Error("policy names changed")
	}
}

func TestPoliciesOnAllDisciplines(t *testing.T) {
	tr := loopTrace(80, 3, 1.0, 48)
	pols := []func() engine.Policy{
		func() engine.Policy { return NewDemand() },
		func() engine.Policy { return NewFixedHorizon(0) },
		func() engine.Policy { return NewAggressive(0) },
		func() engine.Policy { return NewForestall() },
	}
	for _, mk := range pols {
		for _, disc := range []disk.Discipline{disk.CSCAN, disk.FCFS} {
			for _, d := range []int{1, 2, 5} {
				p := mk()
				r := mustRun(t, engine.Config{Trace: tr, Policy: p, Disks: d, Discipline: disc})
				if r.CacheHits+r.CacheMisses != int64(len(tr.Refs)) {
					t.Errorf("%s/%v/d=%d: served %d refs, want %d",
						p.Name(), disc, d, r.CacheHits+r.CacheMisses, len(tr.Refs))
				}
			}
		}
	}
}
