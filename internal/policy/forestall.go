package policy

import (
	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/future"
	"ppcsim/internal/layout"
)

const (
	// historyLen is the number of recent disk accesses and compute times
	// forestall averages when estimating F (section 5 of the paper).
	historyLen = 100
	// slowDiskMs is the average access time above which forestall
	// overestimates F by 4x (section 5: traces with small access times —
	// mostly readahead hits served in arrival order — need no
	// overestimate; complicated patterns do).
	slowDiskMs = 5.0
	// overestimateFactor is that overestimate.
	overestimateFactor = 4.0
	// recheckCap bounds how long a disk's stall forecast may be trusted
	// before rescanning, keeping the incremental trigger cheap.
	recheckCap = 64
	// defaultF seeds the estimate before any disk access completes.
	defaultF = 15.0
)

// Forestall is the paper's new hybrid algorithm: it avoids stalling while
// still making late (near-optimal) replacement decisions by estimating,
// per disk, the point at which prefetching must begin to forestall a
// stall. With dᵢ the distance to the i-th missing block on a disk and F'
// an (over)estimate of the fetch-time/compute-time ratio, a stall is
// inevitable once i·F' > dᵢ, so forestall starts batching prefetches for
// that disk. It also applies fixed horizon's rule — fetch any missing
// block within H references — to survive CSCAN reordering.
type Forestall struct {
	// BatchSize is the per-disk batch limit (0 → Table 6 default).
	BatchSize int
	// Horizon is the fixed-horizon safety rule's H (0 → DefaultHorizon).
	Horizon int
	// FixedF, when positive, disables dynamic estimation and uses this
	// value for F' everywhere (the appendix-H configurations).
	FixedF float64
	// WindowBlocks bounds the missing-block scan to this many references
	// past the cursor (0 → 2K as in the paper).
	WindowBlocks int

	s       *engine.State
	batch   int
	horizon int
	window  int

	// Recent-history F estimation.
	diskHist [][]float64
	diskSum  []float64
	diskPos  []int
	diskN    []int
	cpuHist  []float64
	cpuSum   float64
	cpuPos   int
	cpuN     int
	seenCPU  int // cursor position up to which compute times were sampled

	// Per-disk stall forecast: rescan disk d once the cursor reaches
	// nextCheck[d].
	nextCheck []int

	// dindex groups reference positions by disk so forecast and
	// issueBatch walk only disk d's positions (via Scan, which keeps the
	// per-disk monotone cursor internally).
	dindex *future.DiskIndex

	// Fixed-horizon rule scan state.
	fhScanned int
	fhRetry   []int
}

// NewForestall returns the forestall policy with paper defaults.
func NewForestall() *Forestall { return &Forestall{} }

// Name implements engine.Policy.
func (f *Forestall) Name() string { return "forestall" }

// Attach implements engine.Policy.
func (f *Forestall) Attach(s *engine.State) {
	f.s = s
	d := len(s.Drives)
	f.batch = f.BatchSize
	if f.batch <= 0 {
		f.batch = DefaultBatchSize(d)
	}
	f.horizon = f.Horizon
	if f.horizon <= 0 {
		f.horizon = DefaultHorizon
	}
	f.window = f.WindowBlocks
	if f.window <= 0 {
		f.window = 2 * s.Cache.Capacity()
	}
	f.diskHist = make([][]float64, d)
	for i := range f.diskHist {
		f.diskHist[i] = make([]float64, historyLen)
	}
	f.diskSum = make([]float64, d)
	f.diskPos = make([]int, d)
	f.diskN = make([]int, d)
	f.cpuHist = make([]float64, historyLen)
	f.cpuSum, f.cpuPos, f.cpuN, f.seenCPU = 0, 0, 0, 0
	f.nextCheck = make([]int, d)
	f.dindex = s.DiskIndex()
	f.fhScanned = 0
	f.fhRetry = f.fhRetry[:0]
	s.OnComplete = f.onComplete
}

// onComplete records a disk access time sample.
func (f *Forestall) onComplete(d int, svc float64) {
	h := f.diskHist[d]
	f.diskSum[d] += svc - h[f.diskPos[d]]
	h[f.diskPos[d]] = svc
	f.diskPos[d] = (f.diskPos[d] + 1) % historyLen
	if f.diskN[d] < historyLen {
		f.diskN[d]++
	}
}

// sampleCPU folds newly consumed inter-reference compute times into the
// history ring.
func (f *Forestall) sampleCPU() {
	c := f.s.Cursor()
	for ; f.seenCPU < c; f.seenCPU++ {
		v := f.s.ComputeMs(f.seenCPU)
		f.cpuSum += v - f.cpuHist[f.cpuPos]
		f.cpuHist[f.cpuPos] = v
		f.cpuPos = (f.cpuPos + 1) % historyLen
		if f.cpuN < historyLen {
			f.cpuN++
		}
	}
}

// fprime returns F' for disk d: the ratio of recent disk time to recent
// compute time, overestimated 4x when the disk is slow, or the fixed
// override.
func (f *Forestall) fprime(d int) float64 {
	if f.FixedF > 0 {
		return f.FixedF
	}
	if f.diskN[d] == 0 || f.cpuN == 0 || f.cpuSum <= 0 {
		return defaultF
	}
	meanDisk := f.diskSum[d] / float64(f.diskN[d])
	meanCPU := f.cpuSum / float64(f.cpuN)
	fEst := meanDisk / meanCPU
	if meanDisk >= slowDiskMs {
		fEst *= overestimateFactor
	}
	if fEst < 1 {
		fEst = 1
	}
	return fEst
}

// Poll implements engine.Policy.
func (f *Forestall) Poll() {
	f.sampleCPU()
	f.pollHorizonRule()
	s := f.s
	c := s.Cursor()
	for d := range s.Drives {
		if !s.DriveFree(d) {
			continue
		}
		if c < f.nextCheck[d] {
			continue
		}
		f.forecast(d)
	}
}

// forecast rescans disk d's upcoming missing blocks; if a stall is
// inevitable (i*F' > d_i for some i), it issues a batch of prefetches,
// otherwise it schedules the next check for when the forecast could first
// turn bad.
func (f *Forestall) forecast(d int) {
	s := f.s
	c := s.Cursor()
	limit := c + f.window
	if n := s.Len(); limit > n {
		limit = n
	}
	limit = s.WindowLimit(limit)
	fp := f.fprime(d)
	i := 0
	minSlack := 1 << 30
	trigger := false
	f.dindex.Scan(d, c, func(p int) bool {
		if p >= limit {
			return false
		}
		if !s.Cache.Absent(s.Ref(p)) {
			return true
		}
		i++
		slack := (p - c) - int(float64(i)*fp)
		if slack < minSlack {
			minSlack = slack
		}
		if slack < 0 {
			trigger = true
			return false
		}
		return true
	})
	if !trigger {
		wait := minSlack
		if wait < 1 {
			wait = 1
		}
		if wait > recheckCap {
			wait = recheckCap
		}
		f.nextCheck[d] = c + wait
		return
	}
	f.issueBatch(d)
	f.nextCheck[d] = c // re-evaluate at the next decision point
}

// issueBatch fetches up to batch-size first-missing blocks on disk d,
// applying optimal replacement and do no harm.
func (f *Forestall) issueBatch(d int) {
	s := f.s
	c := s.Cursor()
	limit := c + f.window
	if n := s.Len(); limit > n {
		limit = n
	}
	limit = s.WindowLimit(limit)
	left := f.batch
	f.dindex.Scan(d, c, func(p int) bool {
		if p >= limit || left <= 0 {
			return false
		}
		b := s.Ref(p)
		if !s.Cache.Absent(b) {
			return true
		}
		ok, victim := issueWithVictim(s, b, p)
		if !ok {
			return false // do no harm stops everything later too
		}
		f.noteEviction(victim)
		left--
		return true
	})
}

// pollHorizonRule applies fixed horizon's rule: fetch any missing block
// within H references, replacing the furthest-future block. This guards
// against stalls caused by CSCAN reordering when the i·F' > dᵢ rule
// would otherwise delay fetching (section 5, "practical considerations").
func (f *Forestall) pollHorizonRule() {
	s := f.s
	c := s.Cursor()
	limit := c + f.horizon
	if n := s.Len(); limit > n {
		limit = n
	}
	limit = s.WindowLimit(limit)
	if len(f.fhRetry) > 0 {
		kept := f.fhRetry[:0]
		for _, p := range f.fhRetry {
			if p < c {
				continue
			}
			b := s.Ref(p)
			if !s.Cache.Absent(b) {
				continue
			}
			if !f.fetchWithin(b, p) {
				kept = append(kept, p)
			}
		}
		f.fhRetry = kept
	}
	if f.fhScanned < c {
		f.fhScanned = c
	}
	for ; f.fhScanned < limit; f.fhScanned++ {
		b := s.Ref(f.fhScanned)
		if !s.Cache.Absent(b) {
			continue
		}
		if !f.fetchWithin(b, f.fhScanned) {
			f.fhRetry = append(f.fhRetry, f.fhScanned)
		}
	}
}

// fetchWithin issues the horizon-rule fetch of b needed at position p.
func (f *Forestall) fetchWithin(b layout.BlockID, p int) bool {
	ok, victim := issueWithVictim(f.s, b, p)
	if ok {
		f.noteEviction(victim)
	}
	return ok
}

// noteEviction invalidates the stall forecast of the victim's disk: its
// next use has become a missing block. The next use is read through
// NextUseVisible — the raw oracle answer would leak knowledge beyond the
// lookahead window into the recheck schedule (harmless for correctness,
// but it would make windowed streamed and materialized runs diverge).
func (f *Forestall) noteEviction(v layout.BlockID) {
	if v == cache.NoBlock {
		return
	}
	if u := f.s.NextUseVisible(v); u < f.s.Cursor()+f.window {
		f.nextCheck[f.s.DiskOf(v)] = 0
	}
}

// OnStall implements engine.Policy.
func (f *Forestall) OnStall(b layout.BlockID) {
	s := f.s
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
	} else if v, _ := s.Cache.FurthestEvictable(); v != cache.NoBlock {
		s.Issue(b, v)
		f.noteEviction(v)
	}
	for d := range f.nextCheck {
		f.nextCheck[d] = 0
	}
}
