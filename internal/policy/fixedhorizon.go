package policy

import (
	"sort"

	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
)

// DefaultHorizon is the prefetch horizon used throughout the paper:
// the ratio of an (over)estimated 15 ms average disk response time to the
// 243 µs TIP2 cost of reading a block from the cache gives H = 62.
const DefaultHorizon = 62

// FixedHorizon is the TIP2-derived algorithm restricted to a single
// hinting process: whenever a missing block is at most H references in
// the future, issue a fetch for it, replacing the cached block whose next
// reference is furthest in the future, provided that reference is further
// than H accesses away. It may have up to H outstanding requests, giving
// the disk scheduler reordering opportunities.
type FixedHorizon struct {
	H int

	s       *engine.State
	scanned int   // positions [0, scanned) have been window-checked
	pending []int // missing in-window positions awaiting a legal fetch
}

// NewFixedHorizon returns a fixed-horizon policy with the given prefetch
// horizon (DefaultHorizon if h <= 0).
func NewFixedHorizon(h int) *FixedHorizon {
	if h <= 0 {
		h = DefaultHorizon
	}
	return &FixedHorizon{H: h}
}

// Name implements engine.Policy.
func (f *FixedHorizon) Name() string { return "fixed-horizon" }

// Attach implements engine.Policy.
func (f *FixedHorizon) Attach(s *engine.State) {
	f.s = s
	f.scanned = 0
	f.pending = f.pending[:0]
}

// Poll implements engine.Policy: collect every position newly inside the
// prefetch window [cursor, cursor+H) whose block is missing, and fetch
// the pending positions in ascending order (the optimal-fetching rule:
// the soonest-needed missing block first). With H <= K every pending
// fetch is legal immediately; with huge horizons (H > K, the appendix-G
// configurations) the do-no-harm guard can defer the tail of the queue.
func (f *FixedHorizon) Poll() {
	s := f.s
	c := s.Cursor()
	limit := c + f.H
	if n := s.Len(); limit > n {
		limit = n
	}
	limit = s.WindowLimit(limit)
	if f.scanned < c {
		f.scanned = c
	}
	for ; f.scanned < limit; f.scanned++ {
		if s.Cache.Absent(s.Ref(f.scanned)) {
			f.pending = append(f.pending, f.scanned)
		}
	}
	if len(f.pending) == 0 {
		return
	}
	sort.Ints(f.pending)
	kept := f.pending[:0]
	blocked := false
	for i, p := range f.pending {
		if p < c {
			continue
		}
		b := s.Ref(p)
		if !s.Cache.Absent(b) {
			continue
		}
		if blocked {
			kept = append(kept, p)
			continue
		}
		if !f.fetch(b, p) {
			// The do-no-harm guard failed at p; it fails for every later
			// position too (the victim's next use only looked worse).
			blocked = true
			kept = append(kept, f.pending[i:]...)
			break
		}
	}
	f.pending = kept
}

// fetch issues the fixed-horizon fetch for b, needed at position p. The
// victim is the furthest-future block, "provided that reference is
// further than H accesses in the future (which will certainly hold if
// H <= K)"; when a huge horizon (H > K, the appendix-G configurations)
// breaks that guarantee, the do-no-harm rule is the operative guard —
// the paper's measured fetch counts at H = 2048 show its implementation
// still prefetching, which only do-no-harm permits.
func (f *FixedHorizon) fetch(b layout.BlockID, p int) bool {
	s := f.s
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		return true
	}
	v, vUse := s.Cache.FurthestEvictable()
	if v == cache.NoBlock || vUse <= p {
		return false
	}
	s.Issue(b, v)
	if vUse < f.scanned {
		// With H > K the victim's next reference can land inside the
		// already-scanned window; queue that position so the newly
		// missing block is still fetched. (With H <= K the guarantee
		// vUse > cursor+H makes this impossible.)
		f.pending = append(f.pending, vUse)
	}
	return true
}

// OnStall implements engine.Policy. A stall on an unissued block can only
// happen when the horizon rule was not allowed to fetch it; fall back to a
// demand fetch with optimal replacement.
func (f *FixedHorizon) OnStall(b layout.BlockID) {
	demandFetch(f.s, b)
}
