package policy

import (
	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
)

const (
	// readaheadMinRun is the number of consecutive equal block-id deltas
	// required before the detector trusts a run and starts prefetching.
	readaheadMinRun = 2
	// readaheadMinDepth is the prefetch depth of a freshly confirmed run.
	readaheadMinDepth = 4
	// readaheadMaxDepth caps the adaptive depth (Readahead.MaxDepth = 0).
	readaheadMaxDepth = 32
)

// Readahead is sequential readahead with adaptive depth — the classic
// hint-less file system prefetcher, included as the online lower bound of
// the knowledge spectrum (full hints > lookahead window > readahead >
// pure demand). It watches the observed reference stream for constant-
// stride runs (stride 1 is plain sequential scanning; the detector works
// for any constant delta, wrapping modulo the block space) and, once a
// run is readaheadMinRun deltas long, prefetches the extrapolated
// continuation. The depth doubles every time the run continues and
// resets when it breaks, mirroring the ramp-up of production readahead
// implementations. Replacement is LRU — with no future knowledge the
// oracle-based rules are off limits.
type Readahead struct {
	// MaxDepth caps the adaptive prefetch depth (0 → 32).
	MaxDepth int

	s   *engine.State
	rec recency

	seen   int            // detector's position: refs before it are consumed
	prev   layout.BlockID // last observed block
	delta  int            // current run's stride, 0 = none
	runLen int            // consecutive deltas matching the stride
	depth  int            // current prefetch depth
}

// NewReadahead returns the adaptive sequential readahead policy.
func NewReadahead() *Readahead { return &Readahead{} }

// Name implements engine.Policy.
func (r *Readahead) Name() string { return "readahead" }

// Attach implements engine.Policy.
func (r *Readahead) Attach(s *engine.State) {
	r.s = s
	r.rec.attach(s)
	r.seen = 0
	r.prev = cache.NoBlock
	r.delta, r.runLen, r.depth = 0, 0, 0
}

func (r *Readahead) maxDepth() int {
	if r.MaxDepth > 0 {
		return r.MaxDepth
	}
	return readaheadMaxDepth
}

// observe folds newly consumed references into the run detector.
func (r *Readahead) observe() {
	c := r.s.Cursor()
	for ; r.seen < c; r.seen++ {
		b := r.s.Observed(r.seen)
		if r.prev == cache.NoBlock || b == r.prev {
			r.prev = b
			continue
		}
		n := r.s.Layout.NumBlocks()
		d := (int(b) - int(r.prev) + n) % n
		switch {
		case d == r.delta:
			r.runLen++
			if r.runLen >= readaheadMinRun {
				// The run keeps confirming; ramp the depth up.
				if r.depth == 0 {
					r.depth = readaheadMinDepth
				} else if r.depth < r.maxDepth() {
					r.depth *= 2
					if r.depth > r.maxDepth() {
						r.depth = r.maxDepth()
					}
				}
			}
		default:
			r.delta, r.runLen, r.depth = d, 1, 0
		}
		r.prev = b
	}
}

// Poll implements engine.Policy: keep the detector and recency tracking
// current, and prefetch the run's extrapolation while one is confirmed.
// A prefetch round is issued only when a new reference has been observed
// since the last one: Poll also fires on every disk completion, and
// re-issuing there would let the policy chase its own evictions — under
// cache pressure it can even evict the block the app is stalled on
// (whose recency entry stays stale until the reference is served),
// deadlocking the simulated app.
func (r *Readahead) Poll() {
	r.rec.track()
	prevSeen := r.seen
	r.observe()
	if r.seen == prevSeen || r.runLen < readaheadMinRun || r.depth == 0 {
		return
	}
	s := r.s
	n := s.Layout.NumBlocks()
	for k := 1; k <= r.depth; k++ {
		b := layout.BlockID((int(r.prev) + k*r.delta) % n)
		if !s.Cache.Absent(b) {
			continue // present or already in flight
		}
		if !r.speculativeFetch(b) {
			return
		}
	}
}

// speculativeFetch issues a prefetch of b into a free buffer, or over the
// least-recently-used block. It reports false when no buffer can be
// claimed (every candidate in flight), which ends the batch.
func (r *Readahead) speculativeFetch(b layout.BlockID) bool {
	s := r.s
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		r.rec.noteInserted(b)
		return true
	}
	v := r.rec.leastRecent()
	if v == cache.NoBlock {
		return false
	}
	s.Issue(b, v)
	r.rec.noteInserted(b)
	return true
}

// OnStall implements engine.Policy: demand-fetch the missed block with an
// LRU victim.
func (r *Readahead) OnStall(b layout.BlockID) {
	r.rec.track()
	r.observe()
	s := r.s
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		return
	}
	if v := r.rec.leastRecent(); v != cache.NoBlock {
		s.Issue(b, v)
	}
	// Otherwise every buffer is in flight; the engine retries after the
	// next completion.
}
