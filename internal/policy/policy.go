// Package policy implements the online integrated prefetching and caching
// algorithms compared by the paper: optimal demand fetching, fixed
// horizon, (multi-disk) aggressive, and forestall. The offline reverse
// aggressive algorithm lives in package revagg.
package policy

import (
	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
)

// DefaultBatchSizes reproduces Table 6 of the paper: the batch size used
// by aggressive (and forestall) as a function of the number of disks.
func DefaultBatchSize(disks int) int {
	switch {
	case disks <= 1:
		return 80
	case disks <= 3:
		return 40
	case disks <= 5:
		return 16
	case disks <= 7:
		return 8
	default:
		return 4
	}
}

// missScanner incrementally finds the next "missing" position: the first
// position at or after the cursor whose block is neither present nor in
// flight. The invariant is that every position in [cursor, pos) referenced
// a block that was present or in flight when scanned; evictions that
// falsify this must be reported via invalidate.
type missScanner struct {
	s   *engine.State
	pos int
}

// next returns the first missing position >= the cursor, or the trace
// length if none exists at or before limit (exclusive). The scan never
// walks past limit.
func (m *missScanner) next(limit int) int {
	c := m.s.Cursor()
	if m.pos < c {
		m.pos = c
	}
	n := m.s.Len()
	if limit > n {
		limit = n
	}
	for m.pos < limit {
		b := m.s.Refs[m.pos]
		if m.s.Cache.Absent(b) {
			return m.pos
		}
		m.pos++
	}
	return n
}

// invalidate rewinds the scanner after block v was evicted: its next use
// may now be a missing position the scanner already passed.
func (m *missScanner) invalidate(v layout.BlockID) {
	if v == cache.NoBlock {
		return
	}
	if u := m.s.Oracle.NextUse(v); u < m.pos {
		m.pos = u
	}
}

// issueWithVictim fetches block b applying the optimal replacement rule
// and the do-no-harm rule: the victim is the present block whose next
// reference is furthest in the future; the fetch happens only if a free
// buffer exists or the victim's next use is after needPos. It reports
// whether the fetch was issued, and the victim used (NoBlock if none).
func issueWithVictim(s *engine.State, b layout.BlockID, needPos int) (bool, layout.BlockID) {
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		return true, cache.NoBlock
	}
	v, vUse := s.Cache.FurthestEvictable()
	if v == cache.NoBlock {
		return false, cache.NoBlock
	}
	if vUse <= needPos {
		// Do no harm: never evict a block needed no later than the block
		// being fetched.
		return false, cache.NoBlock
	}
	s.Issue(b, v)
	return true, v
}
