// Package policy implements the online integrated prefetching and caching
// algorithms compared by the paper: optimal demand fetching, fixed
// horizon, (multi-disk) aggressive, and forestall. The offline reverse
// aggressive algorithm lives in package revagg.
package policy

import (
	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
)

// DefaultBatchSizes reproduces Table 6 of the paper: the batch size used
// by aggressive (and forestall) as a function of the number of disks.
func DefaultBatchSize(disks int) int {
	switch {
	case disks <= 1:
		return 80
	case disks <= 3:
		return 40
	case disks <= 5:
		return 16
	case disks <= 7:
		return 8
	default:
		return 4
	}
}

// issueWithVictim fetches block b applying the optimal replacement rule
// and the do-no-harm rule: the victim is the present block whose next
// reference is furthest in the future; the fetch happens only if a free
// buffer exists or the victim's next use is after needPos. It reports
// whether the fetch was issued, and the victim used (NoBlock if none).
func issueWithVictim(s *engine.State, b layout.BlockID, needPos int) (bool, layout.BlockID) {
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		return true, cache.NoBlock
	}
	v, vUse := s.Cache.FurthestEvictable()
	if v == cache.NoBlock {
		return false, cache.NoBlock
	}
	if vUse <= needPos {
		// Do no harm: never evict a block needed no later than the block
		// being fetched.
		return false, cache.NoBlock
	}
	s.Issue(b, v)
	return true, v
}
