package policy

import (
	"container/heap"

	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
)

// recency is the observed-reference recency tracker shared by the
// hint-less policies (demand-lru, readahead, history). It works from
// State.Observed — the exact access history any real buffer cache sees —
// so it is immune to hint quality and never consults the oracle.
type recency struct {
	s *engine.State

	lastUse []int // per block: most recent reference position, -1 if never
	seen    int   // cursor position up to which lastUse is updated
	h       lruHeap
}

func (r *recency) attach(s *engine.State) {
	r.s = s
	r.lastUse = make([]int, s.Layout.NumBlocks())
	for i := range r.lastUse {
		r.lastUse[i] = -1
	}
	r.seen = 0
	r.h = r.h[:0]
}

// track folds newly consumed references into the recency bookkeeping.
func (r *recency) track() {
	c := r.s.Cursor()
	for ; r.seen < c; r.seen++ {
		b := r.s.Observed(r.seen)
		r.lastUse[b] = r.seen
		if r.s.Cache.Present(b) {
			heap.Push(&r.h, lruEntry{block: b, used: int32(r.seen)})
		}
	}
}

// noteInserted registers a block the policy prefetched speculatively: it
// enters the recency order at the current cursor position (without a heap
// entry — it only becomes an eviction candidate once referenced), so the
// entry-less fallback scan does not victimize a fetch that has not had a
// chance to pay off.
func (r *recency) noteInserted(b layout.BlockID) {
	if c := r.s.Cursor(); r.lastUse[b] < c {
		r.lastUse[b] = c
	}
}

// leastRecent pops the valid least-recently-used present block.
func (r *recency) leastRecent() layout.BlockID {
	for r.h.Len() > 0 {
		top := r.h[0]
		if !r.s.Cache.Present(top.block) || int(top.used) != r.lastUse[top.block] {
			heap.Pop(&r.h)
			continue
		}
		return top.block
	}
	// Present blocks that were fetched but never referenced yet have no
	// heap entry; scan for the least recently inserted one (rare: only
	// when prefetched blocks have not been consumed, which demand
	// fetching itself never causes).
	v, vUse := cache.NoBlock, 1<<62
	for blk := range r.lastUse {
		b := layout.BlockID(blk)
		if r.s.Cache.Present(b) && r.lastUse[blk] < vUse {
			v, vUse = b, r.lastUse[blk]
		}
	}
	return v
}

// DemandLRU is demand fetching with least-recently-used replacement — the
// policy of a conventional hint-less file system buffer cache. The paper
// motivates hints by the two techniques they enable, "deep prefetching
// and better-than-LRU cache replacement"; comparing DemandLRU with Demand
// (demand fetching with offline MIN replacement) isolates the value of
// the replacement half.
type DemandLRU struct {
	s   *engine.State
	rec recency
}

// NewDemandLRU returns the demand-LRU baseline.
func NewDemandLRU() *DemandLRU { return &DemandLRU{} }

// Name implements engine.Policy.
func (d *DemandLRU) Name() string { return "demand-lru" }

// Attach implements engine.Policy.
func (d *DemandLRU) Attach(s *engine.State) {
	d.s = s
	d.rec.attach(s)
}

// Poll implements engine.Policy; demand fetching never prefetches, but the
// recency list must follow the cursor.
func (d *DemandLRU) Poll() { d.rec.track() }

// OnStall implements engine.Policy: fetch the missed block, evicting the
// least recently used present block.
func (d *DemandLRU) OnStall(b layout.BlockID) {
	d.rec.track()
	s := d.s
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		return
	}
	v := d.rec.leastRecent()
	if v == cache.NoBlock {
		return // every buffer in flight; the engine retries
	}
	s.Issue(b, v)
}

// lruEntry is a (possibly stale) recency record.
type lruEntry struct {
	block layout.BlockID
	used  int32
}

// lruHeap is a min-heap on the last-use position.
type lruHeap []lruEntry

func (h lruHeap) Len() int            { return len(h) }
func (h lruHeap) Less(i, j int) bool  { return h[i].used < h[j].used }
func (h lruHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lruHeap) Push(x interface{}) { *h = append(*h, x.(lruEntry)) }
func (h *lruHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
