package policy

import (
	"container/heap"

	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
)

// DemandLRU is demand fetching with least-recently-used replacement — the
// policy of a conventional hint-less file system buffer cache. The paper
// motivates hints by the two techniques they enable, "deep prefetching
// and better-than-LRU cache replacement"; comparing DemandLRU with Demand
// (demand fetching with offline MIN replacement) isolates the value of
// the replacement half.
type DemandLRU struct {
	s *engine.State

	lastUse []int // per block: most recent reference position, -1 if never
	seen    int   // cursor position up to which lastUse is updated
	h       lruHeap
}

// NewDemandLRU returns the demand-LRU baseline.
func NewDemandLRU() *DemandLRU { return &DemandLRU{} }

// Name implements engine.Policy.
func (d *DemandLRU) Name() string { return "demand-lru" }

// Attach implements engine.Policy.
func (d *DemandLRU) Attach(s *engine.State) {
	d.s = s
	d.lastUse = make([]int, s.Layout.NumBlocks())
	for i := range d.lastUse {
		d.lastUse[i] = -1
	}
	d.seen = 0
	d.h = d.h[:0]
}

// track folds newly consumed references into the recency bookkeeping.
// LRU is hint-less: it works from the observed access history, which is
// exact regardless of hint quality.
func (d *DemandLRU) track() {
	c := d.s.Cursor()
	for ; d.seen < c; d.seen++ {
		b := d.s.Observed(d.seen)
		d.lastUse[b] = d.seen
		if d.s.Cache.Present(b) {
			heap.Push(&d.h, lruEntry{block: b, used: int32(d.seen)})
		}
	}
}

// Poll implements engine.Policy; demand fetching never prefetches, but the
// recency list must follow the cursor.
func (d *DemandLRU) Poll() { d.track() }

// OnStall implements engine.Policy: fetch the missed block, evicting the
// least recently used present block.
func (d *DemandLRU) OnStall(b layout.BlockID) {
	d.track()
	s := d.s
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		return
	}
	v := d.leastRecent()
	if v == cache.NoBlock {
		return // every buffer in flight; the engine retries
	}
	s.Issue(b, v)
}

// leastRecent pops the valid least-recently-used present block.
func (d *DemandLRU) leastRecent() layout.BlockID {
	for d.h.Len() > 0 {
		top := d.h[0]
		if !d.s.Cache.Present(top.block) || int(top.used) != d.lastUse[top.block] {
			heap.Pop(&d.h)
			continue
		}
		return top.block
	}
	// Present blocks that were fetched but never referenced yet have no
	// heap entry; scan for one (rare: only when a prefetched block has
	// not been consumed, which demand fetching itself never causes).
	for blk := range d.lastUse {
		b := layout.BlockID(blk)
		if d.s.Cache.Present(b) {
			return b
		}
	}
	return cache.NoBlock
}

// lruEntry is a (possibly stale) recency record.
type lruEntry struct {
	block layout.BlockID
	used  int32
}

// lruHeap is a min-heap on the last-use position.
type lruHeap []lruEntry

func (h lruHeap) Len() int            { return len(h) }
func (h lruHeap) Less(i, j int) bool  { return h[i].used < h[j].used }
func (h lruHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lruHeap) Push(x interface{}) { *h = append(*h, x.(lruEntry)) }
func (h *lruHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
