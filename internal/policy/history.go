package policy

import (
	"ppcsim/internal/cache"
	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
)

const (
	// historySlots bounds the successor table to this many candidates per
	// block, so the association table is O(blocks), never O(blocks²).
	historySlots = 4
	// historyLag is how far apart two references may be to count as an
	// association (MITHRIL's lookahead range).
	historyLag = 4
	// historyMinCount is the support threshold: an association fires only
	// after it was observed this many times.
	historyMinCount = 2
)

// History is a MITHRIL-style history-based prefetcher: it mines sporadic
// block associations from the observed reference stream — pairs of blocks
// repeatedly accessed within historyLag references of each other — into a
// bounded per-block successor table, and prefetches a block's supported
// successors whenever it is referenced again. Unlike readahead it needs
// no spatial structure, so it captures the re-occurring irregular
// patterns (metadata before data, header before payload) that sequential
// detection misses. Replacement is LRU; with no future knowledge the
// oracle-based rules are off limits.
type History struct {
	s   *engine.State
	rec recency

	seen int // miner's position: refs before it are consumed

	// assoc[b] holds block b's successor candidates; count saturates and
	// the lowest-count slot is replaced when the table is full.
	assoc [][historySlots]assocSlot

	// prefetchedBy[b] records the trigger of an association prefetch of b
	// (NoBlock = none) and prefetchedAt the reference position it was
	// issued at, to report association hits with their lag.
	prefetchedBy []layout.BlockID
	prefetchedAt []int
}

// assocSlot is one mined association: trigger → block, seen count times.
type assocSlot struct {
	block layout.BlockID
	count int32
}

// NewHistory returns the history-based association prefetcher.
func NewHistory() *History { return &History{} }

// Name implements engine.Policy.
func (h *History) Name() string { return "history" }

// Attach implements engine.Policy.
func (h *History) Attach(s *engine.State) {
	h.s = s
	h.rec.attach(s)
	h.seen = 0
	n := s.Layout.NumBlocks()
	h.assoc = make([][historySlots]assocSlot, n)
	for b := range h.assoc {
		for i := range h.assoc[b] {
			h.assoc[b][i].block = cache.NoBlock
		}
	}
	h.prefetchedBy = make([]layout.BlockID, n)
	for b := range h.prefetchedBy {
		h.prefetchedBy[b] = cache.NoBlock
	}
	h.prefetchedAt = make([]int, n)
}

// note records the association a → b in a's successor table.
func (h *History) note(a, b layout.BlockID) {
	if a == b {
		return
	}
	slots := &h.assoc[a]
	minI := 0
	for i := range slots {
		sl := &slots[i]
		if sl.block == b {
			sl.count++
			return
		}
		if sl.block == cache.NoBlock {
			sl.block, sl.count = b, 1
			return
		}
		if sl.count < slots[minI].count {
			minI = i
		}
	}
	// Table full: replace the weakest association.
	slots[minI] = assocSlot{block: b, count: 1}
}

// observe mines newly consumed references: each new reference b is
// recorded as a successor of the historyLag references before it, and any
// outstanding association prefetch of b is reported as a hit.
func (h *History) observe() {
	c := h.s.Cursor()
	for ; h.seen < c; h.seen++ {
		b := h.s.Observed(h.seen)
		if t := h.prefetchedBy[b]; t != cache.NoBlock {
			h.s.NoteAssociationHit(t, b, h.seen-h.prefetchedAt[b])
			h.prefetchedBy[b] = cache.NoBlock
		}
		lo := h.seen - historyLag
		if lo < 0 {
			lo = 0
		}
		for p := lo; p < h.seen; p++ {
			h.note(h.s.Observed(p), b)
		}
	}
}

// Poll implements engine.Policy: mine the stream and prefetch the
// supported successors of the most recent reference.
func (h *History) Poll() {
	h.rec.track()
	prevSeen := h.seen
	h.observe()
	if h.seen == prevSeen || h.seen == 0 {
		return // no new trigger to act on
	}
	trigger := h.s.Observed(h.seen - 1)
	s := h.s
	for i := range h.assoc[trigger] {
		sl := h.assoc[trigger][i]
		if sl.block == cache.NoBlock || sl.count < historyMinCount {
			continue
		}
		if !s.Cache.Absent(sl.block) {
			continue // present or already in flight
		}
		if !h.speculativeFetch(trigger, sl.block) {
			return
		}
	}
}

// speculativeFetch issues an association prefetch of b triggered by t.
func (h *History) speculativeFetch(t, b layout.BlockID) bool {
	s := h.s
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
	} else if v := h.rec.leastRecent(); v != cache.NoBlock {
		s.Issue(b, v)
	} else {
		return false
	}
	h.rec.noteInserted(b)
	h.prefetchedBy[b] = t
	h.prefetchedAt[b] = s.Cursor()
	return true
}

// OnStall implements engine.Policy: demand-fetch the missed block with an
// LRU victim. A miss also voids any outstanding association credit for
// the block — the prefetch clearly did not cover this use.
func (h *History) OnStall(b layout.BlockID) {
	h.rec.track()
	h.observe()
	h.prefetchedBy[b] = cache.NoBlock
	s := h.s
	if s.Cache.FreeBuffers() > 0 {
		s.Issue(b, cache.NoBlock)
		return
	}
	if v := h.rec.leastRecent(); v != cache.NoBlock {
		s.Issue(b, v)
	}
	// Otherwise every buffer is in flight; the engine retries after the
	// next completion.
}
