package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppcsim/internal/engine"
	"ppcsim/internal/layout"
	"ppcsim/internal/trace"
)

func TestLRUMissesEverythingOnLoop(t *testing.T) {
	// The classic pathology: a cyclic loop one block larger than the
	// cache makes LRU miss every reference, while MIN misses only
	// N-K per pass.
	const n, k, passes = 30, 25, 5
	tr := loopTrace(n, passes, 1.0, k)
	lru := mustRun(t, engine.Config{Trace: tr, Policy: NewDemandLRU(), Disks: 1, Model: fixed(4)})
	if lru.Fetches != int64(n*passes) {
		t.Errorf("LRU fetches = %d, want %d (every reference misses)", lru.Fetches, n*passes)
	}
	min := mustRun(t, engine.Config{Trace: tr, Policy: NewDemand(), Disks: 1, Model: fixed(4)})
	if want := int64(n + (passes-1)*(n-k)); min.Fetches != want {
		t.Errorf("MIN fetches = %d, want %d", min.Fetches, want)
	}
	if lru.ElapsedSec <= min.ElapsedSec {
		t.Errorf("LRU (%g) should be slower than MIN (%g)", lru.ElapsedSec, min.ElapsedSec)
	}
}

func TestLRUEqualsMINWhenEverythingFits(t *testing.T) {
	tr := loopTrace(40, 4, 1.0, 64)
	lru := mustRun(t, engine.Config{Trace: tr, Policy: NewDemandLRU(), Disks: 1, Model: fixed(4)})
	min := mustRun(t, engine.Config{Trace: tr, Policy: NewDemand(), Disks: 1, Model: fixed(4)})
	if lru.Fetches != min.Fetches || lru.Fetches != 40 {
		t.Errorf("fetches lru=%d min=%d, want 40", lru.Fetches, min.Fetches)
	}
}

// TestLRUNeverBeatsMIN: Belady's optimality, observed through the
// simulator — on any trace, offline MIN replacement never fetches more
// than LRU.
func TestLRUNeverBeatsMIN(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nBlocks := 4 + rng.Intn(30)
		n := 40 + rng.Intn(300)
		tr := &trace.Trace{
			Name:        "rand",
			Files:       []layout.File{{First: 0, Blocks: nBlocks}},
			CacheBlocks: 2 + rng.Intn(nBlocks),
		}
		for i := 0; i < n; i++ {
			tr.Refs = append(tr.Refs, trace.Ref{
				Block:     layout.BlockID(rng.Intn(nBlocks)),
				ComputeMs: 1,
			})
		}
		cfg := engine.Config{Trace: tr, Disks: 1, Model: fixed(3)}
		cfg.Policy = NewDemandLRU()
		lru, err := engine.Run(cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		cfg.Policy = NewDemand()
		min, err := engine.Run(cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		if min.Fetches > lru.Fetches {
			t.Logf("seed %d: MIN %d fetches > LRU %d", seed, min.Fetches, lru.Fetches)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestLRUOnBundledTraces(t *testing.T) {
	for _, name := range []string{"glimpse", "postgres-select"} {
		tr, err := trace.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr = tr.Truncate(4000)
		lru := mustRun(t, engine.Config{Trace: tr, Policy: NewDemandLRU(), Disks: 2})
		min := mustRun(t, engine.Config{Trace: tr, Policy: NewDemand(), Disks: 2})
		if min.Fetches > lru.Fetches {
			t.Errorf("%s: MIN fetches %d > LRU %d", name, min.Fetches, lru.Fetches)
		}
		if lru.CacheHits+lru.CacheMisses != int64(len(tr.Refs)) {
			t.Errorf("%s: not every reference served", name)
		}
	}
}
