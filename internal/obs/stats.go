package obs

import "math"

// Histogram is a streaming log-bucketed histogram of millisecond
// durations: geometric buckets spanning [histLoMs, histHiMs) with ~5%
// relative resolution, plus exact count, sum, min, and max. The zero
// value is ready to use.
type Histogram struct {
	counts []int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

const (
	histLoMs    = 1e-3
	histHiMs    = 1e7
	histLnRatio = 0.04879016417 // ln(1.05)
)

var histBuckets = int(math.Ceil(math.Log(histHiMs/histLoMs)/histLnRatio)) + 2

// bucket maps a value to its bucket index; index 0 collects everything
// below histLoMs and the last bucket everything at or above histHiMs.
func histBucket(v float64) int {
	if v < histLoMs {
		return 0
	}
	i := int(math.Log(v/histLoMs)/histLnRatio) + 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// histBound returns the upper bound of bucket i.
func histBound(i int) float64 {
	if i <= 0 {
		return histLoMs
	}
	return histLoMs * math.Exp(float64(i)*histLnRatio)
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	if h.counts == nil {
		h.counts = make([]int64, histBuckets)
	}
	h.counts[histBucket(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.n }

// MeanMs returns the exact sample mean, or 0 with no samples.
func (h *Histogram) MeanMs() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) with ~5%
// relative error, clamped to the exact observed [min, max]. It returns 0
// with no samples.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// Geometric midpoint of the bucket's bounds.
			lo := histBound(i - 1)
			v := math.Sqrt(lo * histBound(i))
			if i == 0 {
				v = histBound(0) / 2
			}
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// StreamingStats is the built-in statistics observer: streaming
// histograms of fetch latency (queueing plus service, per read request)
// and stall duration. When attached to a run — directly or inside a Tee
// — the engine summarizes it into the Result's Latency field.
type StreamingStats struct {
	Base
	// FetchLatency is the distribution of read-request response times.
	FetchLatency Histogram
	// StallDuration is the distribution of process stall durations.
	StallDuration Histogram
}

// NewStreamingStats returns an empty StreamingStats.
func NewStreamingStats() *StreamingStats { return &StreamingStats{} }

// FetchCompleted implements Observer.
func (s *StreamingStats) FetchCompleted(e FetchEvent) {
	if e.Write {
		return
	}
	s.FetchLatency.Observe(e.TMs - e.IssuedMs)
}

// StallEnd implements Observer.
func (s *StreamingStats) StallEnd(e StallEvent) {
	s.StallDuration.Observe(e.DurationMs)
}
