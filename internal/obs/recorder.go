package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Point is one sample of a time series.
type Point struct {
	TMs float64
	V   float64
}

// Interval is one stall: the process blocked on Block (needed at
// reference position Pos) from StartMs to EndMs.
type Interval struct {
	StartMs float64
	EndMs   float64
	Block   int64
	Pos     int
}

// kahan is a compensated accumulator, so event-derived totals reconcile
// with the engine's aggregate Result fields to well under a nanosecond
// even on million-event runs.
type kahan struct{ sum, c float64 }

func (k *kahan) add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Recorder is the built-in time-series observer: it turns the event
// stream into per-disk utilization, queue-depth, and cache-occupancy
// series, the list of stall intervals, and exact driver/stall totals
// that reconcile with the run's Result.
type Recorder struct {
	// QueueDepth[d] samples disk d's outstanding-request count at every
	// issue and completion.
	QueueDepth [][]Point
	// Utilization[d] samples disk d's cumulative busy fraction
	// (busy time / current time) at every completion.
	Utilization [][]Point
	// CacheOccupancy samples the number of used buffers (present or
	// reserved) at every fetch issue and completion.
	CacheOccupancy []Point
	// Stalls lists every stall interval in order.
	Stalls []Interval
	// Batches lists every batch-formation event.
	Batches []BatchEvent
	// Evictions lists every replacement decision.
	Evictions []EvictEvent
	// WindowMisses lists every lookahead-window miss (empty for
	// full-knowledge runs).
	WindowMisses []WindowEvent
	// AssocHits lists every history-policy association hit.
	AssocHits []AssocEvent
	// ElapsedMs is the run's elapsed time, set by RunEnd.
	ElapsedMs float64

	busyMs      []float64
	driver      kahan // all driver CPU charged
	stallDriver kahan // driver CPU charged while the process was stalled
	stallWall   kahan // total blocked wall time
	openStall   Interval
	stalled     bool
}

// NewRecorder returns an empty Recorder; per-disk series grow as disks
// appear in the event stream.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) ensureDisk(d int) {
	for len(r.QueueDepth) <= d {
		r.QueueDepth = append(r.QueueDepth, nil)
		r.Utilization = append(r.Utilization, nil)
		r.busyMs = append(r.busyMs, 0)
	}
}

// RefServed implements Observer.
func (r *Recorder) RefServed(RefEvent) {}

// StallBegin implements Observer.
func (r *Recorder) StallBegin(e StallEvent) {
	r.openStall = Interval{StartMs: e.TMs, Block: e.Block, Pos: e.Pos}
	r.stalled = true
}

// StallEnd implements Observer.
func (r *Recorder) StallEnd(e StallEvent) {
	r.openStall.EndMs = e.TMs
	r.Stalls = append(r.Stalls, r.openStall)
	r.stallWall.add(e.DurationMs)
	r.stalled = false
}

// FetchIssued implements Observer.
func (r *Recorder) FetchIssued(e FetchEvent) {
	r.ensureDisk(e.Disk)
	r.QueueDepth[e.Disk] = append(r.QueueDepth[e.Disk], Point{e.TMs, float64(e.QueueDepth)})
	r.CacheOccupancy = append(r.CacheOccupancy, Point{e.TMs, float64(e.CacheUsed)})
	r.driver.add(e.DriverMs)
	if e.DuringStall {
		r.stallDriver.add(e.DriverMs)
	}
}

// FetchStarted implements Observer.
func (r *Recorder) FetchStarted(FetchEvent) {}

// FetchCompleted implements Observer.
func (r *Recorder) FetchCompleted(e FetchEvent) {
	r.ensureDisk(e.Disk)
	r.busyMs[e.Disk] += e.ServiceMs
	if e.TMs > 0 {
		r.Utilization[e.Disk] = append(r.Utilization[e.Disk], Point{e.TMs, r.busyMs[e.Disk] / e.TMs})
	}
	r.QueueDepth[e.Disk] = append(r.QueueDepth[e.Disk], Point{e.TMs, float64(e.QueueDepth)})
	r.CacheOccupancy = append(r.CacheOccupancy, Point{e.TMs, float64(e.CacheUsed)})
}

// Eviction implements Observer.
func (r *Recorder) Eviction(e EvictEvent) { r.Evictions = append(r.Evictions, e) }

// BatchFormed implements Observer.
func (r *Recorder) BatchFormed(e BatchEvent) { r.Batches = append(r.Batches, e) }

// WindowMiss implements Observer.
func (r *Recorder) WindowMiss(e WindowEvent) { r.WindowMisses = append(r.WindowMisses, e) }

// AssociationHit implements Observer.
func (r *Recorder) AssociationHit(e AssocEvent) { r.AssocHits = append(r.AssocHits, e) }

// RunEnd implements Observer.
func (r *Recorder) RunEnd(elapsedMs float64) { r.ElapsedMs = elapsedMs }

// DriverTimeSec returns the total driver CPU time derived from the
// event stream. It equals Result.DriverTimeSec.
func (r *Recorder) DriverTimeSec() float64 { return r.driver.sum / 1000 }

// StallTimeSec returns the stall time derived from the event stream:
// the blocked wall time minus the driver CPU work that overlapped it,
// exactly the residual the paper's elapsed = compute + driver + stall
// decomposition reports. It equals Result.StallTimeSec.
func (r *Recorder) StallTimeSec() float64 {
	s := r.stallWall.sum - r.stallDriver.sum
	if s < 0 {
		s = 0
	}
	return s / 1000
}

// WriteCSV emits every series in long form: series,disk,t_ms,value.
// Stall rows carry the interval start as t_ms and the duration as value;
// batch rows carry the batch size; eviction rows carry the victim's
// next-use distance.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "disk", "t_ms", "value"}); err != nil {
		return err
	}
	row := func(series string, disk int, t, v float64) error {
		return cw.Write([]string{
			series, strconv.Itoa(disk),
			fmt.Sprintf("%.6f", t), fmt.Sprintf("%.6f", v),
		})
	}
	for d, pts := range r.QueueDepth {
		for _, p := range pts {
			if err := row("queue_depth", d, p.TMs, p.V); err != nil {
				return err
			}
		}
	}
	for d, pts := range r.Utilization {
		for _, p := range pts {
			if err := row("utilization", d, p.TMs, p.V); err != nil {
				return err
			}
		}
	}
	for _, p := range r.CacheOccupancy {
		if err := row("cache_used", -1, p.TMs, p.V); err != nil {
			return err
		}
	}
	for _, s := range r.Stalls {
		if err := row("stall", -1, s.StartMs, s.EndMs-s.StartMs); err != nil {
			return err
		}
	}
	for _, b := range r.Batches {
		if err := row("batch", b.Disk, b.TMs, float64(b.Size)); err != nil {
			return err
		}
	}
	for _, e := range r.Evictions {
		if err := row("eviction", -1, e.TMs, float64(e.NextUseDistance)); err != nil {
			return err
		}
	}
	for _, e := range r.WindowMisses {
		if err := row("window_miss", e.Disk, e.TMs, float64(e.Window)); err != nil {
			return err
		}
	}
	for _, e := range r.AssocHits {
		if err := row("assoc_hit", -1, e.TMs, float64(e.Lag)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
