package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one row of the Chrome trace-event format
// (chrome://tracing and ui.perfetto.dev both load it). Timestamps and
// durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTracer is the built-in trace exporter: it renders a run as one
// timeline row per disk plus one for the process, with fetches as slices
// (seek/rotation/transfer breakdown in the args), stalls as slices on
// the process row, and evictions and batches as instant markers. Write
// the result with WriteTo and load it in chrome://tracing or Perfetto.
type ChromeTracer struct {
	events  []chromeEvent
	maxDisk int
}

// chromePID is the synthetic process ID every row lives under.
const chromePID = 1

// processTID is the thread ID of the process (stall) row; disk d uses
// thread ID d+1.
const processTID = 0

// NewChromeTracer returns an empty tracer.
func NewChromeTracer() *ChromeTracer { return &ChromeTracer{maxDisk: -1} }

func (c *ChromeTracer) noteDisk(d int) {
	if d > c.maxDisk {
		c.maxDisk = d
	}
}

// RefServed implements Observer.
func (c *ChromeTracer) RefServed(RefEvent) {}

// StallBegin implements Observer.
func (c *ChromeTracer) StallBegin(StallEvent) {}

// StallEnd implements Observer: emits the whole stall as one slice.
func (c *ChromeTracer) StallEnd(e StallEvent) {
	c.events = append(c.events, chromeEvent{
		Name: "stall", Ph: "X",
		TS: (e.TMs - e.DurationMs) * 1000, Dur: e.DurationMs * 1000,
		PID: chromePID, TID: processTID,
		Args: map[string]any{"block": e.Block, "pos": e.Pos, "disk": e.Disk},
	})
}

// FetchIssued implements Observer.
func (c *ChromeTracer) FetchIssued(e FetchEvent) { c.noteDisk(e.Disk) }

// FetchStarted implements Observer.
func (c *ChromeTracer) FetchStarted(FetchEvent) {}

// FetchCompleted implements Observer: emits the service interval as a
// slice on the disk's row, with the queueing delay and the service-time
// breakdown as args.
func (c *ChromeTracer) FetchCompleted(e FetchEvent) {
	c.noteDisk(e.Disk)
	name := fmt.Sprintf("fetch %d", e.Block)
	if e.Write {
		name = fmt.Sprintf("write %d", e.Block)
	}
	c.events = append(c.events, chromeEvent{
		Name: name, Ph: "X",
		TS: e.StartMs * 1000, Dur: e.ServiceMs * 1000,
		PID: chromePID, TID: e.Disk + 1,
		Args: map[string]any{
			"queued_ms":   e.QueuedMs,
			"seek_ms":     e.SeekMs,
			"rotation_ms": e.RotationMs,
			"transfer_ms": e.TransferMs,
		},
	})
}

// Eviction implements Observer: an instant marker on the process row.
func (c *ChromeTracer) Eviction(e EvictEvent) {
	c.events = append(c.events, chromeEvent{
		Name: "evict", Ph: "i",
		TS:  e.TMs * 1000,
		PID: chromePID, TID: processTID, S: "t",
		Args: map[string]any{
			"victim":            e.Victim,
			"replacement":       e.Replacement,
			"next_use_distance": e.NextUseDistance,
		},
	})
}

// BatchFormed implements Observer: an instant marker on the disk's row.
func (c *ChromeTracer) BatchFormed(e BatchEvent) {
	c.noteDisk(e.Disk)
	c.events = append(c.events, chromeEvent{
		Name: "batch", Ph: "i",
		TS:  e.TMs * 1000,
		PID: chromePID, TID: e.Disk + 1, S: "t",
		Args: map[string]any{"size": e.Size, "on_stall": e.OnStall},
	})
}

// WindowMiss implements Observer: an instant marker on the process row.
func (c *ChromeTracer) WindowMiss(e WindowEvent) {
	c.events = append(c.events, chromeEvent{
		Name: "window miss", Ph: "i",
		TS:  e.TMs * 1000,
		PID: chromePID, TID: processTID, S: "t",
		Args: map[string]any{"block": e.Block, "pos": e.Pos, "window": e.Window},
	})
}

// AssociationHit implements Observer: an instant marker on the process
// row.
func (c *ChromeTracer) AssociationHit(e AssocEvent) {
	c.events = append(c.events, chromeEvent{
		Name: "assoc hit", Ph: "i",
		TS:  e.TMs * 1000,
		PID: chromePID, TID: processTID, S: "t",
		Args: map[string]any{"trigger": e.Trigger, "block": e.Block, "lag": e.Lag},
	})
}

// RunEnd implements Observer.
func (c *ChromeTracer) RunEnd(float64) {}

// WriteTo implements io.WriterTo: it emits the collected timeline as
// Chrome trace-event JSON ({"traceEvents": [...]}), prefixed with the
// row-naming metadata.
func (c *ChromeTracer) WriteTo(w io.Writer) (int64, error) {
	meta := []chromeEvent{
		{Name: "process_name", Ph: "M", PID: chromePID, TID: processTID,
			Args: map[string]any{"name": "ppcsim"}},
		{Name: "thread_name", Ph: "M", PID: chromePID, TID: processTID,
			Args: map[string]any{"name": "process"}},
	}
	for d := 0; d <= c.maxDisk; d++ {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: d + 1,
			Args: map[string]any{"name": fmt.Sprintf("disk %d", d)},
		})
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{
		TraceEvents:     append(meta, c.events...),
		DisplayTimeUnit: "ms",
	}
	buf, err := json.Marshal(doc)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	return int64(n), err
}
