package obs

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestKahanSum(t *testing.T) {
	// 10M additions of 0.1 ms: naive summation drifts by microseconds,
	// compensated summation stays exact to the last bit of the total.
	var k kahan
	naive := 0.0
	for i := 0; i < 10_000_000; i++ {
		k.add(0.1)
		naive += 0.1
	}
	want := 1e6
	if d := math.Abs(k.sum - want); d > 1e-7 {
		t.Errorf("kahan sum off by %g", d)
	}
	if d := math.Abs(naive - want); d < math.Abs(k.sum-want) {
		t.Errorf("kahan (%g off) should beat naive (%g off)", math.Abs(k.sum-want), d)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// Uniform samples: quantile estimates must land within the histogram's
	// ~5% relative resolution of the exact order statistics.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := 0.5 + rng.Float64()*99.5 // [0.5, 100) ms
		h.Observe(v)
		samples = append(samples, v)
	}
	sort.Float64s(samples)
	if h.Count() != 20000 {
		t.Fatalf("Count = %d", h.Count())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.06 {
			t.Errorf("q=%g: got %g, exact %g (rel err %.3f)", q, got, exact, rel)
		}
	}
	if got := h.Quantile(0); got != samples[0] {
		t.Errorf("q=0 should return the min %g, got %g", samples[0], got)
	}
	if got := h.Quantile(1); got != samples[len(samples)-1] {
		t.Errorf("q=1 should return the max %g, got %g", samples[len(samples)-1], got)
	}
	mean := 0.0
	for _, v := range samples {
		mean += v
	}
	mean /= float64(len(samples))
	if d := math.Abs(h.MeanMs() - mean); d > 1e-9 {
		t.Errorf("mean %g, want exact %g", h.MeanMs(), mean)
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.MeanMs() != 0 || h.Count() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(0)    // below the lowest bucket
	h.Observe(1e99) // above the highest
	if h.Count() != 2 {
		t.Fatalf("Count = %d", h.Count())
	}
	// Clamping keeps estimates inside the observed range even for the
	// overflow buckets.
	if q := h.Quantile(0.01); q < 0 {
		t.Errorf("quantile %g below observed min", q)
	}
	if q := h.Quantile(0.99); q > 1e99 {
		t.Errorf("quantile %g above observed max", q)
	}
}

func TestTeeAndEach(t *testing.T) {
	if Tee() != nil {
		t.Error("empty Tee must be nil (the unobserved fast path)")
	}
	if Tee(nil, nil) != nil {
		t.Error("Tee of nils must be nil")
	}
	// A typed nil pointer is non-nil as an interface but panics on the
	// first event; Tee must drop it like an untyped nil.
	var unset *ChromeTracer
	if Tee(unset) != nil {
		t.Error("Tee of a typed nil must be nil")
	}
	r := NewRecorder()
	if got := Tee(nil, r); got != Observer(r) {
		t.Error("single-observer Tee should return the observer itself")
	}
	if got := Tee(unset, r); got != Observer(r) {
		t.Error("Tee(typed nil, r) should return r")
	}
	s := NewStreamingStats()
	combo := Tee(r, Tee(s, nil))
	var seen []Observer
	Each(combo, func(o Observer) { seen = append(seen, o) })
	if len(seen) != 2 {
		t.Fatalf("Each visited %d observers, want 2", len(seen))
	}
	// Fan-out delivers to every member.
	combo.StallEnd(StallEvent{TMs: 10, DurationMs: 4})
	if len(r.Stalls) != 1 || s.StallDuration.Count() != 1 {
		t.Error("Tee did not fan out StallEnd")
	}
}

func TestRecorderReconciliationLogic(t *testing.T) {
	r := NewRecorder()
	// Driver work outside a stall counts toward driver only.
	r.FetchIssued(FetchEvent{TMs: 0, Disk: 0, DriverMs: 0.5, QueueDepth: 1})
	// A 10ms stall with 0.5ms of driver work charged during it.
	r.StallBegin(StallEvent{TMs: 5, Block: 7, Pos: 3})
	r.FetchIssued(FetchEvent{TMs: 5, Disk: 0, DriverMs: 0.5, QueueDepth: 2, DuringStall: true})
	r.StallEnd(StallEvent{TMs: 15, DurationMs: 10})
	r.RunEnd(20)

	if got, want := r.DriverTimeSec(), 0.001; math.Abs(got-want) > 1e-12 {
		t.Errorf("DriverTimeSec = %g, want %g", got, want)
	}
	// Stall residual excludes the overlapped driver work: 10 - 0.5 ms.
	if got, want := r.StallTimeSec(), 0.0095; math.Abs(got-want) > 1e-12 {
		t.Errorf("StallTimeSec = %g, want %g", got, want)
	}
	if len(r.Stalls) != 1 || r.Stalls[0].StartMs != 5 || r.Stalls[0].EndMs != 15 || r.Stalls[0].Block != 7 {
		t.Errorf("stall interval %+v", r.Stalls)
	}
	if r.ElapsedMs != 20 {
		t.Errorf("ElapsedMs = %g", r.ElapsedMs)
	}
}

func TestRecorderCSV(t *testing.T) {
	r := NewRecorder()
	r.FetchIssued(FetchEvent{TMs: 1, Disk: 1, QueueDepth: 1, CacheUsed: 3})
	r.FetchCompleted(FetchEvent{TMs: 9, Disk: 1, QueueDepth: 0, CacheUsed: 4, ServiceMs: 8})
	r.StallBegin(StallEvent{TMs: 2})
	r.StallEnd(StallEvent{TMs: 9, DurationMs: 7})
	r.BatchFormed(BatchEvent{TMs: 1, Disk: 1, Size: 4})
	r.Eviction(EvictEvent{TMs: 1, Victim: 12, NextUseDistance: 40})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "series,disk,t_ms,value" {
		t.Errorf("header %q", lines[0])
	}
	// queue_depth x2 + utilization x1 + cache_used x2 + stall + batch + eviction
	if len(lines) != 1+8 {
		t.Errorf("%d data rows, want 8:\n%s", len(lines)-1, buf.String())
	}
	for _, want := range []string{
		"queue_depth,1,1.000000,1.000000",
		"utilization,1,9.000000,0.888889",
		"stall,-1,2.000000,7.000000",
		"batch,1,1.000000,4.000000",
		"eviction,-1,1.000000,40.000000",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("CSV missing row %q", want)
		}
	}
	// Disk 0 never appeared; series indices still line up (lazy growth).
	if len(r.QueueDepth) != 2 {
		t.Errorf("expected lazy growth to disk index 1, got %d slots", len(r.QueueDepth))
	}
}
