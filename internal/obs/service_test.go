package obs

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
			c.Add(5)
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*1005 {
		t.Errorf("count = %d, want %d", got, 8*1005)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Dec()
			}
			g.Inc()
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 8 {
		t.Errorf("gauge = %d, want 8 (paired inc/dec cancel)", got)
	}
	g.Set(-3)
	if got := g.Load(); got != -3 {
		t.Errorf("gauge after Set(-3) = %d", got)
	}
}

func TestSyncHistogramConcurrent(t *testing.T) {
	var h SyncHistogram
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 1; j <= 500; j++ {
				h.Observe(float64(j))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 2000 {
		t.Fatalf("count = %d, want 2000", h.Count())
	}
	if mean := h.MeanMs(); mean < 250 || mean > 252 {
		t.Errorf("mean = %g, want ~250.5", mean)
	}
	p50 := h.Quantile(0.50)
	// Log buckets give ~5% resolution around the true median of 250.
	if p50 < 225 || p50 > 275 {
		t.Errorf("p50 = %g, want ~250", p50)
	}
	if h.Quantile(0.99) < p50 {
		t.Error("q99 below q50")
	}
}
