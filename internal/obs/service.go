package obs

import (
	"sync"
	"sync/atomic"
)

// Counter is a concurrency-safe monotonically increasing counter for
// service-level metrics (requests served, cache hits, rejections). The
// zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a concurrency-safe instantaneous value for service-level
// metrics that go up and down (jobs in flight, live backends). The zero
// value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// SyncHistogram is a Histogram safe for concurrent observers — the
// service-side counterpart of the single-threaded simulation histogram,
// sharing its log-bucketed layout and ~5% quantile resolution. The zero
// value is ready to use.
type SyncHistogram struct {
	mu sync.Mutex
	h  Histogram
}

// Observe adds one sample (a millisecond duration).
func (s *SyncHistogram) Observe(v float64) {
	s.mu.Lock()
	s.h.Observe(v)
	s.mu.Unlock()
}

// Count returns the number of samples.
func (s *SyncHistogram) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.Count()
}

// MeanMs returns the exact sample mean, or 0 with no samples.
func (s *SyncHistogram) MeanMs() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.MeanMs()
}

// Quantile returns an estimate of the q-quantile; see Histogram.Quantile.
func (s *SyncHistogram) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.Quantile(q)
}
