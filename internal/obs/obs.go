// Package obs is the simulator's observability layer: a typed event
// stream emitted at every decision point of a run — references served,
// stalls beginning and ending, fetch lifecycles with their service-time
// breakdown, evictions, and batch formation. The engine emits events only
// when an Observer is attached, so a run with no observer pays a single
// nil check per hook site.
//
// Three built-in observers cover the common uses: Recorder collects
// per-disk time series and stall intervals, ChromeTracer exports a
// chrome://tracing / Perfetto-loadable JSON timeline, and StreamingStats
// maintains latency histograms with percentile summaries.
//
// All timestamps and durations are milliseconds of simulated time since
// the start of the run.
package obs

import "reflect"

// RefEvent reports one reference served to the process.
type RefEvent struct {
	TMs   float64 // time the reference was consumed
	Pos   int     // position in the reference sequence
	Block int64
	Disk  int  // disk holding the block
	Hit   bool // false when the reference had to wait for a fetch
}

// StallEvent reports the process blocking on a missing block (begin) or
// resuming after its arrival (end).
type StallEvent struct {
	TMs        float64 // begin time for StallBegin, end time for StallEnd
	Pos        int     // position of the stalled reference
	Block      int64
	Disk       int
	DurationMs float64 // zero on begin; end time minus begin time on end
}

// FetchEvent reports one disk request's lifecycle. Issue-time fields are
// set on FetchIssued; service fields are set on FetchStarted and
// FetchCompleted.
type FetchEvent struct {
	TMs   float64
	Block int64
	Disk  int
	Write bool // write-behind update rather than a read fetch

	// Issue-time fields.
	QueueDepth  int     // requests outstanding at the disk, including this one
	CacheUsed   int     // buffers present or reserved after the issue
	DriverMs    float64 // driver CPU overhead charged for the issue
	DuringStall bool    // issued while the process was stalled

	// Service fields.
	IssuedMs   float64 // when the request was enqueued
	StartMs    float64 // when it entered service
	QueuedMs   float64 // StartMs - IssuedMs
	ServiceMs  float64 // modeled service time
	SeekMs     float64 // seek component of the service time
	RotationMs float64 // rotational-latency component
	TransferMs float64 // media/bus transfer component
}

// EvictEvent reports a replacement decision: Victim leaves the cache so
// Replacement's fetch can reserve its buffer.
type EvictEvent struct {
	TMs         float64
	Victim      int64
	Replacement int64
	// NextUseDistance is the number of references until the victim is
	// needed again, measured from the eviction point; -1 if never.
	NextUseDistance int
}

// BatchEvent reports that one policy decision point issued Size fetches
// at a single disk — the batches of aggressive, forestall, and reverse
// aggressive surface here.
type BatchEvent struct {
	TMs     float64
	Disk    int
	Size    int
	OnStall bool // the batch was formed handling a demand miss
}

// WindowEvent reports a demand miss in a run with limited lookahead
// (Hints.Window != 0): the missed block was beyond the window horizon —
// or invisible entirely — at every point the policy could have
// prefetched it. Window is the run's lookahead limit (-1 = none).
type WindowEvent struct {
	TMs    float64
	Pos    int // position of the missed reference
	Block  int64
	Disk   int
	Window int
}

// AssocEvent reports a successful history-mined prefetch: Block, fetched
// because Trigger's access predicted it, was referenced Lag references
// after the prefetch was issued.
type AssocEvent struct {
	TMs     float64
	Trigger int64
	Block   int64
	Lag     int
}

// Observer receives the event stream of one run. Implementations must
// not retain the engine's internal state; events are self-contained
// values. A single run's events arrive in simulation-time order.
type Observer interface {
	RefServed(RefEvent)
	StallBegin(StallEvent)
	StallEnd(StallEvent)
	FetchIssued(FetchEvent)
	FetchStarted(FetchEvent)
	FetchCompleted(FetchEvent)
	Eviction(EvictEvent)
	BatchFormed(BatchEvent)
	// WindowMiss fires alongside StallBegin in limited-lookahead runs
	// only; full-knowledge runs never emit it.
	WindowMiss(WindowEvent)
	// AssociationHit fires when a history-policy prefetch pays off.
	AssociationHit(AssocEvent)
	// RunEnd is called once, after the last reference is served, with the
	// run's elapsed time.
	RunEnd(elapsedMs float64)
}

// Base is a no-op Observer for embedding, so custom observers implement
// only the events they care about.
type Base struct{}

func (Base) RefServed(RefEvent)        {}
func (Base) StallBegin(StallEvent)     {}
func (Base) StallEnd(StallEvent)       {}
func (Base) FetchIssued(FetchEvent)    {}
func (Base) FetchStarted(FetchEvent)   {}
func (Base) FetchCompleted(FetchEvent) {}
func (Base) Eviction(EvictEvent)       {}
func (Base) BatchFormed(BatchEvent)    {}
func (Base) WindowMiss(WindowEvent)    {}
func (Base) AssociationHit(AssocEvent) {}
func (Base) RunEnd(float64)            {}

// Multi fans every event out to each member in order.
type Multi []Observer

func (m Multi) RefServed(e RefEvent) {
	for _, o := range m {
		o.RefServed(e)
	}
}
func (m Multi) StallBegin(e StallEvent) {
	for _, o := range m {
		o.StallBegin(e)
	}
}
func (m Multi) StallEnd(e StallEvent) {
	for _, o := range m {
		o.StallEnd(e)
	}
}
func (m Multi) FetchIssued(e FetchEvent) {
	for _, o := range m {
		o.FetchIssued(e)
	}
}
func (m Multi) FetchStarted(e FetchEvent) {
	for _, o := range m {
		o.FetchStarted(e)
	}
}
func (m Multi) FetchCompleted(e FetchEvent) {
	for _, o := range m {
		o.FetchCompleted(e)
	}
}
func (m Multi) Eviction(e EvictEvent) {
	for _, o := range m {
		o.Eviction(e)
	}
}
func (m Multi) BatchFormed(e BatchEvent) {
	for _, o := range m {
		o.BatchFormed(e)
	}
}
func (m Multi) WindowMiss(e WindowEvent) {
	for _, o := range m {
		o.WindowMiss(e)
	}
}
func (m Multi) AssociationHit(e AssocEvent) {
	for _, o := range m {
		o.AssociationHit(e)
	}
}
func (m Multi) RunEnd(elapsedMs float64) {
	for _, o := range m {
		o.RunEnd(elapsedMs)
	}
}

// Tee combines observers into one, dropping nils — including typed nil
// pointers, so a conditionally-created observer variable (e.g. a
// *Recorder that stayed nil) can be passed directly without wrapping.
// It returns nil when nothing remains (so the engine's nil fast path
// still applies), the sole member when one remains, and a Multi
// otherwise.
func Tee(observers ...Observer) Observer {
	var kept Multi
	for _, o := range observers {
		if !observerIsNil(o) {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return kept
	}
}

// observerIsNil reports whether o is nil or wraps a nil pointer value.
// A typed nil (say, an unassigned *Recorder passed through the Observer
// interface) compares non-nil but panics on the first event; Tee filters
// both forms so callers can pass conditionally-created observers as-is.
func observerIsNil(o Observer) bool {
	if o == nil {
		return true
	}
	v := reflect.ValueOf(o)
	switch v.Kind() {
	case reflect.Pointer, reflect.Map, reflect.Slice, reflect.Func, reflect.Chan:
		return v.IsNil()
	}
	return false
}

// Each calls fn for every non-Multi observer reachable from o, walking
// nested Multi groups. The engine uses it to find a StreamingStats
// wherever it sits in a Tee.
func Each(o Observer, fn func(Observer)) {
	if o == nil {
		return
	}
	if m, ok := o.(Multi); ok {
		for _, member := range m {
			Each(member, fn)
		}
		return
	}
	fn(o)
}
