// Package multi extends the simulator to several concurrently executing
// processes sharing one buffer cache and one disk array — the setting the
// paper's section 6 leaves open ("we have not dealt with the question of
// how to allocate buffers among competing processes").
//
// Each process runs its own reference stream with its own compute times;
// hinted processes disclose their future accesses, unhinted ones do not.
// Replacement is global: every cached block is valued by an estimated
// time until next use — for hinted blocks, the hinted reference distance
// scaled by the owner's observed compute rate; for unhinted blocks, the
// block's age (an LRU estimate), in the spirit of TIP2's cost-benefit
// comparison of hinted and unhinted buffers. The block with the largest
// estimate is evicted.
//
// The package exists to test the paper's closing prediction: an
// aggressively prefetching process consumes cache and disk arms that a
// co-running non-hinting process needs, while fixed horizon — which
// "places the least load on the disks and the cache" — interferes least.
package multi

import (
	"container/heap"
	"fmt"
	"math"

	"ppcsim/internal/disk"
	"ppcsim/internal/future"
	"ppcsim/internal/layout"
	"ppcsim/internal/trace"
)

// Algorithm selects a per-process prefetching strategy.
type Algorithm string

// Per-process strategies. Unhinted processes always demand-fetch.
const (
	// FixedHorizon prefetches the process's missing blocks at most H
	// references ahead.
	FixedHorizon Algorithm = "fixed-horizon"
	// Aggressive prefetches the process's first missing blocks whenever a
	// disk is free.
	Aggressive Algorithm = "aggressive"
	// Forestall prefetches a hinted process's missing blocks on a disk as
	// soon as a stall becomes inevitable (i·F' > dᵢ, with F' estimated
	// from the drive's observed service times and the process's compute
	// rate), plus fixed horizon's within-H rule.
	Forestall Algorithm = "forestall"
	// Demand never prefetches (used with or without hints; with hints the
	// process still benefits from informed replacement of its blocks).
	Demand Algorithm = "demand"
)

// ProcessSpec describes one competing process.
type ProcessSpec struct {
	// Trace is the process's private reference stream over its own block
	// space (block IDs are namespaced per process).
	Trace *trace.Trace
	// Algorithm is the prefetching strategy; hinted processes may use
	// FixedHorizon or Aggressive, unhinted ones are forced to Demand.
	Algorithm Algorithm
	// Hinted discloses the process's future accesses to the cache
	// manager. Unhinted processes are valued by recency (LRU).
	Hinted bool
	// Horizon is FixedHorizon's H (0 → 62).
	Horizon int
	// Batch is Aggressive's per-disk batch size (0 → Table 6 default).
	Batch int
}

// Config describes a multi-process run.
type Config struct {
	Processes []ProcessSpec
	// Disks is the array size.
	Disks int
	// CacheBlocks is the shared cache capacity.
	CacheBlocks int
	// Discipline is the disk-head scheduling policy (CSCAN default).
	Discipline disk.Discipline
	// DriverOverheadMs per request (0 → 0.5, negative → none).
	DriverOverheadMs float64
	// PlacementSeed seeds the per-file placement of each process's files.
	PlacementSeed int64
	// Model constructs the per-drive service model (nil → HP 97560).
	Model func() disk.Model
}

// ProcessResult reports one process's outcome.
type ProcessResult struct {
	Name          string
	ElapsedSec    float64
	ComputeSec    float64
	DriverTimeSec float64
	StallTimeSec  float64
	Fetches       int64
	CacheHits     int64
	CacheMisses   int64
}

// Result reports a multi-process run: per-process outcomes plus array
// totals. Elapsed is the time until the last process finishes.
type Result struct {
	Processes      []ProcessResult
	ElapsedSec     float64
	AvgUtilization float64
}

// block state in the shared cache.
type bstate uint8

const (
	absent bstate = iota
	inFlight
	present
)

// proc is one running process.
type proc struct {
	spec    ProcessSpec
	name    string
	refs    []layout.BlockID // global block IDs
	compute []float64
	oracle  *future.Oracle // over global IDs, but per-process positions
	cursor  int
	// processAt is when the process issues its next reference; stalled
	// processes wait for their block instead.
	processAt float64
	stalled   bool
	done      bool
	finishAt  float64

	driverMs   float64
	fetches    int64
	hits       int64
	misses     int64
	computeSum float64
	// consumed compute statistics for time valuation.
	consumedMs   float64
	consumedRefs int
	// scan state for fixed horizon / aggressive.
	scanned int
	pending []int
}

// avgComputeMs estimates the process's inter-reference compute time.
func (p *proc) avgComputeMs() float64 {
	if p.consumedRefs == 0 {
		return 1.0
	}
	return p.consumedMs / float64(p.consumedRefs)
}

// Sim is a running multi-process simulation.
type Sim struct {
	cfg      Config
	procs    []*proc
	lay      *layout.Layout
	drives   []*disk.Drive
	overhead float64

	st       []bstate
	owner    []int16   // owning process per global block
	lastUsed []float64 // last access time, for unhinted valuation
	used     int
	capacity int

	h        valueHeap
	inFlight map[layout.BlockID]int // block -> disk
	now      float64
}

// New prepares a multi-process simulation.
func New(cfg Config) (*Sim, error) {
	if len(cfg.Processes) == 0 {
		return nil, fmt.Errorf("multi: no processes")
	}
	if cfg.Disks <= 0 {
		return nil, fmt.Errorf("multi: disks must be positive")
	}
	if cfg.CacheBlocks <= 1 {
		return nil, fmt.Errorf("multi: cache of %d blocks is too small", cfg.CacheBlocks)
	}
	overhead := cfg.DriverOverheadMs
	switch {
	case overhead == 0: //ppcvet:ignore unset-config sentinel, assigned by the caller rather than computed
		overhead = 0.5
	case overhead < 0:
		overhead = 0
	}
	model := cfg.Model
	if model == nil {
		model = func() disk.Model { return disk.NewHP97560() }
	}

	// Concatenate the processes' file spaces into one layout.
	var files []layout.File
	offsets := make([]int, len(cfg.Processes))
	next := 0
	for i, ps := range cfg.Processes {
		if ps.Trace == nil {
			return nil, fmt.Errorf("multi: process %d has no trace", i)
		}
		if err := ps.Trace.Validate(); err != nil {
			return nil, fmt.Errorf("multi: process %d: %w", i, err)
		}
		offsets[i] = next
		for _, f := range ps.Trace.Files {
			files = append(files, layout.File{First: layout.BlockID(next + int(f.First)), Blocks: f.Blocks})
		}
		next += ps.Trace.NumBlocks()
	}
	lay, err := layout.NewFiles(files, cfg.Disks, cfg.PlacementSeed)
	if err != nil {
		return nil, fmt.Errorf("multi: %w", err)
	}

	s := &Sim{
		cfg:      cfg,
		lay:      lay,
		overhead: overhead,
		st:       make([]bstate, next),
		owner:    make([]int16, next),
		lastUsed: make([]float64, next),
		capacity: cfg.CacheBlocks,
		inFlight: make(map[layout.BlockID]int),
	}
	s.drives = make([]*disk.Drive, cfg.Disks)
	for i := range s.drives {
		s.drives[i] = disk.NewDrive(model(), cfg.Discipline)
	}
	for i, ps := range cfg.Processes {
		spec := ps
		if !spec.Hinted {
			spec.Algorithm = Demand
		}
		if spec.Horizon <= 0 {
			spec.Horizon = 62
		}
		if spec.Batch <= 0 {
			spec.Batch = defaultBatch(cfg.Disks)
		}
		p := &proc{
			spec: spec,
			name: fmt.Sprintf("p%d:%s", i, ps.Trace.Name),
		}
		p.refs = make([]layout.BlockID, len(ps.Trace.Refs))
		p.compute = make([]float64, len(ps.Trace.Refs))
		for j, r := range ps.Trace.Refs {
			if r.Write {
				return nil, fmt.Errorf("multi: process %d: write references are not supported", i)
			}
			p.refs[j] = r.Block + layout.BlockID(offsets[i])
			p.compute[j] = r.ComputeMs
			p.computeSum += r.ComputeMs
		}
		// The per-process oracle is built over the global block space so
		// NextUse works on global IDs.
		p.oracle = future.New(p.refs, next)
		p.processAt = p.compute[0]
		s.procs = append(s.procs, p)
		for _, b := range p.refs {
			s.owner[b] = int16(i)
		}
	}
	return s, nil
}

func defaultBatch(disks int) int {
	switch {
	case disks <= 1:
		return 80
	case disks <= 3:
		return 40
	case disks <= 5:
		return 16
	case disks <= 7:
		return 8
	default:
		return 4
	}
}

// ttnu estimates, in milliseconds from now, when block b is next needed:
// the hinted reference distance scaled by the owner's compute rate, or
// the block's age for unhinted owners (older = later reuse, LRU).
func (s *Sim) ttnu(b layout.BlockID) float64 {
	p := s.procs[s.owner[b]]
	if p.spec.Hinted {
		u := p.oracle.NextUse(b)
		if u == future.Never || p.done {
			return math.Inf(1)
		}
		return float64(u-p.cursor) * p.avgComputeMs()
	}
	return s.now - s.lastUsed[b]
}

// furthest pops the valid present block with the largest estimated time
// until next use.
func (s *Sim) furthest() (layout.BlockID, float64) {
	for s.h.Len() > 0 {
		top := s.h[0]
		if s.st[top.block] != present {
			heap.Pop(&s.h)
			continue
		}
		cur := s.ttnu(top.block)
		// Lazy heap: the stored key may be stale; refresh when the
		// current value is better (smaller) than stored, otherwise the
		// entry is an acceptable approximation.
		if cur < top.key*0.5 {
			heap.Pop(&s.h)
			heap.Push(&s.h, entry{block: top.block, key: cur})
			continue
		}
		return top.block, cur
	}
	return -1, -1
}

// push (re)registers a present block in the valuation heap.
func (s *Sim) push(b layout.BlockID) {
	heap.Push(&s.h, entry{block: b, key: s.ttnu(b)})
}

type entry struct {
	block layout.BlockID
	key   float64
}

type valueHeap []entry

func (h valueHeap) Len() int            { return len(h) }
func (h valueHeap) Less(i, j int) bool  { return h[i].key > h[j].key }
func (h valueHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *valueHeap) Push(x interface{}) { *h = append(*h, x.(entry)) }
func (h *valueHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// issue starts a fetch of b for process p, evicting victim (or -1 for a
// free buffer). Returns false if no legal eviction exists.
func (s *Sim) issue(p *proc, b layout.BlockID) bool {
	if s.st[b] != absent {
		return true // already on the way
	}
	if s.used < s.capacity {
		s.used++
	} else {
		v, _ := s.furthest()
		if v < 0 {
			return false // everything in flight
		}
		s.st[v] = absent
	}
	s.st[b] = inFlight
	pl := s.lay.Lookup(b)
	s.drives[pl.Disk].Enqueue(&disk.Request{Block: b, LBN: pl.LBN}, s.now)
	s.inFlight[b] = pl.Disk
	p.fetches++
	p.driverMs += s.overhead
	if !p.stalled && !p.done {
		p.processAt += s.overhead
	}
	return true
}

// issueGuarded is issue with the do-no-harm rule: the victim's estimated
// time to next use must exceed the fetched block's.
func (s *Sim) issueGuarded(p *proc, b layout.BlockID) bool {
	if s.st[b] != absent {
		return true
	}
	if s.used >= s.capacity {
		v, vT := s.furthest()
		if v < 0 || vT <= s.ttnu(b) {
			return false
		}
	}
	return s.issue(p, b)
}

// decide gives every hinted process its prefetching opportunities.
func (s *Sim) decide() {
	for _, p := range s.procs {
		if p.done {
			continue
		}
		switch p.spec.Algorithm {
		case FixedHorizon:
			s.decideFH(p)
		case Aggressive:
			s.decideAggressive(p)
		case Forestall:
			s.decideForestall(p)
		}
	}
}

// decideFH fetches p's missing blocks within H references of its cursor,
// soonest first.
func (s *Sim) decideFH(p *proc) {
	limit := p.cursor + p.spec.Horizon
	if n := len(p.refs); limit > n {
		limit = n
	}
	if p.scanned < p.cursor {
		p.scanned = p.cursor
	}
	for ; p.scanned < limit; p.scanned++ {
		if s.st[p.refs[p.scanned]] == absent {
			p.pending = append(p.pending, p.scanned)
		}
	}
	kept := p.pending[:0]
	for _, q := range p.pending {
		if q < p.cursor {
			continue
		}
		b := p.refs[q]
		if s.st[b] != absent {
			continue
		}
		if !s.issueGuarded(p, b) {
			kept = append(kept, q)
		}
	}
	p.pending = kept
}

// decideAggressive batches p's first missing blocks onto free disks.
func (s *Sim) decideAggressive(p *proc) {
	budget := make([]int, len(s.drives))
	free := false
	for i, d := range s.drives {
		if d.Outstanding() == 0 {
			budget[i] = p.spec.Batch
			free = true
		}
	}
	if !free {
		return
	}
	// Scan ahead for missing blocks; a bounded window keeps this cheap.
	limit := p.cursor + 4*s.capacity
	if n := len(p.refs); limit > n {
		limit = n
	}
	for q := p.cursor; q < limit; q++ {
		b := p.refs[q]
		if s.st[b] != absent {
			continue
		}
		d := s.lay.Lookup(b).Disk
		if budget[d] == 0 {
			continue
		}
		if !s.issueGuarded(p, b) {
			return // do no harm blocks everything later too
		}
		budget[d]--
		any := false
		for _, left := range budget {
			if left > 0 {
				any = true
			}
		}
		if !any {
			return
		}
	}
}

// decideForestall applies the forestall rule for process p: the
// within-horizon rule always, and per-disk batches whenever the stall
// forecast i·F' > dᵢ fires for that disk.
func (s *Sim) decideForestall(p *proc) {
	s.decideFH(p)
	window := 2 * s.capacity
	limit := p.cursor + window
	if n := len(p.refs); limit > n {
		limit = n
	}
	for d, dr := range s.drives {
		if dr.Outstanding() != 0 {
			continue
		}
		// F' for this process/disk pair: observed mean service over the
		// process's compute rate, overestimated 4x for slow disks as in
		// the single-process forestall.
		svc := dr.MeanServiceMs()
		if svc <= 0 {
			svc = 15
		}
		fp := svc / p.avgComputeMs()
		if svc >= 5 {
			fp *= 4
		}
		if fp < 1 {
			fp = 1
		}
		// Forecast: does some prefix of p's missing blocks on d force a
		// stall?
		i := 0
		trigger := false
		for q := p.cursor; q < limit; q++ {
			b := p.refs[q]
			if s.st[b] != absent || s.lay.Lookup(b).Disk != d {
				continue
			}
			i++
			if float64(i)*fp > float64(q-p.cursor) {
				trigger = true
				break
			}
		}
		if !trigger {
			continue
		}
		left := p.spec.Batch
		for q := p.cursor; q < limit && left > 0; q++ {
			b := p.refs[q]
			if s.st[b] != absent || s.lay.Lookup(b).Disk != d {
				continue
			}
			if !s.issueGuarded(p, b) {
				break
			}
			left--
		}
	}
}

// Run executes all processes to completion.
func (s *Sim) Run() (Result, error) {
	s.decide()
	for {
		allDone := true
		for _, p := range s.procs {
			if !p.done {
				allDone = false
			}
		}
		if allDone {
			break
		}

		// Next event: earliest runnable process or disk completion.
		nextT := math.Inf(1)
		var nextP *proc
		for _, p := range s.procs {
			if !p.done && !p.stalled && p.processAt < nextT {
				nextT = p.processAt
				nextP = p
			}
		}
		diskT := math.Inf(1)
		nextD := -1
		for i, d := range s.drives {
			if d.Busy() && d.BusyEnd() < diskT {
				diskT = d.BusyEnd()
				nextD = i
			}
		}
		if nextP == nil && nextD < 0 {
			return Result{}, fmt.Errorf("multi: deadlock at t=%.3f", s.now)
		}

		if nextD >= 0 && diskT < nextT {
			// Disk completion.
			s.now = diskT
			req := s.drives[nextD].Complete(s.now)
			s.st[req.Block] = present
			s.lastUsed[req.Block] = s.now
			s.push(req.Block)
			delete(s.inFlight, req.Block)
			// Wake any process stalled on this block.
			for _, p := range s.procs {
				if p.done || !p.stalled {
					continue
				}
				if p.refs[p.cursor] == req.Block {
					p.stalled = false
					p.processAt = s.now
					s.serve(p, false)
				}
			}
			s.decide()
			s.ensureStalledFetches()
			continue
		}

		// Process reference.
		s.now = nextT
		p := nextP
		b := p.refs[p.cursor]
		if s.st[b] == present {
			s.serve(p, true)
			s.decide()
			continue
		}
		p.stalled = true
		p.misses++
		s.ensureStalledFetches()
	}

	// Collect results.
	res := Result{}
	last := 0.0
	for _, p := range s.procs {
		if p.finishAt > last {
			last = p.finishAt
		}
		stall := p.finishAt - p.computeSum - p.driverMs
		if stall < 0 {
			stall = 0
		}
		res.Processes = append(res.Processes, ProcessResult{
			Name:          p.name,
			ElapsedSec:    p.finishAt / 1000,
			ComputeSec:    p.computeSum / 1000,
			DriverTimeSec: p.driverMs / 1000,
			StallTimeSec:  stall / 1000,
			Fetches:       p.fetches,
			CacheHits:     p.hits,
			CacheMisses:   p.misses,
		})
	}
	res.ElapsedSec = last / 1000
	if last > 0 {
		busy := 0.0
		for _, d := range s.drives {
			busy += d.BusyTime()
		}
		res.AvgUtilization = busy / last / float64(len(s.drives))
	}
	return res, nil
}

// serve consumes p's current reference (the block must be present); hit
// reports whether the reference was served without stalling.
func (s *Sim) serve(p *proc, hit bool) {
	b := p.refs[p.cursor]
	if s.st[b] != present {
		panic(fmt.Sprintf("multi: serving absent block %d", b))
	}
	if hit {
		p.hits++
	}
	s.lastUsed[b] = s.now
	p.consumedMs += p.compute[p.cursor]
	p.consumedRefs++
	p.cursor++
	p.oracle.Advance(p.cursor)
	s.push(b)
	if p.cursor >= len(p.refs) {
		p.done = true
		p.finishAt = s.now
		return
	}
	p.processAt = s.now + p.compute[p.cursor]
}

// ensureStalledFetches demand-fetches every stalled process's block.
func (s *Sim) ensureStalledFetches() {
	for _, p := range s.procs {
		if p.done || !p.stalled {
			continue
		}
		b := p.refs[p.cursor]
		if s.st[b] == absent {
			s.issue(p, b)
		}
	}
}

// Run is the package-level convenience wrapper.
func Run(cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run()
}
